package pod

import (
	"fmt"
	"strings"

	"github.com/pod-dedup/pod/internal/api"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/workload"
)

// WorkloadNames lists the built-in synthetic traces (the FIU-like
// web-vm / homes / mail workloads of Table II).
func WorkloadNames() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// GenerateWorkload produces a built-in workload at the given scale
// (1.0 = the paper's request count). It returns the requests and the
// number of leading warm-up requests callers typically exclude from
// measurement.
func GenerateWorkload(name string, scale float64) ([]Request, int, error) {
	prof, ok := workload.ByName(name)
	if !ok {
		return nil, 0, fmt.Errorf("pod: unknown workload %q (have %s)", name, strings.Join(WorkloadNames(), ", "))
	}
	if scale <= 0 {
		return nil, 0, fmt.Errorf("pod: non-positive scale %f", scale)
	}
	tr, warm := workload.Generate(prof, scale)
	out := make([]Request, len(tr.Requests))
	for i := range tr.Requests {
		// Content slices are shared with the freshly generated trace,
		// not copied — the trace is not reused.
		out[i] = api.FromTrace(tr.Requests[i])
	}
	return out, warm, nil
}

// Replay submits a request sequence (must be time-ordered) and returns
// the final statistics.
func (s *System) Replay(reqs []Request) (Summary, error) {
	for i := range reqs {
		if _, err := s.Do(&reqs[i]); err != nil {
			return Summary{}, fmt.Errorf("request %d: %w", i, err)
		}
	}
	return s.Stats(), nil
}

// ResetStats clears the system's measurement counters (used after a
// warm-up prefix).
func (s *System) ResetStats() { s.eng.Stats().Reset() }

// ExperimentIDs lists the reproducible paper artifacts.
func ExperimentIDs() []string {
	return []string{"table1", "table2", "fig1", "fig2", "fig3", "fig8", "fig9", "fig10", "fig11", "overhead", "raw", "schemes"}
}

// RunExperiment regenerates one paper artifact and returns its
// formatted table. Scale 1.0 replays the full request counts; workers
// bounds replay parallelism (≤ 0 = one per replay).
func RunExperiment(id string, scale float64, workers int) (string, error) {
	if scale <= 0 {
		return "", fmt.Errorf("pod: non-positive scale %f", scale)
	}
	env := experiments.NewEnv(scale, workers)
	switch strings.ToLower(id) {
	case "table1":
		return experiments.Table1().String(), nil
	case "table2":
		t, _ := env.Table2()
		return t.String(), nil
	case "fig1":
		t, _ := env.Fig1()
		return t.String(), nil
	case "fig2":
		t, _ := env.Fig2()
		return t.String(), nil
	case "fig3":
		t, _ := env.Fig3(nil)
		return t.String(), nil
	case "fig8":
		t, _ := env.Fig8()
		return t.String(), nil
	case "fig9":
		a, _ := env.Fig9Write()
		b, _ := env.Fig9Read()
		return a.String() + "\n" + b.String(), nil
	case "fig10":
		t, _ := env.Fig10()
		return t.String(), nil
	case "fig11":
		t, _ := env.Fig11()
		return t.String(), nil
	case "overhead":
		t, _, _ := env.Overhead()
		return t.String(), nil
	case "raw":
		return env.Raw().String(), nil
	case "schemes":
		return env.SchemesTable().String(), nil
	default:
		return "", fmt.Errorf("pod: unknown experiment %q (have %s)", id, strings.Join(ExperimentIDs(), ", "))
	}
}

// ChunkSize is the deduplication granularity in bytes.
const ChunkSize = chunk.Size

// MicrosPerSecond converts virtual time for callers.
const MicrosPerSecond = int64(sim.Second)
