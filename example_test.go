package pod_test

import (
	"fmt"

	pod "github.com/pod-dedup/pod"
)

// The basic write/dedup/read cycle.
func Example() {
	sys, err := pod.New(pod.Config{Scheme: pod.SchemePOD})
	if err != nil {
		panic(err)
	}
	// write three chunks, then the same content at another address
	sys.Do(&pod.Request{Time: 0, Op: pod.OpWrite, LBA: 0, Content: []pod.ContentID{1, 2, 3}})
	sys.Do(&pod.Request{Time: 1_000_000, Op: pod.OpWrite, LBA: 4096, Content: []pod.ContentID{1, 2, 3}})

	st := sys.Stats()
	fmt.Printf("writes removed: %.0f%%\n", st.WritesRemovedPct)
	fmt.Printf("blocks used: %d\n", st.UsedBlocks)
	// Output:
	// writes removed: 50%
	// blocks used: 3
}

// Comparing two schemes on the same built-in workload.
func ExampleGenerateWorkload() {
	reqs, warm, err := pod.GenerateWorkload("homes", 0.002)
	if err != nil {
		panic(err)
	}
	for _, scheme := range []pod.Scheme{pod.SchemeNative, pod.SchemePOD} {
		sys, _ := pod.New(pod.Config{Scheme: scheme, MemoryMB: 1})
		sys.Replay(reqs[:warm])
		sys.ResetStats()
		sum, _ := sys.Replay(reqs[warm:])
		fmt.Printf("%s removed %.0f%% of writes\n", scheme, sum.WritesRemovedPct)
	}
	// Output:
	// Native removed 0% of writes
	// POD removed 32% of writes
}

// Crash recovery through the public API: deduplicated state survives a
// power failure because the Map table lives in NVRAM.
func ExampleSystem_CrashAndRecover() {
	sys, _ := pod.New(pod.Config{Scheme: pod.SchemePOD})
	sys.Do(&pod.Request{Time: 0, Op: pod.OpWrite, LBA: 0, Content: []pod.ContentID{7}})
	sys.Do(&pod.Request{Time: 1_000_000, Op: pod.OpWrite, LBA: 100, Content: []pod.ContentID{7}}) // deduplicated copy

	if _, err := sys.CrashAndRecover(); err != nil {
		panic(err)
	}
	id, ok := sys.ReadBack(100)
	fmt.Println(id, ok)
	// Output:
	// 7 true
}

// Regenerating a paper artifact programmatically.
func ExampleRunExperiment() {
	out, err := pod.RunExperiment("table1", 1, 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(len(out) > 0)
	// Output:
	// true
}
