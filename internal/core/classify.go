// Package core implements the paper's primary contribution: the
// request-based Select-Dedupe write path with its three-way request
// classification (§III-B, Figure 5), and POD — Select-Dedupe combined
// with the adaptive iCache controller (§III-C).
package core

import "github.com/pod-dedup/pod/internal/alloc"

// Category is Select-Dedupe's write-request classification.
type Category int

// Categories of Figure 5. CatUnique is the degenerate case of a request
// containing no redundant chunk at all (trivially "category 2" in
// behaviour: everything is written).
const (
	CatUnique Category = iota
	// Cat1: fully redundant and the duplicate copies are stored
	// sequentially on disk — deduplicate the whole request.
	Cat1
	// Cat2: partially redundant with fewer redundant chunks than the
	// threshold, or redundancy too scattered to exploit — write
	// everything, avoiding fragmentation and read amplification.
	Cat2
	// Cat3: enough redundant chunks, sequentially stored — deduplicate
	// the sequential runs, write the rest.
	Cat3
)

// String names the category.
func (c Category) String() string {
	switch c {
	case Cat1:
		return "category-1"
	case Cat2:
		return "category-2"
	case Cat3:
		return "category-3"
	default:
		return "unique"
	}
}

// Classify decides, for one write request, which chunks Select-Dedupe
// deduplicates. dup[i] marks chunks whose fingerprint hit the hot
// index; target[i] is the physical block of the existing copy (valid
// where dup[i]). threshold is the paper's partial-redundancy threshold
// (3 in the prototype).
//
// The decision follows Figure 5:
//
//   - A fully redundant request whose duplicate copies form one
//     sequential run is category 1: everything is deduplicated (this
//     includes every fully redundant small write — the requests iDedup
//     ignores and POD exists to eliminate).
//   - Otherwise, sequential duplicate runs of at least threshold chunks
//     are deduplicated (category 3); a request with redundancy below
//     the threshold, or whose duplicates are scattered singletons, is
//     written in full (category 2) so that subsequent reads stay
//     sequential.
//
// The returned mask marks the positions to deduplicate.
func Classify(dup []bool, target []alloc.PBA, threshold int) (Category, []bool) {
	dedupe := make([]bool, len(dup))
	return ClassifyInto(dedupe, dup, target, threshold), dedupe
}

// ClassifyInto is Classify writing its decision into a caller-provided
// mask (the engines pass per-request scratch so the hot path does not
// allocate). dedupe must have the same length as dup; it is cleared
// before the decision is written.
func ClassifyInto(dedupe, dup []bool, target []alloc.PBA, threshold int) Category {
	n := len(dup)
	for i := range dedupe {
		dedupe[i] = false
	}
	totalDup := 0
	for _, d := range dup {
		if d {
			totalDup++
		}
	}
	if totalDup == 0 {
		return CatUnique
	}

	// fully redundant + one sequential run covering the request → Cat1
	if totalDup == n {
		sequential := true
		for i := 1; i < n; i++ {
			if target[i] != target[i-1]+1 {
				sequential = false
				break
			}
		}
		if sequential {
			for i := range dedupe {
				dedupe[i] = true
			}
			return Cat1
		}
	}

	// below the threshold: never fragment for so little
	if totalDup < threshold && totalDup < n {
		return Cat2
	}

	// deduplicate sequential duplicate runs of at least threshold
	deduped := false
	i := 0
	for i < n {
		if !dup[i] {
			i++
			continue
		}
		j := i + 1
		for j < n && dup[j] && target[j] == target[j-1]+1 {
			j++
		}
		if j-i >= threshold {
			for k := i; k < j; k++ {
				dedupe[k] = true
			}
			deduped = true
		}
		i = j
	}
	if deduped {
		return Cat3
	}
	return Cat2
}
