package core

import (
	"math/rand"
	"testing"

	"github.com/pod-dedup/pod/internal/baseline"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func testConfig() engine.Config {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 16))
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 256 * 1024,
		Verify:      true,
		NVRAMBytes:  1 << 22,
	}
}

func allEngines(t *testing.T) []engine.Engine {
	t.Helper()
	return []engine.Engine{
		baseline.NewNative(testConfig()),
		baseline.NewFullDedupe(testConfig()),
		baseline.NewIDedup(testConfig()),
		NewSelectDedupe(testConfig()),
		NewPOD(testConfig()),
	}
}

// randomWorkload builds a deterministic request stream exercising
// overwrites, duplicate content (sequential and scattered), and reads.
func randomWorkload(seed int64, n int) []trace.Request {
	rng := rand.New(rand.NewSource(seed))
	var reqs []trace.Request
	var tm sim.Time
	var segments [][2]uint64 // written (lba, n) pairs
	nextContent := chunk.ContentID(1)
	contentAt := map[uint64]chunk.ContentID{}

	for i := 0; i < n; i++ {
		tm = tm.Add(sim.Duration(rng.Intn(2000)))
		if len(segments) > 0 && rng.Intn(100) < 30 {
			// read from a previously written segment
			seg := segments[rng.Intn(len(segments))]
			reqs = append(reqs, trace.Request{Time: tm, Op: trace.Read, LBA: seg[0], N: int(seg[1])})
			continue
		}
		nc := rng.Intn(12) + 1
		lba := uint64(rng.Intn(4000))
		ids := make([]chunk.ContentID, nc)
		switch rng.Intn(3) {
		case 0: // unique content
			for j := range ids {
				ids[j] = nextContent
				nextContent++
			}
		case 1: // rewrite existing content (maybe at a new location)
			for j := range ids {
				src := uint64(rng.Intn(4000))
				if c, ok := contentAt[src]; ok {
					ids[j] = c
				} else {
					ids[j] = nextContent
					nextContent++
				}
			}
		case 2: // duplicate a previously written segment's content run
			if len(segments) > 0 {
				seg := segments[rng.Intn(len(segments))]
				for j := range ids {
					if c, ok := contentAt[seg[0]+uint64(j)%seg[1]]; ok {
						ids[j] = c
					} else {
						ids[j] = nextContent
						nextContent++
					}
				}
			} else {
				for j := range ids {
					ids[j] = nextContent
					nextContent++
				}
			}
		}
		for j, id := range ids {
			contentAt[lba+uint64(j)] = id
		}
		segments = append(segments, [2]uint64{lba, uint64(nc)})
		reqs = append(reqs, trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: nc, Content: ids})
	}
	return reqs
}

// The central consistency property: after any workload, every engine's
// logical view equals the model (read-your-writes), regardless of how
// aggressively it deduplicated.
func TestEnginesReadYourWrites(t *testing.T) {
	reqs := randomWorkload(7, 600)
	model := map[uint64]chunk.ContentID{}
	for _, e := range allEngines(t) {
		for k := range model {
			delete(model, k)
		}
		for i := range reqs {
			r := &reqs[i]
			if r.Op == trace.Write {
				e.Write(r)
				for j, id := range r.Content {
					model[r.LBA+uint64(j)] = id
				}
			} else {
				e.Read(r)
			}
		}
		for lba, want := range model {
			got, ok := e.ReadContent(lba)
			if !ok {
				t.Fatalf("%s: lba %d lost", e.Name(), lba)
			}
			if got != uint64(want) {
				t.Fatalf("%s: lba %d holds content %d, want %d", e.Name(), lba, got, want)
			}
		}
	}
}

// Response times must be positive and the engines' request accounting
// exact.
func TestEnginesAccounting(t *testing.T) {
	reqs := randomWorkload(11, 300)
	var wantReads, wantWrites int64
	for i := range reqs {
		if reqs[i].Op == trace.Write {
			wantWrites++
		} else {
			wantReads++
		}
	}
	for _, e := range allEngines(t) {
		for i := range reqs {
			r := &reqs[i]
			var rt sim.Duration
			if r.Op == trace.Write {
				rt, _ = e.Write(r)
			} else {
				rt, _ = e.Read(r)
			}
			if rt <= 0 {
				t.Fatalf("%s: non-positive response time %v", e.Name(), rt)
			}
		}
		st := e.Stats()
		if st.Reads != wantReads || st.Writes != wantWrites {
			t.Fatalf("%s: reads/writes = %d/%d, want %d/%d",
				e.Name(), st.Reads, st.Writes, wantReads, wantWrites)
		}
		if st.ReadRT.N() != wantReads || st.WriteRT.N() != wantWrites {
			t.Fatalf("%s: histogram counts wrong", e.Name())
		}
	}
}

// Deduplicating engines must use no more capacity than Native, and
// Full-Dedupe must use the least.
func TestCapacityOrdering(t *testing.T) {
	reqs := randomWorkload(13, 800)
	used := map[string]uint64{}
	for _, e := range allEngines(t) {
		for i := range reqs {
			r := &reqs[i]
			if r.Op == trace.Write {
				e.Write(r)
			} else {
				e.Read(r)
			}
		}
		used[e.Name()] = e.UsedBlocks()
	}
	if used["Full-Dedupe"] > used["Native"] {
		t.Errorf("Full-Dedupe (%d) must not exceed Native (%d)", used["Full-Dedupe"], used["Native"])
	}
	if used["Select-Dedupe"] > used["Native"] {
		t.Errorf("Select-Dedupe (%d) must not exceed Native (%d)", used["Select-Dedupe"], used["Native"])
	}
	for name, u := range used {
		if used["Full-Dedupe"] > u {
			t.Errorf("Full-Dedupe (%d) must be ≤ %s (%d)", used["Full-Dedupe"], name, u)
		}
	}
}

// A fully redundant small write must be eliminated by Select-Dedupe
// (category 1) and bypassed by iDedup.
func TestSmallRedundantWriteBehaviour(t *testing.T) {
	write := func(e engine.Engine, tm sim.Time, lba uint64, ids ...chunk.ContentID) {
		e.Write(&trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: len(ids), Content: ids})
	}

	sd := NewSelectDedupe(testConfig())
	write(sd, 0, 0, 42)
	write(sd, sim.Time(sim.Second), 100, 42) // duplicate, different LBA
	st := sd.Stats()
	if st.Cat1 != 1 || st.WritesRemoved != 1 || st.ChunksDeduped != 1 {
		t.Errorf("Select-Dedupe: cat1=%d removed=%d deduped=%d, want 1/1/1",
			st.Cat1, st.WritesRemoved, st.ChunksDeduped)
	}

	id := baseline.NewIDedup(testConfig())
	write(id, 0, 0, 42)
	write(id, sim.Time(sim.Second), 100, 42)
	if id.Stats().WritesRemoved != 0 || id.Stats().ChunksDeduped != 0 {
		t.Error("iDedup must bypass small writes entirely")
	}
}

// A partially redundant request below the threshold must not be
// deduplicated by Select-Dedupe (category 2), but must be by
// Full-Dedupe.
func TestPartialRedundancyPolicy(t *testing.T) {
	mk := func(lba uint64, ids ...chunk.ContentID) *trace.Request {
		return &trace.Request{Op: trace.Write, LBA: lba, N: len(ids), Content: ids}
	}
	sd := NewSelectDedupe(testConfig())
	sd.Write(mk(0, 1, 2, 3, 4, 5, 6, 7, 8))
	// 2 duplicate chunks (scattered within a new request) + 6 unique
	r2 := mk(100, 1, 100, 101, 2, 102, 103, 104, 105)
	r2.Time = sim.Time(sim.Second)
	sd.Write(r2)
	st := sd.Stats()
	if st.Cat2 != 1 || st.ChunksDeduped != 0 {
		t.Errorf("Select-Dedupe: cat2=%d deduped=%d, want 1/0", st.Cat2, st.ChunksDeduped)
	}

	fd := baseline.NewFullDedupe(testConfig())
	fd.Write(mk(0, 1, 2, 3, 4, 5, 6, 7, 8))
	r3 := mk(100, 1, 100, 101, 2, 102, 103, 104, 105)
	r3.Time = sim.Time(sim.Second)
	fd.Write(r3)
	if fd.Stats().ChunksDeduped != 2 {
		t.Errorf("Full-Dedupe deduped %d chunks, want 2", fd.Stats().ChunksDeduped)
	}
}

// A large fully redundant sequential write must be deduplicated by all
// deduplicating engines including iDedup.
func TestLargeSequentialRedundantWrite(t *testing.T) {
	ids := make([]chunk.ContentID, 16)
	for i := range ids {
		ids[i] = chunk.ContentID(1000 + i)
	}
	for _, mk := range []func(engine.Config) engine.Engine{
		func(c engine.Config) engine.Engine { return baseline.NewFullDedupe(c) },
		func(c engine.Config) engine.Engine { return baseline.NewIDedup(c) },
		func(c engine.Config) engine.Engine { return NewSelectDedupe(c) },
	} {
		e := mk(testConfig())
		e.Write(&trace.Request{Op: trace.Write, LBA: 0, N: 16, Content: ids})
		e.Write(&trace.Request{Time: sim.Time(sim.Second), Op: trace.Write, LBA: 1000, N: 16, Content: ids})
		st := e.Stats()
		if st.ChunksDeduped != 16 {
			t.Errorf("%s: deduped %d chunks, want 16", e.Name(), st.ChunksDeduped)
		}
		if st.WritesRemoved != 1 {
			t.Errorf("%s: removed %d writes, want 1", e.Name(), st.WritesRemoved)
		}
	}
}

// Overwriting an LBA whose block is shared must not corrupt the other
// referencer (the paper's data-consistency requirement).
func TestOverwriteSharedBlockPreservesOtherReference(t *testing.T) {
	sd := NewSelectDedupe(testConfig())
	w := func(tm sim.Time, lba uint64, ids ...chunk.ContentID) {
		sd.Write(&trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: len(ids), Content: ids})
	}
	w(0, 0, 7)               // original copy
	w(sim.Time(1000), 50, 7) // deduplicated reference
	w(sim.Time(2000), 0, 8)  // overwrite the original LBA
	if got, ok := sd.ReadContent(50); !ok || got != 7 {
		t.Fatalf("shared reference corrupted: got %d,%v want 7", got, ok)
	}
	if got, _ := sd.ReadContent(0); got != 8 {
		t.Fatalf("overwrite lost: got %d want 8", got)
	}
}

func TestWriteRemovalOrdering(t *testing.T) {
	// On a redundancy-heavy workload Full-Dedupe must remove at least
	// as many write requests as Select-Dedupe, which must beat iDedup.
	reqs := randomWorkload(17, 1000)
	removed := map[string]float64{}
	for _, e := range allEngines(t) {
		for i := range reqs {
			r := &reqs[i]
			if r.Op == trace.Write {
				e.Write(r)
			} else {
				e.Read(r)
			}
		}
		removed[e.Name()] = e.Stats().WriteRemovalPct()
	}
	if removed["Full-Dedupe"] < removed["Select-Dedupe"] {
		t.Errorf("Full-Dedupe removal (%f) < Select-Dedupe (%f)",
			removed["Full-Dedupe"], removed["Select-Dedupe"])
	}
	if removed["Select-Dedupe"] < removed["iDedup"] {
		t.Errorf("Select-Dedupe removal (%f) < iDedup (%f)",
			removed["Select-Dedupe"], removed["iDedup"])
	}
	if removed["Native"] != 0 {
		t.Error("Native must remove nothing")
	}
}
