package core

import (
	"testing"

	"github.com/pod-dedup/pod/internal/alloc"
)

func seqPBAs(start alloc.PBA, n int) []alloc.PBA {
	p := make([]alloc.PBA, n)
	for i := range p {
		p[i] = start + alloc.PBA(i)
	}
	return p
}

func allTrue(n int) []bool {
	b := make([]bool, n)
	for i := range b {
		b[i] = true
	}
	return b
}

func countTrue(b []bool) int {
	n := 0
	for _, v := range b {
		if v {
			n++
		}
	}
	return n
}

func TestClassifyUnique(t *testing.T) {
	cat, mask := Classify(make([]bool, 4), make([]alloc.PBA, 4), 3)
	if cat != CatUnique || countTrue(mask) != 0 {
		t.Fatalf("cat=%v deduped=%d", cat, countTrue(mask))
	}
}

func TestClassifyCat1FullySequential(t *testing.T) {
	cat, mask := Classify(allTrue(4), seqPBAs(100, 4), 3)
	if cat != Cat1 || countTrue(mask) != 4 {
		t.Fatalf("cat=%v deduped=%d, want Cat1/4", cat, countTrue(mask))
	}
}

func TestClassifyCat1SingleChunk(t *testing.T) {
	// the small fully-redundant write — POD's headline case; trivially
	// sequential, must be eliminated even though 1 < threshold
	cat, mask := Classify([]bool{true}, []alloc.PBA{42}, 3)
	if cat != Cat1 || !mask[0] {
		t.Fatalf("single redundant chunk: cat=%v, want Cat1", cat)
	}
}

func TestClassifyFullyDupButScattered(t *testing.T) {
	// fully redundant, but copies scattered: short runs must NOT be
	// deduplicated (fragmentation); with runs of 1 and threshold 3 the
	// request is rewritten in full
	targets := []alloc.PBA{10, 50, 90, 130}
	cat, mask := Classify(allTrue(4), targets, 3)
	if cat != Cat2 || countTrue(mask) != 0 {
		t.Fatalf("scattered full dup: cat=%v deduped=%d, want Cat2/0", cat, countTrue(mask))
	}
}

func TestClassifyFullyDupTwoLongRuns(t *testing.T) {
	// fully redundant, two separate sequential runs of 3: both qualify
	targets := append(seqPBAs(10, 3), seqPBAs(100, 3)...)
	cat, mask := Classify(allTrue(6), targets, 3)
	if cat != Cat3 || countTrue(mask) != 6 {
		t.Fatalf("two-run full dup: cat=%v deduped=%d, want Cat3/6", cat, countTrue(mask))
	}
}

func TestClassifyCat2BelowThreshold(t *testing.T) {
	// 2 redundant chunks < threshold 3: write everything
	dup := []bool{true, true, false, false}
	cat, mask := Classify(dup, seqPBAs(10, 4), 3)
	if cat != Cat2 || countTrue(mask) != 0 {
		t.Fatalf("cat=%v deduped=%d, want Cat2/0", cat, countTrue(mask))
	}
}

func TestClassifyCat3QualifyingRun(t *testing.T) {
	// 3-chunk sequential duplicate run + 2 unique chunks
	dup := []bool{true, true, true, false, false}
	targets := []alloc.PBA{10, 11, 12, 0, 0}
	cat, mask := Classify(dup, targets, 3)
	if cat != Cat3 {
		t.Fatalf("cat=%v, want Cat3", cat)
	}
	if !mask[0] || !mask[1] || !mask[2] || mask[3] || mask[4] {
		t.Fatalf("mask=%v", mask)
	}
}

func TestClassifyCat2ScatteredAboveThreshold(t *testing.T) {
	// 3 redundant chunks but all in scattered singleton runs: the
	// count passes the threshold, the layout does not → Cat2
	dup := []bool{true, false, true, false, true}
	targets := []alloc.PBA{10, 0, 50, 0, 90}
	cat, mask := Classify(dup, targets, 3)
	if cat != Cat2 || countTrue(mask) != 0 {
		t.Fatalf("cat=%v deduped=%d, want Cat2/0", cat, countTrue(mask))
	}
}

func TestClassifyMixedRuns(t *testing.T) {
	// one qualifying run (3) and one short run (1): dedupe only the
	// qualifying run
	dup := []bool{true, true, true, false, true}
	targets := []alloc.PBA{10, 11, 12, 0, 99}
	cat, mask := Classify(dup, targets, 3)
	if cat != Cat3 {
		t.Fatalf("cat=%v, want Cat3", cat)
	}
	if countTrue(mask) != 3 || mask[4] {
		t.Fatalf("mask=%v", mask)
	}
}

func TestClassifyRunBrokenByNonSequentialPBA(t *testing.T) {
	// three duplicates whose copies are NOT consecutive: runs of 1
	dup := []bool{true, true, true}
	targets := []alloc.PBA{10, 20, 30}
	cat, mask := Classify(dup, targets, 3)
	if cat != Cat2 || countTrue(mask) != 0 {
		t.Fatalf("cat=%v deduped=%d, want Cat2/0", cat, countTrue(mask))
	}
}

func TestClassifyThresholdOne(t *testing.T) {
	// threshold 1 degenerates to Full-Dedupe-like behaviour
	dup := []bool{true, false, true}
	targets := []alloc.PBA{10, 0, 30}
	cat, mask := Classify(dup, targets, 1)
	if cat != Cat3 || countTrue(mask) != 2 {
		t.Fatalf("cat=%v deduped=%d, want Cat3/2", cat, countTrue(mask))
	}
}

func TestCategoryString(t *testing.T) {
	for c, want := range map[Category]string{
		CatUnique: "unique", Cat1: "category-1", Cat2: "category-2", Cat3: "category-3",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
