package core

import (
	"testing"

	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// replayStats drives a request list through one engine and returns its
// stats — the comparison payload for the equivalence test below.
func replayStats(t *testing.T, e *SelectDedupe, reqs []trace.Request) *engine.Stats {
	t.Helper()
	for i := range reqs {
		var err error
		if reqs[i].Op == trace.Write {
			_, err = e.Write(&reqs[i])
		} else {
			_, err = e.Read(&reqs[i])
		}
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	return e.Stats()
}

// TestStreamModeSingleStreamEquivalent pins the compatibility property
// behind the feature flag: with stream-aware apportionment enabled but
// only one (default) stream present, every request is serviced exactly
// as it is with the feature off — same dedup decisions, same response
// times, same physical occupancy.
func TestStreamModeSingleStreamEquivalent(t *testing.T) {
	reqs := randomWorkload(0x5eed, 3000)

	off := NewSelectDedupe(testConfig())
	cfgOn := testConfig()
	cfgOn.Streams = engine.StreamParams{Enabled: true}
	on := NewSelectDedupe(cfgOn)

	so := replayStats(t, off, reqs)
	sn := replayStats(t, on, reqs)

	if so.Writes != sn.Writes || so.Reads != sn.Reads {
		t.Fatalf("request counts diverge: off %d/%d, on %d/%d", so.Writes, so.Reads, sn.Writes, sn.Reads)
	}
	if so.WritesRemoved != sn.WritesRemoved || so.ChunksWritten != sn.ChunksWritten ||
		so.ChunksDeduped != sn.ChunksDeduped {
		t.Fatalf("dedup outcomes diverge: off removed=%d written=%d deduped=%d, on removed=%d written=%d deduped=%d",
			so.WritesRemoved, so.ChunksWritten, so.ChunksDeduped,
			sn.WritesRemoved, sn.ChunksWritten, sn.ChunksDeduped)
	}
	if so.Cat1 != sn.Cat1 || so.Cat2 != sn.Cat2 || so.Cat3 != sn.Cat3 {
		t.Fatalf("categories diverge: off %d/%d/%d, on %d/%d/%d",
			so.Cat1, so.Cat2, so.Cat3, sn.Cat1, sn.Cat2, sn.Cat3)
	}
	if so.CacheHits != sn.CacheHits || so.CacheMisses != sn.CacheMisses || so.ReadIOs != sn.ReadIOs {
		t.Fatal("read path diverges with the feature on")
	}
	if so.WriteRT.Sum() != sn.WriteRT.Sum() || so.ReadRT.Sum() != sn.ReadRT.Sum() {
		t.Fatalf("response times diverge: off %d/%d µs, on %d/%d µs",
			so.WriteRT.Sum(), so.ReadRT.Sum(), sn.WriteRT.Sum(), sn.ReadRT.Sum())
	}
	if off.UsedBlocks() != on.UsedBlocks() {
		t.Fatalf("occupancy diverges: off %d, on %d", off.UsedBlocks(), on.UsedBlocks())
	}
}

// TestStreamFloorNeverStarved is the fairness property behind the
// shared floor: replaying the adversarial multi-tenant mix (including
// the hopeless churning scan) under dynamic apportionment, every
// stream granted a share holds at least the floor fraction of the
// index partition, at every apportionment, for the whole replay.
func TestStreamFloorNeverStarved(t *testing.T) {
	tr, _, dims := workload.AdversarialScanMix(0.25)

	cfg := testConfig()
	cfg.MemoryBytes = dims.MemoryBytes
	cfg.Verify = false
	cfg.Streams = engine.StreamParams{Enabled: true}
	e := NewSelectDedupe(cfg)
	b := e.Base()

	floor := b.Loc.FloorFrac()
	checks := 0
	for i := range tr.Requests {
		var err error
		if tr.Requests[i].Op == trace.Write {
			_, err = e.Write(&tr.Requests[i])
		} else {
			_, err = e.Read(&tr.Requests[i])
		}
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if i%256 != 0 {
			continue
		}
		total := b.IC.IndexCapTotal()
		for _, q := range b.IC.StreamQuotas() {
			if q.Share == 0 { // idle or unapportioned: no guarantee
				continue
			}
			checks++
			if min := int(floor * float64(total)); q.Cap < min-1 {
				t.Fatalf("request %d: stream %d holds %d entries, below floor %d (share %f of %d)",
					i, q.Stream, q.Cap, min, q.Share, total)
			}
		}
		if err := b.IC.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if checks == 0 {
		t.Fatal("floor property never exercised")
	}
}
