package core

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// SelectDedupe is POD's write-path component: request-based selective
// inline deduplication. With cfg.Adaptive set it becomes the complete
// POD system (Select-Dedupe + iCache); NewPOD arranges exactly that.
type SelectDedupe struct {
	base *engine.Base
	name string
}

// NewSelectDedupe returns the Select-Dedupe engine with the fixed
// 50/50 cache partition used in §IV-B.
func NewSelectDedupe(cfg engine.Config) *SelectDedupe {
	cfg.Adaptive = false
	return &SelectDedupe{base: engine.NewBase(cfg), name: "Select-Dedupe"}
}

// NewPOD returns the full POD engine: Select-Dedupe plus the adaptive
// iCache partitioning of §III-C.
func NewPOD(cfg engine.Config) *SelectDedupe {
	cfg.Adaptive = true
	return &SelectDedupe{base: engine.NewBase(cfg), name: "POD"}
}

// Name implements engine.Engine.
func (s *SelectDedupe) Name() string { return s.name }

// Release implements replay.Releaser: pooled substrate resources go
// back to their process-wide pools at end of life.
func (s *SelectDedupe) Release() { s.base.Release() }

// Stats implements engine.Engine.
func (s *SelectDedupe) Stats() *engine.Stats { return s.base.St }

// Metrics implements engine.Engine.
func (s *SelectDedupe) Metrics() *metrics.Registry { return s.base.Metrics() }

// UsedBlocks implements engine.Engine.
func (s *SelectDedupe) UsedBlocks() uint64 { return s.base.UsedBlocks() }

// ReadContent implements engine.Engine.
func (s *SelectDedupe) ReadContent(lba uint64) (uint64, bool) { return s.base.ReadContent(lba) }

// Base exposes the substrate for inspection by tests and experiments.
func (s *SelectDedupe) Base() *engine.Base { return s.base }

// CrashAndRecover models a power failure and restart: the DRAM caches
// are lost and the Map table is rebuilt from its NVRAM journal — the
// §IV-D2 durability story. It returns the number of journal records
// replayed.
func (s *SelectDedupe) CrashAndRecover() (int, error) { return s.base.Recover() }

// Flush drains any attached background task (the out-of-line dedup
// scanner) to convergence — replay and the serving layer call it at end
// of run so capacity numbers reflect a completed pass. Without an
// attached task it is a no-op.
func (s *SelectDedupe) Flush(now sim.Time) { s.base.FlushBackground(now) }

// Write runs the Select-Dedupe write path of Figure 6: split,
// fingerprint, consult the hot index (memory only — a miss just means
// a lost opportunity), classify per Figure 5, absorb the deduplicated
// chunks into the Map table, and write the rest contiguously.
func (s *SelectDedupe) Write(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	s.base.StartRequest()
	s.base.Tick(t)
	st := s.base.St
	st.Writes++

	chs, fpCost := s.base.SplitAndFingerprint(req)
	ready := t.Add(fpCost)

	dup, dedupe, target := s.base.WriteScratch(len(chs))
	for i := range chs {
		if e, ok := s.base.IC.IndexLookupS(uint32(req.Stream), chs[i].FP); ok {
			dup[i] = true
			target[i] = e.PBA
		}
	}

	cat := ClassifyInto(dedupe, dup, target, s.base.Cfg.Threshold)
	switch cat {
	case Cat1:
		st.Cat1++
	case Cat2:
		st.Cat2++
	case Cat3:
		st.Cat3++
	}

	sink := s.base.Ads
	positions := s.base.PositionsScratch(len(chs))
	for i := 0; i < len(chs); i++ {
		if dedupe[i] && s.base.TryDedupe(req.LBA+uint64(i), target[i], chs[i].Content) {
			// duplicate evidence for the tier: an inline hit against
			// a local copy (remote hits are already global knowledge)
			if sink != nil && !alloc.IsRemote(target[i]) {
				sink.Advertise(chs[i].FP, target[i], false)
			}
			continue
		} else {
			positions = append(positions, i)
		}
	}

	done := ready
	if len(positions) > 0 {
		var pbas []alloc.PBA
		var err error
		done, pbas, err = s.base.WriteFresh(ready, req, positions, chs)
		if err != nil {
			return done.Sub(t), err
		}
		for k, pos := range positions {
			s.base.InsertIndexS(req.Stream, chs[pos].FP, pbas[k])
			// canonical candidate for the tier: fire-and-forget, so
			// the write path never waits on tier load
			if sink != nil {
				sink.Advertise(chs[pos].FP, pbas[k], true)
			}
		}
	} else {
		done = s.base.AbsorbWrite(done)
	}
	s.base.NoteStreamWrite(req.Stream, len(positions) == 0)

	s.base.VerifyWrite(req, chs)
	rt := done.Sub(t)
	st.WriteRT.Add(int64(rt))
	return rt, nil
}

// Read services a read through the Map table; POD's read performance
// benefits come from the write path (no fragmentation of category-2
// data, shorter disk queues) and, in adaptive mode, from read-cache
// growth during read bursts.
func (s *SelectDedupe) Read(req *trace.Request) (sim.Duration, error) {
	s.base.StartRequest()
	s.base.Tick(req.Time)
	rt, err := s.base.ReadMapped(req, false)
	if err != nil {
		return rt, err
	}
	s.base.St.Reads++
	s.base.St.ReadRT.Add(int64(rt))
	return rt, nil
}
