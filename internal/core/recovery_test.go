package core

import (
	"math/rand"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func TestCrashRecoveryPreservesAckedWrites(t *testing.T) {
	sd := NewSelectDedupe(testConfig())
	reqs := randomWorkload(23, 400)

	model := map[uint64]chunk.ContentID{}
	for i := range reqs {
		r := &reqs[i]
		if r.Op == trace.Write {
			sd.Write(r)
			for j, id := range r.Content {
				model[r.LBA+uint64(j)] = id
			}
		} else {
			sd.Read(r)
		}
	}

	applied, err := sd.CrashAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("no journal records replayed")
	}
	for lba, want := range model {
		got, ok := sd.ReadContent(lba)
		if !ok || got != uint64(want) {
			t.Fatalf("lba %d after recovery: %d,%v want %d", lba, got, ok, want)
		}
	}
}

func TestCrashTearsFinalRecord(t *testing.T) {
	sd := NewSelectDedupe(testConfig())
	w := func(tm sim.Time, lba uint64, ids ...chunk.ContentID) {
		sd.Write(&trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: len(ids), Content: ids})
	}
	w(0, 0, 1, 2)
	w(1000, 10, 3)

	// power fails while the next write's journal record is in flight:
	// its 20-byte record is torn after 10 bytes
	sd.Base().NVRAM().ArmCrash(10)
	w(2000, 20, 4) // the system stops here

	if _, err := sd.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	// fully acked state survives
	if got, ok := sd.ReadContent(0); !ok || got != 1 {
		t.Fatalf("lba 0 = %d,%v want pre-crash content 1", got, ok)
	}
	if got, ok := sd.ReadContent(10); !ok || got != 3 {
		t.Fatalf("lba 10 = %d,%v want 3", got, ok)
	}
	// the torn write never became durable
	if _, ok := sd.ReadContent(20); ok {
		t.Fatal("torn write survived the crash")
	}
}

func TestEngineUsableAfterRecovery(t *testing.T) {
	sd := NewPOD(testConfig())
	w := func(tm sim.Time, lba uint64, ids ...chunk.ContentID) {
		sd.Write(&trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: len(ids), Content: ids})
	}
	w(0, 0, 1, 2, 3)
	usedBefore := sd.UsedBlocks()
	if _, err := sd.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	if sd.UsedBlocks() != usedBefore {
		t.Fatalf("occupancy changed across recovery: %d -> %d", usedBefore, sd.UsedBlocks())
	}
	// dedup still works against recovered state: rewriting the same
	// content must not grow the footprint...
	w(sim.Time(sim.Second), 100, 1, 2, 3)
	// ...but the index cache was lost, so the duplicate is detected only
	// after the fingerprints are re-learned; write once more
	w(sim.Time(2*sim.Second), 200, 1, 2, 3)
	if got, _ := sd.ReadContent(200); got != 1 {
		t.Fatal("post-recovery write corrupted")
	}
	// reads still verify
	sd.Read(&trace.Request{Time: sim.Time(3 * sim.Second), Op: trace.Read, LBA: 0, N: 3})
}

func TestRecoveryWithoutNVRAMFails(t *testing.T) {
	cfg := testConfig()
	cfg.NVRAMBytes = 0
	sd := NewSelectDedupe(cfg)
	if _, err := sd.CrashAndRecover(); err == nil {
		t.Fatal("recovery without NVRAM must fail")
	}
}

// Property-style: the power fails mid-journal-record at a random point
// in the workload (the final operation's record is torn at a random
// byte); recovery must preserve every earlier acked write exactly, and
// blocks touched only by the torn final operation may hold either the
// old or nothing — never fabricated content.
func TestCrashAtRandomPoints(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		sd := NewSelectDedupe(testConfig())
		reqs := randomWorkload(int64(100+trial), 200)

		crashAt := rng.Intn(150) + 20
		model := map[uint64]chunk.ContentID{}
		touchedByCrash := map[uint64]bool{}
		for i := range reqs {
			r := &reqs[i]
			if i > crashAt {
				break // the machine is dead
			}
			if i == crashAt {
				if r.Op != trace.Write {
					break
				}
				sd.Base().NVRAM().ArmCrash(int64(rng.Intn(25)))
				sd.Write(r)
				for j := 0; j < r.N; j++ {
					touchedByCrash[r.LBA+uint64(j)] = true
				}
				break
			}
			if r.Op == trace.Write {
				sd.Write(r)
				for j, id := range r.Content {
					model[r.LBA+uint64(j)] = id
				}
			} else {
				sd.Read(r)
			}
		}
		if _, err := sd.CrashAndRecover(); err != nil {
			t.Fatal(err)
		}
		for lba, want := range model {
			if touchedByCrash[lba] {
				continue // may legitimately hold old or new value
			}
			got, ok := sd.ReadContent(lba)
			if !ok || got != uint64(want) {
				t.Fatalf("trial %d: lba %d = %d,%v want %d", trial, lba, got, ok, want)
			}
		}
	}
}
