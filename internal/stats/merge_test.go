package stats

import (
	"reflect"
	"strings"
	"testing"
)

type counters struct {
	A     int64
	B     int
	U     uint64
	F     float64
	Hist  *Histogram
	Summ  *Summary
	Empty *Histogram
}

func newCounters() *counters {
	return &counters{Hist: NewHistogram(), Summ: NewSummary(), Empty: NewHistogram()}
}

func TestMergeStructsSumsAndMerges(t *testing.T) {
	a, b := newCounters(), newCounters()
	a.A, b.A = 3, 4
	a.B, b.B = 1, 2
	a.U, b.U = 10, 20
	a.F, b.F = 0.5, 0.25
	a.Hist.Add(100)
	b.Hist.Add(300)
	a.Summ.Add(1)
	b.Summ.Add(3)

	MergeStructs(a, b)

	if a.A != 7 || a.B != 3 || a.U != 30 || a.F != 0.75 {
		t.Fatalf("scalar merge wrong: %+v", a)
	}
	if a.Hist.N() != 2 || a.Hist.Sum() != 400 || a.Hist.Max() != 300 {
		t.Fatalf("histogram merge wrong: n=%d sum=%d max=%d", a.Hist.N(), a.Hist.Sum(), a.Hist.Max())
	}
	if a.Summ.N() != 2 || a.Summ.Mean() != 2 {
		t.Fatalf("summary merge wrong: %v", a.Summ)
	}
	// b must be untouched
	if b.A != 4 || b.Hist.N() != 1 {
		t.Fatalf("source mutated: %+v", b)
	}
}

func TestMergeStructsIdentity(t *testing.T) {
	// merging into a zeroed struct must reproduce the source exactly —
	// the property the per-shard snapshot aggregation relies on.
	src := newCounters()
	src.A = 42
	src.Hist.Add(7)
	src.Hist.Add(9000)
	src.Summ.Add(3.5)

	dst := newCounters()
	MergeStructs(dst, src)
	if !reflect.DeepEqual(dst, src) {
		t.Fatalf("zero+src != src:\n dst=%+v\n src=%+v", dst, src)
	}
}

func TestMergeStructsNilSourceFieldSkipped(t *testing.T) {
	a, b := newCounters(), newCounters()
	b.Empty = nil
	MergeStructs(a, b) // must not panic
	if a.Empty == nil {
		t.Fatal("destination field lost")
	}
}

func TestMergeStructsRejectsUnsupported(t *testing.T) {
	type bad struct{ S string }
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported field kind")
		}
	}()
	MergeStructs(&bad{}, &bad{})
}

func TestMergeStructsNestedStructsRecurse(t *testing.T) {
	type inner struct {
		N    int64
		Hist *Histogram
	}
	type outer struct {
		Total int64
		In    inner
	}
	a := &outer{Total: 1, In: inner{N: 10, Hist: NewHistogram()}}
	b := &outer{Total: 2, In: inner{N: 20, Hist: NewHistogram()}}
	a.In.Hist.Add(5)
	b.In.Hist.Add(7)

	MergeStructs(a, b)

	if a.Total != 3 || a.In.N != 30 {
		t.Fatalf("nested scalar merge wrong: %+v", a)
	}
	if a.In.Hist.N() != 2 || a.In.Hist.Sum() != 12 {
		t.Fatalf("nested histogram merge wrong: n=%d sum=%d", a.In.Hist.N(), a.In.Hist.Sum())
	}
	if b.In.N != 20 || b.In.Hist.N() != 1 {
		t.Fatalf("source mutated: %+v", b)
	}
}

func TestMergeStructsRejectsUnexportedFields(t *testing.T) {
	type sneaky struct {
		A      int64
		hidden int64
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic for unexported field")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "hidden") {
			t.Fatalf("panic must name the offending field: %v", r)
		}
	}()
	MergeStructs(&sneaky{hidden: 1}, &sneaky{hidden: 2})
}

func TestMergeStructsRejectsMismatch(t *testing.T) {
	type x struct{ A int64 }
	type y struct{ A int64 }
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for type mismatch")
		}
	}()
	MergeStructs(&x{}, &y{})
}
