package stats

import (
	"reflect"
	"testing"
)

type counters struct {
	A     int64
	B     int
	U     uint64
	F     float64
	Hist  *Histogram
	Summ  *Summary
	Empty *Histogram
}

func newCounters() *counters {
	return &counters{Hist: NewHistogram(), Summ: NewSummary(), Empty: NewHistogram()}
}

func TestMergeStructsSumsAndMerges(t *testing.T) {
	a, b := newCounters(), newCounters()
	a.A, b.A = 3, 4
	a.B, b.B = 1, 2
	a.U, b.U = 10, 20
	a.F, b.F = 0.5, 0.25
	a.Hist.Add(100)
	b.Hist.Add(300)
	a.Summ.Add(1)
	b.Summ.Add(3)

	MergeStructs(a, b)

	if a.A != 7 || a.B != 3 || a.U != 30 || a.F != 0.75 {
		t.Fatalf("scalar merge wrong: %+v", a)
	}
	if a.Hist.N() != 2 || a.Hist.Sum() != 400 || a.Hist.Max() != 300 {
		t.Fatalf("histogram merge wrong: n=%d sum=%d max=%d", a.Hist.N(), a.Hist.Sum(), a.Hist.Max())
	}
	if a.Summ.N() != 2 || a.Summ.Mean() != 2 {
		t.Fatalf("summary merge wrong: %v", a.Summ)
	}
	// b must be untouched
	if b.A != 4 || b.Hist.N() != 1 {
		t.Fatalf("source mutated: %+v", b)
	}
}

func TestMergeStructsIdentity(t *testing.T) {
	// merging into a zeroed struct must reproduce the source exactly —
	// the property the per-shard snapshot aggregation relies on.
	src := newCounters()
	src.A = 42
	src.Hist.Add(7)
	src.Hist.Add(9000)
	src.Summ.Add(3.5)

	dst := newCounters()
	MergeStructs(dst, src)
	if !reflect.DeepEqual(dst, src) {
		t.Fatalf("zero+src != src:\n dst=%+v\n src=%+v", dst, src)
	}
}

func TestMergeStructsNilSourceFieldSkipped(t *testing.T) {
	a, b := newCounters(), newCounters()
	b.Empty = nil
	MergeStructs(a, b) // must not panic
	if a.Empty == nil {
		t.Fatal("destination field lost")
	}
}

func TestMergeStructsRejectsUnsupported(t *testing.T) {
	type bad struct{ S string }
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unsupported field kind")
		}
	}()
	MergeStructs(&bad{}, &bad{})
}

func TestMergeStructsRejectsMismatch(t *testing.T) {
	type x struct{ A int64 }
	type y struct{ A int64 }
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for type mismatch")
		}
	}()
	MergeStructs(&x{}, &y{})
}
