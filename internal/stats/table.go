package stats

import (
	"fmt"
	"strings"
)

// Table accumulates rows of strings and renders them with aligned
// columns, used by cmd/podbench to print paper-style tables.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends one row; cells beyond the header width are kept.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row built from formatted values.
func (t *Table) AddRowf(format string, args ...any) {
	t.AddRow(strings.Split(fmt.Sprintf(format, args...), "\t")...)
}

// String renders the table with space-aligned columns.
func (t *Table) String() string {
	all := make([][]string, 0, len(t.rows)+1)
	if len(t.header) > 0 {
		all = append(all, t.header)
	}
	all = append(all, t.rows...)

	var widths []int
	for _, row := range all {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		total := 0
		for _, w := range widths {
			total += w + 2
		}
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// Ms formats microseconds as milliseconds with two decimals.
func Ms(us float64) string { return fmt.Sprintf("%.2fms", us/1000) }
