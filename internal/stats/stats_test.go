package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryBasic(t *testing.T) {
	s := NewSummary()
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-5) > 1e-9 {
		t.Errorf("mean = %f, want 5", got)
	}
	// population variance is 4; sample variance is 32/7
	if got := s.Variance(); math.Abs(got-32.0/7) > 1e-9 {
		t.Errorf("variance = %f, want %f", got, 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %f/%f", s.Min(), s.Max())
	}
	if got := s.Sum(); math.Abs(got-40) > 1e-9 {
		t.Errorf("sum = %f, want 40", got)
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a, b, all := NewSummary(), NewSummary(), NewSummary()
	for i := 0; i < 1000; i++ {
		v := rng.NormFloat64()*10 + 50
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged n = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean = %f, want %f", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-6 {
		t.Errorf("merged variance = %f, want %f", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Error("merged min/max mismatch")
	}
}

func TestSummaryMergeEmpty(t *testing.T) {
	a, b := NewSummary(), NewSummary()
	a.Add(5)
	a.Merge(b) // empty other: no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Error("merge with empty changed state")
	}
	b.Merge(a) // empty receiver: adopt
	if b.N() != 1 || b.Mean() != 5 {
		t.Error("empty receiver did not adopt")
	}
}

func TestSummaryReset(t *testing.T) {
	s := NewSummary()
	s.Add(10)
	s.Reset()
	if s.N() != 0 || s.Mean() != 0 {
		t.Error("reset failed")
	}
}

func TestSummaryString(t *testing.T) {
	s := NewSummary()
	s.Add(1)
	if !strings.Contains(s.String(), "n=1") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Add(i)
	}
	if h.N() != 100 {
		t.Fatalf("n = %d", h.N())
	}
	if h.Sum() != 5050 {
		t.Errorf("sum = %d, want 5050", h.Sum())
	}
	if h.Max() != 100 {
		t.Errorf("max = %d, want 100", h.Max())
	}
	if got := h.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %f, want 50.5", got)
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Add(-5)
	if h.Sum() != 0 || h.N() != 1 {
		t.Error("negative sample should clamp to 0")
	}
}

func TestHistogramPercentileEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 {
		t.Error("empty histogram percentile should be 0")
	}
}

func TestHistogramPercentileAccuracy(t *testing.T) {
	// Log-bucketed percentiles must be within a factor of 2 of exact.
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	var samples []float64
	for i := 0; i < 10000; i++ {
		v := int64(rng.ExpFloat64() * 10000)
		h.Add(v)
		samples = append(samples, float64(v))
	}
	for _, p := range []float64{50, 90, 99} {
		est := h.Percentile(p)
		exact := ExactPercentile(samples, p)
		if exact == 0 {
			continue
		}
		ratio := est / exact
		if ratio < 0.5 || ratio > 2.0 {
			t.Errorf("p%.0f: est %f vs exact %f (ratio %f)", p, est, exact, ratio)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Add(10)
	b.Add(1000)
	a.Merge(b)
	if a.N() != 2 || a.Sum() != 1010 || a.Max() != 1000 {
		t.Error("merge wrong")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Add(5)
	h.Reset()
	if h.N() != 0 || h.Sum() != 0 {
		t.Error("reset failed")
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4}, {1023, 10}, {1024, 11},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestCounter(t *testing.T) {
	c := Counter{Name: "x"}
	c.Inc()
	c.Addn(4)
	if c.Value != 5 {
		t.Errorf("counter = %d, want 5", c.Value)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 4) != 25 {
		t.Error("ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Error("ratio with zero denominator should be 0")
	}
}

func TestExactPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := ExactPercentile(s, 50); got != 5 {
		t.Errorf("p50 = %f, want 5", got)
	}
	if got := ExactPercentile(s, 100); got != 10 {
		t.Errorf("p100 = %f, want 10", got)
	}
	if got := ExactPercentile(nil, 50); got != 0 {
		t.Errorf("empty p50 = %f, want 0", got)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta\t%d", 22)
	out := tb.String()
	for _, want := range []string{"Demo", "name", "alpha", "beta", "22"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if Pct(12.34) != "12.3%" {
		t.Errorf("Pct = %q", Pct(12.34))
	}
	if Ms(1500) != "1.50ms" {
		t.Errorf("Ms = %q", Ms(1500))
	}
}

// Property: histogram mean equals true mean exactly (sum is exact), and
// percentile estimates never exceed max.
func TestHistogramProperties(t *testing.T) {
	f := func(vals []uint32) bool {
		h := NewHistogram()
		var sum int64
		var max int64
		for _, v := range vals {
			x := int64(v % 1_000_000)
			h.Add(x)
			sum += x
			if x > max {
				max = x
			}
		}
		if h.Sum() != sum {
			return false
		}
		if len(vals) > 0 && h.Percentile(99) > float64(max) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Summary.Merge is associative up to floating error for mean.
func TestSummaryMergeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(in []float64) []float64 {
			out := in[:0]
			for _, v := range in {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		a, b, all := NewSummary(), NewSummary(), NewSummary()
		for _, v := range xs {
			a.Add(v)
			all.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
			all.Add(v)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		scale := math.Max(1, math.Abs(all.Mean()))
		return math.Abs(a.Mean()-all.Mean())/scale < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
