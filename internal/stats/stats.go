// Package stats provides the streaming statistics used by the POD
// evaluation harness: Welford mean/variance accumulators, log-scale
// latency histograms with percentile estimation, and simple counters.
//
// Everything here is allocation-light and deterministic so that replay
// results are byte-for-byte reproducible.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary is a streaming accumulator for mean and variance using
// Welford's online algorithm, plus min/max tracking.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// NewSummary returns an empty accumulator.
func NewSummary() *Summary {
	return &Summary{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// N reports the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean reports the arithmetic mean, or 0 with no observations.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Sum reports the total of all observations.
func (s *Summary) Sum() float64 { return s.mean * float64(s.n) }

// Variance reports the unbiased sample variance.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev reports the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Min reports the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max reports the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// Merge folds another summary into s (parallel-reduction friendly).
func (s *Summary) Merge(o *Summary) {
	if o.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *o
		return
	}
	n := s.n + o.n
	d := o.mean - s.mean
	mean := s.mean + d*float64(o.n)/float64(n)
	m2 := s.m2 + o.m2 + d*d*float64(s.n)*float64(o.n)/float64(n)
	mn, mx := s.min, s.max
	if o.min < mn {
		mn = o.min
	}
	if o.max > mx {
		mx = o.max
	}
	*s = Summary{n: n, mean: mean, m2: m2, min: mn, max: mx}
}

// Reset clears the accumulator.
func (s *Summary) Reset() { *s = *NewSummary() }

// String renders "mean±std [min,max] (n)".
func (s *Summary) String() string {
	return fmt.Sprintf("%.3f±%.3f [%.3f,%.3f] (n=%d)", s.Mean(), s.StdDev(), s.Min(), s.Max(), s.n)
}

// Histogram is a log₂-bucketed latency histogram over non-negative
// integer samples (microseconds in this repository). Bucket i covers
// [2^i, 2^(i+1)); bucket 0 covers [0,2). Percentiles are estimated by
// linear interpolation within a bucket.
type Histogram struct {
	buckets [64]int64
	n       int64
	sum     int64
	max     int64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

func bucketOf(v int64) int {
	if v < 1 {
		return 0
	}
	return 64 - leadingZeros64(uint64(v))
}

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Add records one sample; negative samples are clamped to zero.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	if b > 63 {
		b = 63
	}
	h.buckets[b]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N reports the number of samples.
func (h *Histogram) N() int64 { return h.n }

// Mean reports the arithmetic mean of samples.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Sum reports the sample total.
func (h *Histogram) Sum() int64 { return h.sum }

// Max reports the largest sample seen.
func (h *Histogram) Max() int64 { return h.max }

// Percentile estimates the p-th percentile (0 < p ≤ 100).
func (h *Histogram) Percentile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := p / 100 * float64(h.n)
	if rank < 1 {
		rank = 1
	}
	var seen float64
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		if seen+float64(c) >= rank {
			lo := float64(int64(1) << uint(i-1))
			if i == 0 {
				lo = 0
			}
			hi := float64(int64(1) << uint(i))
			frac := (rank - seen) / float64(c)
			v := lo + frac*(hi-lo)
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
		seen += float64(c)
	}
	return float64(h.max)
}

// Merge folds another histogram into h.
func (h *Histogram) Merge(o *Histogram) {
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	h.n += o.n
	h.sum += o.sum
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears the histogram.
func (h *Histogram) Reset() { *h = Histogram{} }

// Counter is a named monotonically increasing tally.
type Counter struct {
	Name  string
	Value int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Value++ }

// Addn adds n.
func (c *Counter) Addn(n int64) { c.Value += n }

// Ratio returns a/b as a percentage, 0 when b is 0.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// Exact percentile over a full sample slice (used by tests to validate
// the histogram estimator, and by small analyses where exactness is
// cheap). Sorts a copy; p in (0,100].
func ExactPercentile(samples []float64, p float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}
