package stats

import (
	"fmt"
	"reflect"
)

// MergeStructs folds src's counters into dst, field by field. Both
// must be pointers to the same struct type with only exported fields.
// Integer and float fields are summed; pointer fields are merged by
// calling their Merge method (nil src fields are skipped); embedded or
// named struct fields recurse. An unexported field panics with the
// offending field's name (reflection could read but never set it, so
// it would silently stop aggregating), as does any other field kind —
// a new field type in a stats struct must decide explicitly how it
// aggregates across shards rather than being silently dropped.
//
// This is what lets per-shard counter structs (engine.Stats and
// friends) aggregate into one report without hand-maintained
// field-by-field summing at every call site.
func MergeStructs(dst, src interface{}) {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Ptr || sv.Kind() != reflect.Ptr || dv.IsNil() || sv.IsNil() {
		panic("stats: MergeStructs needs non-nil pointers to structs")
	}
	dv, sv = dv.Elem(), sv.Elem()
	if dv.Type() != sv.Type() || dv.Kind() != reflect.Struct {
		panic(fmt.Sprintf("stats: MergeStructs type mismatch: %v vs %v", dv.Type(), sv.Type()))
	}
	for i := 0; i < dv.NumField(); i++ {
		df, sf := dv.Field(i), sv.Field(i)
		name := dv.Type().Field(i).Name
		if dv.Type().Field(i).PkgPath != "" {
			panic(fmt.Sprintf("stats: MergeStructs: field %s of %v is unexported and cannot aggregate", name, dv.Type()))
		}
		switch df.Kind() {
		case reflect.Struct:
			MergeStructs(df.Addr().Interface(), sf.Addr().Interface())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			df.SetInt(df.Int() + sf.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			df.SetUint(df.Uint() + sf.Uint())
		case reflect.Float32, reflect.Float64:
			df.SetFloat(df.Float() + sf.Float())
		case reflect.Ptr:
			if sf.IsNil() {
				continue
			}
			if df.IsNil() {
				panic(fmt.Sprintf("stats: MergeStructs: destination field %s is nil", name))
			}
			m := df.MethodByName("Merge")
			if !m.IsValid() || m.Type().NumIn() != 1 || !sf.Type().AssignableTo(m.Type().In(0)) {
				panic(fmt.Sprintf("stats: MergeStructs: field %s (%v) has no Merge(%v) method", name, df.Type(), sf.Type()))
			}
			m.Call([]reflect.Value{sf})
		default:
			panic(fmt.Sprintf("stats: MergeStructs: field %s has unsupported kind %v", name, df.Kind()))
		}
	}
}
