package trace

import (
	"strings"
	"testing"
)

const fiuSample = `1000 123 httpd 8 8 W 8 0 a1b2c3d4e5f60718
1500 123 httpd 16 8 W 8 0 a1b2c3d4e5f60718
2000 456 nfsd 8 8 R 8 0 0
`

func TestReadFIUBasic(t *testing.T) {
	tr, err := ReadFIU(strings.NewReader(fiuSample), "fiu", FIUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 3 {
		t.Fatalf("requests = %d", len(tr.Requests))
	}
	// 512-byte sectors: block 8, count 8 → bytes [4096, 8192) → 1 chunk at lba 1
	r0 := tr.Requests[0]
	if r0.Op != Write || r0.LBA != 1 || r0.N != 1 {
		t.Fatalf("r0 = %+v", r0)
	}
	if r0.Time != 0 {
		t.Fatalf("timestamps must normalize to zero, got %v", r0.Time)
	}
	// identical digests map to identical content
	if tr.Requests[0].Content[0] != tr.Requests[1].Content[0] {
		t.Fatal("same MD5 must produce same content ID")
	}
	// read at relative 1000µs... third record is at 2000-1000
	if tr.Requests[2].Op != Read || tr.Requests[2].Time != 1000 {
		t.Fatalf("r2 = %+v", tr.Requests[2])
	}
}

func TestReadFIUUnalignedSpan(t *testing.T) {
	// sectors [7, 17) = bytes [3584, 8704) spans chunks 0..2
	in := "0 1 p 7 10 W 8 0 deadbeef\n"
	tr, err := ReadFIU(strings.NewReader(in), "fiu", FIUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := tr.Requests[0]
	if r.LBA != 0 || r.N != 3 {
		t.Fatalf("unaligned span = %+v, want lba 0 n 3", r)
	}
	// derived per-chunk identities are distinct
	if r.Content[0] == r.Content[1] {
		t.Fatal("per-chunk identities must differ within a record")
	}
}

func TestReadFIU4KBlocks(t *testing.T) {
	in := "0 1 p 5 2 W 8 0 cafe\n"
	tr, err := ReadFIU(strings.NewReader(in), "fiu", FIUOptions{SectorBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	r := tr.Requests[0]
	if r.LBA != 5 || r.N != 2 {
		t.Fatalf("4K-addressed record = %+v", r)
	}
}

func TestReadFIUDropReads(t *testing.T) {
	tr, err := ReadFIU(strings.NewReader(fiuSample), "fiu", FIUOptions{DropReads: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Requests {
		if tr.Requests[i].Op == Read {
			t.Fatal("read survived DropReads")
		}
	}
}

func TestReadFIURejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"x 1 p 0 1 W 8 0 d\n", // bad ts
		"0 1 p x 1 W 8 0 d\n", // bad block
		"0 1 p 0 0 W 8 0 d\n", // zero count
		"0 1 p 0 1 X 8 0 d\n", // bad op
		"0 1 p 0 1 W 8 0\n",   // missing digest
		"0 1\n",               // too few fields
	} {
		if _, err := ReadFIU(strings.NewReader(in), "bad", FIUOptions{}); err == nil {
			t.Errorf("input %q: expected error", in)
		}
	}
}

func TestReadFIUBadSectorSize(t *testing.T) {
	if _, err := ReadFIU(strings.NewReader(""), "x", FIUOptions{SectorBytes: 3000}); err == nil {
		t.Fatal("incompatible sector size must fail")
	}
}

func TestReadFIUThenReassemble(t *testing.T) {
	// two adjacent 4KB write records close in time: one request after
	// reassembly
	in := "0 1 p 8 8 W 8 0 aaaa\n100 1 p 16 8 W 8 0 bbbb\n"
	tr, err := ReadFIU(strings.NewReader(in), "fiu", FIUOptions{})
	if err != nil {
		t.Fatal(err)
	}
	merged := Reassemble(tr.Requests, 1000)
	if len(merged) != 1 || merged[0].N != 2 {
		t.Fatalf("reassembled = %+v", merged)
	}
}

func TestReadFIUTimestampUnit(t *testing.T) {
	in := "0 1 p 0 8 W 8 0 a\n2 1 p 8 8 W 8 0 b\n"
	tr, err := ReadFIU(strings.NewReader(in), "fiu", FIUOptions{TimestampUnitUS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Requests[1].Time != 2000 {
		t.Fatalf("ms timestamps not scaled: %v", tr.Requests[1].Time)
	}
}
