package trace

import (
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
)

func mkTrace(name string, times ...int64) *Trace {
	t := &Trace{Name: name}
	for _, tm := range times {
		t.Requests = append(t.Requests, Request{
			Time: sim.Time(tm), Op: Write, LBA: uint64(tm), N: 1,
			Content: []chunk.ContentID{chunk.ContentID(tm + 1)},
		})
	}
	return t
}

func TestMergeInterleavesByTime(t *testing.T) {
	a := mkTrace("a", 1, 4, 9)
	b := mkTrace("b", 2, 3, 10)
	c := mkTrace("c", 5)
	m := Merge("abc", a, b, c)

	if m.Name != "abc" {
		t.Fatalf("name %q", m.Name)
	}
	want := []int64{1, 2, 3, 4, 5, 9, 10}
	if len(m.Requests) != len(want) {
		t.Fatalf("got %d requests, want %d", len(m.Requests), len(want))
	}
	for i, w := range want {
		if int64(m.Requests[i].Time) != w {
			t.Fatalf("request %d at t=%d, want %d", i, int64(m.Requests[i].Time), w)
		}
	}
}

func TestMergeStableOnTies(t *testing.T) {
	a := mkTrace("a", 7)
	b := mkTrace("b", 7)
	a.Requests[0].LBA = 100
	b.Requests[0].LBA = 200
	m := Merge("t", a, b)
	if m.Requests[0].LBA != 100 || m.Requests[1].LBA != 200 {
		t.Fatalf("tie not broken by input order: %d then %d", m.Requests[0].LBA, m.Requests[1].LBA)
	}
}

func TestMergeEmptyInputs(t *testing.T) {
	m := Merge("e", &Trace{Name: "x"}, mkTrace("y", 3))
	if len(m.Requests) != 1 {
		t.Fatalf("got %d requests", len(m.Requests))
	}
	if m := Merge("none"); len(m.Requests) != 0 {
		t.Fatalf("empty merge produced %d requests", len(m.Requests))
	}
}

func TestMergePanicsOnUnorderedInput(t *testing.T) {
	bad := mkTrace("bad", 9, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unordered input")
		}
	}()
	Merge("m", bad, mkTrace("ok", 1))
}
