// Package trace defines the block-level I/O trace model of the POD
// evaluation: timestamped read/write requests addressed in 4 KB chunks,
// each write chunk carrying a content identity.
//
// The FIU SyLab traces the paper replays are not redistributable, so
// this repository generates synthetic traces with matched
// characteristics (package workload); this package provides the
// request model itself, text and binary codecs, the split-record
// reassembly step §IV-A describes ("the original requests are
// reconstructed according to their timestamp, LBA and length"), and the
// redundancy analyses behind Figure 1, Figure 2 and Table II.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
)

// Op is the request direction.
type Op uint8

// Request operations.
const (
	Read Op = iota
	Write
)

// String renders the op as "R" or "W".
func (o Op) String() string {
	if o == Write {
		return "W"
	}
	return "R"
}

// ParseOp resolves an op name: "R"/"r"/"read" and "W"/"w"/"write".
// Tools share this instead of validating op flags ad hoc.
func ParseOp(s string) (Op, error) {
	switch strings.ToLower(s) {
	case "r", "read":
		return Read, nil
	case "w", "write":
		return Write, nil
	}
	return 0, fmt.Errorf("trace: bad op %q (want R or W)", s)
}

// StreamID identifies the tenant stream a request belongs to. Stream 0
// is the default (untagged) stream; multi-tenant compositions (Merge,
// workload.MixedTrace) assign small positive IDs so the engine can
// estimate per-stream locality and apportion index-cache quota.
type StreamID uint32

// DefaultStream is the stream of untagged requests.
const DefaultStream StreamID = 0

// MaxStreams bounds valid stream IDs (exclusive). Per-stream state in
// the engine is sized and validated against this.
const MaxStreams = 64

// Request is one block-level I/O request. LBA and length are in 4 KB
// chunks. Write requests carry the content identity of every chunk;
// read requests have nil Content. Stream tags the tenant stream the
// request belongs to (DefaultStream when untagged).
type Request struct {
	Time    sim.Time
	Op      Op
	LBA     uint64
	N       int
	Stream  StreamID
	Content []chunk.ContentID
}

// SizeBytes reports the request size in bytes.
func (r *Request) SizeBytes() int64 { return int64(r.N) * chunk.Size }

// Validate checks internal consistency.
func (r *Request) Validate() error {
	if r.N <= 0 {
		return fmt.Errorf("trace: request with %d chunks", r.N)
	}
	if r.Op == Write && len(r.Content) != r.N {
		return fmt.Errorf("trace: write with %d chunks but %d content ids", r.N, len(r.Content))
	}
	if r.Op == Read && r.Content != nil {
		return fmt.Errorf("trace: read carrying content")
	}
	if r.Stream >= MaxStreams {
		return fmt.Errorf("trace: stream id %d out of range (max %d)", r.Stream, MaxStreams-1)
	}
	return nil
}

// Trace is an ordered request stream with identifying metadata.
type Trace struct {
	Name     string
	Requests []Request
}

// Reassemble merges split records back into original requests, the
// preprocessing step the paper applies to the FIU traces (which were
// recorded as fixed-size 4 KB/512 B records): consecutive records with
// the same op, contiguous LBAs, and timestamps within window are one
// logical request. Input must be time-ordered; the result preserves the
// first record's timestamp.
func Reassemble(reqs []Request, window sim.Duration) []Request {
	if len(reqs) == 0 {
		return nil
	}
	out := make([]Request, 0, len(reqs))
	cur := cloneRequest(reqs[0])
	for _, r := range reqs[1:] {
		contig := r.Op == cur.Op &&
			r.Stream == cur.Stream &&
			r.LBA == cur.LBA+uint64(cur.N) &&
			r.Time.Sub(cur.Time) <= window
		if contig {
			cur.N += r.N
			if cur.Op == Write {
				cur.Content = append(cur.Content, r.Content...)
			}
			continue
		}
		out = append(out, cur)
		cur = cloneRequest(r)
	}
	return append(out, cur)
}

func cloneRequest(r Request) Request {
	if r.Content != nil {
		r.Content = append([]chunk.ContentID(nil), r.Content...)
	}
	return r
}

// --- text codec ---
//
// One request per line:
//
//	<time_us> <R|W> <lba> <nchunks> [id1,id2,...] [s<stream>]
//
// The trailing s<stream> field is emitted only for tagged requests
// (Stream != 0), so untagged traces encode byte-identically to the
// pre-stream format. Lines starting with '#' are comments.

// WriteText encodes t to w in the text format.
func WriteText(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# pod trace: %s (%d requests)\n", t.Name, len(t.Requests))
	for i := range t.Requests {
		r := &t.Requests[i]
		fmt.Fprintf(bw, "%d %s %d %d", int64(r.Time), r.Op, r.LBA, r.N)
		if r.Op == Write {
			bw.WriteByte(' ')
			for j, id := range r.Content {
				if j > 0 {
					bw.WriteByte(',')
				}
				bw.WriteString(strconv.FormatUint(uint64(id), 10))
			}
		}
		if r.Stream != DefaultStream {
			bw.WriteString(" s")
			bw.WriteString(strconv.FormatUint(uint64(r.Stream), 10))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// ReadText decodes a text-format trace.
func ReadText(r io.Reader, name string) (*Trace, error) {
	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			return nil, fmt.Errorf("trace: line %d: want ≥4 fields, got %d", lineNo, len(fields))
		}
		var stream StreamID
		if last := fields[len(fields)-1]; len(last) > 1 && last[0] == 's' {
			sid, err := strconv.ParseUint(last[1:], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: line %d: bad stream field %q", lineNo, last)
			}
			stream = StreamID(sid)
			fields = fields[:len(fields)-1]
			if len(fields) < 4 {
				return nil, fmt.Errorf("trace: line %d: want ≥4 fields, got %d", lineNo, len(fields))
			}
		}
		ts, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %v", lineNo, err)
		}
		var op Op
		switch fields[1] {
		case "R":
			op = Read
		case "W":
			op = Write
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, fields[1])
		}
		lba, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad lba: %v", lineNo, err)
		}
		n, err := strconv.Atoi(fields[3])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("trace: line %d: bad chunk count %q", lineNo, fields[3])
		}
		req := Request{Time: sim.Time(ts), Op: op, LBA: lba, N: n, Stream: stream}
		if op == Read && len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: read with %d fields, want 4", lineNo, len(fields))
		}
		if op == Write && len(fields) != 5 {
			return nil, fmt.Errorf("trace: line %d: write with %d fields, want 5", lineNo, len(fields))
		}
		if op == Write {
			parts := strings.Split(fields[4], ",")
			if len(parts) != n {
				return nil, fmt.Errorf("trace: line %d: %d ids for %d chunks", lineNo, len(parts), n)
			}
			req.Content = make([]chunk.ContentID, n)
			for i, p := range parts {
				id, err := strconv.ParseUint(p, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: bad content id %q", lineNo, p)
				}
				req.Content[i] = chunk.ContentID(id)
			}
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		t.Requests = append(t.Requests, req)
	}
	return t, sc.Err()
}

// --- binary codec ---
//
// Header: magic "PODT", u32 name length, name bytes, u64 request count.
// Request: i64 time, u8 op, u64 lba, u32 n, then n×u64 ids for writes.
// Tagged requests (Stream != 0) set the high bit of the op byte and
// append a u32 stream id after n; untagged requests encode exactly as
// the pre-stream format did, so old files remain readable and untagged
// output is byte-identical.

var binMagic = [4]byte{'P', 'O', 'D', 'T'}

// binStreamFlag marks an op byte whose request carries a stream id.
const binStreamFlag = 0x80

// WriteBinary encodes t to w in the compact binary format.
func WriteBinary(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	bw.Write(binMagic[:])
	var u32 [4]byte
	var u64 [8]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(t.Name)))
	bw.Write(u32[:])
	bw.WriteString(t.Name)
	binary.LittleEndian.PutUint64(u64[:], uint64(len(t.Requests)))
	bw.Write(u64[:])
	for i := range t.Requests {
		r := &t.Requests[i]
		binary.LittleEndian.PutUint64(u64[:], uint64(r.Time))
		bw.Write(u64[:])
		opByte := byte(r.Op)
		if r.Stream != DefaultStream {
			opByte |= binStreamFlag
		}
		bw.WriteByte(opByte)
		binary.LittleEndian.PutUint64(u64[:], r.LBA)
		bw.Write(u64[:])
		binary.LittleEndian.PutUint32(u32[:], uint32(r.N))
		bw.Write(u32[:])
		if r.Stream != DefaultStream {
			binary.LittleEndian.PutUint32(u32[:], uint32(r.Stream))
			bw.Write(u32[:])
		}
		if r.Op == Write {
			for _, id := range r.Content {
				binary.LittleEndian.PutUint64(u64[:], uint64(id))
				bw.Write(u64[:])
			}
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a binary-format trace.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != binMagic {
		return nil, fmt.Errorf("trace: bad binary magic %q", magic)
	}
	var u32 [4]byte
	var u64 [8]byte
	if _, err := io.ReadFull(br, u32[:]); err != nil {
		return nil, err
	}
	nameLen := binary.LittleEndian.Uint32(u32[:])
	if nameLen > 1<<16 {
		return nil, fmt.Errorf("trace: implausible name length %d", nameLen)
	}
	nameBuf := make([]byte, nameLen)
	if _, err := io.ReadFull(br, nameBuf); err != nil {
		return nil, err
	}
	if _, err := io.ReadFull(br, u64[:]); err != nil {
		return nil, err
	}
	count := binary.LittleEndian.Uint64(u64[:])
	if count > 1<<32 {
		return nil, fmt.Errorf("trace: implausible request count %d", count)
	}
	t := &Trace{Name: string(nameBuf), Requests: make([]Request, 0, count)}
	for i := uint64(0); i < count; i++ {
		var req Request
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, err
		}
		req.Time = sim.Time(binary.LittleEndian.Uint64(u64[:]))
		op, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		req.Op = Op(op &^ binStreamFlag)
		if _, err := io.ReadFull(br, u64[:]); err != nil {
			return nil, err
		}
		req.LBA = binary.LittleEndian.Uint64(u64[:])
		if _, err := io.ReadFull(br, u32[:]); err != nil {
			return nil, err
		}
		req.N = int(binary.LittleEndian.Uint32(u32[:]))
		if req.N <= 0 || req.N > 1<<20 {
			return nil, fmt.Errorf("trace: request %d: implausible chunk count %d", i, req.N)
		}
		if op&binStreamFlag != 0 {
			if _, err := io.ReadFull(br, u32[:]); err != nil {
				return nil, err
			}
			req.Stream = StreamID(binary.LittleEndian.Uint32(u32[:]))
		}
		if req.Op == Write {
			req.Content = make([]chunk.ContentID, req.N)
			for j := 0; j < req.N; j++ {
				if _, err := io.ReadFull(br, u64[:]); err != nil {
					return nil, err
				}
				req.Content[j] = chunk.ContentID(binary.LittleEndian.Uint64(u64[:]))
			}
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("trace: request %d: %v", i, err)
		}
		t.Requests = append(t.Requests, req)
	}
	return t, nil
}
