package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
)

// FuzzReadText: the text parser must reject or accept arbitrary input
// without panicking, and every accepted trace must be internally valid.
func FuzzReadText(f *testing.F) {
	f.Add("0 W 0 2 5,6\n100 R 0 2\n")
	f.Add("# comment\n\n1 W 9 1 42\n")
	f.Add("garbage")
	f.Add("0 W 0 1")
	f.Add("0 W 18446744073709551615 1 18446744073709551615\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadText(strings.NewReader(input), "fuzz")
		if err != nil {
			return
		}
		for i := range tr.Requests {
			if verr := tr.Requests[i].Validate(); verr != nil {
				t.Fatalf("accepted invalid request %d: %v", i, verr)
			}
		}
		// accepted traces must round-trip
		var buf bytes.Buffer
		if err := WriteText(&buf, tr); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := ReadText(&buf, "fuzz")
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(back.Requests) != len(tr.Requests) {
			t.Fatalf("round trip lost requests: %d != %d", len(back.Requests), len(tr.Requests))
		}
	})
}

// FuzzReadBinary: the binary decoder must handle arbitrary bytes
// (truncation, corruption, hostile length fields) without panicking or
// over-allocating.
func FuzzReadBinary(f *testing.F) {
	good := &Trace{Name: "seed", Requests: []Request{
		{Time: 1, Op: Write, LBA: 2, N: 1, Content: []chunk.ContentID{7}},
		{Time: 5, Op: Read, LBA: 0, N: 3},
	}}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, good); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PODT"))
	f.Add([]byte{})
	data := append([]byte(nil), buf.Bytes()...)
	if len(data) > 10 {
		data[9] ^= 0xFF // corrupt the name length
	}
	f.Add(data)
	f.Fuzz(func(t *testing.T, input []byte) {
		tr, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		for i := range tr.Requests {
			if verr := tr.Requests[i].Validate(); verr != nil {
				t.Fatalf("accepted invalid request %d: %v", i, verr)
			}
		}
	})
}
