package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
)

func ws(t sim.Time, lba uint64, s StreamID, ids ...chunk.ContentID) Request {
	r := w(t, lba, ids...)
	r.Stream = s
	return r
}

func TestValidateStreamBound(t *testing.T) {
	ok := ws(0, 0, MaxStreams-1, 1)
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := ws(0, 0, MaxStreams, 1)
	if bad.Validate() == nil {
		t.Fatalf("stream id %d must be rejected", MaxStreams)
	}
}

func streamTrace() *Trace {
	return &Trace{
		Name: "streams",
		Requests: []Request{
			ws(0, 0, 1, 1, 2),
			{Time: 50, Op: Read, LBA: 0, N: 2, Stream: 2},
			w(100, 10, 3), // untagged rides along
			ws(200, 0, MaxStreams-1, 1, 2),
		},
	}
}

func TestStreamCodecRoundTrip(t *testing.T) {
	tr := streamTrace()
	var tb, bb bytes.Buffer
	if err := WriteText(&tb, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bb, tr); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadText(&tb, "streams")
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bb)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromText.Requests, tr.Requests) {
		t.Fatalf("text round trip mismatch:\n%+v\n%+v", fromText.Requests, tr.Requests)
	}
	if !reflect.DeepEqual(fromBin.Requests, tr.Requests) {
		t.Fatalf("binary round trip mismatch:\n%+v\n%+v", fromBin.Requests, tr.Requests)
	}
}

// TestUntaggedTextUnchanged pins the compatibility property: requests
// on the default stream encode exactly as they did before stream tags
// existed, so untagged corpora stay byte-identical.
func TestUntaggedTextUnchanged(t *testing.T) {
	tr := &Trace{Name: "x", Requests: []Request{w(0, 7, 5), r(100, 7, 1)}}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	want := "# pod trace: x (2 requests)\n0 W 7 1 5\n100 R 7 1\n"
	if got := buf.String(); got != want {
		t.Fatalf("untagged text = %q, want %q", got, want)
	}
}

func TestTextRejectsBadStreamField(t *testing.T) {
	cases := []string{
		"0 W 0 1 5 sxx",  // unparsable stream id
		"0 W 0 1 5 s999", // out of range
		"0 R 0 1 s1 s2",  // two stream fields
	}
	for _, line := range cases {
		if _, err := ReadText(strings.NewReader(line), "bad"); err == nil {
			t.Errorf("line %q: expected error", line)
		}
	}
}

func TestReassembleDoesNotMixStreams(t *testing.T) {
	in := []Request{
		ws(0, 0, 1, 1),
		ws(1, 1, 2, 2), // contiguous LBA, different tenant
	}
	out := Reassemble(in, 1000)
	if len(out) != 2 {
		t.Fatal("merged requests across streams")
	}
}

func TestMergeTagsUntaggedInputs(t *testing.T) {
	a := &Trace{Name: "a", Requests: []Request{w(0, 0, 1), w(20, 1, 2)}}
	b := &Trace{Name: "b", Requests: []Request{w(10, 5, 3)}}
	m := Merge("mix", a, b)
	want := []StreamID{1, 2, 1}
	for i, r := range m.Requests {
		if r.Stream != want[i] {
			t.Errorf("request %d on stream %d, want %d", i, r.Stream, want[i])
		}
	}
	// inputs themselves must be untouched (requests are copied by value)
	if a.Requests[0].Stream != DefaultStream {
		t.Error("Merge mutated its input")
	}
}

func TestMergeKeepsTaggedInputs(t *testing.T) {
	tagged := &Trace{Name: "tagged", Requests: []Request{ws(0, 0, 7, 1)}}
	untagged := &Trace{Name: "plain", Requests: []Request{w(5, 1, 2)}}
	m := Merge("mix", tagged, untagged)
	if m.Requests[0].Stream != 7 {
		t.Errorf("tagged input re-stamped to stream %d", m.Requests[0].Stream)
	}
	if m.Requests[1].Stream != 2 {
		t.Errorf("untagged input got stream %d, want positional default 2", m.Requests[1].Stream)
	}
}

func TestMergeSingleTraceIdentity(t *testing.T) {
	a := &Trace{Name: "a", Requests: []Request{w(0, 0, 1)}}
	m := Merge("solo", a)
	if m.Requests[0].Stream != DefaultStream {
		t.Error("single-trace merge must not invent stream tags")
	}
}

func TestMergePanicsOnMixedTagging(t *testing.T) {
	mixed := &Trace{Name: "mixed", Requests: []Request{w(0, 0, 1), ws(10, 1, 3, 2)}}
	other := &Trace{Name: "other", Requests: []Request{w(5, 9, 9)}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on input mixing tagged and untagged requests")
		}
	}()
	Merge("mix", mixed, other)
}
