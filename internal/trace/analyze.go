package trace

import (
	"github.com/pod-dedup/pod/internal/chunk"
)

// Characteristics are the Table II trace statistics.
type Characteristics struct {
	Name       string
	IOs        int
	WriteRatio float64 // percent
	AvgReqKB   float64
}

// SizeBucket is one bar group of Figure 1: write-request counts within
// a size class and how many of them were redundant.
type SizeBucket struct {
	LabelKB   int   // 4, 8, 16, 32, 64, 128 (≥128 for the last)
	Total     int64 // write requests in this size class
	Redundant int64 // fully redundant write requests (all chunks seen before)
}

// Analysis aggregates everything the paper's workload figures report.
type Analysis struct {
	Chars Characteristics

	// Figure 1: redundancy distribution across request sizes.
	Buckets []SizeBucket

	// Figure 2 (percent of written chunks): writes whose content
	// already sits at the very same LBA (same location — pure I/O
	// redundancy) vs. content duplicated from elsewhere (different
	// location — capacity redundancy). IORedundancyPct is their sum.
	SameLBAPct      float64
	DiffLBAPct      float64
	IORedundancyPct float64

	// Chunk-level totals.
	WriteChunks     int64
	RedundantChunks int64
}

// BucketLabelsKB are the Figure 1 size classes.
var BucketLabelsKB = []int{4, 8, 16, 32, 64, 128}

func bucketIndex(n int) int {
	kb := n * chunk.Size / 1024
	for i, lim := range BucketLabelsKB {
		if kb <= lim || i == len(BucketLabelsKB)-1 {
			return i
		}
	}
	return len(BucketLabelsKB) - 1
}

// Analyze computes the workload-characterization statistics over a
// trace in one streaming pass. Redundancy is judged against the history
// of the stream itself: a chunk is redundant when its content was
// written earlier, and the redundancy is "same location" when the chunk
// currently stored at the target LBA already has that content.
func Analyze(t *Trace) *Analysis {
	a := &Analysis{}
	a.Chars.Name = t.Name
	a.Buckets = make([]SizeBucket, len(BucketLabelsKB))
	for i, kb := range BucketLabelsKB {
		a.Buckets[i].LabelKB = kb
	}

	seen := make(map[chunk.ContentID]struct{})
	at := make(map[uint64]chunk.ContentID) // lba -> current content

	var writes, totalChunksAll int64
	var sameLBA, diffLBA int64
	for i := range t.Requests {
		r := &t.Requests[i]
		totalChunksAll += int64(r.N)
		if r.Op != Write {
			continue
		}
		writes++
		b := bucketIndex(r.N)
		a.Buckets[b].Total++

		redundant := 0
		for j, id := range r.Content {
			lba := r.LBA + uint64(j)
			if _, ok := seen[id]; ok {
				redundant++
				if cur, ok := at[lba]; ok && cur == id {
					sameLBA++
				} else {
					diffLBA++
				}
			}
			seen[id] = struct{}{}
			at[lba] = id
		}
		a.WriteChunks += int64(r.N)
		a.RedundantChunks += int64(redundant)
		if redundant == r.N {
			a.Buckets[b].Redundant++
		}
	}

	a.Chars.IOs = len(t.Requests)
	if len(t.Requests) > 0 {
		a.Chars.WriteRatio = 100 * float64(writes) / float64(len(t.Requests))
		a.Chars.AvgReqKB = float64(totalChunksAll) * chunk.Size / 1024 / float64(len(t.Requests))
	}
	if a.WriteChunks > 0 {
		a.SameLBAPct = 100 * float64(sameLBA) / float64(a.WriteChunks)
		a.DiffLBAPct = 100 * float64(diffLBA) / float64(a.WriteChunks)
		a.IORedundancyPct = a.SameLBAPct + a.DiffLBAPct
	}
	return a
}
