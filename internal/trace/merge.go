package trace

// Merge interleaves time-ordered traces into one time-ordered stream,
// the multi-tenant composition step: each input models one tenant's
// volume, and the merged trace is what the shared front end actually
// sees. Ties on timestamp are broken by input order (stable), so the
// result is deterministic in the inputs. Requests are copied by value;
// Content slices are shared with the inputs.
//
// Inputs must individually be time-ordered; Merge panics otherwise,
// matching the replayer's contract (a silently mis-ordered merge would
// corrupt every downstream latency number).
func Merge(name string, traces ...*Trace) *Trace {
	total := 0
	for _, t := range traces {
		total += len(t.Requests)
	}
	out := &Trace{Name: name, Requests: make([]Request, 0, total)}
	heads := make([]int, len(traces))
	for {
		best := -1
		for i, t := range traces {
			h := heads[i]
			if h >= len(t.Requests) {
				continue
			}
			if best < 0 || t.Requests[h].Time < traces[best].Requests[heads[best]].Time {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		r := traces[best].Requests[heads[best]]
		if n := len(out.Requests); n > 0 && r.Time < out.Requests[n-1].Time {
			panic("trace: Merge input " + traces[best].Name + " is not time-ordered")
		}
		out.Requests = append(out.Requests, r)
		heads[best]++
	}
}
