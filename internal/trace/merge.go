package trace

// Merge interleaves time-ordered traces into one time-ordered stream,
// the multi-tenant composition step: each input models one tenant's
// volume, and the merged trace is what the shared front end actually
// sees. Ties on timestamp are broken by input order (stable), so the
// result is deterministic in the inputs. Requests are copied by value;
// Content slices are shared with the inputs.
//
// Inputs must individually be time-ordered; Merge panics otherwise,
// matching the replayer's contract (a silently mis-ordered merge would
// corrupt every downstream latency number).
//
// Merge also normalizes stream identity: when merging two or more
// inputs, a fully untagged input (every request on DefaultStream) is
// assigned a deterministic default stream derived from its position
// (input i gets stream i+1, wrapping below MaxStreams), while a fully
// tagged input keeps its tags. An input mixing tagged and untagged
// requests is inconsistent — the tenant boundary is ambiguous — and
// Merge panics, matching the mis-order contract above. Merging a single
// trace is the identity and leaves tags untouched.
func Merge(name string, traces ...*Trace) *Trace {
	total := 0
	for _, t := range traces {
		total += len(t.Requests)
	}
	defaults := mergeStreamDefaults(traces)
	out := &Trace{Name: name, Requests: make([]Request, 0, total)}
	heads := make([]int, len(traces))
	for {
		best := -1
		for i, t := range traces {
			h := heads[i]
			if h >= len(t.Requests) {
				continue
			}
			if best < 0 || t.Requests[h].Time < traces[best].Requests[heads[best]].Time {
				best = i
			}
		}
		if best < 0 {
			return out
		}
		r := traces[best].Requests[heads[best]]
		if defaults[best] != DefaultStream {
			r.Stream = defaults[best]
		}
		if n := len(out.Requests); n > 0 && r.Time < out.Requests[n-1].Time {
			panic("trace: Merge input " + traces[best].Name + " is not time-ordered")
		}
		out.Requests = append(out.Requests, r)
		heads[best]++
	}
}

// mergeStreamDefaults classifies each input's stream tagging and
// returns the default stream to stamp on untagged inputs (DefaultStream
// means "keep the requests' own tags"). Panics on an input mixing
// tagged and untagged requests.
func mergeStreamDefaults(traces []*Trace) []StreamID {
	defaults := make([]StreamID, len(traces))
	if len(traces) < 2 {
		return defaults
	}
	for i, t := range traces {
		tagged, untagged := 0, 0
		for j := range t.Requests {
			if t.Requests[j].Stream == DefaultStream {
				untagged++
			} else {
				tagged++
			}
		}
		if tagged > 0 && untagged > 0 {
			panic("trace: Merge input " + t.Name + " mixes tagged and untagged requests")
		}
		if tagged == 0 {
			defaults[i] = StreamID(i%(MaxStreams-1)) + 1
		}
	}
	return defaults
}
