package trace

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
)

// FIU SRT trace support. The original evaluation replays the FIU SyLab
// traces (Koller & Rangaswami, FAST'10), distributed via SNIA as text
// records:
//
//	<ts> <pid> <process> <blockNo> <blockCount> <W|R> <major> <minor> <md5>
//
// one record per fixed-size access unit, each carrying the MD5 of its
// content — which maps directly onto this repository's content-ID
// model. ReadFIU converts a record stream into chunk-addressed
// requests; pipe the result through Reassemble to reconstruct the
// original multi-block requests exactly as the paper's §IV-A describes.
//
// This reproduction ships synthetic stand-ins for the traces (package
// workload); ReadFIU exists so that anyone holding the real files can
// replay them unchanged.

// FIUOptions controls record interpretation.
type FIUOptions struct {
	// SectorBytes is the unit of blockNo/blockCount in the file
	// (512 for sector-addressed dumps, 4096 for block-addressed ones —
	// the SyLab web-vm/homes/mail releases are 512-byte addressed with
	// one MD5 per 4 KB record). Default 512.
	SectorBytes int
	// TimestampUnit is the duration of one timestamp tick. The SyLab
	// releases use milliseconds... some mirrors microseconds; default
	// is microseconds (1).
	TimestampUnitUS float64
	// KeepReads includes read records (true by default via ReadFIU).
	DropReads bool
}

// contentIDFromDigest maps a content digest string to a ContentID.
// Collisions are as unlikely as 64-bit FNV collisions over distinct
// MD5s — irrelevant for dedup-behaviour studies.
func contentIDFromDigest(d string) chunk.ContentID {
	h := fnv.New64a()
	io.WriteString(h, d)
	id := chunk.ContentID(h.Sum64())
	if id == 0 {
		id = 1
	}
	return id
}

// ReadFIU parses an FIU SRT record stream into a chunk-addressed trace.
// Each record becomes one request of ⌈blockCount×sector/4096⌉ chunks;
// write records carry the record's content identity for every chunk.
// Records with unparsable fields are rejected with a line-numbered
// error. Requests preserve file order; timestamps are normalized to
// start at zero.
func ReadFIU(r io.Reader, name string, opt FIUOptions) (*Trace, error) {
	if opt.SectorBytes == 0 {
		opt.SectorBytes = 512
	}
	if opt.TimestampUnitUS == 0 {
		opt.TimestampUnitUS = 1
	}
	if chunk.Size%opt.SectorBytes != 0 && opt.SectorBytes%chunk.Size != 0 {
		return nil, fmt.Errorf("trace: sector size %d incompatible with %d-byte chunks", opt.SectorBytes, chunk.Size)
	}

	t := &Trace{Name: name}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	lineNo := 0
	var t0 int64
	first := true
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 9 {
			return nil, fmt.Errorf("trace: line %d: want 9 fields, got %d", lineNo, len(f))
		}
		ts, err := strconv.ParseFloat(f[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad timestamp: %v", lineNo, err)
		}
		blockNo, err := strconv.ParseUint(f[3], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad block number: %v", lineNo, err)
		}
		blockCount, err := strconv.ParseUint(f[4], 10, 64)
		if err != nil || blockCount == 0 {
			return nil, fmt.Errorf("trace: line %d: bad block count %q", lineNo, f[4])
		}
		var op Op
		switch strings.ToUpper(f[5]) {
		case "W":
			op = Write
		case "R":
			op = Read
		default:
			return nil, fmt.Errorf("trace: line %d: bad op %q", lineNo, f[5])
		}
		if op == Read && opt.DropReads {
			continue
		}

		tsUS := int64(ts * opt.TimestampUnitUS)
		if first {
			t0 = tsUS
			first = false
		}
		rel := tsUS - t0
		if rel < 0 {
			rel = 0
		}

		bytesOff := blockNo * uint64(opt.SectorBytes)
		bytesLen := blockCount * uint64(opt.SectorBytes)
		lba := bytesOff / chunk.Size
		n := int((bytesOff%chunk.Size + bytesLen + chunk.Size - 1) / chunk.Size)
		if n < 1 {
			n = 1
		}

		req := Request{Time: sim.Time(rel), Op: op, LBA: lba, N: n}
		if op == Write {
			id := contentIDFromDigest(f[8])
			req.Content = make([]chunk.ContentID, n)
			for i := range req.Content {
				// multi-chunk records carry one digest; derive
				// per-chunk identities deterministically from it
				req.Content[i] = id + chunk.ContentID(i)*0x9E3779B97F4A7C15
			}
		}
		if err := req.Validate(); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", lineNo, err)
		}
		t.Requests = append(t.Requests, req)
	}
	return t, sc.Err()
}
