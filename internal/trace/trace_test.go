package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
)

func w(t sim.Time, lba uint64, ids ...chunk.ContentID) Request {
	return Request{Time: t, Op: Write, LBA: lba, N: len(ids), Content: ids}
}

func r(t sim.Time, lba uint64, n int) Request {
	return Request{Time: t, Op: Read, LBA: lba, N: n}
}

func TestValidate(t *testing.T) {
	good := w(0, 0, 1, 2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Request{Op: Write, N: 2, Content: []chunk.ContentID{1}}
	if bad.Validate() == nil {
		t.Fatal("mismatched content length must fail")
	}
	zero := Request{Op: Read, N: 0}
	if zero.Validate() == nil {
		t.Fatal("zero-chunk request must fail")
	}
	badRead := Request{Op: Read, N: 1, Content: []chunk.ContentID{1}}
	if badRead.Validate() == nil {
		t.Fatal("read with content must fail")
	}
}

func TestSizeBytes(t *testing.T) {
	req := r(0, 0, 3)
	if req.SizeBytes() != 3*chunk.Size {
		t.Fatal("size wrong")
	}
}

func TestReassembleMergesContiguous(t *testing.T) {
	in := []Request{
		w(100, 10, 1),
		w(101, 11, 2),
		w(102, 12, 3),
		w(5000, 50, 4), // gap in LBA: new request
	}
	out := Reassemble(in, 1000)
	if len(out) != 2 {
		t.Fatalf("reassembled %d requests, want 2", len(out))
	}
	if out[0].N != 3 || out[0].LBA != 10 || out[0].Time != 100 {
		t.Fatalf("merged request = %+v", out[0])
	}
	if !reflect.DeepEqual(out[0].Content, []chunk.ContentID{1, 2, 3}) {
		t.Fatalf("merged content = %v", out[0].Content)
	}
}

func TestReassembleRespectsWindow(t *testing.T) {
	in := []Request{
		w(0, 0, 1),
		w(5000, 1, 2), // contiguous LBA but too late
	}
	out := Reassemble(in, 1000)
	if len(out) != 2 {
		t.Fatalf("window ignored: %d requests", len(out))
	}
}

func TestReassembleDoesNotMixOps(t *testing.T) {
	in := []Request{
		w(0, 0, 1),
		r(1, 1, 1),
	}
	out := Reassemble(in, 1000)
	if len(out) != 2 {
		t.Fatal("merged a read into a write")
	}
}

func TestReassembleEmpty(t *testing.T) {
	if Reassemble(nil, 100) != nil {
		t.Fatal("empty input must produce nil")
	}
}

func TestReassembleDoesNotAliasInput(t *testing.T) {
	in := []Request{w(0, 0, 1), w(1, 1, 2)}
	out := Reassemble(in, 1000)
	out[0].Content[0] = 99
	if in[0].Content[0] != 1 {
		t.Fatal("reassembled request aliases input content")
	}
}

func sampleTrace() *Trace {
	return &Trace{
		Name: "sample",
		Requests: []Request{
			w(0, 0, 1, 2, 3),
			r(100, 0, 3),
			w(200, 10, 4),
			w(300, 0, 1, 2, 3), // fully redundant, same LBA
		},
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf, "sample")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", got.Requests, tr.Requests)
	}
}

func TestTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"abc W 0 1 5",
		"0 X 0 1 5",
		"0 W zz 1 5",
		"0 W 0 nope 5",
		"0 W 0 2 5",  // 1 id for 2 chunks
		"0 W 0 1",    // write without content
		"0 W 0 1 xx", // bad id
		"0 W 0",      // too few fields
	}
	for _, line := range cases {
		if _, err := ReadText(strings.NewReader(line), "bad"); err == nil {
			t.Errorf("line %q: expected error", line)
		}
	}
}

func TestTextSkipsCommentsAndBlanks(t *testing.T) {
	in := "# header\n\n0 W 0 1 7\n"
	tr, err := ReadText(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Requests) != 1 {
		t.Fatalf("requests = %d", len(tr.Requests))
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "sample" || !reflect.DeepEqual(got.Requests, tr.Requests) {
		t.Fatal("binary round trip mismatch")
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX...."))); err == nil {
		t.Fatal("expected magic error")
	}
}

func TestBinaryRejectsTruncation(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	WriteBinary(&buf, tr)
	data := buf.Bytes()
	if _, err := ReadBinary(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Fatal("expected truncation error")
	}
}

// Property: text and binary codecs both round-trip arbitrary valid
// traces.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%32) + 1
		tr := &Trace{Name: "prop"}
		var tm sim.Time
		for i := 0; i < n; i++ {
			tm = tm.Add(sim.Duration(rng.Intn(1000)))
			nc := rng.Intn(8) + 1
			if rng.Intn(2) == 0 {
				ids := make([]chunk.ContentID, nc)
				for j := range ids {
					ids[j] = chunk.ContentID(rng.Uint64())
				}
				tr.Requests = append(tr.Requests, w(tm, uint64(rng.Intn(10000)), ids...))
			} else {
				tr.Requests = append(tr.Requests, r(tm, uint64(rng.Intn(10000)), nc))
			}
		}
		var tb, bb bytes.Buffer
		if WriteText(&tb, tr) != nil || WriteBinary(&bb, tr) != nil {
			return false
		}
		fromText, err1 := ReadText(&tb, "prop")
		fromBin, err2 := ReadBinary(&bb)
		if err1 != nil || err2 != nil {
			return false
		}
		return reflect.DeepEqual(fromText.Requests, tr.Requests) &&
			reflect.DeepEqual(fromBin.Requests, tr.Requests)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAnalyzeTable2Stats(t *testing.T) {
	a := Analyze(sampleTrace())
	if a.Chars.IOs != 4 {
		t.Fatalf("IOs = %d", a.Chars.IOs)
	}
	if a.Chars.WriteRatio != 75 {
		t.Fatalf("write ratio = %f", a.Chars.WriteRatio)
	}
	// sizes: 3+3+1+3 chunks over 4 requests = 2.5 chunks = 10 KB
	if a.Chars.AvgReqKB != 10 {
		t.Fatalf("avg req = %f KB", a.Chars.AvgReqKB)
	}
}

func TestAnalyzeRedundancy(t *testing.T) {
	a := Analyze(sampleTrace())
	// writes: [1,2,3] (all new), [4] (new), [1,2,3] again at same LBA
	if a.WriteChunks != 7 || a.RedundantChunks != 3 {
		t.Fatalf("chunks = %d/%d, want 7/3", a.WriteChunks, a.RedundantChunks)
	}
	// the redundant rewrite targets identical LBAs with identical content
	if a.SameLBAPct == 0 || a.DiffLBAPct != 0 {
		t.Fatalf("same/diff = %f/%f", a.SameLBAPct, a.DiffLBAPct)
	}
	if a.IORedundancyPct != a.SameLBAPct {
		t.Fatal("total must be the sum")
	}
}

func TestAnalyzeDiffLBARedundancy(t *testing.T) {
	tr := &Trace{Requests: []Request{
		w(0, 0, 7),
		w(1, 100, 7), // same content, different LBA: capacity redundancy
	}}
	a := Analyze(tr)
	if a.DiffLBAPct != 50 || a.SameLBAPct != 0 {
		t.Fatalf("same/diff = %f/%f, want 0/50", a.SameLBAPct, a.DiffLBAPct)
	}
}

func TestAnalyzeBuckets(t *testing.T) {
	tr := &Trace{Requests: []Request{
		w(0, 0, 1),           // 4 KB bucket
		w(1, 10, 2, 3),       // 8 KB bucket
		w(2, 20, 4, 5, 6, 7), // 16 KB bucket
		w(3, 0, 1),           // 4 KB, fully redundant
		w(4, 100, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16,
			17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27, 28, 29, 30, 31, 32, 33), // 132 KB: ≥128 bucket
	}}
	a := Analyze(tr)
	if a.Buckets[0].Total != 2 || a.Buckets[0].Redundant != 1 {
		t.Fatalf("4KB bucket = %+v", a.Buckets[0])
	}
	if a.Buckets[1].Total != 1 || a.Buckets[2].Total != 1 {
		t.Fatal("8/16KB buckets wrong")
	}
	last := a.Buckets[len(a.Buckets)-1]
	if last.Total != 1 {
		t.Fatalf("≥128KB bucket = %+v", last)
	}
}

func TestBucketIndex(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {8, 3}, {16, 4}, {32, 5}, {100, 5},
	}
	for _, c := range cases {
		if got := bucketIndex(c.n); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	a := Analyze(&Trace{Name: "empty"})
	if a.Chars.IOs != 0 || a.IORedundancyPct != 0 {
		t.Fatal("empty trace should produce zeros")
	}
}
