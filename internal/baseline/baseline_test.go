package baseline

import (
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func cfg() engine.Config {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 16))
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 256 * 1024,
		Verify:      true,
	}
}

func wr(lba uint64, ids ...chunk.ContentID) *trace.Request {
	return &trace.Request{Op: trace.Write, LBA: lba, N: len(ids), Content: ids}
}

func at(req *trace.Request, t sim.Time) *trace.Request {
	req.Time = t
	return req
}

func seq(start uint64, n int) []chunk.ContentID {
	ids := make([]chunk.ContentID, n)
	for i := range ids {
		ids[i] = chunk.ContentID(start + uint64(i))
	}
	return ids
}

func TestNativeNeverDedupes(t *testing.T) {
	n := NewNative(cfg())
	n.Write(wr(0, 1, 2, 3))
	n.Write(at(wr(100, 1, 2, 3), 1000))
	st := n.Stats()
	if st.ChunksDeduped != 0 || st.WritesRemoved != 0 {
		t.Fatal("Native must not deduplicate")
	}
	if n.UsedBlocks() != 6 {
		t.Fatalf("used = %d, want 6", n.UsedBlocks())
	}
}

func TestNativeOverwriteInPlace(t *testing.T) {
	n := NewNative(cfg())
	n.Write(wr(5, 1))
	n.Write(at(wr(5, 2), 1000))
	if n.UsedBlocks() != 1 {
		t.Fatalf("in-place overwrite must not grow footprint: %d", n.UsedBlocks())
	}
	if id, ok := n.ReadContent(5); !ok || id != 2 {
		t.Fatalf("readback = %d,%v", id, ok)
	}
}

func TestNativeReadAccounting(t *testing.T) {
	n := NewNative(cfg())
	n.Write(wr(0, 1, 2))
	rt, _ := n.Read(&trace.Request{Time: 1000, Op: trace.Read, LBA: 0, N: 2})
	if rt <= 0 || n.Stats().Reads != 1 {
		t.Fatal("read accounting wrong")
	}
}

func TestFullDedupeNoFingerprintDelayForNative(t *testing.T) {
	// Native pays no fingerprint cost; Full-Dedupe pays 32µs per chunk.
	n := NewNative(cfg())
	f := NewFullDedupe(cfg())
	rn, _ := n.Write(wr(0, 1))
	rf, _ := f.Write(wr(0, 1))
	if rf < rn {
		// Full-Dedupe's first unique write costs at least as much as
		// Native's (fingerprinting + same write)
		t.Fatalf("full=%v native=%v", rf, rn)
	}
}

func TestFullDedupeDedupesEverything(t *testing.T) {
	f := NewFullDedupe(cfg())
	f.Write(wr(0, seq(100, 8)...))
	// scattered partial redundancy: Full-Dedupe still dedupes it
	f.Write(at(wr(100, 100, 900, 104, 901, 902, 903), sim.Time(sim.Second)))
	st := f.Stats()
	if st.ChunksDeduped != 2 {
		t.Fatalf("deduped = %d, want 2", st.ChunksDeduped)
	}
}

func TestFullDedupeColdLookupChargesDiskIO(t *testing.T) {
	c := cfg()
	c.MemoryBytes = 1 << 19 // tiny hot index
	f := NewFullDedupe(c)
	// write enough unique chunks to overflow the hot portion
	var tm sim.Time
	for i := uint64(0); i < 2000; i++ {
		f.Write(at(wr(i*4, seq(10000+i*4, 4)...), tm))
		tm = tm.Add(sim.Duration(sim.Millisecond) * 20)
	}
	// rewrite the oldest content: present in the full table, cold in
	// the hot portion → on-disk index lookups
	pre := f.Stats().IndexDiskIOs
	f.Write(at(wr(900000, seq(10000, 4)...), tm))
	if f.Stats().IndexDiskIOs <= pre {
		t.Fatal("cold duplicate lookup must charge on-disk index I/O")
	}
	if f.Stats().ChunksDeduped == 0 {
		t.Fatal("cold duplicate must still deduplicate")
	}
}

func TestBloomDeterministic(t *testing.T) {
	fp := chunk.SyntheticFingerprinter{}
	pos := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		c := chunk.Chunk{Content: chunk.ContentID(i)}
		f := fp.Fingerprint(&c)
		if bloomAdmits(f) != bloomAdmits(f) {
			t.Fatal("bloom decision must be deterministic")
		}
		if bloomAdmits(f) {
			pos++
		}
	}
	rate := float64(pos) / trials
	if rate < 0.002 || rate > 0.03 {
		t.Fatalf("bloom false-positive rate = %.4f, want ≈0.01", rate)
	}
}

func TestIDedupSmallRequestBypass(t *testing.T) {
	d := NewIDedup(cfg())
	d.Write(wr(0, seq(100, 4)...))
	rt, _ := d.Write(at(wr(100, seq(100, 4)...), sim.Time(sim.Second)))
	st := d.Stats()
	if st.ChunksDeduped != 0 {
		t.Fatal("4-chunk request is below the 8-chunk threshold: must bypass")
	}
	// bypass also skips fingerprinting: response is pure write cost
	if rt <= 0 {
		t.Fatal("bad rt")
	}
}

func TestIDedupLargeSequentialDedupe(t *testing.T) {
	d := NewIDedup(cfg())
	d.Write(wr(0, seq(100, 12)...))
	d.Write(at(wr(500, seq(100, 12)...), sim.Time(sim.Second)))
	st := d.Stats()
	if st.ChunksDeduped != 12 || st.WritesRemoved != 1 {
		t.Fatalf("deduped=%d removed=%d, want 12/1", st.ChunksDeduped, st.WritesRemoved)
	}
}

func TestIDedupShortRunsNotDeduped(t *testing.T) {
	d := NewIDedup(cfg())
	d.Write(wr(0, seq(100, 12)...))
	// 12-chunk request whose duplicate runs are each 4 long (interrupted
	// by unique chunks): below the 8-sequence threshold
	mixed := append(append(seq(100, 4), seq(9000, 4)...), seq(104, 4)...)
	d.Write(at(wr(500, mixed...), sim.Time(sim.Second)))
	if d.Stats().ChunksDeduped != 0 {
		t.Fatalf("short duplicate runs must not be deduplicated, got %d", d.Stats().ChunksDeduped)
	}
}

func TestIDedupThresholdConfigurable(t *testing.T) {
	c := cfg()
	c.IDedupThreshold = 4
	d := NewIDedup(c)
	d.Write(wr(0, seq(100, 4)...))
	d.Write(at(wr(100, seq(100, 4)...), sim.Time(sim.Second)))
	if d.Stats().ChunksDeduped != 4 {
		t.Fatalf("threshold-4 iDedup should dedupe the 4-chunk rewrite, got %d", d.Stats().ChunksDeduped)
	}
}
