package baseline

import (
	"encoding/binary"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/index"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// FullDedupe is traditional inline deduplication: every redundant chunk
// is eliminated, using the complete fingerprint table. Only the hot
// portion of that table fits in the index cache; a lookup that misses
// it pays an on-disk index I/O (§II-B), except when a Bloom filter
// proves the fingerprint absent. Deduplicating partially redundant
// requests freely is what exposes Full-Dedupe to the read-amplification
// problem the paper dissects.
type FullDedupe struct {
	base *engine.Base
	full *index.Full
}

// BloomFalsePositivePermille is the modeled Bloom-filter false-positive
// rate for absent fingerprints (≈1 %), the standard mitigation (Zhu et
// al., FAST'08) that keeps unique data from paying a disk lookup per
// chunk.
const BloomFalsePositivePermille = 10

// NewFullDedupe returns a Full-Dedupe engine.
func NewFullDedupe(cfg engine.Config) *FullDedupe {
	b := engine.NewBase(cfg)
	f := &FullDedupe{
		base: b,
		// the in-memory portion of the full table is the index cache
		full: index.NewFull(b.IC.IndexCapTotal()),
	}
	b.OnFree = f.full.Forget
	return f
}

// Name implements engine.Engine.
func (f *FullDedupe) Name() string { return "Full-Dedupe" }

// Release implements replay.Releaser.
func (f *FullDedupe) Release() { f.base.Release() }

// Stats implements engine.Engine.
func (f *FullDedupe) Stats() *engine.Stats { return f.base.St }

// Metrics implements engine.Engine.
func (f *FullDedupe) Metrics() *metrics.Registry { return f.base.Metrics() }

// UsedBlocks implements engine.Engine.
func (f *FullDedupe) UsedBlocks() uint64 { return f.base.UsedBlocks() }

// ReadContent implements engine.Engine.
func (f *FullDedupe) ReadContent(lba uint64) (uint64, bool) { return f.base.ReadContent(lba) }

// bloomAdmits reports whether the Bloom filter (falsely) claims an
// absent fingerprint might be present, forcing a disk lookup. The
// decision is a deterministic hash of the fingerprint.
func bloomAdmits(fp chunk.Fingerprint) bool {
	v := binary.LittleEndian.Uint16(fp[4:6])
	return int(v%1000) < BloomFalsePositivePermille
}

// Write deduplicates every redundant chunk of the request.
func (f *FullDedupe) Write(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	f.base.StartRequest()
	chs, fpCost := f.base.SplitAndFingerprint(req)
	ready := t.Add(fpCost)

	found, _, target := f.base.WriteScratch(len(chs))
	diskLookups := 0
	for i := range chs {
		pba, ok, memHit := f.full.Lookup(chs[i].FP)
		found[i] = ok
		target[i] = pba
		if ok && !memHit {
			diskLookups++
		} else if !ok && bloomAdmits(chs[i].FP) {
			diskLookups++
		}
	}
	lookupDone, err := f.base.IndexZoneIO(ready, diskLookups)
	if err != nil {
		f.base.St.WriteErrors++
		return lookupDone.Sub(t), err
	}

	positions := f.base.PositionsScratch(len(chs))
	for i := range chs {
		if found[i] && f.base.TryDedupe(req.LBA+uint64(i), target[i], chs[i].Content) {
			continue
		} else {
			positions = append(positions, i)
		}
	}

	done := lookupDone
	if len(positions) > 0 {
		var pbas []alloc.PBA
		done, pbas, err = f.base.WriteFresh(lookupDone, req, positions, chs)
		if err != nil {
			return done.Sub(t), err
		}
		for k, pos := range positions {
			f.full.Insert(chs[pos].FP, pbas[k])
		}
	} else {
		done = f.base.AbsorbWrite(done)
	}

	f.base.St.Writes++
	f.base.VerifyWrite(req, chs)
	rt := done.Sub(t)
	f.base.St.WriteRT.Add(int64(rt))
	return rt, nil
}

// Read services a read through the Map table.
func (f *FullDedupe) Read(req *trace.Request) (sim.Duration, error) {
	f.base.StartRequest()
	rt, err := f.base.ReadMapped(req, false)
	if err != nil {
		return rt, err
	}
	f.base.St.Reads++
	f.base.St.ReadRT.Add(int64(rt))
	return rt, nil
}
