package baseline

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// PostProcess reproduces post-processing (offline) deduplication in the
// style of El-Shimi et al. (USENIX ATC'12), the paper's third Table I
// column. Writes go straight to disk with no inline work at all — no
// fingerprinting on the critical path — and a background scanner later
// fingerprints recently written blocks, merges duplicates into shared
// mappings, and reclaims space.
//
// The scheme therefore saves capacity (eventually) but never removes
// write I/O from the critical path — which is precisely why §II-A
// argues on-line deduplication is more effective for primary storage:
// by the time the scanner runs, the redundant writes have already cost
// their disk time. The scanner's own reads add background load.
//
// The fingerprinting, batched background reads, and merge mechanics are
// the shared out-of-line core (internal/bgdedup); what stays here is
// the policy — a queue of recently written blocks, drained in batches.
type PostProcess struct {
	base *engine.Base
	core *bgdedup.Core

	// scan queue of recently written blocks: (lba, pba) pairs pending
	// background fingerprinting
	pending []pendingBlock

	nextScan sim.Time

	// ScanInterval and ScanBatch govern the background pass.
	ScanInterval sim.Duration
	ScanBatch    int

	scans int64
}

type pendingBlock struct {
	lba uint64
	pba alloc.PBA
}

// NewPostProcess returns a post-processing deduplication engine.
func NewPostProcess(cfg engine.Config) *PostProcess {
	b := engine.NewBase(cfg)
	p := &PostProcess{
		base:         b,
		core:         bgdedup.NewCore(b),
		ScanInterval: 2 * sim.Second,
		ScanBatch:    2048,
	}
	p.nextScan = sim.Time(p.ScanInterval)
	b.Reg.GaugeFunc("postprocess_scan_passes", func() int64 { return p.scans })
	b.Reg.GaugeFunc("postprocess_blocks_scanned", func() int64 {
		scanned, _, _, _, _ := p.core.Counters()
		return scanned
	})
	b.Reg.GaugeFunc("postprocess_blocks_merged", func() int64 {
		_, merged, _, _, _ := p.core.Counters()
		return merged
	})
	b.Reg.GaugeFunc("postprocess_scan_backlog", func() int64 { return int64(len(p.pending)) })
	return p
}

// Name implements engine.Engine.
func (p *PostProcess) Name() string { return "Post-Process" }

// Release implements replay.Releaser.
func (p *PostProcess) Release() { p.base.Release() }

// Stats implements engine.Engine.
func (p *PostProcess) Stats() *engine.Stats { return p.base.St }

// Metrics implements engine.Engine.
func (p *PostProcess) Metrics() *metrics.Registry { return p.base.Metrics() }

// UsedBlocks implements engine.Engine.
func (p *PostProcess) UsedBlocks() uint64 { return p.base.UsedBlocks() }

// ReadContent implements engine.Engine.
func (p *PostProcess) ReadContent(lba uint64) (uint64, bool) { return p.base.ReadContent(lba) }

// Scans reports background passes run and blocks merged (for tests).
func (p *PostProcess) Scans() (passes, scanned, merged int64) {
	s, m, _, _, _ := p.core.Counters()
	return p.scans, s, m
}

// Write stores everything immediately — no fingerprinting, no lookup —
// then lets the background scanner catch up.
func (p *PostProcess) Write(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	p.base.StartRequest()
	p.scan(t)
	st := p.base.St
	st.Writes++

	chs := p.base.SplitRequest(req)
	positions := allPositions(p.base.PositionsScratch(len(chs)), len(chs))
	done, pbas, err := p.base.WriteFresh(t, req, positions, chs)
	if err != nil {
		return done.Sub(t), err
	}
	for i, pba := range pbas {
		p.pending = append(p.pending, pendingBlock{lba: req.LBA + uint64(i), pba: pba})
	}
	p.base.VerifyWrite(req, chs)
	rt := done.Sub(t)
	st.WriteRT.Add(int64(rt))
	return rt, nil
}

// Read is the standard mapped read path.
func (p *PostProcess) Read(req *trace.Request) (sim.Duration, error) {
	p.base.StartRequest()
	p.scan(req.Time)
	rt, err := p.base.ReadMapped(req, false)
	if err != nil {
		return rt, err
	}
	p.base.St.Reads++
	p.base.St.ReadRT.Add(int64(rt))
	return rt, nil
}

// maxScanIOs caps the disk passes one scan interval may issue, so a
// fragmented batch can never monopolize the spindles.
const maxScanIOs = 24

// scan runs the background deduplication pass when its interval
// elapses: read back a batch of recently written blocks (sequential
// background I/O — they were written contiguously), fingerprint them,
// and merge duplicates into shared mappings.
func (p *PostProcess) scan(now sim.Time) {
	if now < p.nextScan || len(p.pending) == 0 {
		return
	}
	// scan during idle periods only (El-Shimi et al. §5: the scanner
	// yields to foreground I/O); retry shortly if the array is busy
	if p.base.Array.Backlog(now) > 0 {
		p.nextScan = now.Add(p.ScanInterval / 4)
		return
	}
	p.nextScan = now.Add(p.ScanInterval)
	p.scans++

	batch := p.pending
	if len(batch) > p.ScanBatch {
		batch = batch[:p.ScanBatch]
	}
	p.pending = p.pending[len(batch):]

	// The scanner reads its batch elevator-style through the shared
	// core; blocks that missed this pass's I/O budget go back to the
	// queue.
	pbas := make([]alloc.PBA, len(batch))
	for i, blk := range batch {
		pbas[i] = blk.pba
	}
	read := p.core.ReadBatch(now, pbas, maxScanIOs)

	var deferred []pendingBlock
	kept := batch[:0]
	for _, blk := range batch {
		if read[blk.pba] {
			kept = append(kept, blk)
		} else {
			deferred = append(deferred, blk)
		}
	}
	batch = kept
	p.pending = append(deferred, p.pending...)

	for _, blk := range batch {
		p.core.MergeLBA(blk.lba, blk.pba)
	}
}

// Flush forces the scanner to drain its whole queue (used at the end of
// a replay so capacity numbers reflect a completed pass).
func (p *PostProcess) Flush(now sim.Time) {
	for len(p.pending) > 0 {
		p.nextScan = now
		p.scan(now)
		now = now.Add(p.ScanInterval)
	}
}
