package baseline

import (
	"sort"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/index"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// PostProcess reproduces post-processing (offline) deduplication in the
// style of El-Shimi et al. (USENIX ATC'12), the paper's third Table I
// column. Writes go straight to disk with no inline work at all — no
// fingerprinting on the critical path — and a background scanner later
// fingerprints recently written blocks, merges duplicates into shared
// mappings, and reclaims space.
//
// The scheme therefore saves capacity (eventually) but never removes
// write I/O from the critical path — which is precisely why §II-A
// argues on-line deduplication is more effective for primary storage:
// by the time the scanner runs, the redundant writes have already cost
// their disk time. The scanner's own reads add background load.
type PostProcess struct {
	base *engine.Base
	full *index.Full

	// scan queue of recently written blocks: (lba, pba) pairs pending
	// background fingerprinting
	pending []pendingBlock

	nextScan sim.Time

	// ScanInterval and ScanBatch govern the background pass.
	ScanInterval sim.Duration
	ScanBatch    int

	scans, scanned, merged int64
}

type pendingBlock struct {
	lba uint64
	pba alloc.PBA
}

// NewPostProcess returns a post-processing deduplication engine.
func NewPostProcess(cfg engine.Config) *PostProcess {
	b := engine.NewBase(cfg)
	p := &PostProcess{
		base:         b,
		full:         index.NewFull(b.IC.Index().Cap()),
		ScanInterval: 2 * sim.Second,
		ScanBatch:    2048,
	}
	p.nextScan = sim.Time(p.ScanInterval)
	b.OnFree = p.full.Forget
	b.Reg.GaugeFunc("postprocess_scan_passes", func() int64 { return p.scans })
	b.Reg.GaugeFunc("postprocess_blocks_scanned", func() int64 { return p.scanned })
	b.Reg.GaugeFunc("postprocess_blocks_merged", func() int64 { return p.merged })
	b.Reg.GaugeFunc("postprocess_scan_backlog", func() int64 { return int64(len(p.pending)) })
	return p
}

// Name implements engine.Engine.
func (p *PostProcess) Name() string { return "Post-Process" }

// Stats implements engine.Engine.
func (p *PostProcess) Stats() *engine.Stats { return p.base.St }

// Metrics implements engine.Engine.
func (p *PostProcess) Metrics() *metrics.Registry { return p.base.Metrics() }

// UsedBlocks implements engine.Engine.
func (p *PostProcess) UsedBlocks() uint64 { return p.base.UsedBlocks() }

// ReadContent implements engine.Engine.
func (p *PostProcess) ReadContent(lba uint64) (uint64, bool) { return p.base.ReadContent(lba) }

// Scans reports background passes run and blocks merged (for tests).
func (p *PostProcess) Scans() (passes, scanned, merged int64) {
	return p.scans, p.scanned, p.merged
}

// Write stores everything immediately — no fingerprinting, no lookup —
// then lets the background scanner catch up.
func (p *PostProcess) Write(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	p.base.StartRequest()
	p.scan(t)
	st := p.base.St
	st.Writes++

	chs := p.base.SplitRequest(req)
	positions := make([]int, req.N)
	for i := range positions {
		positions[i] = i
	}
	done, pbas, err := p.base.WriteFresh(t, req, positions, chs)
	if err != nil {
		return done.Sub(t), err
	}
	for i, pba := range pbas {
		p.pending = append(p.pending, pendingBlock{lba: req.LBA + uint64(i), pba: pba})
	}
	p.base.VerifyWrite(req)
	rt := done.Sub(t)
	st.WriteRT.Add(int64(rt))
	return rt, nil
}

// Read is the standard mapped read path.
func (p *PostProcess) Read(req *trace.Request) (sim.Duration, error) {
	p.base.StartRequest()
	p.scan(req.Time)
	rt, err := p.base.ReadMapped(req, false)
	if err != nil {
		return rt, err
	}
	p.base.St.Reads++
	p.base.St.ReadRT.Add(int64(rt))
	return rt, nil
}

// scan runs the background deduplication pass when its interval
// elapses: read back a batch of recently written blocks (sequential
// background I/O — they were written contiguously), fingerprint them,
// and merge duplicates into shared mappings.
func (p *PostProcess) scan(now sim.Time) {
	if now < p.nextScan || len(p.pending) == 0 {
		return
	}
	// scan during idle periods only (El-Shimi et al. §5: the scanner
	// yields to foreground I/O); retry shortly if the array is busy
	if p.base.Array.Backlog(now) > 0 {
		p.nextScan = now.Add(p.ScanInterval / 4)
		return
	}
	p.nextScan = now.Add(p.ScanInterval)
	p.scans++

	batch := p.pending
	if len(batch) > p.ScanBatch {
		batch = batch[:p.ScanBatch]
	}
	p.pending = p.pending[len(batch):]

	// The scanner reads its batch elevator-style: sorted by physical
	// address so that blocks from interleaved requests (and reused
	// holes) coalesce into few large sequential sweeps. A disk pass is
	// further capped per interval so a fragmented batch can never
	// monopolize the spindles; unread blocks return to the queue.
	sorted := append([]pendingBlock(nil), batch...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].pba < sorted[j].pba })

	const maxScanIOs = 24
	read := make(map[alloc.PBA]bool, len(sorted))
	ios := 0
	i := 0
	for i < len(sorted) && ios < maxScanIOs {
		j := i + 1
		for j < len(sorted) && sorted[j].pba <= sorted[j-1].pba+1 {
			j++
		}
		p.base.Array.Read(now, uint64(sorted[i].pba), uint64(sorted[j-1].pba-sorted[i].pba)+1)
		p.base.St.SwapInIOs++ // accounted as background I/O
		ios++
		for k := i; k < j; k++ {
			read[sorted[k].pba] = true
		}
		i = j
	}
	// blocks that missed this pass's I/O budget go back to the queue
	var deferred []pendingBlock
	kept := batch[:0]
	for _, blk := range batch {
		if read[blk.pba] {
			kept = append(kept, blk)
		} else {
			deferred = append(deferred, blk)
		}
	}
	batch = kept
	p.pending = append(deferred, p.pending...)

	// fingerprint equality is mode-independent (equal content IDs ⇔
	// equal fingerprints in both modes), so the scanner always uses the
	// cheap synthetic fingerprinter
	var fper chunk.SyntheticFingerprinter
	for _, blk := range batch {
		// the block may have been overwritten or reclaimed since
		cur, ok := p.base.Map.Lookup(blk.lba)
		if !ok || cur != blk.pba {
			continue
		}
		id, ok := p.base.Store.Read(blk.pba)
		if !ok {
			continue
		}
		p.scanned++
		c := chunk.Chunk{Content: id}
		fp := fper.Fingerprint(&c)
		if existing, found, _ := p.full.Lookup(fp); found && existing != blk.pba {
			if p.base.TryDedupe(blk.lba, existing, id) {
				p.merged++
				continue
			}
		}
		p.full.Insert(fp, blk.pba)
	}
}

// Flush forces the scanner to drain its whole queue (used at the end of
// a replay so capacity numbers reflect a completed pass).
func (p *PostProcess) Flush(now sim.Time) {
	for len(p.pending) > 0 {
		p.nextScan = now
		p.scan(now)
		now = now.Add(p.ScanInterval)
	}
}
