// Package baseline implements the three comparison systems of the POD
// evaluation (§IV): the plain HDD array without deduplication
// (Native), traditional full inline deduplication (Full-Dedupe), and
// the capacity-oriented selective scheme iDedup. All three share the
// substrates in package engine so that differences between schemes come
// only from their policies.
package baseline

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// Native is the paper's reference system: writes go to disk in place at
// their logical addresses, reads pass through the storage read cache.
// No fingerprinting, no Map table, no space savings.
type Native struct {
	base *engine.Base
}

// NewNative returns a Native engine over cfg's array and cache budget.
func NewNative(cfg engine.Config) *Native {
	return &Native{base: engine.NewBase(cfg)}
}

// Name implements engine.Engine.
func (n *Native) Name() string { return "Native" }

// Release implements replay.Releaser.
func (n *Native) Release() { n.base.Release() }

// Stats implements engine.Engine.
func (n *Native) Stats() *engine.Stats { return n.base.St }

// Metrics implements engine.Engine.
func (n *Native) Metrics() *metrics.Registry { return n.base.Metrics() }

// UsedBlocks reports the in-place footprint: every distinct logical
// block ever written occupies its own physical block.
func (n *Native) UsedBlocks() uint64 { return uint64(n.base.Store.Len()) }

// ReadContent implements engine.Engine via the identity mapping.
func (n *Native) ReadContent(lba uint64) (uint64, bool) {
	id, ok := n.base.Store.Read(alloc.PBA(lba % n.base.DataBlocks()))
	return uint64(id), ok
}

// Write services a write in place. A failed write leaves the content
// model untouched — the old blocks remain visible.
func (n *Native) Write(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	n.base.StartRequest()
	start := req.LBA % n.base.DataBlocks()
	done, err := n.base.Array.Write(t, start, uint64(req.N))
	if err != nil {
		n.base.St.WriteErrors++
		return done.Sub(t), err
	}
	n.base.Ph.Observe(metrics.PhaseDiskWrite, int64(done.Sub(t)))
	for i := 0; i < req.N; i++ {
		pba := alloc.PBA(start + uint64(i))
		n.base.Store.Write(pba, req.Content[i])
	}
	n.base.St.Writes++
	n.base.St.ChunksWritten += int64(req.N)
	rt := done.Sub(t)
	n.base.St.WriteRT.Add(int64(rt))
	return rt, nil
}

// Read services a read at identity addresses.
func (n *Native) Read(req *trace.Request) (sim.Duration, error) {
	n.base.StartRequest()
	rt, err := n.base.ReadMapped(req, true)
	if err != nil {
		return rt, err
	}
	n.base.St.Reads++
	n.base.St.ReadRT.Add(int64(rt))
	return rt, nil
}
