package baseline

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// IDedup reproduces the capacity-oriented scheme of Srinivasan et al.
// (FAST'12): deduplicate only *large sequential* duplicate runs, and
// bypass all small requests entirely — they contribute little capacity
// and selective bypass caps the latency impact. Small requests are not
// even fingerprinted, which is why iDedup's overhead (and its benefit)
// is minimal on small-write-dominated primary workloads.
type IDedup struct {
	base *engine.Base
}

// NewIDedup returns an iDedup engine; cfg.IDedupThreshold (chunks) sets
// the minimum duplicate sequence worth deduplicating.
func NewIDedup(cfg engine.Config) *IDedup {
	return &IDedup{base: engine.NewBase(cfg)}
}

// Name implements engine.Engine.
func (d *IDedup) Name() string { return "iDedup" }

// Release implements replay.Releaser.
func (d *IDedup) Release() { d.base.Release() }

// Stats implements engine.Engine.
func (d *IDedup) Stats() *engine.Stats { return d.base.St }

// Metrics implements engine.Engine.
func (d *IDedup) Metrics() *metrics.Registry { return d.base.Metrics() }

// UsedBlocks implements engine.Engine.
func (d *IDedup) UsedBlocks() uint64 { return d.base.UsedBlocks() }

// ReadContent implements engine.Engine.
func (d *IDedup) ReadContent(lba uint64) (uint64, bool) { return d.base.ReadContent(lba) }

// Write deduplicates only sequential duplicate runs of at least the
// threshold length within sufficiently large requests.
func (d *IDedup) Write(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	d.base.StartRequest()
	st := d.base.St
	st.Writes++

	if req.N < d.base.Cfg.IDedupThreshold {
		// small request: bypass deduplication, skip hashing
		chs := d.base.SplitRequest(req)
		positions := allPositions(d.base.PositionsScratch(len(chs)), len(chs))
		done, _, err := d.base.WriteFresh(t, req, positions, chs)
		if err != nil {
			return done.Sub(t), err
		}
		d.base.VerifyWrite(req, chs)
		rt := done.Sub(t)
		st.WriteRT.Add(int64(rt))
		return rt, nil
	}

	chs, fpCost := d.base.SplitAndFingerprint(req)
	ready := t.Add(fpCost)

	dup, dedupe, target := d.base.WriteScratch(len(chs))
	for i := range chs {
		if e, ok := d.base.IC.IndexLookup(chs[i].FP); ok {
			dup[i] = true
			target[i] = e.PBA
		}
	}

	// deduplicate maximal sequential duplicate runs ≥ threshold
	i := 0
	for i < len(chs) {
		if !dup[i] {
			i++
			continue
		}
		j := i + 1
		for j < len(chs) && dup[j] && target[j] == target[j-1]+1 {
			j++
		}
		if j-i >= d.base.Cfg.IDedupThreshold {
			for k := i; k < j; k++ {
				dedupe[k] = true
			}
		}
		i = j
	}

	positions := d.base.PositionsScratch(len(chs))
	for i := 0; i < len(chs); i++ {
		if dedupe[i] && d.base.TryDedupe(req.LBA+uint64(i), target[i], chs[i].Content) {
			continue
		} else {
			positions = append(positions, i)
		}
	}

	done := ready
	if len(positions) > 0 {
		var pbas []alloc.PBA
		var err error
		done, pbas, err = d.base.WriteFresh(ready, req, positions, chs)
		if err != nil {
			return done.Sub(t), err
		}
		for k, pos := range positions {
			d.base.InsertIndex(chs[pos].FP, pbas[k])
		}
	} else {
		done = d.base.AbsorbWrite(done)
	}

	d.base.VerifyWrite(req, chs)
	rt := done.Sub(t)
	st.WriteRT.Add(int64(rt))
	return rt, nil
}

// Read services a read through the Map table.
func (d *IDedup) Read(req *trace.Request) (sim.Duration, error) {
	d.base.StartRequest()
	rt, err := d.base.ReadMapped(req, false)
	if err != nil {
		return rt, err
	}
	d.base.St.Reads++
	d.base.St.ReadRT.Add(int64(rt))
	return rt, nil
}

// allPositions fills p (an empty scratch with capacity n) with 0..n-1.
func allPositions(p []int, n int) []int {
	for i := 0; i < n; i++ {
		p = append(p, i)
	}
	return p
}
