package baseline

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/cache"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// IODedup reproduces the scheme of Koller & Rangaswami (FAST'10),
// "I/O Deduplication: Utilizing Content Similarity to Improve I/O
// Performance" — the first column of the paper's Table I. It uses
// content fingerprints to improve *read* performance only:
//
//   - writes are never eliminated ("write requests are still issued to
//     disks even if their data has already been stored"), so there is
//     no capacity saving;
//   - the read cache is content-addressed: a read whose block content
//     is already cached under any other address is a hit (§V calls
//     this exploiting content similarity);
//   - when several on-disk replicas of the content exist, the read is
//     served from the replica nearest the last access position
//     (dynamic replica retrieval reducing seek distance).
//
// Fingerprinting happens on the write path (the scheme must learn where
// content lives), so IODedup pays the hash latency without the write
// savings — exactly the trade Table I summarizes.
type IODedup struct {
	base *engine.Base

	// content-addressed read cache: contents, not addresses
	ccache *cache.LRU[chunk.ContentID, struct{}]
	// replica directory: where each hot content lives (bounded)
	replicas *cache.LRU[chunk.Fingerprint, []alloc.PBA]
	lastPBA  alloc.PBA
}

// maxReplicasTracked bounds the per-content replica list.
const maxReplicasTracked = 4

// NewIODedup returns an I/O Deduplication engine.
func NewIODedup(cfg engine.Config) *IODedup {
	b := engine.NewBase(cfg)
	// the whole DRAM budget serves the content cache + replica
	// directory (no dedup index cache is needed on the write path)
	blocks := int(cfg.WithDefaults().MemoryBytes) / chunk.Size / 2
	if blocks < 1 {
		blocks = 1
	}
	entries := int(cfg.WithDefaults().MemoryBytes) / 2 / 64
	if entries < 1 {
		entries = 1
	}
	return &IODedup{
		base:     b,
		ccache:   cache.NewLRU[chunk.ContentID, struct{}](blocks),
		replicas: cache.NewLRU[chunk.Fingerprint, []alloc.PBA](entries),
	}
}

// Name implements engine.Engine.
func (d *IODedup) Name() string { return "I/O-Dedup" }

// Release implements replay.Releaser.
func (d *IODedup) Release() { d.base.Release() }

// Stats implements engine.Engine.
func (d *IODedup) Stats() *engine.Stats { return d.base.St }

// Metrics implements engine.Engine.
func (d *IODedup) Metrics() *metrics.Registry { return d.base.Metrics() }

// UsedBlocks implements engine.Engine: no elimination, full footprint.
func (d *IODedup) UsedBlocks() uint64 { return d.base.UsedBlocks() }

// ReadContent implements engine.Engine.
func (d *IODedup) ReadContent(lba uint64) (uint64, bool) { return d.base.ReadContent(lba) }

// Write stores everything (log-structured, like the other engines) and
// records replica locations for the read path.
func (d *IODedup) Write(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	d.base.StartRequest()
	st := d.base.St
	st.Writes++

	chs, fpCost := d.base.SplitAndFingerprint(req)
	ready := t.Add(fpCost)

	positions := allPositions(d.base.PositionsScratch(len(chs)), len(chs))
	done, pbas, err := d.base.WriteFresh(ready, req, positions, chs)
	if err != nil {
		return done.Sub(t), err
	}
	for i, pba := range pbas {
		d.recordReplica(chs[i].FP, pba)
	}
	d.base.VerifyWrite(req, chs)
	rt := done.Sub(t)
	st.WriteRT.Add(int64(rt))
	return rt, nil
}

func (d *IODedup) recordReplica(fp chunk.Fingerprint, pba alloc.PBA) {
	list, _ := d.replicas.Peek(fp)
	for _, p := range list {
		if p == pba {
			return
		}
	}
	if len(list) >= maxReplicasTracked {
		list = list[1:]
	}
	d.replicas.Put(fp, append(append([]alloc.PBA(nil), list...), pba))
}

// dropReplica removes a reclaimed block from the directory.
func (d *IODedup) dropReplica(fp chunk.Fingerprint, pba alloc.PBA) {
	list, ok := d.replicas.Peek(fp)
	if !ok {
		return
	}
	out := list[:0]
	for _, p := range list {
		if p != pba {
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		d.replicas.Remove(fp)
	} else {
		d.replicas.Put(fp, out)
	}
}

// nearest picks the replica closest to the previous access position —
// the scheme's seek-reduction mechanism.
func (d *IODedup) nearest(candidates []alloc.PBA, home alloc.PBA) alloc.PBA {
	best := home
	bestDist := dist(home, d.lastPBA)
	for _, c := range candidates {
		if dd := dist(c, d.lastPBA); dd < bestDist {
			best, bestDist = c, dd
		}
	}
	return best
}

func dist(a, b alloc.PBA) uint64 {
	if a > b {
		return uint64(a - b)
	}
	return uint64(b - a)
}

// Read serves each chunk through the content-addressed cache, fetching
// misses from the nearest replica of the content.
func (d *IODedup) Read(req *trace.Request) (sim.Duration, error) {
	t := req.Time
	d.base.StartRequest()
	st := d.base.St
	st.Reads++

	done := t
	anyMiss := false
	var fp chunk.SyntheticFingerprinter
	for i := 0; i < req.N; i++ {
		lba := req.LBA + uint64(i)
		pba, ok := d.base.Map.Lookup(lba)
		if !ok {
			pba = alloc.PBA(lba % d.base.DataBlocks())
		}
		id, known := d.base.Store.Read(pba)
		if known {
			if _, hit := d.ccache.Get(id); hit {
				st.CacheHits++
				continue
			}
		}
		st.CacheMisses++
		target := pba
		if known {
			c := chunk.Chunk{Content: id}
			if list, ok := d.replicas.Peek(fp.Fingerprint(&c)); ok {
				target = d.nearest(list, pba)
			}
		}
		c, err := d.base.Array.Read(t, uint64(target), 1)
		done = sim.MaxTime(done, c)
		st.ReadIOs++
		if err != nil {
			st.ReadErrors++
			return done.Sub(t), err
		}
		d.lastPBA = target
		anyMiss = true
		if known {
			d.ccache.Put(id, struct{}{})
		}
	}
	var rt sim.Duration
	if !anyMiss {
		rt = engine.MemHitUS
	} else {
		rt = done.Sub(t)
		d.base.Ph.Observe(metrics.PhaseDiskRead, int64(rt))
	}
	st.ReadRT.Add(int64(rt))
	return rt, nil
}
