package baseline

import (
	"testing"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

type (
	chunkFingerprint = chunk.Fingerprint
	allocPBA         = alloc.PBA
)

// --- I/O-Dedup ---

func TestIODedupNeverRemovesWrites(t *testing.T) {
	d := NewIODedup(cfg())
	d.Write(wr(0, 1, 2, 3))
	d.Write(at(wr(100, 1, 2, 3), sim.Time(sim.Second)))
	st := d.Stats()
	if st.WritesRemoved != 0 || st.ChunksDeduped != 0 {
		t.Fatal("I/O-Dedup must not eliminate writes")
	}
	if d.UsedBlocks() != 6 {
		t.Fatalf("used = %d, want 6 (no capacity saving)", d.UsedBlocks())
	}
}

func TestIODedupContentAddressedCacheHits(t *testing.T) {
	d := NewIODedup(cfg())
	d.Write(wr(0, 7))
	d.Write(at(wr(100, 7), sim.Time(sim.Second))) // same content elsewhere
	// read the first copy: miss, caches content 7
	d.Read(&trace.Request{Time: sim.Time(2 * sim.Second), Op: trace.Read, LBA: 0, N: 1})
	// read the second copy: DIFFERENT address, same content → hit
	d.Read(&trace.Request{Time: sim.Time(3 * sim.Second), Op: trace.Read, LBA: 100, N: 1})
	st := d.Stats()
	if st.CacheHits != 1 {
		t.Fatalf("content-addressed cache hits = %d, want 1 (cross-address hit)", st.CacheHits)
	}
}

func TestIODedupReadYourWrites(t *testing.T) {
	d := NewIODedup(cfg())
	d.Write(wr(0, 1, 2))
	d.Write(at(wr(0, 3, 4), sim.Time(sim.Second)))
	if id, ok := d.ReadContent(0); !ok || id != 3 {
		t.Fatalf("readback = %d,%v want 3", id, ok)
	}
}

func TestIODedupReplicaDirectoryBounded(t *testing.T) {
	d := NewIODedup(cfg())
	var tm sim.Time
	for i := 0; i < maxReplicasTracked+3; i++ {
		d.Write(at(wr(uint64(i*10), 42), tm))
		tm = tm.Add(sim.Duration(sim.Millisecond) * 100)
	}
	maxLen := 0
	d.replicas.Each(func(_ chunkFingerprint, list []allocPBA) bool {
		if len(list) > maxLen {
			maxLen = len(list)
		}
		return true
	})
	if maxLen > maxReplicasTracked {
		t.Fatalf("replica list grew to %d, cap %d", maxLen, maxReplicasTracked)
	}
}

// --- Post-Process ---

func TestPostProcessWritesHaveNoInlineCost(t *testing.T) {
	n := NewNative(cfg())
	p := NewPostProcess(cfg())
	rn, _ := n.Write(wr(0, 1, 2, 3, 4))
	rp, _ := p.Write(wr(0, 1, 2, 3, 4))
	// post-process pays no fingerprint delay; its write should not be
	// slower than Native's by more than the layout difference
	if rp > rn*2 {
		t.Fatalf("post-process write %v vastly slower than native %v", rp, rn)
	}
	if p.Stats().WritesRemoved != 0 {
		t.Fatal("post-process must not remove writes inline")
	}
}

func TestPostProcessBackgroundMergeReclaimsSpace(t *testing.T) {
	p := NewPostProcess(cfg())
	p.Write(wr(0, 1, 2, 3, 4))
	p.Write(at(wr(100, 1, 2, 3, 4), sim.Time(sim.Second)))
	if p.UsedBlocks() != 8 {
		t.Fatalf("before scan: used = %d, want 8", p.UsedBlocks())
	}
	p.Flush(sim.Time(10 * sim.Second))
	if p.UsedBlocks() != 4 {
		t.Fatalf("after scan: used = %d, want 4 (duplicates merged)", p.UsedBlocks())
	}
	_, scanned, merged := p.Scans()
	if scanned == 0 || merged != 4 {
		t.Fatalf("scanned=%d merged=%d", scanned, merged)
	}
	// logical view intact after merging
	for i := uint64(0); i < 4; i++ {
		if id, ok := p.ReadContent(100 + i); !ok || id != uint64(i+1) {
			t.Fatalf("lba %d corrupted after merge: %d,%v", 100+i, id, ok)
		}
	}
}

func TestPostProcessScanSkipsOverwrittenBlocks(t *testing.T) {
	p := NewPostProcess(cfg())
	p.Write(wr(0, 1))
	p.Write(at(wr(0, 2), sim.Time(sim.Millisecond)))    // overwrite before any scan
	p.Write(at(wr(50, 1), sim.Time(2*sim.Millisecond))) // content 1 written elsewhere
	p.Flush(sim.Time(10 * sim.Second))
	if id, ok := p.ReadContent(0); !ok || id != 2 {
		t.Fatalf("lba 0 = %d,%v want 2", id, ok)
	}
	if id, ok := p.ReadContent(50); !ok || id != 1 {
		t.Fatalf("lba 50 = %d,%v want 1", id, ok)
	}
}

func TestPostProcessScanIntervalHonored(t *testing.T) {
	p := NewPostProcess(cfg())
	p.Write(wr(0, 1))
	p.Write(at(wr(10, 1), sim.Time(sim.Millisecond))) // before the first interval
	if _, scanned, _ := p.Scans(); scanned != 0 {
		t.Fatal("scanner ran before its interval")
	}
	// a request arriving after the interval triggers the pass
	p.Write(at(wr(20, 99), sim.Time(3*sim.Second)))
	if _, scanned, _ := p.Scans(); scanned == 0 {
		t.Fatal("scanner did not run after its interval")
	}
}

func TestPostProcessChargesBackgroundIO(t *testing.T) {
	p := NewPostProcess(cfg())
	p.Write(wr(0, 1, 2, 3, 4, 5, 6, 7, 8))
	p.Flush(sim.Time(5 * sim.Second))
	if p.Stats().SwapInIOs == 0 {
		t.Fatal("background scan must charge disk reads")
	}
}
