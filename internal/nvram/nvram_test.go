package nvram

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := New(64)
	if err := d.WriteAt(10, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if err := d.ReadAt(10, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello" {
		t.Fatalf("read back %q", buf)
	}
	if d.BytesWritten() != 5 || d.WriteOps() != 1 {
		t.Fatal("accounting wrong")
	}
}

func TestBoundsChecking(t *testing.T) {
	d := New(10)
	if err := d.WriteAt(8, []byte("abc")); err == nil {
		t.Fatal("expected out-of-range write error")
	}
	if err := d.WriteAt(-1, []byte("a")); err == nil {
		t.Fatal("expected negative-offset error")
	}
	if err := d.ReadAt(8, make([]byte, 3)); err == nil {
		t.Fatal("expected out-of-range read error")
	}
}

func TestCrashStopsWrites(t *testing.T) {
	d := New(64)
	d.ArmCrash(0)
	err := d.WriteAt(0, []byte("x"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if !d.Crashed() {
		t.Fatal("device should be crashed")
	}
	// contents untouched
	buf := make([]byte, 1)
	d.ReadAt(0, buf)
	if buf[0] != 0 {
		t.Fatal("crashed write leaked data")
	}
}

func TestTornWrite(t *testing.T) {
	d := New(64)
	d.ArmCrash(3)
	err := d.WriteAt(0, []byte("abcdef"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatal("straddling write must report crash")
	}
	buf := make([]byte, 6)
	d.ReadAt(0, buf)
	if !bytes.Equal(buf, []byte{'a', 'b', 'c', 0, 0, 0}) {
		t.Fatalf("torn write applied %q, want prefix abc", buf)
	}
}

func TestRecoverAcceptsWritesAgain(t *testing.T) {
	d := New(64)
	d.ArmCrash(0)
	d.WriteAt(0, []byte("x"))
	d.Recover()
	if d.Crashed() {
		t.Fatal("recover should clear crash")
	}
	if err := d.WriteAt(0, []byte("y")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	d.ReadAt(0, buf)
	if buf[0] != 'y' {
		t.Fatal("post-recovery write lost")
	}
}

func TestCrashAfterExactBudget(t *testing.T) {
	d := New(64)
	d.ArmCrash(5)
	if err := d.WriteAt(0, []byte("12345")); err != nil {
		t.Fatalf("write within budget must succeed: %v", err)
	}
	if err := d.WriteAt(5, []byte("6")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("budget exhausted: err = %v, want ErrCrashed", err)
	}
}

// Property: after a torn write at any position k, exactly the first k
// bytes of the straddling write are visible.
func TestTornWriteProperty(t *testing.T) {
	f := func(kRaw uint8, payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		k := int(kRaw) % len(payload)
		d := New(len(payload))
		d.ArmCrash(int64(k))
		err := d.WriteAt(0, payload)
		if !errors.Is(err, ErrCrashed) {
			return false
		}
		buf := make([]byte, len(payload))
		d.ReadAt(0, buf)
		if !bytes.Equal(buf[:k], payload[:k]) {
			return false
		}
		for _, b := range buf[k:] {
			if b != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
