// Package nvram simulates the byte-addressable non-volatile RAM that
// POD uses to hold the Map table so that LBA→PBA mappings survive power
// failure (§III-B, §IV-D2).
//
// The simulation supports fault injection: a crash can be armed to
// occur after a given number of further bytes are written, after which
// the write in progress is torn (applied only up to the crash point)
// and all subsequent writes are dropped. Recovery code is tested
// against every possible tear position.
package nvram

import (
	"errors"
	"fmt"
)

// ErrCrashed is returned by writes after the injected crash point.
var ErrCrashed = errors.New("nvram: device crashed (injected fault)")

// Device is a fixed-size persistent byte region. The backing buffer
// grows lazily up to the logical size: the Map-table journal appends
// sequentially from offset zero, so most of a generously sized device
// is never touched, and zeroing it eagerly at construction used to be
// one of the largest allocation costs of a full experiment run. Bytes
// past the grown region read as zero, exactly as a freshly zeroed
// buffer would.
type Device struct {
	size int
	data []byte // grown on demand, len(data) <= size

	crashed     bool
	crashArmed  bool
	bytesToLive int64 // writes allowed before the crash fires

	bytesWritten int64
	writeOps     int64
}

// New returns a zeroed device of the given size.
func New(size int) *Device {
	return &Device{size: size}
}

// Size reports the device capacity in bytes.
func (d *Device) Size() int { return d.size }

// grow extends the backing buffer to at least n bytes (geometric
// doubling bounds the amortized zeroing cost).
func (d *Device) grow(n int) {
	if n <= len(d.data) {
		return
	}
	if n <= cap(d.data) {
		// the region between len and cap was zeroed at allocation and
		// never written (writes land only below len)
		d.data = d.data[:n]
		return
	}
	newCap := 2 * cap(d.data)
	if newCap < n {
		newCap = n
	}
	if newCap < 4096 {
		newCap = 4096
	}
	if newCap > d.size {
		newCap = d.size
	}
	nd := make([]byte, n, newCap)
	copy(nd, d.data)
	d.data = nd
}

// BytesWritten reports the cumulative bytes accepted.
func (d *Device) BytesWritten() int64 { return d.bytesWritten }

// WriteOps reports the number of WriteAt calls that wrote anything.
func (d *Device) WriteOps() int64 { return d.writeOps }

// ArmCrash schedules a crash after n more bytes are written. A write
// that straddles the boundary is torn: its first bytes are applied,
// the rest lost — exactly the hazard a journaled Map table must
// tolerate.
func (d *Device) ArmCrash(n int64) {
	d.crashArmed = true
	d.bytesToLive = n
}

// Crashed reports whether the injected crash has fired.
func (d *Device) Crashed() bool { return d.crashed }

// Recover clears the crash state, modelling a restart: contents are
// preserved, writes are accepted again.
func (d *Device) Recover() {
	d.crashed = false
	d.crashArmed = false
}

// WriteAt stores p at off. After a crash it returns ErrCrashed without
// writing. If the armed crash point falls inside p, the prefix is
// written, the crash fires, and ErrCrashed is returned.
func (d *Device) WriteAt(off int, p []byte) error {
	if d.crashed {
		return ErrCrashed
	}
	if off < 0 || off+len(p) > d.size {
		return fmt.Errorf("nvram: write out of range: [%d,%d) size %d", off, off+len(p), d.size)
	}
	n := len(p)
	if d.crashArmed && int64(n) > d.bytesToLive {
		n = int(d.bytesToLive)
		d.grow(off + n)
		copy(d.data[off:], p[:n])
		d.bytesWritten += int64(n)
		if n > 0 {
			d.writeOps++
		}
		d.crashed = true
		d.crashArmed = false
		d.bytesToLive = 0
		return ErrCrashed
	}
	d.grow(off + n)
	copy(d.data[off:], p)
	d.bytesWritten += int64(n)
	if n > 0 {
		d.writeOps++
	}
	if d.crashArmed {
		d.bytesToLive -= int64(n)
	}
	return nil
}

// ReadAt fills p from off. Reads are always allowed (recovery reads the
// surviving contents after a crash).
func (d *Device) ReadAt(off int, p []byte) error {
	if off < 0 || off+len(p) > d.size {
		return fmt.Errorf("nvram: read out of range: [%d,%d) size %d", off, off+len(p), d.size)
	}
	n := 0
	if off < len(d.data) {
		n = copy(p, d.data[off:])
	}
	// beyond the grown region the device reads as zero; p may be a
	// reused scratch buffer, so the tail must be cleared explicitly
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	return nil
}
