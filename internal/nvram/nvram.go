// Package nvram simulates the byte-addressable non-volatile RAM that
// POD uses to hold the Map table so that LBA→PBA mappings survive power
// failure (§III-B, §IV-D2).
//
// The simulation supports fault injection: a crash can be armed to
// occur after a given number of further bytes are written, after which
// the write in progress is torn (applied only up to the crash point)
// and all subsequent writes are dropped. Recovery code is tested
// against every possible tear position.
package nvram

import (
	"errors"
	"fmt"
)

// ErrCrashed is returned by writes after the injected crash point.
var ErrCrashed = errors.New("nvram: device crashed (injected fault)")

const (
	slabShift = 16 // 64 KiB slabs
	slabSize  = 1 << slabShift
)

// Device is a fixed-size persistent byte region. The backing store is a
// sparse array of fixed-size slabs allocated on first write: the
// Map-table journal appends sequentially from offset zero, so most of a
// generously sized device is never touched, and neither eager zeroing
// nor geometric-doubling copies are ever paid — a slab, once allocated,
// is never moved. Bytes in never-written slabs read as zero, exactly as
// a freshly zeroed buffer would.
type Device struct {
	size  int
	slabs [][]byte // nil until first write to the slab's range

	crashed     bool
	crashArmed  bool
	bytesToLive int64 // writes allowed before the crash fires

	bytesWritten int64
	writeOps     int64
}

// New returns a zeroed device of the given size.
func New(size int) *Device {
	return &Device{
		size:  size,
		slabs: make([][]byte, (size+slabSize-1)/slabSize),
	}
}

// Size reports the device capacity in bytes.
func (d *Device) Size() int { return d.size }

// slab returns the backing slab for index i, allocating it on first
// write. The final slab is trimmed to the device size.
func (d *Device) slab(i int) []byte {
	s := d.slabs[i]
	if s == nil {
		n := slabSize
		if rem := d.size - i<<slabShift; rem < n {
			n = rem
		}
		s = make([]byte, n)
		d.slabs[i] = s
	}
	return s
}

// store copies p to off, allocating slabs as needed. Bounds are checked
// by the caller.
func (d *Device) store(off int, p []byte) {
	for len(p) > 0 {
		i := off >> slabShift
		s := d.slab(i)
		n := copy(s[off-i<<slabShift:], p)
		p = p[n:]
		off += n
	}
}

// BytesWritten reports the cumulative bytes accepted.
func (d *Device) BytesWritten() int64 { return d.bytesWritten }

// WriteOps reports the number of WriteAt calls that wrote anything.
func (d *Device) WriteOps() int64 { return d.writeOps }

// ArmCrash schedules a crash after n more bytes are written. A write
// that straddles the boundary is torn: its first bytes are applied,
// the rest lost — exactly the hazard a journaled Map table must
// tolerate.
func (d *Device) ArmCrash(n int64) {
	d.crashArmed = true
	d.bytesToLive = n
}

// Crashed reports whether the injected crash has fired.
func (d *Device) Crashed() bool { return d.crashed }

// Recover clears the crash state, modelling a restart: contents are
// preserved, writes are accepted again.
func (d *Device) Recover() {
	d.crashed = false
	d.crashArmed = false
}

// WriteAt stores p at off. After a crash it returns ErrCrashed without
// writing. If the armed crash point falls inside p, the prefix is
// written, the crash fires, and ErrCrashed is returned.
func (d *Device) WriteAt(off int, p []byte) error {
	if d.crashed {
		return ErrCrashed
	}
	if off < 0 || off+len(p) > d.size {
		return fmt.Errorf("nvram: write out of range: [%d,%d) size %d", off, off+len(p), d.size)
	}
	n := len(p)
	if d.crashArmed && int64(n) > d.bytesToLive {
		n = int(d.bytesToLive)
		d.store(off, p[:n])
		d.bytesWritten += int64(n)
		if n > 0 {
			d.writeOps++
		}
		d.crashed = true
		d.crashArmed = false
		d.bytesToLive = 0
		return ErrCrashed
	}
	d.store(off, p)
	d.bytesWritten += int64(n)
	if n > 0 {
		d.writeOps++
	}
	if d.crashArmed {
		d.bytesToLive -= int64(n)
	}
	return nil
}

// ReadAt fills p from off. Reads are always allowed (recovery reads the
// surviving contents after a crash).
func (d *Device) ReadAt(off int, p []byte) error {
	if off < 0 || off+len(p) > d.size {
		return fmt.Errorf("nvram: read out of range: [%d,%d) size %d", off, off+len(p), d.size)
	}
	for len(p) > 0 {
		i := off >> slabShift
		base := i << slabShift
		end := base + slabSize
		if end > d.size {
			end = d.size
		}
		span := end - off
		if span > len(p) {
			span = len(p)
		}
		if s := d.slabs[i]; s != nil {
			copy(p[:span], s[off-base:])
		} else {
			// never-written slab reads as zero; p may be a reused
			// scratch buffer, so clear it explicitly
			for j := 0; j < span; j++ {
				p[j] = 0
			}
		}
		p = p[span:]
		off += span
	}
	return nil
}
