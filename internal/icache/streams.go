package icache

import (
	"fmt"
	"strconv"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/index"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/probe"
)

// Stream mode (HPDedup-style apportionment). When enabled, the index
// partition is divided into per-stream sub-indexes: each tenant stream
// owns an index.Hot sized to its share of the partition, so one
// stream's insertions can only evict its own entries — a low-locality
// stream can no longer pollute a high-locality neighbour's quota. A
// fingerprint→stream owner directory resolves lookups (any stream may
// hit any entry; only eviction is partitioned), and the shared ghost
// index and reverse map work exactly as in the single-index mode, with
// ghost entries remembering their stream for swap-in re-admission.
//
// Shares come either from a fixed static split or from a periodic
// locality-driven apportioner (engine.Base drives internal/locality and
// calls SetStreamShares). Until the first apportionment, active streams
// split the partition equally. The adaptive iCache partition (index vs
// read cache) composes: when the Swap Module moves the boundary, the
// per-stream capacities are recomputed against the new index budget.

// subIdx is one stream's slice of the index partition.
type subIdx struct {
	id    uint32
	idx   *index.Hot
	share float64 // share in force (0 = unassigned / equal-split)
	// lifetime accounting for gauges and verdicts
	lookups, hits int64
}

// streamState holds the controller's stream-mode fields; embedded so
// the zero value keeps the classic single-index mode.
type streamState struct {
	streamMode bool
	// icEntries is the index partition budget in entries, updated by
	// the Swap Module; per-stream capacities are shares of it.
	icEntries int
	strs      map[uint32]*subIdx
	strOrder  []uint32 // first-seen order, for deterministic iteration
	fpOwner   *probe.Map[chunk.Fingerprint, uint32]
	// staticShares, when non-nil, fixes the split for the controller's
	// lifetime; otherwise SetStreamShares applies dynamic shares.
	staticShares map[uint32]float64
	shares       map[uint32]float64 // dynamic shares in force (nil = equal split)
	streamReg    *metrics.Registry  // lazy per-stream gauge registration
}

// EnableStreams switches the controller into per-stream apportionment
// mode. static, when non-nil, fixes each stream's share of the index
// partition permanently (streams absent from the map get no quota);
// when nil, shares are dynamic — equal split until SetStreamShares is
// called. Must be called on a fresh controller.
func (c *Controller) EnableStreams(static map[uint32]float64) {
	if c.idx.Len() > 0 {
		panic("icache: EnableStreams on a used controller")
	}
	c.streamMode = true
	c.strs = make(map[uint32]*subIdx)
	c.fpOwner = probe.NewMap[chunk.Fingerprint, uint32](0)
	if static != nil {
		c.staticShares = make(map[uint32]float64, len(static))
		for id, s := range static {
			c.staticShares[id] = s
		}
	}
}

// StreamMode reports whether per-stream apportionment is enabled.
func (c *Controller) StreamMode() bool { return c.streamMode }

// SetStreamShares applies dynamically apportioned shares (stream →
// fraction of the index partition, summing to ≤ 1). Streams absent from
// the map get no quota until the next call. No-op under a static split.
func (c *Controller) SetStreamShares(shares map[uint32]float64) {
	if !c.streamMode || c.staticShares != nil {
		return
	}
	cp := make(map[uint32]float64, len(shares))
	for id, s := range shares {
		cp[id] = s
	}
	c.shares = cp
	c.recomputeStreamCaps()
}

// shareOf reports the share of the index partition currently granted to
// stream id.
func (c *Controller) shareOf(id uint32) float64 {
	if c.staticShares != nil {
		return c.staticShares[id]
	}
	if c.shares != nil {
		return c.shares[id]
	}
	if n := len(c.strOrder); n > 0 {
		return 1.0 / float64(n)
	}
	return 0
}

func (c *Controller) streamCapFor(id uint32) int {
	return int(c.shareOf(id) * float64(c.icEntries))
}

// getSub returns (creating on first sight) the sub-index for stream id.
func (c *Controller) getSub(id uint32) *subIdx {
	if s, ok := c.strs[id]; ok {
		return s
	}
	s := &subIdx{id: id, idx: index.NewHot(0)}
	c.strs[id] = s
	c.strOrder = append(c.strOrder, id)
	if c.staticShares == nil && c.shares == nil {
		// equal-split startup: a new stream changes everyone's share
		c.recomputeStreamCaps()
	} else {
		s.idx.Resize(c.streamCapFor(id))
	}
	if c.streamReg != nil {
		c.instrumentStream(s)
	}
	return s
}

// recomputeStreamCaps resizes every sub-index to its current share of
// the index partition; shrink victims move to the ghost (adaptive) or
// are dropped, exactly as single-index resizes do.
func (c *Controller) recomputeStreamCaps() {
	for _, id := range c.strOrder {
		s := c.strs[id]
		for _, ev := range s.idx.Resize(c.streamCapFor(id)) {
			c.fpOwner.Delete(ev.FP)
			if c.p.Adaptive {
				if gev, gevicted := c.ghostIdx.Put(ev.FP, ghostIndexEntry{pba: ev.Entry.PBA, stream: id}); gevicted {
					c.revRemove(gev.Val.pba, gev.Key)
				}
			} else {
				c.revRemove(ev.Entry.PBA, ev.FP)
			}
		}
	}
}

// streamLookup is IndexLookupS in stream mode. The lookup is attributed
// to the requesting stream; the hit may come from any stream's
// sub-index (the index is still one logical directory — only eviction
// is partitioned).
func (c *Controller) streamLookup(stream uint32, fp chunk.Fingerprint) (index.Entry, bool) {
	s := c.getSub(stream)
	s.lookups++
	if owner, ok := c.fpOwner.Find(fp); ok {
		if e, ok2 := c.strs[*owner].idx.Lookup(fp); ok2 {
			c.idxHits++
			s.hits++
			return e, true
		}
	}
	c.idxMisses++
	if c.p.Adaptive && c.ghostIdx.Contains(fp) {
		c.ghostIdxHits++
		c.totalGhostIdxHits++
	}
	return index.Entry{}, false
}

// streamInsert is IndexInsertS in stream mode. A fingerprint already
// owned by another stream is updated in place (ownership sticks to the
// first inserter); a fresh fingerprint lands in the inserting stream's
// sub-index, evicting only that stream's own entries. A stream with no
// quota gets nothing cached — bgdedup catches what inline then skips.
func (c *Controller) streamInsert(stream uint32, fp chunk.Fingerprint, pba alloc.PBA) {
	if owner, ok := c.fpOwner.Find(fp); ok {
		o := c.strs[*owner]
		ev, evicted := o.idx.Insert(fp, pba)
		if evicted { // remap of an existing fingerprint (self-eviction)
			c.revAdd(pba, fp)
			c.revRemove(ev.Entry.PBA, fp)
		}
		return
	}
	c.ghostRemoveFP(fp) // re-admission through the real path
	s := c.getSub(stream)
	if s.idx.Cap() == 0 {
		return
	}
	ev, evicted := s.idx.Insert(fp, pba)
	c.fpOwner.Put(fp, stream)
	c.revAdd(pba, fp)
	if evicted {
		c.fpOwner.Delete(ev.FP)
		if c.p.Adaptive {
			if gev, gevicted := c.ghostIdx.Put(ev.FP, ghostIndexEntry{pba: ev.Entry.PBA, stream: stream}); gevicted {
				c.revRemove(gev.Val.pba, gev.Key)
			}
		} else {
			c.revRemove(ev.Entry.PBA, ev.FP)
		}
	}
}

// streamSwapIns re-admits ghost entries into their streams' sub-indexes
// after the Swap Module grows the index partition, bounded by each
// stream's free quota.
func (c *Controller) streamSwapIns() int {
	room := make(map[uint32]int, len(c.strs))
	total := 0
	for _, id := range c.strOrder {
		s := c.strs[id]
		if r := s.idx.Cap() - s.idx.Len(); r > 0 {
			room[id] = r
			total += r
		}
	}
	if total == 0 {
		return 0
	}
	var fps []chunk.Fingerprint
	var pbas []alloc.PBA
	var owners []uint32
	c.ghostIdx.Each(func(fp chunk.Fingerprint, e ghostIndexEntry) bool {
		if room[e.stream] <= 0 {
			return total > 0
		}
		room[e.stream]--
		total--
		fps = append(fps, fp)
		pbas = append(pbas, e.pba)
		owners = append(owners, e.stream)
		return total > 0
	})
	for i, fp := range fps {
		c.ghostRemoveFP(fp)
		s := c.strs[owners[i]]
		s.idx.Insert(fp, pbas[i])
		c.fpOwner.Put(fp, owners[i])
		c.revAdd(pbas[i], fp)
		c.swapInsIdx++
	}
	return len(fps)
}

// dropFP removes a fingerprint from whichever index holds it (hot or
// per-stream) and from the ghost; reverse links are the caller's
// responsibility.
func (c *Controller) dropFP(fp chunk.Fingerprint) {
	if c.streamMode {
		if o, ok := c.fpOwner.Find(fp); ok {
			c.strs[*o].idx.Remove(fp)
			c.fpOwner.Delete(fp)
		}
	} else {
		c.idx.Remove(fp)
	}
	c.ghostIdx.Remove(fp)
}

// indexLen reports live index entries across modes.
func (c *Controller) indexLen() int {
	if !c.streamMode {
		return c.idx.Len()
	}
	n := 0
	for _, id := range c.strOrder {
		n += c.strs[id].idx.Len()
	}
	return n
}

// IndexCapTotal reports the index partition budget in entries — the
// hot index capacity in classic mode, the sum available to all streams
// in stream mode. Engines size fingerprint tables off this.
func (c *Controller) IndexCapTotal() int {
	if c.streamMode {
		return c.icEntries
	}
	return c.idx.Cap()
}

// StreamQuota snapshots one stream's quota and hit accounting.
type StreamQuota struct {
	Stream        uint32
	Share         float64
	Cap, Len      int
	Lookups, Hits int64
}

// StreamQuotas snapshots every stream in first-seen order (nil when
// stream mode is off).
func (c *Controller) StreamQuotas() []StreamQuota {
	if !c.streamMode {
		return nil
	}
	out := make([]StreamQuota, 0, len(c.strOrder))
	for _, id := range c.strOrder {
		s := c.strs[id]
		out = append(out, StreamQuota{
			Stream: id, Share: c.shareOf(id),
			Cap: s.idx.Cap(), Len: s.idx.Len(),
			Lookups: s.lookups, Hits: s.hits,
		})
	}
	return out
}

// instrumentStream registers one stream's quota and hit gauges.
func (c *Controller) instrumentStream(s *subIdx) {
	label := strconv.FormatUint(uint64(s.id), 10)
	reg := c.streamReg
	reg.GaugeFunc(metrics.Labeled("icache_stream_quota", "stream", label),
		func() int64 { return int64(s.idx.Cap()) })
	reg.GaugeFunc(metrics.Labeled("icache_stream_entries", "stream", label),
		func() int64 { return int64(s.idx.Len()) })
	reg.GaugeFunc(metrics.Labeled("icache_stream_lookups", "stream", label),
		func() int64 { return s.lookups })
	reg.GaugeFunc(metrics.Labeled("icache_stream_hits", "stream", label),
		func() int64 { return s.hits })
}

// checkStreamInvariants extends CheckInvariants for stream mode.
func (c *Controller) checkStreamInvariants() error {
	capSum, lenSum := 0, 0
	for _, id := range c.strOrder {
		s := c.strs[id]
		capSum += s.idx.Cap()
		lenSum += s.idx.Len()
		var violation string
		s.idx.Each(func(fp chunk.Fingerprint, _ index.Entry) bool {
			if o, ok := c.fpOwner.Find(fp); !ok || *o != id {
				violation = "sub-index entry not registered to its owner stream"
				return false
			}
			if c.ghostIdx.Contains(fp) {
				violation = "fingerprint live in both a stream sub-index and the ghost"
				return false
			}
			return true
		})
		if violation != "" {
			return fmt.Errorf("icache: stream %d: %s", id, violation)
		}
	}
	if capSum > c.icEntries+len(c.strOrder) { // +rounding slack per stream
		return fmt.Errorf("icache: stream quotas %d exceed index partition %d", capSum, c.icEntries)
	}
	if c.fpOwner.Len() != lenSum {
		return fmt.Errorf("icache: owner directory has %d entries, sub-indexes hold %d", c.fpOwner.Len(), lenSum)
	}
	return nil
}
