// Package icache implements POD's intelligent cache manager (§III-C):
// the adaptive partitioning of a fixed DRAM budget between the
// fingerprint index cache and the data read cache.
//
// The controller owns both actual caches and their metadata-only ghost
// caches. The Access Monitor counts, per evaluation interval, how often
// a miss in an actual cache *would have been* a hit with a larger cache
// (a ghost hit). The Swap Module then compares the cost-benefit of the
// two ghosts — ghost hits weighted by the I/O time each kind of hit
// saves — and repartitions the budget toward the cache whose growth
// pays more, swapping the most recent ghost entries back in. Swapped-in
// read blocks must be fetched from the back-end store, so the
// controller surfaces them to the engine, which charges background disk
// reads.
//
// With adaptation disabled the controller degrades to the fixed
// partition used by the paper's Full-Dedupe / iDedup / Select-Dedupe
// configurations (§IV-B: "equal spaces to the index cache and read
// cache"), keeping every engine on one code path.
package icache

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/cache"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/index"
	"github.com/pod-dedup/pod/internal/probe"
	"github.com/pod-dedup/pod/internal/sim"
)

// Params configures the controller.
type Params struct {
	TotalBytes      int64        // the DRAM budget to split
	IndexEntryBytes int          // in-memory footprint of one index entry
	BlockBytes      int          // footprint of one cached data block
	IndexFrac       float64      // initial index-cache share (0,1)
	Adaptive        bool         // enable iCache adaptation
	Interval        sim.Duration // evaluation interval (virtual time)
	MinFrac         float64      // lower bound on either share
	Step            float64      // share moved per repartition
	WriteBenefitUS  int64        // saved cost per avoided duplicate write
	ReadBenefitUS   int64        // saved cost per avoided read miss
}

// DefaultParams returns the configuration used by the experiments: a
// 50/50 initial split, 500 ms evaluation interval, 10 % floor, 12.5 %
// step, and benefit weights approximating one avoided disk I/O each.
func DefaultParams(totalBytes int64) Params {
	return Params{
		TotalBytes:      totalBytes,
		IndexEntryBytes: 64,
		BlockBytes:      chunk.Size,
		IndexFrac:       0.5,
		Adaptive:        false,
		Interval:        250 * sim.Millisecond,
		MinFrac:         0.25,
		Step:            0.0625,
		// an avoided duplicate write saves a RAID5 read-modify-write
		// (two serialized disk phases); an avoided read miss saves one
		// disk access — hence the 2:1 benefit weighting
		WriteBenefitUS: 16000,
		ReadBenefitUS:  8000,
	}
}

// ghostIndexEntry preserves the metadata needed to re-admit an index
// entry on swap-in; stream remembers the owning tenant so stream-mode
// swap-ins return the entry to the right quota.
type ghostIndexEntry struct {
	pba    alloc.PBA
	stream uint32
}

// Controller manages the partitioned storage cache.
type Controller struct {
	p Params

	streamState

	idx      *index.Hot
	ghostIdx *cache.LRU[chunk.Fingerprint, ghostIndexEntry]
	// idxRev maps a physical block to the fingerprints referencing it
	// from the hot index or the ghost index, so PurgePBA can drop
	// every entry for a freed block — the consistency mechanism that
	// replaces in-place overwrite protection in this log-structured
	// substrate. Nearly every block is referenced by exactly one
	// fingerprint, so the first one lives inline in the map value and
	// only collisions beyond it pay for an overflow slice.
	idxRev *probe.Map[alloc.PBA, revEntry]

	read      *cache.LRU[alloc.PBA, struct{}]
	ghostRead *cache.Ghost[alloc.PBA]

	indexFrac float64
	nextEval  sim.Time

	// Access Monitor counters for the current interval.
	ghostIdxHits, ghostReadHits int64
	idxHits, readHits           int64
	idxMisses, readMisses       int64

	// lifetime accounting
	repartitions          int64
	totalGhostIdxHits     int64
	totalGhostReadHits    int64
	swapInsIdx, swapInsRd int64

	history []FracPoint
}

// FracPoint records the partition after one repartition decision.
type FracPoint struct {
	Time      sim.Time
	IndexFrac float64
}

// New returns a controller with the partition at p.IndexFrac.
func New(p Params) *Controller {
	if p.TotalBytes <= 0 {
		panic("icache: non-positive budget")
	}
	if p.IndexEntryBytes <= 0 || p.BlockBytes <= 0 {
		panic("icache: non-positive entry sizes")
	}
	if p.IndexFrac <= 0 || p.IndexFrac >= 1 {
		panic(fmt.Sprintf("icache: index fraction %f out of (0,1)", p.IndexFrac))
	}
	c := &Controller{p: p, indexFrac: p.IndexFrac, nextEval: sim.Time(p.Interval)}
	ic, rc := c.capacitiesFor(p.IndexFrac)
	c.icEntries = ic
	c.idx = index.NewHot(ic)
	c.read = cache.NewLRU[alloc.PBA, struct{}](rc)
	// each ghost may grow to the whole budget minus its actual cache
	c.ghostIdx = cache.NewLRU[chunk.Fingerprint, ghostIndexEntry](c.maxIndexEntries() - ic)
	c.ghostRead = cache.NewGhost[alloc.PBA](c.maxReadBlocks() - rc)
	c.idxRev = probe.NewMap[alloc.PBA, revEntry](0)
	return c
}

// revEntry holds the fingerprints referencing one physical block: the
// first inline (the overwhelmingly common case), the rest in an
// overflow slice allocated only on collision.
type revEntry struct {
	first chunk.Fingerprint
	rest  []chunk.Fingerprint
}

func (c *Controller) maxIndexEntries() int { return int(c.p.TotalBytes) / c.p.IndexEntryBytes }
func (c *Controller) maxReadBlocks() int   { return int(c.p.TotalBytes) / c.p.BlockBytes }

func (c *Controller) capacitiesFor(frac float64) (idxEntries, readBlocks int) {
	idxBytes := int64(frac * float64(c.p.TotalBytes))
	idxEntries = int(idxBytes) / c.p.IndexEntryBytes
	readBlocks = int(c.p.TotalBytes-idxBytes) / c.p.BlockBytes
	if idxEntries < 1 {
		idxEntries = 1
	}
	if readBlocks < 1 {
		readBlocks = 1
	}
	return idxEntries, readBlocks
}

// Index exposes the hot index (for engines and tests).
func (c *Controller) Index() *index.Hot { return c.idx }

// IndexFrac reports the current index-cache share of the budget.
func (c *Controller) IndexFrac() float64 { return c.indexFrac }

// ReadCacheLen reports the number of cached data blocks.
func (c *Controller) ReadCacheLen() int { return c.read.Len() }

// ReadCacheCap reports the read-cache capacity in blocks.
func (c *Controller) ReadCacheCap() int { return c.read.Cap() }

// Repartitions reports how many times the Swap Module resized.
func (c *Controller) Repartitions() int64 { return c.repartitions }

// History returns the partition trajectory: one point per repartition,
// in time order.
func (c *Controller) History() []FracPoint {
	return append([]FracPoint(nil), c.history...)
}

// --- index-cache path ---

// IndexLookup searches the hot index on the default stream.
func (c *Controller) IndexLookup(fp chunk.Fingerprint) (index.Entry, bool) {
	return c.IndexLookupS(0, fp)
}

// IndexLookupS searches the index on behalf of a tenant stream,
// counting a ghost hit on miss (the Access Monitor's signal that a
// larger index cache would have deduplicated this chunk). Outside
// stream mode the stream is ignored.
func (c *Controller) IndexLookupS(stream uint32, fp chunk.Fingerprint) (index.Entry, bool) {
	if c.streamMode {
		return c.streamLookup(stream, fp)
	}
	if e, ok := c.idx.Lookup(fp); ok {
		c.idxHits++
		return e, true
	}
	c.idxMisses++
	if c.p.Adaptive && c.ghostIdx.Contains(fp) {
		c.ghostIdxHits++
		c.totalGhostIdxHits++
	}
	return index.Entry{}, false
}

// IndexPeek reads the hot index without touching recency, hit
// statistics, or the ghost — the global fingerprint tier uses it to
// find a shard's local copy of a fingerprint before a granted hint
// overwrites the binding.
func (c *Controller) IndexPeek(fp chunk.Fingerprint) (index.Entry, bool) {
	if c.streamMode {
		if o, ok := c.fpOwner.Find(fp); ok {
			return c.strs[*o].idx.Peek(fp)
		}
		return index.Entry{}, false
	}
	return c.idx.Peek(fp)
}

// IndexInsert adds fp → pba to the hot index on the default stream.
func (c *Controller) IndexInsert(fp chunk.Fingerprint, pba alloc.PBA) {
	c.IndexInsertS(0, fp, pba)
}

// IndexInsertS adds fp → pba to the index on behalf of a tenant
// stream. In adaptive mode evicted entries move to the ghost index;
// either way the reverse map tracks every live entry for
// purge-on-free. In stream mode the entry lands in (and can only
// evict from) the inserting stream's quota.
func (c *Controller) IndexInsertS(stream uint32, fp chunk.Fingerprint, pba alloc.PBA) {
	if c.streamMode {
		if e, ok := c.IndexPeek(fp); ok && e.PBA == pba {
			return
		}
		c.streamInsert(stream, fp, pba)
		return
	}
	if e, ok := c.idx.Peek(fp); ok && e.PBA == pba {
		return
	}
	c.ghostRemoveFP(fp) // re-admission through the real path
	ev, evicted := c.idx.Insert(fp, pba)
	c.revAdd(pba, fp)
	if evicted {
		if ev.FP == fp {
			// remap of the same fingerprint: drop the old block's link
			c.revRemove(ev.Entry.PBA, fp)
		} else if c.p.Adaptive {
			// victim moves to the ghost; its reverse link stays
			if gev, gevicted := c.ghostIdx.Put(ev.FP, ghostIndexEntry{pba: ev.Entry.PBA}); gevicted {
				c.revRemove(gev.Val.pba, gev.Key)
			}
		} else {
			c.revRemove(ev.Entry.PBA, ev.FP)
		}
	}
}

// --- read-cache path ---

// ReadHit tests whether pba is cached, promoting it on hit and
// consulting the ghost on miss.
func (c *Controller) ReadHit(pba alloc.PBA) bool {
	if _, ok := c.read.Get(pba); ok {
		c.readHits++
		return true
	}
	c.readMisses++
	if c.p.Adaptive && c.ghostRead.Hit(pba) {
		c.ghostReadHits++
		c.totalGhostReadHits++
	}
	return false
}

// ReadInsert caches pba after a fetch from disk.
func (c *Controller) ReadInsert(pba alloc.PBA) {
	if ev, evicted := c.read.Put(pba, struct{}{}); evicted && c.p.Adaptive && ev.Key != pba {
		c.ghostRead.Add(ev.Key)
	}
}

// PurgePBA removes every trace of a freed physical block — read cache,
// read ghost, hot index, and ghost index — so a reused block can never
// serve stale data or be dedup-referenced under its old content.
func (c *Controller) PurgePBA(pba alloc.PBA) {
	c.read.Remove(pba)
	c.ghostRead.Remove(pba)
	if e, ok := c.idxRev.Take(pba); ok {
		c.dropFP(e.first)
		for _, fp := range e.rest {
			c.dropFP(fp)
		}
	}
}

// PurgeWhere removes every trace of every cached block whose PBA
// matches pred — index hints (hot and ghost, via the reverse map), read
// cache, and read ghost — and reports how many distinct PBAs were
// purged. The serving layer uses it with a remote-owner predicate when
// a peer shard crashes: hints naming the dead shard's canonicals must
// go before its recovery frees unpinned blocks, or a surviving shard
// could dedupe new writes against physical blocks that no longer hold
// the hinted content.
func (c *Controller) PurgeWhere(pred func(alloc.PBA) bool) int {
	var victims []alloc.PBA
	c.idxRev.Each(func(pba alloc.PBA, _ revEntry) bool {
		if pred(pba) {
			victims = append(victims, pba)
		}
		return true
	})
	c.read.Each(func(pba alloc.PBA, _ struct{}) bool {
		if pred(pba) {
			victims = append(victims, pba)
		}
		return true
	})
	c.ghostRead.EachMRU(func(pba alloc.PBA) bool {
		if pred(pba) {
			victims = append(victims, pba)
		}
		return true
	})
	n := 0
	seen := make(map[alloc.PBA]struct{}, len(victims))
	for _, pba := range victims {
		if _, dup := seen[pba]; dup {
			continue
		}
		seen[pba] = struct{}{}
		c.PurgePBA(pba)
		n++
	}
	return n
}

func (c *Controller) revAdd(pba alloc.PBA, fp chunk.Fingerprint) {
	e, inserted := c.idxRev.Ref(pba)
	if inserted {
		*e = revEntry{first: fp}
		return
	}
	if e.first == fp {
		return
	}
	for _, f := range e.rest {
		if f == fp {
			return
		}
	}
	e.rest = append(e.rest, fp)
}

func (c *Controller) ghostRemoveFP(fp chunk.Fingerprint) {
	if e, ok := c.ghostIdx.Take(fp); ok {
		c.revRemove(e.pba, fp)
	}
}

func (c *Controller) revRemove(pba alloc.PBA, fp chunk.Fingerprint) {
	e, ok := c.idxRev.Find(pba)
	if !ok {
		return
	}
	if e.first == fp {
		if len(e.rest) == 0 {
			c.idxRev.Delete(pba)
			return
		}
		e.first = e.rest[len(e.rest)-1]
		e.rest = e.rest[:len(e.rest)-1]
		return
	}
	for i, f := range e.rest {
		if f == fp {
			e.rest[i] = e.rest[len(e.rest)-1]
			e.rest = e.rest[:len(e.rest)-1]
			return
		}
	}
}

// --- Swap Module ---

// Repartition is the outcome of one evaluation tick.
type Repartition struct {
	Changed      bool
	IndexSwapIns int         // ghost index entries re-admitted on growth
	ReadSwapIns  []alloc.PBA // re-admitted blocks: engine issues background reads
}

// Tick runs the Access Monitor / Swap Module at virtual time now. With
// adaptation disabled, or before the interval elapses, it is a no-op.
func (c *Controller) Tick(now sim.Time) Repartition {
	if !c.p.Adaptive || now < c.nextEval {
		return Repartition{}
	}
	c.nextEval = now.Add(c.p.Interval)

	benefitIdx := c.ghostIdxHits * c.p.WriteBenefitUS
	benefitRead := c.ghostReadHits * c.p.ReadBenefitUS
	c.ghostIdxHits, c.ghostReadHits = 0, 0
	c.idxHits, c.idxMisses, c.readHits, c.readMisses = 0, 0, 0, 0

	// require clear dominance before moving the partition — reacting
	// to noise thrashes both caches (each move costs transient misses
	// and swap I/O)
	const dominance = 1.3
	var target float64
	switch {
	case benefitIdx > 0 && float64(benefitIdx) > dominance*float64(benefitRead):
		target = c.indexFrac + c.p.Step
	case benefitRead > 0 && float64(benefitRead) > dominance*float64(benefitIdx):
		target = c.indexFrac - c.p.Step
	default:
		return Repartition{}
	}
	if target < c.p.MinFrac {
		target = c.p.MinFrac
	}
	if target > 1-c.p.MinFrac {
		target = 1 - c.p.MinFrac
	}
	if target == c.indexFrac {
		return Repartition{}
	}

	grewIndex := target > c.indexFrac
	c.indexFrac = target
	ic, rc := c.capacitiesFor(target)
	rep := Repartition{Changed: true}
	c.repartitions++
	c.history = append(c.history, FracPoint{Time: now, IndexFrac: target})

	// shrink one side; hot-index victims keep their reverse links as
	// they move into the ghost
	c.icEntries = ic
	if c.streamMode {
		c.recomputeStreamCaps()
	} else {
		for _, ev := range c.idx.Resize(ic) {
			if c.p.Adaptive {
				if gev, gevicted := c.ghostIdx.Put(ev.FP, ghostIndexEntry{pba: ev.Entry.PBA}); gevicted {
					c.revRemove(gev.Val.pba, gev.Key)
				}
			} else {
				c.revRemove(ev.Entry.PBA, ev.FP)
			}
		}
	}
	for _, ev := range c.read.Resize(rc) {
		c.ghostRead.Add(ev.Key)
	}
	// rebalance ghost capacities to mirror the actual caches
	for _, gev := range c.ghostIdx.Resize(c.maxIndexEntries() - ic) {
		c.revRemove(gev.Val.pba, gev.Key)
	}
	c.ghostRead.Resize(c.maxReadBlocks() - rc)

	// grow the other side by swapping in the most recent ghosts
	if grewIndex {
		if c.streamMode {
			rep.IndexSwapIns = c.streamSwapIns()
		} else {
			room := ic - c.idx.Len()
			var fps []chunk.Fingerprint
			var pbas []alloc.PBA
			c.ghostIdx.Each(func(fp chunk.Fingerprint, e ghostIndexEntry) bool {
				if len(fps) >= room {
					return false
				}
				fps = append(fps, fp)
				pbas = append(pbas, e.pba)
				return true
			})
			for i, fp := range fps {
				c.ghostRemoveFP(fp)
				c.idx.Insert(fp, pbas[i])
				c.revAdd(pbas[i], fp)
				rep.IndexSwapIns++
				c.swapInsIdx++
			}
		}
	} else {
		room := rc - c.read.Len()
		// ghost read keeps only keys; re-admit the most recent ones
		var pbas []alloc.PBA
		c.ghostRead.EachMRU(func(pba alloc.PBA) bool {
			if len(pbas) >= room {
				return false
			}
			pbas = append(pbas, pba)
			return true
		})
		for _, pba := range pbas {
			c.ghostRead.Remove(pba)
			c.read.Put(pba, struct{}{})
			rep.ReadSwapIns = append(rep.ReadSwapIns, pba)
			c.swapInsRd++
		}
	}
	return rep
}

// CheckInvariants verifies the budget is never exceeded and ghosts hold
// no live entries; in stream mode it additionally audits the owner
// directory and per-stream quotas. Exposed for property tests.
func (c *Controller) CheckInvariants() error {
	idxBytes := int64(c.IndexCapTotal()) * int64(c.p.IndexEntryBytes)
	readBytes := int64(c.read.Cap()) * int64(c.p.BlockBytes)
	slack := int64(c.p.IndexEntryBytes) + int64(c.p.BlockBytes) // integer division slack
	if idxBytes+readBytes > c.p.TotalBytes+slack {
		return fmt.Errorf("icache: partition exceeds budget: %d + %d > %d", idxBytes, readBytes, c.p.TotalBytes)
	}
	if c.streamMode {
		return c.checkStreamInvariants()
	}
	violation := ""
	c.idx.Each(func(fp chunk.Fingerprint, _ index.Entry) bool {
		if c.ghostIdx.Contains(fp) {
			violation = "fingerprint live in both index cache and ghost"
			return false
		}
		return true
	})
	if violation != "" {
		return fmt.Errorf("icache: %s", violation)
	}
	return nil
}
