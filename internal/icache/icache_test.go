package icache

import (
	"testing"
	"testing/quick"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
)

func fp(id uint64) chunk.Fingerprint {
	c := chunk.Chunk{Content: chunk.ContentID(id)}
	return chunk.SyntheticFingerprinter{}.Fingerprint(&c)
}

func testParams(adaptive bool) Params {
	p := DefaultParams(64 * 1024) // 64 KB budget: 512 index entries or 16 blocks max
	p.Adaptive = adaptive
	p.IndexEntryBytes = 64
	p.BlockBytes = 4096
	return p
}

func TestNewValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"zero budget": func() { New(Params{TotalBytes: 0, IndexEntryBytes: 1, BlockBytes: 1, IndexFrac: 0.5}) },
		"bad frac":    func() { New(Params{TotalBytes: 100, IndexEntryBytes: 1, BlockBytes: 1, IndexFrac: 1.5}) },
		"zero entry":  func() { New(Params{TotalBytes: 100, BlockBytes: 1, IndexFrac: 0.5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestInitialPartition(t *testing.T) {
	c := New(testParams(false))
	// 50 % of 64 KB = 32 KB: 512 index entries, 8 read blocks
	if c.Index().Cap() != 512 {
		t.Errorf("index cap = %d, want 512", c.Index().Cap())
	}
	if c.ReadCacheCap() != 8 {
		t.Errorf("read cap = %d, want 8", c.ReadCacheCap())
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIndexLookupInsert(t *testing.T) {
	c := New(testParams(false))
	if _, ok := c.IndexLookup(fp(1)); ok {
		t.Fatal("phantom hit")
	}
	c.IndexInsert(fp(1), 100)
	if e, ok := c.IndexLookup(fp(1)); !ok || e.PBA != 100 {
		t.Fatal("lookup after insert failed")
	}
	// duplicate insert with the same pba is a no-op
	c.IndexInsert(fp(1), 100)
	if e, ok := c.IndexLookup(fp(1)); !ok || e.PBA != 100 || e.Count != 2 {
		t.Fatalf("entry after idempotent insert = %+v,%v", e, ok)
	}
}

func TestReadCachePath(t *testing.T) {
	c := New(testParams(false))
	if c.ReadHit(5) {
		t.Fatal("phantom read hit")
	}
	c.ReadInsert(5)
	if !c.ReadHit(5) {
		t.Fatal("miss after insert")
	}
}

func TestStaticModeNeverRepartitions(t *testing.T) {
	c := New(testParams(false))
	for i := uint64(0); i < 100; i++ {
		c.IndexLookup(fp(i))
		c.ReadHit(alloc.PBA(i))
	}
	rep := c.Tick(sim.Time(10 * sim.Second))
	if rep.Changed || c.Repartitions() != 0 {
		t.Fatal("static controller repartitioned")
	}
	if c.IndexFrac() != 0.5 {
		t.Fatal("fraction moved in static mode")
	}
}

// Drive ghost-index hits and verify the partition grows toward the
// index cache.
func TestAdaptiveGrowsIndexOnGhostIndexHits(t *testing.T) {
	p := testParams(true)
	p.IndexFrac = 0.5
	c := New(p)
	// overflow the index cache so evictions land in the ghost
	for i := uint64(0); i < 1000; i++ {
		c.IndexInsert(fp(i), alloc.PBA(i))
	}
	// re-reference evicted fingerprints: ghost hits accumulate
	for i := uint64(0); i < 400; i++ {
		c.IndexLookup(fp(i))
	}
	rep := c.Tick(sim.Time(sim.Second))
	if !rep.Changed {
		t.Fatal("expected repartition")
	}
	if c.IndexFrac() <= 0.5 {
		t.Fatalf("index frac = %f, want > 0.5", c.IndexFrac())
	}
	if rep.IndexSwapIns == 0 {
		t.Fatal("growth must swap ghost entries back in")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveGrowsReadOnGhostReadHits(t *testing.T) {
	p := testParams(true)
	c := New(p)
	// overflow the read cache (cap 8) so evictions land in its ghost
	for i := 0; i < 64; i++ {
		c.ReadInsert(alloc.PBA(i))
	}
	// re-reference the most recently evicted blocks (the ghost holds
	// only maxReadBlocks - cap = 8 entries: blocks 48..55), re-admitting
	// each after its miss as the engine's read path does
	for i := 48; i < 56; i++ {
		if !c.ReadHit(alloc.PBA(i)) {
			c.ReadInsert(alloc.PBA(i))
		}
	}
	rep := c.Tick(sim.Time(sim.Second))
	if !rep.Changed {
		t.Fatal("expected repartition")
	}
	if c.IndexFrac() >= 0.5 {
		t.Fatalf("index frac = %f, want < 0.5", c.IndexFrac())
	}
	if len(rep.ReadSwapIns) == 0 {
		t.Fatal("growth must swap ghost read blocks back in")
	}
	for _, pba := range rep.ReadSwapIns {
		if !c.ReadHit(pba) {
			t.Fatal("swapped-in block must now hit")
		}
	}
}

func TestTickHonorsInterval(t *testing.T) {
	p := testParams(true)
	c := New(p)
	for i := uint64(0); i < 1000; i++ {
		c.IndexInsert(fp(i), alloc.PBA(i))
	}
	for i := uint64(0); i < 100; i++ {
		c.IndexLookup(fp(i))
	}
	if rep := c.Tick(sim.Time(p.Interval / 2)); rep.Changed {
		t.Fatal("tick before interval must be a no-op")
	}
	if rep := c.Tick(sim.Time(p.Interval)); !rep.Changed {
		t.Fatal("tick at interval must evaluate")
	}
}

func TestFracBounds(t *testing.T) {
	p := testParams(true)
	p.Step = 0.5
	p.MinFrac = 0.1
	c := New(p)
	now := sim.Time(0)
	// push hard toward index growth repeatedly
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 2000; i++ {
			c.IndexInsert(fp(i+uint64(round)*10000), alloc.PBA(i))
		}
		for i := uint64(0); i < 500; i++ {
			c.IndexLookup(fp(i + uint64(round)*10000))
		}
		now = now.Add(p.Interval)
		c.Tick(now)
		if f := c.IndexFrac(); f < p.MinFrac-1e-9 || f > 1-p.MinFrac+1e-9 {
			t.Fatalf("frac %f out of bounds", f)
		}
	}
}

func TestPurgePBA(t *testing.T) {
	p := testParams(true)
	c := New(p)
	c.ReadInsert(7)
	c.PurgePBA(7)
	// reuse of the freed block must not produce a stale hit
	if c.ReadHit(7) {
		t.Fatal("stale read-cache entry after purge")
	}
	// ghost-index purge: evict fp(1) into ghost, then purge its block
	for i := uint64(0); i < 600; i++ {
		c.IndexInsert(fp(i), alloc.PBA(i))
	}
	// fp(0) was evicted into ghost (cap 512); purging block 0 removes it
	c.PurgePBA(0)
	c.IndexLookup(fp(0))
	if c.totalGhostIdxHits != 0 {
		t.Fatal("purged ghost entry still counted a hit")
	}
}

func TestNoRepartitionWithoutSignal(t *testing.T) {
	p := testParams(true)
	c := New(p)
	if rep := c.Tick(sim.Time(10 * sim.Second)); rep.Changed {
		t.Fatal("repartition with zero ghost hits")
	}
}

// Property: under arbitrary interleavings the budget invariant and
// ghost/live disjointness hold.
func TestControllerInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		p := testParams(true)
		c := New(p)
		now := sim.Time(0)
		for _, raw := range ops {
			id := uint64(raw % 256)
			switch raw % 5 {
			case 0:
				c.IndexLookup(fp(id))
			case 1:
				c.IndexInsert(fp(id), alloc.PBA(id))
			case 2:
				c.ReadHit(alloc.PBA(id))
			case 3:
				c.ReadInsert(alloc.PBA(id))
			case 4:
				now = now.Add(p.Interval)
				c.Tick(now)
			}
			if c.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHistoryRecordsTrajectory(t *testing.T) {
	p := testParams(true)
	c := New(p)
	if len(c.History()) != 0 {
		t.Fatal("fresh controller has history")
	}
	for i := uint64(0); i < 1000; i++ {
		c.IndexInsert(fp(i), alloc.PBA(i))
	}
	for i := uint64(0); i < 400; i++ {
		c.IndexLookup(fp(i))
	}
	c.Tick(sim.Time(sim.Second))
	h := c.History()
	if len(h) != 1 {
		t.Fatalf("history length = %d, want 1", len(h))
	}
	if h[0].IndexFrac <= 0.5 || h[0].Time != sim.Time(sim.Second) {
		t.Fatalf("history point = %+v", h[0])
	}
	// History returns a copy
	h[0].IndexFrac = -1
	if c.History()[0].IndexFrac == -1 {
		t.Fatal("History must return a copy")
	}
}
