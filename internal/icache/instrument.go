package icache

import "github.com/pod-dedup/pod/internal/metrics"

// Instrument publishes the controller's partition state and the Access
// Monitor's lifetime accounting into reg as live gauges — the telemetry
// behind the paper's Fig. 9 iCache-adaptation analysis: partition sizes
// on both sides, ghost-cache hit totals (the adaptation signal), and
// the swap traffic repartitioning causes. The engine re-calls it after
// crash recovery rebuilds the caches.
func (c *Controller) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("icache_index_entries", func() int64 { return int64(c.indexLen()) })
	reg.GaugeFunc("icache_index_cap", func() int64 { return int64(c.IndexCapTotal()) })
	reg.GaugeFunc("icache_read_blocks", func() int64 { return int64(c.read.Len()) })
	reg.GaugeFunc("icache_read_cap", func() int64 { return int64(c.read.Cap()) })
	reg.GaugeFunc("icache_index_frac_permille", func() int64 { return int64(c.indexFrac * 1000) })
	reg.GaugeFunc("icache_repartitions", func() int64 { return c.repartitions })
	reg.GaugeFunc("icache_ghost_index_hits_total", func() int64 { return c.totalGhostIdxHits })
	reg.GaugeFunc("icache_ghost_read_hits_total", func() int64 { return c.totalGhostReadHits })
	reg.GaugeFunc("icache_swapins_index", func() int64 { return c.swapInsIdx })
	reg.GaugeFunc("icache_swapins_read", func() int64 { return c.swapInsRd })
	if c.streamMode {
		// per-stream quota/hit gauges, registered lazily as streams
		// appear; the hot-index gauges aggregate the sub-indexes
		c.streamReg = reg
		for _, id := range c.strOrder {
			c.instrumentStream(c.strs[id])
		}
		reg.GaugeFunc("index_hot_entries", func() int64 { return int64(c.indexLen()) })
		reg.GaugeFunc("index_hot_cap", func() int64 { return int64(c.IndexCapTotal()) })
		return
	}
	c.idx.Instrument(reg)
}
