package icache

import (
	"testing"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/sim"
)

// streamController builds a stream-mode controller over the 64 KB test
// budget (512 index entries at the 50/50 split → 256 entries... the
// split yields 512 entries when IndexFrac is 0.5 of 64 KB / 64 B).
func streamController(t *testing.T, adaptive bool, static map[uint32]float64) *Controller {
	t.Helper()
	c := New(testParams(adaptive))
	c.EnableStreams(static)
	return c
}

func checkAll(t *testing.T, c *Controller) {
	t.Helper()
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamStaticIsolation(t *testing.T) {
	// a 50/50 static split of the index partition between streams 1, 2
	c := streamController(t, false, map[uint32]float64{1: 0.5, 2: 0.5})
	half := c.IndexCapTotal() / 2

	// stream 2 caches a modest working set
	for i := 0; i < 10; i++ {
		c.IndexInsertS(2, fp(uint64(1000+i)), alloc.PBA(1000+i))
	}
	// stream 1 floods far past the whole partition
	for i := 0; i < 4*c.IndexCapTotal(); i++ {
		c.IndexInsertS(1, fp(uint64(i)), alloc.PBA(i))
	}
	checkAll(t, c)

	// stream 2's entries survived the neighbour's flood
	for i := 0; i < 10; i++ {
		if _, ok := c.IndexLookupS(2, fp(uint64(1000+i))); !ok {
			t.Fatalf("stream 2 entry %d evicted by stream 1's flood", i)
		}
	}
	qs := c.StreamQuotas()
	if len(qs) != 2 {
		t.Fatalf("quota count = %d", len(qs))
	}
	for _, q := range qs {
		if q.Cap != half {
			t.Errorf("stream %d cap = %d, want %d", q.Stream, q.Cap, half)
		}
		if q.Len > q.Cap {
			t.Errorf("stream %d holds %d entries over cap %d", q.Stream, q.Len, q.Cap)
		}
	}
}

func TestStreamCrossStreamHit(t *testing.T) {
	c := streamController(t, false, nil)
	c.IndexInsertS(1, fp(42), alloc.PBA(7))
	// the index is one logical directory: another stream's lookup hits
	e, ok := c.IndexLookupS(2, fp(42))
	if !ok || e.PBA != 7 {
		t.Fatalf("cross-stream lookup = %+v, %v", e, ok)
	}
	// the hit is attributed to the requesting stream
	for _, q := range c.StreamQuotas() {
		if q.Stream == 2 && (q.Lookups != 1 || q.Hits != 1) {
			t.Errorf("stream 2 accounting = %d lookups, %d hits", q.Lookups, q.Hits)
		}
	}
	checkAll(t, c)
}

func TestStreamZeroQuotaDropsInserts(t *testing.T) {
	c := streamController(t, false, map[uint32]float64{1: 1.0, 2: 0.0})
	c.IndexInsertS(2, fp(1), alloc.PBA(1))
	if _, ok := c.IndexLookupS(2, fp(1)); ok {
		t.Fatal("zero-quota stream cached an entry")
	}
	if _, ok := c.IndexPeek(fp(1)); ok {
		t.Fatal("zero-quota insert leaked into the directory")
	}
	checkAll(t, c)
}

func TestStreamDynamicResize(t *testing.T) {
	c := streamController(t, false, nil)
	total := c.IndexCapTotal()

	// equal split while unapportioned
	c.IndexInsertS(1, fp(1), alloc.PBA(1))
	c.IndexInsertS(2, fp(2), alloc.PBA(2))
	for _, q := range c.StreamQuotas() {
		if q.Cap != total/2 {
			t.Fatalf("equal-split cap = %d, want %d", q.Cap, total/2)
		}
	}

	// fill stream 1 to its quota, then shrink it to 10%
	for i := 0; i < total/2; i++ {
		c.IndexInsertS(1, fp(uint64(100+i)), alloc.PBA(100+i))
	}
	c.SetStreamShares(map[uint32]float64{1: 0.1, 2: 0.9})
	checkAll(t, c)
	qs := c.StreamQuotas()
	if qs[0].Cap != total/10 || qs[0].Len > qs[0].Cap {
		t.Fatalf("shrunk stream: cap=%d len=%d, want cap %d", qs[0].Cap, qs[0].Len, total/10)
	}
	if qs[1].Cap != total*9/10 {
		t.Fatalf("grown stream cap = %d, want %d", qs[1].Cap, total*9/10)
	}

	// a stream absent from the shares map loses its quota entirely
	c.SetStreamShares(map[uint32]float64{2: 1.0})
	checkAll(t, c)
	if q := c.StreamQuotas()[0]; q.Cap != 0 || q.Len != 0 {
		t.Fatalf("dropped stream kept cap=%d len=%d", q.Cap, q.Len)
	}
}

func TestStreamOwnershipSticksToFirstInserter(t *testing.T) {
	c := streamController(t, false, nil)
	c.IndexInsertS(1, fp(5), alloc.PBA(10))
	// a remap from another stream updates in place, ownership unmoved
	c.IndexInsertS(2, fp(5), alloc.PBA(20))
	e, ok := c.IndexPeek(fp(5))
	if !ok || e.PBA != 20 {
		t.Fatalf("remap not applied: %+v, %v", e, ok)
	}
	qs := c.StreamQuotas()
	if qs[0].Len != 1 {
		t.Errorf("owner stream len = %d, want 1", qs[0].Len)
	}
	if len(qs) > 1 && qs[1].Len != 0 {
		t.Errorf("non-owner stream len = %d, want 0", qs[1].Len)
	}
	checkAll(t, c)
}

func TestStreamPurgePBA(t *testing.T) {
	c := streamController(t, true, nil)
	c.IndexInsertS(1, fp(1), alloc.PBA(11))
	c.IndexInsertS(2, fp(2), alloc.PBA(22))
	c.PurgePBA(alloc.PBA(11))
	if _, ok := c.IndexLookupS(1, fp(1)); ok {
		t.Fatal("purged entry still resolves")
	}
	if _, ok := c.IndexLookupS(2, fp(2)); !ok {
		t.Fatal("purge removed an unrelated stream's entry")
	}
	checkAll(t, c)
}

// TestStreamGhostSwapIn exercises the adaptive path: entries evicted by
// a quota shrink park in the ghost with their stream identity and
// return to the right sub-index when capacity comes back.
func TestStreamGhostSwapIn(t *testing.T) {
	c := streamController(t, true, nil)
	total := c.IndexCapTotal()
	n := total / 4
	for i := 0; i < n; i++ {
		c.IndexInsertS(1, fp(uint64(i)), alloc.PBA(i))
	}
	// shrink stream 1 to nothing: entries move to the ghost
	c.SetStreamShares(map[uint32]float64{1: 0.0, 2: 1.0})
	checkAll(t, c)
	if _, ok := c.IndexLookupS(1, fp(0)); ok {
		t.Fatal("entry survived a zero quota")
	}
	// restore quota; the next evaluation tick swaps ghost entries back
	c.SetStreamShares(map[uint32]float64{1: 0.5, 2: 0.5})
	rep := c.Tick(sim.Time(c.p.Interval) + 1)
	if rep.IndexSwapIns == 0 {
		t.Fatal("no ghost swap-ins after quota restore")
	}
	found := 0
	for i := 0; i < n; i++ {
		if _, ok := c.IndexPeek(fp(uint64(i))); ok {
			found++
		}
	}
	if found == 0 {
		t.Fatal("swap-ins restored no stream-1 entries")
	}
	for _, q := range c.StreamQuotas() {
		if q.Stream == 2 && q.Len != 0 {
			t.Fatalf("swap-ins leaked %d entries into stream 2", q.Len)
		}
	}
	checkAll(t, c)
}

// TestStreamRepartitionComposes drives the adaptive index/read Swap
// Module underneath per-stream quotas: after the partition boundary
// moves, per-stream capacities still sum to the (new) index budget.
func TestStreamRepartitionComposes(t *testing.T) {
	c := streamController(t, true, nil)
	for i := 0; i < 2*c.IndexCapTotal(); i++ {
		c.IndexInsertS(uint32(1+i%3), fp(uint64(i)), alloc.PBA(i))
		c.IndexLookupS(uint32(1+i%3), fp(uint64(i/2)))
		if i%64 == 0 {
			c.Tick(sim.Time(i) * sim.Time(sim.Millisecond) * 20)
		}
	}
	checkAll(t, c)
	sum := 0
	for _, q := range c.StreamQuotas() {
		sum += q.Cap
	}
	if sum > c.IndexCapTotal()+3 {
		t.Fatalf("quotas sum to %d, budget %d", sum, c.IndexCapTotal())
	}
}
