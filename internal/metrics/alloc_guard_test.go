package metrics

import "testing"

// TestHotPathInstrumentsAllocFree guards the per-request metric
// updates: counter increments, gauge adjustments, and histogram
// observations sit on every served request, so they must never
// allocate once the instruments exist (handles are resolved at
// construction time; see Registry).
func TestHotPathInstrumentsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes_total")
	g := r.Gauge("queue_depth")
	h := r.Histogram("write_rt_us")
	avg := testing.AllocsPerRun(500, func() {
		c.Inc()
		c.Add(2)
		g.Add(1)
		g.Add(-1)
		h.Observe(4096)
	})
	if avg != 0 {
		t.Fatalf("metric updates: %.2f allocs/op, want 0", avg)
	}
}
