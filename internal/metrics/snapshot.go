package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Bucket is one non-empty histogram bucket in a snapshot. LE is the
// inclusive upper bound of the bucket in microseconds (2^i - 1 for
// log₂ bucket i, MaxInt64 for the overflow bucket); Count is the
// number of samples that fell in it.
type Bucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is an immutable, sparse copy of a Histogram: only
// non-empty buckets are kept, so snapshots of mostly-empty histograms
// stay small in JSON.
type HistSnapshot struct {
	N       int64    `json:"n"`
	Sum     int64    `json:"sum"`
	Max     int64    `json:"max"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

func snapHistogram(h *Histogram) *HistSnapshot {
	s := &HistSnapshot{N: h.n, Sum: h.sum, Max: h.max}
	for i, c := range h.buckets {
		if c != 0 {
			le := bucketUpper(i) - 1
			if bucketUpper(i) == math.MaxInt64 {
				le = math.MaxInt64
			}
			s.Buckets = append(s.Buckets, Bucket{LE: le, Count: c})
		}
	}
	return s
}

// Mean reports the snapshot's arithmetic mean, 0 when empty.
func (s *HistSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Percentile estimates the p-th percentile (0 < p <= 100) by linear
// interpolation within the covering log₂ bucket, the same estimator
// as stats.Histogram.Percentile so the two latency views agree.
func (s *HistSnapshot) Percentile(p float64) float64 {
	if s.N == 0 {
		return 0
	}
	rank := p / 100 * float64(s.N)
	var cum int64
	for _, b := range s.Buckets {
		cum += b.Count
		if float64(cum) >= rank {
			hi := float64(b.LE) + 1
			lo := hi / 2
			if b.LE <= 0 {
				lo, hi = 0, 1
			}
			if b.LE == math.MaxInt64 {
				return float64(s.Max)
			}
			frac := (rank - float64(cum-b.Count)) / float64(b.Count)
			v := lo + frac*(hi-lo)
			if v > float64(s.Max) && s.Max > 0 {
				v = float64(s.Max)
			}
			return v
		}
	}
	return float64(s.Max)
}

// Merge adds other's samples into s bucket-wise. Because both sides
// share the fixed log₂ layout the merge is exact: merging per-shard
// snapshots gives the same histogram one global registry would have
// recorded.
func (s *HistSnapshot) Merge(other *HistSnapshot) {
	if other == nil || other.N == 0 {
		return
	}
	s.N += other.N
	s.Sum += other.Sum
	if other.Max > s.Max {
		s.Max = other.Max
	}
	byLE := make(map[int64]int64, len(s.Buckets)+len(other.Buckets))
	for _, b := range s.Buckets {
		byLE[b.LE] += b.Count
	}
	for _, b := range other.Buckets {
		byLE[b.LE] += b.Count
	}
	merged := make([]Bucket, 0, len(byLE))
	for le, c := range byLE {
		merged = append(merged, Bucket{LE: le, Count: c})
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].LE < merged[j].LE })
	s.Buckets = merged
}

// Clone returns an independent deep copy.
func (s *HistSnapshot) Clone() *HistSnapshot {
	c := &HistSnapshot{N: s.N, Sum: s.Sum, Max: s.Max}
	c.Buckets = append([]Bucket(nil), s.Buckets...)
	return c
}

// Snapshot is a point-in-time copy of one or more registries' metrics
// plus any sampled traces collected alongside. It is plain data: safe
// to merge, marshal, and hand across goroutines.
type Snapshot struct {
	Counters   map[string]int64         `json:"counters"`
	Gauges     map[string]int64         `json:"gauges"`
	Histograms map[string]*HistSnapshot `json:"histograms"`
	Traces     []TraceRecord            `json:"traces,omitempty"`
}

// NewSnapshot returns an empty snapshot.
func NewSnapshot() *Snapshot {
	return &Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]int64),
		Histograms: make(map[string]*HistSnapshot),
	}
}

// Merge folds other into s: counters and gauges sum (note the gauge
// caveat: summing occupancy-style gauges across shards gives fleet
// totals, but ratio-style gauges such as index_frac_permille become
// sums — divide by shard count, or read the per-shard labeled series),
// histograms merge bucket-wise, traces append.
func (s *Snapshot) Merge(other *Snapshot) {
	if other == nil {
		return
	}
	for k, v := range other.Counters {
		s.Counters[k] += v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] += v
	}
	for k, h := range other.Histograms {
		if cur, ok := s.Histograms[k]; ok {
			cur.Merge(h)
		} else {
			s.Histograms[k] = h.Clone()
		}
	}
	s.Traces = append(s.Traces, other.Traces...)
}

// WriteJSON writes the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus writes the snapshot in the Prometheus text exposition
// format. Names created with Labeled keep their labels; histogram
// buckets gain the conventional `le` label (cumulative counts) plus
// _sum and _count series.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		base, labels := splitName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", base, promName(base, labels, ""), s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		base, labels := splitName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", base, promName(base, labels, ""), s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Histograms) {
		base, labels := splitName(name)
		h := s.Histograms[name]
		fmt.Fprintf(&b, "# TYPE %s histogram\n", base)
		var cum int64
		for _, bk := range h.Buckets {
			cum += bk.Count
			le := fmt.Sprintf("%d", bk.LE)
			if bk.LE == math.MaxInt64 {
				le = "+Inf"
			}
			fmt.Fprintf(&b, "%s %d\n", promName(base+"_bucket", labels, `le="`+le+`"`), cum)
		}
		if len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].LE != math.MaxInt64 {
			fmt.Fprintf(&b, "%s %d\n", promName(base+"_bucket", labels, `le="+Inf"`), h.N)
		}
		fmt.Fprintf(&b, "%s %d\n", promName(base+"_sum", labels, ""), h.Sum)
		fmt.Fprintf(&b, "%s %d\n", promName(base+"_count", labels, ""), h.N)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// promName renders name with the union of pre-existing labels (from
// Labeled) and extra (e.g. the `le` bucket label).
func promName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}
