package metrics

// Phase identifies one stage of a request's life inside an engine
// shard. The write path decomposes into queue wait (server only),
// chunking/fingerprinting, index probe (on-disk index zone I/O),
// map-table update, and disk service; reads into queue wait, index/map
// lookup and disk service.
type Phase int

const (
	// PhaseQueueWait is the time a request spent queued behind other
	// requests on its shard before service began. Only the serving
	// layer observes it; pure replay has no queue.
	PhaseQueueWait Phase = iota
	// PhaseFingerprint is chunking plus fingerprint computation.
	PhaseFingerprint
	// PhaseIndexProbe is on-disk index-zone I/O (probes and zone
	// writes) issued when the in-memory index misses.
	PhaseIndexProbe
	// PhaseMapUpdate is LBA→PBA map-table maintenance, including the
	// metadata-only updates of deduplicated (removed) writes.
	PhaseMapUpdate
	// PhaseDiskRead is data-block read service at the RAID array.
	PhaseDiskRead
	// PhaseDiskWrite is data-block write service at the RAID array.
	PhaseDiskWrite

	// NumPhases is the number of defined phases.
	NumPhases int = iota
)

var phaseNames = [NumPhases]string{
	"queue_wait",
	"fingerprint",
	"index_probe",
	"map_update",
	"disk_read",
	"disk_write",
}

// String returns the snake_case phase name used in metric names and
// trace records.
func (p Phase) String() string {
	if p < 0 || int(p) >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// PhaseSet records per-phase latencies. Each phase feeds a histogram
// registered as "phase_<name>_us", and the set additionally keeps a
// per-request scratch (`last`) so that a sampled trace can read back
// the full phase timeline of the request that just completed. Begin
// resets the scratch; Observe adds to both the histogram and the
// scratch, accumulating when one request issues several I/Os in the
// same phase.
type PhaseSet struct {
	hists [NumPhases]*Histogram
	last  [NumPhases]int64
}

func newPhaseSet(r *Registry) *PhaseSet {
	ps := &PhaseSet{}
	for i := 0; i < NumPhases; i++ {
		ps.hists[i] = r.Histogram("phase_" + phaseNames[i] + "_us")
	}
	return ps
}

// Begin marks the start of a new request, clearing the per-request
// phase scratch.
func (ps *PhaseSet) Begin() {
	ps.last = [NumPhases]int64{}
}

// Observe records us microseconds spent in phase p, both into the
// phase's histogram and into the current request's scratch. Negative
// durations clamp to zero.
func (ps *PhaseSet) Observe(p Phase, us int64) {
	if us < 0 {
		us = 0
	}
	ps.hists[p].Observe(us)
	ps.last[p] += us
}

// Hist returns the histogram backing phase p.
func (ps *PhaseSet) Hist(p Phase) *Histogram { return ps.hists[p] }

// Last reports the scratch value of phase p for the request currently
// being (or last) served.
func (ps *PhaseSet) Last(p Phase) int64 { return ps.last[p] }

// LastTimeline copies the current request's per-phase scratch into a
// map keyed by phase name, skipping zero phases. Used when a sampled
// trace record is cut; allocates, but only on the sampled path.
func (ps *PhaseSet) LastTimeline() map[string]int64 {
	m := make(map[string]int64, NumPhases)
	for i := 0; i < NumPhases; i++ {
		if ps.last[i] != 0 {
			m[phaseNames[i]] = ps.last[i]
		}
	}
	return m
}
