package metrics

// TraceRecord is one sampled request with its full phase timeline. All
// times are simulated microseconds. Phases maps phase name → total
// microseconds the request spent in that phase (zero phases omitted).
type TraceRecord struct {
	Seq      int64            `json:"seq"`
	Shard    int              `json:"shard"`
	Op       string           `json:"op"`
	LBA      uint64           `json:"lba"`
	Chunks   int              `json:"chunks"`
	Arrival  int64            `json:"arrival_us"`
	Start    int64            `json:"start_us"`
	Complete int64            `json:"complete_us"`
	Service  int64            `json:"service_us"`
	Sojourn  int64            `json:"sojourn_us"`
	Phases   map[string]int64 `json:"phases,omitempty"`
}

// TraceRing is a fixed-capacity ring of sampled trace records. When
// full, new records overwrite the oldest. Not synchronized: owned by
// one shard's worker, drained under the server's shard pause.
type TraceRing struct {
	buf   []TraceRecord
	next  int
	count int
}

// NewTraceRing returns a ring holding up to capacity records
// (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]TraceRecord, capacity)}
}

// Add appends a record, evicting the oldest when full.
func (r *TraceRing) Add(rec TraceRecord) {
	r.buf[r.next] = rec
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

// Len reports how many records the ring currently holds.
func (r *TraceRing) Len() int { return r.count }

// Drain returns the buffered records oldest-first and empties the ring.
func (r *TraceRing) Drain() []TraceRecord {
	if r.count == 0 {
		return nil
	}
	out := make([]TraceRecord, 0, r.count)
	start := r.next - r.count
	if start < 0 {
		start += len(r.buf)
	}
	for i := 0; i < r.count; i++ {
		out = append(out, r.buf[(start+i)%len(r.buf)])
	}
	r.next = 0
	r.count = 0
	return out
}
