package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("writes")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("writes") != c {
		t.Fatal("second registration returned a different counter")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("registering a histogram under a counter name did not panic")
		}
	}()
	r.Histogram("x")
}

func TestGaugeFuncReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	v := int64(1)
	r.GaugeFunc("live", func() int64 { return v })
	v = 42
	if got := r.Snapshot().Gauges["live"]; got != 42 {
		t.Fatalf("gauge func = %d, want 42", got)
	}
	// Re-registering replaces the callback: this is what keeps
	// instrumentation live after crash recovery rebuilds a substrate.
	r.GaugeFunc("live", func() int64 { return 7 })
	if got := r.Snapshot().Gauges["live"]; got != 7 {
		t.Fatalf("gauge func after re-register = %d, want 7", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	var h Histogram
	for _, v := range []int64{0, 1, 2, 3, 4, 100, -5} {
		h.Observe(v)
	}
	if h.N() != 7 {
		t.Fatalf("N = %d, want 7", h.N())
	}
	if h.Sum() != 110 {
		t.Fatalf("Sum = %d, want 110", h.Sum())
	}
	if h.Max() != 100 {
		t.Fatalf("Max = %d, want 100", h.Max())
	}
	// 0 and the clamped -5 land in bucket 0; 1 in bucket 1; 2,3 in
	// bucket 2; 4 in bucket 3; 100 in bucket 7.
	want := map[int]int64{0: 2, 1: 1, 2: 2, 3: 1, 7: 1}
	for i, c := range h.buckets {
		if c != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d", i, c, want[i])
		}
	}
}

func TestHistogramSnapshotPercentile(t *testing.T) {
	var h Histogram
	for i := int64(1); i <= 1000; i++ {
		h.Observe(i)
	}
	s := snapHistogram(&h)
	for _, tc := range []struct{ p, lo, hi float64 }{
		{50, 250, 1000},
		{99, 512, 1000},
		{100, 512, 1000},
	} {
		got := s.Percentile(tc.p)
		if got < tc.lo || got > tc.hi {
			t.Errorf("p%.0f = %.1f, want within [%.0f, %.0f]", tc.p, got, tc.lo, tc.hi)
		}
	}
	if s.Percentile(100) > float64(h.Max()) {
		t.Errorf("p100 %.1f exceeds max %d", s.Percentile(100), h.Max())
	}
}

// Merging per-shard snapshots must be exact: the merged histogram is
// bucket-for-bucket identical to one histogram that saw every sample.
// This is the property the server's cross-shard aggregation relies on.
func TestHistSnapshotMergeMatchesGlobal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var global Histogram
	shards := make([]*Histogram, 4)
	for i := range shards {
		shards[i] = &Histogram{}
	}
	for i := 0; i < 10000; i++ {
		v := rng.Int63n(1 << uint(rng.Intn(40)))
		global.Observe(v)
		shards[rng.Intn(len(shards))].Observe(v)
	}
	merged := &HistSnapshot{}
	for _, sh := range shards {
		merged.Merge(snapHistogram(sh))
	}
	want := snapHistogram(&global)
	if merged.N != want.N || merged.Sum != want.Sum || merged.Max != want.Max {
		t.Fatalf("merged N/Sum/Max = %d/%d/%d, want %d/%d/%d",
			merged.N, merged.Sum, merged.Max, want.N, want.Sum, want.Max)
	}
	if len(merged.Buckets) != len(want.Buckets) {
		t.Fatalf("merged has %d buckets, want %d", len(merged.Buckets), len(want.Buckets))
	}
	for i := range want.Buckets {
		if merged.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: merged %+v, want %+v", i, merged.Buckets[i], want.Buckets[i])
		}
	}
}

func TestHistSnapshotMergeEmptyAndNil(t *testing.T) {
	var h Histogram
	h.Observe(10)
	s := snapHistogram(&h)
	before := *s
	s.Merge(nil)
	s.Merge(&HistSnapshot{})
	if s.N != before.N || s.Sum != before.Sum || len(s.Buckets) != len(before.Buckets) {
		t.Fatal("merging nil/empty snapshots changed the receiver")
	}
}

func TestSnapshotMergeClonesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h").Observe(5)
	a := r.Snapshot()
	dst := NewSnapshot()
	dst.Merge(a)
	dst.Histograms["h"].Merge(a.Histograms["h"])
	if a.Histograms["h"].N != 1 {
		t.Fatal("merging into the destination mutated the source snapshot")
	}
}

func TestPhaseSetTimeline(t *testing.T) {
	r := NewRegistry()
	ps := r.Phases()
	if r.Phases() != ps {
		t.Fatal("Phases() is not idempotent")
	}
	ps.Begin()
	ps.Observe(PhaseFingerprint, 30)
	ps.Observe(PhaseDiskWrite, 100)
	ps.Observe(PhaseDiskWrite, 50) // second I/O in the same phase accumulates
	if got := ps.Last(PhaseDiskWrite); got != 150 {
		t.Fatalf("Last(disk_write) = %d, want 150", got)
	}
	tl := ps.LastTimeline()
	if tl["fingerprint"] != 30 || tl["disk_write"] != 150 {
		t.Fatalf("timeline = %v", tl)
	}
	if _, ok := tl["queue_wait"]; ok {
		t.Fatal("zero phase leaked into the timeline")
	}
	ps.Begin()
	if got := ps.Last(PhaseDiskWrite); got != 0 {
		t.Fatalf("Begin did not clear scratch: %d", got)
	}
	// Histograms persist across Begin.
	if n := ps.Hist(PhaseDiskWrite).N(); n != 2 {
		t.Fatalf("disk_write histogram N = %d, want 2", n)
	}
	snap := r.Snapshot()
	if snap.Histograms["phase_disk_write_us"].N != 2 {
		t.Fatal("phase histogram missing from snapshot")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(9)
	r.Gauge("g").Set(3)
	r.Histogram("h").Observe(100)
	live := int64(11)
	r.GaugeFunc("f", func() int64 { return live })
	r.Reset()
	s := r.Snapshot()
	if s.Counters["c"] != 0 || s.Gauges["g"] != 0 || s.Histograms["h"].N != 0 {
		t.Fatalf("reset left residue: %+v", s)
	}
	if s.Gauges["f"] != 11 {
		t.Fatal("reset dropped the gauge callback")
	}
}

func TestTraceRing(t *testing.T) {
	ring := NewTraceRing(3)
	for i := int64(0); i < 5; i++ {
		ring.Add(TraceRecord{Seq: i})
	}
	if ring.Len() != 3 {
		t.Fatalf("Len = %d, want 3", ring.Len())
	}
	got := ring.Drain()
	if len(got) != 3 || got[0].Seq != 2 || got[2].Seq != 4 {
		t.Fatalf("drain = %+v, want seqs 2,3,4", got)
	}
	if ring.Len() != 0 || ring.Drain() != nil {
		t.Fatal("drain did not empty the ring")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs").Add(2)
	r.Histogram("lat_us").Observe(300)
	s := r.Snapshot()
	s.Traces = []TraceRecord{{Seq: 1, Op: "W", Phases: map[string]int64{"disk_write": 120}}}
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["reqs"] != 2 || back.Histograms["lat_us"].N != 1 || len(back.Traces) != 1 {
		t.Fatalf("round trip lost data: %+v", back)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("server_shed_total").Add(3)
	r.Gauge(Labeled("server_queue_depth", "shard", "0")).Set(4)
	h := r.Histogram(Labeled("server_queue_wait_us", "shard", "0"))
	h.Observe(1)
	h.Observe(500)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE server_shed_total counter\nserver_shed_total 3\n",
		`server_queue_depth{shard="0"} 4`,
		`server_queue_wait_us_bucket{shard="0",le="1"} 1`,
		`server_queue_wait_us_bucket{shard="0",le="+Inf"} 2`,
		`server_queue_wait_us_sum{shard="0"} 501`,
		`server_queue_wait_us_count{shard="0"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q; got:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing and end at N.
	if strings.Count(out, "server_queue_wait_us_bucket") < 2 {
		t.Error("expected at least two bucket lines")
	}
}

func TestLabeled(t *testing.T) {
	if got := Labeled("m", "shard", "3"); got != `m{shard="3"}` {
		t.Fatalf("Labeled = %q", got)
	}
	base, labels := splitName(`m{shard="3"}`)
	if base != "m" || labels != `shard="3"` {
		t.Fatalf("splitName = %q, %q", base, labels)
	}
	base, labels = splitName("plain")
	if base != "plain" || labels != "" {
		t.Fatalf("splitName(plain) = %q, %q", base, labels)
	}
}

func TestBucketUpperSaturates(t *testing.T) {
	if bucketUpper(63) != math.MaxInt64 || bucketUpper(70) != math.MaxInt64 {
		t.Fatal("overflow bucket upper bound must saturate")
	}
	if bucketUpper(0) != 1 || bucketUpper(10) != 1024 {
		t.Fatal("bucket upper bounds wrong")
	}
}

// The hot path must not allocate: observing counters, gauges,
// histograms and phases goes through pre-resolved handles only.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	ps := r.Phases()
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Set(9)
		h.Observe(123)
		ps.Begin()
		ps.Observe(PhaseDiskWrite, 77)
	})
	if allocs != 0 {
		t.Fatalf("hot path allocates %.1f per op, want 0", allocs)
	}
}
