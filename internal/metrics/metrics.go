// Package metrics is the observability layer of this repository: a
// small, zero-allocation-on-hot-path metrics registry that the storage
// substrates (engine, icache, index, maptable, raid) and the serving
// layer publish into, plus sampled structured request traces.
//
// Design rules:
//
//   - Handles (Counter, Gauge, Histogram) are resolved by name once, at
//     construction/instrumentation time; the hot path then performs
//     plain integer arithmetic on pre-allocated state. No map lookups,
//     no interface boxing, no allocation per observation.
//   - A Registry is single-writer: it belongs to one engine (one shard)
//     and is mutated only by that engine's serving goroutine. Readers
//     (snapshots) must synchronize externally — the sharded server
//     pauses a shard before snapshotting it, and the replay harness
//     snapshots after the replay completes.
//   - Cross-shard aggregation happens on immutable Snapshots: merging
//     sums counters and gauges and adds histograms bucket-wise.
//     Per-shard views stay available through shard-labeled metric names
//     (see Labeled).
//   - All durations are simulated microseconds, matching the rest of
//     the repository; histograms are fixed-size log₂-bucketed so they
//     merge exactly and never allocate after creation.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
)

// Counter is a monotonically increasing tally. Not synchronized: owned
// by the registry's single writer.
type Counter struct {
	name string
	v    int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (negative deltas are a bug; they are added as-is so tests
// catch them in snapshots rather than silently clamping).
func (c *Counter) Add(n int64) { c.v += n }

// Value reports the current tally.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous value set by its owner.
type Gauge struct {
	name string
	v    int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v = v }

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v }

// HistBuckets is the fixed bucket count of every histogram: bucket i
// covers [2^(i-1), 2^i) microseconds (bucket 0 holds only zero), the
// same log₂ layout as the response-time histograms in internal/stats,
// so the two views of one replay always agree.
const HistBuckets = 64

// Histogram is a fixed-bucket log₂-scale histogram over non-negative
// integer samples (simulated microseconds). Observing never allocates.
type Histogram struct {
	name    string
	buckets [HistBuckets]int64
	n       int64
	sum     int64
	max     int64
}

func histBucketOf(v int64) int {
	if v < 1 {
		return 0
	}
	b := 64 - bits.LeadingZeros64(uint64(v))
	if b > HistBuckets-1 {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one sample; negative samples clamp to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[histBucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// N reports the number of samples.
func (h *Histogram) N() int64 { return h.n }

// Sum reports the sample total.
func (h *Histogram) Sum() int64 { return h.sum }

// Max reports the largest sample.
func (h *Histogram) Max() int64 { return h.max }

// Mean reports the arithmetic mean, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// gaugeFunc is a callback gauge, evaluated at snapshot time. It costs
// nothing on the hot path, which makes it the right shape for values a
// substrate already tracks (cache occupancy, journal tail, hit totals).
type gaugeFunc struct {
	name string
	fn   func() int64
}

// Registry holds the named metrics of one engine shard (or one
// process-level component). The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	gaugeFuncs map[string]*gaugeFunc
	hists      map[string]*Histogram
	phases     *PhaseSet
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		gaugeFuncs: make(map[string]*gaugeFunc),
		hists:      make(map[string]*Histogram),
	}
}

func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("metrics: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge", name))
	}
	if _, ok := r.gaugeFuncs[name]; ok && kind != "gaugefunc" {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge func", name))
	}
	if _, ok := r.hists[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram", name))
	}
}

// Counter returns the counter registered under name, creating it on
// first use. Registering a name under two different kinds panics.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	r.checkFree(name, "counter")
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	r.checkFree(name, "gauge")
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers fn to be evaluated at snapshot time under name.
// Re-registering the same name replaces the callback — substrates that
// are rebuilt (crash recovery replaces the map table and caches)
// re-instrument so the callbacks follow the live object.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gaugeFuncs[name]; ok {
		g.fn = fn
		return
	}
	r.checkFree(name, "gaugefunc")
	r.gaugeFuncs[name] = &gaugeFunc{name: name, fn: fn}
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	r.checkFree(name, "histogram")
	h := &Histogram{name: name}
	r.hists[name] = h
	return h
}

// Phases returns the registry's per-phase latency recorder, creating it
// (and its backing histograms) on first use.
func (r *Registry) Phases() *PhaseSet {
	r.mu.Lock()
	ps := r.phases
	r.mu.Unlock()
	if ps != nil {
		return ps
	}
	ps = newPhaseSet(r)
	r.mu.Lock()
	if r.phases == nil {
		r.phases = ps
	}
	ps = r.phases
	r.mu.Unlock()
	return ps
}

// Reset zeroes every counter, gauge and histogram in place (gauge
// callbacks are left registered — they always report live state). The
// replay harness calls it at the end of the warm-up window, mirroring
// engine.Stats.Reset.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		g.v = 0
	}
	for _, h := range r.hists {
		name := h.name
		*h = Histogram{name: name}
	}
	if r.phases != nil {
		r.phases.last = [NumPhases]int64{}
	}
}

// Snapshot captures every metric as plain data, evaluating gauge
// callbacks. The caller must ensure the registry's writer is paused.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := NewSnapshot()
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, g := range r.gaugeFuncs {
		s.Gauges[name] = g.fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = snapHistogram(h)
	}
	return s
}

// Labeled composes a metric name with Prometheus-style labels:
// Labeled("server_queue_wait_us", "shard", "3") is
// `server_queue_wait_us{shard="3"}`. The registry treats the result as
// an opaque name; the Prometheus dump re-parses it so bucket labels
// merge correctly.
func Labeled(name string, kv ...string) string {
	if len(kv) == 0 || len(kv)%2 != 0 {
		panic("metrics: Labeled needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// splitName separates a possibly-labeled metric name into its base name
// and the label body (without braces, "" when unlabeled).
func splitName(name string) (base, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// bucketUpper reports the exclusive upper bound of log₂ bucket i,
// saturating at MaxInt64 for the last bucket.
func bucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << uint(i)
}

// sortedKeys returns map keys in lexical order, for deterministic text
// output.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
