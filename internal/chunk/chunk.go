// Package chunk defines the data-chunk and fingerprint model used by
// every deduplication engine in this repository.
//
// POD performs subfile deduplication at a fixed chunk granularity
// (4 KB in the paper). A write request is split into chunks; each chunk
// is fingerprinted; fingerprint equality is the dedup criterion.
//
// Two fingerprinting modes are provided:
//
//   - SHA1Fingerprinter hashes real payload bytes — used by correctness
//     tests, which materialize deterministic payloads per content ID and
//     verify read-your-writes through the physical store.
//   - SyntheticFingerprinter derives the fingerprint from the chunk's
//     content ID directly — used by large trace replays where hashing
//     millions of 4 KB buffers would dominate run time without changing
//     any dedup decision (two chunks share a fingerprint iff they share
//     a content ID in both modes).
package chunk

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// Size is the deduplication chunk size in bytes (the paper uses 4 KB).
const Size = 4096

// ContentID identifies the logical content of one chunk. The synthetic
// trace generator draws ContentIDs from popularity distributions; two
// chunks with equal ContentID have byte-identical payloads.
type ContentID uint64

// Fingerprint is a 20-byte content hash (SHA-1 sized, as in most
// deduplication literature including the POD paper's 20-byte entries).
type Fingerprint [20]byte

// String renders the first 8 bytes in hex, enough for debugging.
func (f Fingerprint) String() string { return fmt.Sprintf("%x", f[:8]) }

// Chunk is one fixed-size unit of write data flowing down the I/O path.
type Chunk struct {
	Content ContentID   // logical content identity
	FP      Fingerprint // computed fingerprint
	Data    []byte      // payload; nil in synthetic (ID-only) replays
}

// Payload deterministically materializes the canonical Size-byte
// payload for a content ID. The construction is a simple xorshift64*
// stream seeded by the ID, so equal IDs yield equal bytes and distinct
// IDs yield distinct bytes with overwhelming probability.
func Payload(id ContentID) []byte {
	buf := make([]byte, Size)
	FillPayload(id, buf)
	return buf
}

// FillPayload writes the canonical payload for id into buf, which must
// be exactly Size bytes long.
func FillPayload(id ContentID, buf []byte) {
	if len(buf) != Size {
		panic("chunk: FillPayload buffer must be chunk.Size bytes")
	}
	x := uint64(id)*2685821657736338717 + 1442695040888963407
	for off := 0; off < Size; off += 8 {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		binary.LittleEndian.PutUint64(buf[off:], x*2685821657736338717)
	}
}

// Fingerprinter computes a chunk's fingerprint. Implementations must be
// safe for concurrent use.
type Fingerprinter interface {
	// Fingerprint computes the fingerprint of c. Implementations may
	// use c.Data (content hashing) or c.Content (synthetic mode).
	Fingerprint(c *Chunk) Fingerprint
}

// SHA1Fingerprinter hashes the chunk payload with SHA-1. If the chunk
// carries no payload it materializes the canonical payload for the
// content ID first, so both trace modes produce identical fingerprints.
type SHA1Fingerprinter struct{}

// Fingerprint implements Fingerprinter.
func (SHA1Fingerprinter) Fingerprint(c *Chunk) Fingerprint {
	data := c.Data
	if data == nil {
		data = Payload(c.Content)
	}
	return Fingerprint(sha1.Sum(data))
}

// SyntheticFingerprinter derives a fingerprint from the content ID with
// a cheap mixing function. Used for large ID-only replays.
type SyntheticFingerprinter struct{}

// Fingerprint implements Fingerprinter.
func (SyntheticFingerprinter) Fingerprint(c *Chunk) Fingerprint {
	var f Fingerprint
	x := uint64(c.Content)
	for i := 0; i < 20; i += 8 {
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		x ^= x >> 33
		x *= 0xc4ceb9fe1a85ec53
		x ^= x >> 33
		n := 8
		if i+8 > 20 {
			n = 20 - i
		}
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], x)
		copy(f[i:i+n], tmp[:n])
		x += 0x9e3779b97f4a7c15
	}
	return f
}

// Split breaks a request's content IDs into chunks and fingerprints
// each with fp. Payloads are materialized only when materialize is set.
// It allocates a fresh slice per call; hot paths should hold a scratch
// buffer and use SplitInto instead.
func Split(ids []ContentID, fp Fingerprinter, materialize bool) []Chunk {
	return SplitInto(nil, ids, fp, materialize)
}

// SplitInto is Split reusing dst's backing array when it has the
// capacity, so a replay loop allocates its chunk buffer once instead of
// once per write request. Every field of every returned chunk is
// (re)initialized — stale fingerprints or payloads from a previous use
// of dst never leak through. A nil fp skips fingerprinting (the caller
// will run a HashEngine over the chunks, which also charges the modeled
// latency).
func SplitInto(dst []Chunk, ids []ContentID, fp Fingerprinter, materialize bool) []Chunk {
	if cap(dst) < len(ids) {
		dst = make([]Chunk, len(ids))
	} else {
		dst = dst[:len(ids)]
	}
	for i, id := range ids {
		dst[i] = Chunk{Content: id}
		if materialize {
			dst[i].Data = Payload(id)
		}
		if fp != nil {
			dst[i].FP = fp.Fingerprint(&dst[i])
		}
	}
	return dst
}
