package chunk

import "testing"

// TestSplitFingerprintHotPathAllocFree guards the per-write chunking
// path: splitting a request into a reused scratch slice and
// fingerprinting it must not allocate, so an alloc regression here
// fails go test instead of only drifting BENCH_replay.json.
func TestSplitFingerprintHotPathAllocFree(t *testing.T) {
	ids := make([]ContentID, 8)
	for i := range ids {
		ids[i] = ContentID(i*131 + 7)
	}
	e := NewHashEngine(SyntheticFingerprinter{}, 1)
	scratch := make([]Chunk, 0, len(ids))
	avg := testing.AllocsPerRun(200, func() {
		scratch = SplitInto(scratch[:0], ids, nil, false)
		e.FingerprintAll(scratch)
	})
	if avg != 0 {
		t.Fatalf("SplitInto+FingerprintAll: %.2f allocs/op, want 0", avg)
	}
}
