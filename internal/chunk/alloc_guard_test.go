// Alloc guards for the per-write hot paths. External test package so
// the CDC splitter (which imports chunk) can be covered here too.
package chunk_test

import (
	"testing"

	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/chunk"
)

// TestSplitFingerprintHotPathAllocFree guards the per-write chunking
// path: splitting a request into a reused scratch slice and
// fingerprinting it must not allocate, so an alloc regression here
// fails go test instead of only drifting BENCH_replay.json.
func TestSplitFingerprintHotPathAllocFree(t *testing.T) {
	ids := make([]chunk.ContentID, 8)
	for i := range ids {
		ids[i] = chunk.ContentID(i*131 + 7)
	}
	e := chunk.NewHashEngine(chunk.SyntheticFingerprinter{}, 1)
	scratch := make([]chunk.Chunk, 0, len(ids))
	avg := testing.AllocsPerRun(200, func() {
		scratch = chunk.SplitInto(scratch[:0], ids, nil, false)
		e.FingerprintAll(scratch)
	})
	if avg != 0 {
		t.Fatalf("SplitInto+FingerprintAll: %.2f allocs/op, want 0", avg)
	}
}

// TestCDCSplitHotPathAllocFree guards the content-defined sibling of
// the same path: once the splitter's scratch (materialize buffer,
// landmark bitmap, cut list) has grown to its high-water mark, a
// steady-state Split — materialization, sweep, cuts, content hash,
// fingerprint — must not allocate either, on both the stream and the
// plain request shape.
func TestCDCSplitHotPathAllocFree(t *testing.T) {
	for _, algo := range []cdc.Algo{cdc.Gear, cdc.SeqCDC} {
		s := cdc.NewSplitter(cdc.Params{Algo: algo})
		stream := make([]chunk.ContentID, 32)
		for i := range stream {
			stream[i] = cdc.EncodeEdit(2, 3, uint32(40+i))
		}
		plain := make([]chunk.ContentID, 32)
		for i := range plain {
			plain[i] = chunk.ContentID(i*977 + 5)
		}
		dst := make([]chunk.Chunk, 0, s.Params().MaxChunksPerSlots(len(stream)))
		dst, _ = s.Split(dst[:0], stream)
		dst, _ = s.Split(dst[:0], plain)
		for name, ids := range map[string][]chunk.ContentID{"stream": stream, "plain": plain} {
			ids := ids
			if avg := testing.AllocsPerRun(100, func() {
				dst, _ = s.Split(dst[:0], ids)
			}); avg != 0 {
				t.Fatalf("%v %s split: %.2f allocs/op, want 0", algo, name, avg)
			}
		}
	}
}
