package chunk

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPayloadDeterministic(t *testing.T) {
	a := Payload(42)
	b := Payload(42)
	if !bytes.Equal(a, b) {
		t.Fatal("equal content IDs must produce equal payloads")
	}
	if len(a) != Size {
		t.Fatalf("payload size = %d, want %d", len(a), Size)
	}
}

func TestPayloadDistinct(t *testing.T) {
	if bytes.Equal(Payload(1), Payload(2)) {
		t.Fatal("distinct content IDs produced equal payloads")
	}
}

func TestFillPayloadBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong buffer size")
		}
	}()
	FillPayload(1, make([]byte, 10))
}

func TestSHA1MatchesMaterialized(t *testing.T) {
	var fp SHA1Fingerprinter
	withData := Chunk{Content: 7, Data: Payload(7)}
	withoutData := Chunk{Content: 7}
	if fp.Fingerprint(&withData) != fp.Fingerprint(&withoutData) {
		t.Fatal("SHA1 fingerprint must not depend on payload materialization")
	}
}

func TestSHA1DistinctContent(t *testing.T) {
	var fp SHA1Fingerprinter
	a := Chunk{Content: 1}
	b := Chunk{Content: 2}
	if fp.Fingerprint(&a) == fp.Fingerprint(&b) {
		t.Fatal("distinct contents must hash differently")
	}
}

func TestSyntheticConsistent(t *testing.T) {
	var fp SyntheticFingerprinter
	a := Chunk{Content: 99}
	b := Chunk{Content: 99}
	if fp.Fingerprint(&a) != fp.Fingerprint(&b) {
		t.Fatal("synthetic fingerprints must be deterministic")
	}
	c := Chunk{Content: 100}
	if fp.Fingerprint(&a) == fp.Fingerprint(&c) {
		t.Fatal("distinct IDs must fingerprint differently")
	}
}

// The dedup-decision equivalence that justifies using synthetic
// fingerprints for large replays: fp(a)==fp(b) iff content(a)==content(b)
// in BOTH modes.
func TestModeEquivalenceProperty(t *testing.T) {
	var sha SHA1Fingerprinter
	var syn SyntheticFingerprinter
	f := func(a, b uint32) bool {
		ca, cb := Chunk{Content: ContentID(a)}, Chunk{Content: ContentID(b)}
		shaEq := sha.Fingerprint(&ca) == sha.Fingerprint(&cb)
		synEq := syn.Fingerprint(&ca) == syn.Fingerprint(&cb)
		contentEq := a == b
		return shaEq == contentEq && synEq == contentEq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSplit(t *testing.T) {
	ids := []ContentID{1, 2, 1}
	chunks := Split(ids, SyntheticFingerprinter{}, false)
	if len(chunks) != 3 {
		t.Fatalf("len = %d", len(chunks))
	}
	if chunks[0].FP != chunks[2].FP {
		t.Error("same content must share fingerprint")
	}
	if chunks[0].FP == chunks[1].FP {
		t.Error("different content must not share fingerprint")
	}
	if chunks[0].Data != nil {
		t.Error("non-materialized split must not allocate payloads")
	}
	mat := Split(ids, SHA1Fingerprinter{}, true)
	if mat[0].Data == nil || len(mat[0].Data) != Size {
		t.Error("materialized split must carry payloads")
	}
}

func TestSplitIntoReusesAndReinitializes(t *testing.T) {
	ids := []ContentID{1, 2, 3, 4}
	buf := SplitInto(nil, ids, SHA1Fingerprinter{}, true)
	if len(buf) != 4 || buf[0].Data == nil {
		t.Fatal("first SplitInto must behave like Split")
	}
	stale := buf[0].FP

	// reuse with fewer ids, no fp, no payloads: nothing stale survives
	again := SplitInto(buf, []ContentID{9, 10}, nil, false)
	if &again[0] != &buf[0] {
		t.Fatal("SplitInto must reuse dst's backing array when capacity allows")
	}
	if len(again) != 2 {
		t.Fatalf("len = %d, want 2", len(again))
	}
	for i, c := range again {
		if c.Data != nil {
			t.Fatalf("chunk %d: stale payload leaked through reuse", i)
		}
		if c.FP == stale || c.FP != (Fingerprint{}) {
			t.Fatalf("chunk %d: stale fingerprint leaked through reuse", i)
		}
	}
	if again[0].Content != 9 || again[1].Content != 10 {
		t.Fatal("content IDs not rewritten")
	}

	// growth beyond capacity allocates fresh
	grown := SplitInto(again, make([]ContentID, 100), nil, false)
	if len(grown) != 100 {
		t.Fatalf("len = %d, want 100", len(grown))
	}
}

func TestHashEngineSerialAndParallelAgree(t *testing.T) {
	ids := make([]ContentID, 64)
	for i := range ids {
		ids[i] = ContentID(i % 16)
	}
	serial := Split(ids, SHA1Fingerprinter{}, true)
	par := Split(ids, SyntheticFingerprinter{}, true) // placeholder fps, recomputed below

	e1 := NewHashEngine(SHA1Fingerprinter{}, 1)
	e8 := NewHashEngine(SHA1Fingerprinter{}, 8)
	cost1 := e1.FingerprintAll(serial)
	cost8 := e8.FingerprintAll(par)
	if cost1 != cost8 {
		t.Errorf("modeled cost must be independent of parallelism: %d vs %d", cost1, cost8)
	}
	if cost1 != int64(len(ids))*DefaultChunkTimeUS {
		t.Errorf("cost = %d, want %d", cost1, int64(len(ids))*DefaultChunkTimeUS)
	}
	for i := range serial {
		if serial[i].FP != par[i].FP {
			t.Fatalf("chunk %d: serial and parallel fingerprints differ", i)
		}
	}
}

func TestHashEngineEmpty(t *testing.T) {
	e := NewHashEngine(SHA1Fingerprinter{}, 4)
	if cost := e.FingerprintAll(nil); cost != 0 {
		t.Errorf("empty batch cost = %d, want 0", cost)
	}
}

func TestFingerprintString(t *testing.T) {
	var f Fingerprint
	f[0] = 0xab
	if got := f.String(); got != "ab00000000000000" {
		t.Errorf("String() = %q", got)
	}
}

// BenchmarkSplit contrasts the allocating Split with scratch-buffer
// SplitInto — the hot replay path uses the latter and must stay at
// zero allocations per request.
func BenchmarkSplit(b *testing.B) {
	ids := make([]ContentID, 64)
	for i := range ids {
		ids[i] = ContentID(i)
	}
	b.Run("Alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = Split(ids, nil, false)
		}
	})
	b.Run("Into", func(b *testing.B) {
		var scratch []Chunk
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scratch = SplitInto(scratch, ids, nil, false)
		}
	})
}

func BenchmarkSHA1Fingerprint(b *testing.B) {
	var fp SHA1Fingerprinter
	c := Chunk{Content: 1, Data: Payload(1)}
	b.SetBytes(Size)
	for i := 0; i < b.N; i++ {
		fp.Fingerprint(&c)
	}
}

func BenchmarkSyntheticFingerprint(b *testing.B) {
	var fp SyntheticFingerprinter
	c := Chunk{Content: 1}
	for i := 0; i < b.N; i++ {
		fp.Fingerprint(&c)
	}
}

func BenchmarkHashEngineParallel(b *testing.B) {
	ids := make([]ContentID, 1024)
	for i := range ids {
		ids[i] = ContentID(i)
	}
	chunks := Split(ids, SyntheticFingerprinter{}, true)
	e := NewHashEngine(SHA1Fingerprinter{}, 0)
	b.SetBytes(int64(len(ids)) * Size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FingerprintAll(chunks)
	}
}
