package chunk

import (
	"runtime"
	"sync"
)

// HashEngine fingerprints batches of chunks, optionally in parallel —
// the software analogue of the "dedicated embedded processor or host
// processor" hash engine in the POD architecture (§III-B). It also
// reports the modeled per-chunk latency that the simulator charges on
// the write path (32 µs per 4 KB chunk in the paper's evaluation).
//
// Parallel batches run on a process-wide persistent worker pool rather
// than goroutines spawned per call: a replay issues one FingerprintAll
// per write request, and at trace scale the per-call spawn cost (stack
// allocation plus scheduling) exceeded the hashing itself for synthetic
// fingerprints.
type HashEngine struct {
	fp          Fingerprinter
	workers     int
	ChunkTimeUS int64 // modeled fingerprint latency per chunk, µs
}

// DefaultChunkTimeUS is the paper's modeled fingerprint-computation
// delay for one 4 KB chunk (an overestimate for modern controllers,
// per §IV-A).
const DefaultChunkTimeUS = 32

// NewHashEngine returns an engine using fp with the given parallelism;
// workers ≤ 0 selects GOMAXPROCS.
func NewHashEngine(fp Fingerprinter, workers int) *HashEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &HashEngine{fp: fp, workers: workers, ChunkTimeUS: DefaultChunkTimeUS}
}

// hashTask is one contiguous segment of a batch, dispatched to the
// shared pool. Segments of one batch are disjoint, so workers write
// fingerprints (or payload bytes) without synchronization; wg signals
// batch completion. Two kinds share the pool: fingerprinting (part is
// set) and payload materialization (ids/dst are set) — the CDC
// splitter's byte expansion rides the same persistent workers as the
// fingerprint engine instead of spawning goroutines per request.
type hashTask struct {
	fp   Fingerprinter
	part []Chunk
	ids  []ContentID // materialize kind: fill dst with canonical payloads
	dst  []byte      // len(ids)*Size bytes, parallel to ids
	wg   *sync.WaitGroup
}

var (
	hashPoolOnce  sync.Once
	hashPoolTasks chan hashTask
)

// hashPool lazily starts the process-wide worker pool, sized to the
// machine. Workers live for the life of the process and are shared by
// every HashEngine, so constructing engines per replay job leaks
// nothing.
func hashPool() chan hashTask {
	hashPoolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0)
		hashPoolTasks = make(chan hashTask, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range hashPoolTasks {
					if t.ids != nil {
						for i, id := range t.ids {
							FillPayload(id, t.dst[i*Size:(i+1)*Size])
						}
					} else {
						for i := range t.part {
							t.part[i].FP = t.fp.Fingerprint(&t.part[i])
						}
					}
					t.wg.Done()
				}
			}()
		}
	})
	return hashPoolTasks
}

// FingerprintAll computes fingerprints for every chunk in place and
// returns the modeled virtual-time cost of doing so serially on the
// write path (the simulator charges latency per chunk even though the
// real hashing here may run in parallel for wall-clock throughput).
func (e *HashEngine) FingerprintAll(chunks []Chunk) int64 {
	if len(chunks) == 0 {
		return 0
	}
	if e.workers == 1 || len(chunks) < 4 {
		for i := range chunks {
			chunks[i].FP = e.fp.Fingerprint(&chunks[i])
		}
		return int64(len(chunks)) * e.ChunkTimeUS
	}
	pool := hashPool()
	var wg sync.WaitGroup
	stride := (len(chunks) + e.workers - 1) / e.workers
	for lo := 0; lo < len(chunks); lo += stride {
		hi := lo + stride
		if hi > len(chunks) {
			hi = len(chunks)
		}
		wg.Add(1)
		pool <- hashTask{fp: e.fp, part: chunks[lo:hi], wg: &wg}
	}
	wg.Wait()
	return int64(len(chunks)) * e.ChunkTimeUS
}

// Materializer fills batches of canonical ID payloads, using the
// persistent worker pool for large batches. The WaitGroup is owned and
// reused across calls, so steady-state batches allocate nothing. Not
// safe for concurrent use — each owner (an engine's CDC splitter)
// holds its own.
type Materializer struct {
	wg sync.WaitGroup
}

// materializeParallelMin is the batch size below which the pool
// dispatch overhead exceeds the fill itself.
const materializeParallelMin = 8

// FillAll writes the canonical payload of ids[i] into
// dst[i*Size : (i+1)*Size]; len(dst) must be exactly len(ids)*Size.
func (m *Materializer) FillAll(dst []byte, ids []ContentID) {
	if len(dst) != len(ids)*Size {
		panic("chunk: FillAll dst/ids length mismatch")
	}
	workers := runtime.GOMAXPROCS(0)
	if workers == 1 || len(ids) < materializeParallelMin {
		for i, id := range ids {
			FillPayload(id, dst[i*Size:(i+1)*Size])
		}
		return
	}
	pool := hashPool()
	stride := (len(ids) + workers - 1) / workers
	for lo := 0; lo < len(ids); lo += stride {
		hi := lo + stride
		if hi > len(ids) {
			hi = len(ids)
		}
		m.wg.Add(1)
		pool <- hashTask{ids: ids[lo:hi], dst: dst[lo*Size : hi*Size], wg: &m.wg}
	}
	m.wg.Wait()
}
