package chunk

import (
	"runtime"
	"sync"
)

// HashEngine fingerprints batches of chunks, optionally in parallel —
// the software analogue of the "dedicated embedded processor or host
// processor" hash engine in the POD architecture (§III-B). It also
// reports the modeled per-chunk latency that the simulator charges on
// the write path (32 µs per 4 KB chunk in the paper's evaluation).
type HashEngine struct {
	fp          Fingerprinter
	workers     int
	ChunkTimeUS int64 // modeled fingerprint latency per chunk, µs
}

// DefaultChunkTimeUS is the paper's modeled fingerprint-computation
// delay for one 4 KB chunk (an overestimate for modern controllers,
// per §IV-A).
const DefaultChunkTimeUS = 32

// NewHashEngine returns an engine using fp with the given parallelism;
// workers ≤ 0 selects GOMAXPROCS.
func NewHashEngine(fp Fingerprinter, workers int) *HashEngine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &HashEngine{fp: fp, workers: workers, ChunkTimeUS: DefaultChunkTimeUS}
}

// FingerprintAll computes fingerprints for every chunk in place and
// returns the modeled virtual-time cost of doing so serially on the
// write path (the simulator charges latency per chunk even though the
// real hashing here may run in parallel for wall-clock throughput).
func (e *HashEngine) FingerprintAll(chunks []Chunk) int64 {
	if len(chunks) == 0 {
		return 0
	}
	if e.workers == 1 || len(chunks) < 4 {
		for i := range chunks {
			chunks[i].FP = e.fp.Fingerprint(&chunks[i])
		}
		return int64(len(chunks)) * e.ChunkTimeUS
	}
	var wg sync.WaitGroup
	stride := (len(chunks) + e.workers - 1) / e.workers
	for w := 0; w < e.workers; w++ {
		lo := w * stride
		if lo >= len(chunks) {
			break
		}
		hi := lo + stride
		if hi > len(chunks) {
			hi = len(chunks)
		}
		wg.Add(1)
		go func(part []Chunk) {
			defer wg.Done()
			for i := range part {
				part[i].FP = e.fp.Fingerprint(&part[i])
			}
		}(chunks[lo:hi])
	}
	wg.Wait()
	return int64(len(chunks)) * e.ChunkTimeUS
}
