// Package perf measures the replay harness itself: wall-clock time,
// heap allocation, and peak RSS per experiment, written as a JSON
// trajectory so successive optimization PRs can be compared number to
// number instead of anecdote to anecdote.
//
// The measurements describe the simulator's own performance (how fast
// the experiments regenerate), not the simulated storage system — the
// virtual-time results must stay byte-identical while these numbers
// improve.
package perf

import (
	"bytes"
	"encoding/json"
	"os"
	"runtime"
	"strconv"
	"time"
)

// Entry is the cost of one measured span (typically one experiment).
type Entry struct {
	Name       string  `json:"name"`
	WallMS     float64 `json:"wall_ms"`
	Allocs     uint64  `json:"allocs"`      // heap objects allocated during the span
	AllocBytes uint64  `json:"alloc_bytes"` // bytes allocated during the span
	PeakRSSKB  uint64  `json:"peak_rss_kb"` // process high-water RSS at span end

	// Extra carries span-specific metrics beyond the harness costs —
	// the serving-mode load generator records throughput and latency
	// percentiles here so they ride the same trajectory file as the
	// replay wall-clock numbers.
	Extra map[string]float64 `json:"extra,omitempty"`
}

// Trajectory is an ordered sequence of measured spans plus enough
// context to compare runs across machines and revisions.
type Trajectory struct {
	Label      string  `json:"label"` // e.g. "seed", "after-alloc-overhaul"
	GoVersion  string  `json:"go_version"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Scale      float64 `json:"scale,omitempty"`
	Entries    []Entry `json:"entries"`
	TotalMS    float64 `json:"total_ms"`
}

// Tracker accumulates entries. Zero value is ready to use; not safe
// for concurrent Measure calls (podbench runs experiments serially).
type Tracker struct {
	entries []Entry
}

// Measure runs fn and records its wall time, allocation delta, and the
// process peak RSS afterwards under name.
func (t *Tracker) Measure(name string, fn func()) {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	wall := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	t.entries = append(t.entries, Entry{
		Name:       name,
		WallMS:     float64(wall) / float64(time.Millisecond),
		Allocs:     after.Mallocs - before.Mallocs,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
		PeakRSSKB:  PeakRSSKB(),
	})
}

// Entries returns the recorded spans in measurement order.
func (t *Tracker) Entries() []Entry { return t.entries }

// Append records a caller-built entry (used for spans whose metrics
// are computed outside Measure, e.g. podload's throughput report).
func (t *Tracker) Append(e Entry) { t.entries = append(t.entries, e) }

// Annotate attaches an extra metric to the most recently recorded
// entry; it is a no-op when nothing has been recorded yet.
func (t *Tracker) Annotate(key string, v float64) {
	if len(t.entries) == 0 {
		return
	}
	e := &t.entries[len(t.entries)-1]
	if e.Extra == nil {
		e.Extra = make(map[string]float64)
	}
	e.Extra[key] = v
}

// Trajectory packages the recorded entries with run context.
func (t *Tracker) Trajectory(label string, scale float64) Trajectory {
	total := 0.0
	for _, e := range t.entries {
		total += e.WallMS
	}
	return Trajectory{
		Label:      label,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      scale,
		Entries:    t.entries,
		TotalMS:    total,
	}
}

// WriteJSON writes the trajectory to path, indented for diffability.
func (t *Tracker) WriteJSON(path, label string, scale float64) error {
	b, err := json.MarshalIndent(t.Trajectory(label, scale), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// MergeJSON appends this tracker's entries to the trajectory already
// at path, so independent runs (e.g. a podload shard sweep after a
// podbench regen) accumulate into one file. When path does not exist
// it behaves like WriteJSON; when it does, the existing run context
// (label, scale, Go version) is kept and only entries/total grow.
func (t *Tracker) MergeJSON(path, label string, scale float64) error {
	traj := t.Trajectory(label, scale)
	if prev, err := ReadJSON(path); err == nil {
		prev.Entries = append(prev.Entries, traj.Entries...)
		prev.TotalMS += traj.TotalMS
		traj = *prev
	} else if !os.IsNotExist(err) {
		return err
	}
	b, err := json.MarshalIndent(traj, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadJSON loads a trajectory previously written by WriteJSON.
func ReadJSON(path string) (*Trajectory, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var traj Trajectory
	if err := json.Unmarshal(b, &traj); err != nil {
		return nil, err
	}
	return &traj, nil
}

// PeakRSSKB reports the process's high-water resident set in KB from
// /proc/self/status (VmHWM). On platforms without procfs it falls back
// to the Go heap's OS reservation, which undercounts but preserves
// relative comparisons between runs of the same binary.
func PeakRSSKB() uint64 {
	if kb, ok := vmHWM(); ok {
		return kb
	}
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.Sys / 1024
}

func vmHWM() (uint64, bool) {
	b, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, false
	}
	for _, line := range bytes.Split(b, []byte{'\n'}) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		f := bytes.Fields(line[len("VmHWM:"):])
		if len(f) < 1 {
			return 0, false
		}
		kb, err := strconv.ParseUint(string(f[0]), 10, 64)
		if err != nil {
			return 0, false
		}
		return kb, true
	}
	return 0, false
}
