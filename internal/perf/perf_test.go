package perf

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestMeasureRecordsSpan(t *testing.T) {
	var tr Tracker
	sink := make([][]byte, 1000)
	tr.Measure("alloc-burst", func() {
		for i := range sink {
			sink[i] = make([]byte, 4096)
		}
	})
	_ = sink
	es := tr.Entries()
	if len(es) != 1 {
		t.Fatalf("entries = %d, want 1", len(es))
	}
	e := es[0]
	if e.Name != "alloc-burst" {
		t.Fatalf("name = %q", e.Name)
	}
	if e.WallMS < 0 {
		t.Fatalf("wall = %v", e.WallMS)
	}
	if e.Allocs == 0 || e.AllocBytes < 1000*4096 {
		t.Fatalf("allocation delta not captured: allocs=%d bytes=%d", e.Allocs, e.AllocBytes)
	}
	if e.PeakRSSKB == 0 {
		t.Fatal("peak RSS must be non-zero")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var tr Tracker
	tr.Measure("a", func() {})
	tr.Measure("b", func() {})
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := tr.WriteJSON(path, "unit", 0.5); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Trajectory
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Label != "unit" || got.Scale != 0.5 || len(got.Entries) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Entries[0].Name != "a" || got.Entries[1].Name != "b" {
		t.Fatal("entry order not preserved")
	}
	if got.GoVersion == "" || got.GOMAXPROCS < 1 {
		t.Fatal("run context missing")
	}
}

func TestPeakRSSMonotonicSignal(t *testing.T) {
	if PeakRSSKB() == 0 {
		t.Fatal("PeakRSSKB returned 0")
	}
}

func TestAppendAndAnnotate(t *testing.T) {
	var tr Tracker
	tr.Annotate("ignored", 1) // no entries yet: must not panic
	tr.Append(Entry{Name: "podload", Extra: map[string]float64{"throughput_rps": 123}})
	tr.Annotate("p99_us", 4500)
	es := tr.Entries()
	if len(es) != 1 {
		t.Fatalf("%d entries", len(es))
	}
	if es[0].Extra["throughput_rps"] != 123 || es[0].Extra["p99_us"] != 4500 {
		t.Fatalf("extra metrics lost: %+v", es[0].Extra)
	}
	tr.Measure("span", func() {})
	tr.Annotate("k", 7)
	if tr.Entries()[1].Extra["k"] != 7 {
		t.Fatal("annotate after Measure lost")
	}
}
