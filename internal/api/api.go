// Package api defines the request/result types shared by the public
// pod package and the internal serving layer. Both re-export these
// types as aliases, so a request built against the public API can be
// submitted to a sharded server without conversion or copying.
package api

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// Op is a request direction; the values are trace.Read and trace.Write.
type Op = trace.Op

// Re-exported so api users can name operations without importing
// internal/trace.
const (
	OpRead  Op = trace.Read
	OpWrite Op = trace.Write
)

// ContentID identifies a chunk's content; equal IDs mean duplicate
// chunks.
type ContentID = chunk.ContentID

// StreamID identifies the tenant stream a request belongs to; the zero
// value is the default (untagged) stream. Valid IDs are below
// trace.MaxStreams.
type StreamID = trace.StreamID

// Request is one I/O against a simulated volume.
//
// Time is the arrival time in simulated microseconds. For writes,
// Content carries one ContentID per 4 KB chunk and determines the
// request length; Chunks is ignored. For reads, Chunks is the number
// of 4 KB chunks to read. Stream tags the tenant stream; engines with
// per-stream cache apportionment enabled use it to divide fingerprint
// index quota between co-located tenants.
type Request struct {
	Time    int64
	Op      Op
	LBA     uint64
	Chunks  int
	Stream  StreamID
	Content []ContentID
}

// Len reports the request length in chunks.
func (r *Request) Len() int {
	if r.Op == OpWrite {
		return len(r.Content)
	}
	return r.Chunks
}

// Validate reports why the request is malformed, or nil.
func (r *Request) Validate() error {
	if r.Time < 0 {
		return fmt.Errorf("api: negative request time %d", r.Time)
	}
	switch r.Op {
	case OpWrite:
		if len(r.Content) == 0 {
			return fmt.Errorf("api: write at lba %d has no content", r.LBA)
		}
	case OpRead:
		if r.Chunks <= 0 {
			return fmt.Errorf("api: read at lba %d has length %d", r.LBA, r.Chunks)
		}
		if r.Content != nil {
			return fmt.Errorf("api: read at lba %d carries content", r.LBA)
		}
	default:
		return fmt.Errorf("api: unknown op %d", r.Op)
	}
	if r.Stream >= trace.MaxStreams {
		return fmt.Errorf("api: stream id %d out of range (max %d)", r.Stream, trace.MaxStreams-1)
	}
	return nil
}

// Trace converts the request to the internal trace representation.
// Content is shared, not copied.
func (r *Request) Trace() trace.Request {
	return trace.Request{
		Time:    sim.Time(r.Time),
		Op:      r.Op,
		LBA:     r.LBA,
		N:       r.Len(),
		Stream:  r.Stream,
		Content: r.Content,
	}
}

// FromTrace converts an internal trace request to the API shape.
// Content is shared, not copied.
func FromTrace(tr trace.Request) Request {
	req := Request{
		Time:    int64(tr.Time),
		Op:      tr.Op,
		LBA:     tr.LBA,
		Stream:  tr.Stream,
		Content: tr.Content,
	}
	if tr.Op == OpRead {
		req.Chunks = tr.N
	}
	return req
}

// Result describes one completed request. All fields are simulated
// microseconds except Shard, the serving shard index (0 outside the
// sharded server).
//
// Service is the engine's response time; Sojourn additionally includes
// queue wait, so Sojourn >= Service under queued timing and
// Sojourn == Service in passthrough/replay modes.
//
// Retries counts serving-layer re-attempts after transient storage
// faults (0 when the first attempt decided the outcome). Err is nil for
// a successful request; otherwise it is the terminal *fault.Error (or
// other error) after retries were exhausted or a permanent fault
// surfaced — fault.ClassOf(Err) recovers the transient/permanent
// classification, and the timing fields still report the virtual time
// the failed service consumed.
type Result struct {
	Shard    int
	Start    int64
	Complete int64
	Service  int64
	Sojourn  int64

	Retries int
	Err     error
}

// Failed reports whether the request ended in an error.
func (r *Result) Failed() bool { return r.Err != nil }
