// Package replay drives engines with traces and collects the
// measurements the experiments report. Individual replays are
// single-threaded (virtual time must advance deterministically);
// independent (engine, trace) combinations run in parallel across a
// worker pool.
package replay

import (
	"fmt"
	"runtime/debug"
	"sync"

	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// traceRingCap bounds sampled traces kept per replay: newest win, like
// the serving layer's per-shard rings.
const traceRingCap = 256

// Flusher is implemented by engines with background work (the
// post-processing scanner); Run drains it after the last request so
// end-of-replay capacity reflects a completed pass.
type Flusher interface {
	Flush(now sim.Time)
}

// Releaser is implemented by engines whose substrates draw on pooled
// resources (the content model's page arenas). runJob invokes it after
// the replay's result has been extracted — the engine never escapes a
// pool job, so its arenas can be recycled immediately. Callers of the
// serial Run keep their engine and must release (or not) themselves.
type Releaser interface {
	Release()
}

// Result summarizes one replay.
type Result struct {
	Engine string
	Trace  string

	Stats      *engine.Stats // measured portion only (post warm-up)
	UsedBlocks uint64        // physical occupancy at end of replay

	// convenience aggregates (µs)
	MeanRT, MeanReadRT, MeanWriteRT float64
	P95ReadRT, P95WriteRT           float64

	// Metrics is the engine's registry snapshot over the measured
	// portion (the registry is reset at the warm-up boundary alongside
	// Stats); its Traces field holds the sampled request timelines when
	// the job asked for them (Job.TraceEvery).
	Metrics *metrics.Snapshot

	// Err is set when the job panicked instead of completing; every
	// other field is zero. RunAll converts panics into errors so one
	// corrupt combination doesn't take down the worker pool (and with
	// it the results of every job queued behind it).
	Err error
}

// Run replays tr against e, excluding the first warmup requests from
// measurement, and returns the result. Requests must be time-ordered;
// Run panics otherwise (a malformed trace would silently corrupt every
// downstream number).
func Run(e engine.Engine, tr *trace.Trace, warmup int) *Result {
	return run(e, tr, warmup, 0, nil)
}

// RunObserved is Run with a per-request callback receiving the request
// index, the request, and its simulated response time in microseconds
// (for latency logging and custom analyses).
func RunObserved(e engine.Engine, tr *trace.Trace, warmup int, observe func(int, *trace.Request, int64)) *Result {
	return run(e, tr, warmup, 0, observe)
}

// run is the shared replay loop. traceEvery > 0 samples every nth
// measured request into the result's Metrics.Traces with its full
// per-phase timeline (at most traceRingCap kept, newest win).
func run(e engine.Engine, tr *trace.Trace, warmup, traceEvery int, observe func(int, *trace.Request, int64)) *Result {
	var last int64 = -1
	var ring *metrics.TraceRing
	if traceEvery > 0 {
		ring = metrics.NewTraceRing(traceRingCap)
	}
	sampled := int64(0)
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if int64(r.Time) < last {
			panic(fmt.Sprintf("replay: trace %q not time-ordered at request %d", tr.Name, i))
		}
		last = int64(r.Time)
		if i == warmup {
			e.Stats().Reset()
			e.Metrics().Reset()
		}
		// Replay has no retry layer: a request the stack could not
		// absorb is counted (engine Stats track Write/ReadErrors) and
		// the replay moves on — fault experiments that need retry
		// semantics run through internal/server instead.
		var rt sim.Duration
		if r.Op == trace.Write {
			rt, _ = e.Write(r)
		} else {
			rt, _ = e.Read(r)
		}
		if ring != nil && i >= warmup {
			sampled++
			if sampled%int64(traceEvery) == 0 {
				// replay is unqueued: arrival == start, sojourn == service
				ring.Add(metrics.TraceRecord{
					Seq: int64(i), Op: r.Op.String(), LBA: r.LBA, Chunks: r.N,
					Arrival: int64(r.Time), Start: int64(r.Time),
					Complete: int64(r.Time) + int64(rt),
					Service:  int64(rt), Sojourn: int64(rt),
					Phases: e.Metrics().Phases().LastTimeline(),
				})
			}
		}
		if observe != nil {
			observe(i, r, int64(rt))
		}
	}
	if f, ok := e.(Flusher); ok {
		f.Flush(sim.Time(last))
	}
	st := e.Stats()
	m := e.Metrics().Snapshot()
	if ring != nil {
		m.Traces = ring.Drain()
	}
	return &Result{
		Engine:      e.Name(),
		Trace:       tr.Name,
		Stats:       st,
		UsedBlocks:  e.UsedBlocks(),
		MeanRT:      st.TotalRT(),
		MeanReadRT:  st.ReadRT.Mean(),
		MeanWriteRT: st.WriteRT.Mean(),
		P95ReadRT:   st.ReadRT.Percentile(95),
		P95WriteRT:  st.WriteRT.Percentile(95),
		Metrics:     m,
	}
}

// Job is one replay to execute: a factory (each job needs a fresh
// engine over fresh substrates) plus its trace. The trace is given
// either directly (Trace/Warmup) or lazily (TraceFn); when TraceFn is
// non-nil it wins, and it runs on the worker executing the job — so
// trace generation overlaps with other jobs' replays instead of
// serializing in the caller before the pool starts.
type Job struct {
	Key     string // caller-chosen identifier
	Factory func() engine.Engine
	Trace   *trace.Trace
	Warmup  int
	TraceFn func() (*trace.Trace, int) // lazy trace + warmup; overrides Trace/Warmup

	// TraceEvery > 0 samples every nth measured request into the
	// result's Metrics.Traces with its per-phase timeline.
	TraceEvery int
}

// runJob executes one job, converting a panic anywhere in trace
// generation, engine construction, or the replay itself into an error
// Result.
func runJob(j Job) (res *Result) {
	defer func() {
		if r := recover(); r != nil {
			res = &Result{
				Engine: j.Key,
				Err:    fmt.Errorf("replay: job %q panicked: %v\n%s", j.Key, r, debug.Stack()),
			}
		}
	}()
	tr, warmup := j.Trace, j.Warmup
	if j.TraceFn != nil {
		tr, warmup = j.TraceFn()
	}
	e := j.Factory()
	res = run(e, tr, warmup, j.TraceEvery, nil)
	if r, ok := e.(Releaser); ok {
		r.Release()
	}
	return res
}

// Pool is a persistent replay worker pool: its workers start once and
// service batches from many Run calls, so a driver that schedules
// figure after figure reuses one set of workers (and their warmed
// allocator state) instead of spawning a fresh pool per figure. Run is
// safe for concurrent use — batches interleave over the same workers.
type Pool struct {
	tasks chan poolTask
}

type poolTask struct {
	job  Job
	slot **Result
	wg   *sync.WaitGroup
}

// NewPool starts a pool with the given number of workers (≤ 0 selects
// one). The workers idle on a channel between batches; Close releases
// them.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = 1
	}
	p := &Pool{tasks: make(chan poolTask)}
	for w := 0; w < workers; w++ {
		go func() {
			for t := range p.tasks {
				*t.slot = runJob(t.job)
				t.wg.Done()
			}
		}()
	}
	return p
}

// Run executes jobs on the pool and returns results in job order,
// blocking until every job completes. Panicking jobs yield Results
// with Err set, exactly like RunAll.
func (p *Pool) Run(jobs []Job) []*Result {
	results := make([]*Result, len(jobs))
	var wg sync.WaitGroup
	wg.Add(len(jobs))
	for i := range jobs {
		p.tasks <- poolTask{job: jobs[i], slot: &results[i], wg: &wg}
	}
	wg.Wait()
	return results
}

// Close stops the pool's workers. Run must not be called after Close.
func (p *Pool) Close() { close(p.tasks) }

// RunAll executes jobs across a pool of workers and returns results in
// job order. workers ≤ 0 selects one worker per job. A job that panics
// yields a Result with Err set rather than crashing the pool.
func RunAll(jobs []Job, workers int) []*Result {
	if workers <= 0 || workers > len(jobs) {
		workers = len(jobs)
	}
	results := make([]*Result, len(jobs))
	if len(jobs) == 0 {
		return results
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ch {
				results[i] = runJob(jobs[i])
			}
		}()
	}
	for i := range jobs {
		ch <- i
	}
	close(ch)
	wg.Wait()
	return results
}
