package replay

import (
	"reflect"
	"sync"
	"testing"

	"github.com/pod-dedup/pod/internal/baseline"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/trace"
)

func newNativeEngine() engine.Engine {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 16))
	}
	return baseline.NewNative(engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 1 << 20,
	})
}

// TestEngineWriteHotPathAllocFree guards the steady-state write path:
// once an LBA's blocks, map entries, and index slots exist, rewriting
// it must not allocate. This is the per-request cost the pooled
// scratch buffers exist to eliminate; a regression fails go test
// instead of only drifting BENCH_replay.json.
func TestEngineWriteHotPathAllocFree(t *testing.T) {
	eng := newEngine()
	req := &trace.Request{
		Time: 1000, Op: trace.Write, LBA: 64, N: 4,
		Content: []chunk.ContentID{11, 12, 13, 14},
	}
	for i := 0; i < 64; i++ { // populate maps, settle amortized growth
		if _, err := eng.Write(req); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.Write(req); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state engine write: %.2f allocs/op, want 0", avg)
	}
}

// TestConcurrentPooledRepliesMatchSerial is the buffer-aliasing
// property test: two engines replaying concurrently draw scratch pages
// from the same process-wide pools, and every released buffer may be
// handed to the other engine mid-replay. If any engine retains a
// pooled buffer past its ownership window, the results diverge from
// the serial (cold-pool, no cross-engine reuse) reference — or the
// race detector fires. Run under -race via make check.
func TestConcurrentPooledRepliesMatchSerial(t *testing.T) {
	tr := smallTrace(300)
	wantPOD := Run(newEngine(), tr, 0)
	wantNative := Run(newNativeEngine(), tr, 0)
	for round := 0; round < 4; round++ {
		got := make([]*Result, 2)
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); got[0] = Run(newEngine(), tr, 0) }()
		go func() { defer wg.Done(); got[1] = Run(newNativeEngine(), tr, 0) }()
		wg.Wait()
		if !reflect.DeepEqual(got[0], wantPOD) {
			t.Fatalf("round %d: pooled concurrent POD replay diverged from serial reference", round)
		}
		if !reflect.DeepEqual(got[1], wantNative) {
			t.Fatalf("round %d: pooled concurrent Native replay diverged from serial reference", round)
		}
	}
}
