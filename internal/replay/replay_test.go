package replay

import (
	"strings"
	"sync/atomic"
	"testing"

	"github.com/pod-dedup/pod/internal/baseline"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func newEngine() engine.Engine {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 16))
	}
	return core.NewPOD(engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 1 << 20,
	})
}

func smallTrace(n int) *trace.Trace {
	tr := &trace.Trace{Name: "unit"}
	var tm sim.Time
	for i := 0; i < n; i++ {
		tm = tm.Add(1000)
		if i%3 == 2 {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: tm, Op: trace.Read, LBA: uint64((i - 1) * 4), N: 2,
			})
			continue
		}
		tr.Requests = append(tr.Requests, trace.Request{
			Time: tm, Op: trace.Write, LBA: uint64(i * 4), N: 2,
			Content: []chunk.ContentID{chunk.ContentID(i), chunk.ContentID(i + 1)},
		})
	}
	return tr
}

func TestRunMeasuresOnlyPostWarmup(t *testing.T) {
	tr := smallTrace(30)
	res := Run(newEngine(), tr, 10)
	st := res.Stats
	if st.Reads+st.Writes != 20 {
		t.Fatalf("measured %d requests, want 20", st.Reads+st.Writes)
	}
	if res.MeanRT <= 0 || res.MeanWriteRT <= 0 {
		t.Fatal("means must be positive")
	}
}

func TestRunZeroWarmup(t *testing.T) {
	tr := smallTrace(9)
	res := Run(newEngine(), tr, 0)
	if res.Stats.Reads+res.Stats.Writes != 9 {
		t.Fatal("all requests must be measured with zero warmup")
	}
}

func TestRunPanicsOnUnorderedTrace(t *testing.T) {
	tr := smallTrace(3)
	tr.Requests[2].Time = 0 // violate ordering
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unordered trace")
		}
	}()
	Run(newEngine(), tr, 0)
}

func TestRunAllParallelOrderPreserved(t *testing.T) {
	tr := smallTrace(30)
	var jobs []Job
	for i := 0; i < 6; i++ {
		i := i
		factory := func() engine.Engine {
			if i%2 == 0 {
				return newEngine()
			}
			disks := make([]*disk.Disk, 4)
			for j := range disks {
				disks[j] = disk.New(disk.DefaultParams(1 << 16))
			}
			return baseline.NewNative(engine.Config{
				Array:       raid.New(raid.RAID5, disks, 16),
				MemoryBytes: 1 << 20,
			})
		}
		jobs = append(jobs, Job{Key: "k", Factory: factory, Trace: tr})
	}
	results := RunAll(jobs, 3)
	if len(results) != 6 {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		want := "POD"
		if i%2 == 1 {
			want = "Native"
		}
		if r.Engine != want {
			t.Fatalf("result %d = %s, want %s (order not preserved)", i, r.Engine, want)
		}
	}
}

func TestRunAllDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := smallTrace(30)
	mk := func(workers int) []*Result {
		var jobs []Job
		for i := 0; i < 4; i++ {
			jobs = append(jobs, Job{Factory: newEngine, Trace: tr, Warmup: 5})
		}
		return RunAll(jobs, workers)
	}
	a, b := mk(1), mk(4)
	for i := range a {
		if a[i].MeanRT != b[i].MeanRT || a[i].UsedBlocks != b[i].UsedBlocks {
			t.Fatalf("job %d differs across worker counts", i)
		}
	}
}

func TestRunAllRecoversPanickingJob(t *testing.T) {
	tr := smallTrace(12)
	jobs := []Job{
		{Key: "good-before", Factory: newEngine, Trace: tr, Warmup: 2},
		{Key: "bad", Factory: func() engine.Engine { panic("injected factory failure") }, Trace: tr},
		{Key: "good-after", Factory: newEngine, Trace: tr, Warmup: 2},
	}
	results := RunAll(jobs, 1) // one worker: all three share a goroutine
	if results[1].Err == nil {
		t.Fatal("panicking job must surface an error result")
	}
	if !strings.Contains(results[1].Err.Error(), "injected factory failure") {
		t.Fatalf("error must carry the panic value, got: %v", results[1].Err)
	}
	for _, i := range []int{0, 2} {
		if results[i] == nil || results[i].Err != nil {
			t.Fatalf("job %d must complete despite a sibling panic", i)
		}
		if results[i].Stats.Reads+results[i].Stats.Writes == 0 {
			t.Fatalf("job %d measured nothing", i)
		}
	}
}

func TestRunAllLazyTraceFn(t *testing.T) {
	var calls int32
	fn := func() (*trace.Trace, int) {
		atomic.AddInt32(&calls, 1)
		return smallTrace(12), 2
	}
	// TraceFn overrides Trace/Warmup even when both are set.
	decoy := smallTrace(3)
	jobs := []Job{
		{Key: "lazy-a", Factory: newEngine, Trace: decoy, Warmup: 0, TraceFn: fn},
		{Key: "lazy-b", Factory: newEngine, TraceFn: fn},
	}
	results := RunAll(jobs, 2)
	if n := atomic.LoadInt32(&calls); n != 2 {
		t.Fatalf("TraceFn called %d times, want once per job", n)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		if got := r.Stats.Reads + r.Stats.Writes; got != 10 {
			t.Fatalf("job %d measured %d requests, want 10 (12 minus warmup 2 from TraceFn)", i, got)
		}
	}
}

func TestRunAllEmpty(t *testing.T) {
	if got := RunAll(nil, 4); len(got) != 0 {
		t.Fatal("empty jobs must produce empty results")
	}
}

func TestPoolReusedAcrossBatches(t *testing.T) {
	tr := smallTrace(30)
	p := NewPool(2)
	defer p.Close()
	for batch := 0; batch < 3; batch++ {
		jobs := []Job{
			{Key: "a", Factory: newEngine, Trace: tr, Warmup: 5},
			{Key: "b", Factory: newEngine, Trace: tr, Warmup: 5},
			{Key: "c", Factory: newEngine, Trace: tr, Warmup: 5},
		}
		results := p.Run(jobs)
		if len(results) != 3 {
			t.Fatalf("batch %d: %d results", batch, len(results))
		}
		for i, r := range results {
			if r == nil || r.Err != nil {
				t.Fatalf("batch %d job %d failed: %+v", batch, i, r)
			}
			if r.MeanRT != results[0].MeanRT {
				t.Fatalf("batch %d: identical jobs diverged", batch)
			}
		}
	}
}

func TestPoolMatchesRunAll(t *testing.T) {
	tr := smallTrace(30)
	jobs := func() []Job {
		return []Job{
			{Key: "x", Factory: newEngine, Trace: tr, Warmup: 5},
			{Key: "y", Factory: newEngine, Trace: tr, Warmup: 10},
		}
	}
	p := NewPool(0) // ≤ 0 clamps to one worker
	defer p.Close()
	a := p.Run(jobs())
	b := RunAll(jobs(), 2)
	for i := range a {
		if a[i].MeanRT != b[i].MeanRT || a[i].UsedBlocks != b[i].UsedBlocks {
			t.Fatalf("job %d: pool and RunAll disagree", i)
		}
	}
}

func TestPoolRecoversPanickingJob(t *testing.T) {
	tr := smallTrace(12)
	p := NewPool(1)
	defer p.Close()
	results := p.Run([]Job{
		{Key: "bad", Factory: func() engine.Engine { panic("pool factory failure") }, Trace: tr},
		{Key: "good", Factory: newEngine, Trace: tr, Warmup: 2},
	})
	if results[0].Err == nil || !strings.Contains(results[0].Err.Error(), "pool factory failure") {
		t.Fatalf("panicking job must surface its error, got %+v", results[0].Err)
	}
	if results[1].Err != nil || results[1].Stats.Reads+results[1].Stats.Writes == 0 {
		t.Fatal("job after a panic must still run on the surviving worker")
	}
}

// BenchmarkReplayHot drives the full write/read hot path — split,
// fingerprint, index lookup, allocation, Map-table update, RAID model —
// through a POD engine on a reusable synthetic trace. Run with
// -benchmem; this is the end-to-end number the allocation work targets.
func BenchmarkReplayHot(b *testing.B) {
	const reqs = 4096
	tr := &trace.Trace{Name: "bench"}
	var tm sim.Time
	rng := uint64(0x9e3779b97f4a7c15)
	for i := 0; i < reqs; i++ {
		tm = tm.Add(500)
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		if i%4 == 3 {
			tr.Requests = append(tr.Requests, trace.Request{
				Time: tm, Op: trace.Read, LBA: (rng % 8192) * 8, N: 8,
			})
			continue
		}
		ids := make([]chunk.ContentID, 8)
		for j := range ids {
			// ~50% duplicate content to exercise both dedupe and fresh-write paths
			ids[j] = chunk.ContentID((rng + uint64(j)) % (reqs * 4))
		}
		tr.Requests = append(tr.Requests, trace.Request{
			Time: tm, Op: trace.Write, LBA: (rng % 8192) * 8, N: 8, Content: ids,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(newEngine(), tr, 0)
	}
}

func TestRunObservedCallback(t *testing.T) {
	tr := smallTrace(12)
	var seen int
	var lastRT int64
	res := RunObserved(newEngine(), tr, 0, func(i int, r *trace.Request, rt int64) {
		if i != seen {
			t.Fatalf("indices out of order: %d vs %d", i, seen)
		}
		if rt <= 0 {
			t.Fatalf("request %d: non-positive rt %d", i, rt)
		}
		seen++
		lastRT = rt
	})
	if seen != 12 || res == nil || lastRT == 0 {
		t.Fatalf("observed %d requests", seen)
	}
}
