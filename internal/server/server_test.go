package server

import (
	"reflect"
	"sync"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/replay"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

const testScale = 0.02

func testTrace(t *testing.T) (*trace.Trace, workload.Profile) {
	t.Helper()
	prof := workload.WebVM()
	tr, _ := workload.Generate(prof, testScale)
	return tr, prof
}

func podFactory(prof workload.Profile) func(int) engine.Engine {
	return func(int) engine.Engine {
		return experiments.NewEngine(experiments.POD, experiments.BuildConfig(prof, testScale))
	}
}

// apiReq converts a trace request to the shared API shape (reads carry
// Chunks, writes carry Content).
func apiReq(r *trace.Request) *Request {
	req := &Request{Time: int64(r.Time), Op: r.Op, LBA: r.LBA}
	if r.Op == trace.Read {
		req.Chunks = r.N
	} else {
		req.Content = r.Content
	}
	return req
}

// TestBridgeByteIdenticalToReplay is the determinism bridge of the
// serving layer: with one shard, one client, and Passthrough timing,
// pushing a trace through the server must leave the engine in exactly
// the state the direct replay path produces — every counter, every
// histogram bucket, every physical block.
func TestBridgeByteIdenticalToReplay(t *testing.T) {
	tr, prof := testTrace(t)

	direct := experiments.NewEngine(experiments.POD, experiments.BuildConfig(prof, testScale))
	directRes := replay.Run(direct, tr, 0)

	srv, err := New(Config{
		Shards:    1,
		Timing:    Passthrough,
		NewEngine: podFactory(prof),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		res, err := srv.Do(apiReq(r))
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if res.Shard != 0 {
			t.Fatalf("request %d routed to shard %d with 1 shard", i, res.Shard)
		}
	}
	srv.Close()

	snap := srv.Stats()
	if !reflect.DeepEqual(snap.Engine, directRes.Stats) {
		t.Fatalf("served stats diverge from direct replay:\n server: %+v\n direct: %+v", snap.Engine, directRes.Stats)
	}
	if snap.UsedBlocks != directRes.UsedBlocks {
		t.Fatalf("used blocks: server %d, direct %d", snap.UsedBlocks, directRes.UsedBlocks)
	}
	if snap.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d", snap.Completed, len(tr.Requests))
	}
	// spot-check the logical view block by block
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if r.Op != trace.Write || i%7 != 0 {
			continue
		}
		for j := 0; j < r.N; j++ {
			lba := r.LBA + uint64(j)
			sg, sok := srv.ReadContent(lba)
			dg, dok := direct.ReadContent(lba)
			if sg != dg || sok != dok {
				t.Fatalf("lba %d: server %d,%v direct %d,%v", lba, sg, sok, dg, dok)
			}
		}
	}
}

// TestConcurrentClientsDrainCompletely drives a sharded server from
// many client goroutines and checks that the graceful drain serves
// everything: completed equals submitted, the work spread across every
// shard, and the merged request counters add up.
func TestConcurrentClientsDrainCompletely(t *testing.T) {
	tr, prof := testTrace(t)
	const shards, clients = 4, 8

	srv, err := New(Config{
		Shards:     shards,
		GranChunks: 256, // fine granules: the sub-sampled trace only touches an address-space prefix
		QueueDepth: 64,
		MaxBatch:   16,
		Timing:     Queued,
		NewEngine:  podFactory(prof),
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(tr.Requests); i += clients {
				r := &tr.Requests[i]
				if err := srv.Submit(apiReq(r)); err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	srv.Close()

	snap := srv.Stats()
	if snap.Completed != int64(len(tr.Requests)) {
		t.Fatalf("completed %d of %d submitted", snap.Completed, len(tr.Requests))
	}
	if got := snap.Engine.Reads + snap.Engine.Writes; got != int64(len(tr.Requests)) {
		t.Fatalf("merged engine counters %d, want %d", got, len(tr.Requests))
	}
	var sum int64
	for _, ps := range snap.PerShard {
		if ps.Completed == 0 {
			t.Fatalf("shard %d served nothing — routing skew", ps.Shard)
		}
		if ps.Queued != 0 {
			t.Fatalf("shard %d still has %d queued after Close", ps.Shard, ps.Queued)
		}
		sum += ps.Completed
	}
	if sum != snap.Completed {
		t.Fatalf("per-shard completions %d != total %d", sum, snap.Completed)
	}
	if snap.Latency.N() != snap.Completed {
		t.Fatalf("latency samples %d != completions %d", snap.Latency.N(), snap.Completed)
	}
	if snap.Throughput() <= 0 {
		t.Fatal("no aggregate throughput measured")
	}
}

// TestSubmitBatchMatchesSubmit drives the same trace through two
// identically configured servers — one via per-request Submit, one via
// SubmitBatch — and checks the end states agree exactly: batching is a
// submission-path optimization, never a semantic change.
func TestSubmitBatchMatchesSubmit(t *testing.T) {
	tr, prof := testTrace(t)
	cfg := func() Config {
		return Config{
			Shards:     4,
			GranChunks: 256,
			Timing:     Queued,
			NewEngine:  podFactory(prof),
		}
	}

	one, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Requests {
		if err := one.Submit(apiReq(&tr.Requests[i])); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	one.Close()

	batched, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	const bsize = 64
	var batch []Request
	for i := range tr.Requests {
		batch = append(batch, *apiReq(&tr.Requests[i]))
		if len(batch) == bsize {
			if err := batched.SubmitBatch(batch); err != nil {
				t.Fatalf("batch ending at %d: %v", i, err)
			}
			batch = nil
		}
	}
	if len(batch) > 0 {
		if err := batched.SubmitBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	batched.Close()

	a, b := one.Stats(), batched.Stats()
	if a.Completed != b.Completed {
		t.Fatalf("completed: submit %d, batch %d", a.Completed, b.Completed)
	}
	if !reflect.DeepEqual(a.Engine, b.Engine) {
		t.Fatalf("engine stats diverge:\n submit: %+v\n batch:  %+v", a.Engine, b.Engine)
	}
	if a.UsedBlocks != b.UsedBlocks {
		t.Fatalf("used blocks: submit %d, batch %d", a.UsedBlocks, b.UsedBlocks)
	}
	if a.Latency.Mean() != b.Latency.Mean() || a.Latency.Percentile(99) != b.Latency.Percentile(99) {
		t.Fatalf("latency distributions diverge: submit mean %.2f p99 %.2f, batch mean %.2f p99 %.2f",
			a.Latency.Mean(), a.Latency.Percentile(99), b.Latency.Mean(), b.Latency.Percentile(99))
	}
}

// TestSubmitBatchValidatesWholeBatch checks that one malformed request
// rejects the batch before anything is enqueued.
func TestSubmitBatchValidatesWholeBatch(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{Shards: 2, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Request{
		{Op: trace.Write, LBA: 0, Content: []chunk.ContentID{1}},
		{Op: trace.Read, LBA: 8, Chunks: 0}, // invalid: zero-length read
	}
	if err := srv.SubmitBatch(batch); err == nil {
		t.Fatal("malformed batch accepted")
	}
	srv.Close()
	if got := srv.Stats().Completed; got != 0 {
		t.Fatalf("%d requests served from a rejected batch", got)
	}
}

// TestSubmitBatchAfterCloseRefused checks the closed-server path.
func TestSubmitBatchAfterCloseRefused(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{Shards: 2, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	err = srv.SubmitBatch([]Request{{Op: trace.Read, LBA: 0, Chunks: 1}})
	if err != ErrClosed {
		t.Fatalf("batch after close: %v, want ErrClosed", err)
	}
}

// TestShedPolicyBoundsQueue verifies the load-shedding backpressure
// path: with the sole worker paused and a depth-1 queue, surplus
// submissions must be refused with ErrShed and counted, never queued
// without bound or blocked.
func TestShedPolicyBoundsQueue(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{
		Shards:     1,
		QueueDepth: 1,
		Policy:     Shed,
		NewEngine:  podFactory(prof),
	})
	if err != nil {
		t.Fatal(err)
	}

	paused := make(chan struct{})
	release := make(chan struct{})
	go srv.WithEngine(0, func(engine.Engine) {
		close(paused)
		<-release
	})
	<-paused

	// worker can absorb at most one in-flight request plus one queued
	const n = 6
	sheds := 0
	for i := 0; i < n; i++ {
		err := srv.Submit(&Request{Op: trace.Write, LBA: uint64(i), Content: []chunk.ContentID{chunk.ContentID(i + 1)}})
		if err == ErrShed {
			sheds++
		} else if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if sheds < n-2 {
		t.Fatalf("only %d of %d surplus submissions shed", sheds, n)
	}
	close(release)
	srv.Close()

	snap := srv.Stats()
	if snap.ShedCount != int64(sheds) {
		t.Fatalf("shed counter %d, want %d", snap.ShedCount, sheds)
	}
	if snap.Completed != int64(n-sheds) {
		t.Fatalf("completed %d, want %d", snap.Completed, n-sheds)
	}
}

// TestCloseFlushesBackgroundWork drains a Post-Process engine through
// Close: the offline dedup scanner must run during the graceful drain,
// so duplicate blocks written through the server are merged by the
// time Close returns.
func TestCloseFlushesBackgroundWork(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{
		Shards: 1,
		NewEngine: func(int) engine.Engine {
			return experiments.NewEngine(experiments.PostProcess, experiments.BuildConfig(prof, testScale))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	content := []chunk.ContentID{11, 12, 13}
	if _, err := srv.Do(&Request{Time: 0, Op: trace.Write, LBA: 0, Content: content}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Do(&Request{Time: 1000, Op: trace.Write, LBA: 100, Content: content}); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if used := srv.Stats().UsedBlocks; used != 3 {
		t.Fatalf("used %d blocks after drain, want 3 (duplicates merged by the flushed scanner)", used)
	}
}

// TestSubmitAfterCloseRefused checks the closed-server path.
func TestSubmitAfterCloseRefused(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{Shards: 2, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	srv.Close() // idempotent
	err = srv.Submit(&Request{Op: trace.Read, LBA: 0, Chunks: 1})
	if err != ErrClosed {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestQueuedTimingMonotonePerShard floods one shard with identical
// arrival stamps and checks the virtual queue: starts never go
// backwards, completions serialize, and sojourn ≥ service.
func TestQueuedTimingMonotonePerShard(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{Shards: 1, Timing: Queued, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	var lastStart int64 = -1
	for i := 0; i < 50; i++ {
		res, err := srv.Do(&Request{Time: 0, Op: trace.Write, LBA: uint64(i * 4),
			Content: []chunk.ContentID{chunk.ContentID(2*i + 1), chunk.ContentID(2*i + 2)}})
		if err != nil {
			t.Fatal(err)
		}
		if res.Start < lastStart {
			t.Fatalf("request %d started at %v before previous start %v", i, res.Start, lastStart)
		}
		if res.Sojourn < res.Service {
			t.Fatalf("request %d sojourn %v < service %v", i, res.Sojourn, res.Service)
		}
		lastStart = res.Start
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("nil NewEngine accepted")
	}
	if _, err := New(Config{Shards: -1, NewEngine: func(int) engine.Engine { return nil }}); err == nil {
		t.Fatal("negative shard count accepted")
	}
	if _, err := New(Config{NewEngine: func(int) engine.Engine { return nil }}); err == nil {
		t.Fatal("nil engine accepted")
	}
}
