package server

import (
	"errors"
	"fmt"

	"github.com/pod-dedup/pod/internal/alloc"
)

// CrashShard crashes shard i as an isolated failure domain while the
// rest of the server (and the global fingerprint tier, when enabled)
// keeps serving: the shard's DRAM state is conceptually lost, its
// queue fail-replies everything with typed KindShardDown (transient)
// errors until RecoverShard, and the tier fences the dead shard out —
// its epoch is bumped (in-flight messages and ads from its previous
// life are dropped on receipt), its advertisements and table entries
// are swept, and every live shard eagerly purges cached hints and
// remote-read entries naming the dead shard's canonicals, so no new
// cross-shard references toward it can form during the outage.
//
// The crash lands at a batch boundary: all shard locks are taken
// (ascending, the canonical order), so no serving round, agent tick,
// or recall snapshot interleaves with the epoch bump. Requests already
// queued on the shard fail-reply as the worker drains them.
func (s *Server) CrashShard(i int) error {
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("server: CrashShard(%d): shard out of range [0, %d)", i, len(s.shards))
	}
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if closed {
		return errors.New("server: CrashShard after Close")
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	if s.shards[i].down {
		return fmt.Errorf("server: CrashShard(%d): shard already down", i)
	}
	s.shards[i].down = true
	s.downMask.Store(s.downMask.Load() | uint64(1)<<uint(i))
	if s.tier == nil {
		return nil
	}
	s.tier.CrashShard(i)
	// A surviving hint naming a dead canonical is a time bomb: the
	// rejoin re-audit frees canonicals whose references vanished, so a
	// peer deduping against a stale hint after that could share a
	// reused block. Purge them now, while every shard is quiescent.
	for j, sh := range s.shards {
		if j == i {
			continue
		}
		h, ok := sh.eng.(baseHolder)
		if !ok {
			continue
		}
		h.Base().IC.PurgeWhere(func(pba alloc.PBA) bool {
			if !alloc.IsRemote(pba) {
				return false
			}
			owner, _ := alloc.RemoteParts(pba)
			return owner == i
		})
	}
	return nil
}

// RecoverShard rejoins a shard crashed by CrashShard, rebuilding its
// state the same way whole-node recovery does — NVRAM journal replay
// into a fresh Map table, then allocator/store reconstruction with
// cross-shard canonicals re-pinned — but scoped to the one shard. The
// pin re-audit recomputes shard i's inward pins from the live shards'
// current (journal-backed) remote references, which also heals any
// RefDown that was dropped toward the dead inbox during the outage.
// Outward references (shard i's mappings onto peers' canonicals) are
// durable in its journal and their ref pins on the owners never moved,
// so they need no repair. Returns the journal records replayed;
// idempotent — recovering a live shard is a no-op.
func (s *Server) RecoverShard(i int) (int, error) {
	if i < 0 || i >= len(s.shards) {
		return 0, fmt.Errorf("server: RecoverShard(%d): shard out of range [0, %d)", i, len(s.shards))
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	sh := s.shards[i]
	if !sh.down {
		return 0, nil
	}
	var replayed int
	if s.tier != nil {
		h, ok := sh.eng.(baseHolder)
		if !ok {
			return 0, fmt.Errorf("server: shard %d engine %s does not support crash recovery", i, sh.eng.Name())
		}
		b := h.Base()
		n, err := b.RecoverLoad()
		if err != nil {
			return 0, fmt.Errorf("server: shard %d: %w", i, err)
		}
		replayed = n
		var pinned []alloc.PBA
		for j, osh := range s.shards {
			if j == i {
				continue
			}
			oh, ok := osh.eng.(baseHolder)
			if !ok {
				continue
			}
			seen := make(map[alloc.PBA]bool)
			oh.Base().Map.Each(func(_ uint64, pba alloc.PBA, _ bool) bool {
				if !alloc.IsRemote(pba) || seen[pba] {
					return true
				}
				seen[pba] = true
				if owner, canon := alloc.RemoteParts(pba); owner == i {
					pinned = append(pinned, canon)
				}
				return true
			})
		}
		b.RecoverFinish(pinned)
		s.tier.RecoverShard(i)
	} else {
		r, ok := sh.eng.(interface{ CrashAndRecover() (int, error) })
		if !ok {
			return 0, fmt.Errorf("server: shard %d engine %s does not support crash recovery", i, sh.eng.Name())
		}
		n, err := r.CrashAndRecover()
		if err != nil {
			return 0, fmt.Errorf("server: shard %d: %w", i, err)
		}
		replayed = n
	}
	// fresh shard, fresh luck: the breaker state belonged to the dead
	// incarnation
	sh.down = false
	sh.brOpen = false
	sh.brUntil = 0
	sh.consecFails = 0
	s.downMask.Store(s.downMask.Load() &^ (uint64(1) << uint(i)))
	return replayed, nil
}
