package server

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/trace"
)

// TestSubmitBatchEmpty: an empty (or nil) batch is a no-op, not an
// error and not a queue entry — nothing reaches any shard.
func TestSubmitBatchEmpty(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{Shards: 2, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SubmitBatch(nil); err != nil {
		t.Fatalf("nil batch: %v", err)
	}
	if err := srv.SubmitBatch([]Request{}); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Completed; got != 0 {
		t.Fatalf("empty batches completed %d requests", got)
	}
}

// TestSubmitBatchSingle: a one-request batch is served exactly like a
// plain Submit — one completion, content readable back.
func TestSubmitBatchSingle(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{Shards: 2, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SubmitBatch([]Request{
		{Op: trace.Write, LBA: 0, Content: []chunk.ContentID{42}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Completed; got != 1 {
		t.Fatalf("single-request batch completed %d requests, want 1", got)
	}
	if got, ok := srv.ReadContent(0); !ok || got != 42 {
		t.Fatalf("read back %d,%v want 42", got, ok)
	}
}

// TestSubmitBatchDuringCloseDrain races concurrent SubmitBatch callers
// against Close: every call must either be accepted in full or refused
// with the typed ErrClosed — no panic (a batch send must never hit a
// closed shard channel), no partially lost batch. After the drain,
// completions must account for exactly the accepted requests: a batch
// whose SubmitBatch returned nil was enqueued whole and Close's
// graceful drain serves everything queued.
func TestSubmitBatchDuringCloseDrain(t *testing.T) {
	_, prof := testTrace(t)
	srv, err := New(Config{Shards: 4, GranChunks: 1, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter, bsize = 8, 64, 4
	var accepted atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				batch := make([]Request, bsize)
				for k := range batch {
					lba := uint64(w*perWriter*bsize + i*bsize + k)
					batch[k] = Request{Op: trace.Write, LBA: lba,
						Content: []chunk.ContentID{chunk.ContentID(lba + 1)}}
				}
				err := srv.SubmitBatch(batch)
				switch {
				case err == nil:
					accepted.Add(bsize)
				case errors.Is(err, ErrClosed):
					return
				default:
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	close(start)
	// Close while the writers are mid-flight: the first few batches
	// race the drain, the rest see ErrClosed.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if got, want := srv.Stats().Completed, accepted.Load(); got != want {
		t.Fatalf("drain completed %d requests, accepted %d — acks lost or invented", got, want)
	}
}
