package server

// Router maps logical block addresses onto shards. The LBA space is
// cut into fixed-size granules of GranChunks contiguous chunks;
// granules are dealt round-robin across the shards. The function is a
// pure, stable partition of the LBA space: every address belongs to
// exactly one shard, the assignment never changes for the lifetime of
// a layout (it depends only on shards and granule size), and two
// routers with the same parameters agree on every address.
//
// The granule is deliberately much larger than any single request so
// that one request's chunk run almost always lives inside one granule
// and is served whole by one engine; a request that does straddle a
// boundary is still served whole by the shard owning its first chunk
// (engines keep full-LBA-space map tables, so ownership is a routing
// policy, not a correctness boundary).
type Router struct {
	shards int
	gran   uint64
}

// DefaultGranChunks is the default routing granule: 1024 chunks
// (4 MiB), an order of magnitude above the largest request in the
// synthetic traces (64 chunks) while fine enough that even a
// sub-sampled trace's address-space prefix spreads across many
// granules.
const DefaultGranChunks = 1024

// NewRouter builds a router over the given shard count and granule
// size in chunks (0 selects DefaultGranChunks). It panics on a
// non-positive shard count.
func NewRouter(shards int, granChunks uint64) Router {
	if shards <= 0 {
		panic("server: router needs at least one shard")
	}
	if granChunks == 0 {
		granChunks = DefaultGranChunks
	}
	return Router{shards: shards, gran: granChunks}
}

// Shards reports the shard count.
func (r Router) Shards() int { return r.shards }

// GranChunks reports the granule size in chunks.
func (r Router) GranChunks() uint64 { return r.gran }

// Shard returns the shard owning lba, always in [0, Shards()).
func (r Router) Shard(lba uint64) int {
	return int((lba / r.gran) % uint64(r.shards))
}
