package server

import (
	"sync"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// baser is implemented by the core engines that expose their substrate
// (and with it the NVRAM journal device) for fault injection.
type baser interface {
	Base() *engine.Base
}

func selectDedupeFactory(prof workload.Profile) func(int) engine.Engine {
	return func(int) engine.Engine {
		return experiments.NewEngine(experiments.SelectDedupe, experiments.BuildConfig(prof, testScale))
	}
}

// writeAt Do()s one single-chunk write and returns once acknowledged.
func writeAt(t *testing.T, srv *Server, tm int64, lba uint64, id chunk.ContentID) {
	t.Helper()
	if _, err := srv.Do(&Request{Time: tm, Op: trace.Write, LBA: lba, Content: []chunk.ContentID{id}}); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverAfterGracefulDrain checks the clean half of the shutdown
// story: every write acknowledged before Close survives a crash and
// per-shard NVRAM recovery with its content intact.
func TestRecoverAfterGracefulDrain(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{Shards: 4, NewEngine: selectDedupeFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}

	// concurrent writers over disjoint LBA stripes (shards get mixed
	// traffic because consecutive granules round-robin)
	const writers, perWriter = 4, 200
	model := make([]map[uint64]chunk.ContentID, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		model[w] = make(map[uint64]chunk.ContentID)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				lba := uint64(w)*4*DefaultGranChunks + uint64(i)*17%(4*DefaultGranChunks)
				id := chunk.ContentID(w*1000000 + i + 1)
				if _, err := srv.Do(&Request{Time: int64(i) * 100, Op: trace.Write, LBA: lba, Content: []chunk.ContentID{id}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				model[w][lba] = id
			}
		}(w)
	}
	wg.Wait()
	srv.Close()

	if _, err := srv.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	for w := range model {
		for lba, want := range model[w] {
			got, ok := srv.ReadContent(lba)
			if !ok || got != uint64(want) {
				t.Fatalf("lba %d after recovery: %d,%v want %d", lba, got, ok, want)
			}
		}
	}
}

// TestCrashMidServeTornJournal injects an NVRAM crash on one shard
// while the server is actively serving: the next journal record tears
// mid-write and everything after it is dropped. After the drain and
// recovery, all writes acknowledged before the fault must survive on
// every shard, the unaffected shard keeps its later writes too, and
// post-fault writes on the crashed shard must NOT have become durable.
func TestCrashMidServeTornJournal(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{Shards: 2, NewEngine: selectDedupeFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	// granule 0 → shard 0, granule 1 → shard 1
	shard0, shard1 := uint64(0), uint64(DefaultGranChunks)
	if srv.Shard(shard0) != 0 || srv.Shard(shard1) != 1 {
		t.Fatalf("granule routing changed: %d,%d", srv.Shard(shard0), srv.Shard(shard1))
	}

	// phase 1: acknowledged on both shards before the fault
	preCrash := map[uint64]chunk.ContentID{}
	for i := uint64(0); i < 50; i++ {
		writeAt(t, srv, int64(i*100), shard0+i, chunk.ContentID(i+1))
		writeAt(t, srv, int64(i*100), shard1+i, chunk.ContentID(1000+i+1))
		preCrash[shard0+i] = chunk.ContentID(i + 1)
		preCrash[shard1+i] = chunk.ContentID(1000 + i + 1)
	}

	// power fails on shard 0's journal: the record of its next write
	// tears after 10 of its 20 bytes
	srv.WithEngine(0, func(e engine.Engine) {
		e.(baser).Base().NVRAM().ArmCrash(10)
	})

	// phase 2: keep serving through the (not-yet-noticed) fault from
	// several goroutines, fresh LBAs only
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); i < 50; i++ {
				base := shard0 + 500
				if w%2 == 1 {
					base = shard1 + 500
				}
				lba := base + uint64(w/2)*100 + i
				if _, err := srv.Do(&Request{Time: 10000 + int64(i)*100, Op: trace.Write, LBA: lba,
					Content: []chunk.ContentID{chunk.ContentID(5000 + uint64(w)*1000 + i)}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	srv.Close()

	applied, err := srv.CrashAndRecover()
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 {
		t.Fatal("no journal records replayed")
	}

	// pre-fault acknowledged state survives on both shards
	for lba, want := range preCrash {
		got, ok := srv.ReadContent(lba)
		if !ok || got != uint64(want) {
			t.Fatalf("pre-crash lba %d after recovery: %d,%v want %d", lba, got, ok, want)
		}
	}
	// shard 1 never crashed: its post-fault writes are durable
	for i := uint64(0); i < 50; i++ {
		if _, ok := srv.ReadContent(shard1 + 500 + i); !ok {
			t.Fatalf("healthy shard lost post-fault write at lba %d", shard1+500+i)
		}
	}
	// shard 0's post-fault writes were journaled into a dead device:
	// none of them may survive recovery
	for i := uint64(0); i < 50; i++ {
		if _, ok := srv.ReadContent(shard0 + 500 + i); ok {
			t.Fatalf("torn write at lba %d survived the crash", shard0+500+i)
		}
	}

	// the recovered server substrate is restartable: a fresh server
	// over the recovered engines keeps serving (recovery harness
	// round-trip, mirroring internal/core's TestEngineUsableAfterRecovery)
	if n, err := srv.CrashAndRecover(); err != nil || n == 0 {
		t.Fatalf("second recovery: %d, %v", n, err)
	}
}

// TestCrashAndRecoverRequiresClose documents the quiescence contract.
func TestCrashAndRecoverRequiresClose(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{Shards: 1, NewEngine: selectDedupeFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := srv.CrashAndRecover(); err == nil {
		t.Fatal("recovery allowed while serving")
	}
	srv.Close()
}
