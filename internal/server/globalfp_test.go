package server

import (
	"testing"

	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// globalFPFactory builds POD shard engines with the bgdedup scanner
// attached — the configuration the tier's agents wrap, exactly as
// podload arms it.
func globalFPFactory(prof workload.Profile) func(int) engine.Engine {
	return func(int) engine.Engine {
		e := experiments.NewEngine(experiments.POD, experiments.BuildConfig(prof, testScale))
		bgdedup.Attach(e, bgdedup.Params{})
		return e
	}
}

// shardLBAs finds one granule-aligned LBA owned by each shard.
func shardLBAs(s *Server) []uint64 {
	out := make([]uint64, s.Shards())
	found := 0
	for g := uint64(0); found < s.Shards(); g++ {
		lba := g * DefaultGranChunks
		sid := s.Shard(lba)
		if out[sid] == 0 && (sid != s.Shard(0) || g == 0) {
			out[sid] = lba
			found++
		}
	}
	return out
}

// TestGlobalFPEndToEnd drives the full tier through the serving layer:
// the same content stream written to every shard, settlement at Close,
// the cross-shard audit, content verification through the remote-hop
// ReadContent path, and crash recovery with re-verification.
func TestGlobalFPEndToEnd(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{
		Shards:    4,
		GlobalFP:  true,
		NewEngine: globalFPFactory(prof),
	})
	if err != nil {
		t.Fatal(err)
	}
	lbas := shardLBAs(srv)

	// Every shard receives the same content per round — the worst case
	// for LBA sharding (every copy is a cross-shard duplicate) and the
	// best case for the tier.
	const rounds, n = 16, 8
	content := func(round int) []chunk.ContentID {
		ids := make([]chunk.ContentID, n)
		for i := range ids {
			ids[i] = chunk.ContentID(10000 + round*n + i)
		}
		return ids
	}
	at := int64(0)
	for round := 0; round < rounds; round++ {
		for _, base := range lbas {
			at += 1000
			if _, err := srv.Do(&Request{
				Time: at, Op: trace.Write,
				LBA: base + uint64(round*n), Content: content(round),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	snap := srv.Stats()
	g := snap.Metrics.Gauges
	if g["globalfp_hints_installed"] == 0 {
		t.Fatalf("no hints installed: %v", g)
	}
	if g["globalfp_remaps_applied"]+snap.Engine.RemoteDeduped == 0 {
		t.Fatal("tier neither folded a duplicate nor enabled a remote inline dedupe")
	}
	// One physical copy per distinct content across the whole cluster:
	// rounds*n canonical blocks, not shards× that.
	if snap.UsedBlocks != rounds*n {
		t.Fatalf("cluster uses %d blocks, want %d (one canonical per distinct content)", snap.UsedBlocks, rounds*n)
	}
	// Inline removal needs hints to beat this closed-loop burst in real
	// time — not guaranteed — so assert the satellite gauges are
	// registered rather than a particular value (the deterministic
	// inline-recovery property is covered in internal/globalfp).
	if _, ok := g["server_writes_removed_pct_x100"]; !ok {
		t.Fatal("aggregate writes-removed gauge not registered")
	}
	if _, ok := g[`server_writes_removed_pct_x100{shard="0"}`]; !ok {
		t.Fatalf("per-shard writes-removed gauge not registered: %v", g)
	}

	verify := func() {
		for round := 0; round < rounds; round++ {
			ids := content(round)
			for _, base := range lbas {
				for i := 0; i < n; i++ {
					lba := base + uint64(round*n+i)
					got, ok := srv.ReadContent(lba)
					if !ok || got != uint64(ids[i]) {
						t.Fatalf("lba %d: content %d,%v want %d", lba, got, ok, ids[i])
					}
				}
			}
		}
	}
	verify()

	if _, err := srv.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	verify()
	if err := srv.CheckConsistency(); err != nil {
		t.Fatalf("post-recovery: %v", err)
	}
}

// TestGlobalFPRequiresMultipleShards: the tier over one shard is a
// configuration error, surfaced at New.
func TestGlobalFPRequiresMultipleShards(t *testing.T) {
	prof := workload.WebVM()
	if _, err := New(Config{
		Shards:    1,
		GlobalFP:  true,
		NewEngine: globalFPFactory(prof),
	}); err == nil {
		t.Fatal("GlobalFP with one shard accepted")
	}
}

// TestGlobalFPRejectsEnginesWithoutSubstrate: engines that cannot
// expose a Map-table substrate (Native) cannot host a shard agent.
func TestGlobalFPRejectsEnginesWithoutSubstrate(t *testing.T) {
	prof := workload.WebVM()
	if _, err := New(Config{
		Shards:   2,
		GlobalFP: true,
		NewEngine: func(int) engine.Engine {
			return experiments.NewEngine(experiments.Native, experiments.BuildConfig(prof, testScale))
		},
	}); err == nil {
		t.Fatal("GlobalFP over Native engines accepted")
	}
}
