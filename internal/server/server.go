// Package server is the concurrent volume-serving layer over the POD
// storage engines: the piece that turns the single-trace, synchronous
// replay harness into something shaped like a primary storage front
// end serving many tenants at once.
//
// The LBA space is sharded across N independent engine instances —
// each shard owns its own allocator, fingerprint index, map table,
// NVRAM journal and read cache, so the hot path takes no cross-shard
// locks. A router dispatches each request to the worker goroutine of
// the shard owning its first chunk over a bounded channel; when a
// shard's queue is full the server either blocks the submitter or
// sheds the request, per the configured backpressure policy. Workers
// opportunistically drain their queue in batches, amortizing
// synchronization over several requests.
//
// Time has two domains here. Engines compute *simulated* service
// times from request virtual timestamps; the server additionally
// models per-shard queueing in that same virtual domain (a request
// arriving while its shard is busy starts when the shard frees up, and
// its reported sojourn includes the wait). Wall-clock concurrency —
// the worker goroutines — is real, so serving throughput of the
// harness itself also scales with shards. With a single shard, a
// single client, and Passthrough timing the server is byte-identical
// to the direct replay path; see TestBridgeByteIdenticalToReplay.
package server

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/api"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/globalfp"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
)

// Policy selects the backpressure behavior when a shard queue is full.
type Policy int

// Backpressure policies.
const (
	// Block makes Submit wait until the shard queue has room — the
	// default, load is pushed back onto the client.
	Block Policy = iota
	// Shed makes Submit fail fast with ErrShed, counting the drop.
	Shed
)

// String names the policy ("block" or "shed").
func (p Policy) String() string {
	if p == Shed {
		return "shed"
	}
	return "block"
}

// ParsePolicy resolves "block" or "shed".
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "block":
		return Block, nil
	case "shed":
		return Shed, nil
	}
	return Block, fmt.Errorf("server: unknown backpressure policy %q (want block or shed)", s)
}

// Timing selects how request virtual timestamps reach the engines.
type Timing int

// Timing modes.
const (
	// Queued models each shard as a FCFS queue in virtual time: a
	// request starts at max(arrival, shard next-free) and its sojourn
	// includes the queue wait. This is the serving-mode default.
	Queued Timing = iota
	// Passthrough hands arrival timestamps to the engine unchanged
	// (clamped to be non-decreasing per shard) and reports bare
	// service times — the determinism bridge to the replay path.
	Passthrough
)

// Sentinel errors of the submission path.
var (
	ErrClosed = errors.New("server: closed")
	ErrShed   = errors.New("server: request shed (shard queue full)")
)

// Config assembles a server.
type Config struct {
	// Shards is the number of independent engine instances (default 1).
	Shards int
	// GranChunks is the routing granule in chunks (default
	// DefaultGranChunks).
	GranChunks uint64
	// QueueDepth bounds each shard's request channel (default 128).
	QueueDepth int
	// MaxBatch bounds how many queued requests a worker drains and
	// serves per synchronization round (default 32).
	MaxBatch int
	// Policy is the backpressure policy when a queue is full.
	Policy Policy
	// Timing selects Queued (serving) or Passthrough (replay-bridge)
	// timestamp handling.
	Timing Timing
	// NewEngine constructs shard i's engine. Each call must return a
	// fresh engine over fresh substrates; shards share nothing.
	NewEngine func(shard int) engine.Engine

	// GlobalFP enables the global fingerprint tier: an async
	// fingerprint-sharded second index that detects cross-shard
	// duplicates and recovers the dedup ratio lost to LBA sharding.
	// Requires 2–64 shards and engines exposing a Map-table substrate
	// (Select-Dedupe or POD); see internal/globalfp.
	GlobalFP bool
	// GlobalFPParams tunes the tier; zero values select defaults.
	GlobalFPParams globalfp.Params

	// TraceSample, when positive, records every TraceSample-th request
	// served by each shard as a structured trace (full phase timeline)
	// into a per-shard ring buffer drained via Traces(). 0 disables
	// sampling.
	TraceSample int
	// TraceBuf caps each shard's trace ring (default 256).
	TraceBuf int

	// Fault-handling policy. All times are virtual microseconds; the
	// whole retry/backoff machinery runs in the simulated time domain
	// and is deterministic for a given RetrySeed.

	// MaxRetries bounds re-attempts after a transient storage fault
	// (default 3; -1 disables retries). Permanent faults never retry.
	MaxRetries int
	// RetryBaseUS is the first backoff (default 200 µs); each further
	// attempt doubles it up to RetryMaxUS (default 20 ms). A
	// deterministic jitter in [0, backoff/2) is added on top.
	RetryBaseUS int64
	RetryMaxUS  int64
	// RetrySeed seeds the jitter sequence (default 1).
	RetrySeed uint64
	// DeadlineUS is the per-request virtual-time budget measured from
	// arrival: when queueing or a scheduled retry would start past it,
	// the request fails with KindDeadlineExceeded. 0 disables deadlines.
	DeadlineUS int64
	// BreakerThreshold opens a shard's circuit breaker after this many
	// consecutive terminal failures (default 8; -1 disables). An open
	// breaker sheds requests with KindUnavailable until
	// BreakerCooldownUS (default 200 ms) of virtual time passes, then
	// admits one probe: success closes the breaker, failure re-opens it.
	BreakerThreshold  int
	BreakerCooldownUS int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Shards == 0 {
		c.Shards = 1
	}
	if c.Shards < 0 {
		return c, fmt.Errorf("server: %d shards", c.Shards)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
	if c.QueueDepth < 1 {
		return c, fmt.Errorf("server: queue depth %d", c.QueueDepth)
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 32
	}
	if c.MaxBatch < 1 {
		return c, fmt.Errorf("server: max batch %d", c.MaxBatch)
	}
	if c.NewEngine == nil {
		return c, errors.New("server: Config.NewEngine is required")
	}
	if c.TraceSample < 0 {
		return c, fmt.Errorf("server: trace sample %d (want >= 0)", c.TraceSample)
	}
	if c.TraceBuf == 0 {
		c.TraceBuf = 256
	}
	if c.TraceBuf < 1 {
		return c, fmt.Errorf("server: trace buffer %d", c.TraceBuf)
	}
	switch {
	case c.MaxRetries == 0:
		c.MaxRetries = 3
	case c.MaxRetries == -1:
		c.MaxRetries = 0
	case c.MaxRetries < -1:
		return c, fmt.Errorf("server: max retries %d", c.MaxRetries)
	}
	if c.RetryBaseUS == 0 {
		c.RetryBaseUS = 200
	}
	if c.RetryBaseUS < 0 {
		return c, fmt.Errorf("server: retry base %dus", c.RetryBaseUS)
	}
	if c.RetryMaxUS == 0 {
		c.RetryMaxUS = 20000
	}
	if c.RetryMaxUS < c.RetryBaseUS {
		return c, fmt.Errorf("server: retry max %dus below base %dus", c.RetryMaxUS, c.RetryBaseUS)
	}
	if c.RetrySeed == 0 {
		c.RetrySeed = 1
	}
	if c.DeadlineUS < 0 {
		return c, fmt.Errorf("server: deadline %dus", c.DeadlineUS)
	}
	switch {
	case c.BreakerThreshold == 0:
		c.BreakerThreshold = 8
	case c.BreakerThreshold == -1:
		// disabled
	case c.BreakerThreshold < -1:
		return c, fmt.Errorf("server: breaker threshold %d", c.BreakerThreshold)
	}
	if c.BreakerCooldownUS == 0 {
		c.BreakerCooldownUS = 200000
	}
	if c.BreakerCooldownUS < 0 {
		return c, fmt.Errorf("server: breaker cooldown %dus", c.BreakerCooldownUS)
	}
	return c, nil
}

// Request is one block-level I/O submitted to the server — the shared
// api.Request type the public pod package also exposes, so requests
// built against either surface are interchangeable. Request.Time is
// the virtual arrival time (open-loop generators stamp their own
// schedule here; per shard it need not be monotone — the timing mode
// clamps). LBA and lengths are in 4 KiB chunks; writes carry a content
// ID per chunk.
type Request = api.Request

// Result is the completion record of one request (shared api.Result):
// Sojourn is queue wait + service under Queued timing, equal to
// Service under Passthrough.
type Result = api.Result

// envelope is one shard-queue entry: either a single request with its
// optional completion channel (Submit leaves done nil, Do sets it), or
// a batch of requests bound for the same shard (SubmitBatch; batches
// never carry completion channels).
type envelope struct {
	req   *Request
	done  chan Result
	batch []*Request
}

type shard struct {
	id  int
	ch  chan envelope
	eng engine.Engine

	// metric handles resolved at construction: the engine's phase set
	// (queue wait is observed into it after each serve so sampled
	// traces carry the full timeline) and shard-labeled queue-wait and
	// service histograms, registered in the shard engine's registry.
	ph    *metrics.PhaseSet
	qwait *metrics.Histogram
	svc   *metrics.Histogram
	seq   int64
	ring  *metrics.TraceRing

	// mu serializes the worker's serving rounds against snapshots,
	// ReadContent, WithEngine, and recovery. The worker holds it only
	// while serving a drained batch, never while blocked on the
	// channel.
	mu        sync.Mutex
	nextFree  sim.Time // Queued: virtual time the engine frees up
	lastStart sim.Time // monotonicity clamp for Passthrough
	lat       *stats.Histogram
	completed int64
	batches   int64
	maxBatch  int
	firstArr  sim.Time
	lastDone  sim.Time
	anyServed bool

	// fault-handling state, all under mu (the registry's GaugeFunc
	// callbacks for these counters are evaluated by Stats(), which also
	// holds mu)
	retrySeq    uint64 // deterministic jitter counter
	retries     int64
	failed      int64 // requests that ended in a terminal error
	deadlined   int64
	consecFails int      // consecutive terminal failures (breaker input)
	brOpen      bool     // circuit breaker open
	brUntil     sim.Time // virtual time the breaker half-opens
	brOpens     int64
	brShed      int64 // requests refused with KindUnavailable

	// per-shard failure domain (CrashShard/RecoverShard): while down,
	// the queue fail-replies everything with KindShardDown instead of
	// touching the engine
	down        bool
	downRefused int64
}

// flusher matches engines with background work to drain at shutdown
// (same contract as replay.Flusher, declared locally to keep the
// dependency arrow pointing one way).
type flusher interface {
	Flush(now sim.Time)
}

// Server is a sharded volume service.
type Server struct {
	cfg    Config
	router Router
	shards []*shard

	// reg holds server-level metrics (shed count); per-shard serving
	// metrics live in each shard engine's registry under shard labels.
	reg *metrics.Registry

	// global fingerprint tier (nil unless Config.GlobalFP)
	tier       *globalfp.Tier
	agents     []*globalfp.Agent
	settleOnce sync.Once

	// downMask mirrors the shards' down flags as a bitmask readable
	// without locks: engines consult it mid-request (RemoteDown) and
	// DownShards reports it to operators.
	downMask atomic.Uint64

	wg      sync.WaitGroup
	closeMu sync.RWMutex
	closed  bool

	errMu    sync.Mutex
	closeErr error // first worker failure, reported by Close

	shed int64 // atomic
}

// recordErr keeps the first worker failure for Close to report.
func (s *Server) recordErr(err error) {
	s.errMu.Lock()
	if s.closeErr == nil {
		s.closeErr = err
	}
	s.errMu.Unlock()
}

// New builds and starts a server: engines are constructed and one
// worker goroutine per shard begins consuming its queue.
func New(cfg Config) (*Server, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:    cfg,
		router: NewRouter(cfg.Shards, cfg.GranChunks),
		shards: make([]*shard, cfg.Shards),
		reg:    metrics.NewRegistry(),
	}
	s.reg.GaugeFunc("server_shed_total", func() int64 { return atomic.LoadInt64(&s.shed) })
	for i := range s.shards {
		eng := cfg.NewEngine(i)
		if eng == nil {
			return nil, fmt.Errorf("server: NewEngine(%d) returned nil", i)
		}
		label := strconv.Itoa(i)
		reg := eng.Metrics()
		sh := &shard{
			id:    i,
			ch:    make(chan envelope, cfg.QueueDepth),
			eng:   eng,
			lat:   stats.NewHistogram(),
			ph:    reg.Phases(),
			qwait: reg.Histogram(metrics.Labeled("server_queue_wait_us", "shard", label)),
			svc:   reg.Histogram(metrics.Labeled("server_service_us", "shard", label)),
		}
		if cfg.TraceSample > 0 {
			sh.ring = metrics.NewTraceRing(cfg.TraceBuf)
		}
		// queue depth is read by snapshots while the worker serves;
		// len() on a channel is safe from other goroutines
		reg.GaugeFunc(metrics.Labeled("server_queue_depth", "shard", label),
			func() int64 { return int64(len(sh.ch)) })
		// fault-handling counters (written under sh.mu; Stats evaluates
		// the engine registry snapshot while holding sh.mu, so these
		// callbacks never race the worker)
		reg.GaugeFunc(metrics.Labeled("server_retries", "shard", label),
			func() int64 { return sh.retries })
		reg.GaugeFunc(metrics.Labeled("server_failed", "shard", label),
			func() int64 { return sh.failed })
		reg.GaugeFunc(metrics.Labeled("server_deadline_exceeded", "shard", label),
			func() int64 { return sh.deadlined })
		reg.GaugeFunc(metrics.Labeled("server_breaker_opens", "shard", label),
			func() int64 { return sh.brOpens })
		reg.GaugeFunc(metrics.Labeled("server_breaker_shed", "shard", label),
			func() int64 { return sh.brShed })
		reg.GaugeFunc(metrics.Labeled("server_breaker_open", "shard", label),
			func() int64 {
				if sh.brOpen {
					return 1
				}
				return 0
			})
		reg.GaugeFunc(metrics.Labeled("server_shard_down", "shard", label),
			func() int64 {
				if sh.down {
					return 1
				}
				return 0
			})
		reg.GaugeFunc(metrics.Labeled("server_shard_down_refused", "shard", label),
			func() int64 { return sh.downRefused })
		s.shards[i] = sh
	}
	s.initRemovalGauges()
	if cfg.GlobalFP {
		if err := s.initGlobalFP(); err != nil {
			return nil, err
		}
	}
	for _, sh := range s.shards {
		s.wg.Add(1)
		go s.worker(sh)
	}
	return s, nil
}

// Shards reports the shard count.
func (s *Server) Shards() int { return s.cfg.Shards }

// Shard reports which shard owns lba.
func (s *Server) Shard(lba uint64) int { return s.router.Shard(lba) }

// worker serves one shard: it blocks for a request, then drains up to
// MaxBatch-1 more without blocking and serves the whole batch under
// one lock acquisition. When the channel closes it finishes the
// backlog (a closed channel yields its buffered requests first) and
// flushes the engine's background work.
//
// A panic anywhere in the serving path (a corrupted engine invariant)
// does not take down the process: the worker records the failure for
// Close to report and fail-drains its queue — every queued and future
// request on the shard completes with KindUnavailable instead of
// blocking its submitter forever.
func (s *Server) worker(sh *shard) {
	defer s.wg.Done()
	batch := make([]envelope, 0, s.cfg.MaxBatch)
	served := 0 // within the current batch; the recover path fails the rest
	failEnv := func(env envelope) {
		if env.done != nil && env.req != nil {
			env.done <- Result{Shard: sh.id,
				Err: fault.New(fault.KindUnavailable, fault.Permanent, -1, 0, sim.Time(env.req.Time))}
		}
	}
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		s.recordErr(fmt.Errorf("server: shard %d worker panicked: %v", sh.id, r))
		// the drained-but-unserved tail of the current batch first (the
		// request that panicked included — its submitter is blocked in
		// Do), then everything queued and yet to come
		for _, env := range batch[served:] {
			failEnv(env)
		}
		for env := range sh.ch {
			failEnv(env)
		}
	}()
	// serve under the lock in a closure so a panic releases sh.mu on
	// the way to the fail-drain recover above
	serveBatch := func() {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		for _, r := range batch[served:] {
			if r.batch != nil {
				for _, req := range r.batch {
					sh.serve(envelope{req: req}, &s.cfg)
				}
			} else {
				sh.serve(r, &s.cfg)
			}
			served++
		}
		sh.batches++
		if len(batch) > sh.maxBatch {
			sh.maxBatch = len(batch)
		}
	}
	for {
		r, ok := <-sh.ch
		if !ok {
			break
		}
		batch, served = append(batch[:0], r), 0
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case r2, ok2 := <-sh.ch:
				if !ok2 {
					break fill
				}
				batch = append(batch, r2)
			default:
				break fill
			}
		}
		serveBatch()
	}
	func() {
		sh.mu.Lock()
		defer sh.mu.Unlock()
		// a crashed shard's engine is conceptually powered off; its
		// background work is rebuilt at recovery, not flushed
		if f, ok := sh.eng.(flusher); ok && !sh.down {
			f.Flush(sh.lastStart)
		}
	}()
}

// backoff computes the virtual-time delay before retry attempt (1-based)
// plus a deterministic jitter in [0, delay/2).
func (sh *shard) backoff(cfg *Config, attempt int) sim.Duration {
	d := cfg.RetryBaseUS
	for i := 1; i < attempt && d < cfg.RetryMaxUS; i++ {
		d <<= 1
	}
	if d > cfg.RetryMaxUS {
		d = cfg.RetryMaxUS
	}
	sh.retrySeq++
	if half := uint64(d / 2); half > 0 {
		d += int64(splitmix64(cfg.RetrySeed^uint64(sh.id)<<32^sh.retrySeq) % half)
	}
	return sim.Duration(d)
}

// splitmix64 is the standard 64-bit mixer (jitter coin).
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// serve runs one request through the shard engine, applying the fault
// policy: transient engine errors are retried with exponential backoff
// and deterministic jitter in virtual time, a virtual deadline bounds
// queueing plus retries, and a per-shard circuit breaker sheds to
// degraded service after sustained terminal failures. Caller holds
// sh.mu.
func (sh *shard) serve(env envelope, cfg *Config) {
	r := env.req
	arrival := sim.Time(r.Time)

	// crashed shard: fail-reply everything with a typed transient error
	// — the engine is conceptually powered off. Clients retry against
	// their own deadlines; the other shards keep serving.
	if sh.down {
		sh.downRefused++
		sh.failed++
		if env.done != nil {
			env.done <- Result{Shard: sh.id, Start: int64(arrival), Complete: int64(arrival),
				Err: fault.New(fault.KindShardDown, fault.Transient, -1, 0, arrival)}
		}
		return
	}

	// circuit breaker: while open, refuse without touching the engine;
	// after the cooldown the next request is the half-open probe.
	if cfg.BreakerThreshold > 0 && sh.brOpen && arrival < sh.brUntil {
		sh.brShed++
		if env.done != nil {
			env.done <- Result{Shard: sh.id, Start: int64(arrival), Complete: int64(arrival),
				Err: fault.New(fault.KindUnavailable, fault.Transient, -1, 0, arrival)}
		}
		return
	}

	start := arrival
	switch cfg.Timing {
	case Queued:
		if start < sh.nextFree {
			start = sh.nextFree
		}
	case Passthrough:
		if start < sh.lastStart {
			start = sh.lastStart
		}
	}

	var deadline sim.Time
	if cfg.DeadlineUS > 0 {
		deadline = arrival.Add(sim.Duration(cfg.DeadlineUS))
	}

	var rt sim.Duration
	var err error
	retries := 0
	complete := start
	if deadline > 0 && start >= deadline {
		// the queue wait alone blew the budget
		err = fault.New(fault.KindDeadlineExceeded, fault.Permanent, -1, 0, start)
	} else {
		for {
			treq := trace.Request{Time: start, Op: r.Op, LBA: r.LBA, N: r.Len(), Stream: r.Stream, Content: r.Content}
			if r.Op == trace.Write {
				rt, err = sh.eng.Write(&treq)
			} else {
				rt, err = sh.eng.Read(&treq)
			}
			complete = start.Add(rt)
			if err == nil || !fault.IsTransient(err) || retries >= cfg.MaxRetries {
				break
			}
			next := complete.Add(sh.backoff(cfg, retries+1))
			if deadline > 0 && next >= deadline {
				err = fault.New(fault.KindDeadlineExceeded, fault.Permanent, -1, 0, complete)
				break
			}
			retries++
			sh.retries++
			start = next
		}
	}

	sojourn := complete.Sub(arrival)
	svc := complete.Sub(start)
	if cfg.Timing == Passthrough {
		sojourn = rt
	} else {
		sh.nextFree = complete
	}
	sh.lastStart = start
	sh.seq++
	if !sh.anyServed || arrival < sh.firstArr {
		sh.firstArr = arrival
	}
	if complete > sh.lastDone {
		sh.lastDone = complete
	}
	sh.anyServed = true

	if err != nil {
		sh.failed++
		if fe, ok := err.(*fault.Error); ok && fe.Kind == fault.KindDeadlineExceeded {
			sh.deadlined++
		}
		// breaker accounting: sustained terminal failures trip it; a
		// failed half-open probe re-arms the cooldown
		if cfg.BreakerThreshold > 0 {
			sh.consecFails++
			if sh.brOpen || sh.consecFails >= cfg.BreakerThreshold {
				if !sh.brOpen {
					sh.brOpens++
				}
				sh.brOpen = true
				sh.brUntil = complete.Add(sim.Duration(cfg.BreakerCooldownUS))
			}
		}
		if env.done != nil {
			env.done <- Result{Shard: sh.id, Start: int64(start), Complete: int64(complete),
				Service: int64(svc), Sojourn: int64(sojourn), Retries: retries, Err: err}
		}
		return
	}
	sh.consecFails = 0
	sh.brOpen = false // a success closes a half-open breaker

	// The engine's StartRequest reset the phase scratch at the top of
	// its Write/Read, so queue wait must be observed after the engine
	// returns for the sampled timeline to include it.
	qw := int64(start.Sub(arrival))
	sh.ph.Observe(metrics.PhaseQueueWait, qw)
	sh.qwait.Observe(qw)
	sh.svc.Observe(int64(rt))

	sh.lat.Add(int64(sojourn))
	sh.completed++

	if cfg.TraceSample > 0 && sh.seq%int64(cfg.TraceSample) == 0 {
		sh.ring.Add(metrics.TraceRecord{
			Seq:      sh.seq,
			Shard:    sh.id,
			Op:       r.Op.String(),
			LBA:      r.LBA,
			Chunks:   r.Len(),
			Arrival:  int64(arrival),
			Start:    int64(start),
			Complete: int64(complete),
			Service:  int64(rt),
			Sojourn:  int64(sojourn),
			Phases:   sh.ph.LastTimeline(),
		})
	}

	if env.done != nil {
		env.done <- Result{Shard: sh.id, Start: int64(start), Complete: int64(complete),
			Service: int64(rt), Sojourn: int64(sojourn), Retries: retries}
	}
}

// Submit routes r to its shard's queue and returns without waiting for
// completion. Under the Block policy a full queue blocks the caller;
// under Shed it returns ErrShed. After Close it returns ErrClosed.
func (s *Server) Submit(r *Request) error {
	return s.submit(envelope{req: r})
}

func (s *Server) submit(env envelope) error {
	r := env.req
	if err := r.Validate(); err != nil {
		return fmt.Errorf("server: %w", err)
	}
	sh := s.shards[s.router.Shard(r.LBA)]
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	if s.cfg.Policy == Shed {
		select {
		case sh.ch <- env:
			return nil
		default:
			atomic.AddInt64(&s.shed, 1)
			return ErrShed
		}
	}
	sh.ch <- env
	return nil
}

// SubmitBatch routes a batch of requests in one call: the batch is
// bucketed per destination shard, preserving order, and each shard
// receives its whole bucket as a single queue entry — one channel
// send (and one queue slot) per touched shard instead of one per
// request, which is what keeps cross-shard submission off the profile
// at high shard counts. Ownership of the slice transfers to the
// server; the caller must not mutate or reuse the backing array until
// the requests have been served (in practice: allocate a fresh batch
// per call).
//
// The whole batch is validated before anything is enqueued; a
// validation error rejects the batch without side effects. Under the
// Shed policy a full shard queue drops that shard's entire bucket
// (every dropped request is counted); other shards' buckets still
// land. Under Block a full queue blocks the caller, exactly like
// Submit. After Close it returns ErrClosed.
func (s *Server) SubmitBatch(reqs []Request) error {
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return fmt.Errorf("server: %w", err)
		}
	}
	buckets := make([][]*Request, len(s.shards))
	for i := range reqs {
		sid := s.router.Shard(reqs[i].LBA)
		buckets[sid] = append(buckets[sid], &reqs[i])
	}
	s.closeMu.RLock()
	defer s.closeMu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for sid, b := range buckets {
		if len(b) == 0 {
			continue
		}
		env := envelope{batch: b}
		if s.cfg.Policy == Shed {
			select {
			case s.shards[sid].ch <- env:
			default:
				atomic.AddInt64(&s.shed, int64(len(b)))
			}
			continue
		}
		s.shards[sid].ch <- env
	}
	return nil
}

// Do submits r and waits for its completion record.
func (s *Server) Do(r *Request) (Result, error) {
	env := envelope{req: r, done: make(chan Result, 1)}
	if err := s.submit(env); err != nil {
		return Result{}, err
	}
	return <-env.done, nil
}

// Close is the graceful drain: new submissions are refused, every
// queued request is served, background engine work is flushed, and the
// workers exit. It is idempotent and safe to call concurrently — the
// first caller closes the queues, every caller waits for the drain to
// finish, and all callers return the same first worker failure (nil on
// a clean drain). It is also safe to call concurrently with Submit (a
// submitter blocked on a full queue completes its send before Close
// proceeds, and that request is served).
func (s *Server) Close() error {
	s.closeMu.Lock()
	already := s.closed
	s.closed = true
	s.closeMu.Unlock()
	if !already {
		for _, sh := range s.shards {
			close(sh.ch)
		}
	}
	s.wg.Wait()
	if s.tier != nil {
		// Settlement: with the workers drained, stop the ad queues and
		// run the tier protocol to quiescence (every caller of a
		// concurrent Close waits for it; the work runs once).
		s.settleOnce.Do(s.settleGlobalFP)
	}
	s.errMu.Lock()
	defer s.errMu.Unlock()
	return s.closeErr
}

// WithEngine runs fn against shard i's engine while that shard's
// serving loop is paused — the hook tests use to inject faults
// (nvram.Device.ArmCrash) mid-serve without racing the worker.
func (s *Server) WithEngine(i int, fn func(engine.Engine)) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	fn(sh.eng)
}

// ReadContent resolves lba through its owning shard's engine (the
// verification path; no simulated I/O). With the global fingerprint
// tier enabled a mapping may name a canonical block on another shard:
// the remote reference is resolved under the local shard's lock, then
// the content is read under the owner's — two sequential acquisitions,
// never nested, so shard lock order stays acyclic.
func (s *Server) ReadContent(lba uint64) (uint64, bool) {
	sh := s.shards[s.router.Shard(lba)]
	sh.mu.Lock()
	if id, ok := sh.eng.ReadContent(lba); ok {
		sh.mu.Unlock()
		return id, true
	}
	if s.tier != nil {
		if h, ok := sh.eng.(baseHolder); ok {
			if enc, ok := h.Base().ResolveRemote(lba); ok {
				owner, canon := alloc.RemoteParts(enc)
				sh.mu.Unlock()
				osh := s.shards[owner]
				osh.mu.Lock()
				defer osh.mu.Unlock()
				if oh, ok := osh.eng.(baseHolder); ok {
					if id, live := oh.Base().Store.Read(canon); live {
						return uint64(id), true
					}
				}
				return 0, false
			}
		}
	}
	sh.mu.Unlock()
	return 0, false
}

// CrashAndRecover simulates a whole-node power failure after Close:
// every shard loses DRAM state and rebuilds its map table from its
// NVRAM journal. It returns the total journal records replayed across
// shards, and an error if the server is still serving or any shard's
// engine lacks recovery support.
func (s *Server) CrashAndRecover() (int, error) {
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if !closed {
		return 0, errors.New("server: CrashAndRecover before Close")
	}
	if s.tier != nil {
		return s.recoverGlobalFP()
	}
	total := 0
	for _, sh := range s.shards {
		r, ok := sh.eng.(interface{ CrashAndRecover() (int, error) })
		if !ok {
			return total, fmt.Errorf("server: shard %d engine %s does not support crash recovery", sh.id, sh.eng.Name())
		}
		n, err := r.CrashAndRecover()
		if err != nil {
			return total, fmt.Errorf("server: shard %d: %w", sh.id, err)
		}
		total += n
	}
	s.clearDown()
	return total, nil
}

// clearDown marks every shard live again — whole-node recovery
// supersedes any per-shard outage.
func (s *Server) clearDown() {
	for _, sh := range s.shards {
		sh.down = false
	}
	s.downMask.Store(0)
}

// DownShards lists the shards currently crashed by CrashShard, in
// ascending order. Lock-free; usable mid-serve and from gauges.
func (s *Server) DownShards() []int {
	mask := s.downMask.Load()
	var out []int
	for i := 0; i < s.cfg.Shards; i++ {
		if mask&(uint64(1)<<uint(i)) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// ShardSnapshot is one shard's contribution to a Snapshot.
type ShardSnapshot struct {
	Shard     int
	Completed int64
	Queued    int // requests waiting in the channel at snapshot time
	Batches   int64
	MaxBatch  int
}

// Snapshot is a merged view of the server's counters: per-shard engine
// statistics aggregated with engine.Stats.Merge, sojourn latency
// histograms merged, plus serving-layer counters.
type Snapshot struct {
	Shards     int
	Completed  int64
	ShedCount  int64
	Engine     *engine.Stats    // merged across shards
	Latency    *stats.Histogram // merged sojourn latencies, µs
	UsedBlocks uint64           // summed physical occupancy

	// Metrics is the merged metrics snapshot: per-shard engine
	// registries (phase histograms, substrate gauges, shard-labeled
	// queue-wait/service series) plus the server-level registry.
	Metrics *metrics.Snapshot

	// Virtual-time serving window: earliest arrival and latest
	// completion observed across shards. Aggregate throughput is
	// Completed / (LastComplete - FirstArrival).
	FirstArrival sim.Time
	LastComplete sim.Time

	PerShard []ShardSnapshot
}

// Throughput reports completed requests per virtual second over the
// serving window, 0 before anything completes.
func (s Snapshot) Throughput() float64 {
	window := s.LastComplete.Sub(s.FirstArrival)
	if window <= 0 || s.Completed == 0 {
		return 0
	}
	return float64(s.Completed) / window.Seconds()
}

// Stats takes a snapshot. It is safe while serving (each shard is
// paused briefly in turn), and exact once Close has returned.
func (s *Server) Stats() Snapshot {
	snap := Snapshot{
		Shards:    s.cfg.Shards,
		ShedCount: atomic.LoadInt64(&s.shed),
		Engine:    engine.NewStats(),
		Latency:   stats.NewHistogram(),
		Metrics:   s.reg.Snapshot(),
	}
	first := false
	for _, sh := range s.shards {
		sh.mu.Lock()
		snap.Completed += sh.completed
		snap.Engine.Merge(sh.eng.Stats())
		snap.Latency.Merge(sh.lat)
		snap.UsedBlocks += sh.eng.UsedBlocks()
		snap.Metrics.Merge(sh.eng.Metrics().Snapshot())
		if sh.anyServed {
			if !first || sh.firstArr < snap.FirstArrival {
				snap.FirstArrival = sh.firstArr
			}
			if sh.lastDone > snap.LastComplete {
				snap.LastComplete = sh.lastDone
			}
			first = true
		}
		snap.PerShard = append(snap.PerShard, ShardSnapshot{
			Shard:     sh.id,
			Completed: sh.completed,
			Queued:    len(sh.ch),
			Batches:   sh.batches,
			MaxBatch:  sh.maxBatch,
		})
		sh.mu.Unlock()
	}
	return snap
}

// Traces drains every shard's sampled-trace ring, returning the records
// ordered by service start time. Empty unless Config.TraceSample was
// set. Each record is returned once; a later call returns only traces
// sampled since.
func (s *Server) Traces() []metrics.TraceRecord {
	var out []metrics.TraceRecord
	for _, sh := range s.shards {
		if sh.ring == nil {
			continue
		}
		sh.mu.Lock()
		out = append(out, sh.ring.Drain()...)
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Shard < out[j].Shard
	})
	return out
}
