package server

import (
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// TestShardCrashRecoverEndToEnd exercises the per-shard failure domain
// through the serving layer: one shard crashes mid-run with the tier
// live, its requests fail-reply typed shard-down errors while the
// survivors keep serving, the rejoin replays its journal and re-audits
// inward pins, and the cluster ends whole — content verified through
// ReadContent and the cross-shard audit green.
func TestShardCrashRecoverEndToEnd(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{
		Shards:    4,
		GlobalFP:  true,
		NewEngine: globalFPFactory(prof),
	})
	if err != nil {
		t.Fatal(err)
	}
	lbas := shardLBAs(srv)

	const n = 8
	content := func(round int) []chunk.ContentID {
		ids := make([]chunk.ContentID, n)
		for i := range ids {
			ids[i] = chunk.ContentID(20000 + round*n + i)
		}
		return ids
	}
	at := int64(0)
	writeRound := func(round int, shards ...int) {
		t.Helper()
		for _, sid := range shards {
			at += 1000
			res, err := srv.Do(&Request{
				Time: at, Op: trace.Write,
				LBA: lbas[sid] + uint64(round*n), Content: content(round),
			})
			if err != nil || res.Err != nil {
				t.Fatalf("round %d shard %d: %v / %v", round, sid, err, res.Err)
			}
		}
	}
	for round := 0; round < 4; round++ {
		writeRound(round, 0, 1, 2, 3)
	}

	if err := srv.CrashShard(5); err == nil {
		t.Fatal("out-of-range CrashShard accepted")
	}
	if err := srv.CrashShard(3); err != nil {
		t.Fatal(err)
	}
	if err := srv.CrashShard(3); err == nil {
		t.Fatal("double CrashShard accepted")
	}
	if down := srv.DownShards(); len(down) != 1 || down[0] != 3 {
		t.Fatalf("DownShards = %v, want [3]", down)
	}

	// The dead shard fail-replies with the typed transient error; the
	// survivors keep serving.
	at += 1000
	res, err := srv.Do(&Request{Time: at, Op: trace.Write, LBA: lbas[3] + 4*n, Content: content(4)})
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := res.Err.(*fault.Error)
	if !ok || fe.Kind != fault.KindShardDown {
		t.Fatalf("down-shard write error = %v, want KindShardDown", res.Err)
	}
	if !fault.IsTransient(res.Err) {
		t.Fatal("shard-down error is not transient")
	}
	for round := 4; round < 6; round++ {
		writeRound(round, 0, 1, 2)
	}

	replayed, err := srv.RecoverShard(3)
	if err != nil {
		t.Fatal(err)
	}
	if replayed == 0 {
		t.Fatal("rejoin replayed no journal records (the shard served four rounds before dying)")
	}
	// Idempotent: recovering a live shard is a no-op.
	if again, err := srv.RecoverShard(3); err != nil || again != 0 {
		t.Fatalf("second RecoverShard = %d, %v, want 0, nil", again, err)
	}
	if down := srv.DownShards(); len(down) != 0 {
		t.Fatalf("DownShards = %v after rejoin, want none", down)
	}

	// The rejoined shard serves again.
	writeRound(6, 0, 1, 2, 3)

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.CheckConsistency(); err != nil {
		t.Fatalf("post-rejoin audit: %v", err)
	}

	// Everything acked reads back: rounds 0-3 and 6 on shard 3 (its
	// in-outage round 4 write was refused), all rounds on the others.
	rounds := map[int][]int{0: {0, 1, 2, 3, 4, 5, 6}, 1: {0, 1, 2, 3, 4, 5, 6}, 2: {0, 1, 2, 3, 4, 5, 6}, 3: {0, 1, 2, 3, 6}}
	for sid, rs := range rounds {
		for _, round := range rs {
			ids := content(round)
			for i := 0; i < n; i++ {
				lba := lbas[sid] + uint64(round*n+i)
				got, ok := srv.ReadContent(lba)
				if !ok || got != uint64(ids[i]) {
					t.Fatalf("shard %d round %d lba %d: content %d,%v want %d", sid, round, lba, got, ok, ids[i])
				}
			}
		}
	}

	g := srv.Stats().Metrics.Gauges
	if g[`globalfp_epoch{shard="3"}`] != 1 {
		t.Fatalf("shard 3 epoch gauge = %d, want 1", g[`globalfp_epoch{shard="3"}`])
	}
	if g[`server_shard_down_refused{shard="3"}`] == 0 {
		t.Fatal("down-refusal counter never moved")
	}
	if g[`server_shard_down{shard="3"}`] != 0 {
		t.Fatal("shard 3 still gauged down after rejoin")
	}
}

// TestCheckConsistencyToleratesDownShard: a cluster closed with one
// shard intentionally down audits degraded, not broken — the dead
// shard's journal-backed remote references still count and nothing
// errors as a dead canonical.
func TestCheckConsistencyToleratesDownShard(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{
		Shards:    4,
		GlobalFP:  true,
		NewEngine: globalFPFactory(prof),
	})
	if err != nil {
		t.Fatal(err)
	}
	lbas := shardLBAs(srv)

	const n = 8
	ids := make([]chunk.ContentID, n)
	for i := range ids {
		ids[i] = chunk.ContentID(30000 + i)
	}
	at := int64(0)
	for _, base := range lbas {
		at += 1000
		if _, err := srv.Do(&Request{Time: at, Op: trace.Write, LBA: base, Content: ids}); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.CrashShard(2); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.CheckConsistency(); err != nil {
		t.Fatalf("degraded audit: %v", err)
	}
	if down := srv.DownShards(); len(down) != 1 || down[0] != 2 {
		t.Fatalf("DownShards = %v, want [2]", down)
	}
}
