package server

import (
	"math/rand"
	"testing"
)

// TestRouterStablePartition is the property test of the routing
// function: for any shard count and granularity, the shard assignment
// is (a) always in range, (b) deterministic and identical across
// router instances with the same parameters, (c) constant within a
// granule, and (d) a partition that actually uses every shard once the
// address space spans enough granules.
func TestRouterStablePartition(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, shards := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, gran := range []uint64{1, 64, DefaultGranChunks, 10000} {
			a := NewRouter(shards, gran)
			b := NewRouter(shards, gran)
			seen := make(map[int]bool)
			for i := 0; i < 20000; i++ {
				lba := rng.Uint64() % (uint64(shards) * gran * 64)
				sh := a.Shard(lba)
				if sh < 0 || sh >= shards {
					t.Fatalf("shards=%d gran=%d: Shard(%d) = %d out of range", shards, gran, lba, sh)
				}
				if got := a.Shard(lba); got != sh {
					t.Fatalf("shards=%d gran=%d: Shard(%d) unstable: %d then %d", shards, gran, lba, sh, got)
				}
				if got := b.Shard(lba); got != sh {
					t.Fatalf("shards=%d gran=%d: routers disagree at %d: %d vs %d", shards, gran, lba, sh, got)
				}
				// every address inside lba's granule lands on the same shard
				base := lba - lba%gran
				for _, off := range []uint64{0, gran / 2, gran - 1} {
					if got := a.Shard(base + off); got != sh {
						t.Fatalf("shards=%d gran=%d: granule of %d split between shards %d and %d", shards, gran, lba, sh, got)
					}
				}
				seen[sh] = true
			}
			if len(seen) != shards {
				t.Fatalf("shards=%d gran=%d: only %d of %d shards ever selected", shards, gran, len(seen), shards)
			}
		}
	}
}

// TestRouterBalance checks that a uniformly spread address space lands
// evenly: no shard more than 2x the mean under round-robin granules.
func TestRouterBalance(t *testing.T) {
	const shards = 8
	r := NewRouter(shards, 0)
	counts := make([]int, shards)
	const granules = 1 << 12
	for g := uint64(0); g < granules; g++ {
		counts[r.Shard(g*r.GranChunks())]++
	}
	mean := granules / shards
	for i, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("shard %d owns %d granules, mean %d: partition is skewed", i, c, mean)
		}
	}
}

func TestRouterRejectsZeroShards(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 0 shards")
		}
	}()
	NewRouter(0, 0)
}
