package server

import (
	"strings"
	"sync"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// faultyEngine is a scripted engine: it fails the first failN requests
// with the configured error, then succeeds, always charging svc
// microseconds. panicAt >= 0 makes request number panicAt (0-based)
// panic instead.
type faultyEngine struct {
	svc     sim.Duration
	failN   int
	err     error
	panicAt int
	calls   int
	reg     *metrics.Registry
	st      *engine.Stats
}

func newFaultyEngine(failN int, err error) *faultyEngine {
	return &faultyEngine{svc: 100, failN: failN, err: err, panicAt: -1,
		reg: metrics.NewRegistry(), st: engine.NewStats()}
}

func (f *faultyEngine) Name() string { return "faulty" }
func (f *faultyEngine) serve() (sim.Duration, error) {
	f.calls++
	if f.panicAt >= 0 && f.calls-1 == f.panicAt {
		panic("scripted engine panic")
	}
	if f.calls <= f.failN {
		return f.svc, f.err
	}
	return f.svc, nil
}
func (f *faultyEngine) Write(*trace.Request) (sim.Duration, error) { return f.serve() }
func (f *faultyEngine) Read(*trace.Request) (sim.Duration, error)  { return f.serve() }
func (f *faultyEngine) Stats() *engine.Stats                       { return f.st }
func (f *faultyEngine) Metrics() *metrics.Registry                 { return f.reg }
func (f *faultyEngine) UsedBlocks() uint64                         { return 0 }
func (f *faultyEngine) ReadContent(uint64) (uint64, bool)          { return 0, false }

func transientErr() error {
	return fault.New(fault.KindTransientIO, fault.Transient, 0, 0, 0)
}

func oneShard(t *testing.T, eng *faultyEngine, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{Shards: 1, NewEngine: func(int) engine.Engine { return eng }}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func readReq(at int64) *Request {
	return &Request{Time: at, Op: trace.Read, LBA: 0, Chunks: 1}
}

// TestTransientFaultRetriedToSuccess: two transient failures, then
// success — the request is acknowledged with Retries=2 and its virtual
// completion includes service time of every attempt plus backoff.
func TestTransientFaultRetriedToSuccess(t *testing.T) {
	eng := newFaultyEngine(2, transientErr())
	srv := oneShard(t, eng, nil)
	defer srv.Close()

	res, err := srv.Do(readReq(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("retried request failed: %v", res.Err)
	}
	if res.Retries != 2 || eng.calls != 3 {
		t.Fatalf("retries=%d calls=%d, want 2 and 3", res.Retries, eng.calls)
	}
	// three attempts à 100µs plus two non-zero backoffs
	if res.Complete < 3*100+2*200 {
		t.Fatalf("completion %d does not include attempts and backoff", res.Complete)
	}
}

// TestRetryBackoffDeterministic: identical configurations produce
// identical completion times, and a different seed shifts the jitter.
func TestRetryBackoffDeterministic(t *testing.T) {
	run := func(seed uint64) int64 {
		srv := oneShard(t, newFaultyEngine(3, transientErr()), func(c *Config) { c.RetrySeed = seed })
		defer srv.Close()
		res, err := srv.Do(readReq(0))
		if err != nil || res.Err != nil {
			t.Fatalf("%v / %v", err, res.Err)
		}
		return res.Complete
	}
	a, b, c := run(7), run(7), run(8)
	if a != b {
		t.Fatalf("same seed, different completions: %d vs %d", a, b)
	}
	if a == c {
		t.Fatal("seed change did not move the jitter")
	}
}

// TestPermanentFaultNotRetried: a permanent error is terminal on the
// first attempt.
func TestPermanentFaultNotRetried(t *testing.T) {
	eng := newFaultyEngine(1000, fault.New(fault.KindDataLoss, fault.Permanent, 0, 0, 0))
	srv := oneShard(t, eng, nil)
	defer srv.Close()

	res, err := srv.Do(readReq(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Retries != 0 || eng.calls != 1 {
		t.Fatalf("err=%v retries=%d calls=%d", res.Err, res.Retries, eng.calls)
	}
	if fault.IsTransient(res.Err) {
		t.Fatal("permanent error reported transient")
	}
}

// TestRetriesExhaustedReportsTransient: when MaxRetries runs out the
// last transient error surfaces in the result.
func TestRetriesExhaustedReportsTransient(t *testing.T) {
	eng := newFaultyEngine(1 << 30, transientErr())
	srv := oneShard(t, eng, func(c *Config) { c.MaxRetries = 2 })
	defer srv.Close()

	res, err := srv.Do(readReq(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || !fault.IsTransient(res.Err) {
		t.Fatalf("want transient terminal error, got %v", res.Err)
	}
	if res.Retries != 2 || eng.calls != 3 {
		t.Fatalf("retries=%d calls=%d", res.Retries, eng.calls)
	}
}

// TestDeadlineBoundsRetries: with a tight deadline the retry loop stops
// with KindDeadlineExceeded instead of burning the full retry budget.
func TestDeadlineBoundsRetries(t *testing.T) {
	eng := newFaultyEngine(1<<30, transientErr())
	srv := oneShard(t, eng, func(c *Config) {
		c.MaxRetries = 100
		c.DeadlineUS = 450 // one 100µs attempt + ~200µs backoff fits, two don't
	})
	defer srv.Close()

	res, err := srv.Do(readReq(0))
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := res.Err.(*fault.Error)
	if !ok || fe.Kind != fault.KindDeadlineExceeded {
		t.Fatalf("want deadline exceeded, got %v", res.Err)
	}
	if eng.calls >= 100 {
		t.Fatalf("deadline did not bound retries: %d calls", eng.calls)
	}
}

// TestDeadlineExceededByQueueWait: a request whose queue wait alone
// blows the deadline fails without touching the engine.
func TestDeadlineExceededByQueueWait(t *testing.T) {
	eng := newFaultyEngine(0, nil)
	eng.svc = 10000 // first request occupies the shard for 10ms
	srv := oneShard(t, eng, func(c *Config) { c.DeadlineUS = 1000 })
	defer srv.Close()

	if _, err := srv.Do(readReq(0)); err != nil {
		t.Fatal(err)
	}
	calls := eng.calls
	res, err := srv.Do(readReq(1)) // arrives at 1µs, shard busy until 10ms
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := res.Err.(*fault.Error)
	if !ok || fe.Kind != fault.KindDeadlineExceeded {
		t.Fatalf("want deadline exceeded, got %v", res.Err)
	}
	if eng.calls != calls {
		t.Fatal("deadlined request still reached the engine")
	}
	if res.Service != 0 {
		t.Fatalf("refused request charged %dus service", res.Service)
	}
}

// TestBreakerOpensAndRecovers drives a shard through failure into an
// open breaker, checks shedding, then lets the cooldown pass and checks
// the half-open probe closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	eng := newFaultyEngine(3, fault.New(fault.KindDataLoss, fault.Permanent, 0, 0, 0))
	srv := oneShard(t, eng, func(c *Config) {
		c.BreakerThreshold = 3
		c.BreakerCooldownUS = 1000
		c.MaxRetries = -1
	})
	defer srv.Close()

	// three consecutive terminal failures trip the breaker
	var last Result
	for i := 0; i < 3; i++ {
		res, err := srv.Do(readReq(int64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if res.Err == nil {
			t.Fatalf("request %d unexpectedly succeeded", i)
		}
		last = res
	}
	calls := eng.calls

	// while open: shed with KindUnavailable, engine untouched
	res, err := srv.Do(readReq(last.Complete + 1))
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := res.Err.(*fault.Error)
	if !ok || fe.Kind != fault.KindUnavailable {
		t.Fatalf("open breaker returned %v", res.Err)
	}
	if eng.calls != calls {
		t.Fatal("shed request reached the engine")
	}

	// past the cooldown: the probe runs against the now-healthy engine
	// and closes the breaker
	res, err = srv.Do(readReq(last.Complete + 2000))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatalf("half-open probe failed: %v", res.Err)
	}
	res, err = srv.Do(readReq(last.Complete + 3000))
	if err != nil || res.Err != nil {
		t.Fatalf("breaker did not close: %v / %v", err, res.Err)
	}
}

// TestWorkerPanicFailsDrainAndCloseReportsIt: a panicking engine must
// not wedge the server — queued requests complete with KindUnavailable,
// and Close reports the failure (satellite: Close returns first error).
func TestWorkerPanicFailsDrainAndCloseReportsIt(t *testing.T) {
	eng := newFaultyEngine(0, nil)
	eng.panicAt = 0
	srv := oneShard(t, eng, nil)

	res, err := srv.Do(readReq(0))
	if err != nil {
		t.Fatal(err)
	}
	fe, ok := res.Err.(*fault.Error)
	if !ok || fe.Kind != fault.KindUnavailable {
		t.Fatalf("request on panicked shard returned %v", res.Err)
	}

	cerr := srv.Close()
	if cerr == nil || !strings.Contains(cerr.Error(), "panicked") {
		t.Fatalf("Close did not report the worker panic: %v", cerr)
	}
}

// TestCloseIdempotentAndConcurrent: many concurrent Close calls, all
// return the same (nil) error, no panic, no double-drain.
func TestCloseIdempotentAndConcurrent(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{Shards: 2, NewEngine: podFactory(prof)})
	if err != nil {
		t.Fatal(err)
	}
	writeAt(t, srv, 0, 0, 1)

	const closers = 8
	errs := make([]error, closers)
	var wg sync.WaitGroup
	for i := 0; i < closers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = srv.Close()
		}(i)
	}
	wg.Wait()
	for i, e := range errs {
		if e != nil {
			t.Fatalf("closer %d: %v", i, e)
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("late Close: %v", err)
	}
	if _, err := srv.Do(readReq(0)); err != ErrClosed {
		t.Fatalf("Do after Close: %v", err)
	}
}

// degradedFactory builds POD engines whose arrays lose a disk at
// virtual time failAt — the concurrent degraded-serving fixture.
func degradedFactory(prof workload.Profile, failAt sim.Time) func(int) engine.Engine {
	return func(shard int) engine.Engine {
		cfg := experiments.BuildConfig(prof, testScale)
		cfg.Array.SetInjector(fault.NewInjector(fault.Schedule{
			Fails: []fault.DiskFail{{Disk: 1, At: failAt}},
		}, cfg.Array.NumDisks()))
		return experiments.NewEngine(experiments.POD, cfg)
	}
}

// TestDegradedRaid5ServesConcurrently (satellite): every shard's array
// loses a disk mid-run while multiple clients keep reading and writing;
// all requests must complete without error (reconstruction + rebuild
// absorb the failure) and the degraded reads must be visible in the
// merged metrics.
func TestDegradedRaid5ServesConcurrently(t *testing.T) {
	tr, prof := testTrace(t)
	const shards, clients = 2, 4
	srv, err := New(Config{Shards: shards, NewEngine: degradedFactory(prof, 1)})
	if err != nil {
		t.Fatal(err)
	}

	reqs := tr.Requests
	if len(reqs) > 2000 {
		reqs = reqs[:2000]
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range reqs {
				if i%clients != c {
					continue
				}
				res, err := srv.Do(apiReq(&reqs[i]))
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				if res.Err != nil {
					t.Errorf("request %d failed under degraded array: %v", i, res.Err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	snap := srv.Stats()
	if snap.Completed != int64(len(reqs)) {
		t.Fatalf("completed %d of %d", snap.Completed, len(reqs))
	}
	g := snap.Metrics.Gauges
	if g["raid_fail_events"] != shards {
		t.Fatalf("fail events = %d, want %d", g["raid_fail_events"], shards)
	}
	if g["raid_degraded_reads"] == 0 {
		t.Fatal("no degraded reads recorded")
	}
	if g["raid_rebuild_ios"] == 0 {
		t.Fatal("rebuild generated no I/O")
	}
}

// TestCrashAndRecoverWithQueuedBacklog (satellite): Close is called
// while shard queues still hold requests; the drain must serve them,
// and every acknowledged write must survive crash recovery.
func TestCrashAndRecoverWithQueuedBacklog(t *testing.T) {
	prof := workload.WebVM()
	srv, err := New(Config{
		Shards:     2,
		QueueDepth: 256,
		NewEngine:  selectDedupeFactory(prof),
	})
	if err != nil {
		t.Fatal(err)
	}

	// fire-and-forget submissions: Close runs while these are queued
	const writes = 300
	want := map[uint64]chunk.ContentID{}
	for i := 0; i < writes; i++ {
		lba := uint64(i) * 3 % (2 * DefaultGranChunks)
		id := chunk.ContentID(i + 1)
		if err := srv.Submit(&Request{Time: int64(i) * 10, Op: trace.Write, LBA: lba,
			Content: []chunk.ContentID{id}}); err != nil {
			t.Fatal(err)
		}
		want[lba] = id
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snap := srv.Stats()
	if snap.Completed != writes {
		t.Fatalf("drain served %d of %d queued writes", snap.Completed, writes)
	}

	if _, err := srv.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	for lba, id := range want {
		got, ok := srv.ReadContent(lba)
		if !ok || got != uint64(id) {
			t.Fatalf("lba %d after recovery: %d,%v want %d", lba, got, ok, id)
		}
	}
}

// TestRetryConfigValidation covers the new Config knobs.
func TestRetryConfigValidation(t *testing.T) {
	eng := newFaultyEngine(0, nil)
	bad := []func(*Config){
		func(c *Config) { c.MaxRetries = -2 },
		func(c *Config) { c.RetryBaseUS = -1 },
		func(c *Config) { c.RetryMaxUS = 100; c.RetryBaseUS = 200 },
		func(c *Config) { c.DeadlineUS = -1 },
		func(c *Config) { c.BreakerThreshold = -2 },
		func(c *Config) { c.BreakerCooldownUS = -1 },
	}
	for i, mut := range bad {
		cfg := Config{Shards: 1, NewEngine: func(int) engine.Engine { return eng }}
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	// MaxRetries -1 means "no retries", and is valid
	srv := oneShard(t, newFaultyEngine(1, transientErr()), func(c *Config) { c.MaxRetries = -1 })
	defer srv.Close()
	res, err := srv.Do(readReq(0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Err == nil || res.Retries != 0 {
		t.Fatalf("retries disabled but err=%v retries=%d", res.Err, res.Retries)
	}
}
