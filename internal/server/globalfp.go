package server

import (
	"errors"
	"fmt"
	"math/bits"
	"strconv"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/globalfp"
	"github.com/pod-dedup/pod/internal/metrics"
)

// baseHolder matches engines exposing their substrate (Select-Dedupe
// and POD); the global fingerprint tier and the cross-shard audit need
// direct Map/Store access.
type baseHolder interface {
	Base() *engine.Base
}

// initGlobalFP builds the tier and wires one agent per shard. Called by
// New after every shard engine exists (so an engine-hook-attached
// bgdedup scanner is already in place for the agent to wrap).
func (s *Server) initGlobalFP() error {
	tier, err := globalfp.NewTier(s.cfg.Shards, s.cfg.GlobalFPParams)
	if err != nil {
		return err
	}
	s.tier = tier
	s.agents = make([]*globalfp.Agent, s.cfg.Shards)
	for i, sh := range s.shards {
		a, ok := globalfp.Attach(sh.eng, tier, i)
		if !ok {
			return fmt.Errorf("server: shard %d engine %s has no Map-table substrate; the global fingerprint tier requires Select-Dedupe or POD engines", i, sh.eng.Name())
		}
		s.agents[i] = a
		if h, ok := sh.eng.(baseHolder); ok {
			// owner-down checks on the remote read/dedupe paths; the
			// mask read is atomic, so the hook is safe mid-request
			h.Base().RemoteDown = func(owner int) bool {
				return s.downMask.Load()&(uint64(1)<<uint(owner)) != 0
			}
			// per-shard fencing epoch, exported beside the shard's other
			// tier gauges (atomic read; safe under the registry rule)
			shardIdx := i
			sh.eng.Metrics().GaugeFunc(
				metrics.Labeled("globalfp_epoch", "shard", strconv.Itoa(i)),
				func() int64 { return int64(tier.Epoch(shardIdx)) })
		}
	}

	// Tier-level gauges live in the server registry: the tier is shared
	// state, not any one shard's.
	s.reg.GaugeFunc("globalfp_ads_queued", func() int64 { return tier.Snapshot().AdsQueued })
	s.reg.GaugeFunc("globalfp_ads_dropped", func() int64 { return tier.Snapshot().AdsDropped })
	s.reg.GaugeFunc("globalfp_dups_detected", func() int64 { return tier.Snapshot().DupsDetected })
	s.reg.GaugeFunc("globalfp_hints_broadcast", func() int64 { return tier.Snapshot().HintsBroadcast })
	s.reg.GaugeFunc("globalfp_table_entries", func() int64 { return tier.Snapshot().Entries })
	s.reg.GaugeFunc("globalfp_table_fixes", func() int64 { return tier.Snapshot().TableFixes })
	s.reg.GaugeFunc("globalfp_recalls", func() int64 { return tier.Snapshot().Recalls })
	s.reg.GaugeFunc("globalfp_stale_dropped", func() int64 { return tier.Snapshot().StaleDropped })
	s.reg.GaugeFunc("globalfp_down_dropped", func() int64 { return tier.Snapshot().DownDropped })
	return nil
}

// initRemovalGauges exports the paper's headline metric as gauges:
// per-shard writes-removed percentage (×100, labeled like the other
// shard series) in each shard engine's registry, and the aggregate in
// the server registry.
//
// Locking: a shard's engine registry is only snapshotted with that
// shard's mu held (Stats does so), so the per-shard callback reads the
// engine stats bare. The server registry is snapshotted by Stats
// *before* any shard lock is taken, so the aggregate callback may take
// each shard's mu in turn.
func (s *Server) initRemovalGauges() {
	for _, sh := range s.shards {
		sh := sh
		sh.eng.Metrics().GaugeFunc(
			metrics.Labeled("server_writes_removed_pct_x100", "shard", strconv.Itoa(sh.id)),
			func() int64 { return int64(sh.eng.Stats().WriteRemovalPct() * 100) })
	}
	s.reg.GaugeFunc("server_writes_removed_pct_x100", func() int64 {
		agg := engine.NewStats()
		for _, sh := range s.shards {
			sh.mu.Lock()
			agg.Merge(sh.eng.Stats())
			sh.mu.Unlock()
		}
		return int64(agg.WriteRemovalPct() * 100)
	})
}

// settleGlobalFP runs once, from Close, after the workers have drained:
// the tier's ad queues are stopped and drained, every shard republishes
// its distinct live blocks (retrying candidates that were dropped under
// load or aborted by injected faults), and the shards exchange
// grant/fold/recall traffic round-robin until a full round moves
// nothing — the quiescent point the cross-shard audit assumes.
func (s *Server) settleGlobalFP() {
	s.tier.Stop()
	for i, sh := range s.shards {
		sh.mu.Lock()
		if !sh.down {
			s.agents[i].ReAdvertise()
		}
		sh.mu.Unlock()
	}
	// Each round's work strictly shrinks the remaining protocol state
	// (folds consume duplicates, recalls consume paroles); the cap is a
	// backstop against an invariant bug turning Close into a hang. A
	// shard left down at Close is skipped — its inbox stays empty (the
	// tier drops sends toward it), and DrainAll's forced recall sweep
	// implicitly grants its acks, so settlement still converges.
	for round := 0; round < 256; round++ {
		moved := 0
		for i, sh := range s.shards {
			sh.mu.Lock()
			if !sh.down {
				moved += s.agents[i].DrainAll(sh.lastStart)
			}
			sh.mu.Unlock()
		}
		if moved == 0 && s.tier.Backlog() == 0 {
			return
		}
	}
}

// recoverGlobalFP is CrashAndRecover with the tier enabled. Recovery is
// three-phase because cross-shard references must be re-pinned before
// any allocator is rebuilt:
//
//  1. every shard replays its NVRAM journal into a recovered Map table;
//  2. the recovered maps are scanned for remote mappings, yielding one
//     pin per (referencing shard, canonical) pair — the durable remote
//     references are the tier's only crash-surviving state;
//  3. every shard finishes recovery with its pin list, rebuilding
//     allocator/store occupancy with canonicals protected.
//
// The tier tables and all agent bookkeeping are volatile and reset;
// they re-learn from fresh advertisements (rebuild-on-recover).
func (s *Server) recoverGlobalFP() (int, error) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	bases := make([]*engine.Base, len(s.shards))
	for i, sh := range s.shards {
		h, ok := sh.eng.(baseHolder)
		if !ok {
			return 0, fmt.Errorf("server: shard %d engine %s does not support crash recovery", i, sh.eng.Name())
		}
		bases[i] = h.Base()
	}
	total := 0
	for i, b := range bases {
		n, err := b.RecoverLoad()
		if err != nil {
			return total, fmt.Errorf("server: shard %d: %w", i, err)
		}
		total += n
	}
	pinned := make([][]alloc.PBA, len(bases))
	for _, b := range bases {
		seen := make(map[alloc.PBA]bool)
		b.Map.Each(func(_ uint64, pba alloc.PBA, _ bool) bool {
			if !alloc.IsRemote(pba) || seen[pba] {
				return true
			}
			seen[pba] = true
			owner, canon := alloc.RemoteParts(pba)
			pinned[owner] = append(pinned[owner], canon)
			return true
		})
	}
	for i, b := range bases {
		b.RecoverFinish(pinned[i])
	}
	s.tier.Reset()
	s.clearDown()
	return total, nil
}

// CheckConsistency audits the whole server: each shard's engine-level
// invariants, then — with the tier enabled — the cross-shard reference
// invariant: every remote mapping's canonical must be live on its
// owner, and the owner's pin count must equal the number of
// referencing shards plus at most one (the tier's hinted pin). Call it
// after Close; mid-serve the protocol is legitimately in flight.
//
// An intentionally-down shard (CrashShard without RecoverShard) makes
// the audit degraded, not broken: the dead shard's engine invariants
// are skipped (it is conceptually powered off), its journal-backed
// remote references still count (they survive the crash and will be
// recovered verbatim), and pin-slack checks on its canonicals are
// skipped — RefDowns toward its dead inbox are legitimately lost
// mid-outage and the rejoin re-audit rebuilds those pins exactly.
// Liveness of its canonicals is still enforced.
func (s *Server) CheckConsistency() error {
	s.closeMu.RLock()
	closed := s.closed
	s.closeMu.RUnlock()
	if !closed {
		return errors.New("server: CheckConsistency before Close")
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		defer sh.mu.Unlock()
	}
	for i, sh := range s.shards {
		if sh.down {
			continue
		}
		if c, ok := sh.eng.(interface{ CheckConsistency() error }); ok {
			if err := c.CheckConsistency(); err != nil {
				return fmt.Errorf("server: shard %d: %w", i, err)
			}
		}
	}
	if s.tier == nil {
		return nil
	}
	bases := make([]*engine.Base, len(s.shards))
	for i, sh := range s.shards {
		h, ok := sh.eng.(baseHolder)
		if !ok {
			return fmt.Errorf("server: shard %d engine %s lacks a substrate for the cross-shard audit", i, sh.eng.Name())
		}
		bases[i] = h.Base()
	}
	refs := make(map[alloc.PBA]uint64) // canonical (encoded) → referencing shards
	for i, b := range bases {
		seen := make(map[alloc.PBA]bool)
		b.Map.Each(func(_ uint64, pba alloc.PBA, _ bool) bool {
			if alloc.IsRemote(pba) && !seen[pba] {
				seen[pba] = true
				refs[pba] |= uint64(1) << uint(i)
			}
			return true
		})
	}
	for enc, mask := range refs {
		owner, canon := alloc.RemoteParts(enc)
		ob := bases[owner]
		if _, live := ob.Store.Read(canon); !live {
			return fmt.Errorf("server: shards %b reference dead canonical %d on shard %d", mask, canon, owner)
		}
		if s.shards[owner].down {
			continue // degraded: pin state frozen until the rejoin re-audit
		}
		pins := ob.Map.PinCount(canon)
		nrefs := bits.OnesCount64(mask)
		if slack := pins - nrefs; slack < 0 || slack > 1 {
			return fmt.Errorf("server: canonical %d on shard %d holds %d pins for %d referencing shards (want refs or refs+1)", canon, owner, pins, nrefs)
		}
	}
	return nil
}
