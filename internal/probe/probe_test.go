package probe

import (
	"math/rand"
	"testing"
)

// TestMatchesGoMap cross-checks every operation against a Go map under
// a randomized workload, for both a mixed-integer key and a
// fingerprint-shaped array key.
func TestMatchesGoMap(t *testing.T) {
	t.Run("uint64", func(t *testing.T) { crossCheck(t, func(r *rand.Rand) uint64 { return uint64(r.Intn(512)) }) })
	t.Run("fp20", func(t *testing.T) {
		crossCheck(t, func(r *rand.Rand) [20]byte {
			var k [20]byte
			k[0] = byte(r.Intn(64))
			k[19] = byte(r.Intn(8))
			return k
		})
	})
}

func crossCheck[K comparable](t *testing.T, genKey func(*rand.Rand) K) {
	r := rand.New(rand.NewSource(7))
	m := NewMap[K, int](0)
	ref := map[K]int{}
	for op := 0; op < 20000; op++ {
		k := genKey(r)
		switch r.Intn(3) {
		case 0:
			v := r.Intn(1 << 20)
			m.Put(k, v)
			ref[k] = v
		case 1:
			_, wantOK := ref[k]
			if got := m.Delete(k); got != wantOK {
				t.Fatalf("op %d: Delete=%v want %v", op, got, wantOK)
			}
			delete(ref, k)
		case 2:
			got, ok := m.Get(k)
			want, wantOK := ref[k]
			if ok != wantOK || got != want {
				t.Fatalf("op %d: Get=(%v,%v) want (%v,%v)", op, got, ok, want, wantOK)
			}
		}
		if m.Len() != len(ref) {
			t.Fatalf("op %d: Len=%d want %d", op, m.Len(), len(ref))
		}
	}
	seen := map[K]int{}
	m.Each(func(k K, v int) bool { seen[k] = v; return true })
	if len(seen) != len(ref) {
		t.Fatalf("Each visited %d entries, want %d", len(seen), len(ref))
	}
	for k, v := range ref {
		if seen[k] != v {
			t.Fatalf("Each missed or corrupted key %v", k)
		}
	}
}

// TestFallbackKeys exercises the Go-map fallback path used for key
// types outside the flat-size fast path.
func TestFallbackKeys(t *testing.T) {
	m := NewMap[string, int](4)
	if m.fb == nil {
		t.Fatal("string keys should use the fallback map")
	}
	m.Put("a", 1)
	m.Put("b", 2)
	if v, ok := m.Get("a"); !ok || v != 1 {
		t.Fatalf("Get a = (%d,%v)", v, ok)
	}
	if !m.Delete("a") || m.Delete("a") {
		t.Fatal("Delete semantics wrong on fallback path")
	}
	if m.Len() != 1 {
		t.Fatalf("Len=%d want 1", m.Len())
	}
}

// TestDeterministicLayout: the same operation sequence must yield the
// same table layout (checked via Each order), run to run.
func TestDeterministicLayout(t *testing.T) {
	build := func() []uint64 {
		m := NewMap[uint64, int](0)
		for i := uint64(0); i < 1000; i++ {
			m.Put(i*3, int(i))
		}
		for i := uint64(0); i < 500; i++ {
			m.Delete(i * 6)
		}
		var order []uint64
		m.Each(func(k uint64, _ int) bool { order = append(order, k); return true })
		return order
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("layout diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
