// Package probe provides a deterministic open-addressing hash map for
// the simulator's hot lookup structures (fingerprint indexes, cache
// directories, block reverse-indexes).
//
// The runtime's map is general: it re-hashes every key with AES-based
// hashing, probes SIMD control groups, and grows by incremental
// rehash. The simulator's hot keys are either small integers (LBA,
// PBA, ContentID) or fingerprints whose bytes are already uniformly
// distributed (SHA-1, or the synthetic fingerprinter's murmur-style
// finalizer), so hashing collapses to a single multiply — or to
// reading the first eight bytes — and a plain linear probe over a
// flat array beats the general machinery while staying fully
// deterministic: layout depends only on the sequence of operations,
// never on a per-process seed.
//
// Keys must be comparable; flat fixed-size keys (integers and byte
// arrays, without internal padding) take the fast path, and any other
// comparable key falls back to a Go map with identical semantics.
// Padded structs of a fast-path size would hash their padding bytes
// and must not be used as keys. Iteration order (Each) is table order
// — callers must not depend on it, exactly as with a Go map.
package probe

import "unsafe"

// flatKey reports whether K can take the byte-hashed fast path.
func flatKey[K comparable]() bool {
	var zero K
	switch unsafe.Sizeof(zero) {
	case 1, 2, 4, 8, 20:
		return true
	}
	return false
}

// hashKey hashes a fast-path key. The size switch is resolved at
// compile time per instantiation shape and the helpers are small
// enough to inline, so each map gets straight-line hashing code with
// no call overhead on the probe loop.
func (m *Map[K, V]) hashKey(k K) uint64 {
	if unsafe.Sizeof(k) == 20 {
		// chunk.Fingerprint: the first eight bytes of a SHA-1 (or the
		// synthetic fingerprinter's finalized mix) are already uniform.
		return *(*uint64)(unsafe.Pointer(&k))
	}
	return mix64(load64(k))
}

// load64 widens an integer-sized key to uint64.
func load64[K comparable](k K) uint64 {
	switch unsafe.Sizeof(k) {
	case 1:
		return uint64(*(*uint8)(unsafe.Pointer(&k)))
	case 2:
		return uint64(*(*uint16)(unsafe.Pointer(&k)))
	case 4:
		return uint64(*(*uint32)(unsafe.Pointer(&k)))
	default:
		return *(*uint64)(unsafe.Pointer(&k))
	}
}

// mix64 is the 64-bit finalizer from MurmurHash3: bijective, cheap,
// and spreads sequential integers across the full word.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Map is an open-addressing hash map with linear probing and
// backward-shift deletion (no tombstones). The zero value is not
// usable; call NewMap.
type Map[K comparable, V any] struct {
	keys []K
	vals []V
	used []bool
	mask uint64
	n    int

	// fallback for non-flat keys; values are boxed so Ref can hand out
	// stable pointers on this path too
	fb map[K]*V
}

// NewMap returns an empty map presized for hint entries (0 is fine).
func NewMap[K comparable, V any](hint int) *Map[K, V] {
	m := &Map[K, V]{}
	if !flatKey[K]() {
		m.fb = make(map[K]*V, hint)
		return m
	}
	m.init(hint)
	return m
}

func (m *Map[K, V]) init(hint int) {
	size := 8
	for size*3 < hint*4 { // keep load under 3/4
		size <<= 1
	}
	m.keys = make([]K, size)
	m.vals = make([]V, size)
	m.used = make([]bool, size)
	m.mask = uint64(size - 1)
	m.n = 0
}

// Len reports the number of entries.
func (m *Map[K, V]) Len() int {
	if m.fb != nil {
		return len(m.fb)
	}
	return m.n
}

// Get returns the value for k.
func (m *Map[K, V]) Get(k K) (V, bool) {
	if m.fb != nil {
		if p, ok := m.fb[k]; ok {
			return *p, true
		}
		var zero V
		return zero, false
	}
	i := m.hashKey(k) & m.mask
	for m.used[i] {
		if m.keys[i] == k {
			return m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	var zero V
	return zero, false
}

// Put inserts or updates k.
func (m *Map[K, V]) Put(k K, v V) {
	if m.fb != nil {
		if p, ok := m.fb[k]; ok {
			*p = v
		} else {
			m.fb[k] = &v
		}
		return
	}
	i := m.hashKey(k) & m.mask
	for m.used[i] {
		if m.keys[i] == k {
			m.vals[i] = v
			return
		}
		i = (i + 1) & m.mask
	}
	m.keys[i], m.vals[i], m.used[i] = k, v, true
	m.n++
	if uint64(m.n)*4 > (m.mask+1)*3 {
		m.grow()
	}
}

func (m *Map[K, V]) grow() {
	keys, vals, used := m.keys, m.vals, m.used
	m.init(m.n * 2)
	for i := range used {
		if !used[i] {
			continue
		}
		j := m.hashKey(keys[i]) & m.mask
		for m.used[j] {
			j = (j + 1) & m.mask
		}
		m.keys[j], m.vals[j], m.used[j] = keys[i], vals[i], true
		m.n++
	}
}

// Delete removes k, reporting whether it was present.
func (m *Map[K, V]) Delete(k K) bool {
	if m.fb != nil {
		if _, ok := m.fb[k]; !ok {
			return false
		}
		delete(m.fb, k)
		return true
	}
	i := m.hashKey(k) & m.mask
	for {
		if !m.used[i] {
			return false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	m.unset(i)
	return true
}

// unset clears occupied slot i and restores the probe invariant by
// backward-shifting: walk the chain after i, moving back every entry
// whose ideal slot precedes the hole, so lookups never need
// tombstones.
func (m *Map[K, V]) unset(i uint64) {
	var zeroK K
	var zeroV V
	j := i
	for {
		j = (j + 1) & m.mask
		if !m.used[j] {
			break
		}
		ideal := m.hashKey(m.keys[j]) & m.mask
		if (j-ideal)&m.mask >= (j-i)&m.mask {
			m.keys[i], m.vals[i] = m.keys[j], m.vals[j]
			i = j
		}
	}
	m.keys[i], m.vals[i] = zeroK, zeroV
	m.used[i] = false
	m.n--
}

// Find returns a pointer to the value for k for in-place mutation,
// or nil when absent. The pointer is invalidated by the next mutating
// call on the map.
func (m *Map[K, V]) Find(k K) (*V, bool) {
	if m.fb != nil {
		p, ok := m.fb[k]
		return p, ok
	}
	i := m.hashKey(k) & m.mask
	for m.used[i] {
		if m.keys[i] == k {
			return &m.vals[i], true
		}
		i = (i + 1) & m.mask
	}
	return nil, false
}

// Ref returns a pointer to the value for k, inserting a zero value
// when absent (inserted reports which): a single-pass find-or-insert.
// The pointer is invalidated by the next mutating call on the map.
func (m *Map[K, V]) Ref(k K) (p *V, inserted bool) {
	if m.fb != nil {
		if p, ok := m.fb[k]; ok {
			return p, false
		}
		p = new(V)
		m.fb[k] = p
		return p, true
	}
	i := m.hashKey(k) & m.mask
	for m.used[i] {
		if m.keys[i] == k {
			return &m.vals[i], false
		}
		i = (i + 1) & m.mask
	}
	m.keys[i], m.used[i] = k, true
	m.n++
	if uint64(m.n)*4 > (m.mask+1)*3 {
		m.grow()
		// the zero value moved; find its new slot
		i = m.hashKey(k) & m.mask
		for m.keys[i] != k || !m.used[i] {
			i = (i + 1) & m.mask
		}
	}
	return &m.vals[i], true
}

// Take removes k and returns its value: a single-pass Get+Delete.
func (m *Map[K, V]) Take(k K) (V, bool) {
	if m.fb != nil {
		if p, ok := m.fb[k]; ok {
			delete(m.fb, k)
			return *p, true
		}
		var zero V
		return zero, false
	}
	i := m.hashKey(k) & m.mask
	for {
		if !m.used[i] {
			var zero V
			return zero, false
		}
		if m.keys[i] == k {
			break
		}
		i = (i + 1) & m.mask
	}
	v := m.vals[i]
	m.unset(i)
	return v, true
}

// Each visits entries in unspecified order; return false to stop.
func (m *Map[K, V]) Each(fn func(K, V) bool) {
	if m.fb != nil {
		for k, v := range m.fb {
			if !fn(k, *v) {
				return
			}
		}
		return
	}
	for i := range m.used {
		if m.used[i] && !fn(m.keys[i], m.vals[i]) {
			return
		}
	}
}
