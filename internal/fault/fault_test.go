package fault

import (
	"errors"
	"testing"

	"github.com/pod-dedup/pod/internal/sim"
)

func TestClassOf(t *testing.T) {
	if ClassOf(nil) != 0 {
		t.Fatal("nil error has a class")
	}
	if ClassOf(errors.New("plain")) != Permanent {
		t.Fatal("unclassified errors must default to permanent")
	}
	te := New(KindTransientIO, Transient, 0, 0, 0)
	if ClassOf(te) != Transient || !IsTransient(te) {
		t.Fatal("transient error misclassified")
	}
	pe := New(KindDataLoss, Permanent, 0, 0, 0)
	if ClassOf(pe) != Permanent || IsTransient(pe) {
		t.Fatal("permanent error misclassified")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Check(0, 0, false, 0, 10); err != nil {
		t.Fatal("nil injector injected")
	}
	if got := in.Inflate(0, 0, 100); got != 100 {
		t.Fatalf("nil injector inflated: %d", got)
	}
	in.Heal(0, 0, 10)
	in.ReplaceDisk(0)
	if s := in.Stats(); s != (Stats{}) {
		t.Fatalf("nil injector has stats: %+v", s)
	}
}

func TestDiskFailPrecedence(t *testing.T) {
	in := NewInjector(Schedule{
		Fails:      []DiskFail{{Disk: 1, At: 100}},
		Transients: []TransientWindow{{Disk: 1, From: 0, Until: sim.Time(1 << 62), PerMille: 1000}},
		Sectors:    []SectorRange{{Disk: 1, Start: 0, Count: 10}},
	}, 2)

	// before the failure the (always-firing) transient window wins
	if err := in.Check(1, 99, false, 0, 1); err == nil || err.Kind != KindTransientIO {
		t.Fatalf("pre-failure: %v", err)
	}
	// from the failure time on, the device error shadows everything
	for _, tt := range []sim.Time{100, 5000} {
		err := in.Check(1, tt, false, 0, 1)
		if err == nil || err.Kind != KindDiskFailed || err.Class != Permanent {
			t.Fatalf("at %d: %v", tt, err)
		}
	}
	// the healthy disk is untouched
	if err := in.Check(0, 5000, false, 0, 1); err != nil {
		t.Fatalf("disk 0: %v", err)
	}
}

func TestTransientCoinDeterministic(t *testing.T) {
	sched := Schedule{
		Seed:       42,
		Transients: []TransientWindow{{Disk: -1, From: 0, Until: 10000, PerMille: 300}},
	}
	run := func() []bool {
		in := NewInjector(sched, 3)
		var out []bool
		for i := 0; i < 200; i++ {
			out = append(out, in.Check(i%3, sim.Time(i), false, 0, 1) != nil)
		}
		return out
	}
	a, b := run(), run()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("access %d differs between identical runs", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("degenerate coin: %d/%d hits", hits, len(a))
	}

	// a different seed must change the sequence
	sched.Seed = 43
	c := NewInjector(sched, 3)
	same := true
	for i := 0; i < 200; i++ {
		if (c.Check(i%3, sim.Time(i), false, 0, 1) != nil) != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seed change did not alter the coin sequence")
	}
}

func TestSectorErrorsAndWriteHeal(t *testing.T) {
	in := NewInjector(Schedule{
		Sectors: []SectorRange{{Disk: 0, Start: 100, Count: 50, From: 10}},
	}, 1)

	// before From the range is latent-but-silent
	if err := in.Check(0, 5, false, 120, 1); err != nil {
		t.Fatalf("before From: %v", err)
	}
	// an overlapping read fails with the first bad block
	err := in.Check(0, 20, false, 90, 20)
	if err == nil || err.Kind != KindSectorError || err.Block != 100 {
		t.Fatalf("overlapping read: %v", err)
	}
	// a disjoint read is fine
	if err := in.Check(0, 20, false, 0, 100); err != nil {
		t.Fatalf("disjoint read: %v", err)
	}
	// writing the middle splits the range: head and tail still fail
	if err := in.Check(0, 30, true, 110, 10); err != nil {
		t.Fatalf("healing write: %v", err)
	}
	if err := in.Check(0, 40, false, 112, 4); err != nil {
		t.Fatalf("healed blocks still bad: %v", err)
	}
	if err := in.Check(0, 40, false, 105, 2); err == nil {
		t.Fatal("head of split range silently healed")
	}
	if err := in.Check(0, 40, false, 130, 2); err == nil {
		t.Fatal("tail of split range silently healed")
	}
	// Heal (the reconstruct-and-write-back path) clears the rest
	in.Heal(0, 100, 50)
	if err := in.Check(0, 50, false, 100, 50); err != nil {
		t.Fatalf("after Heal: %v", err)
	}
	if s := in.Stats(); s.HealedRanges == 0 || s.Sector == 0 {
		t.Fatalf("stats did not track activity: %+v", s)
	}
}

func TestReplaceDiskClearsFailureAndSectors(t *testing.T) {
	in := NewInjector(Schedule{
		Fails:   []DiskFail{{Disk: 0, At: 0}},
		Sectors: []SectorRange{{Disk: 0, Start: 0, Count: 10}},
		Slow:    []SlowWindow{{Disk: 0, From: 0, Until: 1000, Factor: 3}},
	}, 1)
	if err := in.Check(0, 10, false, 0, 1); err == nil || err.Kind != KindDiskFailed {
		t.Fatalf("want disk failure: %v", err)
	}
	in.ReplaceDisk(0)
	if err := in.Check(0, 10, false, 0, 10); err != nil {
		t.Fatalf("replaced disk still faulty: %v", err)
	}
	// slow windows model the transport, not the device: they survive
	if got := in.Inflate(0, 10, 100); got != 300 {
		t.Fatalf("slow window lost on replace: %d", got)
	}
	if s := in.Stats(); s.Replaced != 1 {
		t.Fatalf("replace not counted: %+v", s)
	}
}

func TestInflateOutsideWindow(t *testing.T) {
	in := NewInjector(Schedule{
		Slow: []SlowWindow{{Disk: 0, From: 100, Until: 200, Factor: 4}},
	}, 1)
	if got := in.Inflate(0, 50, 10); got != 10 {
		t.Fatalf("inflated outside window: %d", got)
	}
	if got := in.Inflate(0, 150, 10); got != 40 {
		t.Fatalf("window factor: %d", got)
	}
	if s := in.Stats(); s.SlowAccesses != 1 {
		t.Fatalf("slow accesses: %+v", s)
	}
}

func TestScheduleNamesOutOfRangeDisk(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range disk accepted")
		}
	}()
	NewInjector(Schedule{Sectors: []SectorRange{{Disk: 5, Start: 0, Count: 1}}}, 2)
}
