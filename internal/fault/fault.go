// Package fault is the fault model of the simulated storage stack: a
// typed error taxonomy shared by every layer (disk, RAID, engine,
// serving), and a deterministic, schedule-driven fault injector the
// disk model consults on each access.
//
// Deduplication makes storage failures worse than proportional: the Map
// table's m-to-1 LBA→PBA sharing means one lost physical block silently
// corrupts every logical address referencing it (the reason the paper
// journals the Map table in NVRAM, §III-B). This package exists so that
// machinery can actually be exercised: injectors model the classic
// primary-storage fault menagerie — latent sector errors, transient I/O
// errors, slow ("limping") disks, and whole-device failures at a virtual
// timestamp — and every injection is a pure function of (schedule, seed,
// access sequence), so chaos runs replay bit-for-bit.
//
// With no injector attached the entire subsystem is a nil check on the
// disk hot path; simulated outputs are byte-identical to a build without
// it.
package fault

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/sim"
)

// Class partitions errors by how the layers above should react:
// transient faults are worth retrying (with backoff, in virtual time);
// permanent faults are not — the request outcome is final until an
// operator-level event (rebuild completion, restore from redundancy).
type Class uint8

// Error classes.
const (
	// Transient marks errors expected to clear on retry: transport
	// glitches, dropped commands, timeouts against a limping disk.
	Transient Class = iota + 1
	// Permanent marks errors retrying cannot fix: data loss with
	// redundancy exhausted, deadline exceeded, unknown failures.
	Permanent
)

// String names the class for logs and Result records.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Permanent:
		return "permanent"
	}
	return "unknown"
}

// Kind is the specific failure mechanism.
type Kind uint8

// Failure kinds.
const (
	// KindTransientIO is a one-off I/O failure (transport or firmware
	// hiccup); the same access retried later succeeds.
	KindTransientIO Kind = iota + 1
	// KindSectorError is a latent sector error: a block range on one
	// disk is unreadable until rewritten (remapped).
	KindSectorError
	// KindDiskFailed is a whole-device failure; every access to the
	// device errors from the failure time onward.
	KindDiskFailed
	// KindDataLoss is an array-level unrecoverable error: redundancy is
	// exhausted (RAID0 device loss, double failure, LSE while degraded).
	KindDataLoss
	// KindDeadlineExceeded is a serving-layer timeout: the request's
	// virtual-time deadline passed before a retry could be scheduled.
	KindDeadlineExceeded
	// KindUnavailable is degraded service: the serving layer refused
	// the request without attempting I/O (circuit breaker open).
	KindUnavailable
	// KindShardDown is a per-shard outage: the request's home shard (or
	// the canonical owner of a remote-deduplicated block) is crashed.
	// Transient — the shard is expected to rejoin, so retries against
	// the request deadline are the right response.
	KindShardDown
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindTransientIO:
		return "transient-io"
	case KindSectorError:
		return "sector-error"
	case KindDiskFailed:
		return "disk-failed"
	case KindDataLoss:
		return "data-loss"
	case KindDeadlineExceeded:
		return "deadline-exceeded"
	case KindUnavailable:
		return "unavailable"
	case KindShardDown:
		return "shard-down"
	}
	return "unknown"
}

// Error is the typed storage error threaded from the disk model up
// through RAID, the engines, and the serving layer. Disk and Block
// locate the physical fault when one exists (-1 / ^0 otherwise); At is
// the virtual time of the failing access.
type Error struct {
	Kind  Kind
	Class Class
	Disk  int
	Block uint64
	At    sim.Time
}

// Error implements the error interface.
func (e *Error) Error() string {
	switch e.Kind {
	case KindDeadlineExceeded, KindUnavailable, KindShardDown:
		return fmt.Sprintf("fault: %s (%s) at %v", e.Kind, e.Class, e.At)
	}
	return fmt.Sprintf("fault: %s (%s) disk %d block %d at %v", e.Kind, e.Class, e.Disk, e.Block, e.At)
}

// New builds a typed error.
func New(kind Kind, class Class, disk int, block uint64, at sim.Time) *Error {
	return &Error{Kind: kind, Class: class, Disk: disk, Block: block, At: at}
}

// ClassOf classifies any error: nil is 0 (no error), a *fault.Error
// reports its own class, and everything else is Permanent (an unknown
// failure is not safe to retry blindly).
func ClassOf(err error) Class {
	if err == nil {
		return 0
	}
	if fe, ok := err.(*Error); ok {
		return fe.Class
	}
	return Permanent
}

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return ClassOf(err) == Transient }

// ---------------------------------------------------------------------
// Schedules
// ---------------------------------------------------------------------

// SectorRange declares blocks [Start, Start+Count) of one disk latent
// from From onward: reads fail with KindSectorError until the range is
// rewritten (the drive remaps on write).
type SectorRange struct {
	Disk         int
	Start, Count uint64
	From         sim.Time
}

// TransientWindow declares a transient-error storm: within [From,
// Until), each access to Disk (-1 = every disk) fails independently
// with probability PerMille/1000, decided by a deterministic hash of
// (seed, disk, access sequence).
type TransientWindow struct {
	Disk        int
	From, Until sim.Time
	PerMille    int
}

// SlowWindow declares a limping disk: within [From, Until), every
// service time on Disk is multiplied by Factor (>1). No errors — just
// latency, the failure mode that evades naive health checks.
type SlowWindow struct {
	Disk        int
	From, Until sim.Time
	Factor      float64
}

// DiskFail declares a whole-device failure of Disk at virtual time At.
type DiskFail struct {
	Disk int
	At   sim.Time
}

// Schedule is a complete fault plan for one array. The zero value
// injects nothing.
type Schedule struct {
	Seed       uint64
	Sectors    []SectorRange
	Transients []TransientWindow
	Slow       []SlowWindow
	Fails      []DiskFail
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool {
	return len(s.Sectors) == 0 && len(s.Transients) == 0 && len(s.Slow) == 0 && len(s.Fails) == 0
}

// ---------------------------------------------------------------------
// Injector
// ---------------------------------------------------------------------

// diskState is the mutable per-disk view of the schedule: sector ranges
// heal on rewrite, failed devices are replaced after rebuild, and the
// access sequence number drives the deterministic transient coin.
type diskState struct {
	seq      uint64 // accesses checked so far (the transient coin input)
	failAt   sim.Time
	failed   bool // failAt armed
	sectors  []SectorRange
	trans    []TransientWindow
	slow     []SlowWindow
	slowHits int64
}

// Injector evaluates one array's fault schedule. It is not safe for
// concurrent use — like the disks it haunts, it belongs to a single
// shard's serving goroutine.
type Injector struct {
	seed  uint64
	disks []diskState

	// lifetime counters, exported through the metrics registry
	injTransient int64
	injSector    int64
	injDiskFail  int64
	healedRanges int64
	replaced     int64
}

// NewInjector compiles a schedule for an array of ndisks spindles.
// Entries naming a disk outside [0, ndisks) panic — a silent clamp
// would make a chaos scenario quietly weaker than written.
func NewInjector(s Schedule, ndisks int) *Injector {
	in := &Injector{seed: s.Seed, disks: make([]diskState, ndisks)}
	check := func(d int) {
		if d < 0 || d >= ndisks {
			panic(fmt.Sprintf("fault: schedule names disk %d, array has %d", d, ndisks))
		}
	}
	for _, r := range s.Sectors {
		check(r.Disk)
		in.disks[r.Disk].sectors = append(in.disks[r.Disk].sectors, r)
	}
	for _, w := range s.Transients {
		if w.Disk == -1 {
			for d := range in.disks {
				in.disks[d].trans = append(in.disks[d].trans, w)
			}
			continue
		}
		check(w.Disk)
		in.disks[w.Disk].trans = append(in.disks[w.Disk].trans, w)
	}
	for _, w := range s.Slow {
		check(w.Disk)
		in.disks[w.Disk].slow = append(in.disks[w.Disk].slow, w)
	}
	for _, f := range s.Fails {
		check(f.Disk)
		ds := &in.disks[f.Disk]
		if !ds.failed || f.At < ds.failAt {
			ds.failAt, ds.failed = f.At, true
		}
	}
	return in
}

// splitmix64 is the standard 64-bit mixer; with a counter input it is a
// perfectly deterministic per-access coin.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Check evaluates the schedule for one access to disk d covering
// [start, start+n) at time t, returning the injected error or nil.
// Precedence: device failure, then transient storm, then (reads only)
// latent sector errors. Writes covering a latent range heal it — the
// drive remaps the sectors.
func (in *Injector) Check(d int, t sim.Time, write bool, start, n uint64) *Error {
	if in == nil {
		return nil
	}
	ds := &in.disks[d]
	if ds.failed && t >= ds.failAt {
		in.injDiskFail++
		return New(KindDiskFailed, Permanent, d, start, t)
	}
	for _, w := range ds.trans {
		if t < w.From || t >= w.Until {
			continue
		}
		ds.seq++
		coin := splitmix64(in.seed ^ uint64(d)<<32 ^ ds.seq)
		if int(coin%1000) < w.PerMille {
			in.injTransient++
			return New(KindTransientIO, Transient, d, start, t)
		}
		break // one coin per access, first active window wins
	}
	if write {
		in.healRange(ds, start, n)
		return nil
	}
	for _, r := range ds.sectors {
		if t < r.From || r.Count == 0 {
			continue
		}
		if start < r.Start+r.Count && r.Start < start+n {
			bad := r.Start
			if bad < start {
				bad = start
			}
			in.injSector++
			return New(KindSectorError, Permanent, d, bad, t)
		}
	}
	return nil
}

// healRange remaps any latent sectors covered by a write to [start,
// start+n): overlapping ranges shrink or vanish.
func (in *Injector) healRange(ds *diskState, start, n uint64) {
	out := ds.sectors[:0]
	for _, r := range ds.sectors {
		if start >= r.Start+r.Count || r.Start >= start+n {
			out = append(out, r)
			continue
		}
		in.healedRanges++
		// keep any un-overwritten head / tail of the range
		if r.Start < start {
			out = append(out, SectorRange{Disk: r.Disk, Start: r.Start, Count: start - r.Start, From: r.From})
		}
		if r.Start+r.Count > start+n {
			out = append(out, SectorRange{Disk: r.Disk, Start: start + n, Count: r.Start + r.Count - start - n, From: r.From})
		}
	}
	ds.sectors = out
}

// Heal remaps latent sectors in [start, start+n) on disk d — the RAID
// layer calls it after reconstructing a sector and writing it back.
func (in *Injector) Heal(d int, start, n uint64) {
	if in == nil {
		return
	}
	in.healRange(&in.disks[d], start, n)
}

// Inflate applies any active slow-disk window to a service time.
func (in *Injector) Inflate(d int, t sim.Time, svc sim.Duration) sim.Duration {
	if in == nil {
		return svc
	}
	ds := &in.disks[d]
	for _, w := range ds.slow {
		if t >= w.From && t < w.Until && w.Factor > 1 {
			ds.slowHits++
			return sim.Duration(float64(svc) * w.Factor)
		}
	}
	return svc
}

// ReplaceDisk models swapping in a fresh device for disk d (the RAID
// layer calls it when it installs a hot spare): the pending device
// failure and all latent sectors are cleared — new hardware, new luck.
// Transient and slow windows remain; they model the shared transport.
func (in *Injector) ReplaceDisk(d int) {
	if in == nil {
		return
	}
	ds := &in.disks[d]
	ds.failed = false
	ds.failAt = 0
	ds.sectors = nil
	in.replaced++
}

// Stats is a snapshot of injection activity.
type Stats struct {
	Transient, Sector, DiskFail int64
	HealedRanges, Replaced      int64
	SlowAccesses                int64
}

// Stats reports lifetime injection counts.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	s := Stats{
		Transient: in.injTransient, Sector: in.injSector, DiskFail: in.injDiskFail,
		HealedRanges: in.healedRanges, Replaced: in.replaced,
	}
	for i := range in.disks {
		s.SlowAccesses += in.disks[i].slowHits
	}
	return s
}
