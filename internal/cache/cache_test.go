package cache

import (
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	c := NewLRU[int, string](2)
	c.Put(1, "a")
	c.Put(2, "b")
	if v, ok := c.Get(1); !ok || v != "a" {
		t.Fatal("miss on present key")
	}
	ev, evicted := c.Put(3, "c") // evicts 2 (1 was promoted by Get)
	if !evicted || ev.Key != 2 {
		t.Fatalf("evicted = %+v,%v, want key 2", ev, evicted)
	}
	if c.Contains(2) {
		t.Fatal("evicted key still present")
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestLRUUpdateDoesNotEvict(t *testing.T) {
	c := NewLRU[int, int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	_, evicted := c.Put(1, 11)
	if evicted {
		t.Fatal("update must not evict")
	}
	if v, _ := c.Get(1); v != 11 {
		t.Fatal("update lost")
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU[int, int](0)
	ev, evicted := c.Put(1, 1)
	if !evicted || ev.Key != 1 {
		t.Fatal("zero-cap cache must bounce inserts back as evictions")
	}
	if c.Len() != 0 {
		t.Fatal("zero-cap cache must stay empty")
	}
}

func TestLRUNegativeCapacityClamped(t *testing.T) {
	c := NewLRU[int, int](-5)
	if c.Cap() != 0 {
		t.Fatal("negative capacity must clamp to 0")
	}
}

func TestLRUHitMissAccounting(t *testing.T) {
	c := NewLRU[int, int](2)
	c.Put(1, 1)
	c.Get(1)
	c.Get(2)
	if c.Hits() != 1 || c.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", c.Hits(), c.Misses())
	}
	c.ResetStats()
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestLRUPeekDoesNotPromote(t *testing.T) {
	c := NewLRU[int, int](2)
	c.Put(1, 1)
	c.Put(2, 2)
	c.Peek(1)          // must NOT promote
	c.Put(3, 3)        // evicts 1
	if c.Contains(1) { // would still be present if Peek promoted
		t.Fatal("Peek promoted")
	}
}

func TestLRURemove(t *testing.T) {
	c := NewLRU[int, int](2)
	c.Put(1, 1)
	if !c.Remove(1) || c.Remove(1) {
		t.Fatal("Remove semantics wrong")
	}
}

func TestLRUResizeEvictsOldestFirst(t *testing.T) {
	c := NewLRU[int, int](4)
	for i := 1; i <= 4; i++ {
		c.Put(i, i)
	}
	ev := c.Resize(2)
	if len(ev) != 2 || ev[0].Key != 1 || ev[1].Key != 2 {
		t.Fatalf("resize evictions = %+v", ev)
	}
	if c.Cap() != 2 || c.Len() != 2 {
		t.Fatal("resize bookkeeping wrong")
	}
	if ev2 := c.Resize(10); len(ev2) != 0 {
		t.Fatal("growing must not evict")
	}
}

func TestLRUOldestAndEach(t *testing.T) {
	c := NewLRU[int, int](3)
	if _, ok := c.Oldest(); ok {
		t.Fatal("empty cache has no oldest")
	}
	c.Put(1, 1)
	c.Put(2, 2)
	c.Put(3, 3)
	if k, _ := c.Oldest(); k != 1 {
		t.Fatalf("oldest = %d, want 1", k)
	}
	var order []int
	c.Each(func(k, v int) bool {
		order = append(order, k)
		return true
	})
	if len(order) != 3 || order[0] != 3 || order[2] != 1 {
		t.Fatalf("Each order = %v, want MRU->LRU", order)
	}
	var first []int
	c.Each(func(k, v int) bool {
		first = append(first, k)
		return false
	})
	if len(first) != 1 {
		t.Fatal("Each early stop failed")
	}
}

func TestGhostHit(t *testing.T) {
	g := NewGhost[int](2)
	g.Add(1)
	g.Add(2)
	if !g.Hit(1) {
		t.Fatal("expected ghost hit")
	}
	if g.Hit(1) {
		t.Fatal("ghost hit must consume the entry")
	}
	if g.GhostHits() != 1 {
		t.Fatalf("ghost hits = %d", g.GhostHits())
	}
	g.ResetStats()
	if g.GhostHits() != 0 {
		t.Fatal("ResetStats failed")
	}
}

func TestGhostCapacity(t *testing.T) {
	g := NewGhost[int](2)
	g.Add(1)
	g.Add(2)
	g.Add(3) // evicts 1
	if g.Contains(1) || !g.Contains(2) || !g.Contains(3) {
		t.Fatal("ghost LRU eviction wrong")
	}
	if g.Len() != 2 {
		t.Fatalf("len = %d", g.Len())
	}
	g.Resize(1)
	if g.Len() != 1 {
		t.Fatal("ghost resize failed")
	}
	g.Remove(3)
	if g.Len() != 0 {
		t.Fatal("ghost remove failed")
	}
}

func TestARCBasic(t *testing.T) {
	a := NewARC[int, int](4)
	for i := 0; i < 8; i++ {
		a.Put(i, i)
	}
	if a.Len() > 4 {
		t.Fatalf("ARC overflow: len=%d cap=4", a.Len())
	}
	a.Put(100, 100)
	if v, ok := a.Get(100); !ok || v != 100 {
		t.Fatal("recent insert must be cached")
	}
}

func TestARCPromotesFrequent(t *testing.T) {
	a := NewARC[int, int](4)
	a.Put(1, 1)
	a.Get(1) // promote to T2
	for i := 10; i < 14; i++ {
		a.Put(i, i) // flood with recency traffic
	}
	if _, ok := a.Get(1); !ok {
		t.Fatal("frequent entry evicted by recency flood")
	}
}

func TestARCAdaptsP(t *testing.T) {
	a := NewARC[int, int](4)
	// Fill T1, promote two keys to T2 so REPLACE can push T1 victims
	// into the B1 ghost (a pure scan never populates B1 in ARC).
	for i := 1; i <= 4; i++ {
		a.Put(i, i)
	}
	a.Get(1)
	a.Get(2)    // T2={1,2}, T1={3,4}
	a.Put(5, 5) // REPLACE moves T1's LRU (3) into B1
	p0 := a.P()
	a.Put(3, 3) // B1 ghost hit: p must grow
	if a.P() <= p0 {
		t.Fatalf("p must grow on B1 ghost hit: %d -> %d", p0, a.P())
	}
}

func TestARCHitAccounting(t *testing.T) {
	a := NewARC[int, int](2)
	a.Put(1, 1)
	a.Get(1)
	a.Get(2)
	if a.Hits() != 1 || a.Misses() != 1 {
		t.Fatalf("hits/misses = %d/%d", a.Hits(), a.Misses())
	}
	if !a.Contains(1) || a.Contains(2) {
		t.Fatal("Contains wrong")
	}
}

func TestARCMinCapacity(t *testing.T) {
	a := NewARC[int, int](0)
	if a.Cap() != 1 {
		t.Fatal("capacity must clamp to 1")
	}
	a.Put(1, 1)
	a.Put(2, 2)
	if a.Len() > 1 {
		t.Fatal("overflow")
	}
}

// Property: an LRU never exceeds capacity, and a Get immediately after
// Put always hits (capacity ≥ 1).
func TestLRUProperty(t *testing.T) {
	f := func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		c := NewLRU[uint8, int](capacity)
		for i, k := range keys {
			c.Put(k, i)
			if c.Len() > capacity {
				return false
			}
			if v, ok := c.Get(k); !ok || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ARC never exceeds capacity and never loses the most
// recently inserted key before any other insertion happens.
func TestARCProperty(t *testing.T) {
	f := func(keys []uint8, capRaw uint8) bool {
		capacity := int(capRaw%16) + 1
		a := NewARC[uint8, int](capacity)
		for i, k := range keys {
			a.Put(k, i)
			if a.Len() > capacity {
				return false
			}
			if v, ok := a.Get(k); !ok || v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// BenchmarkLRU measures the slab LRU's hot operations in isolation;
// run with -benchmem — the Put and Touch paths must stay at zero
// allocations per op once the slab is warm.
func BenchmarkLRU(b *testing.B) {
	b.Run("Put", func(b *testing.B) {
		c := NewLRU[uint64, uint64](1024)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Put(uint64(i)%4096, uint64(i))
		}
	})
	b.Run("GetHit", func(b *testing.B) {
		c := NewLRU[uint64, uint64](1024)
		for i := uint64(0); i < 1024; i++ {
			c.Put(i, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Get(uint64(i) % 1024)
		}
	})
	b.Run("TouchHit", func(b *testing.B) {
		c := NewLRU[uint64, uint64](1024)
		for i := uint64(0); i < 1024; i++ {
			c.Put(i, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if v, ok := c.Touch(uint64(i) % 1024); ok {
				*v++
			}
		}
	})
	b.Run("Take", func(b *testing.B) {
		c := NewLRU[uint64, uint64](1024)
		for i := uint64(0); i < 1024; i++ {
			c.Put(i, i)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := uint64(i) % 1024
			if v, ok := c.Take(k); ok {
				c.Put(k, v)
			}
		}
	})
}

func BenchmarkLRUPutGet(b *testing.B) {
	c := NewLRU[int, int](1024)
	for i := 0; i < b.N; i++ {
		c.Put(i%4096, i)
		c.Get((i * 7) % 4096)
	}
}

func BenchmarkARCPutGet(b *testing.B) {
	a := NewARC[int, int](1024)
	for i := 0; i < b.N; i++ {
		a.Put(i%4096, i)
		a.Get((i * 7) % 4096)
	}
}
