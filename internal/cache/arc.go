package cache

// ARC is the Adaptive Replacement Cache of Megiddo & Modha (FAST'03),
// which the POD paper cites as prior art for ghost-list-driven
// adaptation. It is included as an ablation baseline: iCache adapts the
// *partition between two caches of different types* (index vs read),
// whereas ARC adapts the recency/frequency balance within one cache.
//
// The implementation follows the paper's Figure 4 pseudocode: T1/T2
// hold cached entries (recent / frequent), B1/B2 hold ghost keys, and
// the target size p of T1 adapts on ghost hits.
type ARC[K comparable, V any] struct {
	c int // total capacity
	p int // target size of t1

	t1, t2 *LRU[K, V]
	b1, b2 *Ghost[K]

	hits, misses int64
}

// NewARC returns an empty ARC with capacity c entries.
func NewARC[K comparable, V any](c int) *ARC[K, V] {
	if c < 1 {
		c = 1
	}
	return &ARC[K, V]{
		c:  c,
		t1: NewLRU[K, V](c), t2: NewLRU[K, V](c),
		b1: NewGhost[K](c), b2: NewGhost[K](c),
	}
}

// Len reports the number of cached (non-ghost) entries.
func (a *ARC[K, V]) Len() int { return a.t1.Len() + a.t2.Len() }

// Cap reports the capacity.
func (a *ARC[K, V]) Cap() int { return a.c }

// P returns the adaptive target size of the recency list (for tests).
func (a *ARC[K, V]) P() int { return a.p }

// Hits and Misses report Get accounting.
func (a *ARC[K, V]) Hits() int64   { return a.hits }
func (a *ARC[K, V]) Misses() int64 { return a.misses }

// Get returns the cached value, promoting a T1 hit into T2.
func (a *ARC[K, V]) Get(key K) (V, bool) {
	if v, ok := a.t1.Take(key); ok {
		a.hits++
		a.t2.Put(key, v)
		return v, true
	}
	if v, ok := a.t2.Get(key); ok {
		a.hits++
		return v, true
	}
	a.misses++
	var zero V
	return zero, false
}

// Contains reports presence in the cached lists.
func (a *ARC[K, V]) Contains(key K) bool {
	return a.t1.Contains(key) || a.t2.Contains(key)
}

// Put inserts key. Ghost hits adapt p exactly as in the ARC paper.
func (a *ARC[K, V]) Put(key K, val V) {
	switch {
	case a.t1.Remove(key): // was in T1: promote into T2
		a.t2.Put(key, val)
	case a.t2.Contains(key):
		a.t2.Put(key, val)
	case a.b1.Contains(key):
		// Case II: ghost hit in B1 → favor recency.
		delta := 1
		if b1, b2 := a.b1.Len(), a.b2.Len(); b1 > 0 && b2 > b1 {
			delta = b2 / b1
		}
		a.p = min(a.p+delta, a.c)
		a.replace(key)
		a.b1.Remove(key)
		a.t2.Put(key, val)
	case a.b2.Contains(key):
		// Case III: ghost hit in B2 → favor frequency.
		delta := 1
		if b1, b2 := a.b1.Len(), a.b2.Len(); b2 > 0 && b1 > b2 {
			delta = b1 / b2
		}
		a.p = max(a.p-delta, 0)
		a.replace(key)
		a.b2.Remove(key)
		a.t2.Put(key, val)
	default:
		// Case IV: brand new key.
		l1 := a.t1.Len() + a.b1.Len()
		if l1 == a.c {
			if a.t1.Len() < a.c {
				// delete LRU of B1, replace
				if k, ok := a.b1.lru.Oldest(); ok {
					a.b1.lru.Remove(k)
				}
				a.replace(key)
			} else {
				// delete LRU of T1
				if k, ok := a.t1.Oldest(); ok {
					a.t1.Remove(k)
				}
			}
		} else if l1 < a.c && a.t1.Len()+a.t2.Len()+a.b1.Len()+a.b2.Len() >= a.c {
			if a.t1.Len()+a.t2.Len()+a.b1.Len()+a.b2.Len() >= 2*a.c {
				if k, ok := a.b2.lru.Oldest(); ok {
					a.b2.lru.Remove(k)
				}
			}
			a.replace(key)
		}
		a.t1.Put(key, val)
	}
}

// replace implements the ARC REPLACE subroutine: evict from T1 into B1
// or from T2 into B2 according to the adaptive target p.
func (a *ARC[K, V]) replace(key K) {
	if a.t1.Len() > 0 && (a.t1.Len() > a.p || (a.b2.Contains(key) && a.t1.Len() == a.p)) {
		if k, ok := a.t1.Oldest(); ok {
			a.t1.Remove(k)
			a.b1.Add(k)
		}
	} else {
		if k, ok := a.t2.Oldest(); ok {
			a.t2.Remove(k)
			a.b2.Add(k)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
