package cache

import (
	"math/rand"
	"testing"
)

// zipfStream produces a Zipf-distributed key stream — the access
// pattern where ARC's frequency list pays off over plain LRU.
func zipfStream(n, universe int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, 1.2, 1, uint64(universe-1))
	out := make([]int, n)
	for i := range out {
		out[i] = int(z.Uint64())
	}
	return out
}

// scanStream produces sequential scans — the pattern that pollutes an
// LRU but bounces off ARC's recency list.
func scanStream(n, stride int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 1_000_000 + i%stride
	}
	return out
}

func hitRate[C interface {
	Get(int) (int, bool)
	Put(int, int)
}](c C, keys []int) float64 {
	hits := 0
	for _, k := range keys {
		if _, ok := c.Get(k); ok {
			hits++
		} else {
			c.Put(k, k)
		}
	}
	return float64(hits) / float64(len(keys))
}

type lruAdapter struct{ *LRU[int, int] }

func (a lruAdapter) Put(k, v int) { a.LRU.Put(k, v) }

// ARC must beat LRU when a hot Zipf working set is interleaved with
// cache-polluting scans — the scenario it was designed for (and the
// reason the POD paper cites it as prior art for adaptive caching).
func TestARCBeatsLRUUnderScanPollution(t *testing.T) {
	const capacity = 256
	var keys []int
	hot := zipfStream(20000, 2048, 1)
	for i := 0; i < len(hot); i += 2000 {
		keys = append(keys, hot[i:i+2000]...)
		keys = append(keys, scanStream(1000, 4096)...) // pollution burst
	}

	lru := lruAdapter{NewLRU[int, int](capacity)}
	arc := NewARC[int, int](capacity)
	lruHits := hitRate[lruAdapter](lru, keys)
	arcHits := hitRate[*ARC[int, int]](arc, keys)

	if arcHits <= lruHits {
		t.Fatalf("ARC (%.3f) must beat LRU (%.3f) under scan pollution", arcHits, lruHits)
	}
}

// BenchmarkPolicyHitRates reports the hit ratios of LRU and ARC on the
// same Zipf-plus-scan stream (custom metrics, not ns/op).
func BenchmarkPolicyHitRates(b *testing.B) {
	const capacity = 256
	var keys []int
	hot := zipfStream(20000, 2048, 1)
	for i := 0; i < len(hot); i += 2000 {
		keys = append(keys, hot[i:i+2000]...)
		keys = append(keys, scanStream(1000, 4096)...)
	}
	for i := 0; i < b.N; i++ {
		lru := lruAdapter{NewLRU[int, int](capacity)}
		arc := NewARC[int, int](capacity)
		b.ReportMetric(100*hitRate[lruAdapter](lru, keys), "lru-hit-%")
		b.ReportMetric(100*hitRate[*ARC[int, int]](arc, keys), "arc-hit-%")
	}
}
