// Package cache provides the replacement-policy building blocks used by
// POD's storage cache: a generic LRU, a metadata-only ghost LRU, and a
// reference ARC implementation used as an ablation baseline for iCache.
package cache

import "container/list"

// entry is one LRU element.
type entry[K comparable, V any] struct {
	key K
	val V
}

// Evicted describes one entry pushed out of an LRU.
type Evicted[K comparable, V any] struct {
	Key K
	Val V
}

// LRU is a least-recently-used cache with a capacity in entries.
// A zero capacity cache stores nothing and evicts everything
// immediately. Not safe for concurrent use.
type LRU[K comparable, V any] struct {
	cap   int
	ll    *list.List
	items map[K]*list.Element

	hits, misses int64
}

// NewLRU returns an empty LRU with the given capacity.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	return &LRU[K, V]{cap: capacity, ll: list.New(), items: make(map[K]*list.Element)}
}

// Len reports the number of cached entries.
func (c *LRU[K, V]) Len() int { return c.ll.Len() }

// Cap reports the capacity.
func (c *LRU[K, V]) Cap() int { return c.cap }

// Hits and Misses report Get accounting.
func (c *LRU[K, V]) Hits() int64   { return c.hits }
func (c *LRU[K, V]) Misses() int64 { return c.misses }

// ResetStats clears hit/miss accounting without touching contents.
func (c *LRU[K, V]) ResetStats() { c.hits, c.misses = 0, 0 }

// Get returns the value for key, promoting it to most-recent.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the value without promoting or accounting.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	if el, ok := c.items[key]; ok {
		return el.Value.(*entry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// Contains reports presence without promoting or accounting.
func (c *LRU[K, V]) Contains(key K) bool {
	_, ok := c.items[key]
	return ok
}

// Put inserts or updates key, promoting it, and returns the entry
// evicted to make room, if any.
func (c *LRU[K, V]) Put(key K, val V) (ev Evicted[K, V], evicted bool) {
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*entry[K, V]).val = val
		return ev, false
	}
	if c.cap == 0 {
		return Evicted[K, V]{Key: key, Val: val}, true
	}
	el := c.ll.PushFront(&entry[K, V]{key: key, val: val})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		return c.evictOldest()
	}
	return ev, false
}

// Remove deletes key, reporting whether it was present.
func (c *LRU[K, V]) Remove(key K) bool {
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	return true
}

// evictOldest removes and returns the LRU entry.
func (c *LRU[K, V]) evictOldest() (Evicted[K, V], bool) {
	el := c.ll.Back()
	if el == nil {
		return Evicted[K, V]{}, false
	}
	e := el.Value.(*entry[K, V])
	c.ll.Remove(el)
	delete(c.items, e.key)
	return Evicted[K, V]{Key: e.key, Val: e.val}, true
}

// Resize changes the capacity, returning everything evicted when
// shrinking (oldest first).
func (c *LRU[K, V]) Resize(capacity int) []Evicted[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	c.cap = capacity
	var out []Evicted[K, V]
	for c.ll.Len() > c.cap {
		if ev, ok := c.evictOldest(); ok {
			out = append(out, ev)
		}
	}
	return out
}

// Oldest returns the least-recently-used key without removing it.
func (c *LRU[K, V]) Oldest() (K, bool) {
	el := c.ll.Back()
	if el == nil {
		var zero K
		return zero, false
	}
	return el.Value.(*entry[K, V]).key, true
}

// Each visits entries from most to least recently used; return false
// from fn to stop early.
func (c *LRU[K, V]) Each(fn func(K, V) bool) {
	for el := c.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*entry[K, V])
		if !fn(e.key, e.val) {
			return
		}
	}
}

// Ghost is a metadata-only LRU of keys, used to estimate the benefit of
// a larger cache: when a key evicted from the actual cache is re-
// referenced while still in the ghost, a bigger cache would have hit.
type Ghost[K comparable] struct {
	lru *LRU[K, struct{}]

	ghostHits int64
}

// NewGhost returns an empty ghost list with the given capacity.
func NewGhost[K comparable](capacity int) *Ghost[K] {
	return &Ghost[K]{lru: NewLRU[K, struct{}](capacity)}
}

// Add records an eviction from the actual cache.
func (g *Ghost[K]) Add(key K) { g.lru.Put(key, struct{}{}) }

// Hit tests whether key is present; if so it is removed (the caller is
// about to re-admit it to the actual cache) and the ghost-hit counter
// increments.
func (g *Ghost[K]) Hit(key K) bool {
	if g.lru.Contains(key) {
		g.lru.Remove(key)
		g.ghostHits++
		return true
	}
	return false
}

// Contains tests presence without removing.
func (g *Ghost[K]) Contains(key K) bool { return g.lru.Contains(key) }

// Remove deletes key (used when the actual cache re-admits through a
// different path).
func (g *Ghost[K]) Remove(key K) { g.lru.Remove(key) }

// Len reports the number of ghost entries.
func (g *Ghost[K]) Len() int { return g.lru.Len() }

// Resize changes the ghost capacity.
func (g *Ghost[K]) Resize(capacity int) { g.lru.Resize(capacity) }

// EachMRU visits ghost keys from most to least recently added; return
// false from fn to stop early.
func (g *Ghost[K]) EachMRU(fn func(K) bool) {
	g.lru.Each(func(k K, _ struct{}) bool { return fn(k) })
}

// GhostHits reports how many re-references hit the ghost since the last
// ResetStats.
func (g *Ghost[K]) GhostHits() int64 { return g.ghostHits }

// ResetStats clears the ghost-hit counter.
func (g *Ghost[K]) ResetStats() { g.ghostHits = 0 }
