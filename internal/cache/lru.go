// Package cache provides the replacement-policy building blocks used by
// POD's storage cache: a generic LRU, a metadata-only ghost LRU, and a
// reference ARC implementation used as an ablation baseline for iCache.
package cache

import "github.com/pod-dedup/pod/internal/probe"

// entry is one LRU element, linked into a circular intrusive list
// through slab indices (slot 0 is the sentinel). Compared to
// container/list this costs zero heap allocations per insert once the
// slab is warm, and keeps entries cache-line adjacent.
type entry[K comparable, V any] struct {
	key        K
	val        V
	prev, next int32
}

// Evicted describes one entry pushed out of an LRU.
type Evicted[K comparable, V any] struct {
	Key K
	Val V
}

// LRU is a least-recently-used cache with a capacity in entries.
// A zero capacity cache stores nothing and evicts everything
// immediately. Not safe for concurrent use.
type LRU[K comparable, V any] struct {
	cap   int
	slab  []entry[K, V] // slot 0 is the sentinel of the circular list
	freeL int32         // head of the free-slot list, linked via next; -1 none
	items *probe.Map[K, int32]

	hits, misses int64
}

// NewLRU returns an empty LRU with the given capacity.
func NewLRU[K comparable, V any](capacity int) *LRU[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	// Presize the directory for small caches; large ones grow on demand
	// (the table doubles deterministically), which avoids committing
	// hundreds of MB up front for a capacity the workload may not fill.
	hint := capacity
	if hint > 1<<16 {
		hint = 1 << 16
	}
	c := &LRU[K, V]{cap: capacity, freeL: -1, items: probe.NewMap[K, int32](hint)}
	c.slab = make([]entry[K, V], 1, 8) // sentinel
	return c
}

// Len reports the number of cached entries.
func (c *LRU[K, V]) Len() int { return c.items.Len() }

// Cap reports the capacity.
func (c *LRU[K, V]) Cap() int { return c.cap }

// Hits and Misses report Get accounting.
func (c *LRU[K, V]) Hits() int64   { return c.hits }
func (c *LRU[K, V]) Misses() int64 { return c.misses }

// ResetStats clears hit/miss accounting without touching contents.
func (c *LRU[K, V]) ResetStats() { c.hits, c.misses = 0, 0 }

// unlink detaches slot i from the recency list.
func (c *LRU[K, V]) unlink(i int32) {
	e := &c.slab[i]
	c.slab[e.prev].next = e.next
	c.slab[e.next].prev = e.prev
}

// pushFront links slot i in as most-recent.
func (c *LRU[K, V]) pushFront(i int32) {
	head := &c.slab[0]
	c.slab[i].prev = 0
	c.slab[i].next = head.next
	c.slab[head.next].prev = i
	head.next = i
}

// alloc grabs a slot from the free list or grows the slab.
func (c *LRU[K, V]) alloc() int32 {
	if i := c.freeL; i >= 0 {
		c.freeL = c.slab[i].next
		return i
	}
	c.slab = append(c.slab, entry[K, V]{})
	return int32(len(c.slab) - 1)
}

// release zeroes slot i (dropping key/value references for the GC) and
// returns it to the free list.
func (c *LRU[K, V]) release(i int32) {
	c.slab[i] = entry[K, V]{next: c.freeL}
	c.freeL = i
}

// Get returns the value for key, promoting it to most-recent.
func (c *LRU[K, V]) Get(key K) (V, bool) {
	if i, ok := c.items.Get(key); ok {
		c.hits++
		c.unlink(i)
		c.pushFront(i)
		return c.slab[i].val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Touch promotes key to most-recent and returns a pointer to its value
// for in-place mutation, with the same hit/miss accounting as Get. The
// pointer is valid only until the next mutating call on the LRU. It
// replaces the Get-then-Put idiom, which paid two map lookups and two
// list moves per update on the fingerprint-index hot path.
func (c *LRU[K, V]) Touch(key K) (*V, bool) {
	if i, ok := c.items.Get(key); ok {
		c.hits++
		c.unlink(i)
		c.pushFront(i)
		return &c.slab[i].val, true
	}
	c.misses++
	return nil, false
}

// Peek returns the value without promoting or accounting.
func (c *LRU[K, V]) Peek(key K) (V, bool) {
	if i, ok := c.items.Get(key); ok {
		return c.slab[i].val, true
	}
	var zero V
	return zero, false
}

// Contains reports presence without promoting or accounting.
func (c *LRU[K, V]) Contains(key K) bool {
	_, ok := c.items.Get(key)
	return ok
}

// Put inserts or updates key, promoting it, and returns the entry
// evicted to make room, if any.
func (c *LRU[K, V]) Put(key K, val V) (ev Evicted[K, V], evicted bool) {
	if c.cap == 0 {
		// the directory is always empty at zero capacity, so the
		// update branch below cannot apply
		return Evicted[K, V]{Key: key, Val: val}, true
	}
	p, inserted := c.items.Ref(key)
	if !inserted {
		i := *p
		c.unlink(i)
		c.pushFront(i)
		c.slab[i].val = val
		return ev, false
	}
	i := c.alloc()
	c.slab[i].key = key
	c.slab[i].val = val
	c.pushFront(i)
	*p = i
	if c.items.Len() > c.cap {
		return c.evictOldest()
	}
	return ev, false
}

// Remove deletes key, reporting whether it was present.
func (c *LRU[K, V]) Remove(key K) bool {
	i, ok := c.items.Take(key)
	if !ok {
		return false
	}
	c.unlink(i)
	c.release(i)
	return true
}

// Take removes key and returns its value — a single-traversal
// Peek+Remove for callers that must surface the evicted value.
func (c *LRU[K, V]) Take(key K) (V, bool) {
	i, ok := c.items.Take(key)
	if !ok {
		var zero V
		return zero, false
	}
	v := c.slab[i].val
	c.unlink(i)
	c.release(i)
	return v, true
}

// evictOldest removes and returns the LRU entry.
func (c *LRU[K, V]) evictOldest() (Evicted[K, V], bool) {
	i := c.slab[0].prev
	if i == 0 {
		return Evicted[K, V]{}, false
	}
	e := Evicted[K, V]{Key: c.slab[i].key, Val: c.slab[i].val}
	c.unlink(i)
	c.items.Take(e.Key)
	c.release(i)
	return e, true
}

// Resize changes the capacity, returning everything evicted when
// shrinking (oldest first).
func (c *LRU[K, V]) Resize(capacity int) []Evicted[K, V] {
	if capacity < 0 {
		capacity = 0
	}
	c.cap = capacity
	var out []Evicted[K, V]
	for c.items.Len() > c.cap {
		if ev, ok := c.evictOldest(); ok {
			out = append(out, ev)
		}
	}
	return out
}

// Oldest returns the least-recently-used key without removing it.
func (c *LRU[K, V]) Oldest() (K, bool) {
	i := c.slab[0].prev
	if i == 0 {
		var zero K
		return zero, false
	}
	return c.slab[i].key, true
}

// Each visits entries from most to least recently used; return false
// from fn to stop early.
func (c *LRU[K, V]) Each(fn func(K, V) bool) {
	for i := c.slab[0].next; i != 0; i = c.slab[i].next {
		if !fn(c.slab[i].key, c.slab[i].val) {
			return
		}
	}
}

// Ghost is a metadata-only LRU of keys, used to estimate the benefit of
// a larger cache: when a key evicted from the actual cache is re-
// referenced while still in the ghost, a bigger cache would have hit.
type Ghost[K comparable] struct {
	lru *LRU[K, struct{}]

	ghostHits int64
}

// NewGhost returns an empty ghost list with the given capacity.
func NewGhost[K comparable](capacity int) *Ghost[K] {
	return &Ghost[K]{lru: NewLRU[K, struct{}](capacity)}
}

// Add records an eviction from the actual cache.
func (g *Ghost[K]) Add(key K) { g.lru.Put(key, struct{}{}) }

// Hit tests whether key is present; if so it is removed (the caller is
// about to re-admit it to the actual cache) and the ghost-hit counter
// increments.
func (g *Ghost[K]) Hit(key K) bool {
	if g.lru.Remove(key) {
		g.ghostHits++
		return true
	}
	return false
}

// Contains tests presence without removing.
func (g *Ghost[K]) Contains(key K) bool { return g.lru.Contains(key) }

// Remove deletes key (used when the actual cache re-admits through a
// different path).
func (g *Ghost[K]) Remove(key K) { g.lru.Remove(key) }

// Len reports the number of ghost entries.
func (g *Ghost[K]) Len() int { return g.lru.Len() }

// Resize changes the ghost capacity.
func (g *Ghost[K]) Resize(capacity int) { g.lru.Resize(capacity) }

// EachMRU visits ghost keys from most to least recently added; return
// false from fn to stop early.
func (g *Ghost[K]) EachMRU(fn func(K) bool) {
	g.lru.Each(func(k K, _ struct{}) bool { return fn(k) })
}

// GhostHits reports how many re-references hit the ghost since the last
// ResetStats.
func (g *Ghost[K]) GhostHits() int64 { return g.ghostHits }

// ResetStats clears the ghost-hit counter.
func (g *Ghost[K]) ResetStats() { g.ghostHits = 0 }
