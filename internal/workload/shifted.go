package workload

import (
	"math/rand"

	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// Shifted-content snapshot workload: the trace family built for the
// content-defined chunking axis. Each tenant object is a snapshot-like
// byte stream rewritten across generations, where every generation
// prepends a small head edit (insert 1–16 / delete 1–8 bytes, see
// internal/cdc's materializer) that shifts ALL later bytes. Every
// (object, generation, block) ContentID is unique, so fixed-4K
// chunking finds zero redundancy by construction — while at the byte
// level consecutive generations are near-identical at shifted offsets,
// which Gear/SeqCDC chunking recovers. The gap between those two
// outcomes on the same trace is the whole experiment.
//
// Generation is fully deterministic in scale alone.

const (
	// shiftedGens is the snapshot chain length per object; generation 0
	// is the cold full write, generations 1+ are the shifted rewrites
	// CDC should absorb.
	shiftedGens = 8
	// shiftedBlocks is each object stream's length in 4 KiB blocks
	// (4 MiB per generation).
	shiftedBlocks = 1024
	// shiftedWindow is the write request size in blocks (128 KiB
	// extents, comfortably above the iDedup sequence threshold).
	shiftedWindow = 32
	// shiftedStride is the LBA slot spacing between request extents.
	// Under CDC one request emits up to MaxChunksPerSlots(window)
	// chunks (82 at the default 2k/16k bounds), each occupying one
	// mapped slot from the extent base, so extents are spaced with
	// headroom: 3·window + 8 = 104 slots.
	shiftedStride = 3*shiftedWindow + 8
	// shiftedReadFrac reads back prior-generation extents between
	// writes, keeping the read path honest under remapped CDC slots.
	shiftedReadFrac = 0.20
	// shiftedMemoryBytes sizes the storage cache so the fingerprint
	// index holds roughly one full generation of chunk fingerprints at
	// scale 1 (~50k chunks vs a 128k-entry index partition).
	shiftedMemoryBytes = 16 << 20

	shiftedReqGapUS  = 200 // spacing between requests in a burst, µs
	shiftedReqChunks = shiftedBlocks / shiftedWindow
)

// ShiftedObjects reports the tenant-object count at the given scale.
func ShiftedObjects(scale float64) int {
	n := int(48*scale + 0.5)
	if n < 2 {
		n = 2
	}
	return n
}

// ShiftedSnapshot generates the shifted-content snapshot trace:
// generation 0 of every object is written cold, then generations 1+
// rewrite every object to fresh LBA extents (snapshot-style, so
// redundancy must be found by fingerprint, not by LBA overwrite),
// interleaved with reads of prior-generation extents. Returns the
// trace, the warm-up request count (all of generation 0), and the
// platform dimensions.
func ShiftedSnapshot(scale float64) (*trace.Trace, int, MixedDims) {
	objects := ShiftedObjects(scale)
	rng := rand.New(rand.NewSource(0x5417F7ED))
	tr := &trace.Trace{Name: "shifted"}

	extentBase := func(obj, gen, req int) uint64 {
		return uint64(((obj*shiftedGens+gen)*shiftedReqChunks + req) * shiftedStride)
	}

	now := sim.Time(0)
	warmup := 0
	for gen := 0; gen < shiftedGens; gen++ {
		for obj := 0; obj < objects; obj++ {
			for r := 0; r < shiftedReqChunks; r++ {
				ids := make([]chunk.ContentID, shiftedWindow)
				for i := range ids {
					ids[i] = cdc.EncodeEdit(uint32(obj), uint8(gen), uint32(r*shiftedWindow+i))
				}
				tr.Requests = append(tr.Requests, trace.Request{
					Time: now, Op: trace.Write,
					LBA: extentBase(obj, gen, r), N: shiftedWindow, Content: ids,
				})
				now = now.Add(sim.Duration(shiftedReqGapUS + rng.Int63n(shiftedReqGapUS)))
				if gen == 0 {
					warmup++
					continue
				}
				// read back part of a prior generation's extent
				if rng.Float64() < shiftedReadFrac {
					rGen := rng.Intn(gen)
					rReq := rng.Intn(shiftedReqChunks)
					tr.Requests = append(tr.Requests, trace.Request{
						Time: now, Op: trace.Read,
						LBA: extentBase(obj, rGen, rReq), N: 8,
					})
					now = now.Add(sim.Duration(shiftedReqGapUS))
				}
			}
		}
		// idle gap between snapshot rounds (lets background machinery
		// and the adaptive cache settle, like the Table II bursts)
		now = now.Add(50 * sim.Second)
	}

	dims := MixedDims{
		FootprintChunks: uint64(objects*shiftedGens*shiftedReqChunks*shiftedStride) + shiftedStride,
		MemoryBytes:     shiftedMemoryBytes,
	}
	return tr, warmup, dims
}
