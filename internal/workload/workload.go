// Package workload generates the synthetic FIU-like traces this
// reproduction substitutes for the original (non-redistributable)
// SyLab web-vm / homes / mail traces.
//
// Each profile matches the published Table II characteristics (request
// count, write ratio, mean request size) and reproduces the structural
// properties the paper's analysis attributes to the workloads:
//
//   - small writes dominate and carry most of the redundancy (Fig. 1);
//   - I/O redundancy exceeds capacity redundancy because a fraction of
//     redundant writes re-target the same LBA (Fig. 2);
//   - requests arrive in alternating read-intensive and write-intensive
//     bursts separated by idle gaps (§II-B's I/O burstiness), which is
//     what gives iCache's adaptation something to adapt to;
//   - redundant content arrives in three flavours: whole rewrites of
//     previously written extents (sequential duplicates — categories 1
//     and 3), scattered single-chunk duplicates inside otherwise new
//     requests (the category-2 poison that hurts Full-Dedupe), and
//     fresh content.
//
// Generation is fully deterministic from the profile's seed.
package workload

import (
	"math/rand"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// SizeWeight is one entry of a request-size mixture.
type SizeWeight struct {
	Chunks int
	Weight int
}

// Profile parameterizes one synthetic trace.
type Profile struct {
	Name string
	Seed int64

	IOs        int     // request count at scale 1.0
	WriteRatio float64 // fraction of requests that are writes

	WriteSizes []SizeWeight // write request sizes
	ReadSizes  []SizeWeight // read request sizes

	// Write content mixture (fractions of write requests; the rest is
	// fresh content).
	FullDupFrac    float64 // rewrite of a previous extent's content
	PartialScatter float64 // new request with scattered duplicate chunks
	ScatterDupProb float64 // per-chunk duplicate probability inside scattered requests

	// Of the full rewrites, the fraction that re-target their original
	// LBA (same-location redundancy: I/O- but not capacity-redundant).
	SameLBAFrac float64

	// WriteDeepFrac is the probability that a rewrite draws its source
	// uniformly from the whole retained history instead of the recency
	// head — the knob controlling how often duplicate content arrives
	// cold (hot-index miss).
	WriteDeepFrac float64

	FootprintChunks uint64 // logical address space
	MemoryBytes     int64  // storage-cache DRAM for this trace (§IV-A)

	// Read-path locality: reads draw from a geometric recency head and,
	// with probability ReadDeepFrac, uniformly from the last ReadWindow
	// written extents. The window sizes the read working set relative
	// to the read cache (Figure 3's read-side sensitivity).
	ReadWindow   int
	ReadDeepFrac float64

	// Burst model: write-heavy phases of PhaseLen requests alternate
	// with read-heavy phases of ReadPhaseLen requests (0 = PhaseLen);
	// requests within a burst arrive ~BurstGapUS apart, with IdleGapUS
	// pauses between phases.
	PhaseLen     int
	ReadPhaseLen int
	ReadPhase    float64 // write fraction during read-heavy phases
	WritePhase   float64 // write fraction during write-heavy phases
	BurstGapUS   int
	IdleGapUS    int
	WarmupFrac   float64 // leading fraction excluded from measurement
}

// segment remembers a written extent for later rewrites and reads.
type segment struct {
	lba uint64
	ids []chunk.ContentID
}

// Generator produces requests from a profile.
type Generator struct {
	p    Profile
	rng  *rand.Rand
	next chunk.ContentID

	segments []segment
	maxSegs  int
	scale    float64

	allocLBA uint64 // bump allocator over the logical space
}

// New returns a generator for p at scale 1.0; NewScaled shrinks the
// history structures along with the trace.
func New(p Profile) *Generator { return NewScaled(p, 1.0) }

// NewScaled returns a generator whose retained-history ring and read
// window shrink with the trace scale, so cache-pressure ratios (index
// capacity vs duplicate-source depth, read cache vs read working set)
// are preserved in sub-sampled runs.
func NewScaled(p Profile, scale float64) *Generator {
	segs := int(16384 * scale)
	if segs < 512 {
		segs = 512
	}
	if segs > 16384 {
		segs = 16384
	}
	return &Generator{
		p:       p,
		rng:     rand.New(rand.NewSource(p.Seed)),
		next:    1,
		maxSegs: segs,
		scale:   scale,
	}
}

// pickSize draws from a size mixture.
func (g *Generator) pickSize(mix []SizeWeight) int {
	total := 0
	for _, sw := range mix {
		total += sw.Weight
	}
	v := g.rng.Intn(total)
	for _, sw := range mix {
		if v < sw.Weight {
			return sw.Chunks
		}
		v -= sw.Weight
	}
	return mix[len(mix)-1].Chunks
}

// segmentAt picks a segment with a geometric recency head and, with
// probability deepFrac, a uniform tail over the last window segments
// (window ≤ 0 means the whole retained history). Temporal locality with
// a long tail is what re-references content whose fingerprint has
// fallen out of the hot index (ghost hits, cold full-index lookups) and
// data that has left the read cache (read misses) — the pressure every
// cache-dependent effect in the paper relies on.
func (g *Generator) segmentAt(deepFrac float64, window int) *segment {
	n := len(g.segments)
	if n == 0 {
		return nil
	}
	if g.rng.Float64() < deepFrac {
		w := window
		if w <= 0 || w > n {
			w = n
		}
		return &g.segments[n-w+g.rng.Intn(w)]
	}
	back := 0
	for back < n-1 && g.rng.Float64() < 0.7 {
		back += g.rng.Intn(8) + 1
	}
	if back >= n {
		back = n - 1
	}
	return &g.segments[n-1-back]
}

// recentSegment is the write-path source distribution: deep tail over
// the whole history, profile-controlled.
func (g *Generator) recentSegment() *segment {
	return g.segmentAt(g.p.WriteDeepFrac, 0)
}

// readSegment is the read-path distribution: a sharper head plus a
// mid-range window sized so that read-cache capacity meaningfully moves
// the hit ratio (Figure 3's read-side gradient).
func (g *Generator) readSegment() *segment {
	window, deep := g.p.ReadWindow, g.p.ReadDeepFrac
	if window == 0 {
		window = 3000
	}
	if deep == 0 {
		deep = 0.4
	}
	window = int(float64(window) * g.scale)
	if window < 128 {
		window = 128
	}
	return g.segmentAt(deep, window)
}

func (g *Generator) freshLBA(n int) uint64 {
	if g.allocLBA+uint64(n) >= g.p.FootprintChunks {
		g.allocLBA = g.rng.Uint64() % (g.p.FootprintChunks / 4)
	}
	lba := g.allocLBA
	g.allocLBA += uint64(n)
	return lba
}

func (g *Generator) freshContent(n int) []chunk.ContentID {
	ids := make([]chunk.ContentID, n)
	for i := range ids {
		ids[i] = g.next
		g.next++
	}
	return ids
}

func (g *Generator) remember(lba uint64, ids []chunk.ContentID) {
	g.segments = append(g.segments, segment{lba: lba, ids: ids})
	if len(g.segments) > g.maxSegs {
		g.segments = g.segments[len(g.segments)-g.maxSegs:]
	}
}

// genWrite produces one write request.
func (g *Generator) genWrite(tm sim.Time) trace.Request {
	n := g.pickSize(g.p.WriteSizes)
	roll := g.rng.Float64()
	switch {
	case roll < g.p.FullDupFrac:
		// whole rewrite of a previous extent's content; first-fit
		// candidate search keeps the size distribution from being
		// collapsed by truncation
		var seg *segment
		for try := 0; try < 8; try++ {
			cand := g.recentSegment()
			if cand == nil {
				break
			}
			if seg == nil {
				seg = cand
			}
			if len(cand.ids) >= n {
				seg = cand
				break
			}
		}
		if seg != nil {
			ids := seg.ids
			if len(ids) > n {
				off := g.rng.Intn(len(ids) - n + 1)
				ids = ids[off : off+n]
			}
			cp := append([]chunk.ContentID(nil), ids...)
			lba := seg.lba
			if g.rng.Float64() >= g.p.SameLBAFrac {
				lba = g.freshLBA(len(cp))
			}
			g.remember(lba, cp)
			return trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: len(cp), Content: cp}
		}
		fallthrough
	case roll < g.p.FullDupFrac+g.p.PartialScatter:
		// new request salted with scattered duplicate chunks
		ids := make([]chunk.ContentID, n)
		for i := range ids {
			if g.rng.Float64() < g.p.ScatterDupProb && len(g.segments) > 0 {
				seg := &g.segments[g.rng.Intn(len(g.segments))]
				ids[i] = seg.ids[g.rng.Intn(len(seg.ids))]
			} else {
				ids[i] = g.next
				g.next++
			}
		}
		lba := g.freshLBA(n)
		g.remember(lba, ids)
		return trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: n, Content: ids}
	default:
		ids := g.freshContent(n)
		lba := g.freshLBA(n)
		g.remember(lba, ids)
		return trace.Request{Time: tm, Op: trace.Write, LBA: lba, N: n, Content: ids}
	}
}

// genRead produces one read request over previously written data.
func (g *Generator) genRead(tm sim.Time) trace.Request {
	n := g.pickSize(g.p.ReadSizes)
	// first-fit candidate search: take the first extent at least as
	// large as the drawn size so big reads are not collapsed onto small
	// extents, without biasing toward the largest extents
	var seg *segment
	for try := 0; try < 8; try++ {
		cand := g.readSegment()
		if cand == nil {
			break
		}
		if seg == nil {
			seg = cand
		}
		if len(cand.ids) >= n {
			seg = cand
			break
		}
	}
	if seg == nil {
		// nothing written yet: degenerate read of block 0
		return trace.Request{Time: tm, Op: trace.Read, LBA: 0, N: 1}
	}
	off := 0
	if g.rng.Float64() < 0.85 {
		if n > len(seg.ids) {
			n = len(seg.ids)
		}
		if len(seg.ids) > n {
			off = g.rng.Intn(len(seg.ids) - n + 1)
		}
	} else if len(seg.ids) > 1 {
		off = g.rng.Intn(len(seg.ids))
	}
	lba := seg.lba + uint64(off)
	if lba+uint64(n) > g.p.FootprintChunks {
		lba = g.p.FootprintChunks - uint64(n)
	}
	return trace.Request{Time: tm, Op: trace.Read, LBA: lba, N: n}
}

// Generate produces the trace at the given scale (1.0 = the paper's
// request count). It returns the trace and the number of leading
// warm-up requests the replayer should exclude from measurement.
func (g *Generator) Generate(scale float64) (*trace.Trace, int) {
	total := int(float64(g.p.IOs) * scale)
	if total < 1 {
		total = 1
	}
	tr := &trace.Trace{Name: g.p.Name, Requests: make([]trace.Request, 0, total)}

	var tm sim.Time
	writePhase := true
	phaseLeft := g.p.PhaseLen
	for i := 0; i < total; i++ {
		if g.p.PhaseLen > 0 && phaseLeft == 0 {
			writePhase = !writePhase
			tm = tm.Add(sim.Duration(g.p.IdleGapUS))
			if writePhase {
				phaseLeft = g.p.PhaseLen
			} else {
				phaseLeft = g.p.ReadPhaseLen
				if phaseLeft == 0 {
					phaseLeft = g.p.PhaseLen
				}
			}
		}
		if g.p.PhaseLen > 0 {
			phaseLeft--
		}
		gap := g.p.BurstGapUS
		if gap <= 0 {
			gap = 1000
		}
		tm = tm.Add(sim.Duration(g.rng.Intn(gap*2) + 1))

		wf := g.p.WriteRatio
		if g.p.PhaseLen > 0 {
			if writePhase {
				wf = g.p.WritePhase
			} else {
				wf = g.p.ReadPhase
			}
		}
		if g.rng.Float64() < wf {
			tr.Requests = append(tr.Requests, g.genWrite(tm))
		} else {
			tr.Requests = append(tr.Requests, g.genRead(tm))
		}
	}
	warmup := int(float64(total) * g.p.WarmupFrac)
	return tr, warmup
}

// Generate is a convenience wrapper: build a scale-aware generator and
// run it.
func Generate(p Profile, scale float64) (*trace.Trace, int) {
	return NewScaled(p, scale).Generate(scale)
}
