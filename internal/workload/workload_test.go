package workload

import (
	"math"
	"reflect"
	"testing"

	"github.com/pod-dedup/pod/internal/trace"
)

func TestDeterminism(t *testing.T) {
	a, wa := Generate(WebVM(), 0.02)
	b, wb := Generate(WebVM(), 0.02)
	if wa != wb {
		t.Fatal("warmup counts differ")
	}
	if !reflect.DeepEqual(a.Requests, b.Requests) {
		t.Fatal("generation is not deterministic")
	}
}

func TestScale(t *testing.T) {
	tr, warm := Generate(WebVM(), 0.01)
	scale := 0.01
	want := int(float64(WebVM().IOs) * scale)
	if len(tr.Requests) != want {
		t.Fatalf("requests = %d, want %d", len(tr.Requests), want)
	}
	if warm != int(float64(want)*0.15) {
		t.Fatalf("warmup = %d", warm)
	}
}

func TestTimestampsMonotone(t *testing.T) {
	tr, _ := Generate(Mail(), 0.01)
	for i := 1; i < len(tr.Requests); i++ {
		if tr.Requests[i].Time < tr.Requests[i-1].Time {
			t.Fatalf("timestamps not monotone at %d", i)
		}
	}
}

func TestRequestsValid(t *testing.T) {
	for _, p := range Profiles() {
		tr, _ := Generate(p, 0.02)
		for i := range tr.Requests {
			if err := tr.Requests[i].Validate(); err != nil {
				t.Fatalf("%s: request %d: %v", p.Name, i, err)
			}
			if tr.Requests[i].LBA+uint64(tr.Requests[i].N) > p.FootprintChunks {
				t.Fatalf("%s: request %d exceeds footprint", p.Name, i)
			}
		}
	}
}

// Table II characteristics must hold approximately at full scale shape
// (verified at reduced scale with loose tolerances; the podbench
// table2 experiment reports the full-scale numbers).
func TestTable2Characteristics(t *testing.T) {
	cases := []struct {
		p          Profile
		wantWrites float64 // percent
		wantAvgKB  float64
	}{
		{WebVM(), 69.8, 14.8},
		{Homes(), 80.5, 13.1},
		{Mail(), 78.5, 40.8},
	}
	for _, c := range cases {
		tr, _ := Generate(c.p, 0.05)
		a := trace.Analyze(tr)
		if math.Abs(a.Chars.WriteRatio-c.wantWrites) > 5 {
			t.Errorf("%s: write ratio %.1f%%, want ≈%.1f%%", c.p.Name, a.Chars.WriteRatio, c.wantWrites)
		}
		if math.Abs(a.Chars.AvgReqKB-c.wantAvgKB)/c.wantAvgKB > 0.30 {
			t.Errorf("%s: mean request %.1f KB, want ≈%.1f KB", c.p.Name, a.Chars.AvgReqKB, c.wantAvgKB)
		}
	}
}

// The redundancy orderings the paper's figures depend on.
func TestRedundancyStructure(t *testing.T) {
	get := func(p Profile) *trace.Analysis {
		tr, _ := Generate(p, 0.05)
		return trace.Analyze(tr)
	}
	web, homes, mail := get(WebVM()), get(Homes()), get(Mail())

	// mail is the most redundant; homes the least (Fig. 2 shape)
	if !(mail.IORedundancyPct > web.IORedundancyPct) {
		t.Errorf("mail redundancy (%.1f) must exceed web-vm (%.1f)",
			mail.IORedundancyPct, web.IORedundancyPct)
	}
	// every trace has both same-LBA and different-LBA redundancy, so
	// I/O redundancy strictly exceeds capacity redundancy
	for _, a := range []*trace.Analysis{web, homes, mail} {
		if a.SameLBAPct <= 0 || a.DiffLBAPct <= 0 {
			t.Errorf("%s: same=%.1f diff=%.1f, both must be positive",
				a.Chars.Name, a.SameLBAPct, a.DiffLBAPct)
		}
	}
}

// Fig. 1 shape: small (4-8 KB) write requests dominate and carry
// substantial redundancy.
func TestSmallWriteDominance(t *testing.T) {
	for _, p := range []Profile{WebVM(), Homes()} {
		tr, _ := Generate(p, 0.05)
		a := trace.Analyze(tr)
		var small, total, smallRed int64
		for i, b := range a.Buckets {
			total += b.Total
			if i <= 1 { // 4 KB and 8 KB buckets
				small += b.Total
				smallRed += b.Redundant
			}
		}
		if float64(small)/float64(total) < 0.5 {
			t.Errorf("%s: small writes are %.0f%% of writes, want >50%%",
				p.Name, 100*float64(small)/float64(total))
		}
		if smallRed == 0 {
			t.Errorf("%s: small writes carry no redundancy", p.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("mail"); !ok || p.Name != "mail" {
		t.Fatal("ByName(mail) failed")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName must reject unknown traces")
	}
}

func TestTinyScaleStillWorks(t *testing.T) {
	tr, warm := Generate(Homes(), 0.00001)
	if len(tr.Requests) != 1 || warm != 0 {
		t.Fatalf("tiny scale: %d requests, warm %d", len(tr.Requests), warm)
	}
}

func TestScaledHistoryRing(t *testing.T) {
	full := NewScaled(WebVM(), 1.0)
	small := NewScaled(WebVM(), 0.05)
	if full.maxSegs != 16384 {
		t.Fatalf("full-scale ring = %d", full.maxSegs)
	}
	if small.maxSegs >= full.maxSegs || small.maxSegs < 512 {
		t.Fatalf("scaled ring = %d, want within [512, %d)", small.maxSegs, full.maxSegs)
	}
	tiny := NewScaled(WebVM(), 0.0001)
	if tiny.maxSegs != 512 {
		t.Fatalf("ring floor = %d, want 512", tiny.maxSegs)
	}
}
