package workload

// The three FIU-like profiles, dimensioned to Table II of the paper:
//
//	Trace    Write ratio  I/Os     Mean request
//	web-vm   69.8 %       154,105  14.8 KB
//	homes    80.5 %        64,819  13.1 KB
//	mail     78.5 %       328,145  40.8 KB
//
// and shaped to the redundancy structure of §II-A: mail is dominated by
// whole rewrites of previously written extents (the fully redundant
// requests Select-Dedupe eliminates outright), web-vm is moderately
// redundant, and homes carries a large share of scattered partial
// redundancy — the category-2 pattern that makes Full-Dedupe regress.
//
// Memory budgets follow the paper's per-trace assignments (§IV-A)
// scaled by the ratio of our synthetic footprints to the originals'
// three-week working sets, preserving cache pressure rather than raw
// size.

// WebVM models the two-webserver VM trace.
func WebVM() Profile {
	return Profile{
		Name:       "web-vm",
		Seed:       0x77656276,
		IOs:        154105,
		WriteRatio: 0.698,
		WriteSizes: []SizeWeight{
			{1, 46}, {2, 18}, {3, 7}, {4, 8}, {8, 10}, {16, 7}, {32, 4},
		},
		ReadSizes: []SizeWeight{
			{1, 36}, {2, 22}, {4, 18}, {8, 12}, {16, 8}, {32, 4},
		},
		FullDupFrac:     0.60,
		PartialScatter:  0.12,
		ScatterDupProb:  0.40,
		SameLBAFrac:     0.45,
		WriteDeepFrac:   0.15,
		FootprintChunks: 1 << 19, // 2 GiB logical
		MemoryBytes:     8 << 20,
		PhaseLen:        256,
		WritePhase:      0.95,
		ReadPhase:       0.45,
		BurstGapUS:      12000,
		IdleGapUS:       2_000_000,
		WarmupFrac:      0.15,
	}
}

// Homes models the NFS home-directory file server trace.
func Homes() Profile {
	return Profile{
		Name:       "homes",
		Seed:       0x686F6D65,
		IOs:        64819,
		WriteRatio: 0.805,
		WriteSizes: []SizeWeight{
			{1, 50}, {2, 20}, {3, 9}, {4, 8}, {8, 7}, {16, 4}, {32, 2},
		},
		ReadSizes: []SizeWeight{
			{1, 30}, {2, 22}, {4, 20}, {8, 14}, {16, 10}, {32, 4},
		},
		FullDupFrac:     0.20,
		PartialScatter:  0.48,
		ScatterDupProb:  0.50,
		SameLBAFrac:     0.35,
		WriteDeepFrac:   0.20,
		FootprintChunks: 1 << 19,
		MemoryBytes:     2560 << 10,
		PhaseLen:        192,
		WritePhase:      0.97,
		ReadPhase:       0.64,
		BurstGapUS:      13000,
		IdleGapUS:       3_000_000,
		WarmupFrac:      0.15,
	}
}

// Mail models the email-server trace: larger requests, the highest
// request rate, and heavy full redundancy.
func Mail() Profile {
	return Profile{
		Name:       "mail",
		Seed:       0x6D61696C,
		IOs:        328145,
		WriteRatio: 0.785,
		WriteSizes: []SizeWeight{
			{1, 20}, {2, 12}, {4, 12}, {8, 18}, {16, 17}, {32, 14}, {64, 7},
		},
		ReadSizes: []SizeWeight{
			{1, 28}, {2, 10}, {4, 18}, {8, 22}, {16, 12}, {32, 10},
		},
		FullDupFrac:     0.76,
		PartialScatter:  0.06,
		ScatterDupProb:  0.30,
		SameLBAFrac:     0.45,
		WriteDeepFrac:   0.15,
		FootprintChunks: 1 << 20, // 4 GiB logical
		MemoryBytes:     16 << 20,
		ReadWindow:      1200,
		ReadDeepFrac:    0.55,
		PhaseLen:        256,
		ReadPhaseLen:    128,
		WritePhase:      0.96,
		ReadPhase:       0.43,
		BurstGapUS:      10500,
		IdleGapUS:       1_500_000,
		WarmupFrac:      0.15,
	}
}

// Profiles returns the three evaluation traces in the paper's order.
func Profiles() []Profile {
	return []Profile{WebVM(), Homes(), Mail()}
}

// ByName resolves a profile by its trace name.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
