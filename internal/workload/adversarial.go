package workload

import (
	"math/rand"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// Adversarial tenant mixes for the per-stream apportionment experiments
// (EXPERIMENTS.md "Static vs dynamic apportionment"). Unlike the Table
// II profiles, these are precision instruments: every pool size below
// is tuned against one fixed index partition so that LRU's cyclic-
// access cliff falls exactly where the experiment needs it — a tenant's
// duplicate working set either fits its quota (near-perfect inline
// dedup) or exceeds it (near-zero), with no gentle middle.
//
// Three tenant personalities:
//
//   - bursty high-dup: silent between bursts; each burst brings a FRESH
//     duplicate working set of 0.6× the index partition and cycles it
//     round-robin. No static split below 60% serves any burst, and the
//     fresh-pool-per-burst structure makes hoarding quota between
//     bursts worthless.
//   - steady low-dup: a continuous trickle of fresh single-chunk writes
//     (keeping the stream active at the shared floor) plus bursts in
//     anti-phase with the first tenant. The anti-phase structure is the
//     adversarial core: the two tenants' demands never overlap, so any
//     fixed split starves at least one of them while a locality-driven
//     apportioner serves both.
//   - churning scan: rewrites a working set 4× the index partition
//     round-robin, forever. Its duplicates recur beyond any feasible
//     quota, so inline caching is pure pollution; the estimator floors
//     it and leaves its redundancy to out-of-line dedup.
//
// Generation is fully deterministic in scale alone.

const (
	// AdvMemoryBytes is the storage-cache DRAM the adversarial mixes
	// are tuned against: 1 MiB split 50/50 gives an 8192-entry index
	// partition at the default 64-byte entry footprint.
	AdvMemoryBytes = 1 << 20
	// advIndexEntries = AdvMemoryBytes/2 / 64-byte entries.
	advIndexEntries = 8192

	// advPhaseDur spans 16 of the default 250 ms apportionment
	// intervals: the estimator needs ~2-3 pool cycles (≈5 intervals) to
	// shift quota onto a returning burst, and the burst must outlive
	// that ramp by enough cycles for dynamic apportionment to beat a
	// static split that never ramps at all.
	advPhaseDur = 4 * sim.Second

	// Burst tenants: 614 extents × 8 chunks = 4912 fingerprints, 0.60
	// of the index partition, cycled 8× per burst.
	advBurstExtents = 614
	advBurstChunks  = 8
	advBurstCycles  = 8

	// Steady trickle: fresh single-chunk writes between bursts.
	advTricklePerPhase = 614

	// Scan tenant: 4096 extents × 8 chunks = 4× the index partition,
	// rewritten at the burst tenants' request rate, so one burst-pool
	// cycle shares a shared LRU with ≈4900 scan fingerprints — enough
	// to push the combined reuse distance past the whole partition.
	advScanExtents  = 4096
	advScanChunks   = 8
	advScanPerPhase = 4912

	// advTenantFootprint is each tenant's logical address space: burst
	// pool at the bottom, trickle bump region above it.
	advTenantFootprint = 1 << 15
)

// advPhases maps the experiment scale to an even burst-phase count
// (scale 1.0 = 8 phases, i.e. 4 anti-phase burst pairs).
func advPhases(scale float64) int {
	p := int(8*scale + 0.5)
	if p < 4 {
		p = 4
	}
	if p%2 == 1 {
		p++
	}
	return p
}

// advBursty generates one bursty tenant: bursts during phases of the
// given parity, an optional fresh-write trickle during the others.
func advBursty(name string, seed int64, parity int, trickle bool, phases int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: name}
	const poolChunks = advBurstExtents * advBurstChunks
	trickleBase := uint64(poolChunks + 1024) // bump region above the pool
	tricklePtr := trickleBase
	nextID := chunk.ContentID(1)
	trickleID := chunk.ContentID(1) << 36 // disjoint from burst-pool IDs
	burstReqs := advBurstExtents * advBurstCycles
	burstGap := int64(advPhaseDur) / int64(burstReqs)
	trickleGap := int64(advPhaseDur) / int64(advTricklePerPhase)
	for ph := 0; ph < phases; ph++ {
		start := sim.Time(int64(ph) * int64(advPhaseDur))
		if ph%2 == parity {
			// a fresh duplicate working set for this burst, cycled
			// round-robin: cycle 1 is cold, cycles 2..N dedupe inline
			// when (and only when) the whole pool fits the quota
			pool := make([][]chunk.ContentID, advBurstExtents)
			for e := range pool {
				ids := make([]chunk.ContentID, advBurstChunks)
				for j := range ids {
					ids[j] = nextID
					nextID++
				}
				pool[e] = ids
			}
			for i := 0; i < burstReqs; i++ {
				e := i % advBurstExtents
				tm := start.Add(sim.Duration(int64(i)*burstGap + rng.Int63n(burstGap/2+1)))
				cp := append([]chunk.ContentID(nil), pool[e]...)
				tr.Requests = append(tr.Requests, trace.Request{
					Time: tm, Op: trace.Write,
					LBA: uint64(e * advBurstChunks), N: advBurstChunks, Content: cp,
				})
			}
		} else if trickle {
			for i := 0; i < advTricklePerPhase; i++ {
				tm := start.Add(sim.Duration(int64(i)*trickleGap + rng.Int63n(trickleGap/2+1)))
				if tricklePtr+1 > advTenantFootprint {
					tricklePtr = trickleBase
				}
				tr.Requests = append(tr.Requests, trace.Request{
					Time: tm, Op: trace.Write,
					LBA: tricklePtr, N: 1, Content: []chunk.ContentID{trickleID},
				})
				tricklePtr++
				trickleID++
			}
		}
	}
	return tr
}

// advScan generates the churning scan tenant: a fixed working set 4×
// the index partition, rewritten round-robin at a steady rate.
func advScan(name string, seed int64, phases int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &trace.Trace{Name: name}
	gap := int64(advPhaseDur) / int64(advScanPerPhase)
	cursor := 0
	for ph := 0; ph < phases; ph++ {
		start := sim.Time(int64(ph) * int64(advPhaseDur))
		for i := 0; i < advScanPerPhase; i++ {
			e := cursor % advScanExtents
			cursor++
			tm := start.Add(sim.Duration(int64(i)*gap + rng.Int63n(gap/2+1)))
			ids := make([]chunk.ContentID, advScanChunks)
			for j := range ids {
				ids[j] = chunk.ContentID(e*advScanChunks+j) + 1
			}
			tr.Requests = append(tr.Requests, trace.Request{
				Time: tm, Op: trace.Write,
				LBA: uint64(e * advScanChunks), N: advScanChunks, Content: ids,
			})
		}
	}
	return tr
}

// advMerge relocates each tenant into a disjoint LBA and content-ID
// slice of the shared platform and merges by arrival time; Merge tags
// tenant i's requests with stream i+1.
func advMerge(name string, tenants []*trace.Trace, scanFootprint bool) (*trace.Trace, int, MixedDims) {
	var lbaBase uint64
	for i, t := range tenants {
		fp := uint64(advTenantFootprint)
		if scanFootprint && i == len(tenants)-1 {
			fp = advScanExtents * advScanChunks
		}
		offsetTenant(t, lbaBase, uint64(i)<<tenantIDBits)
		lbaBase += fp
	}
	merged := trace.Merge(name, tenants...)
	dims := MixedDims{FootprintChunks: lbaBase, MemoryBytes: AdvMemoryBytes}
	return merged, 0, dims
}

// AdversarialMix is the two-tenant apportionment benchmark: a bursty
// high-dup tenant (stream 1) against a steady low-dup tenant whose own
// duplicate bursts arrive exactly when the first tenant sleeps
// (stream 2). Returns the merged trace, the warm-up request count
// (zero: per-stream gauges cover the whole replay), and the platform
// dimensions the mix is tuned against.
func AdversarialMix(scale float64) (*trace.Trace, int, MixedDims) {
	phases := advPhases(scale)
	return advMerge("adversarial", []*trace.Trace{
		advBursty("bursty-highdup", 0x61647631, 0, false, phases),
		advBursty("steady-lowdup", 0x61647632, 1, true, phases),
	}, false)
}

// AdversarialScanMix adds the churning low-locality scan tenant
// (stream 3) to the two-tenant mix: the workload where a shared
// fingerprint cache collapses — the scan's 4×-partition working set
// flushes both burst pools between cycles — while per-stream quotas
// contain the pollution at the floor.
func AdversarialScanMix(scale float64) (*trace.Trace, int, MixedDims) {
	phases := advPhases(scale)
	return advMerge("adversarial-scan", []*trace.Trace{
		advBursty("bursty-highdup", 0x61647631, 0, false, phases),
		advBursty("steady-lowdup", 0x61647632, 1, true, phases),
		advScan("churn-scan", 0x61647633, phases),
	}, true)
}
