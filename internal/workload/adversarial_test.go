package workload

import (
	"testing"

	"github.com/pod-dedup/pod/internal/trace"
)

func TestMixedTraceStreamTags(t *testing.T) {
	tr, _, _ := MixedTrace(0.02)
	streams := map[trace.StreamID]bool{}
	for i := range tr.Requests {
		streams[tr.Requests[i].Stream] = true
	}
	for want := trace.StreamID(1); want <= 3; want++ {
		if !streams[want] {
			t.Errorf("no requests on stream %d", want)
		}
	}
	if streams[trace.DefaultStream] {
		t.Error("mixed trace left requests untagged")
	}
}

func TestAdversarialMixShape(t *testing.T) {
	tr, warmup, dims := AdversarialMix(0.25)
	if warmup != 0 {
		t.Fatalf("warmup = %d, want 0 (gauges cover the whole replay)", warmup)
	}
	if dims.MemoryBytes != AdvMemoryBytes {
		t.Fatalf("dims memory = %d, want %d", dims.MemoryBytes, AdvMemoryBytes)
	}
	var last int64 = -1
	perStream := map[trace.StreamID]int{}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if err := r.Validate(); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if int64(r.Time) < last {
			t.Fatalf("request %d out of order", i)
		}
		last = int64(r.Time)
		if r.LBA+uint64(r.N) > dims.FootprintChunks {
			t.Fatalf("request %d overruns the footprint", i)
		}
		perStream[r.Stream]++
	}
	if len(perStream) != 2 || perStream[1] == 0 || perStream[2] == 0 {
		t.Fatalf("per-stream request counts = %v, want both tenants tagged", perStream)
	}
}

func TestAdversarialScanMixHasThreeTenants(t *testing.T) {
	tr, _, dims := AdversarialScanMix(0.25)
	perStream := map[trace.StreamID]int{}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		perStream[r.Stream]++
		if r.LBA+uint64(r.N) > dims.FootprintChunks {
			t.Fatalf("request %d overruns the footprint", i)
		}
	}
	if len(perStream) != 3 {
		t.Fatalf("streams = %v, want 3 tenants", perStream)
	}
}

func TestAdversarialMixDeterministic(t *testing.T) {
	a, _, _ := AdversarialMix(0.25)
	b, _, _ := AdversarialMix(0.25)
	if len(a.Requests) != len(b.Requests) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Requests), len(b.Requests))
	}
	for i := range a.Requests {
		ra, rb := &a.Requests[i], &b.Requests[i]
		if ra.Time != rb.Time || ra.LBA != rb.LBA || ra.Stream != rb.Stream || ra.N != rb.N {
			t.Fatalf("request %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}
