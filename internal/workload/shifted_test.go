package workload

import (
	"testing"

	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/trace"
)

// TestShiftedSnapshotShape checks the structural invariants the
// chunking experiment depends on: deterministic generation, unique
// ContentIDs everywhere (fixed-4K must find nothing), edit-encoded
// consecutive-ID windows (the CDC splitter's stream detection), and
// LBA extents spaced so CDC chunk fan-out cannot collide.
func TestShiftedSnapshotShape(t *testing.T) {
	tr, warm, dims := ShiftedSnapshot(0.1)
	tr2, warm2, _ := ShiftedSnapshot(0.1)
	if len(tr.Requests) != len(tr2.Requests) || warm != warm2 {
		t.Fatalf("generation not deterministic: %d/%d vs %d/%d requests",
			len(tr.Requests), warm, len(tr2.Requests), warm2)
	}
	if warm <= 0 || warm >= len(tr.Requests) {
		t.Fatalf("warmup %d out of range (of %d requests)", warm, len(tr.Requests))
	}

	maxChunks := (cdc.Params{}).WithDefaults().MaxChunksPerSlots(shiftedWindow)
	if shiftedStride < maxChunks {
		t.Fatalf("stride %d < worst-case chunks per request %d", shiftedStride, maxChunks)
	}

	seen := map[uint64]bool{}
	writes, reads := 0, 0
	var last trace.Request
	for i, r := range tr.Requests {
		if i > 0 && r.Time < last.Time {
			t.Fatalf("request %d out of time order", i)
		}
		last = r
		if r.Op == trace.Read {
			reads++
			continue
		}
		writes++
		if r.N != shiftedWindow || len(r.Content) != shiftedWindow {
			t.Fatalf("write %d: N=%d, want %d", i, r.N, shiftedWindow)
		}
		if r.LBA%shiftedStride != 0 {
			t.Fatalf("write %d: extent base %d not stride-aligned", i, r.LBA)
		}
		if !cdc.IsEdit(r.Content[0]) {
			t.Fatalf("write %d: content not edit-encoded", i)
		}
		for j := 1; j < len(r.Content); j++ {
			if r.Content[j] != r.Content[0]+chunk.ContentID(j) {
				t.Fatalf("write %d: IDs not consecutive at %d", i, j)
			}
		}
		for _, id := range r.Content {
			if seen[uint64(id)] {
				t.Fatalf("write %d: repeated ContentID %x — fixed-4K would dedup it", i, uint64(id))
			}
			seen[uint64(id)] = true
		}
	}
	if reads == 0 {
		t.Fatal("no read requests generated")
	}
	if float64(reads) > 0.5*float64(writes) {
		t.Fatalf("read share too high: %d reads vs %d writes", reads, writes)
	}
	if dims.FootprintChunks == 0 || dims.MemoryBytes == 0 {
		t.Fatal("empty platform dims")
	}
}
