package workload

import "testing"

func TestMixedTraceIsOrderedAndPartitioned(t *testing.T) {
	tr, warmup, dims := MixedTrace(0.02)
	if len(tr.Requests) == 0 {
		t.Fatal("empty mixed trace")
	}
	if warmup <= 0 || warmup >= len(tr.Requests) {
		t.Fatalf("warmup %d of %d", warmup, len(tr.Requests))
	}

	wantFootprint := uint64(0)
	for _, p := range Profiles() {
		wantFootprint += p.FootprintChunks
	}
	if dims.FootprintChunks != wantFootprint {
		t.Fatalf("footprint %d, want %d", dims.FootprintChunks, wantFootprint)
	}

	var last int64 = -1
	idSpaces := map[uint64]bool{}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		if int64(r.Time) < last {
			t.Fatalf("request %d out of order", i)
		}
		last = int64(r.Time)
		if r.LBA+uint64(r.N) > dims.FootprintChunks {
			t.Fatalf("request %d at lba %d overruns the combined footprint", i, r.LBA)
		}
		for _, id := range r.Content {
			idSpaces[uint64(id)>>tenantIDBits] = true
		}
	}
	if len(idSpaces) != len(Profiles()) {
		t.Fatalf("content drawn from %d tenant ID spaces, want %d", len(idSpaces), len(Profiles()))
	}
}

func TestMixedTraceDeterministic(t *testing.T) {
	a, wa, _ := MixedTrace(0.01)
	b, wb, _ := MixedTrace(0.01)
	if wa != wb || len(a.Requests) != len(b.Requests) {
		t.Fatalf("shape differs: %d/%d vs %d/%d", wa, len(a.Requests), wb, len(b.Requests))
	}
	for i := range a.Requests {
		ra, rb := &a.Requests[i], &b.Requests[i]
		if ra.Time != rb.Time || ra.Op != rb.Op || ra.LBA != rb.LBA || ra.N != rb.N {
			t.Fatalf("request %d differs: %+v vs %+v", i, ra, rb)
		}
	}
}
