package workload

import (
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/trace"
)

// MixedDims describes the platform a merged multi-tenant trace needs:
// the combined logical address space and the summed storage-cache
// budget of its tenants.
type MixedDims struct {
	FootprintChunks uint64
	MemoryBytes     int64
}

// tenantIDBits offsets each tenant's content-ID space so that equal
// IDs from different tenants never alias: the generators all start
// counting at 1, and cross-tenant deduplication would otherwise
// manufacture redundancy the single-tenant profiles don't model.
const tenantIDBits = 40

// MixedTrace interleaves the three Table II profiles into one
// multi-tenant stream — the workload a consolidated cloud front end
// sees. Each tenant keeps its own timeline (the merge is by arrival
// time), gets a disjoint LBA region (tenant i's addresses are offset
// by the footprints before it), and a disjoint content-ID space.
// Warm-up is the same leading fraction the per-tenant profiles use.
//
// Generation is deterministic in scale alone.
func MixedTrace(scale float64) (*trace.Trace, int, MixedDims) {
	profiles := Profiles()
	tenants := make([]*trace.Trace, len(profiles))
	var dims MixedDims
	var lbaBase uint64
	warmFrac := 0.0
	for i, p := range profiles {
		tr, _ := Generate(p, scale)
		offsetTenant(tr, lbaBase, uint64(i)<<tenantIDBits)
		tenants[i] = tr
		lbaBase += p.FootprintChunks
		dims.MemoryBytes += p.MemoryBytes
		if p.WarmupFrac > warmFrac {
			warmFrac = p.WarmupFrac
		}
	}
	dims.FootprintChunks = lbaBase
	merged := trace.Merge("mixed", tenants...)
	warmup := int(float64(len(merged.Requests)) * warmFrac)
	return merged, warmup, dims
}

// offsetTenant relocates a tenant trace into its slice of the shared
// platform: LBAs shift by lbaOff, content IDs by idOff.
func offsetTenant(tr *trace.Trace, lbaOff uint64, idOff uint64) {
	for i := range tr.Requests {
		r := &tr.Requests[i]
		r.LBA += lbaOff
		for j := range r.Content {
			r.Content[j] += chunk.ContentID(idOff)
		}
	}
}
