package chaos

import (
	"strings"
	"testing"

	"github.com/pod-dedup/pod/internal/api"
	"github.com/pod-dedup/pod/internal/chunk"
)

func TestBuildScenarios(t *testing.T) {
	for _, name := range Scenarios() {
		s, err := Build(name, 4, 1<<16, 1_000_000, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Empty() {
			t.Fatalf("%s compiled to an empty schedule", name)
		}
		if s.Seed != 7 {
			t.Fatalf("%s lost the seed", name)
		}
	}
	if _, err := Build("nope", 4, 1<<16, 1_000_000, 7); err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("unknown scenario accepted: %v", err)
	}
	if _, err := Build("full", 0, 1<<16, 1_000_000, 7); err == nil {
		t.Fatal("degenerate array accepted")
	}
	if _, err := Build("full", 4, 1<<16, 0, 7); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

func TestBuildFullIsTheAcceptanceCombo(t *testing.T) {
	s, err := Build("full", 4, 1<<16, 900_000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Sectors) == 0 || len(s.Fails) != 1 || len(s.Transients) == 0 {
		t.Fatalf("full is missing a fault class: %+v", s)
	}
	f := s.Fails[0]
	if f.At <= 0 || f.At >= 900_000 {
		t.Fatalf("disk failure at %d is not mid-run", f.At)
	}
	for _, r := range s.Sectors {
		if r.Start+r.Count > 1<<16 {
			t.Fatalf("sector range %+v exceeds the disk", r)
		}
	}
}

func wr(lba uint64, ids ...chunk.ContentID) *api.Request {
	return &api.Request{Op: api.OpWrite, LBA: lba, Content: ids}
}

func TestOracleDetectsLossAndCrossReference(t *testing.T) {
	o := NewOracle(nil)
	o.RecordWrite(wr(10, 1, 2), 0)
	o.RecordWrite(wr(20, 3), 0)

	store := map[uint64]uint64{10: 1, 11: 2} // lba 20 lost
	viol, checked := o.Check(func(lba uint64) (uint64, bool) {
		v, ok := store[lba]
		return v, ok
	})
	if checked != 3 || len(viol) != 1 || !viol[0].Lost || viol[0].LBA != 20 {
		t.Fatalf("viol=%v checked=%d", viol, checked)
	}

	store[20] = 99 // wrong content
	viol, _ = o.Check(func(lba uint64) (uint64, bool) {
		v, ok := store[lba]
		return v, ok
	})
	if len(viol) != 1 || viol[0].Lost || viol[0].Got != 99 || viol[0].Want != 3 {
		t.Fatalf("cross-reference not detected: %v", viol)
	}
	if !strings.Contains(viol[0].String(), "cross-referenced") {
		t.Fatalf("violation string: %s", viol[0])
	}

	store[20] = 3 // healthy
	if viol, _ = o.Check(func(lba uint64) (uint64, bool) {
		v, ok := store[lba]
		return v, ok
	}); len(viol) != 0 {
		t.Fatalf("clean store flagged: %v", viol)
	}
}

func TestOracleIndeterminateSkipsFailedWrites(t *testing.T) {
	o := NewOracle(nil)
	o.RecordWrite(wr(0, 1, 2, 3), 0)
	// an engine-touched failed overwrite: blocks may hold either
	// generation, so they are exempt from checking...
	o.RecordFailedWrite(wr(1, 9, 9), 0, true)
	viol, checked := o.Check(func(lba uint64) (uint64, bool) { return 0, false })
	if checked != 1 || len(viol) != 1 || viol[0].LBA != 0 {
		t.Fatalf("viol=%v checked=%d", viol, checked)
	}
	// ...until a later acked write restores a firm expectation
	o.RecordWrite(wr(1, 7, 8), 0)
	_, checked = o.Check(func(lba uint64) (uint64, bool) { return 0, false })
	if checked != 3 {
		t.Fatalf("re-acked blocks not checked: %d", checked)
	}
	// a refused write (touched=false) leaves expectations alone
	o.RecordFailedWrite(wr(0, 5), 0, false)
	_, checked = o.Check(func(lba uint64) (uint64, bool) { return 0, false })
	if checked != 3 {
		t.Fatalf("refused write changed the shadow: %d", checked)
	}
	acked, failed, indet, _ := o.Stats()
	if acked != 2 || failed != 2 || indet != 0 {
		t.Fatalf("stats: %d %d %d", acked, failed, indet)
	}
}

func TestOracleSpilledChunksExcluded(t *testing.T) {
	// granule of 4: lbas 0-3 owned by shard 0, 4-7 by shard 1
	owner := func(lba uint64) int { return int(lba / 4 % 2) }
	o := NewOracle(owner)

	// shard 1 native-writes lba 4
	o.RecordWrite(wr(4, 50), 1)
	// shard 0 serves a write spanning the boundary: lbas 2..5 — the
	// spill (4, 5) updates shard 0's engine only, invisible to routed
	// reads, so the oracle must keep expecting 50 at lba 4
	o.RecordWrite(wr(2, 10, 11, 12, 13), 0)

	reads := map[uint64]uint64{2: 10, 3: 11, 4: 50}
	viol, checked := o.Check(func(lba uint64) (uint64, bool) {
		v, ok := reads[lba]
		return v, ok
	})
	if len(viol) != 0 {
		t.Fatalf("spill flagged: %v", viol)
	}
	if checked != 3 {
		t.Fatalf("checked %d blocks, want 3", checked)
	}
	if _, _, _, spilled := o.Stats(); spilled != 2 {
		t.Fatalf("spilled = %d, want 2", spilled)
	}
	// failed spill writes likewise only mark owned blocks
	o.RecordFailedWrite(wr(3, 9, 9), 0, true)
	_, checked = o.Check(func(lba uint64) (uint64, bool) {
		v, ok := reads[lba]
		return v, ok
	})
	if checked != 2 {
		t.Fatalf("failed spill marking wrong: checked %d, want 2", checked)
	}
}
