// Package chaos is the fault-injection harness: named, seeded fault
// scenarios for the serving layer, plus the read-back integrity oracle
// that decides whether a chaos run preserved every acknowledged write.
//
// A scenario compiles to a fault.Schedule per shard (seeded so runs
// replay bit-for-bit); the oracle shadows the logical volume as an
// in-memory LBA→content-ID map maintained strictly from *acknowledged*
// completions, then reads the whole footprint back through the server's
// logical path at the end. Any divergence — a lost block, a mapping
// cross-referenced to another tenant's content, a torn multi-chunk
// write that was reported successful — fails the run. This is the
// dedup-specific failure detector: because the Map table shares
// physical blocks m-to-1, one mishandled fault corrupts many LBAs, and
// exactly that blast radius is what the oracle measures.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/pod-dedup/pod/internal/api"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/sim"
)

// Scenarios returns the known scenario names.
func Scenarios() []string {
	return []string{"sector", "diskfail", "storm", "limp", "full", "bgdedup", "globalfp", "shardcrash"}
}

// Build compiles a named scenario for one array: ndisks spindles of
// perDisk data blocks each, over a run of roughly horizon virtual time.
// Seed drives the transient coin; the same (name, seed, horizon) is the
// same schedule.
func Build(name string, ndisks int, perDisk uint64, horizon sim.Time, seed uint64) (fault.Schedule, error) {
	if ndisks < 1 || perDisk == 0 {
		return fault.Schedule{}, fmt.Errorf("chaos: degenerate array (%d disks, %d blocks)", ndisks, perDisk)
	}
	if horizon <= 0 {
		return fault.Schedule{}, fmt.Errorf("chaos: non-positive horizon %v", horizon)
	}
	s := fault.Schedule{Seed: seed}

	// latent sector errors: a handful of ranges spread across the first
	// two data disks, present from the start (they surface on first read)
	sectors := func() {
		for d := 0; d < ndisks && d < 2; d++ {
			for k := uint64(0); k < 4; k++ {
				start := (perDisk / 5) * (k + 1)
				count := uint64(64)
				if start+count > perDisk {
					count = perDisk - start
				}
				s.Sectors = append(s.Sectors, fault.SectorRange{
					Disk: d, Start: start, Count: count, From: 0,
				})
			}
		}
	}
	// transient-error storm against every disk in the middle of the run
	storm := func(from, until sim.Time, perMille int) {
		s.Transients = append(s.Transients, fault.TransientWindow{
			Disk: -1, From: from, Until: until, PerMille: perMille,
		})
	}

	switch name {
	case "sector":
		sectors()
	case "diskfail":
		s.Fails = append(s.Fails, fault.DiskFail{Disk: ndisks - 1, At: horizon / 3})
	case "storm":
		storm(horizon/4, horizon/2, 150)
	case "limp":
		s.Slow = append(s.Slow, fault.SlowWindow{
			Disk: ndisks / 2, From: horizon / 4, Until: horizon * 3 / 4, Factor: 4,
		})
	case "full":
		// the acceptance combo: latent sectors from the start, a whole-
		// disk failure mid-run (degraded + online rebuild), and a late
		// transient storm hammering the retry path while rebuilding
		sectors()
		s.Fails = append(s.Fails, fault.DiskFail{Disk: ndisks - 1, At: horizon / 2})
		storm(horizon*5/8, horizon*7/8, 100)
	case "bgdedup":
		// the full combo with the background out-of-line dedup scanner
		// active (podload arms the scanner when it sees this name): the
		// scanner's relocation/remap traffic runs concurrently with latent
		// sectors, a mid-run disk failure, and a late transient storm, and
		// the oracle plus a post-recovery consistency sweep must still hold
		sectors()
		s.Fails = append(s.Fails, fault.DiskFail{Disk: ndisks - 1, At: horizon / 2})
		storm(horizon*5/8, horizon*7/8, 100)
	case "globalfp":
		// cross-shard remap traffic racing faults: latent sectors from
		// the start (fold revalidation reads hit them), a whole-disk
		// failure mid-run, and an early storm while hints and folds are
		// still landing (podload arms the global fingerprint tier and
		// the scanner when it sees this name). The oracle, the per-shard
		// sweeps, and the cross-shard pin audit must all hold.
		sectors()
		s.Fails = append(s.Fails, fault.DiskFail{Disk: ndisks - 1, At: horizon / 2})
		storm(horizon/4, horizon/2, 100)
	case "shardcrash":
		// per-shard failure domain: one shard is crashed mid-run and
		// rejoined later with the global fingerprint tier live (podload
		// arms the tier and drives Server.CrashShard/RecoverShard from
		// its -crash-shard/-crash-at-us/-recover-at-us flags when it
		// sees this name). The disk-level schedule stays modest — latent
		// sectors on the survivors — so the verdict isolates the outage
		// machinery: epoch fencing, recall timeouts, hint purges, and
		// the rejoin pin re-audit, all under the read-back oracle and
		// the cluster-wide consistency sweep.
		sectors()
	default:
		return fault.Schedule{}, fmt.Errorf("chaos: unknown scenario %q (want one of %s)",
			name, strings.Join(Scenarios(), ", "))
	}
	return s, nil
}

// Violation is one integrity failure found by the oracle.
type Violation struct {
	LBA  uint64
	Want uint64 // acknowledged content ID
	Got  uint64 // content actually read back
	Lost bool   // block resolved to nothing at all
}

// String renders the violation.
func (v Violation) String() string {
	if v.Lost {
		return fmt.Sprintf("lba %d: acknowledged content %d lost (unmapped)", v.LBA, v.Want)
	}
	return fmt.Sprintf("lba %d: want content %d, read %d (cross-referenced)", v.LBA, v.Want, v.Got)
}

// Oracle is the shadow volume. Writers record acknowledged completions
// (and mark ranges of failed writes indeterminate — a torn write the
// server *reported failed* is allowed to leave either old or new
// content); Check reads everything back at the end.
//
// The shadow tracks what a *routed single-block read* can observe. A
// write spanning a routing-granule boundary is served wholly by its
// first chunk's shard, so the spilled chunks update that shard's map
// table — invisible to reads, which route each LBA to its owner shard
// (whose own mapping the spill write never touched). Those chunks are
// therefore excluded from the shadow: the owner shard's prior
// expectation still holds.
type Oracle struct {
	owner func(lba uint64) int // LBA → owning shard; nil = single shard

	mu            sync.Mutex
	want          map[uint64]uint64
	indeterminate map[uint64]bool
	acked         int64
	failedWrites  int64
	spilled       int64 // chunks excluded as cross-granule spill
}

// NewOracle returns an empty shadow volume. owner maps an LBA to its
// routing shard (Server.Shard); nil means everything is owned.
func NewOracle(owner func(lba uint64) int) *Oracle {
	return &Oracle{
		owner:         owner,
		want:          make(map[uint64]uint64),
		indeterminate: make(map[uint64]bool),
	}
}

// owned reports whether a routed read of lba reaches the shard that
// served the write.
func (o *Oracle) owned(lba uint64, shard int) bool {
	return o.owner == nil || o.owner(lba) == shard
}

// RecordWrite records an acknowledged (successful) write served by
// shard: the owned blocks' expected content is now exactly the written
// content, even if the range was previously indeterminate.
func (o *Oracle) RecordWrite(r *api.Request, shard int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.acked++
	for i, id := range r.Content {
		lba := r.LBA + uint64(i)
		if !o.owned(lba, shard) {
			o.spilled++
			continue
		}
		o.want[lba] = uint64(id)
		delete(o.indeterminate, lba)
	}
}

// RecordFailedWrite marks the write's owned range indeterminate: the
// request errored, so the storage may legitimately hold either
// generation (or a torn mix across chunks). Requests the server refused
// without touching the engine (shed, breaker, deadline-before-start)
// should NOT be marked — for those the old expectation still holds;
// pass touched = false to record nothing.
func (o *Oracle) RecordFailedWrite(r *api.Request, shard int, touched bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.failedWrites++
	if !touched {
		return
	}
	for i := range r.Content {
		if lba := r.LBA + uint64(i); o.owned(lba, shard) {
			o.indeterminate[lba] = true
		}
	}
}

// Stats reports acknowledged and failed writes recorded, how many
// blocks ended indeterminate, and how many chunks were excluded as
// cross-granule spill.
func (o *Oracle) Stats() (acked, failed int64, indeterminate int, spilled int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.acked, o.failedWrites, len(o.indeterminate), o.spilled
}

// Check reads every acknowledged block back through read (the logical
// LBA→content resolution path, e.g. Server.ReadContent) and returns the
// violations ordered by LBA, plus the number of blocks verified.
// Indeterminate blocks are skipped.
func (o *Oracle) Check(read func(lba uint64) (uint64, bool)) ([]Violation, int) {
	o.mu.Lock()
	lbas := make([]uint64, 0, len(o.want))
	for lba := range o.want {
		if !o.indeterminate[lba] {
			lbas = append(lbas, lba)
		}
	}
	want := o.want
	o.mu.Unlock()
	sort.Slice(lbas, func(i, j int) bool { return lbas[i] < lbas[j] })

	var out []Violation
	for _, lba := range lbas {
		got, ok := read(lba)
		switch {
		case !ok:
			out = append(out, Violation{LBA: lba, Want: want[lba], Lost: true})
		case got != want[lba]:
			out = append(out, Violation{LBA: lba, Want: want[lba], Got: got})
		}
	}
	return out, len(lbas)
}
