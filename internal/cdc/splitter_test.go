package cdc

import (
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
)

func editWindow(obj uint32, gen uint8, idx0, n int) []chunk.ContentID {
	ids := make([]chunk.ContentID, n)
	for i := range ids {
		ids[i] = EncodeEdit(obj, gen, uint32(idx0+i))
	}
	return ids
}

// TestParseAlgo checks name parsing: canonical names, separator/case
// tolerance, and fail-fast rejection of unknown names.
func TestParseAlgo(t *testing.T) {
	good := map[string]Algo{
		"fixed4k": Fixed4K, "Fixed4K": Fixed4K, "fixed-4k": Fixed4K, "FIXED_4K": Fixed4K,
		"gear": Gear, "GEAR": Gear,
		"seqcdc": SeqCDC, "SeqCDC": SeqCDC, "seq-cdc": SeqCDC, "seq cdc": SeqCDC,
	}
	for in, want := range good {
		got, err := ParseAlgo(in)
		if err != nil || got != want {
			t.Fatalf("ParseAlgo(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "rabin", "fixed8k", "gears"} {
		if _, err := ParseAlgo(in); err == nil {
			t.Fatalf("ParseAlgo(%q) accepted, want error", in)
		}
	}
}

// TestSplitterStreamShiftedDedup is the tentpole property end-to-end:
// the same object across consecutive edited generations — every block
// ID unique, so fixed-4K dedup finds nothing — must yield mostly
// identical content-defined chunks, in both Gear and SeqCDC modes.
func TestSplitterStreamShiftedDedup(t *testing.T) {
	for _, algo := range []Algo{Gear, SeqCDC} {
		s := NewSplitter(Params{Algo: algo})
		const obj, blocks = 5, 96 // 384 KiB windows
		prev := map[chunk.ContentID]bool{}
		for gen := uint8(0); gen <= 3; gen++ {
			chs, bytes := s.Split(nil, editWindow(obj, gen, 0, blocks))
			if bytes < int64(blocks)*slotBytes {
				t.Fatalf("%v gen %d: emitted %d bytes < window %d", algo, gen, bytes, int64(blocks)*slotBytes)
			}
			shared := 0
			cur := map[chunk.ContentID]bool{}
			for _, c := range chs {
				cur[c.Content] = true
				if prev[c.Content] {
					shared++
				}
			}
			if gen > 0 {
				// all but a handful of chunks (edit head, window tail)
				// must be byte-identical to the prior generation
				if shared < len(chs)-6 {
					t.Fatalf("%v gen %d: only %d/%d chunks shared with gen %d", algo, gen, shared, len(chs), gen-1)
				}
			}
			prev = cur
		}
	}
}

// TestSplitterWindowDivisionInvariant: splitting one stream extent as
// a single request or as several consecutive smaller requests must
// yield the exact same chunk sequence with no duplicates and no gaps —
// the ownership-emission contract (a chunk belongs to the window its
// start falls in) that makes request boundaries invisible to dedup and
// keeps fresh writes physically sequential.
func TestSplitterWindowDivisionInvariant(t *testing.T) {
	s := NewSplitter(Params{Algo: Gear})
	const obj, gen = 9, 2

	whole, wholeBytes := s.Split(nil, editWindow(obj, gen, 8, 32))

	var parts []chunk.Chunk
	var partBytes int64
	for _, w := range [][2]int{{8, 8}, {16, 8}, {24, 12}, {36, 4}} {
		chs, n := s.Split(nil, editWindow(obj, gen, w[0], w[1]))
		parts = append(parts, chs...)
		partBytes += n
	}
	if partBytes != wholeBytes {
		t.Fatalf("divided split emits %d bytes, whole emits %d", partBytes, wholeBytes)
	}
	if len(parts) != len(whole) {
		t.Fatalf("divided split yields %d chunks, whole yields %d", len(parts), len(whole))
	}
	for i := range whole {
		if parts[i].Content != whole[i].Content || parts[i].FP != whole[i].FP {
			t.Fatalf("chunk %d differs between whole and divided splits", i)
		}
	}
}

// TestSplitterPlainDeterministic: plain-ID requests (the existing
// trace families) split deterministically and cover the request bytes
// exactly.
func TestSplitterPlainDeterministic(t *testing.T) {
	s := NewSplitter(Params{Algo: Gear})
	ids := make([]chunk.ContentID, 16)
	for i := range ids {
		ids[i] = chunk.ContentID(i*1000 + 3)
	}
	a, abytes := s.Split(nil, ids)
	b, bbytes := s.Split(nil, ids)
	if abytes != int64(len(ids))*slotBytes || abytes != bbytes {
		t.Fatalf("plain split bytes %d/%d, want %d", abytes, bbytes, int64(len(ids))*slotBytes)
	}
	if len(a) != len(b) {
		t.Fatalf("plain split nondeterministic: %d vs %d chunks", len(a), len(b))
	}
	for i := range a {
		if a[i].Content != b[i].Content || a[i].FP != b[i].FP {
			t.Fatalf("plain split chunk %d differs between runs", i)
		}
	}
	if len(a) > (Params{}).WithDefaults().MaxChunksPerSlots(len(ids)) {
		t.Fatalf("%d chunks exceeds MaxChunksPerSlots bound", len(a))
	}
}

// TestSplitterChunkCountBound: no request may emit more chunks than
// MaxChunksPerSlots promises — workloads space LBA extents by it.
func TestSplitterChunkCountBound(t *testing.T) {
	for _, algo := range []Algo{Gear, SeqCDC} {
		s := NewSplitter(Params{Algo: algo})
		bound := s.Params().MaxChunksPerSlots(32)
		for gen := uint8(0); gen <= 7; gen++ {
			chs, _ := s.Split(nil, editWindow(77, gen, 64, 32))
			if len(chs) > bound {
				t.Fatalf("%v gen %d: %d chunks > bound %d", algo, gen, len(chs), bound)
			}
		}
	}
}

// TestSplitterSteadyStateAllocFree guards the batch design: once
// scratch has reached its high-water mark, neither split path may
// allocate.
func TestSplitterSteadyStateAllocFree(t *testing.T) {
	s := NewSplitter(Params{Algo: Gear})
	plain := make([]chunk.ContentID, 32)
	for i := range plain {
		plain[i] = chunk.ContentID(i * 7)
	}
	stream := editWindow(4, 3, 100, 32)
	dst := make([]chunk.Chunk, 0, s.Params().MaxChunksPerSlots(32))
	// warm scratch to high-water
	dst, _ = s.Split(dst[:0], plain)
	dst, _ = s.Split(dst[:0], stream)

	if avg := testing.AllocsPerRun(100, func() {
		dst, _ = s.Split(dst[:0], stream)
	}); avg != 0 {
		t.Fatalf("stream split: %.2f allocs/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() {
		dst, _ = s.Split(dst[:0], plain)
	}); avg != 0 {
		t.Fatalf("plain split: %.2f allocs/op, want 0", avg)
	}
}
