package cdc

// The Gear rolling hash: h = (h<<1) + G[b]. Each left shift retires
// one byte's influence from the top bit, so after 64 steps a byte has
// left the hash entirely — the effective window is exactly 64 bytes,
// and the landmark predicate ("top AvgBits bits of h are zero") is a
// pure function of the 64 bytes ending at the position. That locality
// is what makes the cutpoints shift-invariant: the same 64 content
// bytes produce the same landmark decision at any stream offset.

// gearTable is the 256-entry random table G, generated once by a
// SplitMix64 walk so the chunker is deterministic across processes
// and platforms.
var gearTable = func() (t [256]uint64) {
	x := uint64(0x243F6A8885A308D3) // π, nothing up the sleeve
	for i := range t {
		x += 0x9E3779B97F4A7C15
		t[i] = mix64(x)
	}
	return t
}()

// mix64 is the murmur3/splitmix finalizer used throughout this
// repository (journal checksums, synthetic fingerprints).
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// gearMask returns the landmark mask for a density of one candidate
// per 2^avgBits bytes. The mask selects the TOP bits of the hash:
// Gear's low bits see only the most recent few bytes, while the top
// bits mix the whole 64-byte window (the FastCDC observation).
func gearMask(avgBits int) uint64 { return ^uint64(0) << (64 - avgBits) }

// gearMarks sweeps buf and sets bit i of marks for every landmark
// position i. marks must hold at least (len(buf)+63)/64 words; every
// touched word is fully overwritten. The sweep is batched: one bitmap
// word (64 input bytes) per outer iteration with an 8-way unrolled
// body, no per-byte calls — the shape a SIMD/vector port would keep.
func gearMarks(buf []byte, avgBits int, marks []uint64) {
	mask := gearMask(avgBits)
	var h uint64
	n := len(buf)
	base := 0
	w := 0
	for ; base+64 <= n; base, w = base+64, w+1 {
		b := buf[base : base+64 : base+64]
		var bits uint64
		for k := 0; k < 64; k += 8 {
			h = h<<1 + gearTable[b[k]]
			if h&mask == 0 {
				bits |= 1 << uint(k)
			}
			h = h<<1 + gearTable[b[k+1]]
			if h&mask == 0 {
				bits |= 1 << uint(k+1)
			}
			h = h<<1 + gearTable[b[k+2]]
			if h&mask == 0 {
				bits |= 1 << uint(k+2)
			}
			h = h<<1 + gearTable[b[k+3]]
			if h&mask == 0 {
				bits |= 1 << uint(k+3)
			}
			h = h<<1 + gearTable[b[k+4]]
			if h&mask == 0 {
				bits |= 1 << uint(k+4)
			}
			h = h<<1 + gearTable[b[k+5]]
			if h&mask == 0 {
				bits |= 1 << uint(k+5)
			}
			h = h<<1 + gearTable[b[k+6]]
			if h&mask == 0 {
				bits |= 1 << uint(k+6)
			}
			h = h<<1 + gearTable[b[k+7]]
			if h&mask == 0 {
				bits |= 1 << uint(k+7)
			}
		}
		marks[w] = bits
	}
	if base < n {
		var bits uint64
		for i := base; i < n; i++ {
			h = h<<1 + gearTable[buf[i]]
			if h&mask == 0 {
				bits |= 1 << uint(i-base)
			}
		}
		marks[w] = bits
	}
}

// gearMarkScalar is the reference predicate: it recomputes the rolling
// hash at position i from scratch over the (at most) 64-byte window
// ending there. Tests cross-check the batched sweep against it.
func gearMarkScalar(buf []byte, i int, avgBits int) bool {
	lo := i - 63
	if lo < 0 {
		lo = 0
	}
	var h uint64
	for j := lo; j <= i; j++ {
		h = h<<1 + gearTable[buf[j]]
	}
	return h&gearMask(avgBits) == 0
}
