package cdc

import "testing"

// testRand is a tiny deterministic byte stream for tests (SplitMix64
// walk), so every run sees identical buffers.
func testFill(buf []byte, seed uint64) {
	w := uint64(0)
	for i := range buf {
		if i&7 == 0 {
			seed += 0x9E3779B97F4A7C15
			w = mix64(seed)
		}
		buf[i] = byte(w >> (8 * uint(i&7)))
	}
}

var markSizes = []int{0, 1, 7, 63, 64, 65, 127, 128, 129, 1000, 4096, 4096 + 17}

// TestGearMarksMatchScalar cross-checks the batched 64-byte-word Gear
// sweep against the per-position scalar reference on buffers that
// exercise every word-boundary case.
func TestGearMarksMatchScalar(t *testing.T) {
	for _, avgBits := range []int{6, 8, 11} {
		for _, n := range markSizes {
			buf := make([]byte, n)
			testFill(buf, uint64(n)*1000+uint64(avgBits))
			marks := make([]uint64, (n+63)/64)
			gearMarks(buf, avgBits, marks)
			for i := 0; i < n; i++ {
				got := marks[i>>6]>>uint(i&63)&1 == 1
				want := gearMarkScalar(buf, i, avgBits)
				if got != want {
					t.Fatalf("avgBits=%d n=%d pos=%d: batched=%v scalar=%v", avgBits, n, i, got, want)
				}
			}
		}
	}
}

// TestSeqMarksMatchScalar does the same for the sequence-based sweep,
// including crafted monotone regions longer than SeqLen (which must
// mark exactly one position each).
func TestSeqMarksMatchScalar(t *testing.T) {
	for _, seqLen := range []int{3, 4, 6} {
		for _, n := range markSizes {
			buf := make([]byte, n)
			testFill(buf, uint64(n)*77+uint64(seqLen))
			// splice in monotone ramps of assorted lengths, some
			// crossing 64-byte word boundaries
			for _, at := range []int{5, 60, 120, 1020} {
				for j := 0; j < 2*seqLen+3 && at+j < n; j++ {
					buf[at+j] = byte(10 + 3*j)
				}
			}
			marks := make([]uint64, (n+63)/64)
			seqMarks(buf, seqLen, marks)
			for i := 0; i < n; i++ {
				got := marks[i>>6]>>uint(i&63)&1 == 1
				want := seqMarkScalar(buf, i, seqLen)
				if got != want {
					t.Fatalf("seqLen=%d n=%d pos=%d: batched=%v scalar=%v", seqLen, n, i, got, want)
				}
			}
		}
	}
}

// TestSeqMarksOnePerRun checks the exactly-once property directly: a
// single long monotone ramp yields exactly one landmark.
func TestSeqMarksOnePerRun(t *testing.T) {
	buf := make([]byte, 128)
	for i := range buf {
		buf[i] = byte(i) // strictly increasing over [0,128)
	}
	marks := make([]uint64, 2)
	seqMarks(buf, 6, marks)
	count := 0
	for i := 0; i < len(buf); i++ {
		if marks[i>>6]>>uint(i&63)&1 == 1 {
			count++
			if i != 6 {
				t.Fatalf("landmark at %d, want 6 (sixth step of the run)", i)
			}
		}
	}
	if count != 1 {
		t.Fatalf("%d landmarks in one monotone run, want 1", count)
	}
}
