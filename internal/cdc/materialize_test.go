package cdc

import (
	"bytes"
	"testing"
)

// TestEditCodecRoundTrip checks the (object, gen, idx) packing and the
// consecutive-index ⇒ consecutive-ID property streamRun depends on.
func TestEditCodecRoundTrip(t *testing.T) {
	cases := []struct {
		obj uint32
		gen uint8
		idx uint32
	}{
		{0, 0, 0}, {1, 1, 1}, {0xFFFFFF, 255, MaxEditIdx},
		{12345, 7, 1 << 20}, {42, 0, MaxEditIdx - 1},
	}
	for _, c := range cases {
		id := EncodeEdit(c.obj, c.gen, c.idx)
		if !IsEdit(id) {
			t.Fatalf("EncodeEdit(%d,%d,%d) not tagged", c.obj, c.gen, c.idx)
		}
		obj, gen, idx := DecodeEdit(id)
		if obj != c.obj || gen != c.gen || idx != c.idx {
			t.Fatalf("round trip (%d,%d,%d) -> (%d,%d,%d)", c.obj, c.gen, c.idx, obj, gen, idx)
		}
		if c.idx < MaxEditIdx {
			if next := EncodeEdit(c.obj, c.gen, c.idx+1); next != id+1 {
				t.Fatalf("idx+1 must encode to id+1: %x vs %x", uint64(next), uint64(id)+1)
			}
		}
	}
}

// TestMaterializeStreamPiecewise: random access must agree with itself
// — materializing a range in one call equals materializing it in
// arbitrary pieces.
func TestMaterializeStreamPiecewise(t *testing.T) {
	const n = 20_000
	whole := make([]byte, n)
	MaterializeStream(3, 5, 0, whole)
	for _, splitAt := range []int{1, 7, 4096, 13_011} {
		a := make([]byte, splitAt)
		b := make([]byte, n-splitAt)
		MaterializeStream(3, 5, 0, a)
		MaterializeStream(3, 5, int64(splitAt), b)
		if !bytes.Equal(whole[:splitAt], a) || !bytes.Equal(whole[splitAt:], b) {
			t.Fatalf("piecewise materialization at %d diverges", splitAt)
		}
	}
	// unaligned mid-stream starts (word-combine path with every shift)
	for from := int64(9990); from < 9999; from++ {
		p := make([]byte, 100)
		MaterializeStream(3, 5, from, p)
		if !bytes.Equal(whole[from:from+100], p) {
			t.Fatalf("mid-stream read at %d diverges", from)
		}
	}
}

// TestMaterializeStreamGenerationsShare verifies the shifted-sharing
// contract: beyond its edited head, generation g's bytes are
// generation g−1's bytes at a shifted offset — the redundancy CDC is
// supposed to recover and fixed-4K chunking cannot.
func TestMaterializeStreamGenerationsShare(t *testing.T) {
	const obj, n = 11, 1 << 16
	for gen := uint8(1); gen <= 6; gen++ {
		cur := make([]byte, n)
		prev := make([]byte, n+64)
		MaterializeStream(obj, gen, 0, cur)
		MaterializeStream(obj, gen-1, 0, prev)
		delta := EditDelta(obj, gen)
		if delta == 0 || delta < -8 || delta > 16 {
			t.Fatalf("gen %d: edit delta %d out of range", gen, delta)
		}
		// skip both generations' head regions, then require byte
		// equality at the shifted offset
		skip := int64(EditOffset(obj, gen)) + 32
		if skip < 64 {
			skip = 64
		}
		for q := skip; q < n; q++ {
			if cur[q] != prev[q-int64(delta)] {
				t.Fatalf("gen %d: byte %d not shared with gen %d at offset %+d", gen, q, gen-1, delta)
			}
		}
	}
}

// TestMaterializeStreamBlocksUnique spot-checks that distinct 4 KiB
// blocks of one stream are distinct bytes (the ID model's uniqueness,
// carried down to the byte level).
func TestMaterializeStreamBlocksUnique(t *testing.T) {
	a := make([]byte, 4096)
	b := make([]byte, 4096)
	MaterializeStream(1, 0, 0, a)
	MaterializeStream(1, 0, 4096, b)
	if bytes.Equal(a, b) {
		t.Fatal("adjacent blocks materialized identically")
	}
	MaterializeStream(2, 0, 0, b)
	if bytes.Equal(a, b) {
		t.Fatal("different objects materialized identically")
	}
}
