package cdc

import (
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
)

// benchSplit drives one splitter over a rotating set of stream
// windows (so the materializer cannot serve a single hot window) and
// reports bytes-of-content-chunked per second via b.SetBytes.
func benchSplit(b *testing.B, algo Algo) {
	s := NewSplitter(Params{Algo: algo})
	const blocks = 64 // 256 KiB per request window
	windows := make([][]chunk.ContentID, 8)
	for g := range windows {
		windows[g] = editWindow(1, uint8(g), 128, blocks)
	}
	dst := make([]chunk.Chunk, 0, s.Params().MaxChunksPerSlots(blocks))
	dst, _ = s.Split(dst[:0], windows[0]) // warm scratch
	b.SetBytes(int64(blocks) * slotBytes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = s.Split(dst[:0], windows[i&7])
	}
	_ = dst
}

// BenchmarkGearChunk measures the full Gear split path per request:
// materialize, landmark sweep, cut derivation, hash, fingerprint.
func BenchmarkGearChunk(b *testing.B) { benchSplit(b, Gear) }

// BenchmarkSeqCDCChunk is the same for the sequence-based chunker.
func BenchmarkSeqCDCChunk(b *testing.B) { benchSplit(b, SeqCDC) }

// BenchmarkMaterializeStream isolates the byte expansion.
func BenchmarkMaterializeStream(b *testing.B) {
	buf := make([]byte, 1<<20)
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaterializeStream(1, uint8(i&7), 4096, buf)
	}
}
