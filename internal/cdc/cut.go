package cdc

import "math/bits"

// Cut derivation: stage 2 of the chunker. A cut at offset c ends a
// chunk at c (end-exclusive); a landmark at byte position p proposes
// the cut c = p+1, so the landmark byte is the last byte of its
// chunk.
//
// Two modes:
//
//   - appendChainedCuts is the classic FastCDC walk for self-contained
//     buffers (plain-ID requests): each chunk ends at the first
//     landmark at least MinBytes after the previous cut, or at
//     MaxBytes, whichever comes first. Simple, but each cut depends on
//     the previous one, so an edit re-aligns every later cut until a
//     landmark happens to coincide — within one request that is fine.
//   - appendStreamCuts is the *normalized* mode for stream windows: a
//     landmark is accepted iff no other landmark precedes it within
//     MinBytes. Acceptance is a pure function of a bounded window
//     (MinBytes+64 bytes of content), not of any earlier cut, so two
//     streams sharing a run of content share every accepted cut inside
//     it regardless of byte offset. Accepted landmarks are provably
//     ≥ MinBytes apart (a closer pair would have rejected the later
//     one), and gaps longer than MaxBytes are grid-filled with cuts
//     anchored to the preceding accepted landmark — still
//     content-anchored, so still shift-invariant.

// nextMark returns the first marked position in [lo, hi), or -1.
func nextMark(marks []uint64, lo, hi int) int {
	if lo >= hi {
		return -1
	}
	w := lo >> 6
	word := marks[w] >> uint(lo&63) << uint(lo&63)
	for {
		if word != 0 {
			p := w<<6 + bits.TrailingZeros64(word)
			if p >= hi {
				return -1
			}
			return p
		}
		w++
		if w<<6 >= hi {
			return -1
		}
		word = marks[w]
	}
}

// appendChainedCuts appends end-exclusive cuts for buf[0:n] to cuts
// and returns it. The final cut is always n (the buffer end), so the
// last chunk may run short of minB.
func appendChainedCuts(cuts []int32, marks []uint64, n, minB, maxB int) []int32 {
	last := 0
	for last < n {
		hi := last + maxB
		if hi > n {
			hi = n
		}
		next := hi
		// landmark p cuts at p+1; chunk size p+1-last ∈ [minB, maxB]
		if p := nextMark(marks, last+minB-1, hi); p >= 0 {
			next = p + 1
		}
		cuts = append(cuts, int32(next))
		last = next
	}
	return cuts
}

// appendStreamCuts appends end-exclusive cuts (offsets into the
// buffer) for a buffer that is a window of a larger byte stream and
// returns the extended slice. base is the stream offset of buf[0]; a
// base of zero marks the true stream head, which contributes a forced
// cut at offset 0. Cuts may be emitted for the entire buffer; the
// caller selects the spans overlapping its emission window.
//
// Callers must provide enough lookback before the region whose cuts
// they consume: positions closer than minB to the buffer start cannot
// see landmarks before the buffer (their acceptance may differ from
// the stream's truth), and the first 64 bytes carry a cold Gear
// window. streamLookback covers both with margin.
func appendStreamCuts(cuts []int32, marks []uint64, n int, base int64, minB, maxB int) []int32 {
	// anchor: the previous cut. At the stream head it is offset 0
	// (forced, and emitted). Mid-stream, fall back to the absolute
	// maxB grid so a landmark desert at the buffer head still gets
	// cuts; the fallback is only ever consumed when no landmark
	// appeared in a full lookback of content (rare by construction),
	// and it loses shift-invariance only for those desert chunks.
	var anchor int
	headAnchored := base == 0
	if headAnchored {
		cuts = append(cuts, 0)
		anchor = 0
	} else {
		anchor = -int(base % int64(maxB))
		if anchor == 0 {
			anchor = -maxB
		}
	}
	// walk raw landmarks, accepting the isolated ones; grid-fill long
	// gaps from the last cut so no chunk exceeds maxB
	prevMark := -(minB + 1) // "no landmark before the buffer" as far as acceptance can see
	pos := 0
	for {
		p := nextMark(marks, pos, n)
		if p < 0 {
			break
		}
		accepted := p-prevMark >= minB
		prevMark = p
		pos = p + 1
		if !accepted {
			continue
		}
		c := p + 1
		cuts = fillGrid(cuts, anchor, c, minB, maxB)
		cuts = append(cuts, int32(c))
		anchor = c
	}
	// tail: plain maxB grid from the last cut, so every position is
	// within maxB of a cut. No min-fragment adjustment here — that
	// rule anchors on the *next* cut, and the only "next" available is
	// the buffer end, which is not content. The final span past the
	// last cut stays open: it is a straddler into content beyond the
	// buffer, closed by whoever owns that window.
	for g := anchor + maxB; g <= n; g += maxB {
		if g > 0 {
			cuts = append(cuts, int32(g))
		}
	}
	return cuts
}

// fillGrid appends cuts between anchor and next (both end-exclusive
// offsets, next not included) so that no gap exceeds maxB, stepping
// maxB from the anchor but never leaving a final fragment shorter
// than minB before next. Cuts at negative offsets (grid positions
// before the buffer) are clipped: they exist conceptually but cannot
// be emitted.
func fillGrid(cuts []int32, anchor, next, minB, maxB int) []int32 {
	for next-anchor > maxB {
		g := anchor + maxB
		if next-g < minB {
			g = next - minB
		}
		if g > 0 {
			cuts = append(cuts, int32(g))
		}
		anchor = g
	}
	return cuts
}
