// Package cdc implements content-defined chunking (CDC) as a
// selectable engine axis: a Gear rolling-hash chunker and a
// SeqCDC-style sequence-based chunker, both batch-oriented and
// allocation-free in steady state.
//
// The rest of the repository identifies chunk content by opaque
// ContentIDs at a fixed 4 KiB granularity — equal IDs mean
// byte-identical chunks, and nothing below the workload generator ever
// sees bytes. That model cannot express *shifted* duplicate content: a
// snapshot stream that gained a few bytes at its head has every 4 KiB
// block re-aligned, so fixed chunking (and any ID-granular scheme)
// dedups exactly 0% of it. This package closes the gap in three
// layers:
//
//  1. A deterministic byte-materializer (materialize.go) expands
//     synthetic ContentID streams into reproducible byte content.
//     Edit-encoded IDs (EncodeEdit: object, generation, block index)
//     describe snapshot generations whose bytes are the previous
//     generation's bytes shifted by a small head insert or delete, so
//     byte-level redundancy exists between generations even though
//     every 4 KiB block differs.
//  2. A two-stage chunker: a batched landmark sweep (gear.go,
//     seqcdc.go) marks candidate cutpoints in a bitmap, then cut
//     derivation (cut.go) applies min/avg/max bounds. For stream
//     (edit-ID) content the cuts are *normalized*: a landmark is
//     accepted only when no other landmark precedes it within
//     MinBytes, making every accepted cut a pure function of a
//     bounded content window — byte-shifted content re-synchronizes
//     to identical chunks within one max-chunk distance of the edit.
//  3. A Splitter (splitter.go) that turns one write request's IDs
//     into engine chunks: each CDC chunk occupies one logical slot,
//     its ContentID is a 64-bit hash of its bytes, and its
//     fingerprint derives from that ID exactly like the synthetic
//     fixed-4K path — so the Map table, allocator, index cache, and
//     every dedup decision downstream work unchanged.
//
// Fixed4K (the default) bypasses all of this: engines split requests
// one ID per chunk as before, keeping every paper artifact
// byte-identical. See DESIGN.md §14.
package cdc

import (
	"fmt"
	"strings"
)

// Algo selects the chunking algorithm of one engine.
type Algo int

const (
	// Fixed4K is the repository default: one chunk per 4 KiB content
	// ID, no byte materialization. The zero value, so an unset
	// Params leaves every existing configuration untouched.
	Fixed4K Algo = iota
	// Gear is a Gear rolling-hash chunker (the FastCDC/VectorCDC hash
	// family): h = (h<<1) + G[b], landmark where the top AvgBits bits
	// of h are zero. The hash window is exactly 64 bytes.
	Gear
	// SeqCDC is a hashless sequence-based chunker in the style of
	// SeqCDC/VectorCDC: a landmark is a run of SeqLen consecutive
	// strictly-increasing byte steps. Cheaper per byte than Gear and
	// SIMD-friendly in spirit: the batched sweep is branch-light and
	// processes bitmap words, not per-byte calls.
	SeqCDC
)

// String names the algorithm as accepted by ParseAlgo.
func (a Algo) String() string {
	switch a {
	case Fixed4K:
		return "fixed4k"
	case Gear:
		return "gear"
	case SeqCDC:
		return "seqcdc"
	default:
		return fmt.Sprintf("cdc.Algo(%d)", int(a))
	}
}

// Algos lists the selectable chunkers in presentation order.
func Algos() []Algo { return []Algo{Fixed4K, Gear, SeqCDC} }

// ParseAlgo resolves a chunker name case-insensitively, ignoring
// hyphen/underscore/space punctuation ("fixed4k", "Fixed-4K", "gear",
// "SeqCDC" all resolve), mirroring pod.ParseScheme so every
// command-line tool validates -chunking the same way.
func ParseAlgo(s string) (Algo, error) {
	norm := func(v string) string {
		v = strings.ToLower(v)
		for _, cut := range []string{"-", "_", " "} {
			v = strings.ReplaceAll(v, cut, "")
		}
		return v
	}
	want := norm(s)
	if want == "" {
		return Fixed4K, fmt.Errorf("cdc: empty chunker name")
	}
	for _, a := range Algos() {
		if norm(a.String()) == want {
			return a, nil
		}
	}
	var names []string
	for _, a := range Algos() {
		names = append(names, a.String())
	}
	return Fixed4K, fmt.Errorf("cdc: unknown chunker %q (have %s)", s, strings.Join(names, ", "))
}

// Params configures one engine's chunker. The zero value selects
// Fixed4K (CDC off); WithDefaults fills the remaining fields.
type Params struct {
	Algo Algo

	// MinBytes and MaxBytes bound every emitted chunk (the head and
	// tail chunk of a stream may run shorter). Defaults 2048 / 16384.
	MinBytes int
	MaxBytes int

	// AvgBits sets Gear's landmark density: a landmark roughly every
	// 2^AvgBits bytes before the min-bound filter. Default 11 (2 KiB).
	AvgBits int

	// SeqLen sets SeqCDC's landmark condition: a run of SeqLen
	// consecutive strictly-increasing byte steps. Default 6 (≈1/5040
	// positions on random bytes).
	SeqLen int
}

// Enabled reports whether content-defined chunking is on.
func (p Params) Enabled() bool { return p.Algo != Fixed4K }

// WithDefaults fills unset fields with the evaluation defaults.
func (p Params) WithDefaults() Params {
	if p.MinBytes == 0 {
		p.MinBytes = 2048
	}
	if p.MaxBytes == 0 {
		p.MaxBytes = 16384
	}
	if p.AvgBits == 0 {
		p.AvgBits = 11
	}
	if p.SeqLen == 0 {
		p.SeqLen = 6
	}
	return p
}

// Validate rejects parameter combinations the splitter cannot honor.
func (p Params) Validate() error {
	p = p.WithDefaults()
	if !p.Enabled() {
		return nil
	}
	if p.MinBytes < 256 {
		return fmt.Errorf("cdc: MinBytes %d < 256", p.MinBytes)
	}
	if p.MaxBytes < 2*p.MinBytes {
		return fmt.Errorf("cdc: MaxBytes %d < 2×MinBytes %d", p.MaxBytes, p.MinBytes)
	}
	if p.MaxBytes > 1<<20 {
		return fmt.Errorf("cdc: MaxBytes %d > 1 MiB", p.MaxBytes)
	}
	if p.AvgBits < 6 || p.AvgBits > 20 {
		return fmt.Errorf("cdc: AvgBits %d outside [6, 20]", p.AvgBits)
	}
	if p.SeqLen < 3 || p.SeqLen > 16 {
		return fmt.Errorf("cdc: SeqLen %d outside [3, 16]", p.SeqLen)
	}
	return nil
}
