package cdc

import "testing"

func sweepGear(buf []byte, avgBits int) []uint64 {
	marks := make([]uint64, (len(buf)+63)/64)
	gearMarks(buf, avgBits, marks)
	return marks
}

// TestChainedCutsBounds checks the classic-walk invariants: cuts
// strictly increase, every chunk is within [minB, maxB] except the
// final one (which may run short), and the final cut is the buffer
// end.
func TestChainedCutsBounds(t *testing.T) {
	const minB, maxB, avgBits = 2048, 16384, 11
	for _, n := range []int{1, 2047, 2048, 100_000, 1 << 18} {
		buf := make([]byte, n)
		testFill(buf, uint64(n))
		cuts := appendChainedCuts(nil, sweepGear(buf, avgBits), n, minB, maxB)
		if len(cuts) == 0 || int(cuts[len(cuts)-1]) != n {
			t.Fatalf("n=%d: final cut %v, want %d", n, cuts, n)
		}
		last := 0
		for k, c := range cuts {
			sz := int(c) - last
			if sz <= 0 || sz > maxB {
				t.Fatalf("n=%d cut %d: chunk size %d out of (0, %d]", n, k, sz, maxB)
			}
			if sz < minB && k != len(cuts)-1 {
				t.Fatalf("n=%d cut %d: non-final chunk size %d < min %d", n, k, sz, minB)
			}
			last = int(c)
		}
	}
}

// TestStreamCutsSpacing checks the normalized-mode invariants over a
// head-anchored stream buffer: a forced cut at 0, strictly increasing
// cuts, and every gap within [minB, maxB].
func TestStreamCutsSpacing(t *testing.T) {
	const minB, maxB, avgBits = 2048, 16384, 11
	n := 1 << 18
	buf := make([]byte, n)
	testFill(buf, 42)
	cuts := appendStreamCuts(nil, sweepGear(buf, avgBits), n, 0, minB, maxB)
	if len(cuts) == 0 || cuts[0] != 0 {
		t.Fatalf("head-anchored stream must start with cut 0 (%d cuts)", len(cuts))
	}
	for k := 1; k < len(cuts); k++ {
		gap := int(cuts[k] - cuts[k-1])
		if gap < minB || gap > maxB {
			t.Fatalf("cut %d: gap %d outside [%d, %d]", k, gap, minB, maxB)
		}
	}
	// the uncut tail past the last cut is a straddler-in-progress and
	// must be shorter than maxB (otherwise a grid cut was missed)
	if tail := n - int(cuts[len(cuts)-1]); tail >= maxB {
		t.Fatalf("uncut tail %d ≥ max %d", tail, maxB)
	}
}

// collectShifted filters cuts to [lo, hi) and shifts them by -delta,
// for comparing cut sets across edited streams.
func collectShifted(cuts []int32, lo, hi, delta int) []int {
	var out []int
	for _, c := range cuts {
		p := int(c) - delta
		if p >= lo && p < hi {
			out = append(out, p)
		}
	}
	return out
}

// TestStreamCutsShiftInvariance is the core normalized-chunking
// property: inserting or deleting bytes at the head of a stream leaves
// every cut beyond a bounded resynchronization window unchanged
// (relative to the shared content). Chained mode has no such property
// — each cut depends on the previous one — which is exactly why the
// splitter uses stream mode for edit-encoded windows.
func TestStreamCutsShiftInvariance(t *testing.T) {
	const minB, maxB, avgBits = 2048, 16384, 11
	const n = 1 << 18
	base := make([]byte, n)
	testFill(base, 7)

	// resync bound: acceptance needs minB+64 bytes of shared history,
	// then the first accepted landmark re-anchors the grid; one max
	// chunk of shared content is guaranteed to contain an accepted cut
	// only statistically, so allow one extra maxB of slack.
	const resync = 2*maxB + minB + 64

	for _, edit := range []int{+13, +1, -5, -8} {
		edited := make([]byte, 0, n+16)
		if edit > 0 { // insert `edit` junk bytes at the head
			for j := 0; j < edit; j++ {
				edited = append(edited, byte(0xA5^j))
			}
			edited = append(edited, base...)
		} else { // delete -edit bytes from the head
			edited = append(edited, base[-edit:]...)
		}
		cutsA := appendStreamCuts(nil, sweepGear(base, avgBits), len(base), 0, minB, maxB)
		cutsB := appendStreamCuts(nil, sweepGear(edited, avgBits), len(edited), 0, minB, maxB)

		// positions in base-stream coordinates; delta maps edited→base
		lo, hi := resync, n-maxB
		wantCuts := collectShifted(cutsA, lo, hi, 0)
		gotCuts := collectShifted(cutsB, lo, hi, edit)
		if len(wantCuts) == 0 {
			t.Fatalf("edit %+d: no cuts in comparison window", edit)
		}
		if len(gotCuts) != len(wantCuts) {
			t.Fatalf("edit %+d: %d cuts vs %d in shared region", edit, len(gotCuts), len(wantCuts))
		}
		for k := range wantCuts {
			if gotCuts[k] != wantCuts[k] {
				t.Fatalf("edit %+d: cut %d at %d, want %d", edit, k, gotCuts[k], wantCuts[k])
			}
		}
	}
}

// TestStreamCutsWindowed checks the lookback contract splitStream
// relies on: cuts computed over a mid-stream window (with lookback
// context) match the cuts of the full stream inside that window.
func TestStreamCutsWindowed(t *testing.T) {
	const minB, maxB, avgBits = 2048, 16384, 11
	const n = 1 << 18
	lookback := Params{MinBytes: minB, MaxBytes: maxB}.lookback()
	full := make([]byte, n)
	testFill(full, 99)
	cutsFull := appendStreamCuts(nil, sweepGear(full, avgBits), n, 0, minB, maxB)

	wStart, wEnd := int64(120_000), int64(200_000)
	bufStart := wStart - lookback
	window := full[bufStart:wEnd]
	cutsWin := appendStreamCuts(nil, sweepGear(window, avgBits), len(window), bufStart, minB, maxB)

	want := collectShifted(cutsFull, int(wStart), int(wEnd), 0)
	got := collectShifted(cutsWin, int(wStart), int(wEnd), int(-bufStart))
	if len(want) == 0 || len(got) != len(want) {
		t.Fatalf("windowed: %d cuts vs %d in window", len(got), len(want))
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("windowed cut %d at %d, want %d", k, got[k], want[k])
		}
	}
}
