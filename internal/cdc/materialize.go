package cdc

import (
	"encoding/binary"

	"github.com/pod-dedup/pod/internal/chunk"
)

// The byte-materializer: a deterministic expansion of synthetic
// ContentIDs into reproducible byte content, so CDC has real bytes to
// cut without the traces carrying any.
//
// Two ID families exist:
//
//   - Plain IDs (everything the existing workload generators emit):
//     the canonical chunk.FillPayload bytes — equal IDs still mean
//     byte-identical 4 KiB blocks, so CDC over a plain trace sees
//     exactly the content the ID model promised.
//   - Edit-encoded IDs (EncodeEdit): ID = (object, generation, block
//     index), describing block `idx` of generation `gen` of a
//     snapshot-like byte stream. Generation g's stream is generation
//     g−1's stream with a small deterministic edit at its head — an
//     insert of 1–16 bytes or a delete of 1–8 — so consecutive
//     generations share almost all their bytes at shifted offsets.
//     Every 4 KiB block of every generation is nevertheless unique as
//     an ID (the whole point: fixed-4K chunking finds nothing).
//
// The stream is defined by random access, never by replaying edits:
//
//	stream(obj, g)[q] = head(obj, g, q)          for q <  max(0, off(g))
//	                  = base(obj)[q − off(g)]    for q ≥ max(0, off(g))
//
// where off(g) is the cumulative net edit offset and base(obj) is an
// infinite deterministic byte stream (one mix64 word per 8 bytes).
// Equal base offsets yield equal bytes across generations, which is
// the byte-level redundancy the chunkers recover; off(g) shifts where
// those bytes appear, which is what defeats fixed chunking.

// Edit-encoded ContentID layout: tag(1) | object(24) | gen(8) | idx(31).
const (
	editTag     = uint64(1) << 63
	editIdxBits = 31
	editGenBits = 8
	editIdxMask = uint64(1)<<editIdxBits - 1
	editGenMask = uint64(1)<<editGenBits - 1

	// MaxEditIdx bounds the block index of an edit-encoded ID; a
	// request's window must stay below it so consecutive IDs differ by
	// exactly one.
	MaxEditIdx = uint32(editIdxMask)
)

// EncodeEdit packs (object, generation, block index) into an
// edit-encoded ContentID. Consecutive block indexes yield consecutive
// IDs, which is how the splitter recognizes a stream window without
// side channels.
func EncodeEdit(object uint32, gen uint8, idx uint32) chunk.ContentID {
	return chunk.ContentID(editTag |
		uint64(object&0xFFFFFF)<<(editGenBits+editIdxBits) |
		uint64(gen)<<editIdxBits |
		uint64(idx)&editIdxMask)
}

// IsEdit reports whether id is edit-encoded.
func IsEdit(id chunk.ContentID) bool { return uint64(id)&editTag != 0 }

// DecodeEdit unpacks an edit-encoded ContentID.
func DecodeEdit(id chunk.ContentID) (object uint32, gen uint8, idx uint32) {
	v := uint64(id)
	return uint32(v >> (editGenBits + editIdxBits) & 0xFFFFFF),
		uint8(v >> editIdxBits & editGenMask),
		uint32(v & editIdxMask)
}

// objSeed derives the object's base-stream seed.
func objSeed(object uint32) uint64 {
	return mix64(0x9D0C0FFEE ^ uint64(object)*0x9E3779B97F4A7C15)
}

// EditDelta returns generation g's head edit as a net byte offset
// delta: positive = insert that many bytes, negative = delete.
// Generation 0 is the unedited base stream.
func EditDelta(object uint32, gen uint8) int {
	if gen == 0 {
		return 0
	}
	v := mix64(objSeed(object) ^ 0xED17ED17 ^ uint64(gen))
	if v&3 == 0 {
		return -int(1 + v>>8&7) // delete 1..8
	}
	return int(1 + v>>8&15) // insert 1..16
}

// EditOffset returns the cumulative net offset off(gen): the number of
// bytes by which generation gen's content is shifted right of the base
// stream (may be negative after net deletes).
func EditOffset(object uint32, gen uint8) int {
	off := 0
	for g := 1; g <= int(gen); g++ {
		off += EditDelta(object, uint8(g))
	}
	return off
}

// baseWord returns the 8 little-endian base-stream bytes at base
// offsets [8w, 8w+8).
func baseWord(seed uint64, w int64) uint64 {
	return mix64(seed + uint64(w+1)*0x9E3779B97F4A7C15)
}

// baseByte returns base-stream byte r (r ≥ 0).
func baseByte(seed uint64, r int64) byte {
	return byte(baseWord(seed, r>>3) >> (uint(r&7) * 8))
}

// headByte returns byte q of generation gen's edited head region —
// bytes with no base-stream identity, unique to (object, gen).
func headByte(seed uint64, gen uint8, q int64) byte {
	return byte(mix64(seed ^ 0x48EAD<<40 ^ uint64(gen)<<32 ^ uint64(q)))
}

// MaterializeStream fills dst with stream(object, gen)[from : from+len(dst)).
// from must be ≥ 0; offsets past the generation's nominal length are
// valid (the base stream is infinite), which the splitter uses for
// bounded lookahead past a request window. The fill is word-granular
// off the base stream — one mix64 per 8 output bytes — so a request
// window materializes at memory-bandwidth-like speed.
func MaterializeStream(object uint32, gen uint8, from int64, dst []byte) {
	seed := objSeed(object)
	head := int64(EditOffset(object, gen))
	if head < 0 {
		head = 0
	}
	i := 0
	// edited head region: tiny (≤ 16 bytes/generation), per-byte
	for q := from; q < head && i < len(dst); q++ {
		dst[i] = headByte(seed, gen, q)
		i++
	}
	if i >= len(dst) {
		return
	}
	// base region, shifted by the cumulative edit offset
	r := from + int64(i) - int64(EditOffset(object, gen))
	w := r >> 3
	sh := uint(r&7) * 8
	cur := baseWord(seed, w)
	for i+8 <= len(dst) {
		next := baseWord(seed, w+1)
		binary.LittleEndian.PutUint64(dst[i:], cur>>sh|next<<(64-sh))
		cur = next
		w++
		i += 8
		r += 8
	}
	for ; i < len(dst); i++ {
		dst[i] = baseByte(seed, r)
		r++
	}
}
