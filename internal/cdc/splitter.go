package cdc

import (
	"encoding/binary"
	"fmt"

	"github.com/pod-dedup/pod/internal/chunk"
)

// slotBytes is the byte span of one logical slot — one ContentID of
// the incoming request, and one engine chunk/Map-table entry of the
// outgoing split. CDC chunks are variable-sized in *content*, but each
// occupies one slot downstream, so the allocator, Map table, and index
// cache need no notion of byte lengths.
const slotBytes = int64(chunk.Size)

// Splitter turns one write request's ContentIDs into content-defined
// engine chunks. All scratch (byte buffer, landmark bitmap, cut list)
// is owned by the Splitter and grows to a high-water mark, so
// steady-state splitting allocates nothing. An engine services one
// request at a time, so one Splitter per Base suffices; it is not safe
// for concurrent use.
type Splitter struct {
	p  Params
	fp chunk.SyntheticFingerprinter
	mt chunk.Materializer

	buf   []byte
	marks []uint64
	cuts  []int32

	// Cumulative emission gauges (engine instrumentation reads these).
	EmittedChunks int64
	EmittedBytes  int64
}

// NewSplitter returns a splitter for p (panics on invalid parameters
// or Fixed4K, like engine.NewBase does on bad substrate config —
// callers validate user input with Params.Validate / ParseAlgo first).
func NewSplitter(p Params) *Splitter {
	p = p.WithDefaults()
	if err := p.Validate(); err != nil {
		panic(err)
	}
	if !p.Enabled() {
		panic("cdc: NewSplitter with Fixed4K (CDC off)")
	}
	return &Splitter{p: p}
}

// Params reports the (default-filled) parameters in use.
func (s *Splitter) Params() Params { return s.p }

// lookback is the content materialized behind a stream window so every
// cut decision inside (and one straddler before) it is warm: MinBytes
// of landmark-isolation history plus the 64-byte Gear window for the
// earliest relevant position, which sits up to two max-chunks before
// the window start (the straddler's own start, and its anchor).
func (p Params) lookback() int64 {
	return int64(2*p.MaxBytes + p.MinBytes + 64)
}

// MaxChunksPerSlots bounds how many chunks Split can emit for a
// request of n slots: the emission span covers the window plus up to
// one max-chunk of straddle on each side, divided by the min bound.
// Workloads that interleave CDC extents use it to space LBA extents.
func (p Params) MaxChunksPerSlots(n int) int {
	p = p.WithDefaults()
	span := int64(n)*slotBytes + 2*int64(p.MaxBytes)
	return int(span/int64(p.MinBytes)) + 2
}

// Split appends the content-defined chunks of one write request to dst
// and returns it plus the total content bytes emitted (the
// fingerprint-cost basis). ids is the request's Content slice.
//
// A run of consecutive edit-encoded IDs (one object, one generation,
// adjacent block indexes) is cut in *stream* mode: the request window
// is materialized with lookback/lookahead context, normalized cuts are
// derived, and the request emits exactly the chunks whose start offset
// falls inside its window — the final chunk completes past the window
// edge out of lookahead content, and the chunk straddling the window
// start belongs to the preceding window. Requests covering a stream
// therefore tile its chunk sequence with no overlap and no gap: each
// chunk is emitted exactly once per pass, which keeps one generation's
// fresh chunks physically sequential on disk (a duplicate-suppression
// property the Select-Dedupe classifier's "sequentially stored" test
// depends on), while the cut normalization makes the tiling identical
// no matter how the stream is divided into requests and identical
// across shifted generations wherever content is shared. Anything else
// (the plain synthetic IDs of the existing traces) is cut in chained
// mode over the request's own bytes.
//
// Every emitted chunk's ContentID is a 64-bit hash of its bytes and
// its fingerprint derives from that ID, so equal content means equal
// fingerprint exactly as in the fixed-4K model.
func (s *Splitter) Split(dst []chunk.Chunk, ids []chunk.ContentID) ([]chunk.Chunk, int64) {
	if len(ids) == 0 {
		return dst, 0
	}
	if obj, gen, idx0, ok := streamRun(ids); ok {
		return s.splitStream(dst, obj, gen, idx0, len(ids))
	}
	return s.splitPlain(dst, ids)
}

// streamRun detects a window of one edit-encoded stream: consecutive
// IDs incrementing by exactly one without overflowing the index field.
func streamRun(ids []chunk.ContentID) (obj uint32, gen uint8, idx0 uint32, ok bool) {
	if !IsEdit(ids[0]) {
		return 0, 0, 0, false
	}
	obj, gen, idx0 = DecodeEdit(ids[0])
	if uint64(idx0)+uint64(len(ids)) > uint64(MaxEditIdx) {
		return 0, 0, 0, false
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[0]+chunk.ContentID(i) {
			return 0, 0, 0, false
		}
	}
	return obj, gen, idx0, true
}

func (s *Splitter) splitStream(dst []chunk.Chunk, obj uint32, gen uint8, idx0 uint32, n int) ([]chunk.Chunk, int64) {
	wStart := int64(idx0) * slotBytes
	wEnd := wStart + int64(n)*slotBytes
	bufStart := wStart - s.p.lookback()
	if bufStart < 0 {
		bufStart = 0
	}
	bufEnd := wEnd + int64(s.p.MaxBytes)
	bn := int(bufEnd - bufStart)

	s.buf = growBytes(s.buf, bn)
	MaterializeStream(obj, gen, bufStart, s.buf)
	s.sweep(s.buf)
	s.cuts = appendStreamCuts(s.cuts[:0], s.marks, bn, bufStart, s.p.MinBytes, s.p.MaxBytes)

	// emit every chunk starting in the window [wb0, wb1): cuts are
	// chunk starts, and each chunk runs to the next cut (≤ MaxBytes
	// away by the grid guarantee, within the lookahead margin)
	wb0 := int(wStart - bufStart)
	wb1 := int(wEnd - bufStart)
	k := 0
	for k < len(s.cuts) && int(s.cuts[k]) < wb0 {
		k++
	}
	var emitted int64
	for k < len(s.cuts) && int(s.cuts[k]) < wb1 {
		if k+1 >= len(s.cuts) {
			// the final cut sits within MaxBytes of the buffer end,
			// past wb1 (the lookahead is exactly MaxBytes) — a chunk
			// starting before wb1 always has a successor cut
			panic(fmt.Sprintf("cdc: no cut closing chunk at %d (stream %d/%d)", s.cuts[k], obj, gen))
		}
		start, end := int(s.cuts[k]), int(s.cuts[k+1])
		dst = s.emit(dst, s.buf[start:end])
		emitted += int64(end - start)
		k++
	}
	if emitted == 0 {
		panic(fmt.Sprintf("cdc: no chunk starts in window [%d,%d) (stream %d/%d)", wb0, wb1, obj, gen))
	}
	s.EmittedBytes += emitted
	return dst, emitted
}

func (s *Splitter) splitPlain(dst []chunk.Chunk, ids []chunk.ContentID) ([]chunk.Chunk, int64) {
	bn := len(ids) * int(slotBytes)
	s.buf = growBytes(s.buf, bn)
	s.mt.FillAll(s.buf, ids)
	s.sweep(s.buf)
	s.cuts = appendChainedCuts(s.cuts[:0], s.marks, bn, s.p.MinBytes, s.p.MaxBytes)

	start := 0
	for _, c := range s.cuts {
		dst = s.emit(dst, s.buf[start:int(c)])
		start = int(c)
	}
	s.EmittedBytes += int64(bn)
	return dst, int64(bn)
}

// emit appends one chunk for the given content bytes: ContentID is the
// 64-bit content hash, fingerprint the synthetic derivation from it
// (injective over IDs, so equal bytes ⇒ equal fingerprint and — with
// overwhelming probability — unequal bytes ⇒ unequal fingerprint).
func (s *Splitter) emit(dst []chunk.Chunk, content []byte) []chunk.Chunk {
	c := chunk.Chunk{Content: chunk.ContentID(bytesHash(content))}
	c.FP = s.fp.Fingerprint(&c)
	s.EmittedChunks++
	return append(dst, c)
}

// sweep runs the configured landmark detector over buf into s.marks.
func (s *Splitter) sweep(buf []byte) {
	need := (len(buf) + 63) / 64
	if cap(s.marks) < need {
		s.marks = make([]uint64, need)
	}
	s.marks = s.marks[:need]
	switch s.p.Algo {
	case Gear:
		gearMarks(buf, s.p.AvgBits, s.marks)
	case SeqCDC:
		seqMarks(buf, s.p.SeqLen, s.marks)
	default:
		panic("cdc: sweep with no algorithm")
	}
}

// bytesHash is the content hash behind derived ContentIDs: a
// mix64-chained word hash (the repository's murmur-finalizer family),
// length-seeded so a chunk that is a prefix of another cannot collide
// trivially.
func bytesHash(b []byte) uint64 {
	h := uint64(len(b))*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D
	for len(b) >= 8 {
		h = mix64(h ^ binary.LittleEndian.Uint64(b))
		b = b[8:]
	}
	if len(b) > 0 {
		var tail uint64
		for i, c := range b {
			tail |= uint64(c) << (8 * uint(i))
		}
		h = mix64(h ^ tail ^ 1<<63)
	}
	return mix64(h)
}

func growBytes(s []byte, n int) []byte {
	if cap(s) < n {
		return make([]byte, n)
	}
	return s[:n]
}
