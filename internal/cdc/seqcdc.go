package cdc

// SeqCDC-style sequence-based landmarks: instead of a rolling hash,
// a landmark is a monotone byte pattern — a run of SeqLen consecutive
// strictly-increasing steps (b[i] > b[i-1]). No multiplications, no
// table lookups; the state is a single run counter, which is why the
// SeqCDC/VectorCDC line of work vectorizes so well. The predicate is
// a pure function of the SeqLen+1 bytes ending at the position
// (plus one byte to its left to detect the run's start), so cutpoints
// are shift-invariant exactly like Gear's.

// seqMarks sweeps buf and sets bit i of marks for every position
// where the increasing run reaches *exactly* seqLen steps — a run
// longer than seqLen marks only its seqLen-th step, so one monotone
// region yields one candidate instead of a dense cluster. marks must
// hold at least (len(buf)+63)/64 words; every touched word is fully
// overwritten.
func seqMarks(buf []byte, seqLen int, marks []uint64) {
	n := len(buf)
	run := 0
	sl := seqLen
	base := 0
	w := 0
	prev := byte(0)
	if n > 0 {
		prev = buf[0]
	}
	// position 0 has no left neighbour: run stays 0
	for ; base+64 <= n; base, w = base+64, w+1 {
		b := buf[base : base+64 : base+64]
		var bits uint64
		for k := 0; k < 64; k += 8 {
			for j := k; j < k+8; j++ {
				c := b[j]
				if base+j > 0 && c > prev {
					run++
					if run == sl {
						bits |= 1 << uint(j)
					}
				} else {
					run = 0
				}
				prev = c
			}
		}
		marks[w] = bits
	}
	if base < n {
		var bits uint64
		for i := base; i < n; i++ {
			c := buf[i]
			if i > 0 && c > prev {
				run++
				if run == sl {
					bits |= 1 << uint(i-base)
				}
			} else {
				run = 0
			}
			prev = c
		}
		marks[w] = bits
	}
}

// seqMarkScalar is the reference predicate: position i is a landmark
// iff buf[i-seqLen..i] is strictly increasing and the run does not
// extend further left (exactly seqLen steps end at i).
func seqMarkScalar(buf []byte, i int, seqLen int) bool {
	if i < seqLen {
		return false
	}
	for j := i - seqLen + 1; j <= i; j++ {
		if buf[j] <= buf[j-1] {
			return false
		}
	}
	// run must start at i-seqLen: the step into it must not increase
	if i-seqLen > 0 && buf[i-seqLen] > buf[i-seqLen-1] {
		return false
	}
	return true
}
