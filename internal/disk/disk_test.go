package disk

import (
	"testing"
	"testing/quick"

	"github.com/pod-dedup/pod/internal/sim"
)

func params() Params { return DefaultParams(1 << 20) }

func TestNewZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(Params{})
}

func TestSequentialCheaperThanRandom(t *testing.T) {
	d := New(params())
	d.Access(0, Read, 0, 16) // establish head at 16
	seq := d.ServiceTime(16, 16)
	rnd := d.ServiceTime(500000, 16)
	if seq >= rnd {
		t.Fatalf("sequential (%v) must be cheaper than random (%v)", seq, rnd)
	}
	// sequential 64 KB at 100 MB/s ≈ 655 µs
	if seq < 500 || seq > 800 {
		t.Errorf("sequential 64KB transfer = %v, want ≈655µs", seq)
	}
	// random access must include seek + rotation (≳4 ms)
	if rnd < 4000 {
		t.Errorf("random access = %v, want ≥4ms", rnd)
	}
}

func TestSeekMonotoneInDistance(t *testing.T) {
	d := New(params())
	d.Access(0, Read, 0, 1) // head at 1
	near := d.ServiceTime(1000, 1)
	far := d.ServiceTime(900000, 1)
	if near >= far {
		t.Fatalf("near seek (%v) must cost less than far seek (%v)", near, far)
	}
}

func TestAccessQueueing(t *testing.T) {
	d := New(params())
	c1, _ := d.Access(0, Write, 100000, 1)
	c2, _ := d.Access(0, Write, 200000, 1)
	if c2 <= c1 {
		t.Fatal("second queued access must complete after the first")
	}
}

func TestAccessAfterDependency(t *testing.T) {
	d := New(params())
	done, _ := d.AccessAfter(0, 50000, Write, 0, 1)
	if done < 50000 {
		t.Fatalf("write must not begin before ready: done=%v", done)
	}
}

func TestZeroLengthAccess(t *testing.T) {
	d := New(params())
	if done, _ := d.Access(100, Read, 0, 0); done != 100 {
		t.Fatalf("zero-length access should complete immediately, got %v", done)
	}
	if d.Stats().Reads != 0 {
		t.Fatal("zero-length access must not count")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := New(params())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	d.Access(0, Read, 1<<20, 1)
}

func TestStatsAccounting(t *testing.T) {
	d := New(params())
	d.Access(0, Read, 0, 8)
	d.Access(0, Write, 8, 4) // sequential with prior access
	s := d.Stats()
	if s.Reads != 1 || s.Writes != 1 {
		t.Errorf("reads/writes = %d/%d", s.Reads, s.Writes)
	}
	if s.ReadBlocks != 8 || s.WriteBlocks != 4 {
		t.Errorf("blocks = %d/%d", s.ReadBlocks, s.WriteBlocks)
	}
	if s.SeqAccesses != 1 || s.RandAccesses != 1 {
		t.Errorf("seq/rand = %d/%d (first access is 'random', second sequential)", s.SeqAccesses, s.RandAccesses)
	}
}

func TestReset(t *testing.T) {
	d := New(params())
	d.Access(0, Read, 0, 8)
	d.Reset()
	s := d.Stats()
	if s.Reads != 0 || d.BusyUntil() != 0 {
		t.Fatal("reset failed")
	}
}

func TestFirstAccessChargesAverageSeek(t *testing.T) {
	d := New(params())
	svc := d.ServiceTime(0, 1)
	if svc < 4000 {
		t.Fatalf("cold first access should pay seek+rotation, got %v", svc)
	}
}

// Property: completions are monotone for monotone arrivals, service is
// always positive for non-empty I/Os, and the head always lands at the
// end of the last access.
func TestDiskProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		d := New(params())
		var tm sim.Time
		var last sim.Time
		for _, raw := range ops {
			start := uint64(raw) % (1<<20 - 64)
			n := uint64(raw%63) + 1
			tm = tm.Add(sim.Duration(raw % 1000))
			done, _ := d.Access(tm, Op(raw%2), start, n)
			if done < tm {
				return false
			}
			if done < last {
				return false
			}
			last = done
			if d.head != start+n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAccess(b *testing.B) {
	d := New(params())
	var tm sim.Time
	for i := 0; i < b.N; i++ {
		tm = tm.Add(10)
		d.Access(tm, Write, uint64(i*17)%(1<<20-8), 8)
	}
}
