// Package disk models a single HDD spindle: a seek-curve/rotation/
// transfer service-time model over an FCFS queue, with sequential-access
// detection via head-position tracking.
//
// The model is the standard first-order HDD abstraction used throughout
// the storage-systems literature (and sufficient for the effects POD's
// evaluation depends on): a sequential access costs only transfer time,
// while a random access additionally pays a square-root seek curve plus
// half-revolution average rotational latency. Response-time differences
// between deduplication schemes in this repository come from (a) how
// many disk I/Os each scheme issues, (b) how sequential those I/Os are,
// and (c) how much queueing delay the induced load creates — all three
// are captured here.
package disk

import (
	"fmt"
	"math"

	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/sim"
)

// Params describes the mechanical characteristics of a drive. The
// defaults approximate the WDC WD1600AAJS 7200-rpm SATA drives in the
// paper's testbed.
type Params struct {
	Blocks       uint64       // capacity in 4 KB blocks
	SeekBaseUS   sim.Duration // minimum non-zero seek (track-to-track), µs
	SeekFullUS   sim.Duration // additional full-stroke seek cost, µs
	RPM          int          // spindle speed
	TransferMBps float64      // sustained media transfer rate
	BlockBytes   int          // block size in bytes
}

// DefaultParams returns drive parameters approximating a 7200-rpm
// 160 GB SATA disk (≈0.5 ms track-to-track, ≈8.5 ms average seek,
// 4.17 ms average rotational latency, 100 MB/s transfer).
func DefaultParams(blocks uint64) Params {
	return Params{
		Blocks:       blocks,
		SeekBaseUS:   500,
		SeekFullUS:   12000, // base + full*sqrt(1) ≈ 12.5 ms full stroke
		RPM:          7200,
		TransferMBps: 100,
		BlockBytes:   4096,
	}
}

// Disk is one spindle. It is not safe for concurrent use; the replayer
// drives each simulation single-threaded (parallelism in this
// repository is across independent experiments).
type Disk struct {
	p         Params
	queue     *sim.FCFSQueue
	head      uint64 // block the head sits after, valid when headKnown
	headKnown bool

	// inj, when non-nil, is consulted on every access; idx is this
	// spindle's index in the array's schedule. The nil check is the
	// entire hot-path cost of the fault subsystem when disabled.
	inj *fault.Injector
	idx int

	reads, writes  int64
	readBlocks     int64
	writeBlocks    int64
	seqAccesses    int64
	randomAccesses int64
	faults         int64
}

// New returns an idle disk with the given parameters.
func New(p Params) *Disk {
	if p.Blocks == 0 {
		panic("disk: zero capacity")
	}
	if p.BlockBytes == 0 {
		p.BlockBytes = 4096
	}
	return &Disk{p: p, queue: sim.NewFCFSQueue()}
}

// Params returns the drive parameters.
func (d *Disk) Params() Params { return d.p }

// SetInjector attaches a fault injector; idx is this disk's index in
// the injector's schedule. A nil injector detaches.
func (d *Disk) SetInjector(in *fault.Injector, idx int) {
	d.inj = in
	d.idx = idx
}

// rotLatency is the average rotational delay for a non-sequential
// access: half a revolution.
func (d *Disk) rotLatency() sim.Duration {
	if d.p.RPM <= 0 {
		return 0
	}
	revUS := 60.0 * 1e6 / float64(d.p.RPM)
	return sim.Duration(revUS / 2)
}

// seekTime models the seek as base + full·√(distance/capacity); zero
// distance costs nothing.
func (d *Disk) seekTime(from, to uint64) sim.Duration {
	if from == to {
		return 0
	}
	var dist uint64
	if from > to {
		dist = from - to
	} else {
		dist = to - from
	}
	frac := float64(dist) / float64(d.p.Blocks)
	return d.p.SeekBaseUS + sim.Duration(float64(d.p.SeekFullUS)*math.Sqrt(frac))
}

// transferTime is the media transfer time for n blocks.
func (d *Disk) transferTime(n uint64) sim.Duration {
	bytes := float64(n) * float64(d.p.BlockBytes)
	return sim.Duration(bytes / (d.p.TransferMBps * 1e6) * 1e6)
}

// ServiceTime computes the raw service time of an access starting at
// block start for n blocks, given the current head position, without
// enqueueing it. Sequential accesses (head already at start) pay only
// transfer time.
func (d *Disk) ServiceTime(start, n uint64) sim.Duration {
	if d.headKnown && d.head == start {
		return d.transferTime(n)
	}
	var from uint64
	if d.headKnown {
		from = d.head
	}
	svc := d.seekTime(from, start) + d.rotLatency() + d.transferTime(n)
	if !d.headKnown {
		// first access after spin-up: charge an average seek
		svc = d.p.SeekBaseUS + d.p.SeekFullUS/3 + d.rotLatency() + d.transferTime(n)
	}
	return svc
}

// Op distinguishes reads from writes for accounting.
type Op int

// Operations.
const (
	Read Op = iota
	Write
)

// Access submits an I/O arriving at time t covering [start, start+n)
// and returns its completion time. It must be called in non-decreasing
// arrival order (FCFS).
//
// With a fault injector attached, the access may fail with a typed
// *fault.Error: a failed device errors immediately (no disk time), a
// transient or sector fault charges the full service time before
// erroring (the drive tried), and a slow-disk window inflates the
// service time without erroring.
func (d *Disk) Access(t sim.Time, op Op, start, n uint64) (sim.Time, error) {
	return d.AccessAfter(t, t, op, start, n)
}

// AccessAfter is Access with an additional readiness constraint: the
// I/O cannot begin service before ready (used for the write phase of a
// read-modify-write, which depends on the read phase).
func (d *Disk) AccessAfter(t, ready sim.Time, op Op, start, n uint64) (sim.Time, error) {
	if n == 0 {
		return sim.MaxTime(t, ready), nil
	}
	if start+n > d.p.Blocks {
		panic(fmt.Sprintf("disk: access out of range: [%d,%d) capacity %d", start, start+n, d.p.Blocks))
	}
	var ferr *fault.Error
	if d.inj != nil {
		ferr = d.inj.Check(d.idx, t, op == Write, start, n)
		if ferr != nil && ferr.Kind == fault.KindDiskFailed {
			// dead device: the command is rejected up front, no
			// mechanical work happens and the head state is void
			d.faults++
			return sim.MaxTime(t, ready), ferr
		}
	}
	svc := d.ServiceTime(start, n)
	if d.inj != nil {
		svc = d.inj.Inflate(d.idx, t, svc)
	}
	if d.headKnown && d.head == start {
		d.seqAccesses++
	} else {
		d.randomAccesses++
	}
	d.head = start + n
	d.headKnown = true
	switch op {
	case Read:
		d.reads++
		d.readBlocks += int64(n)
	case Write:
		d.writes++
		d.writeBlocks += int64(n)
	}
	done := d.queue.SubmitAfter(t, ready, svc)
	if ferr != nil {
		d.faults++
		return done, ferr
	}
	return done, nil
}

// BusyUntil reports when the disk next becomes idle.
func (d *Disk) BusyUntil() sim.Time { return d.queue.BusyUntil() }

// Stats is a snapshot of per-disk accounting.
type Stats struct {
	Reads, Writes             int64
	ReadBlocks, WriteBlocks   int64
	SeqAccesses, RandAccesses int64
	BusyTime, WaitTime        sim.Duration
	Faults                    int64 // accesses that failed with an injected fault
}

// Stats returns a snapshot of the disk's counters.
func (d *Disk) Stats() Stats {
	return Stats{
		Reads: d.reads, Writes: d.writes,
		ReadBlocks: d.readBlocks, WriteBlocks: d.writeBlocks,
		SeqAccesses: d.seqAccesses, RandAccesses: d.randomAccesses,
		BusyTime: d.queue.BusyTime(), WaitTime: d.queue.WaitTime(),
		Faults: d.faults,
	}
}

// Reset returns the disk to idle with an unknown head position. The
// injector attachment survives — Reset models power-cycling the drive,
// not replacing it.
func (d *Disk) Reset() {
	d.queue.Reset()
	d.head = 0
	d.headKnown = false
	d.reads, d.writes, d.readBlocks, d.writeBlocks = 0, 0, 0, 0
	d.seqAccesses, d.randomAccesses = 0, 0
	d.faults = 0
}
