package engine

import (
	"testing"
	"testing/quick"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func testBase(t testing.TB) *Base {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 16))
	}
	return NewBase(Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 1 << 20,
	})
}

func TestNewBaseValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("nil array", func() { NewBase(Config{MemoryBytes: 1}) })
	mustPanic("no memory", func() {
		disks := []*disk.Disk{disk.New(disk.DefaultParams(64)), disk.New(disk.DefaultParams(64)), disk.New(disk.DefaultParams(64))}
		NewBase(Config{Array: raid.New(raid.RAID5, disks, 16)})
	})
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.IndexFrac != 0.5 || c.Threshold != 3 || c.IDedupThreshold != 8 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Fingerprinter == nil || c.HashWorkers != 1 {
		t.Fatal("fingerprinter defaults wrong")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s := NewStore()
	s.Write(5, 100)
	if id, ok := s.Read(5); !ok || id != 100 {
		t.Fatal("read back failed")
	}
	s.Free(5)
	if _, ok := s.Read(5); ok {
		t.Fatal("freed block still readable")
	}
	if s.Len() != 0 {
		t.Fatal("len wrong")
	}
}

func TestStoreMustMatchPanics(t *testing.T) {
	s := NewStore()
	s.Write(1, 10)
	s.MustMatch(1, 10) // fine
	for _, c := range []struct {
		pba alloc.PBA
		id  chunk.ContentID
	}{{1, 11}, {2, 10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			s.MustMatch(c.pba, c.id)
		}()
	}
}

func TestWriteFreshContiguous(t *testing.T) {
	b := testBase(t)
	req := &trace.Request{Op: trace.Write, LBA: 10, N: 4, Content: []chunk.ContentID{1, 2, 3, 4}}
	done, pbas, _ := b.WriteFresh(0, req, []int{0, 1, 2, 3}, chunk.Split(req.Content, chunk.SyntheticFingerprinter{}, false))
	if done <= 0 || len(pbas) != 4 {
		t.Fatalf("done=%v pbas=%v", done, pbas)
	}
	for i := 1; i < 4; i++ {
		if pbas[i] != pbas[i-1]+1 {
			t.Fatal("fresh write must allocate contiguously")
		}
	}
	for i := 0; i < 4; i++ {
		if pba, ok := b.Map.Lookup(10 + uint64(i)); !ok || pba != pbas[i] {
			t.Fatal("mapping missing")
		}
		if id, ok := b.Store.Read(pbas[i]); !ok || id != chunk.ContentID(i+1) {
			t.Fatal("content missing")
		}
	}
	if b.St.ChunksWritten != 4 {
		t.Fatalf("chunks written = %d", b.St.ChunksWritten)
	}
}

func TestWriteFreshEmptyPositions(t *testing.T) {
	b := testBase(t)
	req := &trace.Request{Op: trace.Write, LBA: 0, N: 1, Content: []chunk.ContentID{1}}
	done, pbas, _ := b.WriteFresh(100, req, nil, nil)
	if done != 100 || pbas != nil {
		t.Fatal("empty write must be a no-op")
	}
}

func TestTryDedupeValidation(t *testing.T) {
	b := testBase(t)
	req := &trace.Request{Op: trace.Write, LBA: 0, N: 1, Content: []chunk.ContentID{42}}
	_, pbas, _ := b.WriteFresh(0, req, []int{0}, chunk.Split(req.Content, chunk.SyntheticFingerprinter{}, false))

	// valid dedup
	if !b.TryDedupe(100, pbas[0], 42) {
		t.Fatal("matching dedup must succeed")
	}
	if b.Map.RefCount(pbas[0]) != 2 {
		t.Fatal("refcount wrong")
	}
	// content mismatch: must refuse
	if b.TryDedupe(200, pbas[0], 43) {
		t.Fatal("mismatched dedup must fail")
	}
	// unallocated block: must refuse
	if b.TryDedupe(300, 9999, 42) {
		t.Fatal("dedup to unallocated block must fail")
	}
	if b.St.ChunksDeduped != 1 {
		t.Fatalf("deduped = %d", b.St.ChunksDeduped)
	}
}

func TestFreeBlocksPurgesEverywhere(t *testing.T) {
	b := testBase(t)
	var forgotten []alloc.PBA
	b.OnFree = func(p alloc.PBA) { forgotten = append(forgotten, p) }

	req := &trace.Request{Op: trace.Write, LBA: 0, N: 1, Content: []chunk.ContentID{1}}
	chs := chunk.Split(req.Content, chunk.SyntheticFingerprinter{}, false)
	_, pbas, _ := b.WriteFresh(0, req, []int{0}, chs)
	b.IC.ReadInsert(pbas[0])
	b.InsertIndex(chs[0].FP, pbas[0])

	freed := b.Map.Unset(0)
	b.FreeBlocks(freed)
	if len(forgotten) != 1 || forgotten[0] != pbas[0] {
		t.Fatalf("OnFree hook got %v", forgotten)
	}
	if b.IC.ReadHit(pbas[0]) {
		t.Fatal("freed block still in read cache")
	}
	if _, ok := b.IC.IndexLookup(chs[0].FP); ok {
		t.Fatal("freed block still indexed")
	}
	if b.Alloc.Used() != 0 {
		t.Fatal("allocator still holds the block")
	}
}

func TestReadMappedCoalescing(t *testing.T) {
	b := testBase(t)
	// write 8 contiguous chunks
	ids := make([]chunk.ContentID, 8)
	pos := make([]int, 8)
	for i := range ids {
		ids[i] = chunk.ContentID(i + 1)
		pos[i] = i
	}
	req := &trace.Request{Op: trace.Write, LBA: 0, N: 8, Content: ids}
	b.WriteFresh(0, req, pos, chunk.Split(ids, chunk.SyntheticFingerprinter{}, false))

	read := &trace.Request{Time: sim.Time(sim.Second), Op: trace.Read, LBA: 0, N: 8}
	rt, _ := b.ReadMapped(read, false)
	if rt <= 0 {
		t.Fatal("read must take time")
	}
	if b.St.ReadIOs != 1 {
		t.Fatalf("contiguous read issued %d IOs, want 1", b.St.ReadIOs)
	}
	if b.St.ReadAmplifiedReqs != 0 {
		t.Fatal("contiguous read must not count as amplified")
	}

	// second read: fully cached
	read2 := &trace.Request{Time: sim.Time(2 * sim.Second), Op: trace.Read, LBA: 0, N: 8}
	rt2, _ := b.ReadMapped(read2, false)
	if rt2 != MemHitUS {
		t.Fatalf("cached read rt = %v, want %d", rt2, MemHitUS)
	}
	if b.St.CacheHits != 8 {
		t.Fatalf("cache hits = %d", b.St.CacheHits)
	}
}

func TestReadMappedFragmentationCounted(t *testing.T) {
	b := testBase(t)
	// write two separate extents, then map alternating LBAs to them
	mk := func(lba uint64, id chunk.ContentID) alloc.PBA {
		req := &trace.Request{Op: trace.Write, LBA: lba, N: 1, Content: []chunk.ContentID{id}}
		_, pbas, _ := b.WriteFresh(0, req, []int{0}, chunk.Split(req.Content, chunk.SyntheticFingerprinter{}, false))
		return pbas[0]
	}
	mk(0, 1)
	mk(1000, 2) // separated allocation padding
	mk(1, 3)
	// LBAs 0 and 1 now map to non-adjacent physical blocks
	read := &trace.Request{Time: sim.Time(sim.Second), Op: trace.Read, LBA: 0, N: 2}
	b.ReadMapped(read, false)
	if b.St.ReadIOs != 2 {
		t.Fatalf("fragmented read issued %d IOs, want 2", b.St.ReadIOs)
	}
	if b.St.ReadAmplifiedReqs != 1 {
		t.Fatal("fragmented read must count as amplified")
	}
}

func TestIndexZoneIO(t *testing.T) {
	b := testBase(t)
	done, _ := b.IndexZoneIO(0, 3)
	if done <= 0 {
		t.Fatal("index lookups must take time")
	}
	if b.St.IndexDiskIOs != 3 {
		t.Fatalf("index IOs = %d", b.St.IndexDiskIOs)
	}
	if z, _ := b.IndexZoneIO(100, 0); z != 100 {
		t.Fatal("zero lookups must be free")
	}
}

func TestStatsDerived(t *testing.T) {
	s := NewStats()
	if s.TotalRT() != 0 {
		t.Fatal("empty TotalRT should be 0")
	}
	s.WriteRT.Add(1000)
	s.ReadRT.Add(3000)
	if s.TotalRT() != 2000 {
		t.Fatalf("TotalRT = %f", s.TotalRT())
	}
	s.Writes = 4
	s.WritesRemoved = 1
	if s.WriteRemovalPct() != 25 {
		t.Fatal("removal pct wrong")
	}
	s.ChunksDeduped, s.ChunksWritten = 1, 3
	if s.DedupRatioPct() != 25 {
		t.Fatal("dedup pct wrong")
	}
	s.CacheHits, s.CacheMisses = 1, 1
	if s.CacheHitPct() != 50 {
		t.Fatal("cache pct wrong")
	}
	s.Reset()
	if s.Writes != 0 || s.WriteRT.N() != 0 {
		t.Fatal("reset failed")
	}
}

// Property: WriteFresh + Map always leaves every written LBA resolvable
// to its content, for arbitrary position subsets.
func TestWriteFreshProperty(t *testing.T) {
	f := func(lbaRaw uint16, mask uint8) bool {
		b := testBase(t)
		n := 8
		ids := make([]chunk.ContentID, n)
		for i := range ids {
			ids[i] = chunk.ContentID(1000 + i)
		}
		var positions []int
		for i := 0; i < n; i++ {
			if mask&(1<<i) != 0 {
				positions = append(positions, i)
			}
		}
		if len(positions) == 0 {
			return true
		}
		req := &trace.Request{Op: trace.Write, LBA: uint64(lbaRaw), N: n, Content: ids}
		_, pbas, _ := b.WriteFresh(0, req, positions, chunk.Split(ids, chunk.SyntheticFingerprinter{}, false))
		for k, pos := range positions {
			pba, ok := b.Map.Lookup(uint64(lbaRaw) + uint64(pos))
			if !ok || pba != pbas[k] {
				return false
			}
			id, ok := b.Store.Read(pba)
			if !ok || id != ids[pos] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVerifyWriteCatchesCorruption(t *testing.T) {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 16))
	}
	b := NewBase(Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 1 << 20,
		Verify:      true,
	})
	req := &trace.Request{Op: trace.Write, LBA: 0, N: 1, Content: []chunk.ContentID{7}}
	chs := chunk.Split(req.Content, chunk.SyntheticFingerprinter{}, false)
	b.WriteFresh(0, req, []int{0}, chs)
	b.VerifyWrite(req, chs) // consistent: fine

	// sabotage the mapping and expect the verifier to catch it
	pba, _ := b.Map.Lookup(0)
	b.Store.Write(pba, 999)
	defer func() {
		if recover() == nil {
			t.Fatal("VerifyWrite must catch content divergence")
		}
	}()
	b.VerifyWrite(req, chs)
}

func TestVerifyWriteCatchesMissingMapping(t *testing.T) {
	b := testBase(t)
	b.Cfg.Verify = true
	req := &trace.Request{Op: trace.Write, LBA: 5, N: 1, Content: []chunk.ContentID{7}}
	defer func() {
		if recover() == nil {
			t.Fatal("VerifyWrite must catch unmapped writes")
		}
	}()
	b.VerifyWrite(req, chunk.Split(req.Content, chunk.SyntheticFingerprinter{}, false)) // never written
}

func TestRecoverWithoutNVRAM(t *testing.T) {
	b := testBase(t)
	if _, err := b.Recover(); err == nil {
		t.Fatal("recovery without NVRAM must fail")
	}
	if b.NVRAM() != nil {
		t.Fatal("testBase should have no NVRAM device")
	}
}

func TestApplyRepartitionReadSwapInsChargeIO(t *testing.T) {
	b := testBase(t)
	rep := icacheRepartition(true, []alloc.PBA{10, 11, 12, 500})
	b.ApplyRepartition(1000, rep)
	if b.St.SwapInIOs == 0 {
		t.Fatal("read swap-ins must charge background I/O")
	}
	// non-changed repartitions are free
	before := b.St.SwapInIOs
	b.ApplyRepartition(2000, icacheRepartition(false, nil))
	if b.St.SwapInIOs != before {
		t.Fatal("no-op repartition charged I/O")
	}
}
