package engine

import (
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func cleanerBase(t testing.TB) *Base {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 12))
	}
	return NewBase(Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 1 << 20,
		Cleaner: CleanerParams{
			Enabled:     true,
			TriggerFree: 1 << 14, // larger than the region: always eligible when fragmented
			MaxGap:      64,
			Interval:    sim.Millisecond,
		},
	})
}

// writeOne appends one single-chunk logical write.
func writeOne(b *Base, at sim.Time, lba uint64, id chunk.ContentID) {
	req := &trace.Request{Time: at, Op: trace.Write, LBA: lba, N: 1, Content: []chunk.ContentID{id}}
	b.WriteFresh(at, req, []int{0}, chunk.Split(req.Content, chunk.SyntheticFingerprinter{}, false))
}

// fragment writes a dense region then frees alternating blocks.
func fragment(b *Base, t testing.TB) sim.Time {
	var tm sim.Time
	n := uint64(2000)
	for i := uint64(0); i < n; i++ {
		tm = tm.Add(20 * sim.Millisecond)
		writeOne(b, tm, i, chunk.ContentID(1000+i))
	}
	// punch holes: overwrite every other LBA (its old block frees, the
	// replacement appends at the frontier)
	for i := uint64(0); i < n; i += 2 {
		tm = tm.Add(20 * sim.Millisecond)
		writeOne(b, tm, i, chunk.ContentID(5000+i))
	}
	return tm
}

func TestCleanerCoalescesHoles(t *testing.T) {
	b := cleanerBase(t)
	tm := fragment(b, t)
	before := b.Alloc.NumFreeExtents()
	if before < 100 {
		t.Fatalf("fragmentation setup too weak: %d free extents", before)
	}
	// idle time: let the cleaner run many passes
	for pass := 0; pass < 2000; pass++ {
		tm = tm.Add(sim.Second)
		b.Tick(tm)
	}
	st := b.CleanerStats()
	if st.Passes == 0 || st.BlocksMoved == 0 {
		t.Fatalf("cleaner idle: %+v", st)
	}
	after := b.Alloc.NumFreeExtents()
	if after >= before {
		t.Fatalf("cleaner did not reduce fragmentation: %d -> %d extents", before, after)
	}
	if err := b.Alloc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCleanerPreservesLogicalContents(t *testing.T) {
	b := cleanerBase(t)
	model := map[uint64]chunk.ContentID{}
	var tm sim.Time
	// dense region, then alternating overwrites: single-block holes
	// separated by single live blocks — worst-case fragmentation
	for i := uint64(0); i < 1000; i++ {
		tm = tm.Add(20 * sim.Millisecond)
		id := chunk.ContentID(1000 + i)
		writeOne(b, tm, i, id)
		model[i] = id
	}
	for i := uint64(0); i < 1000; i += 2 {
		tm = tm.Add(20 * sim.Millisecond)
		id := chunk.ContentID(90000 + i)
		writeOne(b, tm, i, id)
		model[i] = id
	}
	for pass := 0; pass < 1000; pass++ {
		tm = tm.Add(sim.Second)
		b.Tick(tm)
	}
	if b.CleanerStats().BlocksMoved == 0 {
		t.Fatal("cleaner did not run on a maximally fragmented region")
	}
	for lba, want := range model {
		got, ok := b.ReadContent(lba)
		if !ok || got != uint64(want) {
			t.Fatalf("lba %d after cleaning: %d,%v want %d", lba, got, ok, want)
		}
	}
}

func TestCleanerPreservesSharedMappings(t *testing.T) {
	b := cleanerBase(t)
	var tm sim.Time
	// one physical block referenced by two LBAs, surrounded by holes
	writeOne(b, tm, 0, 42)
	pba, _ := b.Map.Lookup(0)
	b.FreeBlocks(b.Map.Set(100, pba, true)) // dedup reference
	// neighbours (disjoint LBAs) that will be freed to create holes
	// around the shared block
	for i := uint64(200); i < 400; i++ {
		tm = tm.Add(20 * sim.Millisecond)
		writeOne(b, tm, i, chunk.ContentID(100+i))
	}
	for i := uint64(200); i < 400; i += 2 {
		tm = tm.Add(20 * sim.Millisecond)
		writeOne(b, tm, i, chunk.ContentID(9000+i))
	}
	for pass := 0; pass < 1500; pass++ {
		tm = tm.Add(sim.Second)
		b.Tick(tm)
	}
	// both referers still resolve to content 42, still sharing one block
	p0, _, ok0 := b.Map.LookupFull(0)
	p1, sh1, ok1 := b.Map.LookupFull(100)
	if !ok0 || !ok1 || p0 != p1 || !sh1 {
		t.Fatalf("shared mapping broken: %d/%d ok=%v/%v shared=%v", p0, p1, ok0, ok1, sh1)
	}
	if got, ok := b.ReadContent(100); !ok || got != 42 {
		t.Fatalf("shared content lost: %d,%v", got, ok)
	}
}

func TestCleanerDisabledByDefault(t *testing.T) {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 12))
	}
	b := NewBase(Config{Array: raid.New(raid.RAID5, disks, 16), MemoryBytes: 1 << 20})
	b.Tick(sim.Time(10 * sim.Second))
	if b.CleanerStats().Passes != 0 {
		t.Fatal("cleaner ran without being enabled")
	}
}
