// Package engine defines the common machinery shared by every storage
// engine in this repository: the Engine interface the replayer drives,
// per-engine statistics, the physical content model used to verify
// read-your-writes, and the Base substrate (array + allocator + map
// table + partitioned cache) that the deduplicating engines build on.
//
// All engines are log-structured above the RAID array: a write
// request's non-deduplicated chunks are placed in freshly allocated
// contiguous physical extents, and a physical block whose last
// reference disappears returns to the allocator. The Native baseline
// is the exception — it writes in place at identity addresses, exactly
// like the plain HDD system the paper normalizes against.
package engine

import (
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
)

// Engine is a storage scheme under evaluation. The replayer calls
// Write/Read in arrival-time order; each returns the simulated user
// response time of the request plus a typed error when the storage
// stack could not absorb an injected fault (fault.IsTransient
// distinguishes retryable failures; the duration is the virtual time
// spent before failing, which retry accounting must still charge).
type Engine interface {
	// Name identifies the scheme ("Native", "Full-Dedupe", "iDedup",
	// "Select-Dedupe", "POD").
	Name() string
	// Write services a write request arriving at req.Time. A failed
	// write is not applied: no mapping or content change is visible.
	Write(req *trace.Request) (sim.Duration, error)
	// Read services a read request arriving at req.Time.
	Read(req *trace.Request) (sim.Duration, error)
	// Stats exposes the engine's accumulated metrics.
	Stats() *Stats
	// Metrics exposes the engine's metrics registry: per-phase latency
	// histograms plus the live gauges of its substrates (iCache
	// partition, map table, RAID accounting). One registry per engine;
	// the sharded server merges per-shard snapshots.
	Metrics() *metrics.Registry
	// UsedBlocks reports the physical capacity currently occupied, in
	// 4 KB blocks (Figure 10's metric).
	UsedBlocks() uint64
	// ReadContent returns the content identity stored at lba, for
	// consistency verification. ok is false for never-written blocks.
	ReadContent(lba uint64) (uint64, bool)
}

// Stats accumulates per-engine metrics over a replay.
type Stats struct {
	ReadRT  *stats.Histogram // per-request read response times, µs
	WriteRT *stats.Histogram // per-request write response times, µs

	Reads, Writes int64

	// write-path deduplication accounting
	WritesRemoved    int64 // write requests fully eliminated (no data I/O)
	ChunksWritten    int64 // chunks physically written
	ChunksDeduped    int64 // chunks mapped without writing
	Cat1, Cat2, Cat3 int64 // Select-Dedupe request categories (§III-B)

	IndexDiskIOs int64 // on-disk index lookups (Full-Dedupe's bottleneck)

	// cross-shard deduplication (global fingerprint tier)
	RemoteDeduped int64 // chunks absorbed against another shard's canonical copy
	RemoteReads   int64 // read blocks fetched from a peer shard's canonical

	// read path
	CacheHits, CacheMisses int64 // read-cache block hits/misses
	ReadIOs                int64 // disk read operations issued for user reads
	ReadAmplifiedReqs      int64 // read requests needing more I/Os than a contiguous layout would

	// background
	SwapInIOs int64 // iCache swap-in disk reads

	// fault outcomes (requests that returned an error to the caller;
	// successful in-array recoveries are counted by the RAID layer)
	WriteErrors, ReadErrors int64

	NVRAMPeakBytes int64 // Map-table NVRAM high-water mark (§IV-D2)
}

// NewStats returns zeroed statistics.
func NewStats() *Stats {
	return &Stats{ReadRT: stats.NewHistogram(), WriteRT: stats.NewHistogram()}
}

// Reset zeroes all counters and histograms in place (the replayer calls
// it at the end of the warm-up window so measurements cover only the
// evaluation portion of a trace, as §IV-A warms the cache with the
// first 14 days and measures day 15).
func (s *Stats) Reset() {
	*s = Stats{ReadRT: stats.NewHistogram(), WriteRT: stats.NewHistogram()}
}

// Merge folds another engine's counters into s: scalars add, response
// time histograms merge. The sharded serving layer uses it to
// aggregate per-shard statistics into one report.
func (s *Stats) Merge(o *Stats) { stats.MergeStructs(s, o) }

// TotalRT reports the mean response time across reads and writes, µs.
func (s *Stats) TotalRT() float64 {
	n := s.ReadRT.N() + s.WriteRT.N()
	if n == 0 {
		return 0
	}
	return float64(s.ReadRT.Sum()+s.WriteRT.Sum()) / float64(n)
}

// WriteRemovalPct reports the percentage of write requests eliminated
// (Figure 11's metric).
func (s *Stats) WriteRemovalPct() float64 {
	return stats.Ratio(s.WritesRemoved, s.Writes)
}

// DedupRatioPct reports the percentage of write chunks deduplicated.
func (s *Stats) DedupRatioPct() float64 {
	return stats.Ratio(s.ChunksDeduped, s.ChunksDeduped+s.ChunksWritten)
}

// CacheHitPct reports the read-cache hit ratio.
func (s *Stats) CacheHitPct() float64 {
	return stats.Ratio(s.CacheHits, s.CacheHits+s.CacheMisses)
}
