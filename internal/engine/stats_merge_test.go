package engine

import (
	"reflect"
	"testing"
)

func TestStatsMergeAggregatesShards(t *testing.T) {
	a, b := NewStats(), NewStats()
	a.Writes, b.Writes = 10, 5
	a.ChunksDeduped, b.ChunksDeduped = 7, 3
	a.CacheHits, b.CacheHits = 2, 8
	a.NVRAMPeakBytes, b.NVRAMPeakBytes = 100, 250
	a.WriteRT.Add(1000)
	b.WriteRT.Add(3000)
	b.ReadRT.Add(500)

	a.Merge(b)

	if a.Writes != 15 || a.ChunksDeduped != 10 || a.CacheHits != 10 {
		t.Fatalf("scalar merge wrong: %+v", a)
	}
	// NVRAMPeakBytes is a high-water mark but sums across shards: each
	// shard owns an independent journal device, so aggregate peak
	// footprint is the sum of the shard peaks.
	if a.NVRAMPeakBytes != 350 {
		t.Fatalf("NVRAMPeakBytes = %d, want 350", a.NVRAMPeakBytes)
	}
	if a.WriteRT.N() != 2 || a.WriteRT.Sum() != 4000 || a.ReadRT.N() != 1 {
		t.Fatalf("histogram merge wrong: %+v", a)
	}
}

func TestStatsMergeIntoZeroIsIdentity(t *testing.T) {
	src := NewStats()
	src.Reads, src.Writes = 4, 9
	src.WritesRemoved = 3
	src.ReadRT.Add(123)
	src.WriteRT.Add(456)

	dst := NewStats()
	dst.Merge(src)
	if !reflect.DeepEqual(dst, src) {
		t.Fatalf("zero+src != src:\n dst=%+v\n src=%+v", dst, src)
	}
}
