package engine

import (
	"fmt"
	"sync"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
)

// Store models the contents of the physical block space: which content
// identity each physical block holds, and whether the block is live
// (allocated). It is the ground truth that consistency tests verify
// engines against — the latency simulator decides *when* an I/O
// completes, the Store decides *what* it returns.
//
// Freeing a block marks it dead without erasing the content, matching
// physical disks: the bits stay on the platters until overwritten.
// That distinction matters twice — a dedup decision must never
// reference a dead block (the allocator may hand it out at any moment),
// while crash recovery may legitimately re-admit a block whose free was
// only in DRAM when the power failed.
//
// Cells live in lazily-allocated fixed-size pages indexed directly by
// PBA rather than a hash map: the write path touches the Store once per
// chunk (TryDedupe reads, WriteFresh writes), and at trace scale the
// map's hashing and growth rehashes dominated the simulator's profile.
// Pages are arenas drawn from a process-wide pool: an experiment run
// constructs hundreds of engines back to back, and recycling whole
// pages at engine teardown (Release) keeps the content model from
// being the run's largest garbage producer.
type Store struct {
	pages []*cellPage
}

// storePageBits sizes one page at 2^16 cells (1 MiB of cells), small
// enough that sparse address use stays cheap and large enough that the
// page directory stays tiny.
const storePageBits = 16
const storePageSize = 1 << storePageBits

type cellPage [storePageSize]cell

type cell struct {
	id    chunk.ContentID
	state uint8 // cellEmpty, cellDead, cellLive
}

const (
	cellEmpty uint8 = iota // never written
	cellDead               // freed; residual content remains
	cellLive               // allocated and holding id
)

// pagePool recycles content-model pages across engine lifetimes. Pages
// are zeroed when returned, so Get always yields an all-cellEmpty page.
var pagePool = sync.Pool{New: func() any { return new(cellPage) }}

// NewStore returns an empty physical content model.
func NewStore() *Store { return &Store{} }

// page returns the page holding pba, allocating it when grow is set.
func (s *Store) page(pba alloc.PBA, grow bool) *cellPage {
	pg := int(pba >> storePageBits)
	if pg >= len(s.pages) {
		if !grow {
			return nil
		}
		pages := make([]*cellPage, pg+1)
		copy(pages, s.pages)
		s.pages = pages
	}
	if s.pages[pg] == nil {
		if !grow {
			return nil
		}
		s.pages[pg] = pagePool.Get().(*cellPage)
	}
	return s.pages[pg]
}

// Release returns every page to the process-wide pool and empties the
// store. The replay harness calls it at engine teardown (after the
// result is extracted); the store must not be used afterwards except by
// constructing new contents from scratch.
func (s *Store) Release() {
	for i, p := range s.pages {
		if p != nil {
			clear(p[:])
			pagePool.Put(p)
			s.pages[i] = nil
		}
	}
	s.pages = s.pages[:0]
}

// Write records that pba now holds id and is live.
func (s *Store) Write(pba alloc.PBA, id chunk.ContentID) {
	s.page(pba, true)[pba&(storePageSize-1)] = cell{id: id, state: cellLive}
}

// Read returns the content at pba; ok only for live blocks.
func (s *Store) Read(pba alloc.PBA) (chunk.ContentID, bool) {
	p := s.page(pba, false)
	if p == nil {
		return 0, false
	}
	c := p[pba&(storePageSize-1)]
	if c.state != cellLive {
		return 0, false
	}
	return c.id, true
}

// Residual returns the content remaining at pba even if the block is
// dead (what a disk forensics pass would see).
func (s *Store) Residual(pba alloc.PBA) (chunk.ContentID, bool) {
	p := s.page(pba, false)
	if p == nil {
		return 0, false
	}
	c := p[pba&(storePageSize-1)]
	return c.id, c.state != cellEmpty
}

// Free marks pba dead; the residual content remains until overwritten.
func (s *Store) Free(pba alloc.PBA) {
	p := s.page(pba, false)
	if p == nil {
		return
	}
	if c := &p[pba&(storePageSize-1)]; c.state == cellLive {
		c.state = cellDead
	}
}

// Len reports the number of live physical blocks.
func (s *Store) Len() int {
	n := 0
	for _, p := range s.pages {
		if p == nil {
			continue
		}
		for i := range p {
			if p[i].state == cellLive {
				n++
			}
		}
	}
	return n
}

// Retain reconciles liveness with the recovered Map table: blocks in
// keep become live again (their frees never became durable), everything
// else is dead. It panics if a kept block holds no residual content —
// the data write always precedes the journal record, so that would be
// an ordering bug.
func (s *Store) Retain(keep map[alloc.PBA]bool) {
	for pg, p := range s.pages {
		if p == nil {
			continue
		}
		base := alloc.PBA(pg) << storePageBits
		for i := range p {
			c := &p[i]
			if c.state == cellEmpty {
				continue
			}
			if keep[base+alloc.PBA(i)] {
				c.state = cellLive
			} else {
				c.state = cellDead
			}
		}
	}
	for pba := range keep {
		if _, ok := s.Residual(pba); !ok {
			panic(fmt.Sprintf("store: recovered mapping references block %d with no content", pba))
		}
	}
}

// MustMatch panics unless pba is live and holds id — used by write
// verification to catch dedup or mapping corruption at the request that
// caused it.
func (s *Store) MustMatch(pba alloc.PBA, id chunk.ContentID) {
	got, ok := s.Read(pba)
	if !ok {
		panic(fmt.Sprintf("store: reference to dead or unallocated block %d", pba))
	}
	if got != id {
		panic(fmt.Sprintf("store: corruption: block %d holds content %d, expected %d", pba, got, id))
	}
}
