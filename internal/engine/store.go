package engine

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
)

// Store models the contents of the physical block space: which content
// identity each physical block holds, and whether the block is live
// (allocated). It is the ground truth that consistency tests verify
// engines against — the latency simulator decides *when* an I/O
// completes, the Store decides *what* it returns.
//
// Freeing a block marks it dead without erasing the content, matching
// physical disks: the bits stay on the platters until overwritten.
// That distinction matters twice — a dedup decision must never
// reference a dead block (the allocator may hand it out at any moment),
// while crash recovery may legitimately re-admit a block whose free was
// only in DRAM when the power failed.
type Store struct {
	m map[alloc.PBA]cell
}

type cell struct {
	id   chunk.ContentID
	live bool
}

// NewStore returns an empty physical content model.
func NewStore() *Store {
	return &Store{m: make(map[alloc.PBA]cell)}
}

// Write records that pba now holds id and is live.
func (s *Store) Write(pba alloc.PBA, id chunk.ContentID) { s.m[pba] = cell{id: id, live: true} }

// Read returns the content at pba; ok only for live blocks.
func (s *Store) Read(pba alloc.PBA) (chunk.ContentID, bool) {
	c, ok := s.m[pba]
	if !ok || !c.live {
		return 0, false
	}
	return c.id, true
}

// Residual returns the content remaining at pba even if the block is
// dead (what a disk forensics pass would see).
func (s *Store) Residual(pba alloc.PBA) (chunk.ContentID, bool) {
	c, ok := s.m[pba]
	return c.id, ok
}

// Free marks pba dead; the residual content remains until overwritten.
func (s *Store) Free(pba alloc.PBA) {
	if c, ok := s.m[pba]; ok {
		c.live = false
		s.m[pba] = c
	}
}

// Len reports the number of live physical blocks.
func (s *Store) Len() int {
	n := 0
	for _, c := range s.m {
		if c.live {
			n++
		}
	}
	return n
}

// Retain reconciles liveness with the recovered Map table: blocks in
// keep become live again (their frees never became durable), everything
// else is dead. It panics if a kept block holds no residual content —
// the data write always precedes the journal record, so that would be
// an ordering bug.
func (s *Store) Retain(keep map[alloc.PBA]bool) {
	for pba, c := range s.m {
		if keep[pba] {
			if !c.live {
				c.live = true
				s.m[pba] = c
			}
			continue
		}
		if c.live {
			c.live = false
			s.m[pba] = c
		}
	}
	for pba := range keep {
		if _, ok := s.m[pba]; !ok {
			panic(fmt.Sprintf("store: recovered mapping references block %d with no content", pba))
		}
	}
}

// MustMatch panics unless pba is live and holds id — used by write
// verification to catch dedup or mapping corruption at the request that
// caused it.
func (s *Store) MustMatch(pba alloc.PBA, id chunk.ContentID) {
	got, ok := s.Read(pba)
	if !ok {
		panic(fmt.Sprintf("store: reference to dead or unallocated block %d", pba))
	}
	if got != id {
		panic(fmt.Sprintf("store: corruption: block %d holds content %d, expected %d", pba, got, id))
	}
}
