package engine

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/icache"
)

// icacheRepartition builds a Repartition value for tests.
func icacheRepartition(changed bool, swapIns []alloc.PBA) icache.Repartition {
	return icache.Repartition{Changed: changed, ReadSwapIns: swapIns}
}
