package engine

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/sim"
)

// The segment cleaner. Log-structured allocation (WriteFresh appends to
// the largest free extent) leaves reclaimed holes scattered behind the
// frontier; under sustained overwrite churn the frontier eventually
// exhausts and allocation quality degrades. The cleaner runs in idle
// periods, relocating the short runs of live blocks that separate
// neighbouring free holes to the frontier, so the holes coalesce into
// large extents again — the standard LFS remedy (Rosenblum &
// Ousterhout), here in its simplest form.
//
// Relocation preserves every property the engines rely on: all LBAs
// referencing a moved block are remapped (shared flags preserved), the
// caches and index entries naming the old block are purged, and the
// data motion is charged to the disks as background I/O.

// CleanerParams tunes the cleaner; zero values disable it.
type CleanerParams struct {
	Enabled bool
	// TriggerFree runs a pass when the largest free extent drops below
	// this many blocks (default: 1/64 of the data region).
	TriggerFree uint64
	// MaxGap bounds the live run the cleaner will relocate in one step
	// (default 512 blocks).
	MaxGap uint64
	// Interval is the minimum virtual time between passes (default 2 s).
	Interval sim.Duration
}

func (p CleanerParams) withDefaults(dataBlocks uint64) CleanerParams {
	if p.TriggerFree == 0 {
		p.TriggerFree = dataBlocks / 64
	}
	if p.MaxGap == 0 {
		p.MaxGap = 512
	}
	if p.Interval == 0 {
		p.Interval = 2 * sim.Second
	}
	return p
}

// cleanerState is the Base-side bookkeeping.
type cleanerState struct {
	p         CleanerParams
	nextPass  sim.Time
	passes    int64
	moved     int64
	reclaimed int64
}

// CleanerStats reports the cleaner's lifetime work: passes run, live
// blocks relocated, and physical blocks returned to the allocator by
// those relocations.
type CleanerStats struct {
	Passes, BlocksMoved, Reclaimed int64
}

// CleanerStats returns the cleaner's counters.
func (b *Base) CleanerStats() CleanerStats {
	return CleanerStats{
		Passes:      b.cleaner.passes,
		BlocksMoved: b.cleaner.moved,
		Reclaimed:   b.cleaner.reclaimed,
	}
}

// maybeClean runs one cleaning step if fragmentation warrants it and
// the array is idle. Called from Tick; reports whether a pass ran so
// the background scanner can yield the idle window to it.
func (b *Base) maybeClean(now sim.Time) bool {
	c := &b.cleaner
	if !c.p.Enabled || now < c.nextPass {
		return false
	}
	if b.Alloc.LargestFree() >= c.p.TriggerFree {
		return false
	}
	if b.Array.Backlog(now) > 0 {
		c.nextPass = now.Add(c.p.Interval / 4)
		return false
	}
	c.nextPass = now.Add(c.p.Interval)
	c.passes++

	// find the first pair of free extents separated by a small live run
	exts := b.Alloc.FreeExtents()
	for i := 0; i+1 < len(exts); i++ {
		gapStart := exts[i].End()
		gapLen := uint64(exts[i+1].Start - gapStart)
		if gapLen == 0 || gapLen > c.p.MaxGap {
			continue
		}
		b.relocate(now, gapStart, gapLen)
		return true
	}
	return true
}

// relocate moves the live blocks in [start, start+n) to freshly
// allocated space, freeing the originals so the surrounding holes can
// coalesce.
func (b *Base) relocate(now sim.Time, start alloc.PBA, n uint64) {
	type move struct {
		old    alloc.PBA
		id     uint64
		shared []uint64 // referring LBAs
		flags  []bool
	}
	var moves []move
	for pba := start; pba < start+alloc.PBA(n); pba++ {
		id, ok := b.Store.Read(pba)
		if !ok {
			continue // dead residual; nothing to preserve
		}
		refs := b.Map.Referrers(pba)
		if len(refs) == 0 {
			continue
		}
		m := move{old: pba, id: uint64(id)}
		for _, lba := range refs {
			_, shared, _ := b.Map.LookupFull(lba)
			m.shared = append(m.shared, lba)
			m.flags = append(m.flags, shared)
		}
		moves = append(moves, m)
	}
	if len(moves) == 0 {
		return
	}

	// background I/O: one sequential read of the source run, one
	// sequential write of the destination run
	b.Array.Read(now, uint64(start), n)
	dst, ok := b.Alloc.AllocLargest(uint64(len(moves)))
	if !ok {
		return // space too tight to clean; give up this pass
	}
	b.Array.Write(now, uint64(dst), uint64(len(moves)))
	b.St.SwapInIOs += 2

	for k, m := range moves {
		newPBA := dst + alloc.PBA(k)
		b.Store.Write(newPBA, chunk.ContentID(m.id))
		for j, lba := range m.shared {
			freed := b.Map.Set(lba, newPBA, m.flags[j])
			b.cleaner.reclaimed += int64(len(freed))
			b.FreeBlocks(freed)
		}
		b.cleaner.moved++
	}
}
