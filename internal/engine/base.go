package engine

import (
	"fmt"
	"strconv"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/icache"
	"github.com/pod-dedup/pod/internal/locality"
	"github.com/pod-dedup/pod/internal/maptable"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/nvram"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// Latency constants of the controller model.
const (
	// MemHitUS is the service time of a request satisfied entirely
	// from the storage cache.
	MemHitUS = 20
	// MapUpdateUS is the bookkeeping cost charged when a write is
	// fully absorbed by the Map table (no data I/O).
	MapUpdateUS = 10
	// RemoteReadUS is the flat service time charged when a read must
	// fetch a cross-shard canonical block (a remote-encoded mapping
	// installed by the global fingerprint tier). It models a fetch
	// from a peer's cache/disk over the interconnect rather than a
	// trip through the local disk queues; see DESIGN.md §12.
	RemoteReadUS = 2000
)

// IndexZoneFrac is the fraction of the array reserved at the top of the
// physical space for the on-disk index and the iCache swap area.
const IndexZoneFrac = 32 // 1/32 of capacity

// Config assembles a storage engine's substrates.
type Config struct {
	Array *raid.Array

	// Storage-cache DRAM budget and partitioning.
	MemoryBytes     int64
	IndexFrac       float64
	Adaptive        bool
	Interval        sim.Duration
	IndexEntryBytes int

	// Select-Dedupe partial-redundancy threshold (the paper uses 3).
	Threshold int
	// iDedup minimum duplicate-sequence length in chunks; requests
	// smaller than this bypass deduplication entirely.
	IDedupThreshold int

	Fingerprinter chunk.Fingerprinter
	HashWorkers   int

	// NVRAMBytes sizes the Map-table journal; 0 disables journaling.
	NVRAMBytes int

	// Cleaner configures the background segment cleaner (off unless
	// Cleaner.Enabled).
	Cleaner CleanerParams

	// Verify makes every dedup decision check the physical content
	// model (catching index/store divergence at the point of damage).
	Verify bool

	// Streams configures HPDedup-style per-stream apportionment of the
	// fingerprint-index cache (off unless Streams.Enabled). Used by the
	// Select-Dedupe/POD write path; other engines ignore stream tags.
	Streams StreamParams

	// Chunking selects the request chunker. The zero value (Fixed4K)
	// keeps the paper's model: one chunk per 4 KiB slot, ContentID
	// straight from the trace. Gear/SeqCDC route every split through a
	// content-defined splitter that materializes the request's bytes
	// and re-derives ContentIDs from chunk content, so byte-shifted
	// redundancy dedups even though every trace ID is unique.
	Chunking cdc.Params
}

// StreamParams configures per-stream index-cache apportionment.
type StreamParams struct {
	Enabled bool
	// StaticShares, when non-nil, fixes each stream's share of the
	// index partition for the engine's lifetime (no estimator) —
	// the baseline the dynamic apportioner is evaluated against.
	// When nil, a temporal-locality estimator re-divides the partition
	// every Interval with a shared floor per active stream.
	StaticShares map[uint32]float64
	// Interval is the apportionment period (default: the engine's
	// iCache evaluation interval).
	Interval sim.Duration
	// Locality tunes the estimator; the zero value selects defaults,
	// with the sketch sized to the index partition.
	Locality locality.Params
}

// WithDefaults fills unset fields with the evaluation defaults.
func (c Config) WithDefaults() Config {
	if c.IndexFrac == 0 {
		c.IndexFrac = 0.5
	}
	if c.Interval == 0 {
		c.Interval = 500 * sim.Millisecond
	}
	if c.IndexEntryBytes == 0 {
		c.IndexEntryBytes = 64
	}
	if c.Threshold == 0 {
		c.Threshold = 3
	}
	if c.IDedupThreshold == 0 {
		c.IDedupThreshold = 8
	}
	if c.Fingerprinter == nil {
		c.Fingerprinter = chunk.SyntheticFingerprinter{}
	}
	if c.HashWorkers == 0 {
		c.HashWorkers = 1
	}
	return c
}

// Base is the substrate shared by the deduplicating engines.
type Base struct {
	Cfg   Config
	Array *raid.Array
	Alloc *alloc.Allocator
	Map   *maptable.Table
	Store *Store
	Hash  *chunk.HashEngine
	IC    *icache.Controller
	St    *Stats

	// Reg is the engine's metrics registry; Ph its per-phase latency
	// recorder (a pre-resolved handle — observing a phase is plain
	// integer arithmetic on the hot path).
	Reg *metrics.Registry
	Ph  *metrics.PhaseSet

	// OnFree, when set, is invoked for every reclaimed physical block
	// (Full-Dedupe uses it to drop full-index entries).
	OnFree func(alloc.PBA)

	// Ads, when set, receives fingerprint advertisements from the
	// write path (the global fingerprint tier's intake). Publication
	// is fire-and-forget: implementations must never block, so the
	// inline path stays shard-local regardless of tier load.
	Ads AdSink

	// OnRemoteRef, when set, is invoked on reference-count transitions
	// of remote-encoded canonical blocks: up=true when the first local
	// mapping referencing the canonical appears, up=false when the
	// last disappears. The tier agent converts these into pin traffic
	// toward the owning shard.
	OnRemoteRef func(c alloc.PBA, up bool)

	// RemoteDown, when set, reports whether a peer shard is currently a
	// dead failure domain. A remote read whose canonical owner is down
	// fails transient (KindShardDown) instead of charging RemoteReadUS,
	// and inline dedupe against a down owner's canonical is refused (the
	// caller writes the chunk fresh) — a down peer can neither serve a
	// fetch nor account a new ref pin.
	RemoteDown func(owner int) bool

	// onParole mirrors maptable.Table.OnParole and survives Recover
	// replacing the Map table (RecoverLoad rewires it).
	onParole func(alloc.PBA)

	dataBlocks uint64 // allocatable region [0, dataBlocks)
	zoneBlocks uint64 // reserved index/swap zone [dataBlocks, dataBlocks+zoneBlocks)
	rngState   uint64 // deterministic placement of index-zone lookups
	swapCursor uint64 // rotating offset into the swap area

	nvdev    *nvram.Device
	icparams icache.Params
	cleaner  cleanerState
	bg       BackgroundTask

	// Stream-mode state (nil/zero unless Cfg.Streams.Enabled): the
	// locality estimator behind dynamic apportionment, its schedule,
	// and per-stream write-removal accounting for the fairness gauges.
	Loc           *locality.Estimator
	strInterval   sim.Duration
	nextApportion sim.Time
	strAcct       map[uint32]*streamWrites

	// chScratch backs SplitRequest/SplitAndFingerprint. One write
	// request is chunked, consumed, and forgotten before the next
	// arrives, so the whole replay shares a single chunk buffer.
	chScratch []chunk.Chunk

	// splitter is the content-defined chunker (nil in Fixed4K mode).
	// Owns its own materialize/mark/cut scratch; allocation-free once
	// warm, like chScratch. cdcBytes is the content volume of the last
	// split — the fingerprint-cost basis.
	splitter *cdc.Splitter
	cdcBytes int64

	// Per-request scratch buffers. An engine services one request at a
	// time (replay is single-threaded per engine; the serving layer
	// serializes per shard), and every buffer is fully consumed before
	// the next request arrives, so the whole replay shares one set. Each
	// is valid only until the method that returned it is called again —
	// see DESIGN.md "Buffer ownership".
	dupScratch, dedupeScratch []bool
	targetScratch             []alloc.PBA
	posScratch                []int
	extScratch                []alloc.Extent
	wfScratch                 []alloc.PBA // WriteFresh result
	rdScratch                 []alloc.PBA // ReadMapped resolved blocks
	hitScratch                []bool      // ReadMapped cache-probe results
}

// NewBase wires up the substrates for cfg.
func NewBase(cfg Config) *Base {
	cfg = cfg.WithDefaults()
	if cfg.Array == nil {
		panic("engine: nil array")
	}
	if cfg.MemoryBytes <= 0 {
		panic("engine: non-positive memory budget")
	}
	total := cfg.Array.DataBlocks()
	zone := total / IndexZoneFrac
	data := total - zone

	icp := icache.DefaultParams(cfg.MemoryBytes)
	icp.IndexFrac = cfg.IndexFrac
	icp.Adaptive = cfg.Adaptive
	icp.Interval = cfg.Interval
	icp.IndexEntryBytes = cfg.IndexEntryBytes

	var dev *nvram.Device
	if cfg.NVRAMBytes > 0 {
		dev = nvram.New(cfg.NVRAMBytes)
	}

	reg := metrics.NewRegistry()
	b := &Base{
		Cfg:        cfg,
		Array:      cfg.Array,
		Alloc:      alloc.New(data),
		Map:        maptable.New(dev),
		Store:      NewStore(),
		Hash:       chunk.NewHashEngine(cfg.Fingerprinter, cfg.HashWorkers),
		IC:         icache.New(icp),
		St:         NewStats(),
		Reg:        reg,
		Ph:         reg.Phases(),
		dataBlocks: data,
		zoneBlocks: zone,
		rngState:   0x9E3779B97F4A7C15,
		nvdev:      dev,
		icparams:   icp,
	}
	if cfg.Chunking.Enabled() {
		b.splitter = cdc.NewSplitter(cfg.Chunking)
		b.Cfg.Chunking = b.splitter.Params() // defaults filled
	}
	if cfg.Cleaner.Enabled {
		b.cleaner = cleanerState{p: cfg.Cleaner.withDefaults(data)}
		b.Map.EnableReverseIndex()
	}
	if cfg.Streams.Enabled {
		b.setupStreams()
	}
	b.instrument()
	return b
}

// setupStreams puts the iCache into per-stream mode and, for dynamic
// apportionment, builds a fresh locality estimator. Runs at
// construction and again after recovery rebuilds the caches (the
// estimator is DRAM state and comes back cold, like the caches).
func (b *Base) setupStreams() {
	sp := b.Cfg.Streams
	b.IC.EnableStreams(sp.StaticShares)
	b.strInterval = sp.Interval
	if b.strInterval == 0 {
		b.strInterval = b.icparams.Interval
	}
	b.nextApportion = sim.Time(b.strInterval)
	if b.strAcct == nil {
		b.strAcct = make(map[uint32]*streamWrites)
	}
	if sp.StaticShares != nil {
		b.Loc = nil
		return
	}
	lp := sp.Locality.WithDefaults()
	if sp.Locality.WindowEntries == 0 {
		// size the sketch so a sketch hit predicts an index hit at full
		// quota: index-partition entries, scaled by the sample rate
		if w := b.IC.IndexCapTotal() >> lp.SampleShift; w > 0 {
			lp.WindowEntries = w
		}
	}
	b.Loc = locality.New(lp)
}

// instrument wires the substrates' live gauges into the registry. It
// runs at construction and again after Recover replaces the map table
// and caches (GaugeFunc re-registration swaps the callbacks, so the
// gauges always read the live objects).
func (b *Base) instrument() {
	b.Array.Instrument(b.Reg)
	b.Map.Instrument(b.Reg)
	b.IC.Instrument(b.Reg)
	b.Reg.GaugeFunc("engine_used_blocks", func() int64 { return int64(b.Alloc.Used()) })
	if b.splitter != nil {
		b.Reg.GaugeFunc("cdc_emitted_chunks", func() int64 { return b.splitter.EmittedChunks })
		b.Reg.GaugeFunc("cdc_emitted_bytes", func() int64 { return b.splitter.EmittedBytes })
	}
	// Allocator health, published for every scheme: occupancy, the
	// fragmentation of the free space, and the headroom the
	// log-structured write path actually has.
	b.Reg.GaugeFunc("alloc_used_blocks", func() int64 { return int64(b.Alloc.Used()) })
	b.Reg.GaugeFunc("alloc_free_extents", func() int64 { return int64(b.Alloc.NumFreeExtents()) })
	b.Reg.GaugeFunc("alloc_largest_free", func() int64 { return int64(b.Alloc.LargestFree()) })
	b.Reg.GaugeFunc("cleaner_passes", func() int64 { return b.cleaner.passes })
	b.Reg.GaugeFunc("cleaner_blocks_moved", func() int64 { return b.cleaner.moved })
	b.Reg.GaugeFunc("cleaner_reclaimed_blocks", func() int64 { return b.cleaner.reclaimed })
	for id, c := range b.strAcct {
		b.instrumentStreamWrites(id, c)
	}
}

// streamWrites is one stream's write-removal accounting. Like Stats it
// is cumulative and survives crash recovery.
type streamWrites struct {
	writes, removed int64
}

// NoteStreamWrite attributes one serviced write request to its tenant
// stream for the per-stream fairness gauges (writes, removed, and
// writes_removed_pct{stream=...}). A no-op unless stream mode is on,
// so untagged single-tenant runs publish byte-identical metrics.
func (b *Base) NoteStreamWrite(stream trace.StreamID, removed bool) {
	if b.strAcct == nil {
		return
	}
	id := uint32(stream)
	c := b.strAcct[id]
	if c == nil {
		c = &streamWrites{}
		b.strAcct[id] = c
		b.instrumentStreamWrites(id, c)
	}
	c.writes++
	if removed {
		c.removed++
	}
}

func (b *Base) instrumentStreamWrites(id uint32, c *streamWrites) {
	label := strconv.FormatUint(uint64(id), 10)
	// raw counts sum correctly under cross-shard snapshot merges; the
	// pct gauge is exact per shard (recompute from counts after a merge)
	b.Reg.GaugeFunc(metrics.Labeled("stream_writes", "stream", label),
		func() int64 { return c.writes })
	b.Reg.GaugeFunc(metrics.Labeled("stream_writes_removed", "stream", label),
		func() int64 { return c.removed })
	b.Reg.GaugeFunc(metrics.Labeled("writes_removed_pct", "stream", label),
		func() int64 {
			if c.writes == 0 {
				return 0
			}
			return c.removed * 100 / c.writes
		})
}

// AdSink receives asynchronous fingerprint advertisements from the
// write path. fresh marks a chunk that was physically written (a new
// canonical candidate); !fresh marks an inline dedup hit against pba
// (duplicate evidence). Advertise must never block the caller.
type AdSink interface {
	Advertise(fp chunk.Fingerprint, pba alloc.PBA, fresh bool)
}

// SetOnParole installs the parole hook on the Base and its current Map
// table; RecoverLoad re-installs it on the recovered table.
func (b *Base) SetOnParole(fn func(alloc.PBA)) {
	b.onParole = fn
	b.Map.OnParole = fn
}

// BackgroundTask is a unit of idle-time background work driven in
// virtual time from the engine's per-request Tick (the out-of-line
// deduplication scanner). Implementations issue their own I/O through
// the array at the tick time, so background work shares the disk queues
// with foreground requests.
type BackgroundTask interface {
	// Tick offers the task a chance to run at the given virtual time.
	Tick(now sim.Time)
	// Flush runs the task to convergence regardless of idle gating
	// (end-of-run capacity accounting).
	Flush(now sim.Time)
	// RecoverReset drops the task's volatile state after crash
	// recovery; durable effects live in the journaled Map table.
	RecoverReset()
}

// SetBackground attaches a background task to the engine. The task's
// referrer rewiring needs the Map table's reverse index, so attaching
// enables it (recovery re-enables it the same way).
func (b *Base) SetBackground(t BackgroundTask) {
	b.bg = t
	b.Map.EnableReverseIndex()
}

// Background returns the attached background task, if any.
func (b *Base) Background() BackgroundTask { return b.bg }

// FlushBackground drains the attached background task; a no-op without
// one, so engines can expose Flush unconditionally.
func (b *Base) FlushBackground(now sim.Time) {
	if b.bg != nil {
		b.bg.Flush(now)
	}
}

// Metrics implements part of the Engine interface.
func (b *Base) Metrics() *metrics.Registry { return b.Reg }

// StartRequest marks the beginning of one request's service, resetting
// the per-request phase scratch that sampled traces read back. Engines
// call it first thing in Write and Read.
func (b *Base) StartRequest() { b.Ph.Begin() }

// AbsorbWrite accounts a write request fully absorbed by the Map table
// (every chunk deduplicated — no data I/O): the request is counted as
// removed, the map-update bookkeeping cost is charged and attributed to
// the map_update phase, and the completion time moves accordingly.
func (b *Base) AbsorbWrite(done sim.Time) sim.Time {
	b.St.WritesRemoved++
	b.Ph.Observe(metrics.PhaseMapUpdate, MapUpdateUS)
	return done.Add(MapUpdateUS)
}

// NVRAM exposes the Map-table journal device (nil when journaling is
// disabled) so tests and the crash-recovery path can inject faults.
func (b *Base) NVRAM() *nvram.Device { return b.nvdev }

// Recover models a power failure followed by a restart: DRAM contents
// (index cache, read cache, ghosts) are lost; the Map table is rebuilt
// from the NVRAM journal up to its last intact record; allocator
// occupancy and the surviving physical contents are reconstructed from
// the recovered mappings (orphan blocks whose mapping record was torn
// are reclaimed). It returns the number of journal records applied.
//
// Every acknowledged write is durable by construction — the journal
// record is appended before the write completes — so the recovered
// logical view equals the state at the moment of the crash.
func (b *Base) Recover() (int, error) {
	applied, err := b.RecoverLoad()
	if err != nil {
		return applied, err
	}
	b.RecoverFinish(nil)
	return applied, nil
}

// RecoverLoad is the first phase of recovery: it rebuilds the Map
// table from the NVRAM journal. The sharded server runs this phase on
// every shard before any RecoverFinish, so cross-shard canonical
// references can be re-pinned on their owners before each owner prunes
// its physical contents.
func (b *Base) RecoverLoad() (int, error) {
	if b.nvdev == nil {
		return 0, fmt.Errorf("engine: no NVRAM configured (Config.NVRAMBytes = 0)")
	}
	b.nvdev.Recover()
	tbl, applied, err := maptable.Load(b.nvdev)
	if err != nil {
		return 0, err
	}
	tbl.OnParole = b.onParole
	b.Map = tbl
	return applied, nil
}

// RecoverFinish completes recovery: allocator occupancy and surviving
// physical contents are reconstructed from the recovered mappings plus
// the given pinned blocks — cross-shard canonicals other shards
// reference, which must survive although no local mapping names them.
// pinned carries one entry per (referencing shard, block) pair, so
// duplicate PBAs are expected and each adds a pin. Remote-encoded
// mappings are skipped: their blocks live on the owning shard.
func (b *Base) RecoverFinish(pinned []alloc.PBA) {
	a := alloc.New(b.dataBlocks)
	keep := make(map[alloc.PBA]bool)
	reserve := func(pba alloc.PBA) {
		if !keep[pba] {
			keep[pba] = true
			if !a.Reserve(pba, 1) {
				panic(fmt.Sprintf("engine: recovered mapping references unreservable block %d", pba))
			}
		}
	}
	b.Map.Each(func(_ uint64, pba alloc.PBA, _ bool) bool {
		if !alloc.IsRemote(pba) {
			reserve(pba)
		}
		return true
	})
	for _, pba := range pinned {
		b.Map.Pin(pba)
		reserve(pba)
	}
	b.Alloc = a
	b.Store.Retain(keep)

	if b.cleaner.p.Enabled || b.bg != nil {
		b.Map.EnableReverseIndex()
	}
	// volatile caches come back cold
	b.IC = icache.New(b.icparams)
	if b.Cfg.Streams.Enabled {
		b.setupStreams()
	}
	// re-point the live gauges at the rebuilt substrates
	b.instrument()
	if b.bg != nil {
		b.bg.RecoverReset()
	}
}

// Release returns pooled substrate resources (the content model's page
// arenas) to their process-wide pools. The replay harness calls it once
// an engine's lifetime ends and its results have been extracted; the
// engine must not service further requests afterwards.
func (b *Base) Release() {
	b.Store.Release()
	b.Map.Release()
}

// DataBlocks reports the allocatable physical capacity.
func (b *Base) DataBlocks() uint64 { return b.dataBlocks }

// Stats implements part of the Engine interface.
func (b *Base) Stats() *Stats { return b.St }

// UsedBlocks reports live physical occupancy.
func (b *Base) UsedBlocks() uint64 { return b.Alloc.Used() }

// ReadContent resolves lba through the Map table into the content
// model. A remote-encoded mapping resolves to not-ok at engine level —
// the content lives on another shard; the serving layer hops via
// ResolveRemote.
func (b *Base) ReadContent(lba uint64) (uint64, bool) {
	pba, ok := b.Map.Lookup(lba)
	if !ok || alloc.IsRemote(pba) {
		return 0, false
	}
	id, ok := b.Store.Read(pba)
	return uint64(id), ok
}

// ResolveRemote reports whether lba maps to a cross-shard canonical
// and, if so, the remote-encoded reference. The sharded server uses it
// to hop content reads to the owning shard.
func (b *Base) ResolveRemote(lba uint64) (alloc.PBA, bool) {
	pba, ok := b.Map.Lookup(lba)
	if !ok || !alloc.IsRemote(pba) {
		return 0, false
	}
	return pba, true
}

// SplitRequest chunks a write request without fingerprinting (bypass
// paths skip hashing entirely). The returned slice is the engine's
// scratch buffer: it is valid only until the next SplitRequest or
// SplitAndFingerprint call on this Base.
//
// Under content-defined chunking the split routes through the CDC
// splitter instead of the 1:1 slot mapping: chunk count may differ
// from req.N, and each chunk's ContentID is a hash of its materialized
// bytes. cdcBytes records the content volume for the fingerprint-cost
// model (fingerprints are computed as part of the split there — the
// splitter derives them from the content hash).
func (b *Base) SplitRequest(req *trace.Request) []chunk.Chunk {
	if b.splitter != nil {
		b.chScratch, b.cdcBytes = b.splitter.Split(b.chScratch[:0], req.Content)
		return b.chScratch
	}
	b.chScratch = chunk.SplitInto(b.chScratch, req.Content, nil, false)
	return b.chScratch
}

// SplitAndFingerprint chunks a write request and charges the modeled
// fingerprint latency (32 µs per 4 KB of content — per chunk in the
// fixed model, per materialized volume under CDC, so the charge stays
// proportional to bytes hashed rather than to chunk count). Like
// SplitRequest, the returned slice is scratch, valid only until the
// next split on this Base.
func (b *Base) SplitAndFingerprint(req *trace.Request) ([]chunk.Chunk, sim.Duration) {
	chs := b.SplitRequest(req)
	var cost int64
	if b.splitter != nil {
		// fingerprints already derived during the split; charge the
		// modeled latency by content volume
		cost = (b.cdcBytes + chunk.Size - 1) / chunk.Size * b.Hash.ChunkTimeUS
	} else {
		cost = b.Hash.FingerprintAll(chs)
	}
	b.Ph.Observe(metrics.PhaseFingerprint, cost)
	if b.Loc != nil {
		s := uint32(req.Stream)
		for i := range chs {
			b.Loc.Record(s, chs[i].FP)
		}
	}
	return chs, sim.Duration(cost)
}

// WriteScratch returns the write path's per-request decision buffers,
// each of length n and zeroed: index-hit flags, the dedupe decision
// mask, and the target PBA of each hit. They are owned by the Base and
// valid only for the current request (until the next WriteScratch
// call); engines must not retain them across requests.
func (b *Base) WriteScratch(n int) (dup, dedupe []bool, target []alloc.PBA) {
	b.dupScratch = resetBools(b.dupScratch, n)
	b.dedupeScratch = resetBools(b.dedupeScratch, n)
	if cap(b.targetScratch) < n {
		b.targetScratch = make([]alloc.PBA, n)
	}
	b.targetScratch = b.targetScratch[:n]
	clear(b.targetScratch)
	return b.dupScratch, b.dedupeScratch, b.targetScratch
}

// PositionsScratch returns an empty write-position buffer with capacity
// for n entries, owned by the Base under the same single-request
// lifetime as WriteScratch.
func (b *Base) PositionsScratch(n int) []int {
	if cap(b.posScratch) < n {
		b.posScratch = make([]int, 0, n)
	}
	return b.posScratch[:0]
}

func resetBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// FreeBlocks reclaims physical blocks: allocator, content model, cache
// purge, and the engine-specific hook. A remote-encoded canonical that
// lost its last local reference has nothing local to reclaim — the
// block lives on the owning shard — so only the OnRemoteRef down
// transition fires; the index hint stays valid (the binding holds as
// long as the owner keeps the canonical pinned, and a revoke purges it
// before the owner ever frees the block).
func (b *Base) FreeBlocks(pbas []alloc.PBA) {
	for _, pba := range pbas {
		if alloc.IsRemote(pba) {
			if b.OnRemoteRef != nil {
				b.OnRemoteRef(pba, false)
			}
			continue
		}
		b.Alloc.Free(pba, 1)
		b.Store.Free(pba)
		b.IC.PurgePBA(pba)
		if b.OnFree != nil {
			b.OnFree(pba)
		}
	}
}

// SetRemoteRef installs lba → canonical (a remote-encoded PBA) through
// the journaled map path, firing OnRemoteRef on the 0→1 local
// reference transition and freeing whatever blocks the mapping
// displaced.
func (b *Base) SetRemoteRef(lba uint64, c alloc.PBA) {
	up := b.Map.RefCount(c) == 0
	b.FreeBlocks(b.Map.Set(lba, c, true))
	if up && b.OnRemoteRef != nil {
		b.OnRemoteRef(c, true)
	}
}

// TryDedupe absorbs one chunk of a write by referencing an existing
// copy: the Map table gains a shared mapping and no data I/O occurs.
// It first performs the paper's consistency check — the referenced
// block must still hold the expected content (an earlier chunk of the
// same request may have released it). On mismatch nothing changes and
// the caller writes the chunk instead.
func (b *Base) TryDedupe(lba uint64, pba alloc.PBA, id chunk.ContentID) bool {
	if alloc.IsRemote(pba) {
		// Cross-shard dedupe against a tier-granted hint. The local
		// content model cannot validate a peer's block; instead the
		// binding itself is trusted: a hint enters the hot index only
		// under a grant that pinned the canonical on its owner, the
		// owner never mutates a pinned block, and a revoke purges the
		// hint before the owner frees it — so an index hit on a
		// remote target is valid by construction (fingerprints are
		// injective over content IDs in both fingerprint modes).
		// A down owner breaks the chain — its hints are purged on
		// crash, but refuse defensively in case one survives.
		if owner, _ := alloc.RemoteParts(pba); b.RemoteDown != nil && b.RemoteDown(owner) {
			return false
		}
		b.SetRemoteRef(lba, pba)
		b.St.ChunksDeduped++
		b.St.RemoteDeduped++
		b.St.NVRAMPeakBytes = b.Map.PeakNVRAMBytes()
		return true
	}
	got, ok := b.Store.Read(pba)
	if !ok || got != id {
		return false
	}
	b.FreeBlocks(b.Map.Set(lba, pba, true))
	b.St.ChunksDeduped++
	b.St.NVRAMPeakBytes = b.Map.PeakNVRAMBytes()
	return true
}

// VerifyWrite asserts, after a write request has been fully applied,
// that every chunk of the request reads back with the written content.
// Engines call it when Cfg.Verify is set, passing the split they just
// applied (under CDC the chunk count and ContentIDs differ from the
// request's slots, so the request alone cannot name the expected
// content); it catches dedup or mapping corruption at the request that
// caused it.
func (b *Base) VerifyWrite(req *trace.Request, chs []chunk.Chunk) {
	if !b.Cfg.Verify {
		return
	}
	for i := range chs {
		lba := req.LBA + uint64(i)
		pba, ok := b.Map.Lookup(lba)
		if !ok {
			panic(fmt.Sprintf("engine: lba %d unmapped immediately after write", lba))
		}
		if alloc.IsRemote(pba) {
			// the content lives on the owning shard; the serving
			// layer's cross-shard audit verifies these bindings
			continue
		}
		b.Store.MustMatch(pba, chs[i].Content)
	}
}

// WriteFresh writes the request chunks at the given positions into
// freshly allocated extents, submitted at time at. It returns the
// completion time and the PBA assigned to each position (parallel to
// positions). The PBA slice aliases engine-owned scratch: it is valid
// only until the next WriteFresh call, long enough for the caller to
// index the freshly written fingerprints. Contiguous allocation is
// attempted first so that one request's data lands sequentially on
// disk — the property POD's classifier later tests with its
// "sequentially stored" condition.
//
// On a disk error the write is not applied: the allocated extents are
// released and neither the Map table nor the content model changes, so
// a retry of the same request starts from clean state and a failed
// write can never be half-visible to readers.
func (b *Base) WriteFresh(at sim.Time, req *trace.Request, positions []int, chs []chunk.Chunk) (sim.Time, []alloc.PBA, error) {
	n := uint64(len(positions))
	if n == 0 {
		return at, nil, nil
	}
	// Append-preferring allocation: take from the largest free extent
	// (normally the log frontier), so consecutive requests land
	// physically sequential even when reclaimed holes pepper the low
	// addresses. Only a space so fragmented that no extent fits falls
	// back to scattering.
	var extents []alloc.Extent
	if start, ok := b.Alloc.AllocLargest(n); ok {
		b.extScratch = append(b.extScratch[:0], alloc.Extent{Start: start, Count: n})
		extents = b.extScratch
	} else if scattered, ok := b.Alloc.AllocScattered(n); ok {
		extents = scattered
	} else {
		panic("engine: physical space exhausted")
	}

	if cap(b.wfScratch) < int(n) {
		b.wfScratch = make([]alloc.PBA, 0, n)
	}
	pbas := b.wfScratch[:0]
	done := at
	for _, e := range extents {
		c, err := b.Array.Write(at, uint64(e.Start), e.Count)
		done = sim.MaxTime(done, c)
		if err != nil {
			for _, ex := range extents {
				b.Alloc.Free(ex.Start, ex.Count)
			}
			b.St.WriteErrors++
			return done, nil, err
		}
		for i := uint64(0); i < e.Count; i++ {
			pbas = append(pbas, e.Start+alloc.PBA(i))
		}
	}
	b.wfScratch = pbas
	for i, pos := range positions {
		pba := pbas[i]
		b.Store.Write(pba, chs[pos].Content)
		b.FreeBlocks(b.Map.Set(req.LBA+uint64(pos), pba, false))
	}
	b.St.ChunksWritten += int64(len(positions))
	b.St.NVRAMPeakBytes = b.Map.PeakNVRAMBytes()
	b.Ph.Observe(metrics.PhaseDiskWrite, int64(done.Sub(at)))
	return done, pbas, nil
}

// InsertIndex registers fp → pba in the hot index. Consistency against
// block reuse is purge-based: FreeBlocks drops index entries for
// reclaimed blocks, and TryDedupe re-validates content at dedup time.
func (b *Base) InsertIndex(fp chunk.Fingerprint, pba alloc.PBA) {
	b.IC.IndexInsert(fp, pba)
}

// InsertIndexS is InsertIndex on behalf of a tenant stream: in stream
// mode the entry lands in (and can only evict from) that stream's
// quota.
func (b *Base) InsertIndexS(stream trace.StreamID, fp chunk.Fingerprint, pba alloc.PBA) {
	b.IC.IndexInsertS(uint32(stream), fp, pba)
}

// ReadMapped services a read request through the Map table (or at
// identity addresses when identity is set), filtering through the read
// cache and coalescing cache misses into contiguous disk runs. A disk
// error aborts the request with the virtual time already spent; blocks
// read before the failure stay cached (they were read successfully, and
// a retry benefits from them).
func (b *Base) ReadMapped(req *trace.Request, identity bool) (sim.Duration, error) {
	t := req.Time
	if cap(b.rdScratch) < req.N {
		b.rdScratch = make([]alloc.PBA, req.N)
	}
	pbas := b.rdScratch[:req.N]
	b.rdScratch = pbas
	for i := 0; i < req.N; i++ {
		lba := req.LBA + uint64(i)
		if identity {
			pbas[i] = alloc.PBA(lba % b.dataBlocks)
			continue
		}
		if pba, ok := b.Map.Lookup(lba); ok {
			pbas[i] = pba
		} else {
			pbas[i] = alloc.PBA(lba % b.dataBlocks) // never-written block: home position
		}
	}

	// one cache probe per block, then coalesce the misses into
	// contiguous disk runs
	hit := resetBools(b.hitScratch, req.N)
	b.hitScratch = hit
	remoteMiss := false
	for i := 0; i < req.N; i++ {
		if alloc.IsRemote(pbas[i]) {
			// A cross-shard canonical: probe the read cache under the
			// remote-encoded key (distinct from any local PBA); a
			// miss is a flat-latency fetch from the owning shard, not
			// a trip through the local disk queues. hit[i] keeps the
			// local miss-coalescing loop off this block either way.
			// A miss whose owner is down cannot be served at any
			// price: fail transient so the serving layer retries
			// against the deadline instead of fabricating a fetch.
			if b.IC.ReadHit(pbas[i]) {
				b.St.CacheHits++
			} else {
				if owner, _ := alloc.RemoteParts(pbas[i]); b.RemoteDown != nil && b.RemoteDown(owner) {
					b.St.CacheMisses++
					b.St.ReadErrors++
					return 0, fault.New(fault.KindShardDown, fault.Transient, -1, uint64(pbas[i]), t)
				}
				b.St.CacheMisses++
				b.St.RemoteReads++
				b.IC.ReadInsert(pbas[i])
				remoteMiss = true
			}
			hit[i] = true
			continue
		}
		hit[i] = b.IC.ReadHit(pbas[i])
		if hit[i] {
			b.St.CacheHits++
		} else {
			b.St.CacheMisses++
		}
	}

	var missRuns int
	done := t
	i := 0
	anyMiss := remoteMiss
	if remoteMiss {
		done = t.Add(RemoteReadUS)
	}
	for i < req.N {
		if hit[i] {
			i++
			continue
		}
		j := i + 1
		for j < req.N && !hit[j] && pbas[j] == pbas[j-1]+1 {
			j++
		}
		c, err := b.Array.Read(t, uint64(pbas[i]), uint64(j-i))
		done = sim.MaxTime(done, c)
		if err != nil {
			b.St.ReadIOs += int64(missRuns + 1)
			b.St.ReadErrors++
			return done.Sub(t), err
		}
		for k := i; k < j; k++ {
			b.IC.ReadInsert(pbas[k])
		}
		missRuns++
		anyMiss = true
		i = j
	}
	b.St.ReadIOs += int64(missRuns)
	if missRuns > 1 {
		b.St.ReadAmplifiedReqs++
	}
	if !anyMiss {
		return MemHitUS, nil
	}
	b.Ph.Observe(metrics.PhaseDiskRead, int64(done.Sub(t)))
	return done.Sub(t), nil
}

// IndexZoneIO issues k random 4 KB reads into the reserved on-disk
// index zone (Full-Dedupe's index-lookup traffic) starting at time at,
// returning the time the last lookup completes. Errors propagate: an
// index lookup that fails fails the request it was serving.
func (b *Base) IndexZoneIO(at sim.Time, k int) (sim.Time, error) {
	if k <= 0 {
		return at, nil
	}
	done := at
	for ; k > 0; k-- {
		b.rngState ^= b.rngState << 13
		b.rngState ^= b.rngState >> 7
		b.rngState ^= b.rngState << 17
		off := b.dataBlocks + b.rngState%b.zoneBlocks
		c, err := b.Array.Read(at, off, 1)
		done = sim.MaxTime(done, c)
		b.St.IndexDiskIOs++
		if err != nil {
			return done, err
		}
	}
	b.Ph.Observe(metrics.PhaseIndexProbe, int64(done.Sub(at)))
	return done, nil
}

// ApplyRepartition carries out the pin transfers and background swap
// I/O that an iCache repartition requires.
func (b *Base) ApplyRepartition(now sim.Time, rep icache.Repartition) {
	if !rep.Changed {
		return
	}
	// Swapped-out data lives in the reserved zone, written there
	// sequentially at eviction time (§III-C: "stored on a reserved
	// space on the back-end storage device"), so swapping K blocks back
	// in costs ⌈K/batch⌉ large sequential background reads — not K
	// scattered ones.
	if n := uint64(len(rep.ReadSwapIns)); n > 0 {
		const batch = 256
		for off := uint64(0); off < n; off += batch {
			cnt := n - off
			if cnt > batch {
				cnt = batch
			}
			start := b.dataBlocks + (b.swapCursor % (b.zoneBlocks - batch))
			b.swapCursor += cnt
			// background traffic: errors are dropped, the swap-in is
			// simply retried by the next repartition that needs it
			b.Array.Read(now, start, cnt)
			b.St.SwapInIOs++
		}
	}
}

// Tick advances the iCache controller, applies any repartition, and
// gives the segment cleaner and the background task a chance to run.
// At most one of the two background actors runs per tick: when the
// cleaner relocates blocks the scanner sits the window out, so
// relocation and reclamation never interleave their referrer rewiring.
func (b *Base) Tick(now sim.Time) {
	if b.Loc != nil && now >= b.nextApportion {
		b.nextApportion = now.Add(b.strInterval)
		if shares := b.Loc.Apportion(); shares != nil {
			b.IC.SetStreamShares(shares)
		}
	}
	b.ApplyRepartition(now, b.IC.Tick(now))
	if b.maybeClean(now) {
		return
	}
	if b.bg != nil {
		b.bg.Tick(now)
	}
}

// CheckConsistency audits the cross-substrate invariants of a
// map-table-backed engine: the allocator's free list is well formed,
// the Map table's reference counts and reverse index match its
// mappings, every mapped physical block is live in the content model,
// and allocator occupancy equals the distinct mapped blocks — so no
// block is leaked (allocated but unreachable) or double-used. Exposed
// for property tests and the chaos harness; not valid for engines that
// write at identity addresses without allocation (Native, I/O-Dedup).
func (b *Base) CheckConsistency() error {
	if err := b.Alloc.CheckInvariants(); err != nil {
		return fmt.Errorf("engine: allocator: %w", err)
	}
	if err := b.Map.CheckConsistency(); err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	mapped := make(map[alloc.PBA]bool)
	var bad error
	b.Map.Each(func(lba uint64, pba alloc.PBA, _ bool) bool {
		if alloc.IsRemote(pba) {
			// the block lives on the owning shard; the serving
			// layer's cross-shard audit covers these
			return true
		}
		if _, ok := b.Store.Read(pba); !ok {
			bad = fmt.Errorf("engine: lba %d maps to dead block %d", lba, pba)
			return false
		}
		mapped[pba] = true
		return true
	})
	if bad != nil {
		return bad
	}
	// Pinned blocks survive with zero local references (cross-shard
	// canonicals on parole), so occupancy is the union of mapped and
	// pinned blocks.
	b.Map.EachPinned(func(pba alloc.PBA, _ int) bool {
		if alloc.IsRemote(pba) {
			bad = fmt.Errorf("engine: remote-encoded reference %d carries local pins", pba)
			return false
		}
		if _, ok := b.Store.Read(pba); !ok {
			bad = fmt.Errorf("engine: pinned block %d is dead in the content model", pba)
			return false
		}
		mapped[pba] = true
		return true
	})
	if bad != nil {
		return bad
	}
	if uint64(len(mapped)) != b.Alloc.Used() {
		return fmt.Errorf("engine: %d distinct mapped+pinned blocks vs %d allocated (leak or double-use)",
			len(mapped), b.Alloc.Used())
	}
	return nil
}
