// Package globalfp implements the global fingerprint tier: a
// fingerprint-sharded second index that runs beside the LBA-sharded
// serving layer and recovers the cross-shard deduplication the
// LBA split costs (writes removed fell 58.2% → 48.2% at 8 shards
// because each shard's hot index only sees its slice of the content
// stream — EXPERIMENTS.md, ROADMAP open item 1).
//
// The design keeps the inline write path shard-local and lock-free:
//
//   - Shards publish (fingerprint, shard, PBA) advertisements over
//     bounded per-partition queues. Publication is fire-and-forget —
//     a full queue drops the ad (counted), it never blocks a request.
//   - Tier workers land ads on fingerprint-partitioned probe.Map
//     tables. The first advertisement of a fingerprint registers its
//     block as the canonical copy and asks the owning shard to grant
//     index hints to every other shard; a later advertisement from a
//     different shard is a detected cross-shard duplicate and emits a
//     targeted remap candidate for the advertiser's copy.
//   - Each shard's background actor (Agent, wrapping the bgdedup
//     scanner) consumes grants and candidates in virtual time from the
//     engine's per-request Tick: hints install fp → remote-canonical
//     bindings into the local hot index (so the shard's next write of
//     that content deduplicates inline against the peer's copy), and
//     candidates fold existing local duplicates through the bgdedup
//     revalidated-merge path (re-read, re-hash, journaled Map.Set,
//     refcount handoff) — so a stale advertisement is harmless by
//     construction.
//
// Correctness hangs on one invariant: a remote-encoded mapping may
// only reference a canonical block its owner holds pinned, and the
// owner never frees or mutates a pinned block. Grants are issued by
// the owner after pinning (the "hinted" pin); every shard reports its
// 0↔1 local-reference transitions (RefUp/RefDown → one ref pin per
// referencing shard); and a canonical whose local references vanished
// while pinned goes on parole, triggering a recall: the tier drops its
// table entry and broadcasts a revoke, every shard purges the hint and
// acks, and the owner releases the hinted pin once all acks are in —
// freeing the block unless ref pins remain. In-process delivery is a
// single FIFO per receiving shard in real send order, which gives the
// grant-before-revoke and RefUp-before-ack orderings the protocol
// needs.
//
// Shards are individual failure domains. Every shard carries a
// monotonic epoch, bumped when the shard crashes; every control
// message and advertisement is stamped with its sender's epoch, and
// receivers drop (and count) anything stamped with an epoch that is no
// longer the sender's current one — the fencing that makes messages
// from a shard's previous life harmless. A recall waiting on a peer
// whose epoch moved treats that peer's ack as implicitly granted
// (recall timeout): the dead peer cannot hold a hint, and any remote
// reference it journaled is re-audited by the RecoverLoad/RecoverFinish
// remote-reference scan when it rejoins. A crash drops only the dead
// shard's advertisements and pins from the tier tables (partial reset);
// the survivors' entries stay live. See DESIGN.md §12.
//
// The tier itself is volatile: on CrashAndRecover it is rebuilt from
// the shard indexes — remote mappings recover through the journaled
// Map.Set path, the serving layer re-pins canonicals from the union of
// recovered maps, and the fingerprint tables are simply re-learned
// from fresh advertisements. No new journal exists.
package globalfp

import (
	"sync"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
)

// Params tunes the tier; zero values select the defaults.
type Params struct {
	// Partitions is the number of fingerprint partitions, each with
	// its own table, worker goroutine, and ad queue (default 8).
	Partitions int
	// QueueLen is the per-partition advertisement queue capacity;
	// a full queue drops ads rather than block the write path
	// (default 4096).
	QueueLen int
	// FoldsPerTick bounds the remap candidates a shard agent applies
	// per paced fold step; fold I/O beyond the budget waits for the
	// next step or an idle window (default 4). Deliberately small:
	// every fold applied while the shard is still serving converts
	// later reads of that block into flat-latency remote fetches, so
	// eager folding trades read latency for capacity that settlement
	// would reclaim for free after the serving window anyway.
	FoldsPerTick int
	// MsgsPerTick bounds the control messages (grants, pin traffic,
	// revokes) a shard agent processes per engine tick. Control work
	// is pure bookkeeping — no disk I/O — so it is never idle-gated:
	// hints must land while the system is busy or the inline recovery
	// never happens (default 256).
	MsgsPerTick int
}

func (p Params) withDefaults() Params {
	if p.Partitions == 0 {
		p.Partitions = 8
	}
	if p.QueueLen == 0 {
		p.QueueLen = 4096
	}
	if p.FoldsPerTick == 0 {
		p.FoldsPerTick = 4
	}
	if p.MsgsPerTick == 0 {
		p.MsgsPerTick = 256
	}
	return p
}

// ad is one published (fingerprint, shard, PBA) advertisement, stamped
// with the advertiser's epoch so a crashed shard's in-flight ads are
// fenced out instead of re-registering freed canonicals.
type ad struct {
	fp    chunk.Fingerprint
	pba   alloc.PBA
	shard int
	epoch uint32
	fresh bool
}

// msgKind discriminates the shard-to-shard control messages.
type msgKind uint8

const (
	// msgPinReq: tier → owner. Pin the canonical and grant hints to
	// the beneficiary shards; dup names the advertiser's duplicate
	// copy for a targeted fold (hasDup).
	msgPinReq msgKind = iota
	// msgGrant: owner → beneficiary. The canonical is pinned; install
	// the fp → canonical hint and fold any local duplicate.
	msgGrant
	// msgRefUp: beneficiary → owner. First local mapping referencing
	// the canonical appeared; add a ref pin.
	msgRefUp
	// msgRefDown: beneficiary → owner. Last local mapping vanished;
	// drop the ref pin.
	msgRefDown
	// msgRevoke: tier → everyone but the owner. The owner is
	// recalling the canonical; purge the hint and ack.
	msgRevoke
	// msgRevokeAck: shard → owner. Revoke processed.
	msgRevokeAck
)

// message is one entry in a shard's control inbox. Grants, pin
// traffic, revokes, and acks ride reliable (unbounded) queues — unlike
// ads they cannot be dropped without leaking pins. Every message
// carries its sender's shard and epoch; receivers drop messages whose
// epoch is no longer the sender's current one (fencing). Tier-origin
// messages (PinReq from processAd) are stamped with the epoch of the
// shard whose advertisement caused them.
type message struct {
	kind   msgKind
	fp     chunk.Fingerprint
	canon  alloc.PBA // remote-encoded owner+pba
	dup    alloc.PBA // msgPinReq/msgGrant: advertiser's local duplicate
	bene   uint64    // msgPinReq: beneficiary shard bitmask
	from   int       // sending shard (or ad origin for msgPinReq)
	epoch  uint32    // sender's epoch at send time
	hasDup bool
}

// inbox is a shard's reliable control queue: a mutex-guarded slice
// appended to in real send order (the single-process FIFO the protocol
// orderings rely on).
type inbox struct {
	mu sync.Mutex
	q  []message
}

func (in *inbox) push(m message) {
	in.mu.Lock()
	in.q = append(in.q, m)
	in.mu.Unlock()
}

// take moves up to n queued messages into dst (all of them when n < 0).
func (in *inbox) take(dst []message, n int) []message {
	in.mu.Lock()
	k := len(in.q)
	if n >= 0 && k > n {
		k = n
	}
	dst = append(dst, in.q[:k]...)
	in.q = in.q[:copy(in.q, in.q[k:])]
	in.mu.Unlock()
	return dst
}

func (in *inbox) len() int {
	in.mu.Lock()
	n := len(in.q)
	in.mu.Unlock()
	return n
}

func (in *inbox) clear() {
	in.mu.Lock()
	in.q = in.q[:0]
	in.mu.Unlock()
}
