// Per-shard failure-domain tests driven through the exported surface:
// a crash mid-recall, resolved by the virtual-time recall timeout.
package globalfp_test

import (
	"testing"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/sim"
)

// TestRecallRacingCrashReleasesPinAfterTimeout: shard 0 recalls a
// paroled canonical while shard 2 holds an unacked revoke in its inbox;
// shard 2 then crashes. The recall must not wait forever on the dead
// peer — after recallTimeoutVT the sweep treats the moved epoch as an
// implicit grant and the hinted pin (and the block) is finally freed.
func TestRecallRacingCrashReleasesPinAfterTimeout(t *testing.T) {
	c := newCluster(t, 3)
	ids := seq(1300, 4)

	write(t, c.engs[0], 0, 0, ids) // canonicals on shard 0
	c.settle(1000)                 // hints granted to shards 1 and 2
	write(t, c.engs[1], 2000, 0, ids)
	c.settle(3000)

	// Abandon the canonicals: shard 1's overwrite drops its refs, shard
	// 0's overwrite paroles them.
	write(t, c.engs[1], 4000, 0, seq(1400, 4))
	c.settle(5000)
	write(t, c.engs[0], 6000, 0, seq(1500, 4))

	// Drain only the owner: the recalls start (revokes queued at shards
	// 1 and 2) but no ack has been processed yet. Then shard 1 acks;
	// shard 2's revoke stays in its inbox.
	c.agents[0].DrainAll(7000)
	c.agents[1].DrainAll(7000)
	c.agents[0].DrainAll(7000)
	for pba := alloc.PBA(0); pba < 4; pba++ {
		if pins := c.engs[0].Base().Map.PinCount(pba); pins != 1 {
			t.Fatalf("canonical %d holds %d pins mid-recall, want the hinted pin", pba, pins)
		}
	}

	// Shard 2 dies with the revokes unacked. Before the timeout elapses
	// the rounds stay open; after it, the moved epoch is an implicit
	// grant.
	c.tier.CrashShard(2)
	c.agents[0].Tick(8000) // well inside the timeout window
	st := c.agents[0].Stats()
	if st.RecallsDone != 0 {
		t.Fatalf("recall completed %d rounds before the timeout", st.RecallsDone)
	}
	c.agents[0].Tick(7000 + sim.Time(2*sim.Second))

	st = c.agents[0].Stats()
	if st.RecallsSent != 4 || st.RecallsDone != 4 {
		t.Fatalf("recalls sent %d done %d, want 4/4", st.RecallsSent, st.RecallsDone)
	}
	if st.RecallTimeouts != 4 {
		t.Fatalf("recall timeouts = %d, want 4", st.RecallTimeouts)
	}
	for pba := alloc.PBA(0); pba < 4; pba++ {
		if pins := c.engs[0].Base().Map.PinCount(pba); pins != 0 {
			t.Fatalf("canonical %d still holds %d pins after the timeout", pba, pins)
		}
	}
	if used := c.engs[0].UsedBlocks(); used != 4 {
		t.Fatalf("shard 0 uses %d blocks, want 4 (abandoned canonicals freed)", used)
	}

	c.tier.RecoverShard(2)
	c.check(t)
}
