package globalfp

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/probe"
)

// tierEntry is one fingerprint's record: the canonical copy and the
// shards already granted a hint for it (suppresses duplicate-ad
// re-grant storms; fresh advertisements may always re-grant, which is
// how settlement re-advertisement retries faulted folds).
type tierEntry struct {
	canon   alloc.PBA // remote-encoded owner+pba
	granted uint64    // beneficiary shards already granted
}

// partition is one fingerprint partition: its own table, ad queue, and
// worker goroutine, so tier load spreads without a global lock.
type partition struct {
	mu  sync.Mutex
	tbl *probe.Map[chunk.Fingerprint, tierEntry]
	ch  chan ad
}

// Tier is the global fingerprint tier shared by every shard of one
// server: fingerprint-partitioned tables fed by bounded ad queues,
// plus the reliable control inboxes the shard agents drain.
type Tier struct {
	p      Params
	shards int
	parts  []partition
	inbox  []inbox
	agents []*Agent
	wg     sync.WaitGroup

	stopped atomic.Bool

	// Per-shard failure-domain state. epochs[i] is shard i's fencing
	// epoch, bumped by CrashShard; down[i] marks the shard crashed
	// (messages toward it are dropped, it is excluded from beneficiary
	// sets) until RecoverShard clears it.
	epochs []atomic.Uint32
	down   []atomic.Bool

	adsQueued      atomic.Int64
	adsDropped     atomic.Int64
	adsProcessed   atomic.Int64
	dupsDetected   atomic.Int64
	hintsBroadcast atomic.Int64
	tableFixes     atomic.Int64
	recalls        atomic.Int64
	staleDropped   atomic.Int64
	downDropped    atomic.Int64
	crashSweeps    atomic.Int64
}

// NewTier builds the tier for a server of the given shard count and
// starts its partition workers. Beneficiary sets are shard bitmasks,
// so the tier supports 2–64 shards.
func NewTier(shards int, p Params) (*Tier, error) {
	if shards < 2 {
		return nil, fmt.Errorf("globalfp: tier needs at least 2 shards (got %d); a single shard already sees the whole content stream", shards)
	}
	if shards > 64 {
		return nil, fmt.Errorf("globalfp: tier supports at most 64 shards (got %d)", shards)
	}
	p = p.withDefaults()
	t := &Tier{
		p:      p,
		shards: shards,
		parts:  make([]partition, p.Partitions),
		inbox:  make([]inbox, shards),
		agents: make([]*Agent, shards),
		epochs: make([]atomic.Uint32, shards),
		down:   make([]atomic.Bool, shards),
	}
	for i := range t.parts {
		t.parts[i].tbl = probe.NewMap[chunk.Fingerprint, tierEntry](1 << 12)
		t.parts[i].ch = make(chan ad, p.QueueLen)
	}
	for i := range t.parts {
		part := &t.parts[i]
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			for a := range part.ch {
				t.processAd(a)
			}
		}()
	}
	return t, nil
}

// Shards reports the shard count the tier was built for.
func (t *Tier) Shards() int { return t.shards }

// Agent returns the shard's registered agent (nil before Attach).
func (t *Tier) Agent(shard int) *Agent { return t.agents[shard] }

func (t *Tier) register(shard int, a *Agent) {
	if t.agents[shard] != nil {
		panic(fmt.Sprintf("globalfp: shard %d attached twice", shard))
	}
	t.agents[shard] = a
}

func (t *Tier) part(fp chunk.Fingerprint) *partition {
	return &t.parts[binary.LittleEndian.Uint64(fp[:8])%uint64(len(t.parts))]
}

// send delivers a control message to a shard's inbox. Messages toward
// a down shard are dropped (counted): the dead peer cannot process
// them, its inbox is cleared on crash and recovery anyway, and the
// rejoin remote-reference scan is the authoritative re-audit for any
// pin traffic lost this way.
func (t *Tier) send(shard int, m message) {
	if t.down[shard].Load() {
		t.downDropped.Add(1)
		return
	}
	t.inbox[shard].push(m)
}

// Epoch reports a shard's current fencing epoch.
func (t *Tier) Epoch(shard int) uint32 { return t.epochs[shard].Load() }

// Down reports whether a shard is currently marked crashed.
func (t *Tier) Down(shard int) bool { return t.down[shard].Load() }

// downMask is the bitmask of currently-down shards.
func (t *Tier) downMask() uint64 {
	var m uint64
	for i := range t.down {
		if t.down[i].Load() {
			m |= uint64(1) << uint(i)
		}
	}
	return m
}

// Advertise publishes one (fingerprint, shard, PBA) sighting.
// Non-blocking while the tier is serving: a full partition queue drops
// the ad (a lost opportunity, never an error). After Stop —
// settlement re-advertisement — ads are processed synchronously
// instead, so nothing published during drain is lost.
func (t *Tier) Advertise(shard int, fp chunk.Fingerprint, pba alloc.PBA, fresh bool) {
	a := ad{fp: fp, pba: pba, shard: shard, epoch: t.epochs[shard].Load(), fresh: fresh}
	if t.stopped.Load() {
		t.processAd(a)
		return
	}
	select {
	case t.part(fp).ch <- a:
		t.adsQueued.Add(1)
	default:
		t.adsDropped.Add(1)
	}
}

// Stop closes the ad queues and waits for the workers to drain every
// queued advertisement. Subsequent Advertise calls process
// synchronously (settlement).
func (t *Tier) Stop() {
	if t.stopped.Swap(true) {
		return
	}
	for i := range t.parts {
		close(t.parts[i].ch)
	}
	t.wg.Wait()
}

// processAd lands one advertisement on its partition table, emitting
// whatever pin/grant traffic it implies.
func (t *Tier) processAd(a ad) {
	// Fence: an advertisement from a shard's previous life (queued
	// before its crash) must not register a freed block as canonical.
	if a.epoch != t.epochs[a.shard].Load() || t.down[a.shard].Load() {
		t.staleDropped.Add(1)
		return
	}
	t.adsProcessed.Add(1)
	enc := alloc.MakeRemote(a.shard, a.pba)
	p := t.part(a.fp)
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.tbl.Find(a.fp)
	if !ok {
		// First sighting: register the canonical and ask its owner to
		// grant index hints to every other shard — the proactive push
		// that lets a peer's first write of this content deduplicate
		// inline instead of becoming a per-shard duplicate copy.
		// Currently-down shards are excluded from the beneficiary set;
		// they re-learn hints from fresh advertisements after rejoin.
		all := (uint64(1)<<uint(t.shards) - 1) &^ (uint64(1) << uint(a.shard)) &^ t.downMask()
		p.tbl.Put(a.fp, tierEntry{canon: enc, granted: all})
		t.send(a.shard, message{kind: msgPinReq, fp: a.fp, canon: enc, bene: all, from: a.shard, epoch: a.epoch})
		t.hintsBroadcast.Add(1)
		return
	}
	if e.canon == enc {
		return // the canonical advertising itself
	}
	owner, _ := alloc.RemoteParts(e.canon)
	if owner == a.shard {
		// another copy on the canonical's own shard: the local
		// scanner's cursor sweep merges same-shard duplicates
		return
	}
	// Cross-shard duplicate detected: (re-)grant the advertiser a hint
	// with a targeted fold of its copy. Duplicate-hit ads for an
	// already-granted shard are suppressed (the fold is in flight);
	// fresh ads always re-grant, so settlement re-advertisement
	// retries candidates an injected fault aborted.
	bit := uint64(1) << uint(a.shard)
	if !a.fresh && e.granted&bit != 0 {
		return
	}
	t.dupsDetected.Add(1)
	e.granted |= bit
	t.send(owner, message{
		kind: msgPinReq, fp: a.fp, canon: e.canon,
		bene: bit, dup: a.pba, hasDup: true,
		from: a.shard, epoch: a.epoch,
	})
}

// Fix drops a table entry whose canonical failed owner-side validation
// (freed or overwritten before the pin request landed — the stale-ad
// case). The next fresh advertisement re-registers the fingerprint.
func (t *Tier) Fix(fp chunk.Fingerprint, canon alloc.PBA) {
	p := t.part(fp)
	p.mu.Lock()
	if e, ok := p.tbl.Find(fp); ok && e.canon == canon {
		p.tbl.Delete(fp)
	}
	p.mu.Unlock()
	t.tableFixes.Add(1)
}

// Recall starts reclaiming a canonical whose owner paroled it: the
// table entry is dropped and a revoke is broadcast to every other live
// shard. Returns the bitmask of peers whose acks the owner must
// collect before releasing the hinted pin; currently-down peers are
// excluded up front (they hold no hint, and their rejoin re-audit
// covers any reference they journaled before crashing).
func (t *Tier) Recall(fp chunk.Fingerprint, shard int, pba alloc.PBA) uint64 {
	enc := alloc.MakeRemote(shard, pba)
	p := t.part(fp)
	p.mu.Lock()
	if e, ok := p.tbl.Find(fp); ok && e.canon == enc {
		p.tbl.Delete(fp)
	}
	p.mu.Unlock()
	var waiting uint64
	ep := t.epochs[shard].Load()
	for s := 0; s < t.shards; s++ {
		if s == shard || t.down[s].Load() {
			continue
		}
		t.send(s, message{kind: msgRevoke, fp: fp, canon: enc, from: shard, epoch: ep})
		waiting |= uint64(1) << uint(s)
	}
	t.recalls.Add(1)
	return waiting
}

// CrashShard marks shard i a dead failure domain: its fencing epoch is
// bumped (everything it sent in its previous life is now stale), its
// inbox is discarded, and the partition tables drop only its state —
// entries whose canonical it owns are deleted (peers' hints are purged
// by the serving layer), and its bit is cleared from surviving
// entries' granted masks so post-rejoin advertisements re-grant it.
// The survivors' canonicals, pins, and hints stay live. Callers must
// ensure no shard agent is mid-Tick (the serving layer holds every
// shard lock).
func (t *Tier) CrashShard(i int) {
	t.epochs[i].Add(1)
	t.down[i].Store(true)
	t.inbox[i].clear()
	bit := uint64(1) << uint(i)
	var dead []chunk.Fingerprint
	for pi := range t.parts {
		p := &t.parts[pi]
		p.mu.Lock()
		dead = dead[:0]
		p.tbl.Each(func(fp chunk.Fingerprint, e tierEntry) bool {
			if owner, _ := alloc.RemoteParts(e.canon); owner == i {
				dead = append(dead, fp)
			} else if e.granted&bit != 0 {
				e.granted &^= bit
				p.tbl.Put(fp, e)
			}
			return true
		})
		for _, fp := range dead {
			p.tbl.Delete(fp)
		}
		p.mu.Unlock()
	}
	t.crashSweeps.Add(1)
}

// RecoverShard marks shard i live again after the serving layer rebuilt
// its engine state. The inbox is cleared once more (fenced stragglers
// from before the crash carry no information) and the down flag drops,
// so the shard re-enters beneficiary sets and may advertise under its
// new epoch. Idempotent.
func (t *Tier) RecoverShard(i int) {
	t.inbox[i].clear()
	t.down[i].Store(false)
}

// Reset drops all volatile tier state — partition tables and queued
// control messages — after a crash; the serving layer re-pins
// canonicals from the recovered shard maps and the tables are
// re-learned from fresh advertisements (rebuild-on-recover, no new
// journal).
func (t *Tier) Reset() {
	for i := range t.parts {
		p := &t.parts[i]
		p.mu.Lock()
		p.tbl = probe.NewMap[chunk.Fingerprint, tierEntry](1 << 12)
		p.mu.Unlock()
	}
	for i := range t.inbox {
		t.inbox[i].clear()
	}
	for i := range t.down {
		t.down[i].Store(false)
	}
}

// Backlog reports the total queued control messages across all shard
// inboxes (settlement polls it toward zero).
func (t *Tier) Backlog() int {
	n := 0
	for i := range t.inbox {
		n += t.inbox[i].len()
	}
	return n
}

// Counters is a snapshot of the tier's lifetime counters.
type Counters struct {
	AdsQueued, AdsDropped, AdsProcessed int64
	DupsDetected, HintsBroadcast        int64
	TableFixes, Recalls                 int64
	StaleDropped, DownDropped           int64
	CrashSweeps                         int64
	Entries                             int64
}

// Snapshot reads the tier counters and current table size.
func (t *Tier) Snapshot() Counters {
	c := Counters{
		AdsQueued:      t.adsQueued.Load(),
		AdsDropped:     t.adsDropped.Load(),
		AdsProcessed:   t.adsProcessed.Load(),
		DupsDetected:   t.dupsDetected.Load(),
		HintsBroadcast: t.hintsBroadcast.Load(),
		TableFixes:     t.tableFixes.Load(),
		Recalls:        t.recalls.Load(),
		StaleDropped:   t.staleDropped.Load(),
		DownDropped:    t.downDropped.Load(),
		CrashSweeps:    t.crashSweeps.Load(),
	}
	for i := range t.parts {
		p := &t.parts[i]
		p.mu.Lock()
		c.Entries += int64(p.tbl.Len())
		p.mu.Unlock()
	}
	return c
}
