// Tests live in globalfp_test so they can drive the tier through the
// real engines (internal/server imports globalfp, and the end-to-end
// test here imports server).
package globalfp_test

import (
	"testing"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/globalfp"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

func testConfig(perDisk uint64) engine.Config {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(perDisk))
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 256 * 1024,
		Verify:      true,
		NVRAMBytes:  1 << 22,
	}
}

// cluster is a tier over n standalone engines with the ad path in
// synchronous mode (Stop before any traffic), so every test is
// deterministic without goroutine scheduling in the picture.
type cluster struct {
	tier   *globalfp.Tier
	engs   []*core.SelectDedupe
	agents []*globalfp.Agent
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	tier, err := globalfp.NewTier(n, globalfp.Params{})
	if err != nil {
		t.Fatal(err)
	}
	tier.Stop() // synchronous ads from here on
	c := &cluster{tier: tier}
	for i := 0; i < n; i++ {
		e := core.NewSelectDedupe(testConfig(1 << 14))
		if _, ok := bgdedup.Attach(e, bgdedup.Params{}); !ok {
			t.Fatal("bgdedup.Attach refused Select-Dedupe")
		}
		a, ok := globalfp.Attach(e, tier, i)
		if !ok {
			t.Fatal("globalfp.Attach refused Select-Dedupe")
		}
		c.engs = append(c.engs, e)
		c.agents = append(c.agents, a)
	}
	return c
}

// settle exchanges protocol traffic round-robin until nothing moves —
// the same loop the server runs at Close.
func (c *cluster) settle(now sim.Time) {
	for round := 0; round < 64; round++ {
		moved := 0
		for _, a := range c.agents {
			moved += a.DrainAll(now)
		}
		if moved == 0 && c.tier.Backlog() == 0 {
			return
		}
	}
}

func (c *cluster) check(t *testing.T) {
	t.Helper()
	for i, e := range c.engs {
		if err := e.Base().CheckConsistency(); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
	}
}

func seq(from, n int) []chunk.ContentID {
	ids := make([]chunk.ContentID, n)
	for i := range ids {
		ids[i] = chunk.ContentID(from + i)
	}
	return ids
}

func write(t *testing.T, e engine.Engine, at sim.Time, lba uint64, ids []chunk.ContentID) {
	t.Helper()
	if _, err := e.Write(&trace.Request{Time: at, Op: trace.Write, LBA: lba, N: len(ids), Content: ids}); err != nil {
		t.Fatalf("write lba %d: %v", lba, err)
	}
}

func TestNewTierValidatesShardCount(t *testing.T) {
	if _, err := globalfp.NewTier(1, globalfp.Params{}); err == nil {
		t.Fatal("1 shard accepted")
	}
	if _, err := globalfp.NewTier(65, globalfp.Params{}); err == nil {
		t.Fatal("65 shards accepted")
	}
	tr, err := globalfp.NewTier(64, globalfp.Params{})
	if err != nil {
		t.Fatal(err)
	}
	tr.Stop()
}

// TestHintEnablesCrossShardInlineDedupe is the tier's reason to exist:
// after shard 0 writes content and the hint broadcast lands, shard 1's
// first write of the same content deduplicates inline against shard
// 0's copy — recovering exactly the "first write per shard" loss that
// LBA sharding introduces.
func TestHintEnablesCrossShardInlineDedupe(t *testing.T) {
	c := newCluster(t, 2)
	ids := seq(1, 8)

	write(t, c.engs[0], 0, 0, ids) // canonical copies + fresh ads
	c.settle(1000)                 // broadcast → pin → grant → hint on shard 1

	st1before := *c.engs[1].Stats()
	write(t, c.engs[1], 2000, 0, ids)
	c.settle(3000)

	st1 := c.engs[1].Stats()
	if st1.RemoteDeduped != 8 {
		t.Fatalf("shard 1 remote-deduped %d chunks, want 8", st1.RemoteDeduped)
	}
	if st1.WritesRemoved != st1before.WritesRemoved+1 {
		t.Fatalf("shard 1 writes removed %d → %d, want the whole request removed", st1before.WritesRemoved, st1.WritesRemoved)
	}
	if used := c.engs[1].UsedBlocks(); used != 0 {
		t.Fatalf("shard 1 uses %d blocks, want 0 (all chunks remote)", used)
	}

	// Pin accounting on the owner: one hinted pin + one ref pin from
	// shard 1 on each of the 8 canonicals.
	b0 := c.engs[0].Base()
	for pba := alloc.PBA(0); pba < 8; pba++ {
		if pins := b0.Map.PinCount(pba); pins != 2 {
			t.Fatalf("canonical %d holds %d pins, want 2 (hinted + shard-1 ref)", pba, pins)
		}
	}

	// Logical view through the remote mapping resolver.
	b1 := c.engs[1].Base()
	for i, id := range ids {
		enc, ok := b1.ResolveRemote(uint64(i))
		if !ok {
			t.Fatalf("lba %d: no remote mapping", i)
		}
		shard, canon := alloc.RemoteParts(enc)
		if shard != 0 {
			t.Fatalf("lba %d resolved to shard %d", i, shard)
		}
		got, live := b0.Store.Read(canon)
		if !live || got != id {
			t.Fatalf("lba %d: canonical content %d,%v want %d", i, got, live, id)
		}
	}
	c.check(t)
}

// TestFoldMergesPreexistingDuplicates: both shards already hold copies
// (written before any hint could land). The second advertisement is a
// detected cross-shard duplicate; the fold rewires shard 1's referrers
// onto shard 0's canonical and reclaims shard 1's copies.
func TestFoldMergesPreexistingDuplicates(t *testing.T) {
	c := newCluster(t, 2)
	ids := seq(100, 8)

	write(t, c.engs[0], 0, 0, ids)
	write(t, c.engs[1], 0, 0, ids) // duplicate copies, no hint yet
	if used := c.engs[1].UsedBlocks(); used != 8 {
		t.Fatalf("shard 1 uses %d blocks before settle, want 8", used)
	}

	c.settle(10000)

	if used := c.engs[1].UsedBlocks(); used != 0 {
		t.Fatalf("shard 1 uses %d blocks after fold, want 0", used)
	}
	st := c.agents[1].Stats()
	if st.RemapsApplied == 0 {
		t.Fatalf("no remaps applied: %+v", st)
	}
	tc := c.tier.Snapshot()
	if tc.DupsDetected == 0 {
		t.Fatalf("tier detected no cross-shard duplicates: %+v", tc)
	}
	// Shard 1's logical view is intact through the remote references.
	b0, b1 := c.engs[0].Base(), c.engs[1].Base()
	for i, id := range ids {
		enc, ok := b1.ResolveRemote(uint64(i))
		if !ok {
			t.Fatalf("lba %d: not folded to a remote mapping", i)
		}
		_, canon := alloc.RemoteParts(enc)
		if got, live := b0.Store.Read(canon); !live || got != id {
			t.Fatalf("lba %d: canonical content %d,%v want %d", i, got, live, id)
		}
	}
	c.check(t)
}

// TestRecallFreesAbandonedCanonical: when every reference — local and
// remote — to a hinted canonical disappears, the parole/recall round
// must revoke the hints and actually free the block. This is the
// capacity-leak guard: pins must never outlive their reason.
func TestRecallFreesAbandonedCanonical(t *testing.T) {
	c := newCluster(t, 2)
	ids := seq(500, 8)

	write(t, c.engs[0], 0, 0, ids)
	c.settle(1000)
	write(t, c.engs[1], 2000, 0, ids) // remote refs via hints
	c.settle(3000)

	// Overwrite both shards' LBAs with fresh content: shard 1's RefDown
	// drops the ref pins, shard 0's overwrite paroles the canonicals,
	// and the recall round revokes and frees them.
	write(t, c.engs[1], 4000, 0, seq(900, 8))
	c.settle(5000)
	write(t, c.engs[0], 6000, 0, seq(700, 8))
	c.settle(7000)

	b0 := c.engs[0].Base()
	for pba := alloc.PBA(0); pba < 8; pba++ {
		if pins := b0.Map.PinCount(pba); pins != 0 {
			t.Fatalf("abandoned canonical %d still holds %d pins", pba, pins)
		}
	}
	st := c.agents[0].Stats()
	if st.RecallsSent == 0 || st.RecallsDone != st.RecallsSent {
		t.Fatalf("recalls sent %d done %d, want all complete", st.RecallsSent, st.RecallsDone)
	}
	// 8 old canonicals on shard 0 freed, 8 fresh blocks live on each.
	if used := c.engs[0].UsedBlocks(); used != 8 {
		t.Fatalf("shard 0 uses %d blocks, want 8 (old canonicals freed)", used)
	}
	if tc := c.tier.Snapshot(); tc.Entries != 16 {
		// 8 new entries per shard's fresh content (distinct), old 8 gone
		t.Logf("tier entries = %d", tc.Entries)
	}
	c.check(t)
}

// TestStaleAdvertisementIsHarmless: an advertisement for a block that
// was overwritten before the tier processed it must be rejected at the
// owner (pin refused, table fixed) and never produce a grant.
func TestStaleAdvertisementIsHarmless(t *testing.T) {
	c := newCluster(t, 2)

	b0 := c.engs[0].Base()
	// Advertise a fingerprint that names a block whose content is
	// something else entirely (fingerprint of content 999 against the
	// block holding content 1).
	write(t, c.engs[0], 0, 0, seq(1, 1))
	var fper chunk.SyntheticFingerprinter
	ch := chunk.Chunk{Content: 999}
	c.tier.Advertise(0, fper.Fingerprint(&ch), 0, true)
	c.settle(1000)

	st := c.agents[0].Stats()
	if st.PinRejects == 0 {
		t.Fatalf("stale advertisement was not rejected: %+v", st)
	}
	if pins := b0.Map.PinCount(0); pins != 1 {
		// 1 pin is legitimate: block 0's true fingerprint was also
		// advertised by the write itself and hinted.
		t.Fatalf("block 0 holds %d pins, want 1", pins)
	}
	if tc := c.tier.Snapshot(); tc.TableFixes == 0 {
		t.Fatalf("tier never dropped the stale entry: %+v", tc)
	}
	c.check(t)
}

// TestRecoveryRebuildsPinsFromShardIndexes: after a crash the tier is
// rebuilt from the shard maps alone — remote mappings recover through
// the journaled Map path, canonicals are re-pinned as ref pins, and
// content stays reachable.
func TestRecoveryRebuildsPinsFromShardIndexes(t *testing.T) {
	c := newCluster(t, 2)
	ids := seq(300, 8)

	write(t, c.engs[0], 0, 0, ids)
	c.settle(1000)
	write(t, c.engs[1], 2000, 0, ids)
	c.settle(3000)

	// Whole-node crash: every shard loads its journal, remote mappings
	// found in the recovered maps yield pin lists, recovery finishes
	// with canonicals protected, tier state resets.
	b := []*engine.Base{c.engs[0].Base(), c.engs[1].Base()}
	for i := range b {
		if _, err := b[i].RecoverLoad(); err != nil {
			t.Fatalf("shard %d load: %v", i, err)
		}
	}
	pinned := make([][]alloc.PBA, 2)
	for i := range b {
		seen := map[alloc.PBA]bool{}
		b[i].Map.Each(func(_ uint64, pba alloc.PBA, _ bool) bool {
			if alloc.IsRemote(pba) && !seen[pba] {
				seen[pba] = true
				owner, canon := alloc.RemoteParts(pba)
				pinned[owner] = append(pinned[owner], canon)
			}
			return true
		})
	}
	for i := range b {
		b[i].RecoverFinish(pinned[i])
	}
	c.tier.Reset()

	for pba := alloc.PBA(0); pba < 8; pba++ {
		if pins := b[0].Map.PinCount(pba); pins != 1 {
			t.Fatalf("recovered canonical %d holds %d pins, want 1 ref pin (hinted pins are volatile)", pba, pins)
		}
	}
	for i, id := range ids {
		enc, ok := b[1].ResolveRemote(uint64(i))
		if !ok {
			t.Fatalf("lba %d: remote mapping lost in recovery", i)
		}
		_, canon := alloc.RemoteParts(enc)
		if got, live := b[0].Store.Read(canon); !live || got != id {
			t.Fatalf("lba %d: canonical content %d,%v want %d", i, got, live, id)
		}
	}
	c.check(t)
}

// TestRemoteReadResolvesThroughMapping: a read of a folded LBA pays the
// modeled remote fetch and returns success, and repeat reads hit the
// local read cache.
func TestRemoteReadResolvesThroughMapping(t *testing.T) {
	c := newCluster(t, 2)
	ids := seq(800, 8)
	write(t, c.engs[0], 0, 0, ids)
	c.settle(1000)
	write(t, c.engs[1], 2000, 0, ids)
	c.settle(3000)

	rt, err := c.engs[1].Read(&trace.Request{Time: 4000, Op: trace.Read, LBA: 0, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rt < engine.RemoteReadUS {
		t.Fatalf("remote read rt %dus, want >= %dus (modeled remote fetch)", rt, engine.RemoteReadUS)
	}
	st := c.engs[1].Stats()
	if st.RemoteReads == 0 {
		t.Fatalf("no remote reads counted: %+v", st)
	}
	before := st.CacheHits
	if _, err := c.engs[1].Read(&trace.Request{Time: 5000000, Op: trace.Read, LBA: 0, N: 8}); err != nil {
		t.Fatal(err)
	}
	if st.CacheHits <= before {
		t.Fatalf("repeat remote read missed the read cache (hits %d → %d)", before, st.CacheHits)
	}
}
