package globalfp

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/sim"
)

// foldMaxBacklog gates fold I/O the way the scanner gates sweeps: remap
// candidates wait while more than this much queued disk work is ahead
// of them, so folding never inflates foreground sojourn.
const foldMaxBacklog = 2 * sim.Millisecond

// foldStepInterval paces fold steps in virtual time. The backlog gate
// alone is not enough under sustained load: between back-to-back
// requests the disk queue momentarily looks drained, and an ungated
// agent would slot a revalidation read into every such gap — tens of
// thousands of injected I/Os that foreground requests then queue
// behind. One budgeted step per interval bounds fold I/O to a few
// percent of disk time; whatever is still queued at Close settles
// after the serving window, where it costs no sojourn at all.
const foldStepInterval = 200 * sim.Millisecond

// paroleBudget bounds recalls started per fold step.
const paroleBudget = 16

// recallTimeoutVT is the virtual-time recall timeout: a recall still
// waiting on a peer after this long re-checks the peer's epoch, and an
// epoch that moved (the peer crashed since the revoke was sent) turns
// that peer's ack into an implicit grant — a dead shard holds no hint,
// and any remote reference it journaled before dying is re-audited by
// the rejoin remote-reference scan. Live peers with unchanged epochs
// are still waited on indefinitely: their acks are reliably delivered.
const recallTimeoutVT = 500 * sim.Millisecond

// fper is stateless; see bgdedup for why synthetic fingerprints are
// always safe off the write path.
var fper chunk.SyntheticFingerprinter

// foldReq is one queued remap candidate: fold the local duplicate dup
// onto the remote canonical the hint for fp names.
type foldReq struct {
	dup   alloc.PBA
	fp    chunk.Fingerprint
	canon alloc.PBA
}

// recallState tracks one in-flight revoke round: the bitmask of peers
// whose acks are still outstanding, each peer's epoch at revoke-send
// time (the implicit-grant comparison point), and when the round
// started (the timeout clock).
type recallState struct {
	waiting uint64
	epochs  []uint32 // indexed by shard; valid only at waiting bits
	started sim.Time
}

// Agent is a shard's endpoint of the global fingerprint tier: an
// engine.BackgroundTask wrapping the shard's bgdedup scanner (the tier
// requires background dedup — candidates apply through its revalidated
// merge path). It publishes the shard's advertisements, drains the
// shard's control inbox every tick (never idle-gated: hints must land
// under load), applies budgeted remap folds in idle windows, and runs
// the owner-side pin/parole/recall protocol.
//
// All agent state is guarded by the shard lock: every entry point —
// Tick/Flush via the engine, OnRemoteRef/OnParole via the Base hooks,
// settlement via the server — runs with the shard's mutex held. Tier
// calls made from here (Advertise, Fix, Recall) take partition locks,
// never shard locks, so the shard → partition lock order is acyclic.
type Agent struct {
	b     *engine.Base
	t     *Tier
	shard int
	inner engine.BackgroundTask
	core  *bgdedup.Core

	foldQ     []foldReq
	nextFold  sim.Time
	paroleQ   []alloc.PBA
	recalling map[alloc.PBA]*recallState // local canonical → revoke round
	hinted    []uint64                   // bitset: local blocks holding the hinted pin
	msgBuf    []message                  // inbox drain scratch
	freeBuf   [1]alloc.PBA

	hintsInstalled int64
	remapsApplied  int64
	remapsRejected int64
	reclaimed      int64
	pinsGranted    int64
	pinRejects     int64
	refPins        int64
	refUnpins      int64
	recallsSent    int64
	recallsDone    int64
	recallTimeouts int64
	staleDropped   int64
}

// Attach wires a shard agent onto any engine that exposes its substrate
// (Select-Dedupe and POD); ok is false for engines without one. The
// shard's scanner must already be attached — the agent wraps it; a
// missing scanner gets a Core of its own (tests), losing only the
// cursor sweep.
func Attach(e engine.Engine, t *Tier, shard int) (*Agent, bool) {
	h, ok := e.(interface{ Base() *engine.Base })
	if !ok {
		return nil, false
	}
	return New(h.Base(), t, shard), true
}

// New builds the agent, interposes it as the engine's background task
// and advertisement sink, and registers its gauges.
func New(b *engine.Base, t *Tier, shard int) *Agent {
	a := &Agent{
		b: b, t: t, shard: shard,
		inner:     b.Background(),
		recalling: make(map[alloc.PBA]*recallState),
		hinted:    make([]uint64, (b.DataBlocks()+63)/64),
	}
	if s, ok := a.inner.(*bgdedup.Scanner); ok {
		a.core = s.Core() // shared counters: folds show in bgdedup gauges too
	} else {
		a.core = bgdedup.NewCore(b)
	}
	b.SetBackground(a)
	b.Ads = a
	b.OnRemoteRef = a.onRemoteRef
	b.SetOnParole(a.onParole)
	t.register(shard, a)

	b.Reg.GaugeFunc("globalfp_hints_installed", func() int64 { return a.hintsInstalled })
	b.Reg.GaugeFunc("globalfp_remaps_applied", func() int64 { return a.remapsApplied })
	b.Reg.GaugeFunc("globalfp_remaps_rejected", func() int64 { return a.remapsRejected })
	b.Reg.GaugeFunc("globalfp_reclaimed_blocks", func() int64 { return a.reclaimed })
	b.Reg.GaugeFunc("globalfp_pins_granted", func() int64 { return a.pinsGranted })
	b.Reg.GaugeFunc("globalfp_pin_rejects", func() int64 { return a.pinRejects })
	b.Reg.GaugeFunc("globalfp_ref_pins", func() int64 { return a.refPins })
	b.Reg.GaugeFunc("globalfp_ref_unpins", func() int64 { return a.refUnpins })
	b.Reg.GaugeFunc("globalfp_recalls_sent", func() int64 { return a.recallsSent })
	b.Reg.GaugeFunc("globalfp_recalls_done", func() int64 { return a.recallsDone })
	b.Reg.GaugeFunc("globalfp_recall_timeouts", func() int64 { return a.recallTimeouts })
	b.Reg.GaugeFunc("globalfp_fold_backlog", func() int64 { return int64(len(a.foldQ)) })
	return a
}

func (a *Agent) hintedTest(pba alloc.PBA) bool {
	return a.hinted[pba>>6]&(1<<(uint(pba)&63)) != 0
}
func (a *Agent) hintedSet(pba alloc.PBA)   { a.hinted[pba>>6] |= 1 << (uint(pba) & 63) }
func (a *Agent) hintedClear(pba alloc.PBA) { a.hinted[pba>>6] &^= 1 << (uint(pba) & 63) }

// Advertise implements engine.AdSink: the engine's write path publishes
// through the agent so the shard number rides along.
func (a *Agent) Advertise(fp chunk.Fingerprint, pba alloc.PBA, fresh bool) {
	a.t.Advertise(a.shard, fp, pba, fresh)
}

// onRemoteRef reports this shard's 0↔1 reference transitions on a
// remote canonical to its owner (the ref-pin half of the pin
// invariant). Fired by Base.SetRemoteRef and Base.FreeBlocks.
func (a *Agent) onRemoteRef(c alloc.PBA, up bool) {
	owner, _ := alloc.RemoteParts(c)
	kind := msgRefDown
	if up {
		kind = msgRefUp
	}
	a.t.send(owner, message{kind: kind, canon: c, from: a.shard, epoch: a.t.Epoch(a.shard)})
}

// onParole queues a hinted canonical whose last local reference
// disappeared; recall decides later (the block may be re-referenced
// before the parole budget reaches it, making the entry a no-op).
func (a *Agent) onParole(pba alloc.PBA) {
	if a.hintedTest(pba) {
		a.paroleQ = append(a.paroleQ, pba)
	}
}

// Tick implements engine.BackgroundTask. Control-message processing is
// deliberately unconditional: it is pure bookkeeping (no disk I/O), and
// deferring it to idle windows would delay hint installation past the
// very writes the hints exist to deduplicate. Fold I/O and recalls run
// one budgeted step per foldStepInterval, and only in (near-)idle disk
// windows — the scanner's pacing discipline; the wrapped scanner gets
// the tail of the tick.
func (a *Agent) Tick(now sim.Time) {
	a.drainMsgs(now, a.t.p.MsgsPerTick)
	if now >= a.nextFold {
		if a.b.Array.Backlog(now) > foldMaxBacklog {
			a.nextFold = now.Add(foldStepInterval / 4)
		} else {
			a.nextFold = now.Add(foldStepInterval)
			a.applyFolds(now, a.t.p.FoldsPerTick)
			a.processParole(now, paroleBudget)
			a.sweepRecalls(now, false)
		}
	}
	if a.inner != nil {
		a.inner.Tick(now)
	}
}

// Flush implements engine.BackgroundTask: converge the wrapped scanner,
// then drain every queued message, fold, and parole to quiescence.
func (a *Agent) Flush(now sim.Time) {
	if a.inner != nil {
		a.inner.Flush(now)
	}
	a.DrainAll(now)
}

// RecoverReset implements engine.BackgroundTask: all agent state is
// volatile DRAM bookkeeping — queued folds, paroles, in-flight recalls,
// and the hinted bitset die with the crash. Post-recovery pins are
// rebuilt by the serving layer as ref pins only; the hinted pins are
// simply gone, consistent with their table entries (tier.Reset).
func (a *Agent) RecoverReset() {
	a.foldQ = a.foldQ[:0]
	a.paroleQ = a.paroleQ[:0]
	for k := range a.recalling {
		delete(a.recalling, k)
	}
	a.hinted = make([]uint64, (a.b.DataBlocks()+63)/64)
	if a.inner != nil {
		a.inner.RecoverReset()
	}
}

// DrainAll processes everything currently queued — messages, folds,
// paroles — without budgets or idle gates, repeating until nothing
// moves. Returns the number of items processed; settlement loops over
// all shards until a full round moves nothing.
func (a *Agent) DrainAll(now sim.Time) int {
	total := 0
	for {
		n := a.drainMsgs(now, -1)
		n += a.applyFolds(now, -1)
		n += a.processParole(now, -1)
		n += a.sweepRecalls(now, true)
		total += n
		if n == 0 {
			return total
		}
	}
}

// ReAdvertise republishes every distinct live, referenced local block —
// the settlement pass that retries fold candidates dropped under load
// (full ad queues) or aborted by injected faults. Only meaningful after
// Tier.Stop, when advertisements process synchronously.
func (a *Agent) ReAdvertise() {
	visited := make([]uint64, len(a.hinted))
	a.b.Map.Each(func(_ uint64, pba alloc.PBA, _ bool) bool {
		if alloc.IsRemote(pba) {
			return true
		}
		w, bit := pba>>6, uint64(1)<<(uint(pba)&63)
		if visited[w]&bit != 0 {
			return true
		}
		visited[w] |= bit
		id, ok := a.b.Store.Read(pba)
		if !ok {
			return true
		}
		ch := chunk.Chunk{Content: id}
		a.t.Advertise(a.shard, fper.Fingerprint(&ch), pba, true)
		return true
	})
}

// drainMsgs handles up to budget queued control messages (all when
// budget < 0) and returns the number handled.
func (a *Agent) drainMsgs(now sim.Time, budget int) int {
	a.msgBuf = a.t.inbox[a.shard].take(a.msgBuf[:0], budget)
	for _, m := range a.msgBuf {
		a.handle(now, m)
	}
	return len(a.msgBuf)
}

func (a *Agent) handle(now sim.Time, m message) {
	// Fence: drop anything stamped with an epoch that is no longer the
	// sender's current one — a message from the sender's previous life
	// (a grant issued before its crash, a pin request for an ad it
	// queued before dying). RefUp/RefDown are exempt: they mirror the
	// sender's journaled (crash-durable) reference transitions, which
	// the crash does not undo — fencing them would desynchronize this
	// shard's pin counts from references that survive the sender's
	// recovery verbatim. (Every transition is journaled and sent under
	// one lock hold, so a queued ref message is always backed by a
	// durable state change.)
	if m.epoch != a.t.Epoch(m.from) && m.kind != msgRefUp && m.kind != msgRefDown {
		a.staleDropped++
		a.t.staleDropped.Add(1)
		return
	}
	switch m.kind {
	case msgPinReq:
		a.handlePinReq(m)
	case msgGrant:
		a.handleGrant(m)
	case msgRefUp:
		_, local := alloc.RemoteParts(m.canon)
		a.b.Map.Pin(local)
		a.refPins++
	case msgRefDown:
		_, local := alloc.RemoteParts(m.canon)
		a.refUnpins++
		if a.b.Map.Unpin(local) {
			a.freeLocal(local)
		}
	case msgRevoke:
		// Purge the hint binding (and any cached read of the remote
		// block) so no new references form, then ack. Existing remote
		// mappings stay valid: this shard's ref pin holds the block.
		a.b.IC.PurgePBA(m.canon)
		owner, _ := alloc.RemoteParts(m.canon)
		a.t.send(owner, message{kind: msgRevokeAck, canon: m.canon, from: a.shard, epoch: a.t.Epoch(a.shard)})
	case msgRevokeAck:
		a.handleRevokeAck(m)
	}
}

// handlePinReq is the owner side of a grant: validate the canonical
// against live local state (the advertisement may be arbitrarily
// stale), take the one hinted pin, and grant every beneficiary.
func (a *Agent) handlePinReq(m message) {
	_, local := alloc.RemoteParts(m.canon)
	if !a.validCanonical(local, m.fp) {
		a.pinRejects++
		a.t.Fix(m.fp, m.canon)
		return
	}
	if !a.hintedTest(local) {
		a.hintedSet(local)
		a.b.Map.Pin(local)
		a.pinsGranted++
	}
	for s := 0; s < a.t.shards; s++ {
		if m.bene&(uint64(1)<<uint(s)) == 0 {
			continue
		}
		a.t.send(s, message{
			kind: msgGrant, fp: m.fp, canon: m.canon,
			dup: m.dup, hasDup: m.hasDup,
			from: a.shard, epoch: a.t.Epoch(a.shard),
		})
	}
}

// validCanonical checks that the local block still is what the
// advertisement claimed: live, holding content with the advertised
// fingerprint, still referenced (or already pinned), and not mid-recall.
func (a *Agent) validCanonical(local alloc.PBA, fp chunk.Fingerprint) bool {
	id, ok := a.b.Store.Read(local)
	if !ok {
		return false
	}
	ch := chunk.Chunk{Content: id}
	if fper.Fingerprint(&ch) != fp {
		return false
	}
	if a.b.Map.RefCount(local) == 0 && !a.b.Map.Pinned(local) {
		return false
	}
	if _, mid := a.recalling[local]; mid {
		return false
	}
	return true
}

// handleGrant is the beneficiary side: install the fp → canonical hint
// into the hot index and queue a fold of any local duplicate — the
// targeted copy a duplicate-hit ad named, or whatever local block the
// index previously bound this fingerprint to.
func (a *Agent) handleGrant(m message) {
	dup, hasDup := m.dup, m.hasDup
	if !hasDup {
		if e, ok := a.b.IC.IndexPeek(m.fp); ok && !alloc.IsRemote(e.PBA) {
			dup, hasDup = e.PBA, true
		}
	}
	a.b.IC.IndexInsert(m.fp, m.canon)
	a.hintsInstalled++
	if hasDup {
		a.foldQ = append(a.foldQ, foldReq{dup: dup, fp: m.fp, canon: m.canon})
	}
}

// handleRevokeAck clears the sender's bit in a revoke round; the last
// ack releases the hinted pin, freeing the block unless ref pins (or a
// revived local reference) still hold it. A RefUp that raced the
// recall has already been processed — same-sender FIFO — so its pin
// survives the release. Bit-clearing (rather than a countdown) makes a
// duplicate ack harmless.
func (a *Agent) handleRevokeAck(m message) {
	_, local := alloc.RemoteParts(m.canon)
	st, ok := a.recalling[local]
	if !ok {
		return
	}
	st.waiting &^= uint64(1) << uint(m.from)
	if st.waiting != 0 {
		return
	}
	a.finishRecall(local)
}

// finishRecall completes a revoke round whose last outstanding ack
// just arrived (explicitly or implicitly).
func (a *Agent) finishRecall(local alloc.PBA) {
	delete(a.recalling, local)
	a.recallsDone++
	if a.hintedTest(local) {
		a.hintedClear(local)
		if a.b.Map.Unpin(local) {
			a.freeLocal(local)
		}
	}
}

// sweepRecalls applies the recall timeout: rounds older than
// recallTimeoutVT (every round when force — settlement must converge
// even mid-outage) re-check each outstanding peer's epoch, and a peer
// whose epoch moved since the revoke was sent is implicitly granted —
// it crashed, its inbox (revoke included) was discarded, and it will
// never ack. Returns the number of implicit grants applied.
func (a *Agent) sweepRecalls(now sim.Time, force bool) int {
	if len(a.recalling) == 0 {
		return 0
	}
	granted := 0
	for local, st := range a.recalling {
		if !force && now < st.started.Add(recallTimeoutVT) {
			continue
		}
		timedOut := false
		for s := 0; s < a.t.shards; s++ {
			bit := uint64(1) << uint(s)
			if st.waiting&bit == 0 {
				continue
			}
			if a.t.Epoch(s) != st.epochs[s] {
				st.waiting &^= bit
				granted++
				timedOut = true
			}
		}
		if timedOut {
			a.recallTimeouts++
		}
		if st.waiting == 0 {
			a.finishRecall(local)
		}
	}
	return granted
}

// applyFolds applies up to budget queued remap candidates (all when
// budget < 0) and returns the number consumed. Order is irrelevant —
// candidates touch disjoint duplicates — so the queue drains from the
// tail.
func (a *Agent) applyFolds(now sim.Time, budget int) int {
	n := 0
	for (budget < 0 || n < budget) && len(a.foldQ) > 0 {
		f := a.foldQ[len(a.foldQ)-1]
		a.foldQ = a.foldQ[:len(a.foldQ)-1]
		n++
		// The hint must still be the index's live binding: a revoke or
		// eviction since enqueue invalidates the candidate.
		if e, ok := a.b.IC.IndexPeek(f.fp); !ok || e.PBA != f.canon {
			a.remapsRejected++
			continue
		}
		if remapped, reclaimed, ok := a.core.FoldRemote(now, f.dup, f.fp, f.canon); ok {
			a.remapsApplied++
			a.reclaimed += int64(reclaimed)
			_ = remapped
		} else {
			a.remapsRejected++
		}
	}
	return n
}

// processParole starts recalls for up to budget paroled canonicals (all
// when budget < 0) and returns the queue entries consumed. Entries are
// re-validated: a block re-referenced, already recalled, or freed since
// parole is skipped. Each round snapshots the peers' epochs at send
// time — sweepRecalls' implicit-grant comparison point. The snapshot
// cannot race a crash: recalls run under the shard lock and
// Server.CrashShard holds every shard lock while epochs move.
func (a *Agent) processParole(now sim.Time, budget int) int {
	n := 0
	for (budget < 0 || n < budget) && len(a.paroleQ) > 0 {
		pba := a.paroleQ[len(a.paroleQ)-1]
		a.paroleQ = a.paroleQ[:len(a.paroleQ)-1]
		n++
		if !a.hintedTest(pba) {
			continue
		}
		if _, mid := a.recalling[pba]; mid {
			continue
		}
		if a.b.Map.RefCount(pba) > 0 {
			continue
		}
		id, ok := a.b.Store.Read(pba)
		if !ok {
			continue
		}
		ch := chunk.Chunk{Content: id}
		waiting := a.t.Recall(fper.Fingerprint(&ch), a.shard, pba)
		a.recallsSent++
		epochs := make([]uint32, a.t.shards)
		for s := range epochs {
			epochs[s] = a.t.Epoch(s)
		}
		st := &recallState{waiting: waiting, epochs: epochs, started: now}
		if waiting == 0 {
			// Every peer was down at send time: complete immediately.
			a.recalling[pba] = st
			a.finishRecall(pba)
			continue
		}
		a.recalling[pba] = st
	}
	return n
}

func (a *Agent) freeLocal(pba alloc.PBA) {
	a.freeBuf[0] = pba
	a.b.FreeBlocks(a.freeBuf[:])
}

// AgentStats is a snapshot of one agent's lifetime counters.
type AgentStats struct {
	HintsInstalled int64
	RemapsApplied  int64
	RemapsRejected int64
	Reclaimed      int64
	PinsGranted    int64
	PinRejects     int64
	RecallsSent    int64
	RecallsDone    int64
	RecallTimeouts int64
	StaleDropped   int64
}

// Stats snapshots the agent's counters; call with the shard lock held
// (the server's merged snapshot path already does).
func (a *Agent) Stats() AgentStats {
	return AgentStats{
		HintsInstalled: a.hintsInstalled,
		RemapsApplied:  a.remapsApplied,
		RemapsRejected: a.remapsRejected,
		Reclaimed:      a.reclaimed,
		PinsGranted:    a.pinsGranted,
		PinRejects:     a.pinRejects,
		RecallsSent:    a.recallsSent,
		RecallsDone:    a.recallsDone,
		RecallTimeouts: a.recallTimeouts,
		StaleDropped:   a.staleDropped,
	}
}
