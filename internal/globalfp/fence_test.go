// Internal-package tests for the epoch fence: they craft raw protocol
// messages (stale stamps a live sender can no longer produce) and
// inject them directly, which the exported surface deliberately makes
// impossible.
package globalfp

import (
	"testing"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
)

func fenceConfig() engine.Config {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(1 << 14))
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 256 * 1024,
		Verify:      true,
		NVRAMBytes:  1 << 22,
	}
}

// fenceCluster builds a stopped (synchronous-ad) tier over n engines
// with direct access to the agents' internals.
func fenceCluster(t *testing.T, n int) (*Tier, []*Agent) {
	t.Helper()
	tier, err := NewTier(n, Params{})
	if err != nil {
		t.Fatal(err)
	}
	tier.Stop()
	agents := make([]*Agent, n)
	for i := 0; i < n; i++ {
		e := core.NewSelectDedupe(fenceConfig())
		if _, ok := bgdedup.Attach(e, bgdedup.Params{}); !ok {
			t.Fatal("bgdedup.Attach refused Select-Dedupe")
		}
		a, ok := Attach(e, tier, i)
		if !ok {
			t.Fatal("globalfp.Attach refused Select-Dedupe")
		}
		agents[i] = a
	}
	return tier, agents
}

// TestStaleEpochGrantDroppedAfterRejoin: a grant shard 1 issued before
// crashing (stamped with its previous epoch) must be dropped and
// counted when it surfaces after the rejoin — installing it would bind
// a fingerprint to a block the dead incarnation may have freed. The
// same grant under the current epoch lands normally.
func TestStaleEpochGrantDroppedAfterRejoin(t *testing.T) {
	tier, agents := fenceCluster(t, 2)
	tier.CrashShard(1)
	tier.RecoverShard(1)
	if got := tier.Epoch(1); got != 1 {
		t.Fatalf("shard 1 epoch %d after crash, want 1", got)
	}

	var fper chunk.SyntheticFingerprinter
	ch := chunk.Chunk{Content: 4242}
	fp := fper.Fingerprint(&ch)
	canon := alloc.MakeRemote(1, 7)

	tier.send(0, message{kind: msgGrant, fp: fp, canon: canon, from: 1, epoch: 0})
	agents[0].DrainAll(0)
	if agents[0].staleDropped != 1 {
		t.Fatalf("agent 0 staleDropped = %d, want 1", agents[0].staleDropped)
	}
	if c := tier.Snapshot(); c.StaleDropped != 1 {
		t.Fatalf("tier StaleDropped = %d, want 1", c.StaleDropped)
	}
	if agents[0].hintsInstalled != 0 {
		t.Fatal("stale grant installed a hint")
	}
	if _, ok := agents[0].b.IC.IndexPeek(fp); ok {
		t.Fatal("stale grant reached the index")
	}

	tier.send(0, message{kind: msgGrant, fp: fp, canon: canon, from: 1, epoch: tier.Epoch(1)})
	agents[0].DrainAll(0)
	if agents[0].hintsInstalled != 1 {
		t.Fatalf("current-epoch grant not installed (hints=%d)", agents[0].hintsInstalled)
	}
	if e, ok := agents[0].b.IC.IndexPeek(fp); !ok || e.PBA != canon {
		t.Fatalf("index binding %v,%v want %d", e.PBA, ok, canon)
	}
}

// TestStaleEpochAdvertisementFenced: an advertisement queued by a
// shard's previous life must not register a (possibly freed) block as
// the cluster-wide canonical.
func TestStaleEpochAdvertisementFenced(t *testing.T) {
	tier, _ := fenceCluster(t, 2)
	tier.CrashShard(1)
	tier.RecoverShard(1)

	var fper chunk.SyntheticFingerprinter
	ch := chunk.Chunk{Content: 777}
	fp := fper.Fingerprint(&ch)

	tier.processAd(ad{fp: fp, pba: 3, shard: 1, epoch: 0, fresh: true})
	c := tier.Snapshot()
	if c.StaleDropped != 1 {
		t.Fatalf("tier StaleDropped = %d, want 1", c.StaleDropped)
	}
	if c.Entries != 0 {
		t.Fatalf("stale ad registered a table entry (entries=%d)", c.Entries)
	}

	// Refs are exempt from the fence: they mirror journaled transitions
	// that survive the sender's crash, so a pre-crash RefUp must still
	// pin the canonical it references.
	tier.send(0, message{kind: msgRefUp, canon: alloc.MakeRemote(0, 5), from: 1, epoch: 0})
	agents := tier.agents
	agents[0].DrainAll(0)
	if agents[0].refPins != 1 {
		t.Fatalf("pre-crash RefUp fenced (refPins=%d, want 1)", agents[0].refPins)
	}
}

// TestRecallCompletesWhenEveryPeerIsDown: a recall started while all
// peers are crashed has no acks to wait for and must complete (and
// release the hinted pin) immediately instead of leaking the round.
func TestRecallCompletesWhenEveryPeerIsDown(t *testing.T) {
	tier, agents := fenceCluster(t, 2)
	a := agents[0]

	// Fabricate the owner-side state a granted canonical would hold:
	// block 0 live, hinted-pinned, unreferenced (paroled).
	b := a.b
	pba, ok := b.Alloc.Alloc(1)
	if !ok {
		t.Fatal("alloc failed")
	}
	b.Store.Write(pba, 31337)
	b.Map.Pin(pba)
	a.hintedSet(pba)
	a.paroleQ = append(a.paroleQ, pba)

	tier.CrashShard(1)
	a.DrainAll(0)

	if len(a.recalling) != 0 {
		t.Fatalf("%d recall rounds leaked", len(a.recalling))
	}
	if a.recallsSent != 1 || a.recallsDone != 1 {
		t.Fatalf("recalls sent %d done %d, want 1/1", a.recallsSent, a.recallsDone)
	}
	if pins := b.Map.PinCount(pba); pins != 0 {
		t.Fatalf("hinted pin not released (%d pins)", pins)
	}
}
