package experiments

// These tests double as regression checks on the reproduction: they run
// the experiments at a reduced scale and assert the qualitative shapes
// the paper reports. A change that silently breaks a figure's shape
// fails here.

import (
	"strings"
	"testing"

	"github.com/pod-dedup/pod/internal/engine"
)

// testScale keeps the full matrix affordable in unit-test time while
// preserving cache pressure (memory budgets scale along).
const testScale = 0.1

func testEnv() *Env { return NewEnv(testScale, 0) }

func findRow(rows []NormRow, engine, trace string) float64 {
	for _, r := range rows {
		if r.Engine == engine && r.Trace == trace {
			return r.Value
		}
	}
	return -1
}

func TestTable1Static(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"POD", "iDedup", "dynamic/adaptive", "Small-write elimination"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	env := testEnv()
	_, chars := env.Table2()
	if len(chars) != 3 {
		t.Fatalf("traces = %d", len(chars))
	}
	// mail is the largest trace with the largest requests
	if chars[2].IOs <= chars[0].IOs || chars[2].AvgReqKB <= chars[0].AvgReqKB {
		t.Error("mail must dominate web-vm in I/Os and request size")
	}
	// homes has the highest write ratio
	if chars[1].WriteRatio <= chars[0].WriteRatio {
		t.Error("homes write ratio must exceed web-vm's")
	}
}

func TestFig1Shape(t *testing.T) {
	env := testEnv()
	_, buckets := env.Fig1()
	for tn, bs := range buckets {
		var small, total int64
		for i, b := range bs {
			total += b.Total
			if i <= 1 {
				small += b.Total
			}
			if b.Redundant > b.Total {
				t.Fatalf("%s: redundant exceeds total", tn)
			}
		}
		if tn != "mail" && float64(small)/float64(total) < 0.5 {
			t.Errorf("%s: small writes are not the majority", tn)
		}
	}
}

func TestFig2Shape(t *testing.T) {
	env := testEnv()
	_, rows := env.Fig2()
	byTrace := map[string]Fig2Row{}
	for _, r := range rows {
		byTrace[r.Trace] = r
		// I/O redundancy strictly exceeds capacity redundancy
		if r.IORedundancyPct <= r.DiffLBAPct {
			t.Errorf("%s: I/O redundancy must exceed capacity redundancy", r.Trace)
		}
	}
	if byTrace["mail"].IORedundancyPct <= byTrace["homes"].IORedundancyPct {
		t.Error("mail must be more redundant than homes")
	}
}

func TestFig3Shape(t *testing.T) {
	env := testEnv()
	_, rows := env.Fig3(nil)
	if len(rows) != 5 {
		t.Fatalf("sweep points = %d", len(rows))
	}
	// write RT must fall monotonically as the index cache grows
	for i := 1; i < len(rows); i++ {
		if rows[i].WriteRTms > rows[i-1].WriteRTms*1.05 {
			t.Errorf("write RT must fall with index share: %.2f -> %.2f at %.0f%%",
				rows[i-1].WriteRTms, rows[i].WriteRTms, rows[i].IndexFrac*100)
		}
	}
	// read RT must be worse at 90% index than at its minimum (the
	// read cache squeeze; the paper's read-side gradient)
	min := rows[0].ReadRTms
	for _, r := range rows {
		if r.ReadRTms < min {
			min = r.ReadRTms
		}
	}
	// at reduced scale the read-side squeeze may only cancel (not
	// dominate) the queue-relief gain; it must at least not improve
	if last := rows[len(rows)-1].ReadRTms; last < min*0.98 {
		t.Errorf("read RT at 90%% index (%.2f) must not materially beat the sweep minimum (%.2f)", last, min)
	}
}

func TestFig8Shape(t *testing.T) {
	env := testEnv()
	_, rows := env.Fig8()
	for _, tn := range TraceNames {
		native := findRow(rows, Native, tn)
		sd := findRow(rows, SelectDedupe, tn)
		if native != 100 {
			t.Fatalf("%s: Native must normalize to 100", tn)
		}
		if sd >= 100 {
			t.Errorf("%s: Select-Dedupe (%.1f) must beat Native", tn, sd)
		}
	}
	// mail benefits the most, homes the least (the paper's ordering)
	if !(findRow(rows, SelectDedupe, "mail") < findRow(rows, SelectDedupe, "web-vm")) {
		t.Error("Select-Dedupe must help mail more than web-vm")
	}
	if !(findRow(rows, SelectDedupe, "web-vm") < findRow(rows, SelectDedupe, "homes")) {
		t.Error("Select-Dedupe must help web-vm more than homes")
	}
	// Full-Dedupe regresses on homes
	if findRow(rows, FullDedupe, "homes") <= 100 {
		t.Error("Full-Dedupe must degrade homes")
	}
}

func TestFig9Shapes(t *testing.T) {
	env := testEnv()
	_, w := env.Fig9Write()
	_, r := env.Fig9Read()

	// 9a: Select-Dedupe cuts write RT everywhere; Full-Dedupe hurts
	// homes writes
	for _, tn := range TraceNames {
		if findRow(w, SelectDedupe, tn) >= 100 {
			t.Errorf("9a %s: Select-Dedupe must cut write RT", tn)
		}
	}
	if findRow(w, FullDedupe, "homes") <= 100 {
		t.Error("9a homes: Full-Dedupe must increase write RT")
	}
	// 9b: Full-Dedupe's read amplification hurts web-vm and homes but
	// not mail (where write relief dominates)
	if findRow(r, FullDedupe, "homes") <= 100 {
		t.Error("9b homes: Full-Dedupe must degrade reads")
	}
	if findRow(r, FullDedupe, "mail") >= 100 {
		t.Error("9b mail: Full-Dedupe must improve reads")
	}
	// Select-Dedupe reads stay within a hair of Native or better
	for _, tn := range TraceNames {
		if v := findRow(r, SelectDedupe, tn); v > 110 {
			t.Errorf("9b %s: Select-Dedupe read RT %.1f too far above Native", tn, v)
		}
	}
}

func TestFig10Shape(t *testing.T) {
	env := testEnv()
	_, rows := env.Fig10()
	for _, tn := range TraceNames {
		full := findRow(rows, FullDedupe, tn)
		sd := findRow(rows, SelectDedupe, tn)
		id := findRow(rows, IDedup, tn)
		if full >= 100 || sd >= 100 {
			t.Errorf("%s: dedup schemes must save capacity", tn)
		}
		if full > sd {
			t.Errorf("%s: Full-Dedupe (%.1f) must save at least as much as Select-Dedupe (%.1f)", tn, full, sd)
		}
		// the paper's claim: Select-Dedupe achieves comparable or
		// better savings than iDedup
		if sd > id {
			t.Errorf("%s: Select-Dedupe (%.1f) must save at least as much as iDedup (%.1f)", tn, sd, id)
		}
	}
}

func TestFig11Shape(t *testing.T) {
	env := testEnv()
	_, rows := env.Fig11()
	for _, tn := range TraceNames {
		full := findRow(rows, FullDedupe, tn)
		sd := findRow(rows, SelectDedupe, tn)
		pd := findRow(rows, POD, tn)
		id := findRow(rows, IDedup, tn)
		if !(full >= pd && pd >= sd*0.97 && sd > id) {
			t.Errorf("%s: removal ordering Full(%.1f) ≥ POD(%.1f) ≥ Select(%.1f) > iDedup(%.1f) violated",
				tn, full, pd, sd, id)
		}
	}
}

func TestOverheadShape(t *testing.T) {
	env := testEnv()
	_, rows, sha1us := env.Overhead()
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.NVRAMPeakBytes <= 0 {
			t.Errorf("%s: NVRAM peak must be positive", r.Trace)
		}
		// the paper reports single-megabyte footprints; at test scale
		// they must stay small
		if r.NVRAMPeakBytes > 64<<20 {
			t.Errorf("%s: NVRAM peak %.1f MB implausibly large", r.Trace, float64(r.NVRAMPeakBytes)/(1<<20))
		}
	}
	if sha1us <= 0 || sha1us > 1000 {
		t.Errorf("sha1 cost %.2fµs implausible", sha1us)
	}
}

func TestResultCaching(t *testing.T) {
	env := testEnv()
	a := env.Result(Native, "homes")
	b := env.Result(Native, "homes")
	if a != b {
		t.Fatal("repeated Result must return the cached pointer")
	}
}

func TestNewEngineUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p := testEnv().pack("homes")
	NewEngine("nope", BuildConfig(p.prof, 1))
}

// TestPlannerFoldsDefaultPointsOntoMatrix verifies the cross-figure
// deduplication: sweep points whose knob sits at the platform default
// must reuse the (engine, trace) matrix cell rather than replaying it.
func TestPlannerFoldsDefaultPointsOntoMatrix(t *testing.T) {
	env := testEnv()
	matrix := env.Result(SelectDedupe, "homes")

	// threshold 3 is the default — same cached result, no new replay
	rt, _ := env.ThresholdPoint("homes", 3)
	if rt != matrix.MeanRT {
		t.Errorf("threshold-3 point (%.2f) must reuse the Select-Dedupe/homes matrix cell (%.2f)", rt, matrix.MeanRT)
	}
	if got := env.cellResult(key(SelectDedupe, "homes")); got != matrix {
		t.Error("threshold-3 must not replace the cached matrix result")
	}

	// healthy half of the degraded pair is the POD matrix cell
	pod := env.Result(POD, "homes")
	healthy, _ := env.DegradedPoint("homes")
	if healthy != pod.MeanReadRT {
		t.Errorf("healthy degraded point (%.2f) must reuse POD/homes (%.2f)", healthy, pod.MeanReadRT)
	}

	// and the same sharing works in the other direction: a sweep run
	// first seeds the matrix
	env2 := testEnv()
	env2.StripeUnitPoint("web-vm", 64) // default stripe ≡ POD/web-vm
	env2.mu.Lock()
	_, seeded := env2.results[key(POD, "web-vm")]
	env2.mu.Unlock()
	if !seeded {
		t.Error("default stripe point must be cached under the POD/web-vm matrix key")
	}
}

// TestFig3SharesMatrixCell pins the Fig3 50% index-share point to the
// Full-Dedupe/mail matrix replay.
func TestFig3SharesMatrixCell(t *testing.T) {
	env := testEnv()
	_, rows := env.Fig3([]float64{0.3, 0.5})
	matrix := env.Result(FullDedupe, "mail")
	for _, r := range rows {
		if r.IndexFrac == 0.5 && r.ReadRTms != matrix.MeanReadRT/1000 {
			t.Errorf("fig3@0.5 read RT %.3f must equal matrix cell %.3f", r.ReadRTms, matrix.MeanReadRT/1000)
		}
	}
}

func TestEnsureCellsDeduplicatesWithinBatch(t *testing.T) {
	env := testEnv()
	built := 0
	p := corpusPack("homes", env.Scale)
	cell := Cell{
		Key: "test/dup-batch",
		Factory: func() engine.Engine {
			built++
			return NewEngine(Native, BuildConfig(p.prof, env.Scale))
		},
		TraceFn: p.generate,
	}
	env.EnsureCells([]Cell{cell, cell, cell})
	if built != 1 {
		t.Fatalf("duplicate keys in one batch built %d engines, want 1", built)
	}
	if env.cellResult("test/dup-batch") == nil {
		t.Fatal("missing cached result")
	}
}

func TestThresholdAblation(t *testing.T) {
	env := testEnv()
	rt1, rem1 := env.ThresholdPoint("homes", 1)
	rt6, rem6 := env.ThresholdPoint("homes", 6)
	if rt1 <= 0 || rt6 <= 0 {
		t.Fatal("bad response times")
	}
	// a lower threshold always dedupes at least as much
	if rem1 < rem6 {
		t.Errorf("threshold 1 removal (%.1f) must be ≥ threshold 6 (%.1f)", rem1, rem6)
	}
}

func TestStripeUnitAblation(t *testing.T) {
	env := testEnv()
	if rt := env.StripeUnitPoint("web-vm", 64); rt <= 0 {
		t.Fatal("bad response time")
	}
}

func TestDegradedAblation(t *testing.T) {
	env := testEnv()
	healthy, degraded := env.DegradedPoint("homes")
	if degraded <= healthy {
		t.Errorf("degraded reads (%.0fµs) must be slower than healthy (%.0fµs)", degraded, healthy)
	}
}

func TestSchemesTableIncludesAllEngines(t *testing.T) {
	env := NewEnv(0.02, 0) // tiny: this matrix is 7 engines × 3 traces
	out := env.SchemesTable().String()
	for _, en := range AllEngines {
		if !strings.Contains(out, en) {
			t.Errorf("schemes table missing %q", en)
		}
	}
}

func TestDupSweepMonotone(t *testing.T) {
	env := NewEnv(0.02, 0)
	low := env.DupSweepPoint(POD, 0)
	high := env.DupSweepPoint(POD, 0.9)
	if high >= low {
		t.Errorf("POD write RT at 90%% redundancy (%.0fµs) must beat 0%% (%.0fµs)", high, low)
	}
	// Native is indifferent to redundancy by construction (same request
	// stream shape); allow wide tolerance for content-layout noise
	nlow := env.DupSweepPoint(Native, 0)
	nhigh := env.DupSweepPoint(Native, 0.9)
	if nhigh < nlow/2 {
		t.Errorf("Native should not benefit from redundancy: %.0f vs %.0f", nhigh, nlow)
	}
}

func TestLayoutSweepRAID5Penalty(t *testing.T) {
	env := NewEnv(0.05, 0)
	r0 := env.LayoutPoint(Native, "web-vm", 0) // RAID0
	r5 := env.LayoutPoint(Native, "web-vm", 1) // RAID5
	if r5 <= r0 {
		t.Errorf("RAID5 small writes (%.0fµs) must cost more than RAID0 (%.0fµs)", r5, r0)
	}
}
