// Package experiments defines one constructor per table and figure of
// the POD paper's evaluation (§II and §IV). Each experiment builds the
// engines over identical substrates, replays the synthetic FIU-like
// traces, and reports the same rows or series the paper plots, so
// cmd/podbench and the root benchmark suite can regenerate every
// artifact from one place.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"github.com/pod-dedup/pod/internal/baseline"
	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/replay"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// Engine names, in the paper's presentation order.
const (
	Native       = "Native"
	FullDedupe   = "Full-Dedupe"
	IDedup       = "iDedup"
	SelectDedupe = "Select-Dedupe"
	POD          = "POD"
	IODedup      = "I/O-Dedup"
	PostProcess  = "Post-Process"
	// PODBG is POD with the idle-aware background out-of-line
	// deduplication scanner attached (capacity-reclamation experiments;
	// not part of the paper's engine set).
	PODBG = "POD+bgdedup"
)

// AllEngines is every implemented scheme, including the two additional
// Table I baselines (I/O Deduplication and post-processing dedup).
var AllEngines = []string{Native, IODedup, PostProcess, FullDedupe, IDedup, SelectDedupe, POD}

// Fig8Engines are the schemes of Figures 8–10.
var Fig8Engines = []string{Native, FullDedupe, IDedup, SelectDedupe}

// Fig11Engines adds POD (Figure 11).
var Fig11Engines = []string{Native, FullDedupe, IDedup, SelectDedupe, POD}

// TraceNames are the evaluation traces in Table II order.
var TraceNames = []string{"web-vm", "homes", "mail"}

// BuildConfig assembles the experimental platform of §IV-A for one
// trace: a 4-disk RAID5 array with a 64 KB stripe unit and the trace's
// DRAM budget, split 50/50 between index and read cache unless an
// engine adapts it. memScale shrinks the cache budget along with the
// trace scale so that sub-sampled runs keep the paper's cache pressure
// (an unscaled cache would hold the whole scaled-down working set and
// hide every miss-path effect).
func BuildConfig(p workload.Profile, memScale float64) engine.Config {
	diskBlocks := p.FootprintChunks / 2
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(diskBlocks))
	}
	mem := int64(float64(p.MemoryBytes) * memScale)
	if mem < 1<<18 {
		mem = 1 << 18
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16), // 16 chunks = 64 KB
		MemoryBytes: mem,
		NVRAMBytes:  int(p.FootprintChunks * 40),
	}
}

// NewEngine constructs a scheme by name over cfg.
func NewEngine(name string, cfg engine.Config) engine.Engine {
	switch name {
	case Native:
		return baseline.NewNative(cfg)
	case FullDedupe:
		return baseline.NewFullDedupe(cfg)
	case IDedup:
		return baseline.NewIDedup(cfg)
	case SelectDedupe:
		return core.NewSelectDedupe(cfg)
	case POD:
		return core.NewPOD(cfg)
	case IODedup:
		return baseline.NewIODedup(cfg)
	case PostProcess:
		return baseline.NewPostProcess(cfg)
	case PODBG:
		e := core.NewPOD(cfg)
		bgdedup.New(e.Base(), bgdedup.Params{})
		return e
	default:
		panic(fmt.Sprintf("experiments: unknown engine %q", name))
	}
}

// Env caches replay results so that experiments sharing runs (Figures
// 8, 9, 10, 11) pay for each (engine, trace) combination once. Traces
// themselves are cached process-wide, keyed by (name, scale): trace
// generation is deterministic in those two inputs, so every Env at the
// same scale — podbench runs each experiment in its own Env — shares
// one generated corpus instead of regenerating it per figure.
type Env struct {
	Scale   float64
	Workers int

	// TraceEvery > 0 samples every nth measured request of each replay
	// into its result's Metrics.Traces (set before the first replay
	// runs; cached results keep whatever sampling they ran with).
	TraceEvery int

	mu      sync.Mutex
	results map[string]*replay.Result

	// dupPacks caches the synthetic redundancy-sweep traces by dup
	// fraction, so Native and POD replay the same generated trace.
	dupPacks map[float64]*tracePack

	poolOnce sync.Once
	pool     *replay.Pool
}

// tracePack is one (profile, scale) trace, generated at most once via
// the embedded Once: callers that only need the profile never pay for
// generation, and replay workers pulling the same pack concurrently
// block until the single generation finishes.
type tracePack struct {
	prof  workload.Profile
	scale float64

	once   sync.Once
	tr     *trace.Trace
	warmup int
}

// generate materializes the trace (idempotent, safe for concurrent
// use).
func (p *tracePack) generate() (*trace.Trace, int) {
	p.once.Do(func() {
		p.tr, p.warmup = workload.Generate(p.prof, p.scale)
	})
	return p.tr, p.warmup
}

var (
	corpusMu sync.Mutex
	corpus   = map[corpusKey]*tracePack{}
)

type corpusKey struct {
	name  string
	scale float64
}

// corpusPack returns the shared pack for (name, scale) without
// generating its trace.
func corpusPack(name string, scale float64) *tracePack {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	k := corpusKey{name, scale}
	if p, ok := corpus[k]; ok {
		return p
	}
	prof, ok := workload.ByName(name)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown trace %q", name))
	}
	p := &tracePack{prof: prof, scale: scale}
	corpus[k] = p
	return p
}

// NewEnv returns an environment replaying traces at the given scale
// (1.0 = the paper's request counts) with the given parallelism.
func NewEnv(scale float64, workers int) *Env {
	return &Env{
		Scale:   scale,
		Workers: workers,
		results: make(map[string]*replay.Result),
	}
}

// pack returns the generated trace pack for name at this Env's scale.
func (e *Env) pack(name string) *tracePack {
	p := corpusPack(name, e.Scale)
	p.generate()
	return p
}

func key(engineName, traceName string) string { return engineName + "/" + traceName }

// Cell is one replay the cross-figure planner may need: a stable key,
// an engine factory, and a lazy trace. The key doubles as the
// deduplication handle — a sweep point whose configuration is
// identical to a plain (engine, trace) matrix cell declares the matrix
// key and is never replayed twice, no matter which figure asks first.
// The default points folded this way: Fig3's 50% index share and the
// RAID5 layout/64 KB stripe/threshold-3/healthy-array ablation points,
// each of which is the evaluation platform's default configuration.
type Cell struct {
	Key     string
	Factory func() engine.Engine
	TraceFn func() (*trace.Trace, int)
}

// EnsureCells replays every cell whose key is not yet cached on the
// Env's persistent worker pool and caches the results. Duplicate keys
// within one batch run once.
func (e *Env) EnsureCells(cells []Cell) {
	var missing []Cell
	seen := make(map[string]bool, len(cells))
	e.mu.Lock()
	for _, c := range cells {
		if _, ok := e.results[c.Key]; !ok && !seen[c.Key] {
			seen[c.Key] = true
			missing = append(missing, c)
		}
	}
	e.mu.Unlock()
	if len(missing) == 0 {
		return
	}

	jobs := make([]replay.Job, len(missing))
	for i, c := range missing {
		jobs[i] = replay.Job{
			Key:        c.Key,
			Factory:    c.Factory,
			TraceFn:    c.TraceFn,
			TraceEvery: e.TraceEvery,
		}
	}
	e.poolOnce.Do(func() { e.pool = replay.NewPool(e.Workers) })
	results := e.pool.Run(jobs)
	e.mu.Lock()
	for i, r := range results {
		if r.Err != nil {
			e.mu.Unlock()
			panic(fmt.Sprintf("experiments: %s failed: %v", jobs[i].Key, r.Err))
		}
		e.results[jobs[i].Key] = r
	}
	e.mu.Unlock()
}

// cellResult returns the cached result for a cell key; the caller must
// have run it through EnsureCells first.
func (e *Env) cellResult(k string) *replay.Result {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, ok := e.results[k]
	if !ok {
		panic(fmt.Sprintf("experiments: cell %q was never replayed", k))
	}
	return r
}

// Close stops the Env's persistent worker pool. Safe when no replay
// ever ran; the Env must not replay anything afterwards.
func (e *Env) Close() {
	e.poolOnce.Do(func() {}) // pool can no longer be created lazily
	if e.pool != nil {
		e.pool.Close()
	}
}

// matrixCell is the canonical (engine, trace) evaluation cell: the
// §IV-A platform built by BuildConfig, keyed so every figure shares
// it.
func (e *Env) matrixCell(engineName, traceName string) Cell {
	p := corpusPack(traceName, e.Scale)
	return Cell{
		Key:     key(engineName, traceName),
		Factory: func() engine.Engine { return NewEngine(engineName, BuildConfig(p.prof, e.Scale)) },
		TraceFn: p.generate,
	}
}

// EnsureMatrix replays every missing (engine, trace) combination, in
// parallel, and caches the results.
func (e *Env) EnsureMatrix(engines, traces []string) {
	cells := make([]Cell, 0, len(engines)*len(traces))
	for _, tn := range traces {
		for _, en := range engines {
			cells = append(cells, e.matrixCell(en, tn))
		}
	}
	e.EnsureCells(cells)
}

// Result returns the cached replay of one combination, running it if
// needed.
func (e *Env) Result(engineName, traceName string) *replay.Result {
	e.EnsureMatrix([]string{engineName}, []string{traceName})
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.results[key(engineName, traceName)]
}

// MetricsSnapshot merges the metrics of every replay this Env has run
// so far into one snapshot (per-phase histograms merge bucket-wise;
// sampled traces append). Keys are sorted for determinism.
func (e *Env) MetricsSnapshot() *metrics.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	keys := make([]string, 0, len(e.results))
	for k := range e.results {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := metrics.NewSnapshot()
	for _, k := range keys {
		if r := e.results[k]; r != nil && r.Metrics != nil {
			out.Merge(r.Metrics)
		}
	}
	return out
}

// SampledTraces returns the sampled request timelines collected across
// every replay run so far (empty unless TraceEvery was set).
func (e *Env) SampledTraces() []metrics.TraceRecord {
	return e.MetricsSnapshot().Traces
}

// normalize maps a value to percent of its baseline.
func normalize(v, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * v / base
}
