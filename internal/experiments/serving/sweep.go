// Package serving holds experiments that need the full sharded front
// end (internal/server), not just a bare engine replay. It lives in
// its own package because internal/server's tests import the root
// experiments package for engine factories — an experiment importing
// server back into internal/experiments would close that cycle.
//
// The headline experiment is the global-fingerprint-tier shard sweep:
// LBA sharding (EXPERIMENTS.md) buys serving throughput but costs
// dedup ratio, because each shard's index only sees its slice of the
// content stream. GlobalFPSweep measures how much of that loss the
// cross-shard tier recovers, at equal shard counts and identical
// workloads, tier off versus on.
package serving

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/server"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// Run is one measured serving pass.
type Run struct {
	WritesRemovedPct float64 // inline writes removed, % of write chunks
	UsedBlocks       uint64  // physical occupancy after Close
	P99SojournUS     float64 // merged sojourn p99, µs
	RemoteDeduped    int64   // inline dedupes against a peer shard's canonical
	RemapsApplied    int64   // out-of-line cross-shard folds (tier runs only)
}

// Point compares the tier off and on at one shard count.
type Point struct {
	Shards int
	Base   Run // tier off (background scanner still attached)
	Tier   Run // tier on
}

// GlobalFPSweep floods the trace through the sharded serving layer at
// each shard count, tier off and tier on, and reports both runs per
// point. Both configurations attach the background dedup scanner, so
// the delta isolates the tier itself. Submission is batched and
// single-threaded in schedule order — deterministic queueing; only the
// tier's hint-delivery races vary run to run (delivery is asynchronous
// by design, so the tier numbers are a floor, not a constant).
func GlobalFPSweep(tr *trace.Trace, prof workload.Profile, scale float64, shardCounts []int) ([]Point, error) {
	points := make([]Point, 0, len(shardCounts))
	for _, n := range shardCounts {
		base, err := serveOnce(tr, prof, scale, n, false)
		if err != nil {
			return nil, fmt.Errorf("serving: %d shards, tier off: %w", n, err)
		}
		tier, err := serveOnce(tr, prof, scale, n, true)
		if err != nil {
			return nil, fmt.Errorf("serving: %d shards, tier on: %w", n, err)
		}
		points = append(points, Point{Shards: n, Base: base, Tier: tier})
	}
	return points, nil
}

// Table formats a sweep the way the replay experiments format theirs.
func Table(points []Point) *stats.Table {
	t := stats.NewTable("Global fingerprint tier — shard sweep (flood)",
		"Shards", "Removed (off)", "Removed (on)", "Blocks (off)", "Blocks (on)", "p99 delta")
	for _, p := range points {
		delta := 0.0
		if p.Base.P99SojournUS > 0 {
			delta = 100 * (p.Tier.P99SojournUS/p.Base.P99SojournUS - 1)
		}
		t.AddRowf("%d\t%s\t%s\t%d\t%d\t%+.1f%%",
			p.Shards, stats.Pct(p.Base.WritesRemovedPct), stats.Pct(p.Tier.WritesRemovedPct),
			p.Base.UsedBlocks, p.Tier.UsedBlocks, delta)
	}
	return t
}

const submitBatch = 256 // client-side batching, as the committed flood sweep

func serveOnce(tr *trace.Trace, prof workload.Profile, scale float64, shards int, tier bool) (Run, error) {
	srv, err := server.New(server.Config{
		Shards:   shards,
		Timing:   server.Queued,
		GlobalFP: tier,
		NewEngine: func(int) engine.Engine {
			e := experiments.NewEngine(experiments.POD, experiments.BuildConfig(prof, scale))
			bgdedup.Attach(e, bgdedup.Params{})
			return e
		},
	})
	if err != nil {
		return Run{}, err
	}
	batch := make([]server.Request, 0, submitBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if err := srv.SubmitBatch(batch); err != nil {
			return err
		}
		batch = make([]server.Request, 0, submitBatch)
		return nil
	}
	for i := range tr.Requests {
		r := &tr.Requests[i]
		req := server.Request{Op: r.Op, LBA: r.LBA} // flood: every arrival at t=0
		if r.Op == trace.Read {
			req.Chunks = r.N
		} else {
			req.Content = r.Content
		}
		batch = append(batch, req)
		if len(batch) == submitBatch {
			if err := flush(); err != nil {
				return Run{}, err
			}
		}
	}
	if err := flush(); err != nil {
		return Run{}, err
	}
	if err := srv.Close(); err != nil {
		return Run{}, err
	}
	if tier {
		if err := srv.CheckConsistency(); err != nil {
			return Run{}, err
		}
	}
	snap := srv.Stats()
	return Run{
		WritesRemovedPct: snap.Engine.WriteRemovalPct(),
		UsedBlocks:       snap.UsedBlocks,
		P99SojournUS:     snap.Latency.Percentile(99),
		RemoteDeduped:    snap.Engine.RemoteDeduped,
		RemapsApplied:    snap.Metrics.Gauges["globalfp_remaps_applied"],
	}, nil
}
