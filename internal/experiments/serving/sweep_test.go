package serving

import (
	"strings"
	"testing"

	"github.com/pod-dedup/pod/internal/workload"
)

// TestGlobalFPSweepRecoversCapacity runs the sweep at reduced scale
// and checks the tier's deterministic effects: cross-shard folds
// apply, cluster occupancy shrinks toward the 1-shard level, inline
// removal never regresses, and serving p99 stays close to tier-off.
// The inline-recovery magnitude is wall-clock-racy by design (hints
// are asynchronous), so the full-scale numbers live in the committed
// globalfp-8 trajectory entry, not in this assertion.
func TestGlobalFPSweepRecoversCapacity(t *testing.T) {
	const scale = 0.02
	tr, _, dims := workload.MixedTrace(scale)
	prof := workload.Profile{Name: "mixed", FootprintChunks: dims.FootprintChunks, MemoryBytes: dims.MemoryBytes}

	points, err := GlobalFPSweep(tr, prof, scale, []int{4})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.Tier.RemapsApplied == 0 && p.Tier.RemoteDeduped == 0 {
		t.Fatal("tier neither folded a cross-shard duplicate nor enabled a remote inline dedupe")
	}
	if p.Tier.UsedBlocks >= p.Base.UsedBlocks {
		t.Fatalf("tier did not recover capacity: %d blocks with tier, %d without",
			p.Tier.UsedBlocks, p.Base.UsedBlocks)
	}
	// Inline removal: hint installs share the dedup index's cache
	// budget, so when delivery runs slower than the flood (tiny scale,
	// race detector) pollution can cost a little more than the hints
	// recover — bound the downside; the recovery itself is asserted at
	// full scale by the committed globalfp-8 trajectory entry.
	if p.Tier.WritesRemovedPct < p.Base.WritesRemovedPct-3.0 {
		t.Fatalf("inline removal collapsed: %.2f%% with tier, %.2f%% without",
			p.Tier.WritesRemovedPct, p.Base.WritesRemovedPct)
	}
	// Folds are paced and settle after the serving window; p99 must
	// stay in the tier-off neighborhood even in this flood (generous
	// slack: small-scale percentiles are coarse).
	if p.Tier.P99SojournUS > p.Base.P99SojournUS*1.25 {
		t.Fatalf("p99 blew up: %.0fus with tier, %.0fus without",
			p.Tier.P99SojournUS, p.Base.P99SojournUS)
	}

	tbl := Table(points)
	if s := tbl.String(); !strings.Contains(s, "Shards") || !strings.Contains(s, "4") {
		t.Fatalf("table missing sweep row:\n%s", s)
	}
}
