package experiments

import (
	"fmt"
	"strconv"

	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/metrics"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/replay"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// Static-vs-dynamic index-cache apportionment sweep (not part of the
// paper's figure set; HPDedup-style extension). The adversarial
// two-tenant mix puts a bursty high-dup tenant against a steady
// low-dup tenant whose duplicate bursts arrive in anti-phase: each
// burst's working set needs 60% of the index partition, so every fixed
// split starves at least one tenant's bursts, while the locality-driven
// apportioner follows the demand back and forth.

// StreamsRow is one sweep variant's outcome.
type StreamsRow struct {
	Variant string
	Dynamic bool
	// Per-stream write and writes-removed counts (stream → count); nil
	// for the shared-cache reference row, which has no stream gauges.
	Writes, Removed map[uint32]int64
	// Quota is each stream's final index-partition quota in entries.
	Quota        map[uint32]int64
	TotalRemoved int64
}

// streamVariant is one point of the sweep.
type streamVariant struct {
	key     string
	dynamic bool
	streams engine.StreamParams
}

// streamSweep builds the shared / static 100..0 / dynamic variant set
// over nStreams tenant streams (static splits assign the listed share
// to stream 1 and the rest to stream 2; extra streams get nothing —
// the two burst tenants are the contended parties).
func streamSweep() []streamVariant {
	vs := []streamVariant{{key: "shared"}}
	for _, s := range []float64{1.0, 0.75, 0.50, 0.25, 0.0} {
		vs = append(vs, streamVariant{
			key: fmt.Sprintf("static %.0f/%.0f", s*100, (1-s)*100),
			streams: engine.StreamParams{
				Enabled:      true,
				StaticShares: map[uint32]float64{1: s, 2: 1 - s},
			},
		})
	}
	vs = append(vs, streamVariant{
		key:     "dynamic",
		dynamic: true,
		streams: engine.StreamParams{Enabled: true},
	})
	return vs
}

// streamConfig is the fixed platform every sweep variant runs on: the
// §IV-A array shape with the DRAM budget the adversarial pools are
// tuned against (deliberately NOT scaled with the trace — the pool /
// partition ratios are the experiment).
func streamConfig(dims workload.MixedDims, sp engine.StreamParams) engine.Config {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(dims.FootprintChunks))
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: dims.MemoryBytes,
		NVRAMBytes:  int(dims.FootprintChunks * 40),
		Streams:     sp,
	}
}

// streamCells plans one replay per variant over the given mix.
func (e *Env) streamCells(prefix string, tr *trace.Trace, warm int, dims workload.MixedDims, variants []streamVariant) []Cell {
	cells := make([]Cell, 0, len(variants))
	for _, v := range variants {
		sp := v.streams
		cells = append(cells, Cell{
			Key:     prefix + "/" + v.key,
			Factory: func() engine.Engine { return core.NewSelectDedupe(streamConfig(dims, sp)) },
			TraceFn: func() (*trace.Trace, int) { return tr, warm },
		})
	}
	return cells
}

// streamRow extracts one variant's per-stream accounting.
func streamRow(v streamVariant, r *replay.Result, streams []uint32) StreamsRow {
	row := StreamsRow{Variant: v.key, Dynamic: v.dynamic, TotalRemoved: r.Stats.WritesRemoved}
	if !v.streams.Enabled {
		return row
	}
	row.Writes = make(map[uint32]int64, len(streams))
	row.Removed = make(map[uint32]int64, len(streams))
	row.Quota = make(map[uint32]int64, len(streams))
	for _, s := range streams {
		l := strconv.FormatUint(uint64(s), 10)
		row.Writes[s] = r.Metrics.Gauges[metrics.Labeled("stream_writes", "stream", l)]
		row.Removed[s] = r.Metrics.Gauges[metrics.Labeled("stream_writes_removed", "stream", l)]
		row.Quota[s] = r.Metrics.Gauges[metrics.Labeled("icache_stream_quota", "stream", l)]
	}
	return row
}

// streamsTable renders a sweep.
func streamsTable(title string, rows []StreamsRow, streams []uint32) *stats.Table {
	cols := []string{"Apportionment"}
	for _, s := range streams {
		cols = append(cols, fmt.Sprintf("stream %d removed", s))
	}
	cols = append(cols, "total removed")
	t := stats.NewTable(title, cols...)
	for _, row := range rows {
		cells := []string{row.Variant}
		for _, s := range streams {
			if row.Removed == nil {
				cells = append(cells, "-")
				continue
			}
			pct := 0.0
			if w := row.Writes[s]; w > 0 {
				pct = 100 * float64(row.Removed[s]) / float64(w)
			}
			cells = append(cells, fmt.Sprintf("%d (%.1f%%)", row.Removed[s], pct))
		}
		cells = append(cells, fmt.Sprintf("%d", row.TotalRemoved))
		t.AddRow(cells...)
	}
	return t
}

// Streams runs the two-tenant adversarial sweep: a shared index cache,
// every static split of the partition between the two tenants, and the
// dynamic locality-driven apportioner. The paper-level claim under
// test: dynamic removes more writes in total than the best static
// split, because no fixed division serves both tenants' anti-phase
// bursts.
func (e *Env) Streams() (*stats.Table, []StreamsRow) {
	tr, warm, dims := workload.AdversarialMix(e.Scale)
	variants := streamSweep()
	e.EnsureCells(e.streamCells("streams", tr, warm, dims, variants))
	streams := []uint32{1, 2}
	rows := make([]StreamsRow, 0, len(variants))
	for _, v := range variants {
		rows = append(rows, streamRow(v, e.cellResult("streams/"+v.key), streams))
	}
	return streamsTable("Index-cache apportionment — adversarial two-tenant mix (writes removed inline)",
		rows, streams), rows
}

// StreamsScan runs the three-tenant variant — the two burst tenants
// plus a churning scan whose working set is 4× the index partition.
// Only shared vs dynamic: the scan floods a shared LRU between every
// burst cycle (near-zero inline dedup for everyone), while per-stream
// quotas floor the polluter and keep serving the burst tenants.
func (e *Env) StreamsScan() (*stats.Table, []StreamsRow) {
	tr, warm, dims := workload.AdversarialScanMix(e.Scale)
	variants := []streamVariant{
		{key: "shared"},
		{key: "dynamic", dynamic: true, streams: engine.StreamParams{Enabled: true}},
	}
	e.EnsureCells(e.streamCells("streams-scan", tr, warm, dims, variants))
	streams := []uint32{1, 2, 3}
	rows := make([]StreamsRow, 0, len(variants))
	for _, v := range variants {
		rows = append(rows, streamRow(v, e.cellResult("streams-scan/"+v.key), streams))
	}
	return streamsTable("Index-cache apportionment — burst tenants + churning scan (writes removed inline)",
		rows, streams), rows
}
