package experiments

import (
	"fmt"
	"time"

	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

// Chunking-axis experiment (not part of the paper's figure set; CDC
// extension). The shifted-content snapshot trace rewrites every object
// across generations with a small head edit, so every 4 KiB block ID
// is unique: fixed-4K chunking — the paper's model — removes zero
// writes by construction. Content-defined chunking re-derives chunk
// boundaries from the materialized bytes, so the byte-shifted
// redundancy dedups. The experiment replays the same trace under each
// chunker on the POD engine and reports write removal plus the raw
// chunking+fingerprint throughput of each splitter.

// ChunkingRow is one chunker's outcome on the shifted trace.
type ChunkingRow struct {
	Algo          string
	Removed       int64 // write requests fully absorbed
	Writes        int64
	DedupedPct    float64 // chunks deduplicated, %
	UsedBlocks    uint64
	MeanWriteUS   float64
	EmittedChunks int64   // CDC chunks emitted over the replay (0 = fixed)
	ThroughputMBs float64 // raw chunk+fingerprint wall-clock throughput
}

// chunkingConfig is the fixed platform for every chunker variant.
func chunkingConfig(dims workload.MixedDims, algo cdc.Algo) engine.Config {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(dims.FootprintChunks))
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: dims.MemoryBytes,
		NVRAMBytes:  int(dims.FootprintChunks * 40),
		Chunking:    cdc.Params{Algo: algo},
	}
}

// chunkingThroughput measures one splitter's raw wall-clock rate —
// materialize, sweep, cut, hash, fingerprint — over rotating stream
// windows, in MB/s of content chunked. Fixed-4K reports the
// SplitInto+FingerprintAll rate over the same window size for
// comparison. This is the wall-clock half of the experiment; the
// replay half charges only the modeled virtual-time cost.
func chunkingThroughput(algo cdc.Algo) float64 {
	const blocks = 64
	const rounds = 48
	ids := make([]chunk.ContentID, blocks)
	if algo == cdc.Fixed4K {
		for i := range ids {
			ids[i] = chunk.ContentID(i*313 + 11)
		}
		e := chunk.NewHashEngine(chunk.SyntheticFingerprinter{}, 0)
		scratch := make([]chunk.Chunk, 0, blocks)
		start := time.Now()
		for r := 0; r < rounds; r++ {
			scratch = chunk.SplitInto(scratch[:0], ids, nil, false)
			e.FingerprintAll(scratch)
		}
		el := time.Since(start).Seconds()
		return float64(rounds*blocks*chunk.Size) / el / 1e6
	}
	s := cdc.NewSplitter(cdc.Params{Algo: algo})
	dst := make([]chunk.Chunk, 0, s.Params().MaxChunksPerSlots(blocks))
	var total int64
	// warm scratch outside the timed region
	for i := range ids {
		ids[i] = cdc.EncodeEdit(1, 0, uint32(128+i))
	}
	dst, _ = s.Split(dst[:0], ids)
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for i := range ids {
			ids[i] = cdc.EncodeEdit(1, uint8(r&7), uint32(128+i))
		}
		var n int64
		dst, n = s.Split(dst[:0], ids)
		total += n
	}
	el := time.Since(start).Seconds()
	return float64(total) / el / 1e6
}

// chunkingAlgos is the swept axis.
func chunkingAlgos() []cdc.Algo { return []cdc.Algo{cdc.Fixed4K, cdc.Gear, cdc.SeqCDC} }

// Chunking replays the shifted snapshot trace under each chunker on
// the POD engine. The claim under test: gear and seqcdc remove a
// substantial fraction of the shifted rewrites while fixed4k removes
// exactly none, at a bounded chunking-throughput cost.
func (e *Env) Chunking() (*stats.Table, []ChunkingRow) {
	tr, warm, dims := workload.ShiftedSnapshot(e.Scale)
	cells := make([]Cell, 0, 3)
	for _, algo := range chunkingAlgos() {
		a := algo
		cells = append(cells, Cell{
			Key:     "chunking/" + a.String(),
			Factory: func() engine.Engine { return core.NewSelectDedupe(chunkingConfig(dims, a)) },
			TraceFn: func() (*trace.Trace, int) { return tr, warm },
		})
	}
	e.EnsureCells(cells)

	rows := make([]ChunkingRow, 0, 3)
	for _, algo := range chunkingAlgos() {
		r := e.cellResult("chunking/" + algo.String())
		rows = append(rows, ChunkingRow{
			Algo:          algo.String(),
			Removed:       r.Stats.WritesRemoved,
			Writes:        r.Stats.Writes,
			DedupedPct:    r.Stats.DedupRatioPct(),
			UsedBlocks:    r.UsedBlocks,
			MeanWriteUS:   r.MeanWriteRT,
			EmittedChunks: r.Metrics.Gauges["cdc_emitted_chunks"],
			ThroughputMBs: chunkingThroughput(algo),
		})
	}

	t := stats.NewTable("Chunking axis — shifted snapshot trace (POD engine)",
		"Chunker", "writes removed", "removed %", "chunks deduped %", "used blocks", "mean write ms", "chunk+fp MB/s")
	for _, row := range rows {
		pct := 0.0
		if row.Writes > 0 {
			pct = 100 * float64(row.Removed) / float64(row.Writes)
		}
		t.AddRow(row.Algo,
			fmt.Sprintf("%d", row.Removed),
			fmt.Sprintf("%.1f%%", pct),
			fmt.Sprintf("%.1f%%", row.DedupedPct),
			fmt.Sprintf("%d", row.UsedBlocks),
			fmt.Sprintf("%.2f", row.MeanWriteUS/1000),
			fmt.Sprintf("%.0f", row.ThroughputMBs),
		)
	}
	return t, rows
}
