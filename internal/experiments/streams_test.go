package experiments

import "testing"

// TestStreamsDynamicBeatsStatic is the headline apportionment claim:
// on the adversarial two-tenant mix, the locality-driven apportioner
// removes more writes in total than EVERY static split of the index
// partition, because the tenants' burst demands are anti-phase and no
// fixed division serves both.
func TestStreamsDynamicBeatsStatic(t *testing.T) {
	e := NewEnv(0.25, 2)
	defer e.Close()
	_, rows := e.Streams()

	var dynamic *StreamsRow
	for i := range rows {
		if rows[i].Dynamic {
			dynamic = &rows[i]
		}
	}
	if dynamic == nil {
		t.Fatal("sweep has no dynamic row")
	}
	if dynamic.TotalRemoved == 0 {
		t.Fatal("dynamic apportionment removed no writes")
	}
	for _, r := range rows {
		if r.Dynamic || r.Removed == nil { // skip dynamic itself and the shared reference
			continue
		}
		if dynamic.TotalRemoved <= r.TotalRemoved {
			t.Errorf("dynamic removed %d writes, not more than %s's %d",
				dynamic.TotalRemoved, r.Variant, r.TotalRemoved)
		}
	}
	// both tenants served, neither starved: the win must come from
	// time-sharing, not from handing everything to one stream
	for _, s := range []uint32{1, 2} {
		if dynamic.Removed[s] == 0 {
			t.Errorf("dynamic starved stream %d (0 writes removed)", s)
		}
	}
	// quota gauges exported and bounded by the index partition
	if q := dynamic.Quota[1] + dynamic.Quota[2]; q <= 0 || q > advPartitionEntries+2 {
		t.Errorf("final stream quotas sum to %d, want (0, %d]", q, advPartitionEntries)
	}
}

// advPartitionEntries mirrors the index partition the adversarial mix
// is tuned against (workload.AdvMemoryBytes / 2 / 64-byte entries).
const advPartitionEntries = 8192

// TestStreamsScanContainsPolluter checks the pollution-containment
// story: adding a churning scan tenant (working set 4× the partition)
// collapses the shared cache to ~zero inline dedup, while per-stream
// apportionment floors the scan and keeps serving the burst tenants.
func TestStreamsScanContainsPolluter(t *testing.T) {
	e := NewEnv(0.25, 2)
	defer e.Close()
	_, rows := e.StreamsScan()

	var shared, dynamic *StreamsRow
	for i := range rows {
		if rows[i].Dynamic {
			dynamic = &rows[i]
		} else {
			shared = &rows[i]
		}
	}
	if shared == nil || dynamic == nil {
		t.Fatal("scan sweep missing shared or dynamic row")
	}
	if dynamic.TotalRemoved <= shared.TotalRemoved {
		t.Fatalf("dynamic removed %d writes vs shared %d; stream isolation should win under pollution",
			dynamic.TotalRemoved, shared.TotalRemoved)
	}
	// the scan stream ends floored, not starved to zero quota while
	// active, and its hopeless duplicates are not cached inline
	if q := dynamic.Quota[3]; q <= 0 || q > advPartitionEntries/5 {
		t.Errorf("scan stream final quota %d, want within (0, %d] (the shared floor)",
			q, advPartitionEntries/5)
	}
}
