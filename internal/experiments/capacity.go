package experiments

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/stats"
)

// CapacityRow is one trace's capacity-reclamation measurement, in
// physical 4 KiB blocks at end of replay (background passes flushed).
type CapacityRow struct {
	Trace                 string
	Native, POD, PODBG    uint64
	Full                  uint64
	GapBlocks             uint64  // POD inline-only minus Full-Dedupe
	ReclaimedBlocks       uint64  // POD inline-only minus POD+bgdedup
	ReclaimedPctOfGap     float64 // reclaimed / gap
	PODPctOfNative        float64
	PODBGPctOfNative      float64
	FullDedupePctOfNative float64
}

// Capacity measures the capacity gap Select-Dedupe's latency-oriented
// write path leaves on disk and how much of it the background
// out-of-line scanner recovers: physical blocks used by Native
// (no dedup), POD (inline-only), POD+bgdedup (inline + idle-time
// reclamation, flushed to convergence at end of replay), and
// Full-Dedupe (the capacity floor), per trace.
func (e *Env) Capacity() (*stats.Table, []CapacityRow) {
	engines := []string{Native, POD, PODBG, FullDedupe}
	e.EnsureMatrix(engines, TraceNames)
	t := stats.NewTable("Capacity reclamation — physical blocks used (and % of Native)",
		"Trace", "Native", "POD", "POD+bgdedup", "Full-Dedupe", "Gap reclaimed")
	var rows []CapacityRow
	for _, tn := range TraceNames {
		native := e.Result(Native, tn).UsedBlocks
		pod := e.Result(POD, tn).UsedBlocks
		podbg := e.Result(PODBG, tn).UsedBlocks
		full := e.Result(FullDedupe, tn).UsedBlocks

		row := CapacityRow{
			Trace: tn, Native: native, POD: pod, PODBG: podbg, Full: full,
			PODPctOfNative:        normalize(float64(pod), float64(native)),
			PODBGPctOfNative:      normalize(float64(podbg), float64(native)),
			FullDedupePctOfNative: normalize(float64(full), float64(native)),
		}
		if pod > full {
			row.GapBlocks = pod - full
		}
		if pod > podbg {
			row.ReclaimedBlocks = pod - podbg
		}
		if row.GapBlocks > 0 {
			row.ReclaimedPctOfGap = 100 * float64(row.ReclaimedBlocks) / float64(row.GapBlocks)
		}
		rows = append(rows, row)

		t.AddRow(tn,
			fmt.Sprintf("%d", native),
			fmt.Sprintf("%d (%.1f%%)", pod, row.PODPctOfNative),
			fmt.Sprintf("%d (%.1f%%)", podbg, row.PODBGPctOfNative),
			fmt.Sprintf("%d (%.1f%%)", full, row.FullDedupePctOfNative),
			fmt.Sprintf("%.1f%%", row.ReclaimedPctOfGap))
	}
	return t, rows
}
