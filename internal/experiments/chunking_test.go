package experiments

import "testing"

// TestChunkingShifted is the experiment's headline assertion: on the
// shifted snapshot trace, fixed-4K chunking removes exactly zero
// writes (every block ID is unique) while gear and seqcdc each remove
// a substantial share of the rewrite generations.
func TestChunkingShifted(t *testing.T) {
	env := NewEnv(0.05, 0)
	defer env.Close()
	_, rows := env.Chunking()
	if len(rows) != 3 {
		t.Fatalf("want 3 chunker rows, got %d", len(rows))
	}
	byAlgo := map[string]ChunkingRow{}
	for _, r := range rows {
		byAlgo[r.Algo] = r
	}

	fixed := byAlgo["fixed4k"]
	if fixed.Removed != 0 {
		t.Fatalf("fixed4k removed %d writes on the shifted trace; unique IDs must yield 0", fixed.Removed)
	}
	if fixed.EmittedChunks != 0 {
		t.Fatalf("fixed4k reports %d CDC chunks; the splitter must be off", fixed.EmittedChunks)
	}

	for _, name := range []string{"gear", "seqcdc"} {
		row := byAlgo[name]
		if row.Writes == 0 {
			t.Fatalf("%s: no measured writes", name)
		}
		if row.Removed == 0 {
			t.Fatalf("%s removed 0 writes; shifted redundancy not recovered", name)
		}
		// the bulk of post-warmup rewrites should be absorbed whole:
		// every request of generations 1+ except the edit-head request
		// of each object is fully duplicate content
		if pct := float64(row.Removed) / float64(row.Writes); pct < 0.5 {
			t.Fatalf("%s removed only %.1f%% of writes, want > 50%%", name, 100*pct)
		}
		if row.EmittedChunks == 0 {
			t.Fatalf("%s: cdc_emitted_chunks gauge is zero", name)
		}
		if row.UsedBlocks >= fixed.UsedBlocks {
			t.Fatalf("%s used %d blocks, not below fixed4k's %d", name, row.UsedBlocks, fixed.UsedBlocks)
		}
	}
}
