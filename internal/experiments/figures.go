package experiments

import (
	"fmt"
	"time"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/replay"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/trace"
)

// Table1 reproduces the qualitative comparison of Table I.
func Table1() *stats.Table {
	t := stats.NewTable("Table I — POD vs. the state of the art",
		"Feature", "I/O Dedup", "iDedup", "Post-process", "POD")
	t.AddRow("Capacity saving", "-", "yes", "yes", "yes")
	t.AddRow("Performance enhancement", "yes", "-", "-", "yes")
	t.AddRow("Small-write elimination", "-", "-", "-", "yes")
	t.AddRow("Large-write elimination", "-", "yes", "yes", "yes")
	t.AddRow("Cache partitioning", "static", "static", "static", "dynamic/adaptive")
	return t
}

// Table2 regenerates the trace-characteristics table.
func (e *Env) Table2() (*stats.Table, []trace.Characteristics) {
	t := stats.NewTable("Table II — trace characteristics",
		"Trace", "Write ratio", "I/Os", "Avg request")
	var out []trace.Characteristics
	for _, tn := range TraceNames {
		p := e.pack(tn)
		a := trace.Analyze(p.tr)
		out = append(out, a.Chars)
		t.AddRow(tn, stats.Pct(a.Chars.WriteRatio),
			fmt.Sprintf("%d", a.Chars.IOs),
			fmt.Sprintf("%.1f KB", a.Chars.AvgReqKB))
	}
	return t, out
}

// Fig1 regenerates the redundancy-by-request-size distributions.
func (e *Env) Fig1() (*stats.Table, map[string][]trace.SizeBucket) {
	t := stats.NewTable("Figure 1 — I/O redundancy by write-request size",
		"Trace", "Size", "Total", "Redundant", "Redundant%")
	out := map[string][]trace.SizeBucket{}
	for _, tn := range TraceNames {
		a := trace.Analyze(e.pack(tn).tr)
		out[tn] = a.Buckets
		for _, b := range a.Buckets {
			label := fmt.Sprintf("%dKB", b.LabelKB)
			if b.LabelKB == trace.BucketLabelsKB[len(trace.BucketLabelsKB)-1] {
				label = fmt.Sprintf("≥%dKB", b.LabelKB)
			}
			t.AddRow(tn, label,
				fmt.Sprintf("%d", b.Total),
				fmt.Sprintf("%d", b.Redundant),
				stats.Pct(stats.Ratio(b.Redundant, b.Total)))
		}
	}
	return t, out
}

// Fig2Row is one bar pair of Figure 2.
type Fig2Row struct {
	Trace           string
	SameLBAPct      float64 // same location, same content
	DiffLBAPct      float64 // different location, same content (capacity redundancy)
	IORedundancyPct float64
}

// Fig2 regenerates the I/O vs. capacity redundancy comparison.
func (e *Env) Fig2() (*stats.Table, []Fig2Row) {
	t := stats.NewTable("Figure 2 — I/O redundancy vs capacity redundancy (% of write data)",
		"Trace", "Same-location", "Diff-location (capacity)", "I/O redundancy (total)")
	var rows []Fig2Row
	for _, tn := range TraceNames {
		a := trace.Analyze(e.pack(tn).tr)
		rows = append(rows, Fig2Row{
			Trace:           tn,
			SameLBAPct:      a.SameLBAPct,
			DiffLBAPct:      a.DiffLBAPct,
			IORedundancyPct: a.IORedundancyPct,
		})
		t.AddRow(tn, stats.Pct(a.SameLBAPct), stats.Pct(a.DiffLBAPct), stats.Pct(a.IORedundancyPct))
	}
	return t, rows
}

// Fig3Row is one sweep point of Figure 3.
type Fig3Row struct {
	IndexFrac           float64
	ReadRTms, WriteRTms float64
}

// Fig3 sweeps the static index-cache share on the mail trace under
// Full-Dedupe: a larger index cache helps writes and hurts reads.
func (e *Env) Fig3(fracs []float64) (*stats.Table, []Fig3Row) {
	if len(fracs) == 0 {
		fracs = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	}
	p := corpusPack("mail", e.Scale)
	cells := make([]Cell, len(fracs))
	for i, f := range fracs {
		f := f
		c := Cell{
			Key: fmt.Sprintf("fig3/%.0f", f*100),
			Factory: func() engine.Engine {
				cfg := BuildConfig(p.prof, e.Scale)
				cfg.IndexFrac = f
				return NewEngine(FullDedupe, cfg)
			},
			TraceFn: p.generate,
		}
		if f == 0.5 {
			// the platform default: identical to the Full-Dedupe/mail
			// matrix cell, so the planner shares one replay with
			// Figures 8–10
			c.Key = key(FullDedupe, "mail")
		}
		cells[i] = c
	}
	e.EnsureCells(cells)

	t := stats.NewTable("Figure 3 — response time vs index-cache share (mail, Full-Dedupe)",
		"Index cache", "Read RT", "Write RT")
	var rows []Fig3Row
	for i := range cells {
		r := e.cellResult(cells[i].Key)
		rows = append(rows, Fig3Row{
			IndexFrac: fracs[i],
			ReadRTms:  r.MeanReadRT / 1000,
			WriteRTms: r.MeanWriteRT / 1000,
		})
		t.AddRow(stats.Pct(fracs[i]*100), stats.Ms(r.MeanReadRT), stats.Ms(r.MeanWriteRT))
	}
	return t, rows
}

// NormRow is one (trace, engine) cell of a normalized-metric figure.
type NormRow struct {
	Trace, Engine string
	Value         float64 // percent of Native
}

// normFigure builds a normalized-to-Native table over the fig8 engine
// set using the given per-result metric.
func (e *Env) normFigure(title string, engines []string, metric func(*replay.Result) float64) (*stats.Table, []NormRow) {
	e.EnsureMatrix(engines, TraceNames)
	t := stats.NewTable(title, append([]string{"Trace"}, engines...)...)
	var rows []NormRow
	for _, tn := range TraceNames {
		base := metric(e.Result(Native, tn))
		cells := []string{tn}
		for _, en := range engines {
			v := normalize(metric(e.Result(en, tn)), base)
			rows = append(rows, NormRow{Trace: tn, Engine: en, Value: v})
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		t.AddRow(cells...)
	}
	return t, rows
}

// Fig8 regenerates the normalized overall response times.
func (e *Env) Fig8() (*stats.Table, []NormRow) {
	return e.normFigure("Figure 8 — normalized response time (% of Native, lower is better)",
		Fig8Engines, func(r *replay.Result) float64 { return r.MeanRT })
}

// Fig9Write regenerates Figure 9(a): normalized write response times.
func (e *Env) Fig9Write() (*stats.Table, []NormRow) {
	return e.normFigure("Figure 9a — normalized WRITE response time (% of Native)",
		Fig8Engines, func(r *replay.Result) float64 { return r.MeanWriteRT })
}

// Fig9Read regenerates Figure 9(b): normalized read response times.
func (e *Env) Fig9Read() (*stats.Table, []NormRow) {
	return e.normFigure("Figure 9b — normalized READ response time (% of Native)",
		Fig8Engines, func(r *replay.Result) float64 { return r.MeanReadRT })
}

// Fig10 regenerates the normalized storage-capacity usage.
func (e *Env) Fig10() (*stats.Table, []NormRow) {
	return e.normFigure("Figure 10 — normalized storage capacity used (% of Native)",
		Fig8Engines, func(r *replay.Result) float64 { return float64(r.UsedBlocks) })
}

// Fig11 regenerates the percentage of write requests removed, adding
// POD to the engine set.
func (e *Env) Fig11() (*stats.Table, []NormRow) {
	engines := []string{FullDedupe, IDedup, SelectDedupe, POD}
	e.EnsureMatrix(engines, TraceNames)
	t := stats.NewTable("Figure 11 — write requests removed (%)",
		append([]string{"Trace"}, engines...)...)
	var rows []NormRow
	for _, tn := range TraceNames {
		cells := []string{tn}
		for _, en := range engines {
			v := e.Result(en, tn).Stats.WriteRemovalPct()
			rows = append(rows, NormRow{Trace: tn, Engine: en, Value: v})
			cells = append(cells, fmt.Sprintf("%.1f", v))
		}
		t.AddRow(cells...)
	}
	return t, rows
}

// Raw reports absolute (non-normalized) per-engine measurements —
// useful for calibration and for EXPERIMENTS.md context.
func (e *Env) Raw() *stats.Table {
	e.EnsureMatrix(Fig11Engines, TraceNames)
	t := stats.NewTable("Raw measurements",
		"Trace", "Engine", "Read RT", "Write RT", "Removed%", "Dedup%", "CacheHit%", "IndexIOs", "Used blocks")
	for _, tn := range TraceNames {
		for _, en := range Fig11Engines {
			r := e.Result(en, tn)
			t.AddRow(tn, en,
				stats.Ms(r.MeanReadRT), stats.Ms(r.MeanWriteRT),
				fmt.Sprintf("%.1f", r.Stats.WriteRemovalPct()),
				fmt.Sprintf("%.1f", r.Stats.DedupRatioPct()),
				fmt.Sprintf("%.1f", r.Stats.CacheHitPct()),
				fmt.Sprintf("%d", r.Stats.IndexDiskIOs),
				fmt.Sprintf("%d", r.UsedBlocks))
		}
	}
	return t
}

// SchemesTable compares every implemented scheme — including the two
// extra Table I baselines (I/O-Dedup, Post-Process) the paper discusses
// but does not plot — on normalized response time, capacity, and write
// removal, giving Table I an experimental backing.
func (e *Env) SchemesTable() *stats.Table {
	e.EnsureMatrix(AllEngines, TraceNames)
	t := stats.NewTable("All schemes — normalized RT / capacity / writes removed",
		"Trace", "Engine", "RT % of Native", "Capacity %", "Removed %")
	for _, tn := range TraceNames {
		base := e.Result(Native, tn)
		for _, en := range AllEngines {
			r := e.Result(en, tn)
			t.AddRow(tn, en,
				fmt.Sprintf("%.1f", normalize(r.MeanRT, base.MeanRT)),
				fmt.Sprintf("%.1f", normalize(float64(r.UsedBlocks), float64(base.UsedBlocks))),
				fmt.Sprintf("%.1f", r.Stats.WriteRemovalPct()))
		}
	}
	return t
}

// OverheadRow reports §IV-D for one trace.
type OverheadRow struct {
	Trace          string
	NVRAMPeakBytes int64
	MapEntries     int64
}

// Overhead regenerates the §IV-D analysis: the Map table's NVRAM
// high-water mark under POD (20 bytes/entry) and the measured cost of
// fingerprinting one 4 KB chunk with real SHA-1 on this host.
func (e *Env) Overhead() (*stats.Table, []OverheadRow, float64) {
	e.EnsureMatrix([]string{POD}, TraceNames)
	t := stats.NewTable("§IV-D — deduplication overheads under POD",
		"Trace", "Map-table NVRAM peak", "entries")
	var rows []OverheadRow
	for _, tn := range TraceNames {
		r := e.Result(POD, tn)
		rows = append(rows, OverheadRow{
			Trace:          tn,
			NVRAMPeakBytes: r.Stats.NVRAMPeakBytes,
			MapEntries:     r.Stats.NVRAMPeakBytes / 20,
		})
		t.AddRow(tn,
			fmt.Sprintf("%.2f MB", float64(r.Stats.NVRAMPeakBytes)/(1<<20)),
			fmt.Sprintf("%d", r.Stats.NVRAMPeakBytes/20))
	}

	// measured SHA-1 fingerprint latency for one 4 KB chunk
	var fp chunk.SHA1Fingerprinter
	c := chunk.Chunk{Content: 1, Data: chunk.Payload(1)}
	const iters = 2000
	start := time.Now()
	for i := 0; i < iters; i++ {
		fp.Fingerprint(&c)
	}
	perChunkUS := float64(time.Since(start).Microseconds()) / iters
	t.AddRow("SHA-1/4KB", fmt.Sprintf("%.2f µs measured", perChunkUS),
		fmt.Sprintf("modeled %d µs", chunk.DefaultChunkTimeUS))
	return t, rows, perChunkUS
}
