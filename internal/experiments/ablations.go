package experiments

import (
	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/replay"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/workload"
)

// Ablation experiments beyond the paper's figures: sensitivity of the
// design-choice knobs DESIGN.md calls out.

// ThresholdPoint replays one trace under Select-Dedupe with a given
// partial-redundancy threshold, returning the mean response time (µs)
// and the write-removal percentage. Threshold 1 degenerates toward
// Full-Dedupe's per-chunk behaviour (maximum dedup, maximum
// fragmentation risk); large thresholds approach iDedup's conservatism.
func (e *Env) ThresholdPoint(traceName string, threshold int) (float64, float64) {
	p := e.pack(traceName)
	cfg := BuildConfig(p.prof, e.Scale)
	cfg.Threshold = threshold
	r := replay.Run(core.NewSelectDedupe(cfg), p.tr, p.warmup)
	return r.MeanRT, r.Stats.WriteRemovalPct()
}

// ThresholdSweep runs ThresholdPoint across thresholds and formats the
// result.
func (e *Env) ThresholdSweep(traceName string, thresholds []int) *stats.Table {
	if len(thresholds) == 0 {
		thresholds = []int{1, 2, 3, 4, 6, 8}
	}
	t := stats.NewTable("Ablation — Select-Dedupe threshold on "+traceName,
		"Threshold", "Mean RT", "Writes removed")
	for _, th := range thresholds {
		rt, removed := e.ThresholdPoint(traceName, th)
		t.AddRowf("%d\t%s\t%s", th, stats.Ms(rt), stats.Pct(removed))
	}
	return t
}

// StripeUnitPoint replays one trace under POD with a given RAID5 stripe
// unit, returning the mean response time (µs).
func (e *Env) StripeUnitPoint(traceName string, stripeKB int) float64 {
	p := e.pack(traceName)
	diskBlocks := p.prof.FootprintChunks / 2
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(diskBlocks))
	}
	cfg := BuildConfig(p.prof, e.Scale)
	cfg.Array = raid.New(raid.RAID5, disks, uint64(stripeKB/4))
	r := replay.Run(core.NewPOD(cfg), p.tr, p.warmup)
	return r.MeanRT
}

// StripeUnitSweep runs StripeUnitPoint across units and formats the
// result.
func (e *Env) StripeUnitSweep(traceName string, unitsKB []int) *stats.Table {
	if len(unitsKB) == 0 {
		unitsKB = []int{16, 32, 64, 128, 256}
	}
	t := stats.NewTable("Ablation — RAID5 stripe unit under POD on "+traceName,
		"Stripe unit", "Mean RT")
	for _, kb := range unitsKB {
		t.AddRowf("%dKB\t%s", kb, stats.Ms(e.StripeUnitPoint(traceName, kb)))
	}
	return t
}

// DupSweepPoint measures mean write response time (µs) under a
// synthetic workload whose fully-redundant write fraction is exactly
// dupFrac, for the named engine — isolating how performance scales
// with available redundancy.
func (e *Env) DupSweepPoint(engineName string, dupFrac float64) float64 {
	prof := workload.Profile{
		Name:            "dupsweep",
		Seed:            0xD0D0,
		IOs:             int(20000 * e.Scale * 10), // independent of trace scale granularity
		WriteRatio:      0.8,
		WriteSizes:      []workload.SizeWeight{{Chunks: 1, Weight: 50}, {Chunks: 2, Weight: 25}, {Chunks: 4, Weight: 15}, {Chunks: 8, Weight: 10}},
		ReadSizes:       []workload.SizeWeight{{Chunks: 1, Weight: 50}, {Chunks: 4, Weight: 30}, {Chunks: 8, Weight: 20}},
		FullDupFrac:     dupFrac,
		SameLBAFrac:     0.4,
		WriteDeepFrac:   0.1,
		FootprintChunks: 1 << 18,
		MemoryBytes:     8 << 20,
		PhaseLen:        256,
		WritePhase:      0.95,
		ReadPhase:       0.65,
		BurstGapUS:      11000,
		IdleGapUS:       2_000_000,
		WarmupFrac:      0.2,
	}
	if prof.IOs < 2000 {
		prof.IOs = 2000
	}
	tr, warmup := workload.Generate(prof, 1.0)
	cfg := BuildConfig(prof, 1.0)
	r := replay.Run(NewEngine(engineName, cfg), tr, warmup)
	return r.MeanWriteRT
}

// DupSweep compares POD against Native across redundancy levels.
func (e *Env) DupSweep(fracs []float64) *stats.Table {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	t := stats.NewTable("Ablation — write RT vs workload redundancy",
		"Redundant writes", "Native", "POD", "POD vs Native")
	for _, f := range fracs {
		n := e.DupSweepPoint(Native, f)
		p := e.DupSweepPoint(POD, f)
		t.AddRowf("%.0f%%\t%s\t%s\t%.1f%%", f*100, stats.Ms(n), stats.Ms(p), 100*p/n)
	}
	return t
}

// LayoutPoint replays one trace under the named engine on a given RAID
// layout, returning the mean write RT (µs). The RAID5 read-modify-write
// penalty is what makes write elimination so valuable; RAID1 and RAID0
// quantify how much of POD's benefit survives on layouts without it.
func (e *Env) LayoutPoint(engineName, traceName string, level raid.Level) float64 {
	p := e.pack(traceName)
	diskBlocks := p.prof.FootprintChunks / 2
	nd := 4
	if level == raid.RAID0 {
		// RAID0 over 4 disks has 4/3 the data capacity; keep capacity
		// comparable by shrinking the disks
		diskBlocks = diskBlocks * 3 / 4
	}
	if level == raid.RAID1 {
		// mirrored pairs halve capacity: double the disk size
		diskBlocks = diskBlocks * 3 / 2
	}
	disks := make([]*disk.Disk, nd)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(diskBlocks))
	}
	cfg := BuildConfig(p.prof, e.Scale)
	cfg.Array = raid.New(level, disks, 16)
	r := replay.Run(NewEngine(engineName, cfg), p.tr, p.warmup)
	return r.MeanWriteRT
}

// LayoutSweep compares Native and POD write latency across layouts.
func (e *Env) LayoutSweep(traceName string) *stats.Table {
	t := stats.NewTable("Ablation — RAID layout vs write RT on "+traceName,
		"Layout", "Native", "POD", "POD vs Native")
	for _, l := range []struct {
		name  string
		level raid.Level
	}{{"RAID0", raid.RAID0}, {"RAID1", raid.RAID1}, {"RAID5", raid.RAID5}} {
		n := e.LayoutPoint(Native, traceName, l.level)
		p := e.LayoutPoint(POD, traceName, l.level)
		t.AddRowf("%s	%s	%s	%.1f%%", l.name, stats.Ms(n), stats.Ms(p), 100*p/n)
	}
	return t
}

// ChurnPoint replays a sustained-overwrite workload (a small logical
// region rewritten with fresh content far beyond its size) under POD,
// with or without the segment cleaner, returning the mean write RT (µs)
// and the final free-extent count (fragmentation).
func (e *Env) ChurnPoint(cleaner bool) (float64, int) {
	prof := workload.Profile{
		Name:            "churn",
		Seed:            0xC09D,
		IOs:             int(20000 * e.Scale * 10),
		WriteRatio:      0.9,
		WriteSizes:      []workload.SizeWeight{{Chunks: 3, Weight: 25}, {Chunks: 5, Weight: 25}, {Chunks: 8, Weight: 30}, {Chunks: 16, Weight: 20}},
		ReadSizes:       []workload.SizeWeight{{Chunks: 1, Weight: 60}, {Chunks: 4, Weight: 40}},
		FullDupFrac:     0.10,
		SameLBAFrac:     0.9, // overwhelmingly in-place rewrites: maximum churn
		WriteDeepFrac:   0.3,
		FootprintChunks: 1 << 14, // small region: the log wraps many times
		MemoryBytes:     4 << 20,
		PhaseLen:        256,
		WritePhase:      0.95,
		ReadPhase:       0.7,
		BurstGapUS:      24000, // light load: latency reflects allocation quality, not queueing
		IdleGapUS:       2_000_000,
		WarmupFrac:      0.2,
	}
	if prof.IOs < 4000 {
		prof.IOs = 4000
	}
	tr, warmup := workload.Generate(prof, 1.0)
	cfg := BuildConfig(prof, 1.0)
	cfg.Cleaner = engine.CleanerParams{
		Enabled:     cleaner,
		TriggerFree: 1 << 13,
		MaxGap:      256,
		Interval:    sim.Second,
	}
	eng := core.NewPOD(cfg)
	r := replay.Run(eng, tr, warmup)
	return r.MeanWriteRT, eng.Base().Alloc.NumFreeExtents()
}

// ChurnSweep formats the cleaner on/off comparison.
func (e *Env) ChurnSweep() *stats.Table {
	t := stats.NewTable("Ablation — segment cleaner under sustained overwrite churn (POD; a negative result: extent coalescing already contains fragmentation)",
		"Cleaner", "Mean write RT", "Free extents at end")
	for _, on := range []bool{false, true} {
		rt, frag := e.ChurnPoint(on)
		label := "off"
		if on {
			label = "on"
		}
		t.AddRowf("%s	%s	%d", label, stats.Ms(rt), frag)
	}
	return t
}

// DegradedPoint replays one trace under POD with one failed spindle
// (RAID5 degraded mode) and returns mean read RT (µs) healthy vs
// degraded — the kind of failure-injection evaluation the paper leaves
// as future work.
func (e *Env) DegradedPoint(traceName string) (healthy, degraded float64) {
	p := e.pack(traceName)

	cfg := BuildConfig(p.prof, e.Scale)
	r := replay.Run(core.NewPOD(cfg), p.tr, p.warmup)
	healthy = r.MeanReadRT

	cfg2 := BuildConfig(p.prof, e.Scale)
	cfg2.Array.Fail(0)
	r2 := replay.Run(core.NewPOD(cfg2), p.tr, p.warmup)
	degraded = r2.MeanReadRT
	return healthy, degraded
}
