package experiments

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/replay"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/stats"
	"github.com/pod-dedup/pod/internal/workload"
)

// Ablation experiments beyond the paper's figures: sensitivity of the
// design-choice knobs DESIGN.md calls out. Every sweep point is a
// planner cell (see Cell): points whose knob sits at the platform
// default fold onto the corresponding (engine, trace) matrix cell, and
// each sweep batches its cells through EnsureCells so they run on the
// Env's shared pool instead of serializing in the caller.

// thresholdCell is Select-Dedupe with a given partial-redundancy
// threshold; threshold 3 is the platform default and shares the matrix
// cell.
func (e *Env) thresholdCell(traceName string, threshold int) Cell {
	if threshold == 3 {
		return e.matrixCell(SelectDedupe, traceName)
	}
	p := corpusPack(traceName, e.Scale)
	return Cell{
		Key: fmt.Sprintf("ablate/threshold/%s/%d", traceName, threshold),
		Factory: func() engine.Engine {
			cfg := BuildConfig(p.prof, e.Scale)
			cfg.Threshold = threshold
			return core.NewSelectDedupe(cfg)
		},
		TraceFn: p.generate,
	}
}

// ThresholdPoint replays one trace under Select-Dedupe with a given
// partial-redundancy threshold, returning the mean response time (µs)
// and the write-removal percentage. Threshold 1 degenerates toward
// Full-Dedupe's per-chunk behaviour (maximum dedup, maximum
// fragmentation risk); large thresholds approach iDedup's conservatism.
func (e *Env) ThresholdPoint(traceName string, threshold int) (float64, float64) {
	c := e.thresholdCell(traceName, threshold)
	e.EnsureCells([]Cell{c})
	r := e.cellResult(c.Key)
	return r.MeanRT, r.Stats.WriteRemovalPct()
}

// ThresholdSweep runs ThresholdPoint across thresholds and formats the
// result.
func (e *Env) ThresholdSweep(traceName string, thresholds []int) *stats.Table {
	if len(thresholds) == 0 {
		thresholds = []int{1, 2, 3, 4, 6, 8}
	}
	cells := make([]Cell, len(thresholds))
	for i, th := range thresholds {
		cells[i] = e.thresholdCell(traceName, th)
	}
	e.EnsureCells(cells)
	t := stats.NewTable("Ablation — Select-Dedupe threshold on "+traceName,
		"Threshold", "Mean RT", "Writes removed")
	for _, th := range thresholds {
		rt, removed := e.ThresholdPoint(traceName, th)
		t.AddRowf("%d\t%s\t%s", th, stats.Ms(rt), stats.Pct(removed))
	}
	return t
}

// stripeCell is POD on a RAID5 array with a given stripe unit; 64 KB
// is the platform default and shares the matrix cell.
func (e *Env) stripeCell(traceName string, stripeKB int) Cell {
	if stripeKB == 64 {
		return e.matrixCell(POD, traceName)
	}
	p := corpusPack(traceName, e.Scale)
	return Cell{
		Key: fmt.Sprintf("ablate/stripe/%s/%d", traceName, stripeKB),
		Factory: func() engine.Engine {
			diskBlocks := p.prof.FootprintChunks / 2
			disks := make([]*disk.Disk, 4)
			for i := range disks {
				disks[i] = disk.New(disk.DefaultParams(diskBlocks))
			}
			cfg := BuildConfig(p.prof, e.Scale)
			cfg.Array = raid.New(raid.RAID5, disks, uint64(stripeKB/4))
			return core.NewPOD(cfg)
		},
		TraceFn: p.generate,
	}
}

// StripeUnitPoint replays one trace under POD with a given RAID5 stripe
// unit, returning the mean response time (µs).
func (e *Env) StripeUnitPoint(traceName string, stripeKB int) float64 {
	c := e.stripeCell(traceName, stripeKB)
	e.EnsureCells([]Cell{c})
	return e.cellResult(c.Key).MeanRT
}

// StripeUnitSweep runs StripeUnitPoint across units and formats the
// result.
func (e *Env) StripeUnitSweep(traceName string, unitsKB []int) *stats.Table {
	if len(unitsKB) == 0 {
		unitsKB = []int{16, 32, 64, 128, 256}
	}
	cells := make([]Cell, len(unitsKB))
	for i, kb := range unitsKB {
		cells[i] = e.stripeCell(traceName, kb)
	}
	e.EnsureCells(cells)
	t := stats.NewTable("Ablation — RAID5 stripe unit under POD on "+traceName,
		"Stripe unit", "Mean RT")
	for _, kb := range unitsKB {
		t.AddRowf("%dKB\t%s", kb, stats.Ms(e.StripeUnitPoint(traceName, kb)))
	}
	return t
}

// dupProfile is the synthetic workload whose fully-redundant write
// fraction is exactly dupFrac.
func dupProfile(scale, dupFrac float64) workload.Profile {
	prof := workload.Profile{
		Name:            "dupsweep",
		Seed:            0xD0D0,
		IOs:             int(20000 * scale * 10), // independent of trace scale granularity
		WriteRatio:      0.8,
		WriteSizes:      []workload.SizeWeight{{Chunks: 1, Weight: 50}, {Chunks: 2, Weight: 25}, {Chunks: 4, Weight: 15}, {Chunks: 8, Weight: 10}},
		ReadSizes:       []workload.SizeWeight{{Chunks: 1, Weight: 50}, {Chunks: 4, Weight: 30}, {Chunks: 8, Weight: 20}},
		FullDupFrac:     dupFrac,
		SameLBAFrac:     0.4,
		WriteDeepFrac:   0.1,
		FootprintChunks: 1 << 18,
		MemoryBytes:     8 << 20,
		PhaseLen:        256,
		WritePhase:      0.95,
		ReadPhase:       0.65,
		BurstGapUS:      11000,
		IdleGapUS:       2_000_000,
		WarmupFrac:      0.2,
	}
	if prof.IOs < 2000 {
		prof.IOs = 2000
	}
	return prof
}

// dupPack returns the Env-cached trace pack for one redundancy
// fraction, so Native and POD replay the same generated trace instead
// of regenerating it once per engine.
func (e *Env) dupPack(dupFrac float64) *tracePack {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.dupPacks == nil {
		e.dupPacks = make(map[float64]*tracePack)
	}
	if p, ok := e.dupPacks[dupFrac]; ok {
		return p
	}
	p := &tracePack{prof: dupProfile(e.Scale, dupFrac), scale: 1.0}
	e.dupPacks[dupFrac] = p
	return p
}

// dupCell is one (engine, redundancy fraction) point of the sweep.
func (e *Env) dupCell(engineName string, dupFrac float64) Cell {
	p := e.dupPack(dupFrac)
	return Cell{
		Key: fmt.Sprintf("ablate/dup/%s/%.0f", engineName, dupFrac*100),
		Factory: func() engine.Engine {
			return NewEngine(engineName, BuildConfig(p.prof, 1.0))
		},
		TraceFn: p.generate,
	}
}

// DupSweepPoint measures mean write response time (µs) under a
// synthetic workload whose fully-redundant write fraction is exactly
// dupFrac, for the named engine — isolating how performance scales
// with available redundancy.
func (e *Env) DupSweepPoint(engineName string, dupFrac float64) float64 {
	c := e.dupCell(engineName, dupFrac)
	e.EnsureCells([]Cell{c})
	return e.cellResult(c.Key).MeanWriteRT
}

// DupSweep compares POD against Native across redundancy levels.
func (e *Env) DupSweep(fracs []float64) *stats.Table {
	if len(fracs) == 0 {
		fracs = []float64{0, 0.25, 0.5, 0.75, 0.9}
	}
	var cells []Cell
	for _, f := range fracs {
		cells = append(cells, e.dupCell(Native, f), e.dupCell(POD, f))
	}
	e.EnsureCells(cells)
	t := stats.NewTable("Ablation — write RT vs workload redundancy",
		"Redundant writes", "Native", "POD", "POD vs Native")
	for _, f := range fracs {
		n := e.DupSweepPoint(Native, f)
		p := e.DupSweepPoint(POD, f)
		t.AddRowf("%.0f%%\t%s\t%s\t%.1f%%", f*100, stats.Ms(n), stats.Ms(p), 100*p/n)
	}
	return t
}

// layoutCell is one (engine, RAID layout) point; RAID5 is the platform
// default and shares the matrix cell. The RAID5 read-modify-write
// penalty is what makes write elimination so valuable; RAID1 and RAID0
// quantify how much of POD's benefit survives on layouts without it.
func (e *Env) layoutCell(engineName, traceName string, level raid.Level) Cell {
	if level == raid.RAID5 {
		return e.matrixCell(engineName, traceName)
	}
	p := corpusPack(traceName, e.Scale)
	return Cell{
		Key: fmt.Sprintf("ablate/layout/%s/%s/%d", engineName, traceName, level),
		Factory: func() engine.Engine {
			diskBlocks := p.prof.FootprintChunks / 2
			nd := 4
			if level == raid.RAID0 {
				// RAID0 over 4 disks has 4/3 the data capacity; keep capacity
				// comparable by shrinking the disks
				diskBlocks = diskBlocks * 3 / 4
			}
			if level == raid.RAID1 {
				// mirrored pairs halve capacity: double the disk size
				diskBlocks = diskBlocks * 3 / 2
			}
			disks := make([]*disk.Disk, nd)
			for i := range disks {
				disks[i] = disk.New(disk.DefaultParams(diskBlocks))
			}
			cfg := BuildConfig(p.prof, e.Scale)
			cfg.Array = raid.New(level, disks, 16)
			return NewEngine(engineName, cfg)
		},
		TraceFn: p.generate,
	}
}

// LayoutPoint replays one trace under the named engine on a given RAID
// layout, returning the mean write RT (µs).
func (e *Env) LayoutPoint(engineName, traceName string, level raid.Level) float64 {
	c := e.layoutCell(engineName, traceName, level)
	e.EnsureCells([]Cell{c})
	return e.cellResult(c.Key).MeanWriteRT
}

// LayoutSweep compares Native and POD write latency across layouts.
func (e *Env) LayoutSweep(traceName string) *stats.Table {
	levels := []struct {
		name  string
		level raid.Level
	}{{"RAID0", raid.RAID0}, {"RAID1", raid.RAID1}, {"RAID5", raid.RAID5}}
	var cells []Cell
	for _, l := range levels {
		cells = append(cells, e.layoutCell(Native, traceName, l.level), e.layoutCell(POD, traceName, l.level))
	}
	e.EnsureCells(cells)
	t := stats.NewTable("Ablation — RAID layout vs write RT on "+traceName,
		"Layout", "Native", "POD", "POD vs Native")
	for _, l := range levels {
		n := e.LayoutPoint(Native, traceName, l.level)
		p := e.LayoutPoint(POD, traceName, l.level)
		t.AddRowf("%s	%s	%s	%.1f%%", l.name, stats.Ms(n), stats.Ms(p), 100*p/n)
	}
	return t
}

// ChurnPoint replays a sustained-overwrite workload (a small logical
// region rewritten with fresh content far beyond its size) under POD,
// with or without the segment cleaner, returning the mean write RT (µs)
// and the final free-extent count (fragmentation). The replay stays on
// the calling goroutine instead of becoming a planner cell: the
// measurement needs the engine's allocator state after the run, which
// pool jobs release.
func (e *Env) ChurnPoint(cleaner bool) (float64, int) {
	prof := workload.Profile{
		Name:            "churn",
		Seed:            0xC09D,
		IOs:             int(20000 * e.Scale * 10),
		WriteRatio:      0.9,
		WriteSizes:      []workload.SizeWeight{{Chunks: 3, Weight: 25}, {Chunks: 5, Weight: 25}, {Chunks: 8, Weight: 30}, {Chunks: 16, Weight: 20}},
		ReadSizes:       []workload.SizeWeight{{Chunks: 1, Weight: 60}, {Chunks: 4, Weight: 40}},
		FullDupFrac:     0.10,
		SameLBAFrac:     0.9, // overwhelmingly in-place rewrites: maximum churn
		WriteDeepFrac:   0.3,
		FootprintChunks: 1 << 14, // small region: the log wraps many times
		MemoryBytes:     4 << 20,
		PhaseLen:        256,
		WritePhase:      0.95,
		ReadPhase:       0.7,
		BurstGapUS:      24000, // light load: latency reflects allocation quality, not queueing
		IdleGapUS:       2_000_000,
		WarmupFrac:      0.2,
	}
	if prof.IOs < 4000 {
		prof.IOs = 4000
	}
	tr, warmup := workload.Generate(prof, 1.0)
	cfg := BuildConfig(prof, 1.0)
	cfg.Cleaner = engine.CleanerParams{
		Enabled:     cleaner,
		TriggerFree: 1 << 13,
		MaxGap:      256,
		Interval:    sim.Second,
	}
	eng := core.NewPOD(cfg)
	r := replay.Run(eng, tr, warmup)
	frag := eng.Base().Alloc.NumFreeExtents()
	eng.Release()
	return r.MeanWriteRT, frag
}

// ChurnSweep formats the cleaner on/off comparison.
func (e *Env) ChurnSweep() *stats.Table {
	t := stats.NewTable("Ablation — segment cleaner under sustained overwrite churn (POD; a negative result: extent coalescing already contains fragmentation)",
		"Cleaner", "Mean write RT", "Free extents at end")
	for _, on := range []bool{false, true} {
		rt, frag := e.ChurnPoint(on)
		label := "off"
		if on {
			label = "on"
		}
		t.AddRowf("%s	%s	%d", label, stats.Ms(rt), frag)
	}
	return t
}

// DegradedPoint replays one trace under POD with one failed spindle
// (RAID5 degraded mode) and returns mean read RT (µs) healthy vs
// degraded — the kind of failure-injection evaluation the paper leaves
// as future work. The healthy run is exactly the POD matrix cell.
func (e *Env) DegradedPoint(traceName string) (healthy, degraded float64) {
	p := corpusPack(traceName, e.Scale)
	hc := e.matrixCell(POD, traceName)
	dc := Cell{
		Key: "ablate/degraded/" + traceName,
		Factory: func() engine.Engine {
			cfg := BuildConfig(p.prof, e.Scale)
			cfg.Array.Fail(0)
			return core.NewPOD(cfg)
		},
		TraceFn: p.generate,
	}
	e.EnsureCells([]Cell{hc, dc})
	return e.cellResult(hc.Key).MeanReadRT, e.cellResult(dc.Key).MeanReadRT
}
