package bgdedup

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/sim"
)

// Params tunes the background deduplication scanner; zero values select
// the defaults.
type Params struct {
	// Interval is the minimum virtual time between scan steps
	// (default 500 ms).
	Interval sim.Duration
	// BlocksPerSec budgets scan throughput: each step covers
	// Interval × BlocksPerSec blocks of the data region
	// (default 16384 blocks/s ≈ 64 MiB/s of 4 KiB blocks).
	BlocksPerSec int64
	// MaxBacklog pauses scanning while the array's queued work exceeds
	// this much virtual time. The default (0) pauses on any backlog —
	// the scanner runs only in fully idle windows.
	MaxBacklog sim.Duration
	// MaxArrivalRate additionally pauses scanning while the foreground
	// arrival rate (requests per simulated second, estimated over
	// RateWindow) exceeds this threshold; 0 disables the rate gate.
	MaxArrivalRate float64
	// RateWindow is the arrival-rate estimation window (default 1 s).
	RateWindow sim.Duration
}

func (p Params) withDefaults() Params {
	if p.Interval == 0 {
		p.Interval = 500 * sim.Millisecond
	}
	if p.BlocksPerSec == 0 {
		p.BlocksPerSec = 16384
	}
	if p.RateWindow == 0 {
		p.RateWindow = sim.Second
	}
	return p
}

// Scanner is the idle-aware out-of-line deduplication scanner: a
// cursor sweep over the engine's data region that fingerprints live
// blocks and rewires all referrers of a duplicate copy to one
// canonical block, freeing the rest. It runs in virtual time from the
// engine's per-request Tick, pausing whenever foreground load is
// present, and converges under Flush at end of run.
type Scanner struct {
	b    *engine.Base
	core *Core
	p    Params

	cursor   uint64   // next block of the sweep
	nextStep sim.Time // earliest virtual time of the next step

	// arrival-rate estimator: every Tick is one foreground request
	winStart sim.Time
	winTicks int64
	rate     float64

	steps          int64 // scan steps executed
	wraps          int64 // complete sweeps of the data region
	scanIOs        int64 // background read I/Os issued
	pausedBusy     int64 // steps deferred on disk backlog
	pausedLoad     int64 // steps deferred on arrival rate
	skippedExtents int64 // extents skipped on read faults
}

// New attaches a scanner to the engine substrate: the Map table's
// reverse index is enabled, the scanner joins the engine's
// Tick/Flush/Recover background path, and its progress gauges join the
// engine registry.
func New(b *engine.Base, p Params) *Scanner {
	s := &Scanner{b: b, core: NewCore(b), p: p.withDefaults()}
	s.nextStep = sim.Time(s.p.Interval)
	b.SetBackground(s)

	b.Reg.GaugeFunc("bgdedup_steps", func() int64 { return s.steps })
	b.Reg.GaugeFunc("bgdedup_wraps", func() int64 { return s.wraps })
	b.Reg.GaugeFunc("bgdedup_cursor_blocks", func() int64 { return int64(s.cursor) })
	b.Reg.GaugeFunc("bgdedup_scan_ios", func() int64 { return s.scanIOs })
	b.Reg.GaugeFunc("bgdedup_scanned_blocks", func() int64 { return s.core.scanned })
	b.Reg.GaugeFunc("bgdedup_duplicate_blocks", func() int64 { return s.core.dupBlocks })
	b.Reg.GaugeFunc("bgdedup_remapped_lbas", func() int64 { return s.core.remapped })
	b.Reg.GaugeFunc("bgdedup_reclaimed_blocks", func() int64 { return s.core.reclaimed })
	b.Reg.GaugeFunc("bgdedup_seq_swaps", func() int64 { return s.core.seqSwaps })
	b.Reg.GaugeFunc("bgdedup_paused_busy", func() int64 { return s.pausedBusy })
	b.Reg.GaugeFunc("bgdedup_paused_load", func() int64 { return s.pausedLoad })
	b.Reg.GaugeFunc("bgdedup_skipped_extents", func() int64 { return s.skippedExtents })
	return s
}

// Attach wires a scanner onto any engine that exposes its substrate
// (Select-Dedupe and POD). ok reports whether the engine supports
// background deduplication; engines without a Map-table substrate
// (or with nothing to reclaim) return false.
func Attach(e engine.Engine, p Params) (*Scanner, bool) {
	h, ok := e.(interface{ Base() *engine.Base })
	if !ok {
		return nil, false
	}
	return New(h.Base(), p), true
}

// Core exposes the scanner's merge machinery; the global fingerprint
// tier's shard agent drives FoldRemote through it, so cross-shard
// remap candidates share the cursor sweep's revalidation, counters,
// and fingerprint table.
func (s *Scanner) Core() *Core { return s.core }

// Stats reports the scanner's lifetime progress.
type Stats struct {
	Steps, Wraps, ScanIOs              int64
	ScannedBlocks, DuplicateBlocks     int64
	RemappedLBAs, ReclaimedBlocks      int64
	SeqSwaps                           int64
	PausedBusy, PausedLoad, SkippedExt int64
}

// Stats snapshots the scanner's counters.
func (s *Scanner) Stats() Stats {
	return Stats{
		Steps: s.steps, Wraps: s.wraps, ScanIOs: s.scanIOs,
		ScannedBlocks: s.core.scanned, DuplicateBlocks: s.core.dupBlocks,
		RemappedLBAs: s.core.remapped, ReclaimedBlocks: s.core.reclaimed,
		SeqSwaps:   s.core.seqSwaps,
		PausedBusy: s.pausedBusy, PausedLoad: s.pausedLoad, SkippedExt: s.skippedExtents,
	}
}

// Tick implements engine.BackgroundTask: it offers the scanner one
// chance to run at the given virtual time. A step runs only when the
// step interval elapsed, the disk queues are drained past MaxBacklog,
// and the foreground arrival rate is below threshold — otherwise the
// step is deferred and the pause counted.
func (s *Scanner) Tick(now sim.Time) {
	s.winTicks++
	if w := now.Sub(s.winStart); w >= s.p.RateWindow {
		s.rate = float64(s.winTicks) * 1e6 / float64(w)
		s.winStart = now
		s.winTicks = 0
	}
	if now < s.nextStep {
		return
	}
	if s.b.Array.Backlog(now) > s.p.MaxBacklog {
		s.pausedBusy++
		s.nextStep = now.Add(s.p.Interval / 4)
		return
	}
	if s.p.MaxArrivalRate > 0 && s.rate > s.p.MaxArrivalRate {
		s.pausedLoad++
		s.nextStep = now.Add(s.p.Interval)
		return
	}
	s.nextStep = now.Add(s.p.Interval)
	s.step(now, s.stepBlocks())
}

// stepBlocks is the per-step scan window implied by the budget.
func (s *Scanner) stepBlocks() uint64 {
	n := uint64(float64(s.p.BlocksPerSec) * float64(s.p.Interval) / 1e6)
	if n == 0 {
		n = 1
	}
	return n
}

// step scans the window [cursor, cursor+n) of the data region: live
// blocks are read back in a few large sequential background I/Os,
// fingerprinted, and merged onto canonical copies. A read fault skips
// the extent — its mappings are left exactly as they were — and the
// sweep continues past it.
func (s *Scanner) step(now sim.Time, n uint64) {
	s.steps++
	data := s.b.DataBlocks()
	if s.cursor >= data {
		s.cursor = 0
	}
	end := s.cursor + n
	if end > data {
		end = data
	}

	// One ~1 MiB background read per segment bounds how much queued
	// scan I/O a foreground request arriving mid-step can wait behind.
	const seg = 256
	for off := s.cursor; off < end; {
		cnt := end - off
		if cnt > seg {
			cnt = seg
		}
		live := s.liveIn(off, cnt)
		if len(live) == 0 {
			off += cnt // fully dead segment: no I/O, no work
			continue
		}
		if _, err := s.b.Array.Read(now, off, cnt); err != nil {
			// Typed fault (latent sector error, degraded data loss,
			// transient storm): skip the extent without touching a
			// single mapping. The next wrap retries it — transient
			// faults heal, permanent ones keep being skipped.
			s.skippedExtents++
			off += cnt
			continue
		}
		s.scanIOs++
		s.b.St.SwapInIOs++ // accounted as background I/O
		for _, pba := range live {
			id, ok := s.b.Store.Read(pba)
			if !ok {
				continue // freed by an earlier merge this step
			}
			s.core.ScanBlock(pba, id)
		}
		off += cnt
	}

	s.cursor = end
	if s.cursor >= data {
		s.cursor = 0
		s.wraps++
	}
}

// liveIn lists the live, referenced blocks in [off, off+cnt).
func (s *Scanner) liveIn(off, cnt uint64) []alloc.PBA {
	var out []alloc.PBA
	for pba := alloc.PBA(off); pba < alloc.PBA(off+cnt); pba++ {
		if _, ok := s.b.Store.Read(pba); !ok {
			continue
		}
		if s.b.Map.RefCount(pba) == 0 {
			continue // pinned-only or in-flight: nothing to rewire
		}
		out = append(out, pba)
	}
	return out
}

// Flush implements engine.BackgroundTask: one full sweep of the data
// region, ignoring the idle gate and budget pacing. A single wrap
// converges — every live block is either registered as a canonical
// copy or merged into one registered earlier in the same sweep, and
// merging never creates new duplicates.
func (s *Scanner) Flush(now sim.Time) {
	s.cursor = 0
	for {
		before := s.cursor
		s.step(now, s.stepBlocks())
		if s.cursor <= before {
			return // wrapped: the sweep is complete
		}
	}
}

// RecoverReset implements engine.BackgroundTask: after crash recovery
// the volatile fingerprint table is gone and the sweep restarts from
// the base of the region. Every pre-crash remap is durable in the
// journaled Map table, so the repeated sweep is idempotent.
func (s *Scanner) RecoverReset() {
	s.core.Reset()
	s.cursor = 0
	s.winStart = 0
	s.winTicks = 0
	s.rate = 0
}
