// Package bgdedup implements idle-aware background out-of-line
// deduplication: the capacity-reclamation counterpart to POD's
// latency-oriented inline path.
//
// Select-Dedupe deliberately skips deduplication for Category-2
// requests and cold fingerprints to protect foreground latency,
// permanently leaving duplicate physical copies on disk — the gap
// between I/O redundancy and capacity redundancy the paper quantifies
// in its Figure 2 discussion. Hybrid inline/out-of-line designs (Li et
// al., "Efficient Hybrid Inline and Out-of-line Deduplication for
// Backup Storage"; Wu et al., HPDedup) recover that gap in the
// background: keep the write path selective, then scan and merge the
// sacrificed duplicates during idle windows. This package is that
// second stage.
//
// Two consumers share the machinery here:
//
//   - Scanner (scanner.go) sweeps the resident data region of a
//     Select-Dedupe/POD engine, driven from the engine's per-request
//     Tick, and rewires every referrer of a duplicate block to one
//     canonical copy.
//   - The Post-Process baseline (internal/baseline) keeps its own
//     recently-written queue policy but delegates fingerprinting,
//     batched background reads, and merging to the same Core.
//
// All background I/O is issued through the engine's array in virtual
// time, so it shares the disk queues with foreground requests; all
// remapping goes through the journaled Map table, so an interrupted
// pass is crash-consistent by construction.
package bgdedup

import (
	"sort"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/index"
	"github.com/pod-dedup/pod/internal/sim"
)

// Core is the shared out-of-line merge machinery: a fingerprint→PBA
// table of canonical copies, elevator-ordered background reads, and
// the two merge operations (single-LBA for the post-process queue,
// whole-block referrer rewiring for the scanner).
type Core struct {
	b   *engine.Base
	fps *index.Full

	scanned    int64 // live blocks fingerprinted
	mergedLBAs int64 // single-LBA merges (post-process path)
	dupBlocks  int64 // duplicate physical copies found (scanner path)
	remapped   int64 // LBAs rewired to a canonical copy
	reclaimed  int64 // physical blocks freed by merging
	seqSwaps   int64 // canonical choices flipped to preserve sequentiality
}

// NewCore attaches merge machinery to an engine substrate. The
// fingerprint table is volatile DRAM state sized like the hot index;
// entries naming reclaimed blocks are dropped through the engine's
// OnFree hook (chained, so an existing hook keeps firing).
func NewCore(b *engine.Base) *Core {
	c := &Core{b: b, fps: index.NewFull(b.IC.IndexCapTotal())}
	prev := b.OnFree
	b.OnFree = func(pba alloc.PBA) {
		c.fps.Forget(pba)
		if prev != nil {
			prev(pba)
		}
	}
	return c
}

// Counters returns the core's lifetime work: blocks fingerprinted,
// single-LBA merges, duplicate blocks found, LBAs rewired, and
// physical blocks reclaimed.
func (c *Core) Counters() (scanned, mergedLBAs, dupBlocks, remapped, reclaimed int64) {
	return c.scanned, c.mergedLBAs, c.dupBlocks, c.remapped, c.reclaimed
}

// Reset drops the volatile fingerprint table (crash recovery: DRAM is
// lost; the journaled Map table already holds every durable effect, so
// re-scanning is idempotent — a block merged before the crash simply
// has no duplicate left to find).
func (c *Core) Reset() {
	c.fps = index.NewFull(c.b.IC.IndexCapTotal())
}

// ReadBatch reads the given physical blocks back elevator-style: sorted
// by address so that scattered blocks coalesce into few large
// sequential background sweeps, capped at maxIOs disk passes per call
// so a fragmented batch can never monopolize the spindles. It returns
// the set of blocks actually covered by this call's I/O budget; callers
// requeue the rest. Read errors are ignored — this path serves the
// post-process queue, whose blocks are re-validated against the content
// model before any merge.
func (c *Core) ReadBatch(now sim.Time, pbas []alloc.PBA, maxIOs int) map[alloc.PBA]bool {
	sorted := append([]alloc.PBA(nil), pbas...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	read := make(map[alloc.PBA]bool, len(sorted))
	ios := 0
	i := 0
	for i < len(sorted) && ios < maxIOs {
		j := i + 1
		for j < len(sorted) && sorted[j] <= sorted[j-1]+1 {
			j++
		}
		c.b.Array.Read(now, uint64(sorted[i]), uint64(sorted[j-1]-sorted[i])+1)
		c.b.St.SwapInIOs++ // accounted as background I/O
		ios++
		for k := i; k < j; k++ {
			read[sorted[k]] = true
		}
		i = j
	}
	return read
}

// fper is stateless; fingerprint equality is mode-independent (equal
// content IDs ⇔ equal fingerprints in both modes), so background
// merging always uses the cheap synthetic fingerprinter.
var fper chunk.SyntheticFingerprinter

// MergeLBA fingerprints the block expected at (lba, pba) and merges
// that single mapping into an existing copy of the same content, if one
// is known. The mapping is re-validated first — the block may have been
// overwritten or reclaimed since it was queued. Returns true when the
// LBA was rewired (its block's reference dropped).
func (c *Core) MergeLBA(lba uint64, pba alloc.PBA) bool {
	cur, ok := c.b.Map.Lookup(lba)
	if !ok || cur != pba {
		return false
	}
	id, ok := c.b.Store.Read(pba)
	if !ok {
		return false
	}
	c.scanned++
	ch := chunk.Chunk{Content: id}
	fp := fper.Fingerprint(&ch)
	if existing, found, _ := c.fps.Lookup(fp); found && existing != pba {
		if c.b.TryDedupe(lba, existing, id) {
			c.mergedLBAs++
			return true
		}
	}
	c.fps.Insert(fp, pba)
	return false
}

// ScanBlock offers one live block to the canonical table: if another
// live block already holds the same content, every LBA referencing the
// duplicate is rewired to one canonical copy — chosen to preserve
// on-disk sequentiality — and the duplicate is freed. Returns the LBAs
// remapped and physical blocks reclaimed (both zero when the block
// became the canonical copy itself).
func (c *Core) ScanBlock(pba alloc.PBA, id chunk.ContentID) (remapped, reclaimed int) {
	c.scanned++
	ch := chunk.Chunk{Content: id}
	fp := fper.Fingerprint(&ch)

	can, found, _ := c.fps.Lookup(fp)
	if !found || can == pba {
		if !found {
			c.fps.Insert(fp, pba)
		}
		return 0, 0
	}
	// The table entry may be stale (canonical overwritten since):
	// validate content before touching any mapping, exactly like the
	// inline path's consistency check.
	if got, ok := c.b.Store.Read(can); !ok || got != id || c.b.Map.RefCount(can) == 0 {
		c.fps.Insert(fp, pba)
		return 0, 0
	}

	// Choose the copy to keep by on-disk sequentiality: the copy whose
	// referrers' logical neighbours also sit at its physical neighbours
	// is the one POD's read locality depends on. Ties keep the earlier
	// (already canonical) copy.
	keep, drop := can, pba
	if c.seqScore(pba) > c.seqScore(can) {
		keep, drop = pba, can
		c.fps.Insert(fp, keep)
		c.seqSwaps++
	}
	c.dupBlocks++

	refs := c.b.Map.Referrers(drop)
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	for _, lba := range refs {
		freed := c.b.Map.Set(lba, keep, true)
		remapped++
		reclaimed += len(freed)
		c.b.FreeBlocks(freed)
	}
	c.remapped += int64(remapped)
	c.reclaimed += int64(reclaimed)
	c.b.St.NVRAMPeakBytes = c.b.Map.PeakNVRAMBytes()
	return remapped, reclaimed
}

// FoldRemote is the remap-candidate intake of the global fingerprint
// tier: it merges a local duplicate copy onto a cross-shard canonical
// through the same revalidated path the cursor sweep uses. The
// candidate may be arbitrarily stale, so everything is re-checked at
// apply time — the duplicate must still be a live, referenced local
// block holding exactly the advertised content (re-read through the
// array in virtual time, so background I/O shares the disk queues and
// injected faults abort the candidate harmlessly; re-hashed against
// the advertised fingerprint). Every referrer is then rewired onto the
// remote canonical via the journaled Map.Set path, handing the local
// refcount to the remote reference and freeing the duplicate. Returns
// the LBAs rewired, the physical blocks reclaimed, and whether the
// candidate survived revalidation.
func (c *Core) FoldRemote(now sim.Time, dup alloc.PBA, fp chunk.Fingerprint, canon alloc.PBA) (remapped, reclaimed int, ok bool) {
	id, live := c.b.Store.Read(dup)
	if !live || c.b.Map.RefCount(dup) == 0 {
		return 0, 0, false
	}
	ch := chunk.Chunk{Content: id}
	if fper.Fingerprint(&ch) != fp {
		return 0, 0, false
	}
	if _, err := c.b.Array.Read(now, uint64(dup), 1); err != nil {
		return 0, 0, false
	}
	c.b.St.SwapInIOs++ // accounted as background I/O
	c.scanned++
	c.dupBlocks++

	refs := c.b.Map.Referrers(dup)
	sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
	before := c.b.Alloc.Used()
	for _, lba := range refs {
		c.b.SetRemoteRef(lba, canon)
		remapped++
	}
	reclaimed = int(before - c.b.Alloc.Used())
	c.remapped += int64(remapped)
	c.reclaimed += int64(reclaimed)
	c.b.St.NVRAMPeakBytes = c.b.Map.PeakNVRAMBytes()
	return remapped, reclaimed, true
}

// seqScore counts how many of a block's referrers have a logical
// neighbour mapped to the corresponding physical neighbour — the
// "sequentially stored" property Select-Dedupe's classifier tests.
func (c *Core) seqScore(pba alloc.PBA) int {
	score := 0
	for _, lba := range c.b.Map.Referrers(pba) {
		if lba > 0 && pba > 0 {
			if p, ok := c.b.Map.Lookup(lba - 1); ok && p == pba-1 {
				score++
			}
		}
		if p, ok := c.b.Map.Lookup(lba + 1); ok && p == pba+1 {
			score++
		}
	}
	return score
}
