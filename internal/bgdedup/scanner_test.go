// Tests live in bgdedup_test so they can drive the scanner through the
// real engines and the serving layer (internal/experiments imports
// bgdedup, so an internal test package would cycle).
package bgdedup_test

import (
	"sync"
	"testing"

	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/chaos"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/core"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/server"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
	"github.com/pod-dedup/pod/internal/workload"
)

func testConfig(perDisk uint64) engine.Config {
	disks := make([]*disk.Disk, 4)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(perDisk))
	}
	return engine.Config{
		Array:       raid.New(raid.RAID5, disks, 16),
		MemoryBytes: 256 * 1024,
		Verify:      true,
		NVRAMBytes:  1 << 22,
	}
}

func seq(from, n int) []chunk.ContentID {
	ids := make([]chunk.ContentID, n)
	for i := range ids {
		ids[i] = chunk.ContentID(from + i)
	}
	return ids
}

func write(t *testing.T, e engine.Engine, at sim.Time, lba uint64, ids []chunk.ContentID) {
	t.Helper()
	if _, err := e.Write(&trace.Request{Time: at, Op: trace.Write, LBA: lba, N: len(ids), Content: ids}); err != nil {
		t.Fatalf("write lba %d: %v", lba, err)
	}
}

func checkContent(t *testing.T, e engine.Engine, lba uint64, want chunk.ContentID) {
	t.Helper()
	got, ok := e.ReadContent(lba)
	if !ok || got != uint64(want) {
		t.Fatalf("lba %d: content %d,%v want %d", lba, got, ok, want)
	}
}

// TestFlushReclaimsIntentionalDuplicates is the core out-of-line dedup
// property: a category-2 request (too few duplicate chunks to dedupe
// inline) writes its whole body fresh, leaving duplicate physical
// copies on disk; the scanner's sweep merges them back to one canonical
// copy, frees the rest, and the logical view is unchanged.
func TestFlushReclaimsIntentionalDuplicates(t *testing.T) {
	e := core.NewSelectDedupe(testConfig(1 << 14))
	s, ok := bgdedup.Attach(e, bgdedup.Params{})
	if !ok {
		t.Fatal("Attach refused Select-Dedupe")
	}

	first := seq(1, 8)
	write(t, e, 0, 0, first) // 8 unique blocks, indexed inline
	// 2 of 8 chunks duplicate — below the threshold (3), so Select-
	// Dedupe classifies Cat2 and writes all 8 fresh for sequentiality
	second := append([]chunk.ContentID{1, 2}, seq(9, 6)...)
	write(t, e, 1000, 100, second)
	if got := e.UsedBlocks(); got != 16 {
		t.Fatalf("used %d blocks before scan, want 16 (Cat2 must not dedupe inline)", got)
	}

	e.Flush(sim.Time(10 * sim.Second))

	st := s.Stats()
	if st.ReclaimedBlocks != 2 {
		t.Fatalf("reclaimed %d blocks, want 2 (stats %+v)", st.ReclaimedBlocks, st)
	}
	if st.DuplicateBlocks != 2 || st.RemappedLBAs < 2 {
		t.Fatalf("dups=%d remapped=%d, want 2 and >=2", st.DuplicateBlocks, st.RemappedLBAs)
	}
	if got := e.UsedBlocks(); got != 14 {
		t.Fatalf("used %d blocks after scan, want 14", got)
	}
	for i, id := range first {
		checkContent(t, e, uint64(i), id)
	}
	for i, id := range second {
		checkContent(t, e, 100+uint64(i), id)
	}
	if err := e.Base().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestIdleGateDefersUnderBacklog: the scanner must not issue background
// I/O while the array still has queued foreground work.
func TestIdleGateDefersUnderBacklog(t *testing.T) {
	e := core.NewSelectDedupe(testConfig(1 << 14))
	s, _ := bgdedup.Attach(e, bgdedup.Params{Interval: sim.Millisecond})

	// queue several large writes back to back: the array stays busy
	// well past their submission times
	for i := 0; i < 4; i++ {
		write(t, e, sim.Time(2000+i), uint64(i*64), seq(1000+i*64, 32))
	}
	before := s.Stats()
	s.Tick(3000) // past the step interval, but the disks have backlog
	after := s.Stats()
	if after.PausedBusy != before.PausedBusy+1 {
		t.Fatalf("pausedBusy %d -> %d, want one deferral", before.PausedBusy, after.PausedBusy)
	}
	if after.Steps != before.Steps {
		t.Fatalf("scanner stepped under backlog (%d -> %d)", before.Steps, after.Steps)
	}
}

// TestLoadGateDefersUnderArrivalRate: with a rate threshold set, a hot
// arrival stream pauses scanning even when the disks happen to be idle.
func TestLoadGateDefersUnderArrivalRate(t *testing.T) {
	e := core.NewSelectDedupe(testConfig(1 << 14))
	s, _ := bgdedup.Attach(e, bgdedup.Params{
		Interval:       sim.Millisecond,
		MaxArrivalRate: 10, // requests per simulated second
		RateWindow:     sim.Millisecond,
	})

	// 20 ticks in 2ms ≈ 10k req/s, far over the 10 req/s threshold
	for i := 1; i <= 20; i++ {
		s.Tick(sim.Time(i * 100))
	}
	st := s.Stats()
	if st.PausedLoad == 0 {
		t.Fatalf("no load deferrals at 10k req/s over a 10 req/s gate (stats %+v)", st)
	}
}

// TestScanFaultSkipsExtentWithoutRemap: a typed read fault during the
// sweep must skip the extent leaving every mapping untouched, and a
// later healthy sweep must pick the work back up. RAID0 over one disk
// so the array cannot reconstruct around the injected errors.
func TestScanFaultSkipsExtentWithoutRemap(t *testing.T) {
	d := disk.New(disk.DefaultParams(1 << 14))
	cfg := engine.Config{
		Array:       raid.New(raid.RAID0, []*disk.Disk{d}, 16),
		MemoryBytes: 256 * 1024,
		Verify:      true,
		NVRAMBytes:  1 << 22,
	}
	// every access in [1s, 2s) fails: the scanner's reads inside the
	// window are faulted, foreground writes before it are clean
	cfg.Array.SetInjector(fault.NewInjector(fault.Schedule{
		Transients: []fault.TransientWindow{{
			Disk: -1, From: sim.Time(sim.Second), Until: sim.Time(2 * sim.Second), PerMille: 1000,
		}},
	}, 1))
	e := core.NewSelectDedupe(cfg)
	s, _ := bgdedup.Attach(e, bgdedup.Params{})

	first := seq(1, 8)
	second := append([]chunk.ContentID{1, 2}, seq(9, 6)...)
	write(t, e, 0, 0, first)
	write(t, e, 1000, 100, second)

	e.Flush(sim.Time(sim.Second) + 1) // inside the fault window
	st := s.Stats()
	if st.SkippedExt == 0 {
		t.Fatalf("faulted sweep skipped no extents (stats %+v)", st)
	}
	if st.ReclaimedBlocks != 0 || e.UsedBlocks() != 16 {
		t.Fatalf("faulted sweep changed state: reclaimed=%d used=%d", st.ReclaimedBlocks, e.UsedBlocks())
	}
	for i, id := range second {
		checkContent(t, e, 100+uint64(i), id)
	}
	if err := e.Base().CheckConsistency(); err != nil {
		t.Fatal(err)
	}

	e.Flush(sim.Time(3 * sim.Second)) // past the window: retry succeeds
	if st := s.Stats(); st.ReclaimedBlocks != 2 {
		t.Fatalf("healthy retry reclaimed %d, want 2", st.ReclaimedBlocks)
	}
}

// TestSequentialCopySurvivesMerge: when two physical copies of a block
// exist, the scanner keeps the one preserving on-disk sequentiality —
// even if the isolated copy was scanned (and registered) first.
func TestSequentialCopySurvivesMerge(t *testing.T) {
	cfg := testConfig(1 << 14)
	cfg.Threshold = 100 // nothing dedupes inline: every write is fresh
	e := core.NewSelectDedupe(cfg)
	s, _ := bgdedup.Attach(e, bgdedup.Params{})

	write(t, e, 0, 100, seq(1, 1))  // lone copy of content 1, lower PBA
	write(t, e, 1000, 0, seq(1, 8)) // sequential run [1..8] at lba 0
	e.Flush(sim.Time(10 * sim.Second))

	m := e.Base().Map
	p0, ok0 := m.Lookup(0)
	p100, ok100 := m.Lookup(100)
	p1, ok1 := m.Lookup(1)
	if !ok0 || !ok100 || !ok1 {
		t.Fatal("mappings lost")
	}
	if p100 != p0 {
		t.Fatalf("copies not merged: lba0->%d lba100->%d", p0, p100)
	}
	if p1 != p0+1 {
		t.Fatalf("merge broke sequentiality: lba0->%d lba1->%d", p0, p1)
	}
	if st := s.Stats(); st.SeqSwaps == 0 {
		t.Fatalf("canonical kept without a sequentiality swap (stats %+v)", st)
	}
	if err := e.Base().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryMidPassIsIdempotent: crash after a partial sweep, rebuild
// from the NVRAM journal, then sweep again — no block leaks, no double
// free, and the repeated pass converges to the same reclaimed state.
func TestRecoveryMidPassIsIdempotent(t *testing.T) {
	e := core.NewSelectDedupe(testConfig(1 << 14))
	s, _ := bgdedup.Attach(e, bgdedup.Params{Interval: sim.Millisecond, BlocksPerSec: 4_000_000})

	first := seq(1, 8)
	second := append([]chunk.ContentID{1, 2}, seq(9, 6)...)
	third := append([]chunk.ContentID{3, 4}, seq(15, 6)...)
	write(t, e, 0, 0, first)
	write(t, e, 1000, 100, second)
	// a late idle tick lets the scanner run a partial pass over the
	// early region before the third write lands more duplicates
	s.Tick(sim.Time(5 * sim.Second))
	write(t, e, sim.Time(6*sim.Second), 200, third)

	if _, err := e.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	if err := e.Base().CheckConsistency(); err != nil {
		t.Fatalf("inconsistent straight after recovery: %v", err)
	}
	for i, id := range second {
		checkContent(t, e, 100+uint64(i), id)
	}

	e.Flush(sim.Time(20 * sim.Second))
	if st := s.Stats(); st.ReclaimedBlocks == 0 {
		t.Fatalf("post-recovery sweep reclaimed nothing (stats %+v)", st)
	}
	if err := e.Base().CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	for i, id := range first {
		checkContent(t, e, uint64(i), id)
	}
	for i, id := range second {
		checkContent(t, e, 100+uint64(i), id)
	}
	for i, id := range third {
		checkContent(t, e, 200+uint64(i), id)
	}
}

// drive runs a closed-loop multi-client workload against srv, feeding
// the oracle, and closes the server.
func drive(t *testing.T, srv *server.Server, oracle *chaos.Oracle, reqs []trace.Request, clients int, gapUS int64) {
	t.Helper()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range reqs {
				r := &reqs[i]
				if srv.Shard(r.LBA)%clients != c {
					continue
				}
				req := server.Request{Time: int64(i) * gapUS, Op: r.Op, LBA: r.LBA}
				if r.Op == trace.Read {
					req.Chunks = r.N
				} else {
					req.Content = r.Content
				}
				res, err := srv.Do(&req)
				if err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				if r.Op == trace.Write {
					if res.Err == nil {
						oracle.RecordWrite(&req, res.Shard)
					} else {
						oracle.RecordFailedWrite(&req, res.Shard, res.Retries > 0 || res.Service > 0)
					}
				}
			}
		}(c)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
}

func checkShards(t *testing.T, srv *server.Server, shards int) {
	t.Helper()
	for k := 0; k < shards; k++ {
		var cerr error
		srv.WithEngine(k, func(e engine.Engine) {
			if be, ok := e.(interface{ Base() *engine.Base }); ok {
				cerr = be.Base().CheckConsistency()
			}
		})
		if cerr != nil {
			t.Fatalf("shard %d inconsistent: %v", k, cerr)
		}
	}
}

// TestConcurrentScannerCleanerForegroundRace is the -race property
// test: four shards serve concurrent clients while each engine runs
// both the segment cleaner and an aggressive background scanner. The
// m-to-1 sharing invariant, the allocator's no-double-free audit, and
// read-back integrity must all hold — and the scanner must actually
// have reclaimed capacity.
func TestConcurrentScannerCleanerForegroundRace(t *testing.T) {
	prof, ok := workload.ByName("mail")
	if !ok {
		t.Fatal("mail profile missing")
	}
	const scale = 0.02
	tr, _ := workload.Generate(prof, scale)
	reqs := tr.Requests
	if len(reqs) > 4000 {
		reqs = reqs[:4000]
	}

	const shards, clients = 4, 4
	srv, err := server.New(server.Config{
		Shards: shards,
		NewEngine: func(shard int) engine.Engine {
			cfg := experiments.BuildConfig(prof, scale)
			cfg.Cleaner = engine.CleanerParams{Enabled: true}
			e := experiments.NewEngine(experiments.POD, cfg)
			if _, ok := bgdedup.Attach(e, bgdedup.Params{
				Interval:   sim.Millisecond,
				MaxBacklog: 10 * sim.Millisecond, // scan even in short gaps
			}); !ok {
				t.Error("attach failed")
			}
			return e
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := chaos.NewOracle(srv.Shard)
	drive(t, srv, oracle, reqs, clients, 100)

	viol, checked := oracle.Check(srv.ReadContent)
	if len(viol) > 0 {
		t.Fatalf("%d integrity violations (first: %s)", len(viol), viol[0])
	}
	if checked == 0 {
		t.Fatal("oracle verified nothing")
	}
	snap := srv.Stats()
	g := snap.Metrics.Gauges
	if g["bgdedup_reclaimed_blocks"] == 0 {
		t.Fatal("scanner reclaimed nothing across the run")
	}
	if got := uint64(g["alloc_used_blocks"]); got != snap.UsedBlocks {
		t.Fatalf("alloc_used_blocks gauge %d != snapshot used %d", got, snap.UsedBlocks)
	}
	checkShards(t, srv, shards)
}

// TestChaosScenarioBgdedupRecovers runs the chaos "bgdedup" scenario
// end to end in-process: scanner active under latent sectors, a mid-run
// disk failure, and a transient storm; then a whole-node crash. The
// oracle must pass before and after recovery and no shard may leak or
// double-use an extent — the interrupted pass leaves no trace beyond
// its journaled remaps.
func TestChaosScenarioBgdedupRecovers(t *testing.T) {
	prof, ok := workload.ByName("mail")
	if !ok {
		t.Fatal("mail profile missing")
	}
	const scale = 0.02
	tr, _ := workload.Generate(prof, scale)
	reqs := tr.Requests
	if len(reqs) > 3000 {
		reqs = reqs[:3000]
	}
	const shards, clients = 2, 2
	const gapUS = 200
	horizon := sim.Time(int64(len(reqs)) * gapUS)

	srv, err := server.New(server.Config{
		Shards: shards,
		NewEngine: func(shard int) engine.Engine {
			cfg := experiments.BuildConfig(prof, scale)
			sched, berr := chaos.Build("bgdedup", cfg.Array.NumDisks(), cfg.Array.PerDiskBlocks(),
				horizon, 7+uint64(shard))
			if berr != nil {
				t.Errorf("build scenario: %v", berr)
				return nil
			}
			cfg.Array.SetInjector(fault.NewInjector(sched, cfg.Array.NumDisks()))
			e := experiments.NewEngine(experiments.POD, cfg)
			bgdedup.Attach(e, bgdedup.Params{Interval: sim.Millisecond})
			return e
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	oracle := chaos.NewOracle(srv.Shard)
	drive(t, srv, oracle, reqs, clients, gapUS)

	if viol, _ := oracle.Check(srv.ReadContent); len(viol) > 0 {
		t.Fatalf("%d violations before crash (first: %s)", len(viol), viol[0])
	}
	if _, err := srv.CrashAndRecover(); err != nil {
		t.Fatal(err)
	}
	viol, checked := oracle.Check(srv.ReadContent)
	if len(viol) > 0 {
		t.Fatalf("%d violations after recovery (first: %s)", len(viol), viol[0])
	}
	if checked == 0 {
		t.Fatal("oracle verified nothing after recovery")
	}
	checkShards(t, srv, shards)
}
