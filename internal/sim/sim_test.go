package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	var tm Time = 1000
	if got := tm.Add(500); got != 1500 {
		t.Errorf("Add: got %d, want 1500", got)
	}
	if got := Time(1500).Sub(tm); got != 500 {
		t.Errorf("Sub: got %d, want 500", got)
	}
	if MaxTime(3, 7) != 7 || MaxTime(7, 3) != 7 {
		t.Error("MaxTime wrong")
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0.000000s"},
		{1, "0.000001s"},
		{1_500_000, "1.500000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500µs"},
		{1500, "1.500ms"},
		{2_500_000, "2.500s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if Duration(1_500_000).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
	if Duration(1500).Millis() != 1.5 {
		t.Error("Millis conversion wrong")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatal("new clock should start at 0")
	}
	c.AdvanceTo(100)
	if c.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", c.Now())
	}
	c.AdvanceTo(100) // idempotent advance is fine
	c.Reset()
	if c.Now() != 0 {
		t.Fatal("Reset should rewind to 0")
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on backwards clock")
		}
	}()
	c := NewClock()
	c.AdvanceTo(100)
	c.AdvanceTo(50)
}

func TestFCFSIdleServer(t *testing.T) {
	q := NewFCFSQueue()
	done := q.Submit(1000, 50)
	if done != 1050 {
		t.Errorf("idle server completion = %d, want 1050", done)
	}
	if q.WaitTime() != 0 {
		t.Errorf("no wait expected, got %v", q.WaitTime())
	}
}

func TestFCFSQueueing(t *testing.T) {
	q := NewFCFSQueue()
	q.Submit(0, 100)          // busy until 100
	done := q.Submit(10, 100) // waits 90
	if done != 200 {
		t.Errorf("queued completion = %d, want 200", done)
	}
	if q.WaitTime() != 90 {
		t.Errorf("wait = %v, want 90", q.WaitTime())
	}
	if q.Jobs() != 2 {
		t.Errorf("jobs = %d, want 2", q.Jobs())
	}
	if q.BusyTime() != 200 {
		t.Errorf("busy = %v, want 200", q.BusyTime())
	}
}

func TestFCFSSubmitAfter(t *testing.T) {
	q := NewFCFSQueue()
	// server idle, but job not ready until 500
	done := q.SubmitAfter(100, 500, 50)
	if done != 550 {
		t.Errorf("completion = %d, want 550", done)
	}
}

func TestFCFSBacklog(t *testing.T) {
	q := NewFCFSQueue()
	q.Submit(0, 1000)
	if got := q.Backlog(400); got != 600 {
		t.Errorf("backlog = %v, want 600", got)
	}
	if got := q.Backlog(2000); got != 0 {
		t.Errorf("backlog after drain = %v, want 0", got)
	}
}

func TestFCFSUtilization(t *testing.T) {
	q := NewFCFSQueue()
	q.Submit(0, 500)
	if u := q.Utilization(1000); u != 0.5 {
		t.Errorf("utilization = %f, want 0.5", u)
	}
	if u := q.Utilization(0); u != 0 {
		t.Errorf("utilization at 0 horizon = %f, want 0", u)
	}
}

func TestFCFSReset(t *testing.T) {
	q := NewFCFSQueue()
	q.Submit(0, 100)
	q.Reset()
	if q.BusyUntil() != 0 || q.Jobs() != 0 || q.BusyTime() != 0 {
		t.Error("Reset did not clear state")
	}
}

// Property: completions are monotone when arrivals are monotone, and a
// job never completes before arrival+service.
func TestFCFSMonotoneProperty(t *testing.T) {
	f := func(gaps []uint16, services []uint16) bool {
		n := len(gaps)
		if len(services) < n {
			n = len(services)
		}
		q := NewFCFSQueue()
		var arrive Time
		var lastDone Time
		for i := 0; i < n; i++ {
			arrive = arrive.Add(Duration(gaps[i]))
			svc := Duration(services[i]%1000) + 1
			done := q.Submit(arrive, svc)
			if done < arrive.Add(svc) {
				return false // completed impossibly early
			}
			if done < lastDone {
				return false // FCFS completions must be monotone
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: total busy time equals the sum of service demands, and the
// server is never busy past the last completion.
func TestFCFSConservationProperty(t *testing.T) {
	f := func(services []uint16) bool {
		q := NewFCFSQueue()
		var sum Duration
		for _, s := range services {
			svc := Duration(s%500) + 1
			sum += svc
			q.Submit(0, svc)
		}
		return q.BusyTime() == sum && q.BusyUntil() == Time(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
