// Package sim provides the primitives of the discrete-time storage
// simulator used throughout this repository: a virtual microsecond clock
// and FCFS resource queues.
//
// All latency results in the POD reproduction are computed in virtual
// time. Requests are replayed in arrival order against resources that
// track a "busy-until" horizon; for first-come-first-served service with
// arrivals known a priori this is mathematically identical to a
// heap-based discrete-event simulation, while being deterministic and
// allocation-free on the hot path.
package sim

import "fmt"

// Time is a point in virtual time, in microseconds since the start of
// the simulation. It is a distinct type to keep virtual time from being
// confused with wall-clock durations.
type Time int64

// Duration is a span of virtual time in microseconds.
type Duration int64

// Common durations.
const (
	Microsecond Duration = 1
	Millisecond Duration = 1000
	Second      Duration = 1000 * 1000
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// String renders the time as seconds with microsecond precision.
func (t Time) String() string {
	return fmt.Sprintf("%d.%06ds", int64(t)/1e6, int64(t)%1e6)
}

// Seconds converts a duration to floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e6 }

// Millis converts a duration to floating-point milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e3 }

// String renders the duration in the most natural unit.
func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%dµs", int64(d))
	}
}

// MaxTime returns the later of two times.
func MaxTime(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock tracks the global virtual time of a replay. The replayer
// advances it to each request's arrival timestamp; components may only
// move it forward.
type Clock struct {
	now Time
}

// NewClock returns a clock starting at time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// AdvanceTo moves the clock forward to t. Moving backwards is a
// programming error and panics: the replayer must feed requests in
// arrival order.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards: %v -> %v", c.now, t))
	}
	c.now = t
}

// Reset rewinds the clock to zero for a fresh run.
func (c *Clock) Reset() { c.now = 0 }
