package sim

// FCFSQueue models a single server with first-come-first-served
// discipline — in this repository, one disk spindle. A job arriving at
// time t with service demand s begins service at max(t, busyUntil) and
// completes at start+s.
//
// Because the replayer submits jobs in global arrival order, tracking
// only the busy horizon reproduces exactly the completion times a full
// event-driven FCFS simulation would compute.
type FCFSQueue struct {
	busyUntil Time

	// accounting
	busyTime  Duration // total time the server spent serving
	jobs      int64    // jobs served
	waitTime  Duration // total time jobs spent queued before service
	maxDepthT Time     // time horizon used for depth estimate
}

// NewFCFSQueue returns an idle queue.
func NewFCFSQueue() *FCFSQueue { return &FCFSQueue{} }

// Submit enqueues a job arriving at 'arrive' with service time 'service'
// and returns its completion time.
func (q *FCFSQueue) Submit(arrive Time, service Duration) Time {
	start := MaxTime(arrive, q.busyUntil)
	q.waitTime += start.Sub(arrive)
	q.busyTime += service
	q.jobs++
	q.busyUntil = start.Add(service)
	return q.busyUntil
}

// SubmitAfter enqueues a job that additionally cannot start before
// 'ready' (e.g. the write phase of a read-modify-write that must wait
// for the read phase). It returns the completion time.
func (q *FCFSQueue) SubmitAfter(arrive, ready Time, service Duration) Time {
	return q.Submit(MaxTime(arrive, ready), service)
}

// BusyUntil reports the time at which the server next becomes idle.
func (q *FCFSQueue) BusyUntil() Time { return q.busyUntil }

// Backlog reports how much queued work remains at time t.
func (q *FCFSQueue) Backlog(t Time) Duration {
	if q.busyUntil <= t {
		return 0
	}
	return q.busyUntil.Sub(t)
}

// Jobs reports the number of jobs served so far.
func (q *FCFSQueue) Jobs() int64 { return q.jobs }

// BusyTime reports the cumulative service time delivered.
func (q *FCFSQueue) BusyTime() Duration { return q.busyTime }

// WaitTime reports the cumulative time jobs spent waiting for service.
func (q *FCFSQueue) WaitTime() Duration { return q.waitTime }

// Utilization reports the fraction of [0, horizon] the server was busy.
func (q *FCFSQueue) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return q.busyTime.Seconds() / Duration(horizon).Seconds()
}

// Reset returns the queue to its initial idle state.
func (q *FCFSQueue) Reset() { *q = FCFSQueue{} }
