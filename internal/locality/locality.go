// Package locality estimates per-stream temporal locality of write
// fingerprints and apportions a shared fingerprint-index cache between
// co-located tenant streams, in the spirit of HPDedup (arXiv
// 1702.08153): streams whose duplicates recur within a short reuse
// distance profit from inline index quota; streams whose duplicates
// recur beyond any realistic cache size (or not at all) only pollute
// it, and their capacity is better left to out-of-line deduplication.
//
// The estimator keeps, per stream, a small LRU sketch over a sampled
// subset of recently written fingerprints. A fingerprint that recurs
// while still in the sketch is a reuse hit: its reuse distance, in
// sampled unique fingerprints, is below the sketch capacity. With the
// sketch sized to (index-partition entries >> SampleShift), a reuse hit
// approximates "this write would have deduped inline had the stream
// owned the whole index partition". An exponentially decayed per-
// interval hit count then drives the apportioner: each active stream is
// guaranteed a shared floor, and the remaining capacity is divided
// proportionally to decayed reuse hits. Counts, not ratios, so a busy
// high-locality stream outweighs a trickle with the same hit rate.
//
// All state is owned by one engine and accessed from its serving
// goroutine only; the package does no locking.
package locality

import (
	"encoding/binary"

	"github.com/pod-dedup/pod/internal/cache"
	"github.com/pod-dedup/pod/internal/chunk"
)

// Params configures an Estimator. The zero value selects defaults.
type Params struct {
	// SampleShift samples 1/2^shift of fingerprints into the sketch;
	// 0 selects the default of 2 (1/4 of fingerprints).
	SampleShift uint
	// WindowEntries is the per-stream sketch capacity in sampled
	// fingerprints (default 4096). Size it to the index partition scaled
	// by the sample rate so a sketch hit predicts an index hit.
	WindowEntries int
	// Decay is the per-interval retain factor of the reuse score
	// (default 0.5): score' = score*Decay + intervalHits.
	Decay float64
	// FloorFrac is the minimum share of the index partition guaranteed
	// to every active stream (default 0.10), clamped to 1/activeStreams
	// when streams are many.
	FloorFrac float64
	// IdleIntervals drops a stream from apportionment after this many
	// consecutive intervals without a sampled write (default 4). Its
	// sketch is retained; it rejoins on the next write.
	IdleIntervals int
}

// WithDefaults fills unset fields with their defaults.
func (p Params) WithDefaults() Params {
	if p.SampleShift == 0 {
		p.SampleShift = 2
	}
	if p.WindowEntries <= 0 {
		p.WindowEntries = 4096
	}
	if p.Decay <= 0 || p.Decay >= 1 {
		p.Decay = 0.5
	}
	if p.FloorFrac <= 0 {
		p.FloorFrac = 0.10
	}
	if p.IdleIntervals <= 0 {
		p.IdleIntervals = 4
	}
	return p
}

type streamEst struct {
	sketch *cache.LRU[uint64, struct{}]
	// current-interval counters, folded into score by Apportion.
	hits    int64
	samples int64
	// decayed reuse score and the share computed from it.
	score float64
	share float64
	idle  int
}

// Estimator tracks per-stream reuse and computes index-cache shares.
type Estimator struct {
	p       Params
	streams map[uint32]*streamEst
	order   []uint32 // insertion order, for deterministic iteration
	mask    uint64
}

// New builds an estimator.
func New(p Params) *Estimator {
	p = p.WithDefaults()
	return &Estimator{
		p:       p,
		streams: make(map[uint32]*streamEst),
		mask:    (1 << p.SampleShift) - 1,
	}
}

// Params reports the effective (default-filled) parameters.
func (e *Estimator) Params() Params { return e.p }

// Record notes one written fingerprint on a stream. Sampling keys off
// the fingerprint's own bits, so the same content samples identically
// on every shard and run.
func (e *Estimator) Record(stream uint32, fp chunk.Fingerprint) {
	k := binary.LittleEndian.Uint64(fp[:8])
	if k&e.mask != 0 {
		return
	}
	s := e.streams[stream]
	if s == nil {
		s = &streamEst{sketch: cache.NewLRU[uint64, struct{}](e.p.WindowEntries)}
		e.streams[stream] = s
		e.order = append(e.order, stream)
	}
	s.samples++
	if _, ok := s.sketch.Get(k); ok {
		s.hits++
	}
	s.sketch.Put(k, struct{}{})
}

// Apportion closes the current measurement interval and returns the
// index-partition share per active stream (values in (0,1], summing to
// ≤ 1, each ≥ the effective floor). Streams idle beyond IdleIntervals
// are excluded. Returns nil when no stream is active, meaning "keep
// whatever split is in force". Iteration is deterministic given the
// same Record history.
func (e *Estimator) Apportion() map[uint32]float64 {
	var active []uint32
	for _, id := range e.order {
		s := e.streams[id]
		s.score = s.score*e.p.Decay + float64(s.hits)
		if s.samples == 0 {
			s.idle++
		} else {
			s.idle = 0
		}
		s.hits, s.samples = 0, 0
		if s.idle < e.p.IdleIntervals {
			active = append(active, id)
		} else {
			s.share = 0
		}
	}
	if len(active) == 0 {
		return nil
	}
	floor := e.p.FloorFrac
	if max := 1.0 / float64(len(active)); floor > max {
		floor = max
	}
	total := 0.0
	for _, id := range active {
		total += e.streams[id].score
	}
	rem := 1.0 - floor*float64(len(active))
	shares := make(map[uint32]float64, len(active))
	for _, id := range active {
		s := e.streams[id]
		if total > 0 {
			s.share = floor + rem*s.score/total
		} else {
			s.share = 1.0 / float64(len(active))
		}
		shares[id] = s.share
	}
	return shares
}

// StreamStat is an introspection snapshot of one stream's estimator
// state, for gauges and verdict blocks.
type StreamStat struct {
	Stream    uint32
	Score     float64
	Share     float64
	SketchLen int
}

// Stats snapshots every tracked stream in first-seen order.
func (e *Estimator) Stats() []StreamStat {
	out := make([]StreamStat, 0, len(e.order))
	for _, id := range e.order {
		s := e.streams[id]
		out = append(out, StreamStat{Stream: id, Score: s.score, Share: s.share, SketchLen: s.sketch.Len()})
	}
	return out
}

// FloorFrac reports the configured floor share.
func (e *Estimator) FloorFrac() float64 { return e.p.FloorFrac }
