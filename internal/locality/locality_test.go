package locality

import (
	"encoding/binary"
	"testing"

	"github.com/pod-dedup/pod/internal/chunk"
)

// sfp builds a fingerprint whose sampling key is k — multiples of 4
// pass the default 1/4 sampling mask.
func sfp(k uint64) chunk.Fingerprint {
	var f chunk.Fingerprint
	binary.LittleEndian.PutUint64(f[:8], k)
	return f
}

func est() *Estimator {
	return New(Params{WindowEntries: 64, IdleIntervals: 2})
}

func TestDefaults(t *testing.T) {
	p := Params{}.WithDefaults()
	if p.SampleShift != 2 || p.WindowEntries != 4096 || p.Decay != 0.5 ||
		p.FloorFrac != 0.10 || p.IdleIntervals != 4 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestSampling(t *testing.T) {
	e := est()
	e.Record(1, sfp(4)) // sampled
	e.Record(1, sfp(5)) // not sampled (5 & 3 != 0)
	st := e.Stats()
	if len(st) != 1 || st[0].SketchLen != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReuseBoostsShare(t *testing.T) {
	e := est()
	// stream 1 re-references a tight working set; stream 2 never reuses
	for round := 0; round < 3; round++ {
		for k := uint64(0); k < 32; k++ {
			e.Record(1, sfp(k * 4))
		}
	}
	for k := uint64(0); k < 96; k++ {
		e.Record(2, sfp(10000 + k*4))
	}
	shares := e.Apportion()
	if shares == nil {
		t.Fatal("no shares for two active streams")
	}
	if shares[1] <= shares[2] {
		t.Fatalf("high-locality stream share %f not above cold stream's %f", shares[1], shares[2])
	}
	if shares[2] < 0.10-1e-9 {
		t.Fatalf("cold stream %f below the floor", shares[2])
	}
	if sum := shares[1] + shares[2]; sum > 1+1e-9 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestEqualSplitWithoutEvidence(t *testing.T) {
	e := est()
	e.Record(1, sfp(4))
	e.Record(2, sfp(8))
	shares := e.Apportion()
	if shares[1] != shares[2] {
		t.Fatalf("no-evidence split %f / %f, want equal", shares[1], shares[2])
	}
}

func TestIdleStreamDropped(t *testing.T) {
	e := est() // IdleIntervals: 2
	e.Record(1, sfp(4))
	e.Record(2, sfp(8))
	e.Apportion()
	// stream 1 keeps writing; stream 2 goes silent
	e.Record(1, sfp(4))
	e.Apportion()
	e.Record(1, sfp(4))
	shares := e.Apportion()
	if _, ok := shares[2]; ok {
		t.Fatalf("idle stream still apportioned: %v", shares)
	}
	if shares[1] != 1.0 {
		t.Fatalf("sole active stream share %f, want 1", shares[1])
	}
	// an idle stream rejoins on its next write, floored at minimum
	e.Record(2, sfp(8))
	shares = e.Apportion()
	if s, ok := shares[2]; !ok || s < 0.10-1e-9 {
		t.Fatalf("returning stream share %v, %v", s, ok)
	}
}

func TestAllIdleKeepsSplit(t *testing.T) {
	e := est()
	e.Record(1, sfp(4))
	e.Apportion()
	e.Apportion()
	if shares := e.Apportion(); shares != nil {
		t.Fatalf("all-idle apportionment = %v, want nil (keep current split)", shares)
	}
}

func TestFloorClampsWithManyStreams(t *testing.T) {
	e := New(Params{WindowEntries: 16})
	const n = 20 // 20 streams: a 10% floor each would oversubscribe
	for s := uint32(1); s <= n; s++ {
		e.Record(s, sfp(uint64(s)*4))
	}
	shares := e.Apportion()
	if len(shares) != n {
		t.Fatalf("%d streams apportioned, want %d", len(shares), n)
	}
	sum := 0.0
	for _, s := range shares {
		if s < 1.0/n-1e-9 {
			t.Fatalf("share %f below clamped floor %f", s, 1.0/n)
		}
		sum += s
	}
	if sum > 1+1e-9 {
		t.Fatalf("shares sum to %f", sum)
	}
}

func TestDecayForgetsOldLocality(t *testing.T) {
	e := est()
	// stream 1 reuses heavily, then turns cold (fresh content only);
	// stream 2 starts reusing
	for round := 0; round < 3; round++ {
		for k := uint64(0); k < 32; k++ {
			e.Record(1, sfp(k * 4))
		}
	}
	e.Apportion()
	fresh := uint64(1 << 20)
	for iv := 0; iv < 6; iv++ {
		for k := uint64(0); k < 32; k++ {
			e.Record(1, sfp((fresh+k)*4))
			fresh += 32
			e.Record(2, sfp(5000 + k*4))
		}
		e.Apportion()
	}
	shares := e.Apportion()
	if shares == nil {
		t.Fatal("both streams active, no shares")
	}
	if shares[2] <= shares[1] {
		t.Fatalf("stale locality outweighs current: stream1 %f, stream2 %f", shares[1], shares[2])
	}
}
