// Package index implements the fingerprint Index table of §III-B.
//
// POD keeps only the *hot* fingerprint entries in memory, organized as
// an LRU with a per-entry Count that records how many write requests
// hit the entry — capturing temporal locality and protecting referenced
// blocks (the engine pins an entry's physical block in the Map table
// for as long as the entry is cached). A miss in the hot index simply
// means a lost deduplication opportunity; POD never performs on-disk
// index lookups on the write path.
//
// Full-Dedupe, the traditional baseline, instead maintains the complete
// fingerprint table. Entries not present in its in-memory hot portion
// require an on-disk lookup I/O, which is precisely the index-lookup
// disk bottleneck the paper's §II-B describes; the Full type reports
// whether each lookup was served from memory so the engine can charge
// that I/O.
package index

import (
	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/cache"
	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/probe"
)

// Entry is one hot-index entry: where the chunk lives and how often
// write requests have hit it.
type Entry struct {
	PBA   alloc.PBA
	Count uint32
}

// Evicted reports an entry pushed out of the hot index; the caller must
// release the pin it holds on the entry's physical block.
type Evicted struct {
	FP    chunk.Fingerprint
	Entry Entry
}

// Hot is the in-memory hot fingerprint index.
type Hot struct {
	lru *cache.LRU[chunk.Fingerprint, Entry]
}

// NewHot returns a hot index holding up to capacity entries.
func NewHot(capacity int) *Hot {
	return &Hot{lru: cache.NewLRU[chunk.Fingerprint, Entry](capacity)}
}

// Len reports the number of cached entries.
func (h *Hot) Len() int { return h.lru.Len() }

// Cap reports the capacity in entries.
func (h *Hot) Cap() int { return h.lru.Cap() }

// Hits and Misses report Lookup accounting.
func (h *Hot) Hits() int64   { return h.lru.Hits() }
func (h *Hot) Misses() int64 { return h.lru.Misses() }

// ResetStats clears hit/miss accounting.
func (h *Hot) ResetStats() { h.lru.ResetStats() }

// Lookup finds fp, increments its Count (a write-request hit, per the
// paper), promotes it, and returns the updated entry. The update is
// in-place via LRU.Touch — one map lookup and one list move, where the
// old Get-then-Put idiom paid both twice per hit.
func (h *Hot) Lookup(fp chunk.Fingerprint) (Entry, bool) {
	e, ok := h.lru.Touch(fp)
	if !ok {
		return Entry{}, false
	}
	e.Count++
	return *e, true
}

// Peek returns the entry without promoting it or touching Count.
func (h *Hot) Peek(fp chunk.Fingerprint) (Entry, bool) {
	return h.lru.Peek(fp)
}

// Insert adds or updates fp → pba with Count starting at zero. It
// returns the evicted entry, if any, whose block pin the caller must
// release. The caller acquires the pin for the inserted entry.
func (h *Hot) Insert(fp chunk.Fingerprint, pba alloc.PBA) (Evicted, bool) {
	if old, ok := h.lru.Peek(fp); ok {
		if old.PBA == pba {
			return Evicted{}, false
		}
		// remapped content: replace, surfacing the old pin for release
		h.lru.Put(fp, Entry{PBA: pba})
		return Evicted{FP: fp, Entry: old}, true
	}
	ev, evicted := h.lru.Put(fp, Entry{PBA: pba})
	if evicted {
		return Evicted{FP: ev.Key, Entry: ev.Val}, true
	}
	return Evicted{}, false
}

// Remove deletes fp, returning its entry so the caller can unpin.
func (h *Hot) Remove(fp chunk.Fingerprint) (Entry, bool) {
	return h.lru.Take(fp)
}

// Resize changes the capacity, returning all evicted entries (the
// caller releases their pins). Used by iCache's Swap Module.
func (h *Hot) Resize(capacity int) []Evicted {
	evs := h.lru.Resize(capacity)
	out := make([]Evicted, 0, len(evs))
	for _, ev := range evs {
		out = append(out, Evicted{FP: ev.Key, Entry: ev.Val})
	}
	return out
}

// Each visits entries from most- to least-recently used.
func (h *Hot) Each(fn func(chunk.Fingerprint, Entry) bool) {
	h.lru.Each(func(fp chunk.Fingerprint, e Entry) bool { return fn(fp, e) })
}

// Full is the complete fingerprint table used by the Full-Dedupe
// baseline: every stored chunk's fingerprint is known, but only the hot
// subset lives in memory — a lookup that misses the hot portion costs
// the engine an on-disk index I/O.
type Full struct {
	all *probe.Map[chunk.Fingerprint, alloc.PBA]
	rev *probe.Map[alloc.PBA, chunk.Fingerprint]
	hot *Hot

	memHits, diskLookups int64
}

// NewFull returns a full index whose in-memory hot portion holds
// hotCapacity entries.
func NewFull(hotCapacity int) *Full {
	return &Full{
		all: probe.NewMap[chunk.Fingerprint, alloc.PBA](0),
		rev: probe.NewMap[alloc.PBA, chunk.Fingerprint](0),
		hot: NewHot(hotCapacity),
	}
}

// Len reports the total number of indexed fingerprints.
func (f *Full) Len() int { return f.all.Len() }

// Hot exposes the in-memory portion (for resize and accounting).
func (f *Full) Hot() *Hot { return f.hot }

// MemHits and DiskLookups report where lookups were served.
func (f *Full) MemHits() int64     { return f.memHits }
func (f *Full) DiskLookups() int64 { return f.diskLookups }

// Lookup searches for fp. memHit reports whether the answer came from
// the in-memory hot portion; when false and the fingerprint exists (or
// must be proven absent), the engine charges an on-disk index lookup.
// Found entries are promoted into the hot portion; the hot portion of
// the full index holds no pins (Full-Dedupe's consistency comes from
// Forget on free), so evictions here are discarded.
func (f *Full) Lookup(fp chunk.Fingerprint) (pba alloc.PBA, found, memHit bool) {
	if e, ok := f.hot.Lookup(fp); ok {
		f.memHits++
		return e.PBA, true, true
	}
	f.diskLookups++
	pba, found = f.all.Get(fp)
	if found {
		f.hot.Insert(fp, pba)
	}
	return pba, found, false
}

// Insert records fp → pba in both the full table and the hot portion.
func (f *Full) Insert(fp chunk.Fingerprint, pba alloc.PBA) {
	if old, ok := f.all.Get(fp); ok {
		f.rev.Delete(old)
	}
	f.all.Put(fp, pba)
	f.rev.Put(pba, fp)
	f.hot.Insert(fp, pba)
}

// Forget removes the index entry referencing pba, called when the block
// is freed so the index never resurrects a dead block.
func (f *Full) Forget(pba alloc.PBA) {
	fp, ok := f.rev.Get(pba)
	if !ok {
		return
	}
	f.rev.Delete(pba)
	f.all.Delete(fp)
	f.hot.Remove(fp)
}
