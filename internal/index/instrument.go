package index

import "github.com/pod-dedup/pod/internal/metrics"

// Instrument publishes the hot index's occupancy and hit accounting
// into reg as live gauges.
func (h *Hot) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("index_hot_entries", func() int64 { return int64(h.Len()) })
	reg.GaugeFunc("index_hot_cap", func() int64 { return int64(h.Cap()) })
	reg.GaugeFunc("index_hot_hits", func() int64 { return h.Hits() })
	reg.GaugeFunc("index_hot_misses", func() int64 { return h.Misses() })
}
