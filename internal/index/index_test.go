package index

import (
	"testing"
	"testing/quick"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/chunk"
)

func fp(id uint64) chunk.Fingerprint {
	c := chunk.Chunk{Content: chunk.ContentID(id)}
	return chunk.SyntheticFingerprinter{}.Fingerprint(&c)
}

func TestHotInsertLookup(t *testing.T) {
	h := NewHot(4)
	if _, evicted := h.Insert(fp(1), 100); evicted {
		t.Fatal("insert into empty index evicted")
	}
	e, ok := h.Lookup(fp(1))
	if !ok || e.PBA != 100 {
		t.Fatalf("lookup = %+v,%v", e, ok)
	}
	if e.Count != 1 {
		t.Fatalf("count after first hit = %d, want 1", e.Count)
	}
	e, _ = h.Lookup(fp(1))
	if e.Count != 2 {
		t.Fatalf("count after second hit = %d, want 2", e.Count)
	}
}

func TestHotMiss(t *testing.T) {
	h := NewHot(4)
	if _, ok := h.Lookup(fp(9)); ok {
		t.Fatal("phantom hit")
	}
	if h.Misses() != 1 {
		t.Fatalf("misses = %d", h.Misses())
	}
}

func TestHotEvictionSurfacesPin(t *testing.T) {
	h := NewHot(2)
	h.Insert(fp(1), 100)
	h.Insert(fp(2), 200)
	ev, evicted := h.Insert(fp(3), 300)
	if !evicted || ev.FP != fp(1) || ev.Entry.PBA != 100 {
		t.Fatalf("evicted = %+v,%v, want fp(1)/100", ev, evicted)
	}
	if h.Len() != 2 {
		t.Fatalf("len = %d", h.Len())
	}
}

func TestHotReinsertSamePBANoop(t *testing.T) {
	h := NewHot(2)
	h.Insert(fp(1), 100)
	h.Lookup(fp(1)) // count = 1
	if _, evicted := h.Insert(fp(1), 100); evicted {
		t.Fatal("idempotent insert must not evict")
	}
	e, _ := h.Peek(fp(1))
	if e.Count != 1 {
		t.Fatal("idempotent insert must preserve Count")
	}
}

func TestHotRemapSurfacesOldPin(t *testing.T) {
	h := NewHot(2)
	h.Insert(fp(1), 100)
	ev, evicted := h.Insert(fp(1), 500)
	if !evicted || ev.Entry.PBA != 100 {
		t.Fatalf("remap must surface old entry, got %+v,%v", ev, evicted)
	}
	e, _ := h.Peek(fp(1))
	if e.PBA != 500 || e.Count != 0 {
		t.Fatalf("remapped entry = %+v", e)
	}
}

func TestHotRemove(t *testing.T) {
	h := NewHot(2)
	h.Insert(fp(1), 100)
	e, ok := h.Remove(fp(1))
	if !ok || e.PBA != 100 {
		t.Fatal("remove failed")
	}
	if _, ok := h.Remove(fp(1)); ok {
		t.Fatal("double remove")
	}
}

func TestHotResizeReturnsAllEvicted(t *testing.T) {
	h := NewHot(4)
	for i := uint64(1); i <= 4; i++ {
		h.Insert(fp(i), alloc.PBA(i*100))
	}
	evs := h.Resize(1)
	if len(evs) != 3 {
		t.Fatalf("resize evicted %d, want 3", len(evs))
	}
	if h.Len() != 1 || h.Cap() != 1 {
		t.Fatal("resize bookkeeping wrong")
	}
}

func TestHotLRUOrder(t *testing.T) {
	h := NewHot(2)
	h.Insert(fp(1), 100)
	h.Insert(fp(2), 200)
	h.Lookup(fp(1)) // promote 1
	ev, _ := h.Insert(fp(3), 300)
	if ev.FP != fp(2) {
		t.Fatal("LRU victim should be the unpromoted entry")
	}
}

func TestHotEach(t *testing.T) {
	h := NewHot(3)
	h.Insert(fp(1), 100)
	h.Insert(fp(2), 200)
	var n int
	h.Each(func(chunk.Fingerprint, Entry) bool { n++; return true })
	if n != 2 {
		t.Fatalf("Each visited %d", n)
	}
}

func TestFullLookupPaths(t *testing.T) {
	f := NewFull(1)
	f.Insert(fp(1), 100)
	f.Insert(fp(2), 200) // hot holds only fp(2); fp(1) evicted from hot

	// memory hit
	if pba, found, mem := f.Lookup(fp(2)); !found || !mem || pba != 200 {
		t.Fatalf("hot path = %d,%v,%v", pba, found, mem)
	}
	// disk lookup, found in full table
	if pba, found, mem := f.Lookup(fp(1)); !found || mem || pba != 100 {
		t.Fatalf("disk path = %d,%v,%v", pba, found, mem)
	}
	// absent fingerprint: still a disk lookup (must prove absence)
	if _, found, mem := f.Lookup(fp(9)); found || mem {
		t.Fatal("absent fp must be a disk-path miss")
	}
	if f.MemHits() != 1 || f.DiskLookups() != 2 {
		t.Fatalf("mem/disk = %d/%d, want 1/2", f.MemHits(), f.DiskLookups())
	}
}

func TestFullLookupPromotesToHot(t *testing.T) {
	f := NewFull(1)
	f.Insert(fp(1), 100)
	f.Insert(fp(2), 200)
	f.Lookup(fp(1)) // disk path; promotes fp(1)
	if _, _, mem := f.Lookup(fp(1)); !mem {
		t.Fatal("second lookup must be a memory hit after promotion")
	}
}

func TestFullForget(t *testing.T) {
	f := NewFull(4)
	f.Insert(fp(1), 100)
	f.Forget(100)
	if _, found, _ := f.Lookup(fp(1)); found {
		t.Fatal("forgotten block still indexed")
	}
	if f.Len() != 0 {
		t.Fatalf("len = %d", f.Len())
	}
	f.Forget(999) // unknown PBA: no-op
}

func TestFullInsertRemapCleansReverse(t *testing.T) {
	f := NewFull(4)
	f.Insert(fp(1), 100)
	f.Insert(fp(1), 500) // content now lives at 500
	f.Forget(100)        // freeing the old block must not kill the entry
	if pba, found, _ := f.Lookup(fp(1)); !found || pba != 500 {
		t.Fatalf("entry lost after old-block forget: %d,%v", pba, found)
	}
}

// Property: the hot index never exceeds capacity and every insert is
// immediately findable (capacity ≥ 1).
func TestHotProperty(t *testing.T) {
	f := func(ids []uint16, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		h := NewHot(capacity)
		for _, id := range ids {
			h.Insert(fp(uint64(id)), alloc.PBA(id))
			if h.Len() > capacity {
				return false
			}
			if e, ok := h.Peek(fp(uint64(id))); !ok || e.PBA != alloc.PBA(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Full index lookups agree with a model map, regardless of
// hot-portion churn.
func TestFullProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		fu := NewFull(4)
		model := map[uint64]alloc.PBA{}
		revModel := map[alloc.PBA]uint64{}
		for _, raw := range ops {
			id := uint64(raw % 32)
			pba := alloc.PBA(raw%64) + 1
			switch raw % 3 {
			case 0, 1:
				if old, ok := model[id]; ok {
					delete(revModel, old)
				}
				// mirror Full.Insert's rev-map semantics: the new pba may
				// have belonged to another fingerprint
				if oldID, ok := revModel[pba]; ok && oldID != id {
					// Full keeps all[oldID] but rev now points to id; Forget(pba)
					// would remove id's entry. Model only the forward map here.
					_ = oldID
				}
				fu.Insert(fp(id), pba)
				model[id] = pba
				revModel[pba] = id
			case 2:
				fu.Forget(pba)
				if id2, ok := revModel[pba]; ok {
					delete(model, id2)
					delete(revModel, pba)
				}
			}
			for id2, want := range model {
				got, found, _ := fu.Lookup(fp(id2))
				if !found || got != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHotLookupHit(b *testing.B) {
	h := NewHot(1024)
	for i := uint64(0); i < 1024; i++ {
		h.Insert(fp(i), alloc.PBA(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Lookup(fp(uint64(i) % 1024))
	}
}
