// Package maptable implements POD's Map table: the LBA→PBA indirection
// layer shared by every deduplication engine in this repository.
//
// The mapping is m-to-1 — many logical block addresses may reference
// one physical block — so each physical block carries a reference
// count; a block is released to the allocator exactly when its last
// logical reference disappears. This realizes the paper's §III-B
// protection ("the Count variable is also used to prevent the
// referenced data blocks from being modified or deleted"): the engines
// purge every index/cache entry naming a reclaimed block and
// re-validate content at dedup time, while the optional Pin/Unpin API
// offers the paper's literal pinning scheme for callers that want it.
//
// To survive power failure the table journals every mutation into
// simulated NVRAM as 20-byte records (the entry size the paper reports
// in §IV-D2): 8 bytes LBA, 8 bytes PBA+flags, 4 bytes epoch-seeded
// CRC-32. Recovery scans the journal and stops at the first record
// whose CRC fails — a torn tail record is thereby discarded, giving
// prefix consistency. Compaction bumps the journal epoch, which is
// mixed into every CRC, so stale records from an earlier generation can
// never be mistaken for live ones.
package maptable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/nvram"
)

// EntryBytes is the journal record size — 20 bytes per Map-table entry,
// matching the paper's memory-overhead accounting.
const EntryBytes = 20

const (
	headerBytes = 16
	magic       = 0x504F4431 // "POD1"

	flagUnset  = 1 << 63
	flagShared = 1 << 62
	pbaMask    = (1 << 62) - 1
)

// Table is the Map table.
type Table struct {
	m      map[uint64]mapping
	refs   map[alloc.PBA]int32
	pins   map[alloc.PBA]int32
	shared int64 // live mappings created by deduplication
	peak   int64 // high-water mark of shared mappings

	// optional reverse index (PBA → referring LBAs), maintained only
	// when the segment cleaner needs to relocate live blocks
	rev map[alloc.PBA]map[uint64]struct{}

	dev   *nvram.Device
	epoch uint32
	tail  int // next journal append offset
}

type mapping struct {
	pba    alloc.PBA
	shared bool
}

// New returns an empty table journaling into dev; dev may be nil for a
// volatile table (used by engines that do not model persistence).
func New(dev *nvram.Device) *Table {
	t := &Table{
		m:    make(map[uint64]mapping),
		refs: make(map[alloc.PBA]int32),
		pins: make(map[alloc.PBA]int32),
		dev:  dev,
		tail: headerBytes,
	}
	if dev != nil {
		t.writeHeader()
	}
	return t
}

// Len reports the number of mapped LBAs.
func (t *Table) Len() int { return len(t.m) }

// EnableReverseIndex starts maintaining the PBA → LBAs reverse index
// (required by Referrers), building it from any existing mappings —
// recovery re-enables it on a freshly loaded table this way.
func (t *Table) EnableReverseIndex() {
	if t.rev != nil {
		return
	}
	t.rev = make(map[alloc.PBA]map[uint64]struct{})
	for lba, mp := range t.m {
		t.revAdd(mp.pba, lba)
	}
}

// Referrers returns the LBAs currently mapped to pba. It panics unless
// EnableReverseIndex was called.
func (t *Table) Referrers(pba alloc.PBA) []uint64 {
	if t.rev == nil {
		panic("maptable: Referrers requires EnableReverseIndex")
	}
	set := t.rev[pba]
	out := make([]uint64, 0, len(set))
	for lba := range set {
		out = append(out, lba)
	}
	return out
}

// LookupFull returns the mapping and its shared flag.
func (t *Table) LookupFull(lba uint64) (pba alloc.PBA, shared, ok bool) {
	mp, ok := t.m[lba]
	return mp.pba, mp.shared, ok
}

func (t *Table) revAdd(pba alloc.PBA, lba uint64) {
	if t.rev == nil {
		return
	}
	set := t.rev[pba]
	if set == nil {
		set = make(map[uint64]struct{})
		t.rev[pba] = set
	}
	set[lba] = struct{}{}
}

func (t *Table) revRemove(pba alloc.PBA, lba uint64) {
	if t.rev == nil {
		return
	}
	if set := t.rev[pba]; set != nil {
		delete(set, lba)
		if len(set) == 0 {
			delete(t.rev, pba)
		}
	}
}

// SharedEntries reports the number of live mappings that were created
// by deduplication (write data not written because a copy existed).
func (t *Table) SharedEntries() int64 { return t.shared }

// PeakSharedEntries reports the high-water mark of SharedEntries.
func (t *Table) PeakSharedEntries() int64 { return t.peak }

// NVRAMBytes reports the paper's Map-table memory-overhead metric:
// live dedup-created entries × 20 bytes.
func (t *Table) NVRAMBytes() int64 { return t.shared * EntryBytes }

// PeakNVRAMBytes reports the high-water mark of NVRAMBytes.
func (t *Table) PeakNVRAMBytes() int64 { return t.peak * EntryBytes }

// Lookup returns the physical block backing lba.
func (t *Table) Lookup(lba uint64) (alloc.PBA, bool) {
	mp, ok := t.m[lba]
	return mp.pba, ok
}

// RefCount reports the logical-reference count of pba (pins excluded).
func (t *Table) RefCount(pba alloc.PBA) int { return int(t.refs[pba]) }

// Pinned reports whether the hot index currently pins pba.
func (t *Table) Pinned(pba alloc.PBA) bool { return t.pins[pba] > 0 }

// Set maps lba to pba. shared marks mappings created by deduplication
// (the data was not written; it references a pre-existing copy). The
// returned slice lists physical blocks whose last reference disappeared
// with this update — the caller returns them to the allocator.
func (t *Table) Set(lba uint64, pba alloc.PBA, shared bool) []alloc.PBA {
	if uint64(pba) > pbaMask {
		panic(fmt.Sprintf("maptable: pba %d exceeds encodable range", pba))
	}
	if mp, ok := t.m[lba]; ok && mp.pba == pba {
		// same-location update: never let the refcount dip to zero
		// transiently (the block is still mapped)
		if mp.shared != shared {
			if mp.shared {
				t.shared--
			} else {
				t.shared++
				if t.shared > t.peak {
					t.peak = t.shared
				}
			}
			t.m[lba] = mapping{pba: pba, shared: shared}
		}
		t.journal(lba, uint64(pba), shared, false)
		return nil
	}
	freed := t.dropMapping(lba)
	t.m[lba] = mapping{pba: pba, shared: shared}
	t.refs[pba]++
	t.revAdd(pba, lba)
	if shared {
		t.shared++
		if t.shared > t.peak {
			t.peak = t.shared
		}
	}
	t.journal(lba, uint64(pba), shared, false)
	return freed
}

// Unset removes lba's mapping, returning any block freed by the update.
func (t *Table) Unset(lba uint64) []alloc.PBA {
	freed := t.dropMapping(lba)
	t.journal(lba, 0, false, true)
	return freed
}

// dropMapping removes lba's current mapping (if any) and returns the
// PBA if its reference count reached zero and it is unpinned.
func (t *Table) dropMapping(lba uint64) []alloc.PBA {
	mp, ok := t.m[lba]
	if !ok {
		return nil
	}
	delete(t.m, lba)
	t.revRemove(mp.pba, lba)
	if mp.shared {
		t.shared--
	}
	t.refs[mp.pba]--
	if t.refs[mp.pba] < 0 {
		panic("maptable: negative refcount")
	}
	if t.refs[mp.pba] == 0 {
		delete(t.refs, mp.pba)
		if t.pins[mp.pba] == 0 {
			return []alloc.PBA{mp.pba}
		}
	}
	return nil
}

// CheckConsistency verifies the table's internal invariants: every
// physical block's reference count equals the number of live mappings
// naming it, the shared-entry counter matches the shared flags, and the
// reverse index (when enabled) mirrors the forward map exactly. It
// returns a descriptive error for the first violation found, or nil.
// Exposed for property tests over the m-to-1 mapping.
func (t *Table) CheckConsistency() error {
	refs := make(map[alloc.PBA]int32, len(t.refs))
	var shared int64
	for lba, mp := range t.m {
		refs[mp.pba]++
		if mp.shared {
			shared++
		}
		if t.rev != nil {
			if _, ok := t.rev[mp.pba][lba]; !ok {
				return fmt.Errorf("maptable: lba %d -> pba %d missing from reverse index", lba, mp.pba)
			}
		}
	}
	if shared != t.shared {
		return fmt.Errorf("maptable: shared counter %d, but %d mappings carry the flag", t.shared, shared)
	}
	if len(refs) != len(t.refs) {
		return fmt.Errorf("maptable: %d referenced blocks, refcount table has %d", len(refs), len(t.refs))
	}
	for pba, n := range refs {
		if t.refs[pba] != n {
			return fmt.Errorf("maptable: pba %d refcount %d, but %d mappings reference it", pba, t.refs[pba], n)
		}
	}
	if t.rev != nil {
		total := 0
		for _, set := range t.rev {
			total += len(set)
		}
		if total != len(t.m) {
			return fmt.Errorf("maptable: reverse index holds %d entries, forward map %d", total, len(t.m))
		}
	}
	return nil
}

// Each visits every live mapping; return false from fn to stop early.
func (t *Table) Each(fn func(lba uint64, pba alloc.PBA, shared bool) bool) {
	for lba, mp := range t.m {
		if !fn(lba, mp.pba, mp.shared) {
			return
		}
	}
}

// Pin adds an index-cache pin to pba, protecting it from reclamation.
func (t *Table) Pin(pba alloc.PBA) { t.pins[pba]++ }

// Unpin drops an index pin. It returns true when the block became
// reclaimable (no pins, no logical references) — the caller frees it.
func (t *Table) Unpin(pba alloc.PBA) bool {
	t.pins[pba]--
	if t.pins[pba] < 0 {
		panic("maptable: negative pin count")
	}
	if t.pins[pba] == 0 {
		delete(t.pins, pba)
		return t.refs[pba] == 0
	}
	return false
}

// --- journaling ---

func (t *Table) writeHeader() {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], t.epoch)
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(hdr[0:8]))
	_ = t.dev.WriteAt(0, hdr[:]) // a crashed device keeps the old header
}

func encodeRecord(buf *[EntryBytes]byte, epoch uint32, lba, pbaFlags uint64) {
	binary.LittleEndian.PutUint64(buf[0:], lba)
	binary.LittleEndian.PutUint64(buf[8:], pbaFlags)
	var seed [4]byte
	binary.LittleEndian.PutUint32(seed[:], epoch)
	crc := crc32.Update(crc32.ChecksumIEEE(seed[:]), crc32.IEEETable, buf[0:16])
	binary.LittleEndian.PutUint32(buf[16:], crc)
}

func (t *Table) journal(lba, pba uint64, shared, unset bool) {
	if t.dev == nil {
		return
	}
	pf := pba
	if shared {
		pf |= flagShared
	}
	if unset {
		pf |= flagUnset
	}
	if t.tail+EntryBytes > t.dev.Size() {
		t.Compact()
		if t.tail+EntryBytes > t.dev.Size() {
			panic(fmt.Sprintf("maptable: NVRAM too small: %d live entries need %d bytes, have %d",
				len(t.m), headerBytes+(len(t.m)+1)*EntryBytes, t.dev.Size()))
		}
	}
	var rec [EntryBytes]byte
	encodeRecord(&rec, t.epoch, lba, pf)
	_ = t.dev.WriteAt(t.tail, rec[:]) // crash mid-record leaves a torn tail; recovery discards it
	t.tail += EntryBytes
}

// Compact rewrites the journal as a snapshot of the live mappings under
// a new epoch, reclaiming space consumed by superseded records.
func (t *Table) Compact() {
	if t.dev == nil {
		return
	}
	t.epoch++
	t.writeHeader()
	t.tail = headerBytes
	for lba, mp := range t.m {
		pf := uint64(mp.pba)
		if mp.shared {
			pf |= flagShared
		}
		if t.tail+EntryBytes > t.dev.Size() {
			panic("maptable: NVRAM too small for live snapshot")
		}
		var rec [EntryBytes]byte
		encodeRecord(&rec, t.epoch, lba, pf)
		_ = t.dev.WriteAt(t.tail, rec[:])
		t.tail += EntryBytes
	}
}

// JournalTail reports the current append offset (for tests and space
// accounting).
func (t *Table) JournalTail() int { return t.tail }

// Load reconstructs a table from the journal on dev, applying records
// until the first CRC failure (prefix consistency after a torn write).
// Index pins are volatile and come back empty; reference counts are
// recomputed from the surviving mappings. It returns the rebuilt table
// and the number of records applied.
func Load(dev *nvram.Device) (*Table, int, error) {
	var hdr [headerBytes]byte
	if err := dev.ReadAt(0, hdr[:]); err != nil {
		return nil, 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, 0, fmt.Errorf("maptable: bad journal magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if crc32.ChecksumIEEE(hdr[0:8]) != binary.LittleEndian.Uint32(hdr[8:]) {
		return nil, 0, fmt.Errorf("maptable: corrupt journal header")
	}
	epoch := binary.LittleEndian.Uint32(hdr[4:])

	t := &Table{
		m:     make(map[uint64]mapping),
		refs:  make(map[alloc.PBA]int32),
		pins:  make(map[alloc.PBA]int32),
		dev:   dev,
		epoch: epoch,
		tail:  headerBytes,
	}
	var seed [4]byte
	binary.LittleEndian.PutUint32(seed[:], epoch)
	seedCRC := crc32.ChecksumIEEE(seed[:])

	applied := 0
	var rec [EntryBytes]byte
	for off := headerBytes; off+EntryBytes <= dev.Size(); off += EntryBytes {
		if err := dev.ReadAt(off, rec[:]); err != nil {
			break
		}
		want := binary.LittleEndian.Uint32(rec[16:])
		if crc32.Update(seedCRC, crc32.IEEETable, rec[0:16]) != want {
			break // torn or stale record: stop at the consistent prefix
		}
		lba := binary.LittleEndian.Uint64(rec[0:])
		pf := binary.LittleEndian.Uint64(rec[8:])
		if pf&flagUnset != 0 {
			t.dropMapping(lba)
		} else {
			t.dropMapping(lba)
			shared := pf&flagShared != 0
			pba := alloc.PBA(pf & pbaMask)
			t.m[lba] = mapping{pba: pba, shared: shared}
			t.refs[pba]++
			if shared {
				t.shared++
			}
		}
		applied++
		t.tail = off + EntryBytes
	}
	if t.shared > t.peak {
		t.peak = t.shared
	}
	return t, applied, nil
}
