// Package maptable implements POD's Map table: the LBA→PBA indirection
// layer shared by every deduplication engine in this repository.
//
// The mapping is m-to-1 — many logical block addresses may reference
// one physical block — so each physical block carries a reference
// count; a block is released to the allocator exactly when its last
// logical reference disappears. This realizes the paper's §III-B
// protection ("the Count variable is also used to prevent the
// referenced data blocks from being modified or deleted"): the engines
// purge every index/cache entry naming a reclaimed block and
// re-validate content at dedup time, while the optional Pin/Unpin API
// offers the paper's literal pinning scheme for callers that want it.
//
// To survive power failure the table journals every mutation into
// simulated NVRAM as 20-byte records (the entry size the paper reports
// in §IV-D2): 8 bytes LBA, 8 bytes PBA+flags, 4 bytes epoch-seeded
// CRC-32. Recovery scans the journal and stops at the first record
// whose CRC fails — a torn tail record is thereby discarded, giving
// prefix consistency. Compaction bumps the journal epoch, which is
// mixed into every CRC, so stale records from an earlier generation can
// never be mistaken for live ones.
package maptable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/nvram"
)

// EntryBytes is the journal record size — 20 bytes per Map-table entry,
// matching the paper's memory-overhead accounting.
const EntryBytes = 20

const (
	headerBytes = 16
	magic       = 0x504F4431 // "POD1"

	flagUnset  = 1 << 63
	flagShared = 1 << 62
	pbaMask    = (1 << 62) - 1
)

// The forward map, reference counts, and pin counts are direct-mapped
// paged arrays rather than hash maps: LBAs come from a bump allocator
// over the trace footprint and PBAs from the block allocator, so both
// key spaces are dense and bounded, and at trace scale the hash maps'
// probing and growth rehashes were the simulator's single largest CPU
// consumer. Keys at or above pagedCap (never produced by real traces,
// but reachable through hostile journals in fuzzing) fall back to maps
// so sparse keys cost memory proportional to their count, not their
// magnitude. Pages are pooled across table lifetimes like the content
// model's (see engine/store.go); Release returns them.
const (
	tblPageBits = 16
	tblPageSize = 1 << tblPageBits
	tblPageMask = tblPageSize - 1

	// pagedCap bounds the direct-mapped key range: 2^28 chunks = 1 TiB
	// of 4 KiB logical space, far above any experiment's footprint.
	pagedCap = 1 << 28
)

type mapPage [tblPageSize]uint64
type cntPage [tblPageSize]int32

var (
	mapPagePool = sync.Pool{New: func() any { return new(mapPage) }}
	cntPagePool = sync.Pool{New: func() any { return new(cntPage) }}
)

// pagedMap holds LBA → encoded mapping (present|shared|pba packed in
// one word; 0 = absent) for keys below pagedCap, spilling the rest to
// far. n counts live entries across both regions.
type pagedMap struct {
	pages []*mapPage
	far   map[uint64]uint64
	n     int
}

func (p *pagedMap) get(k uint64) uint64 {
	if k < pagedCap {
		pg := k >> tblPageBits
		if pg >= uint64(len(p.pages)) || p.pages[pg] == nil {
			return 0
		}
		return p.pages[pg][k&tblPageMask]
	}
	return p.far[k]
}

func (p *pagedMap) set(k, v uint64) {
	if k < pagedCap {
		pg := k >> tblPageBits
		if pg >= uint64(len(p.pages)) {
			pages := make([]*mapPage, pg+1)
			copy(pages, p.pages)
			p.pages = pages
		}
		if p.pages[pg] == nil {
			p.pages[pg] = mapPagePool.Get().(*mapPage)
		}
		slot := &p.pages[pg][k&tblPageMask]
		if *slot == 0 {
			p.n++
		}
		*slot = v
		return
	}
	if p.far == nil {
		p.far = make(map[uint64]uint64)
	}
	if _, ok := p.far[k]; !ok {
		p.n++
	}
	p.far[k] = v
}

func (p *pagedMap) del(k uint64) {
	if k < pagedCap {
		pg := k >> tblPageBits
		if pg >= uint64(len(p.pages)) || p.pages[pg] == nil {
			return
		}
		slot := &p.pages[pg][k&tblPageMask]
		if *slot != 0 {
			p.n--
			*slot = 0
		}
		return
	}
	if _, ok := p.far[k]; ok {
		p.n--
		delete(p.far, k)
	}
}

// each visits live entries in key order (pages, then the far spill in
// map order). No caller depends on ordering; the deterministic page
// walk simply replaces the old map's randomized one.
func (p *pagedMap) each(fn func(k, v uint64) bool) {
	for pg, page := range p.pages {
		if page == nil {
			continue
		}
		base := uint64(pg) << tblPageBits
		for i := range page {
			if v := page[i]; v != 0 {
				if !fn(base+uint64(i), v) {
					return
				}
			}
		}
	}
	for k, v := range p.far {
		if !fn(k, v) {
			return
		}
	}
}

func (p *pagedMap) release() {
	for i, page := range p.pages {
		if page != nil {
			clear(page[:])
			mapPagePool.Put(page)
			p.pages[i] = nil
		}
	}
	p.pages = p.pages[:0]
	p.far = nil
	p.n = 0
}

// pagedCount holds a small signed counter per dense key (refcounts,
// pins); zero means absent. n counts nonzero entries.
type pagedCount struct {
	pages []*cntPage
	far   map[uint64]int32
	n     int
}

func (p *pagedCount) get(k uint64) int32 {
	if k < pagedCap {
		pg := k >> tblPageBits
		if pg >= uint64(len(p.pages)) || p.pages[pg] == nil {
			return 0
		}
		return p.pages[pg][k&tblPageMask]
	}
	return p.far[k]
}

// add adjusts key k by d and returns the new value, maintaining the
// nonzero-entry count.
func (p *pagedCount) add(k uint64, d int32) int32 {
	if k < pagedCap {
		pg := k >> tblPageBits
		if pg >= uint64(len(p.pages)) {
			pages := make([]*cntPage, pg+1)
			copy(pages, p.pages)
			p.pages = pages
		}
		if p.pages[pg] == nil {
			p.pages[pg] = cntPagePool.Get().(*cntPage)
		}
		slot := &p.pages[pg][k&tblPageMask]
		old := *slot
		*slot = old + d
		switch {
		case old == 0 && *slot != 0:
			p.n++
		case old != 0 && *slot == 0:
			p.n--
		}
		return *slot
	}
	if p.far == nil {
		p.far = make(map[uint64]int32)
	}
	old := p.far[k]
	v := old + d
	switch {
	case old == 0 && v != 0:
		p.n++
		p.far[k] = v
	case old != 0 && v == 0:
		p.n--
		delete(p.far, k)
	default:
		p.far[k] = v
	}
	return v
}

func (p *pagedCount) release() {
	for i, page := range p.pages {
		if page != nil {
			clear(page[:])
			cntPagePool.Put(page)
			p.pages[i] = nil
		}
	}
	p.pages = p.pages[:0]
	p.far = nil
	p.n = 0
}

// each visits every nonzero counter; return false from fn to stop.
// Dense keys come in ascending order, far keys in map order.
func (p *pagedCount) each(fn func(k uint64, v int32) bool) {
	for pg, page := range p.pages {
		if page == nil {
			continue
		}
		base := uint64(pg) << tblPageBits
		for i, v := range page {
			if v != 0 && !fn(base+uint64(i), v) {
				return
			}
		}
	}
	for k, v := range p.far {
		if !fn(k, v) {
			return
		}
	}
}

const (
	encPresent = 1 << 63
	encShared  = 1 << 62
)

func encodeMapping(mp mapping) uint64 {
	v := uint64(mp.pba) | encPresent
	if mp.shared {
		v |= encShared
	}
	return v
}

func decodeMapping(v uint64) mapping {
	return mapping{pba: alloc.PBA(v & pbaMask), shared: v&encShared != 0}
}

// Table is the Map table.
type Table struct {
	m      pagedMap
	refs   pagedCount
	pins   pagedCount
	shared int64 // live mappings created by deduplication
	peak   int64 // high-water mark of shared mappings

	// optional reverse index (PBA → referring LBAs), maintained only
	// when the segment cleaner needs to relocate live blocks
	rev map[alloc.PBA]map[uint64]struct{}

	dev     *nvram.Device
	epoch   uint32
	seedCRC uint32 // crc32 of the little-endian epoch, recomputed per epoch
	tail    int    // next journal append offset

	// rec is the journal-record scratch buffer: journaling is strictly
	// sequential per table, and the device copies the bytes, so one
	// buffer serves every append without escaping to the heap.
	rec [EntryBytes]byte

	// freedScratch backs the slices returned by Set/Unset/dropMapping;
	// it is valid only until the table's next mutating call.
	freedScratch []alloc.PBA

	// OnParole, when set, is invoked whenever a block's last logical
	// reference disappears while a pin suppresses its reclamation — the
	// block survives as a pinned, unmapped "parolee". The global
	// fingerprint tier uses the hook to start recalling cross-shard
	// hints so the block can eventually be freed. The handler runs
	// inside the mutating call and must not re-enter the table.
	OnParole func(alloc.PBA)
}

type mapping struct {
	pba    alloc.PBA
	shared bool
}

// New returns an empty table journaling into dev; dev may be nil for a
// volatile table (used by engines that do not model persistence).
func New(dev *nvram.Device) *Table {
	t := &Table{
		dev:  dev,
		tail: headerBytes,
	}
	t.seedCRC = epochSeedCRC(t.epoch)
	if dev != nil {
		t.writeHeader()
	}
	return t
}

// epochSeedCRC seeds the record CRC with the journal epoch so stale
// records from an earlier generation can never pass validation. The
// seed depends only on the epoch, so it is computed once per epoch
// rather than once per record.
func epochSeedCRC(epoch uint32) uint32 {
	var seed [4]byte
	binary.LittleEndian.PutUint32(seed[:], epoch)
	return crc32.ChecksumIEEE(seed[:])
}

// Len reports the number of mapped LBAs.
func (t *Table) Len() int { return t.m.n }

// Release returns the table's pages to the process-wide pools; the
// table must not be used afterwards. The replay harness calls it at
// engine teardown via engine.Base.Release.
func (t *Table) Release() {
	t.m.release()
	t.refs.release()
	t.pins.release()
	t.rev = nil
}

// EnableReverseIndex starts maintaining the PBA → LBAs reverse index
// (required by Referrers), building it from any existing mappings —
// recovery re-enables it on a freshly loaded table this way.
func (t *Table) EnableReverseIndex() {
	if t.rev != nil {
		return
	}
	t.rev = make(map[alloc.PBA]map[uint64]struct{})
	t.m.each(func(lba, v uint64) bool {
		t.revAdd(decodeMapping(v).pba, lba)
		return true
	})
}

// Referrers returns the LBAs currently mapped to pba. It panics unless
// EnableReverseIndex was called.
func (t *Table) Referrers(pba alloc.PBA) []uint64 {
	if t.rev == nil {
		panic("maptable: Referrers requires EnableReverseIndex")
	}
	set := t.rev[pba]
	out := make([]uint64, 0, len(set))
	for lba := range set {
		out = append(out, lba)
	}
	return out
}

// LookupFull returns the mapping and its shared flag.
func (t *Table) LookupFull(lba uint64) (pba alloc.PBA, shared, ok bool) {
	v := t.m.get(lba)
	if v == 0 {
		return 0, false, false
	}
	mp := decodeMapping(v)
	return mp.pba, mp.shared, true
}

func (t *Table) revAdd(pba alloc.PBA, lba uint64) {
	if t.rev == nil {
		return
	}
	set := t.rev[pba]
	if set == nil {
		set = make(map[uint64]struct{})
		t.rev[pba] = set
	}
	set[lba] = struct{}{}
}

func (t *Table) revRemove(pba alloc.PBA, lba uint64) {
	if t.rev == nil {
		return
	}
	if set := t.rev[pba]; set != nil {
		delete(set, lba)
		if len(set) == 0 {
			delete(t.rev, pba)
		}
	}
}

// SharedEntries reports the number of live mappings that were created
// by deduplication (write data not written because a copy existed).
func (t *Table) SharedEntries() int64 { return t.shared }

// PeakSharedEntries reports the high-water mark of SharedEntries.
func (t *Table) PeakSharedEntries() int64 { return t.peak }

// NVRAMBytes reports the paper's Map-table memory-overhead metric:
// live dedup-created entries × 20 bytes.
func (t *Table) NVRAMBytes() int64 { return t.shared * EntryBytes }

// PeakNVRAMBytes reports the high-water mark of NVRAMBytes.
func (t *Table) PeakNVRAMBytes() int64 { return t.peak * EntryBytes }

// Lookup returns the physical block backing lba.
func (t *Table) Lookup(lba uint64) (alloc.PBA, bool) {
	v := t.m.get(lba)
	if v == 0 {
		return 0, false
	}
	return alloc.PBA(v & pbaMask), true
}

// RefCount reports the logical-reference count of pba (pins excluded).
func (t *Table) RefCount(pba alloc.PBA) int { return int(t.refs.get(uint64(pba))) }

// Pinned reports whether the hot index currently pins pba.
func (t *Table) Pinned(pba alloc.PBA) bool { return t.pins.get(uint64(pba)) > 0 }

// Set maps lba to pba. shared marks mappings created by deduplication
// (the data was not written; it references a pre-existing copy). The
// returned slice lists physical blocks whose last reference disappeared
// with this update — the caller returns them to the allocator. The
// slice aliases table-owned scratch and is valid only until the next
// mutating call (Set/Unset/Compact/Load); callers must consume it
// immediately rather than retain it.
func (t *Table) Set(lba uint64, pba alloc.PBA, shared bool) []alloc.PBA {
	if uint64(pba) > pbaMask {
		panic(fmt.Sprintf("maptable: pba %d exceeds encodable range", pba))
	}
	if v := t.m.get(lba); v != 0 && alloc.PBA(v&pbaMask) == pba {
		// same-location update: never let the refcount dip to zero
		// transiently (the block is still mapped)
		if wasShared := v&encShared != 0; wasShared != shared {
			if wasShared {
				t.shared--
			} else {
				t.shared++
				if t.shared > t.peak {
					t.peak = t.shared
				}
			}
			t.m.set(lba, encodeMapping(mapping{pba: pba, shared: shared}))
		}
		t.journal(lba, uint64(pba), shared, false)
		return nil
	}
	freed := t.dropMapping(lba)
	t.m.set(lba, encodeMapping(mapping{pba: pba, shared: shared}))
	t.refs.add(uint64(pba), 1)
	t.revAdd(pba, lba)
	if shared {
		t.shared++
		if t.shared > t.peak {
			t.peak = t.shared
		}
	}
	t.journal(lba, uint64(pba), shared, false)
	return freed
}

// Unset removes lba's mapping, returning any block freed by the update.
// The returned slice follows Set's scratch-ownership rule: valid only
// until the next mutating call.
func (t *Table) Unset(lba uint64) []alloc.PBA {
	freed := t.dropMapping(lba)
	t.journal(lba, 0, false, true)
	return freed
}

// dropMapping removes lba's current mapping (if any) and returns the
// PBA if its reference count reached zero and it is unpinned. The
// returned slice aliases freedScratch.
func (t *Table) dropMapping(lba uint64) []alloc.PBA {
	v := t.m.get(lba)
	if v == 0 {
		return nil
	}
	mp := decodeMapping(v)
	t.m.del(lba)
	t.revRemove(mp.pba, lba)
	if mp.shared {
		t.shared--
	}
	left := t.refs.add(uint64(mp.pba), -1)
	if left < 0 {
		panic("maptable: negative refcount")
	}
	if left == 0 {
		if t.pins.get(uint64(mp.pba)) == 0 {
			t.freedScratch = append(t.freedScratch[:0], mp.pba)
			return t.freedScratch
		}
		if t.OnParole != nil {
			t.OnParole(mp.pba)
		}
	}
	return nil
}

// CheckConsistency verifies the table's internal invariants: every
// physical block's reference count equals the number of live mappings
// naming it, the shared-entry counter matches the shared flags, and the
// reverse index (when enabled) mirrors the forward map exactly. It
// returns a descriptive error for the first violation found, or nil.
// Exposed for property tests over the m-to-1 mapping.
func (t *Table) CheckConsistency() error {
	refs := make(map[alloc.PBA]int32, t.refs.n)
	var shared int64
	var bad error
	t.m.each(func(lba, v uint64) bool {
		mp := decodeMapping(v)
		refs[mp.pba]++
		if mp.shared {
			shared++
		}
		if t.rev != nil {
			if _, ok := t.rev[mp.pba][lba]; !ok {
				bad = fmt.Errorf("maptable: lba %d -> pba %d missing from reverse index", lba, mp.pba)
				return false
			}
		}
		return true
	})
	if bad != nil {
		return bad
	}
	if shared != t.shared {
		return fmt.Errorf("maptable: shared counter %d, but %d mappings carry the flag", t.shared, shared)
	}
	if len(refs) != t.refs.n {
		return fmt.Errorf("maptable: %d referenced blocks, refcount table has %d", len(refs), t.refs.n)
	}
	for pba, n := range refs {
		if t.refs.get(uint64(pba)) != n {
			return fmt.Errorf("maptable: pba %d refcount %d, but %d mappings reference it", pba, t.refs.get(uint64(pba)), n)
		}
	}
	if t.rev != nil {
		total := 0
		for _, set := range t.rev {
			total += len(set)
		}
		if total != t.m.n {
			return fmt.Errorf("maptable: reverse index holds %d entries, forward map %d", total, t.m.n)
		}
	}
	return nil
}

// Each visits every live mapping; return false from fn to stop early.
func (t *Table) Each(fn func(lba uint64, pba alloc.PBA, shared bool) bool) {
	t.m.each(func(lba, v uint64) bool {
		mp := decodeMapping(v)
		return fn(lba, mp.pba, mp.shared)
	})
}

// Pin adds an index-cache pin to pba, protecting it from reclamation.
func (t *Table) Pin(pba alloc.PBA) { t.pins.add(uint64(pba), 1) }

// PinCount reports the number of pins currently held on pba.
func (t *Table) PinCount(pba alloc.PBA) int { return int(t.pins.get(uint64(pba))) }

// EachPinned visits every block holding at least one pin; return false
// from fn to stop early. Dense PBAs come in ascending order.
func (t *Table) EachPinned(fn func(pba alloc.PBA, pins int) bool) {
	t.pins.each(func(k uint64, v int32) bool {
		return fn(alloc.PBA(k), int(v))
	})
}

// Unpin drops an index pin. It returns true when the block became
// reclaimable (no pins, no logical references) — the caller frees it.
func (t *Table) Unpin(pba alloc.PBA) bool {
	left := t.pins.add(uint64(pba), -1)
	if left < 0 {
		panic("maptable: negative pin count")
	}
	if left == 0 {
		return t.refs.get(uint64(pba)) == 0
	}
	return false
}

// --- journaling ---

func (t *Table) writeHeader() {
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], t.epoch)
	binary.LittleEndian.PutUint32(hdr[8:], crc32.ChecksumIEEE(hdr[0:8]))
	_ = t.dev.WriteAt(0, hdr[:]) // a crashed device keeps the old header
}

// recordSum is the per-record checksum: a murmur-style finalizer over
// the record words and the epoch seed. The byte-wise CRC32 it replaces
// cost ~3% of a full podbench run; the finalizer detects the same torn
// and stale records (any flipped bit avalanches through the mix) in a
// handful of ALU ops, and the journal format carries no compatibility
// burden — journal and Load always come from the same build.
func recordSum(seed uint32, lba, pbaFlags uint64) uint32 {
	x := lba*0x9e3779b97f4a7c15 ^ pbaFlags ^ uint64(seed)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return uint32(x)
}

func encodeRecord(buf *[EntryBytes]byte, seedCRC uint32, lba, pbaFlags uint64) {
	binary.LittleEndian.PutUint64(buf[0:], lba)
	binary.LittleEndian.PutUint64(buf[8:], pbaFlags)
	binary.LittleEndian.PutUint32(buf[16:], recordSum(seedCRC, lba, pbaFlags))
}

func (t *Table) journal(lba, pba uint64, shared, unset bool) {
	if t.dev == nil {
		return
	}
	pf := pba
	if shared {
		pf |= flagShared
	}
	if unset {
		pf |= flagUnset
	}
	if t.tail+EntryBytes > t.dev.Size() {
		t.Compact()
		if t.tail+EntryBytes > t.dev.Size() {
			panic(fmt.Sprintf("maptable: NVRAM too small: %d live entries need %d bytes, have %d",
				t.m.n, headerBytes+(t.m.n+1)*EntryBytes, t.dev.Size()))
		}
	}
	encodeRecord(&t.rec, t.seedCRC, lba, pf)
	_ = t.dev.WriteAt(t.tail, t.rec[:]) // crash mid-record leaves a torn tail; recovery discards it
	t.tail += EntryBytes
}

// Compact rewrites the journal as a snapshot of the live mappings under
// a new epoch, reclaiming space consumed by superseded records.
func (t *Table) Compact() {
	if t.dev == nil {
		return
	}
	t.epoch++
	t.seedCRC = epochSeedCRC(t.epoch)
	t.writeHeader()
	t.tail = headerBytes
	t.m.each(func(lba, v uint64) bool {
		mp := decodeMapping(v)
		pf := uint64(mp.pba)
		if mp.shared {
			pf |= flagShared
		}
		if t.tail+EntryBytes > t.dev.Size() {
			panic("maptable: NVRAM too small for live snapshot")
		}
		encodeRecord(&t.rec, t.seedCRC, lba, pf)
		_ = t.dev.WriteAt(t.tail, t.rec[:])
		t.tail += EntryBytes
		return true
	})
}

// JournalTail reports the current append offset (for tests and space
// accounting).
func (t *Table) JournalTail() int { return t.tail }

// Load reconstructs a table from the journal on dev, applying records
// until the first CRC failure (prefix consistency after a torn write).
// Index pins are volatile and come back empty; reference counts are
// recomputed from the surviving mappings. It returns the rebuilt table
// and the number of records applied.
func Load(dev *nvram.Device) (*Table, int, error) {
	var hdr [headerBytes]byte
	if err := dev.ReadAt(0, hdr[:]); err != nil {
		return nil, 0, err
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, 0, fmt.Errorf("maptable: bad journal magic %#x", binary.LittleEndian.Uint32(hdr[0:]))
	}
	if crc32.ChecksumIEEE(hdr[0:8]) != binary.LittleEndian.Uint32(hdr[8:]) {
		return nil, 0, fmt.Errorf("maptable: corrupt journal header")
	}
	epoch := binary.LittleEndian.Uint32(hdr[4:])

	t := &Table{
		dev:   dev,
		epoch: epoch,
		tail:  headerBytes,
	}
	t.seedCRC = epochSeedCRC(epoch)

	applied := 0
	var rec [EntryBytes]byte
	for off := headerBytes; off+EntryBytes <= dev.Size(); off += EntryBytes {
		if err := dev.ReadAt(off, rec[:]); err != nil {
			break
		}
		want := binary.LittleEndian.Uint32(rec[16:])
		lba := binary.LittleEndian.Uint64(rec[0:])
		pf := binary.LittleEndian.Uint64(rec[8:])
		if recordSum(t.seedCRC, lba, pf) != want {
			break // torn or stale record: stop at the consistent prefix
		}
		if pf&flagUnset != 0 {
			t.dropMapping(lba)
		} else {
			t.dropMapping(lba)
			shared := pf&flagShared != 0
			pba := alloc.PBA(pf & pbaMask)
			t.m.set(lba, encodeMapping(mapping{pba: pba, shared: shared}))
			t.refs.add(uint64(pba), 1)
			if shared {
				t.shared++
			}
		}
		applied++
		t.tail = off + EntryBytes
	}
	if t.shared > t.peak {
		t.peak = t.shared
	}
	return t, applied, nil
}
