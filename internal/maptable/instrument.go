package maptable

import "github.com/pod-dedup/pod/internal/metrics"

// Instrument publishes the table's occupancy and journal accounting
// into reg as live gauges. The engine re-calls it after crash recovery
// replaces the table, so the callbacks always follow the live instance.
func (t *Table) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("maptable_entries", func() int64 { return int64(t.Len()) })
	reg.GaugeFunc("maptable_shared_entries", func() int64 { return t.SharedEntries() })
	reg.GaugeFunc("maptable_shared_entries_peak", func() int64 { return t.PeakSharedEntries() })
	reg.GaugeFunc("maptable_nvram_bytes", func() int64 { return t.NVRAMBytes() })
	reg.GaugeFunc("maptable_nvram_bytes_peak", func() int64 { return t.PeakNVRAMBytes() })
	reg.GaugeFunc("maptable_journal_tail", func() int64 { return int64(t.JournalTail()) })
}
