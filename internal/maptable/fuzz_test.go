package maptable

import (
	"testing"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/nvram"
)

// FuzzLoad: recovery over arbitrary NVRAM contents must never panic —
// it either reports a structural error or returns an internally
// consistent table (refcounts exactly equal to the number of LBAs
// mapping to each block).
func FuzzLoad(f *testing.F) {
	// seed: a real journal
	dev := nvram.New(1024)
	tb := New(dev)
	tb.Set(1, 100, false)
	tb.Set(2, 100, true)
	tb.Unset(1)
	seed := make([]byte, dev.Size())
	dev.ReadAt(0, seed)
	f.Add(seed)
	f.Add(make([]byte, 1024))
	f.Add([]byte{0x31, 0x44, 0x4F, 0x50}) // magic only, truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 1<<16 {
			return
		}
		d := nvram.New(len(data))
		if err := d.WriteAt(0, data); err != nil {
			t.Fatal(err)
		}
		tbl, _, err := Load(d)
		if err != nil {
			return
		}
		counts := map[alloc.PBA]int{}
		tbl.Each(func(_ uint64, pba alloc.PBA, _ bool) bool {
			counts[pba]++
			return true
		})
		for pba, want := range counts {
			if tbl.RefCount(pba) != want {
				t.Fatalf("recovered refcount for %d = %d, want %d", pba, tbl.RefCount(pba), want)
			}
		}
	})
}
