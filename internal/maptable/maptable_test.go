package maptable

import (
	"testing"
	"testing/quick"

	"github.com/pod-dedup/pod/internal/alloc"
	"github.com/pod-dedup/pod/internal/nvram"
)

func TestSetLookup(t *testing.T) {
	tb := New(nil)
	tb.Set(5, 100, false)
	if pba, ok := tb.Lookup(5); !ok || pba != 100 {
		t.Fatalf("lookup = %d,%v", pba, ok)
	}
	if _, ok := tb.Lookup(6); ok {
		t.Fatal("phantom mapping")
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestRemapFreesOldBlock(t *testing.T) {
	tb := New(nil)
	tb.Set(1, 100, false)
	freed := tb.Set(1, 200, false)
	if len(freed) != 1 || freed[0] != 100 {
		t.Fatalf("freed = %v, want [100]", freed)
	}
}

func TestSharedBlockNotFreedUntilLastRef(t *testing.T) {
	tb := New(nil)
	tb.Set(1, 100, false)
	tb.Set(2, 100, true) // dedup: second LBA references same block
	if tb.RefCount(100) != 2 {
		t.Fatalf("refcount = %d", tb.RefCount(100))
	}
	if freed := tb.Set(1, 200, false); len(freed) != 0 {
		t.Fatalf("block with remaining refs freed: %v", freed)
	}
	if freed := tb.Unset(2); len(freed) != 1 || freed[0] != 100 {
		t.Fatalf("last deref must free: %v", freed)
	}
}

func TestPinPreventsFree(t *testing.T) {
	tb := New(nil)
	tb.Set(1, 100, false)
	tb.Pin(100)
	if freed := tb.Unset(1); len(freed) != 0 {
		t.Fatalf("pinned block freed: %v", freed)
	}
	if !tb.Pinned(100) {
		t.Fatal("pin lost")
	}
	if reclaim := tb.Unpin(100); !reclaim {
		t.Fatal("unpin of dead block must report reclaimable")
	}
}

func TestUnpinLiveBlockNotReclaimable(t *testing.T) {
	tb := New(nil)
	tb.Set(1, 100, false)
	tb.Pin(100)
	if reclaim := tb.Unpin(100); reclaim {
		t.Fatal("block with live mapping must not be reclaimable")
	}
}

func TestSharedAccounting(t *testing.T) {
	tb := New(nil)
	tb.Set(1, 100, false)
	tb.Set(2, 100, true)
	tb.Set(3, 100, true)
	if tb.SharedEntries() != 2 {
		t.Fatalf("shared = %d, want 2", tb.SharedEntries())
	}
	if tb.NVRAMBytes() != 40 {
		t.Fatalf("nvram bytes = %d, want 40", tb.NVRAMBytes())
	}
	tb.Unset(2)
	tb.Unset(3)
	if tb.SharedEntries() != 0 {
		t.Fatalf("shared after unset = %d", tb.SharedEntries())
	}
	if tb.PeakSharedEntries() != 2 || tb.PeakNVRAMBytes() != 40 {
		t.Fatal("peak tracking wrong")
	}
}

func TestNegativeRefcountPanics(t *testing.T) {
	tb := New(nil)
	tb.Set(1, 100, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Unpin(100) // never pinned
}

func TestJournalRoundTrip(t *testing.T) {
	dev := nvram.New(4096)
	tb := New(dev)
	tb.Set(1, 100, false)
	tb.Set(2, 100, true)
	tb.Set(3, 300, false)
	tb.Unset(3)
	tb.Set(4, 400, false)

	rt, applied, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 5 {
		t.Fatalf("applied = %d, want 5", applied)
	}
	for lba, want := range map[uint64]alloc.PBA{1: 100, 2: 100, 4: 400} {
		if pba, ok := rt.Lookup(lba); !ok || pba != want {
			t.Errorf("lba %d: %d,%v want %d", lba, pba, ok, want)
		}
	}
	if _, ok := rt.Lookup(3); ok {
		t.Error("unset mapping survived recovery")
	}
	if rt.RefCount(100) != 2 {
		t.Errorf("recovered refcount = %d, want 2", rt.RefCount(100))
	}
	if rt.SharedEntries() != 1 {
		t.Errorf("recovered shared = %d, want 1", rt.SharedEntries())
	}
}

func TestRecoveryAfterTornWrite(t *testing.T) {
	dev := nvram.New(4096)
	tb := New(dev)
	tb.Set(1, 100, false)
	tb.Set(2, 200, false)
	dev.ArmCrash(10) // tear the middle of the next record
	func() {
		defer func() { recover() }() // Set may not panic, but be safe
		tb.Set(3, 300, false)
	}()
	dev.Recover()

	rt, applied, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2 (torn third record discarded)", applied)
	}
	if _, ok := rt.Lookup(3); ok {
		t.Fatal("torn record must not resurrect")
	}
	if pba, ok := rt.Lookup(2); !ok || pba != 200 {
		t.Fatal("intact prefix lost")
	}
}

func TestCompactionPreservesState(t *testing.T) {
	dev := nvram.New(4096)
	tb := New(dev)
	tb.Set(1, 100, false)
	tb.Set(2, 200, true)
	tb.Set(1, 150, false) // supersedes
	tb.Compact()
	rt, applied, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 { // snapshot has exactly the live mappings
		t.Fatalf("applied = %d, want 2", applied)
	}
	if pba, _ := rt.Lookup(1); pba != 150 {
		t.Fatal("compaction lost latest mapping")
	}
	if rt.SharedEntries() != 1 {
		t.Fatal("compaction lost shared flag")
	}
}

func TestAutoCompactionOnFullJournal(t *testing.T) {
	// room for header + 4 records; keep only 2 live mappings and
	// update them repeatedly — auto-compaction must absorb the churn
	dev := nvram.New(16 + 4*EntryBytes)
	tb := New(dev)
	for i := 0; i < 50; i++ {
		tb.Set(1, alloc.PBA(100+i), false)
		tb.Set(2, alloc.PBA(200+i), false)
	}
	rt, _, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if pba, _ := rt.Lookup(1); pba != 149 {
		t.Fatalf("lba1 = %d, want 149", pba)
	}
	if pba, _ := rt.Lookup(2); pba != 249 {
		t.Fatalf("lba2 = %d, want 249", pba)
	}
}

func TestJournalTooSmallPanics(t *testing.T) {
	dev := nvram.New(16 + 2*EntryBytes)
	tb := New(dev)
	tb.Set(1, 100, false)
	tb.Set(2, 200, false)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic when live set exceeds NVRAM")
		}
	}()
	tb.Set(3, 300, false) // 3 live entries, room for 2
}

func TestLoadBadMagic(t *testing.T) {
	dev := nvram.New(4096)
	if _, _, err := Load(dev); err == nil {
		t.Fatal("expected error on unformatted device")
	}
}

func TestStaleEpochRecordsIgnored(t *testing.T) {
	dev := nvram.New(4096)
	tb := New(dev)
	for i := uint64(0); i < 10; i++ {
		tb.Set(i, alloc.PBA(1000+i), false)
	}
	// compact with only 2 live entries left
	for i := uint64(0); i < 8; i++ {
		tb.Unset(i)
	}
	tb.Compact()
	// journal bytes beyond the snapshot still contain old-epoch records
	rt, applied, err := Load(dev)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("applied = %d, want 2 (stale-epoch tail must be ignored)", applied)
	}
	if rt.Len() != 2 {
		t.Fatalf("len = %d, want 2", rt.Len())
	}
}

// Property: recovery after a crash at ANY byte position yields a prefix
// of the applied operations: every recovered mapping matches the state
// after some operation count k ≤ total.
func TestCrashRecoveryPrefixProperty(t *testing.T) {
	f := func(ops []uint16, crashAt uint16) bool {
		dev := nvram.New(1 << 16)
		tb := New(dev)
		// model of states after each op
		type state map[uint64]alloc.PBA
		states := []state{{}}
		cur := state{}

		dev.ArmCrash(int64(crashAt))
		for _, raw := range ops {
			lba := uint64(raw % 8)
			pba := alloc.PBA(raw%64) + 1
			if raw%5 == 0 {
				tb.Unset(lba)
				delete(cur, lba)
			} else {
				tb.Set(lba, pba, raw%2 == 0)
				cur[lba] = pba
			}
			cp := state{}
			for k, v := range cur {
				cp[k] = v
			}
			states = append(states, cp)
		}
		dev.Recover()
		rt, _, err := Load(dev)
		if err != nil {
			return false
		}
		// recovered state must equal one of the prefix states
		for _, st := range states {
			if len(st) != rt.Len() {
				continue
			}
			match := true
			for lba, pba := range st {
				if got, ok := rt.Lookup(lba); !ok || got != pba {
					match = false
					break
				}
			}
			if match {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: refcounts always equal the number of LBAs mapping to the
// block.
func TestRefcountConsistencyProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		tb := New(nil)
		model := map[uint64]alloc.PBA{}
		for _, raw := range ops {
			lba := uint64(raw % 16)
			pba := alloc.PBA(raw%8) + 1
			if raw%7 == 0 {
				tb.Unset(lba)
				delete(model, lba)
			} else {
				tb.Set(lba, pba, raw%3 == 0)
				model[lba] = pba
			}
			counts := map[alloc.PBA]int{}
			for _, p := range model {
				counts[p]++
			}
			for p, want := range counts {
				if tb.RefCount(p) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// BenchmarkMapTableUpdate measures the replay's dominant Map-table
// pattern: overwriting existing mappings (every re-write of an LBA
// updates its entry and journals the change).
func BenchmarkMapTableUpdate(b *testing.B) {
	const lbas = 1 << 16
	b.Run("DRAM", func(b *testing.B) {
		tb := New(nil)
		for i := uint64(0); i < lbas; i++ {
			tb.Set(i, alloc.PBA(i), false)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.Set(uint64(i)%lbas, alloc.PBA(i), i%4 == 0)
		}
	})
	b.Run("Journaled", func(b *testing.B) {
		dev := nvram.New(1 << 30)
		tb := New(dev)
		for i := uint64(0); i < lbas; i++ {
			tb.Set(i, alloc.PBA(i), false)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tb.Set(uint64(i)%lbas, alloc.PBA(i), i%4 == 0)
		}
	})
}

func BenchmarkSetJournaled(b *testing.B) {
	dev := nvram.New(1 << 24)
	tb := New(dev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Set(uint64(i%100000), alloc.PBA(i), false)
	}
}

func TestEachVisitsAllMappings(t *testing.T) {
	tb := New(nil)
	tb.Set(1, 100, false)
	tb.Set(2, 100, true)
	tb.Set(3, 300, false)
	seen := map[uint64]alloc.PBA{}
	shared := 0
	tb.Each(func(lba uint64, pba alloc.PBA, sh bool) bool {
		seen[lba] = pba
		if sh {
			shared++
		}
		return true
	})
	if len(seen) != 3 || seen[1] != 100 || seen[3] != 300 || shared != 1 {
		t.Fatalf("seen=%v shared=%d", seen, shared)
	}
	// early stop
	n := 0
	tb.Each(func(uint64, alloc.PBA, bool) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}
