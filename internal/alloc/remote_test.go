package alloc

import "testing"

func TestRemoteEncodingRoundTrip(t *testing.T) {
	cases := []struct {
		shard int
		pba   PBA
	}{
		{0, 0}, {1, 1}, {63, 1<<32 - 1}, {7, 123456}, {29, 42},
	}
	for _, c := range cases {
		enc := MakeRemote(c.shard, c.pba)
		if !IsRemote(enc) {
			t.Fatalf("MakeRemote(%d, %d) = %d: not flagged remote", c.shard, c.pba, enc)
		}
		shard, pba := RemoteParts(enc)
		if shard != c.shard || pba != c.pba {
			t.Fatalf("RemoteParts(MakeRemote(%d, %d)) = (%d, %d)", c.shard, c.pba, shard, pba)
		}
	}
	if IsRemote(12345) {
		t.Fatal("plain PBA flagged remote")
	}
}

func TestMakeRemoteRejectsOutOfRange(t *testing.T) {
	for _, fn := range []func(){
		func() { MakeRemote(-1, 0) },
		func() { MakeRemote(1<<29, 0) },
		func() { MakeRemote(0, PBA(1)<<32) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-range encode did not panic")
				}
			}()
			fn()
		}()
	}
}
