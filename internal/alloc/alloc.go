// Package alloc implements the physical extent allocator backing the
// deduplicated block store.
//
// Deduplication engines in this repository are log-structured: every
// write request's unique chunks are placed in one freshly allocated
// *contiguous* run of physical blocks (so a later fully redundant write
// of the same data finds its duplicate copies "sequentially stored on
// disks", the condition POD's request classifier tests), and blocks
// whose reference count drops to zero are returned for reuse.
//
// The allocator is a classic first-fit free-extent allocator with
// eager coalescing: free extents are kept sorted by start address, and
// Free merges with both neighbours when adjacent. Allocation prefers
// the lowest-addressed extent that fits, which keeps the physical
// layout compact and the fragmentation metrics meaningful.
//
// AllocLargest — the per-write hot path of every log-structured engine
// — is served by a lazy max-heap of (count, start) candidates layered
// over the sorted free list. Every mutation pushes the affected
// extent's new shape onto the heap; entries are validated against the
// free list when popped, so stale shapes are discarded in O(log n)
// instead of forcing a full rescan per allocation.
package alloc

import (
	"fmt"
	"sort"
)

// PBA is a physical block address, in chunk-size units.
type PBA uint64

// Extent is a contiguous run of physical blocks [Start, Start+Count).
type Extent struct {
	Start PBA
	Count uint64
}

// End returns the first block past the extent.
func (e Extent) End() PBA { return e.Start + PBA(e.Count) }

// Allocator manages a physical space of fixed size.
type Allocator struct {
	size uint64
	free []Extent // sorted by Start, pairwise disjoint, non-adjacent
	used uint64
	big  candHeap // lazy max-heap of candidate largest extents
}

// candHeap orders candidate extents by count descending, breaking ties
// by start ascending — exactly the extent a linear first-max scan of
// the sorted free list would select, so the heap-backed AllocLargest
// makes byte-identical placement decisions.
//
// The heap is hand-rolled rather than layered over container/heap:
// that interface passes elements as `any`, which boxes every pushed
// Extent onto the heap — a per-allocation cost on the hottest path of
// every log-structured engine. The ordering is a strict total order
// over live extents (starts are unique), so the maximum element is the
// same regardless of internal array layout.
type candHeap []Extent

func (h candHeap) less(i, j int) bool {
	if h[i].Count != h[j].Count {
		return h[i].Count > h[j].Count
	}
	return h[i].Start < h[j].Start
}

func (h *candHeap) push(e Extent) {
	*h = append(*h, e)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *candHeap) pop() Extent {
	a := *h
	n := len(a) - 1
	a[0], a[n] = a[n], a[0]
	top := a[n]
	*h = a[:n]
	(*h).down(0)
	return top
}

func (h candHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		best := l
		if r := l + 1; r < n && h.less(r, l) {
			best = r
		}
		if !h.less(best, i) {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}

func (h candHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.down(i)
	}
}

// New returns an allocator over a space of size blocks.
func New(size uint64) *Allocator {
	a := &Allocator{size: size}
	if size > 0 {
		a.free = []Extent{{Start: 0, Count: size}}
		a.note(a.free[0])
	}
	return a
}

// note records an extent's current shape as a max-heap candidate.
// Called after every mutation that creates or reshapes a free extent;
// superseded shapes become stale and are discarded at pop time.
func (a *Allocator) note(e Extent) {
	if e.Count == 0 {
		return
	}
	a.big.push(e)
	// Bound staleness: when dead entries dominate, rebuild from the
	// free list so the heap stays O(live extents).
	if len(a.big) > 2*len(a.free)+64 {
		a.big = append(a.big[:0], a.free...)
		a.big.init()
	}
}

// liveAt reports whether an extent of exactly this shape currently
// exists in the free list.
func (a *Allocator) liveAt(e Extent) bool {
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Start >= e.Start })
	return i < len(a.free) && a.free[i].Start == e.Start && a.free[i].Count == e.Count
}

// Size reports the total physical space in blocks.
func (a *Allocator) Size() uint64 { return a.size }

// Used reports the number of allocated blocks.
func (a *Allocator) Used() uint64 { return a.used }

// FreeBlocks reports the number of unallocated blocks.
func (a *Allocator) FreeBlocks() uint64 { return a.size - a.used }

// NumFreeExtents reports how many disjoint free extents exist — a
// direct fragmentation measure.
func (a *Allocator) NumFreeExtents() int { return len(a.free) }

// LargestFree reports the size of the largest free extent.
func (a *Allocator) LargestFree() uint64 {
	var max uint64
	for _, e := range a.free {
		if e.Count > max {
			max = e.Count
		}
	}
	return max
}

// Alloc reserves a contiguous run of n blocks, first-fit. It returns
// the start address and true, or 0 and false when no single free extent
// can hold n blocks (even if the total free space suffices).
func (a *Allocator) Alloc(n uint64) (PBA, bool) {
	if n == 0 {
		return 0, false
	}
	for i := range a.free {
		if a.free[i].Count >= n {
			start := a.free[i].Start
			a.free[i].Start += PBA(n)
			a.free[i].Count -= n
			if a.free[i].Count == 0 {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.note(a.free[i])
			}
			a.used += n
			return start, true
		}
	}
	return 0, false
}

// AllocLargest reserves a contiguous run of n blocks from the largest
// free extent — the append-preferring policy of a log-structured write
// path, which keeps consecutive writes physically sequential even when
// reclaimed holes pepper the low addresses. Falls back to false when no
// extent can hold n blocks.
func (a *Allocator) AllocLargest(n uint64) (PBA, bool) {
	if n == 0 {
		return 0, false
	}
	// Discard stale candidates until the heap's top describes a live
	// extent; that extent is the true largest (lowest-start on ties),
	// because every live extent's current shape is in the heap.
	for len(a.big) > 0 && !a.liveAt(a.big[0]) {
		a.big.pop()
	}
	if len(a.big) == 0 || a.big[0].Count < n {
		return 0, false
	}
	e := a.big[0]
	a.big.pop() // its shape is about to change
	best := sort.Search(len(a.free), func(i int) bool { return a.free[i].Start >= e.Start })
	start := a.free[best].Start
	a.free[best].Start += PBA(n)
	a.free[best].Count -= n
	if a.free[best].Count == 0 {
		a.free = append(a.free[:best], a.free[best+1:]...)
	} else {
		a.note(a.free[best])
	}
	a.used += n
	return start, true
}

// AllocScattered reserves n blocks even when no contiguous run exists,
// returning the extents actually used (largest-address-first order is
// not guaranteed; extents are first-fit). It fails only when total free
// space is insufficient, in which case nothing is allocated.
func (a *Allocator) AllocScattered(n uint64) ([]Extent, bool) {
	if n == 0 {
		return nil, false
	}
	if a.FreeBlocks() < n {
		return nil, false
	}
	var out []Extent
	remaining := n
	for remaining > 0 {
		// take from the first free extent
		e := &a.free[0]
		take := e.Count
		if take > remaining {
			take = remaining
		}
		out = append(out, Extent{Start: e.Start, Count: take})
		e.Start += PBA(take)
		e.Count -= take
		if e.Count == 0 {
			a.free = a.free[1:]
		} else {
			a.note(*e)
		}
		remaining -= take
	}
	a.used += n
	return out, true
}

// Reserve marks the specific run [start, start+n) allocated, removing
// it from whatever free extent contains it (crash recovery rebuilds
// allocator occupancy from the recovered Map table this way). It
// returns false without changes when any block of the run is already
// allocated or out of range.
func (a *Allocator) Reserve(start PBA, n uint64) bool {
	if n == 0 || uint64(start)+n > a.size {
		return false
	}
	// find the free extent containing start
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].End() > start })
	if i == len(a.free) || a.free[i].Start > start || a.free[i].End() < start+PBA(n) {
		return false
	}
	e := a.free[i]
	left := Extent{Start: e.Start, Count: uint64(start - e.Start)}
	right := Extent{Start: start + PBA(n), Count: uint64(e.End() - (start + PBA(n)))}
	switch {
	case left.Count > 0 && right.Count > 0:
		a.free[i] = left
		a.free = append(a.free, Extent{})
		copy(a.free[i+2:], a.free[i+1:])
		a.free[i+1] = right
		a.note(left)
		a.note(right)
	case left.Count > 0:
		a.free[i] = left
		a.note(left)
	case right.Count > 0:
		a.free[i] = right
		a.note(right)
	default:
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	a.used += n
	return true
}

// Free returns the run [start, start+n) to the free pool, coalescing
// with adjacent free extents. Freeing an unallocated or out-of-range
// block panics: callers (the map table's refcounting) must never
// double-free, and catching that immediately is worth more than a
// recoverable error.
func (a *Allocator) Free(start PBA, n uint64) {
	if n == 0 {
		return
	}
	if uint64(start)+n > a.size {
		panic(fmt.Sprintf("alloc: Free out of range: [%d,%d) size %d", start, uint64(start)+n, a.size))
	}
	// locate insertion point
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].Start >= start })
	// overlap checks against neighbours
	if i > 0 && a.free[i-1].End() > start {
		panic(fmt.Sprintf("alloc: double free: [%d,%d) overlaps free extent [%d,%d)",
			start, uint64(start)+n, a.free[i-1].Start, a.free[i-1].End()))
	}
	if i < len(a.free) && (Extent{Start: start, Count: n}).End() > a.free[i].Start {
		panic(fmt.Sprintf("alloc: double free: [%d,%d) overlaps free extent [%d,%d)",
			start, uint64(start)+n, a.free[i].Start, a.free[i].End()))
	}

	mergeLeft := i > 0 && a.free[i-1].End() == start
	mergeRight := i < len(a.free) && PBA(uint64(start)+n) == a.free[i].Start
	switch {
	case mergeLeft && mergeRight:
		a.free[i-1].Count += n + a.free[i].Count
		a.free = append(a.free[:i], a.free[i+1:]...)
		a.note(a.free[i-1])
	case mergeLeft:
		a.free[i-1].Count += n
		a.note(a.free[i-1])
	case mergeRight:
		a.free[i].Start = start
		a.free[i].Count += n
		a.note(a.free[i])
	default:
		a.free = append(a.free, Extent{})
		copy(a.free[i+1:], a.free[i:])
		a.free[i] = Extent{Start: start, Count: n}
		a.note(a.free[i])
	}
	a.used -= n
}

// FreeExtents returns a copy of the free list, for tests and metrics.
func (a *Allocator) FreeExtents() []Extent {
	return append([]Extent(nil), a.free...)
}

// CheckInvariants verifies the internal free-list invariants: sorted,
// disjoint, non-adjacent (fully coalesced), within bounds, and
// consistent with the used counter. It returns a descriptive error for
// the first violation found, or nil. Exposed for property tests.
func (a *Allocator) CheckInvariants() error {
	var total uint64
	for i, e := range a.free {
		if e.Count == 0 {
			return fmt.Errorf("extent %d is empty", i)
		}
		if uint64(e.Start)+e.Count > a.size {
			return fmt.Errorf("extent %d out of bounds: [%d,%d)", i, e.Start, e.End())
		}
		if i > 0 {
			prev := a.free[i-1]
			if prev.End() > e.Start {
				return fmt.Errorf("extents %d,%d overlap", i-1, i)
			}
			if prev.End() == e.Start {
				return fmt.Errorf("extents %d,%d not coalesced", i-1, i)
			}
		}
		total += e.Count
	}
	if total+a.used != a.size {
		return fmt.Errorf("accounting: free %d + used %d != size %d", total, a.used, a.size)
	}
	// Heap invariant: every live extent's current shape must be a
	// candidate, or AllocLargest could silently pick a smaller extent.
	have := make(map[Extent]bool, len(a.big))
	for _, e := range a.big {
		have[e] = true
	}
	for i, e := range a.free {
		if !have[e] {
			return fmt.Errorf("extent %d %v missing from candidate heap", i, e)
		}
	}
	return nil
}
