package alloc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	a := New(0)
	if _, ok := a.Alloc(1); ok {
		t.Fatal("alloc from empty space should fail")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocBasic(t *testing.T) {
	a := New(100)
	p, ok := a.Alloc(10)
	if !ok || p != 0 {
		t.Fatalf("first alloc = %d,%v, want 0,true", p, ok)
	}
	p2, ok := a.Alloc(5)
	if !ok || p2 != 10 {
		t.Fatalf("second alloc = %d,%v, want 10,true", p2, ok)
	}
	if a.Used() != 15 || a.FreeBlocks() != 85 {
		t.Errorf("used/free = %d/%d", a.Used(), a.FreeBlocks())
	}
}

func TestAllocZero(t *testing.T) {
	a := New(10)
	if _, ok := a.Alloc(0); ok {
		t.Fatal("alloc(0) should fail")
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := New(10)
	if _, ok := a.Alloc(11); ok {
		t.Fatal("oversized alloc should fail")
	}
	if _, ok := a.Alloc(10); !ok {
		t.Fatal("exact-fit alloc should succeed")
	}
	if _, ok := a.Alloc(1); ok {
		t.Fatal("alloc from full space should fail")
	}
}

func TestFreeCoalescing(t *testing.T) {
	a := New(100)
	p1, _ := a.Alloc(10) // [0,10)
	p2, _ := a.Alloc(10) // [10,20)
	p3, _ := a.Alloc(10) // [20,30)
	a.Free(p1, 10)
	a.Free(p3, 10)
	if n := a.NumFreeExtents(); n != 3 { // [0,10) [20,30) [30,100)... p3 merges right with tail
		// p3=[20,30) is adjacent to tail [30,100) so it coalesces: extents are [0,10) and [20,100)
		if n != 2 {
			t.Fatalf("free extents = %d", n)
		}
	}
	a.Free(p2, 10) // bridges everything -> single extent
	if n := a.NumFreeExtents(); n != 1 {
		t.Fatalf("after bridging free, extents = %d, want 1", n)
	}
	if a.LargestFree() != 100 {
		t.Fatalf("largest free = %d, want 100", a.LargestFree())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFitReusesLowAddresses(t *testing.T) {
	a := New(100)
	p1, _ := a.Alloc(10)
	a.Alloc(10)
	a.Free(p1, 10)
	p3, ok := a.Alloc(5)
	if !ok || p3 != 0 {
		t.Fatalf("first-fit should reuse the hole at 0, got %d", p3)
	}
}

func TestContiguousFailureWithFragmentedSpace(t *testing.T) {
	a := New(30)
	p1, _ := a.Alloc(10)
	_, _ = a.Alloc(10)
	p3, _ := a.Alloc(10)
	a.Free(p1, 10)
	a.Free(p3, 10)
	// 20 blocks free but no run of 15
	if _, ok := a.Alloc(15); ok {
		t.Fatal("contiguous alloc should fail on fragmented space")
	}
	ext, ok := a.AllocScattered(15)
	if !ok {
		t.Fatal("scattered alloc should succeed")
	}
	var total uint64
	for _, e := range ext {
		total += e.Count
	}
	if total != 15 {
		t.Fatalf("scattered total = %d, want 15", total)
	}
	if len(ext) < 2 {
		t.Fatal("scattered alloc over fragmented space must span extents")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocLargestPrefersFrontier(t *testing.T) {
	a := New(100)
	p1, _ := a.Alloc(10) // [0,10)
	a.Alloc(10)          // [10,20)
	a.Free(p1, 10)       // hole [0,10), frontier [20,100)
	p, ok := a.AllocLargest(5)
	if !ok || p != 20 {
		t.Fatalf("AllocLargest = %d,%v, want frontier at 20", p, ok)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocLargestFallsBackToHole(t *testing.T) {
	a := New(30)
	p1, _ := a.Alloc(10)
	a.Alloc(20) // exhaust the frontier
	a.Free(p1, 10)
	p, ok := a.AllocLargest(10)
	if !ok || p != p1 {
		t.Fatalf("AllocLargest = %d,%v, want the hole at %d", p, ok, p1)
	}
}

func TestAllocLargestExhausted(t *testing.T) {
	a := New(10)
	a.Alloc(10)
	if _, ok := a.AllocLargest(1); ok {
		t.Fatal("alloc from full space must fail")
	}
	if _, ok := a.AllocLargest(0); ok {
		t.Fatal("alloc of zero must fail")
	}
}

func TestAllocScatteredInsufficient(t *testing.T) {
	a := New(10)
	a.Alloc(8)
	if _, ok := a.AllocScattered(3); ok {
		t.Fatal("scattered alloc beyond free space must fail")
	}
	if a.Used() != 8 {
		t.Fatal("failed scattered alloc must not change accounting")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(100)
	p, _ := a.Alloc(10)
	a.Free(p, 10)
	defer func() {
		if recover() == nil {
			t.Fatal("double free must panic")
		}
	}()
	a.Free(p, 10)
}

func TestFreeOutOfRangePanics(t *testing.T) {
	a := New(10)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range free must panic")
		}
	}()
	a.Free(5, 10)
}

func TestFreeZeroIsNoop(t *testing.T) {
	a := New(10)
	a.Free(0, 0)
	if a.FreeBlocks() != 10 {
		t.Fatal("free(_,0) must be a no-op")
	}
}

func TestFreeExtentsCopy(t *testing.T) {
	a := New(10)
	ext := a.FreeExtents()
	ext[0].Count = 1 // mutating the copy must not affect the allocator
	if a.LargestFree() != 10 {
		t.Fatal("FreeExtents must return a copy")
	}
}

// Property: any interleaving of allocs and frees preserves all
// invariants and never hands out overlapping extents.
func TestAllocatorProperty(t *testing.T) {
	type op struct {
		alloc bool
		n     uint64
	}
	f := func(seed int64, opsRaw []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		_ = rng
		a := New(1 << 12)
		type held struct {
			start PBA
			n     uint64
		}
		var live []held
		occupied := make(map[PBA]bool)
		for _, raw := range opsRaw {
			n := uint64(raw%64) + 1
			if raw%3 != 0 || len(live) == 0 { // alloc twice as often as free
				start, ok := a.Alloc(n)
				if !ok {
					continue
				}
				for b := start; b < start+PBA(n); b++ {
					if occupied[b] {
						return false // overlap with a live allocation
					}
					occupied[b] = true
				}
				live = append(live, held{start, n})
			} else {
				idx := int(raw) % len(live)
				h := live[idx]
				a.Free(h.start, h.n)
				for b := h.start; b < h.start+PBA(h.n); b++ {
					delete(occupied, b)
				}
				live = append(live[:idx], live[idx+1:]...)
			}
			if err := a.CheckInvariants(); err != nil {
				return false
			}
		}
		// free everything: space must return to a single extent
		for _, h := range live {
			a.Free(h.start, h.n)
		}
		return a.CheckInvariants() == nil && a.NumFreeExtents() == 1 && a.Used() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: AllocScattered conserves blocks exactly and returned
// extents are disjoint.
func TestAllocScatteredProperty(t *testing.T) {
	f := func(sizes []uint8, n uint16) bool {
		a := New(4096)
		// fragment: alloc many, free alternating
		var frees []Extent
		for _, s := range sizes {
			sz := uint64(s%32) + 1
			p, ok := a.Alloc(sz)
			if !ok {
				break
			}
			if len(frees)%2 == 0 {
				frees = append(frees, Extent{p, sz})
			} else {
				frees = append(frees, Extent{})
			}
		}
		for _, e := range frees {
			if e.Count > 0 {
				a.Free(e.Start, e.Count)
			}
		}
		want := uint64(n%512) + 1
		before := a.Used()
		ext, ok := a.AllocScattered(want)
		if !ok {
			return a.FreeBlocks() < want && a.CheckInvariants() == nil
		}
		var total uint64
		seen := make(map[PBA]bool)
		for _, e := range ext {
			total += e.Count
			for b := e.Start; b < e.End(); b++ {
				if seen[b] {
					return false
				}
				seen[b] = true
			}
		}
		return total == want && a.Used() == before+want && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAllocFree(b *testing.B) {
	a := New(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok := a.Alloc(8)
		if !ok {
			b.Fatal("space exhausted")
		}
		a.Free(p, 8)
	}
}

func TestReserveSplitsExtent(t *testing.T) {
	a := New(100)
	if !a.Reserve(40, 10) {
		t.Fatal("reserve of free range must succeed")
	}
	if a.Used() != 10 || a.NumFreeExtents() != 2 {
		t.Fatalf("used=%d extents=%d", a.Used(), a.NumFreeExtents())
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// left edge, right edge, whole-extent cases
	if !a.Reserve(0, 5) || !a.Reserve(95, 5) {
		t.Fatal("edge reserves must succeed")
	}
	if !a.Reserve(5, 35) {
		t.Fatal("whole-extent reserve must succeed")
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveRejectsConflicts(t *testing.T) {
	a := New(100)
	a.Reserve(10, 10)
	for _, c := range []struct{ s, n uint64 }{
		{15, 10}, // overlaps tail
		{5, 10},  // overlaps head
		{10, 10}, // exact double reserve
		{95, 10}, // out of range
		{0, 0},   // empty
	} {
		if a.Reserve(PBA(c.s), c.n) {
			t.Fatalf("reserve [%d,%d) should fail", c.s, c.s+c.n)
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveThenFreeRoundTrip(t *testing.T) {
	a := New(64)
	if !a.Reserve(20, 8) {
		t.Fatal("reserve failed")
	}
	a.Free(20, 8)
	if a.Used() != 0 || a.NumFreeExtents() != 1 {
		t.Fatal("free after reserve must restore a single extent")
	}
}

// refAllocLargest is the original linear-scan policy: lowest-start
// extent of maximal count. The heap-backed implementation must pick
// byte-identical extents or replayed experiment results would shift.
func refAllocLargest(free []Extent, n uint64) (PBA, bool) {
	best := -1
	for i := range free {
		if free[i].Count >= n && (best < 0 || free[i].Count > free[best].Count) {
			best = i
		}
	}
	if best < 0 {
		return 0, false
	}
	return free[best].Start, true
}

// Property: the candidate-heap AllocLargest always selects exactly the
// extent the linear reference scan would, across arbitrary interleaved
// alloc/free/reserve traffic.
func TestAllocLargestMatchesReference(t *testing.T) {
	f := func(ops []uint16) bool {
		a := New(1 << 12)
		type held struct {
			start PBA
			n     uint64
		}
		var live []held
		for _, raw := range ops {
			n := uint64(raw%48) + 1
			switch raw % 5 {
			case 0, 1, 2: // AllocLargest, checked against the reference
				want, wantOK := refAllocLargest(a.FreeExtents(), n)
				got, ok := a.AllocLargest(n)
				if ok != wantOK || (ok && got != want) {
					t.Logf("AllocLargest(%d) = %d,%v want %d,%v", n, got, ok, want, wantOK)
					return false
				}
				if ok {
					live = append(live, held{got, n})
				}
			case 3: // first-fit alloc
				if p, ok := a.Alloc(n); ok {
					live = append(live, held{p, n})
				}
			default: // free one live run
				if len(live) > 0 {
					idx := int(raw/5) % len(live)
					h := live[idx]
					a.Free(h.start, h.n)
					live = append(live[:idx], live[idx+1:]...)
				}
			}
			if err := a.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
