package alloc

import "fmt"

// Remote-encoded PBAs let one shard's Map table reference a canonical
// physical block owned by another shard, which is how the global
// fingerprint tier folds cross-shard duplicates without copying data.
// The encoding rides inside the 62-bit PBA space the Map table already
// journals (maptable reserves bits 62–63 for its present/shared flags),
// so remote references persist and recover through the existing
// journaled Map.Set path with no new record format:
//
//	bit  61     remote flag
//	bits 32–60  owning shard index
//	bits 0–31   canonical PBA on the owning shard
//
// A shard's allocatable data region is far below 2^32 blocks, and the
// serving layer far below 2^29 shards, so the split loses nothing.
// Remote-encoded values must never reach the local allocator, content
// store, or RAID array — engine.Base branches on IsRemote before every
// such use.
const (
	remoteBit        = PBA(1) << 61
	remoteShardShift = 32
	remoteLocalMask  = PBA(1)<<remoteShardShift - 1
)

// MakeRemote encodes a reference to canonical block pba on the given
// shard.
func MakeRemote(shard int, pba PBA) PBA {
	if pba > remoteLocalMask {
		panic(fmt.Sprintf("alloc: canonical pba %d exceeds remote-encodable range", pba))
	}
	if shard < 0 || PBA(shard) > (remoteBit>>remoteShardShift)-1 {
		panic(fmt.Sprintf("alloc: shard %d exceeds remote-encodable range", shard))
	}
	return remoteBit | PBA(shard)<<remoteShardShift | pba
}

// IsRemote reports whether pba is a remote-encoded canonical reference.
func IsRemote(pba PBA) bool { return pba&remoteBit != 0 }

// RemoteParts decodes a remote-encoded reference into the owning shard
// and the canonical PBA local to that shard.
func RemoteParts(pba PBA) (shard int, canon PBA) {
	return int((pba &^ remoteBit) >> remoteShardShift), pba & remoteLocalMask
}
