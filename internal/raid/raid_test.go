package raid

import (
	"testing"
	"testing/quick"

	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/sim"
)

func newDisks(n int) []*disk.Disk {
	ds := make([]*disk.Disk, n)
	for i := range ds {
		ds[i] = disk.New(disk.DefaultParams(1 << 18))
	}
	return ds
}

func new5(t *testing.T) *Array {
	t.Helper()
	return New(RAID5, newDisks(4), 16) // 4 disks, 64 KB stripe unit
}

func TestConstructorValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("zero unit", func() { New(RAID0, newDisks(1), 0) })
	mustPanic("raid5 too few", func() { New(RAID5, newDisks(2), 16) })
	mustPanic("unequal disks", func() {
		ds := newDisks(3)
		ds[1] = disk.New(disk.DefaultParams(1 << 10))
		New(RAID5, ds, 16)
	})
}

func TestCapacity(t *testing.T) {
	a := new5(t)
	// 4 disks × 2^18 blocks, unit 16: stripes = 2^18/16 = 16384,
	// data = 16384 × 16 × 3 = 786432
	if a.DataBlocks() != 786432 {
		t.Fatalf("data blocks = %d, want 786432", a.DataBlocks())
	}
	r0 := New(RAID0, newDisks(4), 16)
	if r0.DataBlocks() != 1048576 {
		t.Fatalf("raid0 data blocks = %d, want 1048576", r0.DataBlocks())
	}
	if a.DataDisksPerStripe() != 3 || r0.DataDisksPerStripe() != 4 {
		t.Error("data disks per stripe wrong")
	}
}

func TestParityRotation(t *testing.T) {
	a := new5(t)
	seen := map[int]bool{}
	for s := uint64(0); s < 4; s++ {
		p := a.parityDisk(s)
		if p < 0 || p >= 4 {
			t.Fatalf("parity disk %d out of range", p)
		}
		if seen[p] {
			t.Fatalf("parity disk %d repeated within one rotation cycle", p)
		}
		seen[p] = true
	}
	// data disks must avoid the parity disk
	for s := uint64(0); s < 8; s++ {
		p := a.parityDisk(s)
		for du := 0; du < 3; du++ {
			if a.diskFor(s, du) == p {
				t.Fatalf("stripe %d: data unit %d mapped to parity disk", s, du)
			}
		}
	}
}

func TestSplitCoversRequest(t *testing.T) {
	a := new5(t)
	segs := a.split(10, 40) // crosses unit and stripe boundaries
	var total uint64
	for _, s := range segs {
		total += s.n
		if s.n == 0 || s.n > 16 {
			t.Fatalf("segment size %d out of range", s.n)
		}
	}
	if total != 40 {
		t.Fatalf("segments cover %d blocks, want 40", total)
	}
}

func TestReadCompletes(t *testing.T) {
	a := new5(t)
	done, _ := a.Read(1000, 0, 8)
	if done <= 1000 {
		t.Fatal("read must take time")
	}
	if a.Stats().LogicalReads != 1 {
		t.Fatal("logical read not counted")
	}
}

func TestZeroLengthOps(t *testing.T) {
	a := new5(t)
	r0, _ := a.Read(5, 0, 0)
	w0, _ := a.Write(5, 0, 0)
	if r0 != 5 || w0 != 5 {
		t.Fatal("zero-length ops must complete immediately")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	a := new5(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Read(0, a.DataBlocks(), 1)
}

func TestSmallWriteIsRMW(t *testing.T) {
	a := new5(t)
	a.Write(0, 0, 1)
	s := a.Stats()
	if s.RMWStripes != 1 || s.FullStripes != 0 {
		t.Fatalf("small write: rmw=%d full=%d, want 1/0", s.RMWStripes, s.FullStripes)
	}
	// RMW = read old data + read old parity + write data + write parity
	if s.DiskIOs != 4 {
		t.Fatalf("disk IOs = %d, want 4", s.DiskIOs)
	}
}

func TestFullStripeWriteSkipsReads(t *testing.T) {
	a := new5(t)
	a.Write(0, 0, 48) // 3 data units × 16 = full stripe
	s := a.Stats()
	if s.FullStripes != 1 || s.RMWStripes != 0 {
		t.Fatalf("full-stripe write: rmw=%d full=%d, want 0/1", s.RMWStripes, s.FullStripes)
	}
	if s.DiskIOs != 4 { // 3 data writes + 1 parity write
		t.Fatalf("disk IOs = %d, want 4", s.DiskIOs)
	}
	var reads int64
	for _, d := range s.Disk {
		reads += d.Reads
	}
	if reads != 0 {
		t.Fatalf("full-stripe write issued %d reads", reads)
	}
}

func TestSmallWriteCostlierPerBlockThanFullStripe(t *testing.T) {
	a := new5(t)
	smallDone, _ := a.Write(0, 0, 1)
	a.Reset()
	fullDone, _ := a.Write(0, 0, 48)
	small := smallDone.Sub(0)
	full := fullDone.Sub(0)
	if small.Seconds()/1 <= full.Seconds()/48 {
		t.Fatalf("per-block small-write cost (%v) must exceed full-stripe (%v/48)", small, full)
	}
}

func TestRMWWritePhaseAfterReadPhase(t *testing.T) {
	a := new5(t)
	done, _ := a.Write(0, 0, 1)
	// completion must cover at least two serialized disk accesses
	// (read ≈ seek+rot, then write ≈ seek+rot)
	if done.Sub(0) < 8000 {
		t.Fatalf("RMW completed too fast: %v", done.Sub(0))
	}
}

func TestDegradedRead(t *testing.T) {
	a := new5(t)
	a.Write(0, 0, 48)
	pre := a.Stats().DiskIOs
	// find which disk serves data unit 0 of stripe 0 and fail it
	target := a.diskFor(0, 0)
	a.Fail(target)
	a.Read(0, 0, 8)
	s := a.Stats()
	if s.DegradedReads != 1 {
		t.Fatalf("degraded reads = %d, want 1", s.DegradedReads)
	}
	if s.DiskIOs-pre != 3 { // reconstruct from 3 survivors
		t.Fatalf("degraded read issued %d IOs, want 3", s.DiskIOs-pre)
	}
	a.Heal()
	if a.Failed() != -1 {
		t.Fatal("heal failed")
	}
}

func TestDoubleFailurePanics(t *testing.T) {
	a := new5(t)
	a.Fail(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Fail(1)
}

func TestFailOnRAID0Panics(t *testing.T) {
	a := New(RAID0, newDisks(2), 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Fail(0)
}

func TestRAID0WritesNoParity(t *testing.T) {
	a := New(RAID0, newDisks(4), 16)
	a.Write(0, 0, 64) // 4 units
	s := a.Stats()
	if s.DiskIOs != 4 {
		t.Fatalf("raid0 disk IOs = %d, want 4", s.DiskIOs)
	}
	var reads int64
	for _, d := range s.Disk {
		reads += d.Reads
	}
	if reads != 0 {
		t.Fatal("raid0 write issued reads")
	}
}

func TestBacklogAndBusyUntil(t *testing.T) {
	a := new5(t)
	done, _ := a.Write(0, 0, 1)
	if a.BusyUntil() != done {
		t.Fatalf("busyUntil %v != completion %v", a.BusyUntil(), done)
	}
	if a.Backlog(0) <= 0 {
		t.Fatal("backlog should be positive right after submit")
	}
	if a.Backlog(done) != 0 {
		t.Fatal("backlog should drain by completion")
	}
}

func TestReset(t *testing.T) {
	a := new5(t)
	a.Write(0, 0, 10)
	a.Fail(1)
	a.Reset()
	s := a.Stats()
	if s.DiskIOs != 0 || s.LogicalWrites != 0 || a.Failed() != -1 || a.BusyUntil() != 0 {
		t.Fatal("reset incomplete")
	}
}

// Property: split segments tile the request exactly, never cross unit
// boundaries, and map within disk capacity.
func TestSplitProperty(t *testing.T) {
	a := New(RAID5, newDisks(4), 16)
	f := func(startRaw, nRaw uint32) bool {
		start := uint64(startRaw) % a.DataBlocks()
		n := uint64(nRaw)%256 + 1
		if start+n > a.DataBlocks() {
			n = a.DataBlocks() - start
			if n == 0 {
				return true
			}
		}
		segs := a.split(start, n)
		var total uint64
		for _, s := range segs {
			total += s.n
			if s.inUnit+s.n > a.unit {
				return false // crosses unit boundary
			}
			if s.off+s.n > 1<<18 {
				return false // off-disk
			}
			if s.disk == a.parityDisk(s.stripe) {
				return false // data on parity disk
			}
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: completions never precede arrival (different requests may
// complete out of order across spindles, so only per-request causality
// is asserted), and the busy horizon never moves backwards.
func TestArrayCausalityProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		a := New(RAID5, newDisks(4), 16)
		var tm sim.Time
		var horizon sim.Time
		for _, raw := range ops {
			tm = tm.Add(sim.Duration(raw % 500))
			start := uint64(raw) % (a.DataBlocks() - 64)
			n := uint64(raw%63) + 1
			var done sim.Time
			if raw%3 == 0 {
				done, _ = a.Read(tm, start, n)
			} else {
				done, _ = a.Write(tm, start, n)
			}
			if done < tm {
				return false
			}
			if a.BusyUntil() < horizon {
				return false
			}
			horizon = a.BusyUntil()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkRAID5SmallWrite(b *testing.B) {
	a := New(RAID5, newDisks(4), 16)
	var tm sim.Time
	for i := 0; i < b.N; i++ {
		tm = tm.Add(100)
		a.Write(tm, uint64(i*7)%(a.DataBlocks()-8), 2)
	}
}

func BenchmarkRAID5FullStripeWrite(b *testing.B) {
	a := New(RAID5, newDisks(4), 16)
	var tm sim.Time
	stripe := a.StripeUnit() * uint64(a.DataDisksPerStripe())
	for i := 0; i < b.N; i++ {
		tm = tm.Add(100)
		start := (uint64(i) * stripe) % (a.DataBlocks() - stripe)
		start -= start % stripe
		a.Write(tm, start, stripe)
	}
}
