package raid

import (
	"strings"
	"testing"

	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/sim"
)

func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q", substr)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not mention %q", r, substr)
		}
	}()
	f()
}

// TestFailValidation is the regression test for the Fail footguns:
// out-of-range indices and a second RAID5 failure must be loud errors,
// not silent corruption.
func TestFailValidation(t *testing.T) {
	a := new5(t)
	mustPanicWith(t, "out of range", func() { a.Fail(4) })
	mustPanicWith(t, "out of range", func() { a.Fail(-1) })

	a.Fail(1)
	a.Fail(1) // idempotent: re-failing the failed disk is a no-op
	if a.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", a.Failed())
	}
	mustPanicWith(t, "double disk failure", func() { a.Fail(2) })

	r0 := New(RAID0, newDisks(2), 16)
	mustPanicWith(t, "no redundancy", func() { r0.Fail(0) })
}

// TestSectorErrorRepairedFromParity injects a latent sector range and
// checks a read consumes it: the block is reconstructed from the
// surviving disks, written back, and the range is healed for later
// reads.
func TestSectorErrorRepairedFromParity(t *testing.T) {
	a := new5(t)
	inj := fault.NewInjector(fault.Schedule{
		Sectors: []fault.SectorRange{{Disk: 0, Start: 0, Count: 16}},
	}, 4)
	a.SetInjector(inj)

	done, err := a.Read(0, 0, 8) // stripe 0, unit 0 lives on disk 0
	if err != nil {
		t.Fatalf("read over latent sectors must be repaired, got %v", err)
	}
	if done == 0 {
		t.Fatal("repair consumed no time")
	}
	st := a.Stats()
	if st.SectorRepairs == 0 || st.DegradedReads == 0 {
		t.Fatalf("repair not accounted: %+v", st)
	}
	// the write-back healed the range: a later read is clean
	before := inj.Stats().Sector
	if _, err := a.Read(done, 0, 8); err != nil {
		t.Fatalf("re-read after repair: %v", err)
	}
	if inj.Stats().Sector != before {
		t.Fatal("healed range still injecting")
	}
}

// TestTransientErrorPropagates checks the retry contract: the array does
// not absorb transient faults — the serving layer owns retries.
func TestTransientErrorPropagates(t *testing.T) {
	a := new5(t)
	a.SetInjector(fault.NewInjector(fault.Schedule{
		Transients: []fault.TransientWindow{{Disk: -1, From: 0, Until: 1 << 50, PerMille: 1000}},
	}, 4))

	_, err := a.Read(0, 0, 4)
	if !fault.IsTransient(err) {
		t.Fatalf("want transient error, got %v", err)
	}
	if a.Stats().TransientErrors == 0 {
		t.Fatal("transient error not counted")
	}
}

// TestDiskFailureDegradesThenRebuilds is the self-healing path: a
// whole-device failure mid-workload degrades the array, installs a hot
// spare, and the paced rebuild sweep eventually restores full
// redundancy — all without a foreground error.
func TestDiskFailureDegradesThenRebuilds(t *testing.T) {
	ds := make([]*disk.Disk, 4)
	for i := range ds {
		ds[i] = disk.New(disk.DefaultParams(1 << 10)) // small: rebuild can finish
	}
	a := New(RAID5, ds, 16)
	a.SetInjector(fault.NewInjector(fault.Schedule{
		Fails: []fault.DiskFail{{Disk: 2, At: 1000}},
	}, 4))

	// before the failure: clean
	done, err := a.Read(0, 0, 64)
	if err != nil {
		t.Fatalf("pre-failure read: %v", err)
	}
	// first access past the failure time touching disk 2 triggers
	// degrade-and-rebuild, still served via reconstruction
	done, err = a.Read(sim.MaxTime(done, 2000), 0, 256)
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if reb, _ := a.Rebuilding(); !reb {
		t.Fatal("failure did not start a rebuild")
	}
	if a.Failed() != 2 {
		t.Fatalf("failed = %d, want 2", a.Failed())
	}
	st := a.Stats()
	if st.FailEvents != 1 || st.DegradedReads == 0 {
		t.Fatalf("failure not accounted: %+v", st)
	}

	// drive virtual time forward until the sweep finishes (1<<10 blocks
	// per disk, one unit per step)
	tt := done
	for i := 0; i < 10000; i++ {
		if reb, _ := a.Rebuilding(); !reb {
			break
		}
		tt = tt.Add(sim.Duration(10000))
		if _, err := a.Read(tt, 0, 1); err != nil {
			t.Fatalf("read during rebuild: %v", err)
		}
	}
	if reb, _ := a.Rebuilding(); reb {
		t.Fatal("rebuild never completed")
	}
	if a.Failed() != -1 {
		t.Fatalf("array still degraded after rebuild: failed = %d", a.Failed())
	}
	st = a.Stats()
	if st.RebuildsDone != 1 || st.RebuildIOs == 0 {
		t.Fatalf("rebuild not accounted: %+v", st)
	}

	// fully healed: reads are clean and not degraded anymore
	deg := st.DegradedReads
	if _, err := a.Read(tt.Add(1), 0, 256); err != nil {
		t.Fatalf("post-rebuild read: %v", err)
	}
	if a.Stats().DegradedReads != deg {
		t.Fatal("post-rebuild read still reconstructing")
	}
}

// TestRaid0FailureIsDataLoss: without redundancy a device failure is a
// permanent data-loss error, not a panic and not a silent zero.
func TestRaid0FailureIsDataLoss(t *testing.T) {
	a := New(RAID0, newDisks(2), 16)
	a.SetInjector(fault.NewInjector(fault.Schedule{
		Fails: []fault.DiskFail{{Disk: 0, At: 0}},
	}, 2))
	_, err := a.Read(10, 0, 4)
	fe, ok := err.(*fault.Error)
	if !ok || fe.Kind != fault.KindDataLoss || fe.Class != fault.Permanent {
		t.Fatalf("want permanent data loss, got %v", err)
	}
	if a.Stats().DataLossErrors == 0 {
		t.Fatal("data loss not counted")
	}
}

// TestDoubleFailureIsDataLoss: a second device failing while degraded
// exhausts RAID5 redundancy.
func TestDoubleFailureIsDataLoss(t *testing.T) {
	a := new5(t)
	a.SetInjector(fault.NewInjector(fault.Schedule{
		Fails: []fault.DiskFail{{Disk: 0, At: 0}, {Disk: 1, At: 0}},
	}, 4))
	_, err := a.Read(10, 0, 786432/2) // wide read: touches every spindle
	fe, ok := err.(*fault.Error)
	if !ok || fe.Kind != fault.KindDataLoss {
		t.Fatalf("want data loss, got %v", err)
	}
}

// TestRebuildPaceValidation documents the SetRebuildPace contract.
func TestRebuildPaceValidation(t *testing.T) {
	a := new5(t)
	mustPanicWith(t, "rebuild pace", func() { a.SetRebuildPace(0) })
	a.SetRebuildPace(1)
}
