package raid

import "github.com/pod-dedup/pod/internal/metrics"

// Instrument publishes the array's I/O accounting into reg as live
// gauges (evaluated at snapshot time; zero hot-path cost). Safe to call
// again after reconfiguration — callbacks are replaced.
func (a *Array) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("raid_logical_reads", func() int64 { return a.logicalReads })
	reg.GaugeFunc("raid_logical_writes", func() int64 { return a.logicalWrites })
	reg.GaugeFunc("raid_disk_ios", func() int64 { return a.diskIOs })
	reg.GaugeFunc("raid_rmw_stripes", func() int64 { return a.rmwStripes })
	reg.GaugeFunc("raid_full_stripes", func() int64 { return a.fullStripes })
	reg.GaugeFunc("raid_degraded_reads", func() int64 { return a.degradedReads })
	reg.GaugeFunc("raid_sector_repairs", func() int64 { return a.sectorRepairs })
	reg.GaugeFunc("raid_transient_errors", func() int64 { return a.transientErrs })
	reg.GaugeFunc("raid_data_loss_errors", func() int64 { return a.dataLossErrs })
	reg.GaugeFunc("raid_fail_events", func() int64 { return a.failEvents })
	reg.GaugeFunc("raid_rebuild_ios", func() int64 { return a.rebuildIOs })
	reg.GaugeFunc("raid_rebuilds_done", func() int64 { return a.rebuildsDone })
	reg.GaugeFunc("raid_rebuild_active", func() int64 {
		if a.rebuilding {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("raid_rebuild_frontier_blocks", func() int64 { return int64(a.frontier) })
	reg.GaugeFunc("fault_injected_transient", func() int64 { return a.inj.Stats().Transient })
	reg.GaugeFunc("fault_injected_sector", func() int64 { return a.inj.Stats().Sector })
	reg.GaugeFunc("fault_injected_disk_fail", func() int64 { return a.inj.Stats().DiskFail })
	reg.GaugeFunc("fault_healed_ranges", func() int64 { return a.inj.Stats().HealedRanges })
	reg.GaugeFunc("fault_slow_accesses", func() int64 { return a.inj.Stats().SlowAccesses })
}
