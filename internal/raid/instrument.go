package raid

import "github.com/pod-dedup/pod/internal/metrics"

// Instrument publishes the array's I/O accounting into reg as live
// gauges (evaluated at snapshot time; zero hot-path cost). Safe to call
// again after reconfiguration — callbacks are replaced.
func (a *Array) Instrument(reg *metrics.Registry) {
	reg.GaugeFunc("raid_logical_reads", func() int64 { return a.logicalReads })
	reg.GaugeFunc("raid_logical_writes", func() int64 { return a.logicalWrites })
	reg.GaugeFunc("raid_disk_ios", func() int64 { return a.diskIOs })
	reg.GaugeFunc("raid_rmw_stripes", func() int64 { return a.rmwStripes })
	reg.GaugeFunc("raid_full_stripes", func() int64 { return a.fullStripes })
	reg.GaugeFunc("raid_degraded_reads", func() int64 { return a.degradedReads })
}
