// Package raid implements software RAID-0, RAID-5 and RAID-1 layouts
// over the disk model, reproducing the 4-disk RAID5 with 64 KB stripe
// unit used in the POD paper's evaluation (§IV-B).
//
// Addresses are in 4 KB blocks. RAID5 uses the left-symmetric layout:
// parity rotates from the last disk downwards and data units fill the
// remaining disks starting immediately after the parity disk. Partial-
// stripe writes pay the classic read-modify-write penalty (read old
// data and old parity, then write new data and new parity, the write
// phase serialized behind the read phase); full-stripe writes skip the
// read phase. This write-cost asymmetry is what makes eliminating
// small writes — POD's central idea — so valuable on parity RAID.
//
// Fault handling. Disk accesses return typed *fault.Error values; the
// array is the first layer of defense:
//
//   - a latent sector error on a redundant layout is reconstructed in
//     place (parity/mirror reads) and the rebuilt range is written back,
//     remapping the bad sectors — the access succeeds, slower;
//   - a whole-device failure flips the array into degraded mode and
//     starts an online rebuild onto a hot spare: rebuild I/O is paced in
//     virtual time and competes with foreground requests on the very
//     same FCFS spindle queues, so degraded-and-rebuilding latency is
//     directly measurable. When the rebuild frontier passes the end of
//     the device the array self-heals back to full redundancy;
//   - transient I/O errors propagate upward as Transient — retry policy
//     belongs to the serving layer, not the array;
//   - anything that exhausts redundancy (RAID0 device loss, double
//     failure, sector error while degraded) surfaces as a Permanent
//     KindDataLoss error.
package raid

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/fault"
	"github.com/pod-dedup/pod/internal/sim"
)

// Level selects the array layout.
type Level int

// Supported layouts.
const (
	RAID0 Level = iota
	RAID5
	RAID1
)

// Array is a striped disk array presenting a flat data-block space.
type Array struct {
	level  Level
	disks  []*disk.Disk
	unit   uint64 // stripe unit in blocks
	failed int    // index of failed disk, -1 if none

	dataBlocks uint64
	stripes    uint64

	inj *fault.Injector

	// online-rebuild state: after a detected device failure a hot spare
	// replaces the failed disk and reconstruction sweeps it from block 0
	// at one stripe unit per rebuildStep of virtual time.
	rebuilding  bool
	frontier    uint64 // per-disk blocks reconstructed onto the spare
	rebuildLast sim.Time
	rebuildStep sim.Duration

	// segScratch backs the segment slices built by split. Arrays are
	// driven by a single goroutine (replay is single-threaded per
	// engine; the serving layer serializes per shard), and Read/Write
	// fully consume their segments before returning, so one buffer per
	// array is safe.
	segScratch []segment

	// accounting
	logicalReads, logicalWrites int64
	diskIOs                     int64
	rmwStripes                  int64
	fullStripes                 int64
	degradedReads               int64
	sectorRepairs               int64
	transientErrs               int64
	dataLossErrs                int64
	failEvents                  int64
	rebuildIOs                  int64
	rebuildsDone                int64
}

// New assembles an array. All disks must have equal capacity; unit is
// the stripe unit in blocks. RAID5 requires at least 3 disks, RAID0 at
// least 1.
func New(level Level, disks []*disk.Disk, unit uint64) *Array {
	if unit == 0 {
		panic("raid: zero stripe unit")
	}
	min := 1
	switch level {
	case RAID5:
		min = 3
	case RAID1:
		min = 2
	}
	if len(disks) < min {
		panic(fmt.Sprintf("raid: level %d needs at least %d disks", level, min))
	}
	blocks := disks[0].Params().Blocks
	for _, d := range disks {
		if d.Params().Blocks != blocks {
			panic("raid: disks must have equal capacity")
		}
	}
	if level == RAID1 && len(disks)%2 != 0 {
		panic("raid: RAID1 needs an even number of disks")
	}
	a := &Array{level: level, disks: disks, unit: unit, failed: -1}
	a.stripes = blocks / unit
	switch level {
	case RAID0:
		a.dataBlocks = a.stripes * unit * uint64(len(disks))
	case RAID5:
		a.dataBlocks = a.stripes * unit * uint64(len(disks)-1)
	case RAID1:
		// mirrored pairs: half the spindles hold data, half mirrors
		a.dataBlocks = a.stripes * unit * uint64(len(disks)/2)
	}
	// Default rebuild pace: one stripe unit per sequential
	// read-plus-write of that unit (the transfer-bound rate of a
	// dedicated spare, ~100 MB/s on the default drive model).
	p := disks[0].Params()
	unitUS := float64(unit) * float64(p.BlockBytes) / (p.TransferMBps * 1e6) * 1e6
	a.rebuildStep = sim.Duration(2 * unitUS)
	if a.rebuildStep < 1 {
		a.rebuildStep = 1
	}
	return a
}

// DataBlocks reports the usable capacity in blocks.
func (a *Array) DataBlocks() uint64 { return a.dataBlocks }

// StripeUnit reports the stripe unit in blocks.
func (a *Array) StripeUnit() uint64 { return a.unit }

// NumDisks reports the number of spindles.
func (a *Array) NumDisks() int { return len(a.disks) }

// PerDiskBlocks reports each spindle's striped capacity in blocks (the
// address space a fault schedule targets on one device).
func (a *Array) PerDiskBlocks() uint64 { return a.stripes * a.unit }

// SetInjector attaches a fault injector to every spindle (nil
// detaches). The array keeps a reference so it can heal latent sectors
// it repairs and retire the failure of a replaced device.
func (a *Array) SetInjector(in *fault.Injector) {
	a.inj = in
	for i, d := range a.disks {
		d.SetInjector(in, i)
	}
}

// SetRebuildPace overrides the virtual time the rebuild spends per
// stripe unit (lower = faster rebuild, more foreground interference).
func (a *Array) SetRebuildPace(perUnit sim.Duration) {
	if perUnit < 1 {
		panic("raid: non-positive rebuild pace")
	}
	a.rebuildStep = perUnit
}

// DataDisksPerStripe reports how many data units each stripe holds.
func (a *Array) DataDisksPerStripe() int {
	switch a.level {
	case RAID5:
		return len(a.disks) - 1
	case RAID1:
		return len(a.disks) / 2
	}
	return len(a.disks)
}

// mirrorOf maps a RAID1 disk to its partner (primary ↔ mirror).
func (a *Array) mirrorOf(d int) int {
	half := len(a.disks) / 2
	if d >= half {
		return d - half
	}
	return d + half
}

// Fail marks disk i failed without starting a rebuild — the static
// degraded mode used by tests and ablations. Failing an out-of-range
// index panics immediately (silently recording it would corrupt every
// later parity decision); failing the already-failed disk is a no-op;
// failing a second disk on a redundant layout panics — that is data
// loss, and the simulation cannot continue meaningfully.
func (a *Array) Fail(i int) {
	if i < 0 || i >= len(a.disks) {
		panic(fmt.Sprintf("raid: Fail(%d) out of range: array has %d disks", i, len(a.disks)))
	}
	if a.level == RAID0 {
		panic("raid: RAID0 has no redundancy to degrade into")
	}
	if a.failed == i {
		return
	}
	if a.failed >= 0 {
		panic(fmt.Sprintf("raid: double disk failure (disk %d already failed, cannot fail %d)", a.failed, i))
	}
	a.failed = i
	a.failEvents++
}

// Heal clears the failure (a notional instantaneous rebuild) and any
// in-progress online rebuild.
func (a *Array) Heal() {
	a.failed = -1
	a.rebuilding = false
	a.frontier = 0
}

// Failed reports the failed disk index, or -1.
func (a *Array) Failed() int { return a.failed }

// Rebuilding reports whether an online rebuild is in progress, and its
// per-disk block frontier.
func (a *Array) Rebuilding() (bool, uint64) { return a.rebuilding, a.frontier }

// StartRebuild installs a hot spare for the failed disk at virtual time
// t and begins the online rebuild: the spare starts empty and a paced
// background sweep reconstructs it stripe unit by stripe unit, sharing
// the spindle queues with foreground I/O. Panics if no disk is failed
// or the layout has no redundancy.
func (a *Array) StartRebuild(t sim.Time) {
	if a.failed < 0 {
		panic("raid: StartRebuild with no failed disk")
	}
	if a.level == RAID0 {
		panic("raid: RAID0 cannot rebuild")
	}
	a.disks[a.failed].Reset() // fresh spare: empty queue, unknown head
	a.inj.ReplaceDisk(a.failed)
	a.rebuilding = true
	a.frontier = 0
	a.rebuildLast = t
}

// advanceRebuild submits the rebuild I/O scheduled in (rebuildLast, t]:
// each step reads one stripe unit from the redundancy set and writes it
// to the spare. Rebuild traffic shares the FCFS queues with foreground
// requests, so it inflates their latency — and they inflate its. Errors
// during rebuild reads are ignored (the sweep retries the region
// implicitly on the next pass of the foreground workload; modeling
// rebuild-killing double faults is the job of reads, which still check
// redundancy).
func (a *Array) advanceRebuild(t sim.Time) {
	if !a.rebuilding {
		return
	}
	limit := a.stripes * a.unit
	for a.rebuildLast.Add(a.rebuildStep) <= t {
		s := a.rebuildLast.Add(a.rebuildStep)
		a.rebuildLast = s
		n := a.unit
		if a.frontier+n > limit {
			n = limit - a.frontier
		}
		if a.level == RAID1 {
			a.disks[a.mirrorOf(a.failed)].Access(s, disk.Read, a.frontier, n)
			a.rebuildIOs++
		} else {
			for i, d := range a.disks {
				if i == a.failed {
					continue
				}
				d.Access(s, disk.Read, a.frontier, n)
				a.rebuildIOs++
			}
		}
		a.disks[a.failed].Access(s, disk.Write, a.frontier, n)
		a.rebuildIOs++
		a.frontier += n
		if a.frontier >= limit {
			a.rebuilding = false
			a.failed = -1
			a.frontier = 0
			a.rebuildsDone++
			return
		}
	}
}

// onDiskFailure reacts to a KindDiskFailed error from disk i at time t:
// with redundancy available the array degrades and self-heals (hot
// spare + online rebuild); without it the failure is data loss.
func (a *Array) onDiskFailure(i int, t sim.Time) error {
	if a.level == RAID0 {
		a.dataLossErrs++
		return fault.New(fault.KindDataLoss, fault.Permanent, i, 0, t)
	}
	if a.failed >= 0 && a.failed != i {
		a.dataLossErrs++
		return fault.New(fault.KindDataLoss, fault.Permanent, i, 0, t)
	}
	if a.failed < 0 {
		a.failed = i
		a.failEvents++
		a.StartRebuild(t)
	}
	return nil
}

// segment is one maximal run of a logical request that lives in a
// single stripe unit on a single disk.
type segment struct {
	stripe uint64 // stripe index
	du     int    // data-unit index within stripe
	disk   int    // physical disk
	off    uint64 // physical block offset on disk
	inUnit uint64 // offset within the stripe unit
	n      uint64 // blocks
}

// parityDisk returns the parity spindle for a stripe (left-symmetric).
func (a *Array) parityDisk(stripe uint64) int {
	nd := uint64(len(a.disks))
	return int((nd - 1 - stripe%nd) % nd)
}

// diskFor maps (stripe, data-unit) to a physical disk.
func (a *Array) diskFor(stripe uint64, du int) int {
	switch a.level {
	case RAID0, RAID1: // RAID1 primaries are the first half of the disks
		return du
	}
	p := a.parityDisk(stripe)
	return (p + 1 + du) % len(a.disks)
}

// split decomposes the logical run [start, start+n) into segments. The
// returned slice aliases segScratch and is valid until the next split.
func (a *Array) split(start, n uint64) []segment {
	dps := uint64(a.DataDisksPerStripe())
	segs := a.segScratch[:0]
	for n > 0 {
		u := start / a.unit      // global data-unit index
		inUnit := start % a.unit // offset within unit
		ln := a.unit - inUnit
		if ln > n {
			ln = n
		}
		stripe := u / dps
		du := int(u % dps)
		d := a.diskFor(stripe, du)
		segs = append(segs, segment{
			stripe: stripe,
			du:     du,
			disk:   d,
			off:    stripe*a.unit + inUnit,
			inUnit: inUnit,
			n:      ln,
		})
		start += ln
		n -= ln
	}
	a.segScratch = segs
	return segs
}

func (a *Array) checkRange(start, n uint64) {
	if start+n > a.dataBlocks {
		panic(fmt.Sprintf("raid: access out of range: [%d,%d) capacity %d", start, start+n, a.dataBlocks))
	}
}

// spareHolds reports whether the failed disk's replacement already holds
// [off, off+n): either no rebuild is needed, or the frontier has passed
// the whole range.
func (a *Array) spareHolds(off, n uint64) bool {
	return a.rebuilding && off+n <= a.frontier
}

// reconstructRead regenerates [off, off+n) of disk avoid from the
// array's redundancy: RAID5 reads the range from every other disk,
// RAID1 from the mirror partner. A permanent error on a source disk is
// data loss (redundancy exhausted); a transient one propagates for the
// serving layer to retry.
func (a *Array) reconstructRead(t sim.Time, off, n uint64, avoid int) (sim.Time, error) {
	a.degradedReads++
	done := t
	readSrc := func(i int) error {
		a.diskIOs++
		c, err := a.disks[i].Access(t, disk.Read, off, n)
		done = sim.MaxTime(done, c)
		if err == nil {
			return nil
		}
		if fault.IsTransient(err) {
			a.transientErrs++
			return err
		}
		a.dataLossErrs++
		return fault.New(fault.KindDataLoss, fault.Permanent, i, off, t)
	}
	if a.level == RAID1 {
		return done, readSrc(a.mirrorOf(avoid))
	}
	for i := range a.disks {
		if i == avoid {
			continue
		}
		if err := readSrc(i); err != nil {
			return done, err
		}
	}
	return done, nil
}

// readSegment serves one segment of a logical read, absorbing whatever
// faults redundancy can absorb.
func (a *Array) readSegment(t sim.Time, s segment) (sim.Time, error) {
	if a.level == RAID1 {
		return a.readSegmentMirror(t, s)
	}
	if s.disk == a.failed && !a.spareHolds(s.off, s.n) {
		if a.level == RAID0 {
			a.dataLossErrs++
			return t, fault.New(fault.KindDataLoss, fault.Permanent, s.disk, s.off, t)
		}
		return a.reconstructRead(t, s.off, s.n, s.disk)
	}
	a.diskIOs++
	c, err := a.disks[s.disk].Access(t, disk.Read, s.off, s.n)
	if err == nil {
		return c, nil
	}
	fe, ok := err.(*fault.Error)
	if !ok {
		return c, err
	}
	switch fe.Kind {
	case fault.KindDiskFailed:
		if lerr := a.onDiskFailure(s.disk, t); lerr != nil {
			return c, lerr
		}
		return a.reconstructRead(t, s.off, s.n, s.disk)
	case fault.KindSectorError:
		if a.level == RAID0 || (a.failed >= 0 && a.failed != s.disk) {
			a.dataLossErrs++
			return c, fault.New(fault.KindDataLoss, fault.Permanent, s.disk, fe.Block, t)
		}
		done, rerr := a.reconstructRead(t, s.off, s.n, s.disk)
		done = sim.MaxTime(done, c)
		if rerr != nil {
			return done, rerr
		}
		// write the reconstructed range back: the drive remaps the bad
		// sectors (the injector heals on write), self-repairing the LSE
		a.diskIOs++
		wc, _ := a.disks[s.disk].AccessAfter(t, done, disk.Write, s.off, s.n)
		a.sectorRepairs++
		return sim.MaxTime(done, wc), nil
	default:
		a.transientErrs++
		return c, err
	}
}

// readSegmentMirror is the RAID1 read path: serve from the less-loaded
// healthy copy, fall back to the partner on sector errors (with
// write-back repair) and on device loss.
func (a *Array) readSegmentMirror(t sim.Time, s segment) (sim.Time, error) {
	d := s.disk
	m := a.mirrorOf(d)
	if d == a.failed && !a.spareHolds(s.off, s.n) {
		d = m
	} else if m != a.failed && a.disks[m].BusyUntil() < a.disks[d].BusyUntil() {
		d = m // serve from the less-loaded copy
	}
	a.diskIOs++
	c, err := a.disks[d].Access(t, disk.Read, s.off, s.n)
	if err == nil {
		return c, nil
	}
	fe, ok := err.(*fault.Error)
	if !ok {
		return c, err
	}
	switch fe.Kind {
	case fault.KindDiskFailed:
		if lerr := a.onDiskFailure(d, t); lerr != nil {
			return c, lerr
		}
		return a.reconstructRead(t, s.off, s.n, d)
	case fault.KindSectorError:
		if a.failed >= 0 && a.failed != d {
			a.dataLossErrs++
			return c, fault.New(fault.KindDataLoss, fault.Permanent, d, fe.Block, t)
		}
		done, rerr := a.reconstructRead(t, s.off, s.n, d)
		done = sim.MaxTime(done, c)
		if rerr != nil {
			return done, rerr
		}
		a.diskIOs++
		wc, _ := a.disks[d].AccessAfter(t, done, disk.Write, s.off, s.n)
		a.sectorRepairs++
		return sim.MaxTime(done, wc), nil
	default:
		a.transientErrs++
		return c, err
	}
}

// Read submits a logical read arriving at t and returns the completion
// time (the max over the parallel per-disk I/Os). In degraded mode,
// segments on the failed disk are reconstructed from the surviving
// redundancy; latent sector errors are reconstructed and repaired in
// place. Transient faults and redundancy-exhausted data loss propagate
// as typed errors with the virtual time already spent.
func (a *Array) Read(t sim.Time, start, n uint64) (sim.Time, error) {
	if n == 0 {
		return t, nil
	}
	a.checkRange(start, n)
	a.advanceRebuild(t)
	a.logicalReads++
	done := t
	for _, s := range a.split(start, n) {
		c, err := a.readSegment(t, s)
		done = sim.MaxTime(done, c)
		if err != nil {
			return done, err
		}
	}
	return done, nil
}

// Write submits a logical write arriving at t and returns the
// completion time. RAID0 writes data units directly. RAID5 groups
// segments by stripe: a fully covered stripe is written in place
// (data + parity, no reads); a partially covered stripe performs
// read-modify-write.
func (a *Array) Write(t sim.Time, start, n uint64) (sim.Time, error) {
	if n == 0 {
		return t, nil
	}
	a.checkRange(start, n)
	a.advanceRebuild(t)
	a.logicalWrites++
	segs := a.split(start, n)

	if a.level == RAID0 {
		done := t
		for _, s := range segs {
			a.diskIOs++
			c, err := a.disks[s.disk].Access(t, disk.Write, s.off, s.n)
			done = sim.MaxTime(done, c)
			if err != nil {
				if fe, ok := err.(*fault.Error); ok && fe.Kind == fault.KindDiskFailed {
					a.dataLossErrs++
					return done, fault.New(fault.KindDataLoss, fault.Permanent, s.disk, s.off, t)
				}
				a.transientErrs++
				return done, err
			}
		}
		return done, nil
	}

	if a.level == RAID1 {
		done := t
		for _, s := range segs {
			for _, d := range [2]int{s.disk, a.mirrorOf(s.disk)} {
				c, err := a.writeTo(t, t, d, s.off, s.n)
				done = sim.MaxTime(done, c)
				if err != nil {
					return done, err
				}
			}
		}
		return done, nil
	}

	// group segments by stripe, preserving order
	done := t
	for i := 0; i < len(segs); {
		j := i
		for j < len(segs) && segs[j].stripe == segs[i].stripe {
			j++
		}
		c, err := a.writeStripe(t, segs[i:j])
		done = sim.MaxTime(done, c)
		if err != nil {
			return done, err
		}
		i = j
	}
	return done, nil
}

// writeTo issues one disk write with degraded-mode and fault handling:
// a write to the failed disk completes immediately when no spare is
// installed (parity/mirror carries it); a device failure discovered by
// the write itself degrades the array and the write is then absorbed
// the same way; transient errors propagate.
func (a *Array) writeTo(t, ready sim.Time, d int, off, n uint64) (sim.Time, error) {
	if d == a.failed && !a.rebuilding {
		return ready, nil // lost write: redundancy reconstructs it
	}
	a.diskIOs++
	c, err := a.disks[d].AccessAfter(t, ready, disk.Write, off, n)
	if err == nil {
		return c, nil
	}
	if fe, ok := err.(*fault.Error); ok && fe.Kind == fault.KindDiskFailed {
		if lerr := a.onDiskFailure(d, t); lerr != nil {
			return c, lerr
		}
		// degraded now; the write is covered by the surviving redundancy
		return sim.MaxTime(ready, c), nil
	}
	a.transientErrs++
	return c, err
}

// readForRMW issues one old-data/old-parity read of a read-modify-write,
// reconstructing around failed devices and latent sectors. The
// follow-up write phase covers exactly the ranges read, so a sector
// error needs no explicit repair write here — the write phase remaps it.
func (a *Array) readForRMW(t sim.Time, d int, off, n uint64) (sim.Time, error) {
	if d == a.failed && !a.spareHolds(off, n) {
		return a.reconstructRead(t, off, n, d)
	}
	a.diskIOs++
	c, err := a.disks[d].Access(t, disk.Read, off, n)
	if err == nil {
		return c, nil
	}
	fe, ok := err.(*fault.Error)
	if !ok {
		return c, err
	}
	switch fe.Kind {
	case fault.KindDiskFailed:
		if lerr := a.onDiskFailure(d, t); lerr != nil {
			return c, lerr
		}
		done, rerr := a.reconstructRead(t, off, n, d)
		return sim.MaxTime(done, c), rerr
	case fault.KindSectorError:
		if a.failed >= 0 && a.failed != d {
			a.dataLossErrs++
			return c, fault.New(fault.KindDataLoss, fault.Permanent, d, fe.Block, t)
		}
		done, rerr := a.reconstructRead(t, off, n, d)
		return sim.MaxTime(done, c), rerr
	default:
		a.transientErrs++
		return c, err
	}
}

// writeStripe performs the RAID5 write of one stripe's segments.
func (a *Array) writeStripe(t sim.Time, segs []segment) (sim.Time, error) {
	stripe := segs[0].stripe
	pdisk := a.parityDisk(stripe)
	dps := uint64(a.DataDisksPerStripe())

	var covered uint64
	lo, hi := a.unit, uint64(0) // within-unit union range for parity
	for _, s := range segs {
		covered += s.n
		if s.inUnit < lo {
			lo = s.inUnit
		}
		if s.inUnit+s.n > hi {
			hi = s.inUnit + s.n
		}
	}
	full := covered == dps*a.unit
	parityOff := stripe*a.unit + lo
	parityLen := hi - lo
	if full {
		parityOff = stripe * a.unit
		parityLen = a.unit
	}

	if full {
		a.fullStripes++
		done := t
		for _, s := range segs {
			c, err := a.writeTo(t, t, s.disk, s.off, s.n)
			done = sim.MaxTime(done, c)
			if err != nil {
				return done, err
			}
		}
		c, err := a.writeTo(t, t, pdisk, parityOff, parityLen)
		return sim.MaxTime(done, c), err
	}

	// read-modify-write: read old data ranges and old parity, then
	// write new data and parity after all reads complete.
	a.rmwStripes++
	readDone := t
	for _, s := range segs {
		c, err := a.readForRMW(t, s.disk, s.off, s.n)
		readDone = sim.MaxTime(readDone, c)
		if err != nil {
			return readDone, err
		}
	}
	c, err := a.readForRMW(t, pdisk, parityOff, parityLen)
	readDone = sim.MaxTime(readDone, c)
	if err != nil {
		return readDone, err
	}

	done := readDone
	for _, s := range segs {
		c, err := a.writeTo(t, readDone, s.disk, s.off, s.n)
		done = sim.MaxTime(done, c)
		if err != nil {
			return done, err
		}
	}
	c, err = a.writeTo(t, readDone, pdisk, parityOff, parityLen)
	return sim.MaxTime(done, c), err
}

// Stats is a snapshot of array-level accounting.
type Stats struct {
	LogicalReads, LogicalWrites int64
	DiskIOs                     int64
	RMWStripes, FullStripes     int64
	DegradedReads               int64
	SectorRepairs               int64
	TransientErrors             int64
	DataLossErrors              int64
	FailEvents                  int64
	RebuildIOs                  int64
	RebuildsDone                int64
	Disk                        []disk.Stats
}

// Stats returns a snapshot of the array's counters.
func (a *Array) Stats() Stats {
	s := Stats{
		LogicalReads: a.logicalReads, LogicalWrites: a.logicalWrites,
		DiskIOs: a.diskIOs, RMWStripes: a.rmwStripes, FullStripes: a.fullStripes,
		DegradedReads: a.degradedReads,
		SectorRepairs: a.sectorRepairs, TransientErrors: a.transientErrs,
		DataLossErrors: a.dataLossErrs, FailEvents: a.failEvents,
		RebuildIOs: a.rebuildIOs, RebuildsDone: a.rebuildsDone,
	}
	for _, d := range a.disks {
		s.Disk = append(s.Disk, d.Stats())
	}
	return s
}

// BusyUntil reports the latest busy horizon across spindles.
func (a *Array) BusyUntil() sim.Time {
	var m sim.Time
	for _, d := range a.disks {
		m = sim.MaxTime(m, d.BusyUntil())
	}
	return m
}

// Backlog reports the total queued work across spindles at time t.
func (a *Array) Backlog(t sim.Time) sim.Duration {
	var sum sim.Duration
	for _, d := range a.disks {
		if d.BusyUntil() > t {
			sum += d.BusyUntil().Sub(t)
		}
	}
	return sum
}

// Reset idles every spindle and clears accounting and rebuild state.
func (a *Array) Reset() {
	for _, d := range a.disks {
		d.Reset()
	}
	a.failed = -1
	a.rebuilding = false
	a.frontier = 0
	a.rebuildLast = 0
	a.logicalReads, a.logicalWrites, a.diskIOs = 0, 0, 0
	a.rmwStripes, a.fullStripes, a.degradedReads = 0, 0, 0
	a.sectorRepairs, a.transientErrs, a.dataLossErrs = 0, 0, 0
	a.failEvents, a.rebuildIOs, a.rebuildsDone = 0, 0, 0
}
