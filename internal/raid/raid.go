// Package raid implements software RAID-0 and RAID-5 layouts over the
// disk model, reproducing the 4-disk RAID5 with 64 KB stripe unit used
// in the POD paper's evaluation (§IV-B).
//
// Addresses are in 4 KB blocks. RAID5 uses the left-symmetric layout:
// parity rotates from the last disk downwards and data units fill the
// remaining disks starting immediately after the parity disk. Partial-
// stripe writes pay the classic read-modify-write penalty (read old
// data and old parity, then write new data and new parity, the write
// phase serialized behind the read phase); full-stripe writes skip the
// read phase. This write-cost asymmetry is what makes eliminating
// small writes — POD's central idea — so valuable on parity RAID.
package raid

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/sim"
)

// Level selects the array layout.
type Level int

// Supported layouts.
const (
	RAID0 Level = iota
	RAID5
	RAID1
)

// Array is a striped disk array presenting a flat data-block space.
type Array struct {
	level  Level
	disks  []*disk.Disk
	unit   uint64 // stripe unit in blocks
	failed int    // index of failed disk, -1 if none

	dataBlocks uint64
	stripes    uint64

	// accounting
	logicalReads, logicalWrites int64
	diskIOs                     int64
	rmwStripes                  int64
	fullStripes                 int64
	degradedReads               int64
}

// New assembles an array. All disks must have equal capacity; unit is
// the stripe unit in blocks. RAID5 requires at least 3 disks, RAID0 at
// least 1.
func New(level Level, disks []*disk.Disk, unit uint64) *Array {
	if unit == 0 {
		panic("raid: zero stripe unit")
	}
	min := 1
	switch level {
	case RAID5:
		min = 3
	case RAID1:
		min = 2
	}
	if len(disks) < min {
		panic(fmt.Sprintf("raid: level %d needs at least %d disks", level, min))
	}
	blocks := disks[0].Params().Blocks
	for _, d := range disks {
		if d.Params().Blocks != blocks {
			panic("raid: disks must have equal capacity")
		}
	}
	if level == RAID1 && len(disks)%2 != 0 {
		panic("raid: RAID1 needs an even number of disks")
	}
	a := &Array{level: level, disks: disks, unit: unit, failed: -1}
	a.stripes = blocks / unit
	switch level {
	case RAID0:
		a.dataBlocks = a.stripes * unit * uint64(len(disks))
	case RAID5:
		a.dataBlocks = a.stripes * unit * uint64(len(disks)-1)
	case RAID1:
		// mirrored pairs: half the spindles hold data, half mirrors
		a.dataBlocks = a.stripes * unit * uint64(len(disks)/2)
	}
	return a
}

// DataBlocks reports the usable capacity in blocks.
func (a *Array) DataBlocks() uint64 { return a.dataBlocks }

// StripeUnit reports the stripe unit in blocks.
func (a *Array) StripeUnit() uint64 { return a.unit }

// NumDisks reports the number of spindles.
func (a *Array) NumDisks() int { return len(a.disks) }

// DataDisksPerStripe reports how many data units each stripe holds.
func (a *Array) DataDisksPerStripe() int {
	switch a.level {
	case RAID5:
		return len(a.disks) - 1
	case RAID1:
		return len(a.disks) / 2
	}
	return len(a.disks)
}

// mirrorOf maps a RAID1 primary disk to its mirror.
func (a *Array) mirrorOf(d int) int { return d + len(a.disks)/2 }

// Fail marks disk i failed; RAID5 reconstructs from survivors, RAID1
// falls back to the surviving mirror. Failing a second disk panics
// (data loss — the simulation cannot continue meaningfully).
func (a *Array) Fail(i int) {
	if a.level == RAID0 {
		panic("raid: RAID0 has no redundancy to degrade into")
	}
	if a.failed >= 0 && a.failed != i {
		panic("raid: double disk failure")
	}
	a.failed = i
}

// Heal clears the failure (after a notional rebuild).
func (a *Array) Heal() { a.failed = -1 }

// Failed reports the failed disk index, or -1.
func (a *Array) Failed() int { return a.failed }

// segment is one maximal run of a logical request that lives in a
// single stripe unit on a single disk.
type segment struct {
	stripe uint64 // stripe index
	du     int    // data-unit index within stripe
	disk   int    // physical disk
	off    uint64 // physical block offset on disk
	inUnit uint64 // offset within the stripe unit
	n      uint64 // blocks
}

// parityDisk returns the parity spindle for a stripe (left-symmetric).
func (a *Array) parityDisk(stripe uint64) int {
	nd := uint64(len(a.disks))
	return int((nd - 1 - stripe%nd) % nd)
}

// diskFor maps (stripe, data-unit) to a physical disk.
func (a *Array) diskFor(stripe uint64, du int) int {
	switch a.level {
	case RAID0, RAID1: // RAID1 primaries are the first half of the disks
		return du
	}
	p := a.parityDisk(stripe)
	return (p + 1 + du) % len(a.disks)
}

// split decomposes the logical run [start, start+n) into segments.
func (a *Array) split(start, n uint64) []segment {
	dps := uint64(a.DataDisksPerStripe())
	segs := make([]segment, 0, n/a.unit+2)
	for n > 0 {
		u := start / a.unit      // global data-unit index
		inUnit := start % a.unit // offset within unit
		ln := a.unit - inUnit
		if ln > n {
			ln = n
		}
		stripe := u / dps
		du := int(u % dps)
		d := a.diskFor(stripe, du)
		segs = append(segs, segment{
			stripe: stripe,
			du:     du,
			disk:   d,
			off:    stripe*a.unit + inUnit,
			inUnit: inUnit,
			n:      ln,
		})
		start += ln
		n -= ln
	}
	return segs
}

func (a *Array) checkRange(start, n uint64) {
	if start+n > a.dataBlocks {
		panic(fmt.Sprintf("raid: access out of range: [%d,%d) capacity %d", start, start+n, a.dataBlocks))
	}
}

// Read submits a logical read arriving at t and returns the completion
// time (the max over the parallel per-disk I/Os). In degraded mode,
// segments on the failed disk are reconstructed by reading the
// corresponding ranges from every surviving disk.
func (a *Array) Read(t sim.Time, start, n uint64) sim.Time {
	if n == 0 {
		return t
	}
	a.checkRange(start, n)
	a.logicalReads++
	done := t
	for _, s := range a.split(start, n) {
		if a.level == RAID1 {
			d := s.disk
			m := a.mirrorOf(d)
			if d == a.failed {
				d = m
			} else if m != a.failed && a.disks[m].BusyUntil() < a.disks[d].BusyUntil() {
				d = m // serve from the less-loaded copy
			}
			a.diskIOs++
			c := a.disks[d].Access(t, disk.Read, s.off, s.n)
			done = sim.MaxTime(done, c)
			continue
		}
		if a.level == RAID5 && s.disk == a.failed {
			a.degradedReads++
			for i, d := range a.disks {
				if i == a.failed {
					continue
				}
				a.diskIOs++
				c := d.Access(t, disk.Read, s.off, s.n)
				done = sim.MaxTime(done, c)
			}
			continue
		}
		a.diskIOs++
		c := a.disks[s.disk].Access(t, disk.Read, s.off, s.n)
		done = sim.MaxTime(done, c)
	}
	return done
}

// Write submits a logical write arriving at t and returns the
// completion time. RAID0 writes data units directly. RAID5 groups
// segments by stripe: a fully covered stripe is written in place
// (data + parity, no reads); a partially covered stripe performs
// read-modify-write.
func (a *Array) Write(t sim.Time, start, n uint64) sim.Time {
	if n == 0 {
		return t
	}
	a.checkRange(start, n)
	a.logicalWrites++
	segs := a.split(start, n)

	if a.level == RAID0 {
		done := t
		for _, s := range segs {
			a.diskIOs++
			c := a.disks[s.disk].Access(t, disk.Write, s.off, s.n)
			done = sim.MaxTime(done, c)
		}
		return done
	}

	if a.level == RAID1 {
		done := t
		for _, s := range segs {
			for _, d := range [2]int{s.disk, a.mirrorOf(s.disk)} {
				if d == a.failed {
					continue
				}
				a.diskIOs++
				c := a.disks[d].Access(t, disk.Write, s.off, s.n)
				done = sim.MaxTime(done, c)
			}
		}
		return done
	}

	// group segments by stripe, preserving order
	done := t
	for i := 0; i < len(segs); {
		j := i
		for j < len(segs) && segs[j].stripe == segs[i].stripe {
			j++
		}
		c := a.writeStripe(t, segs[i:j])
		done = sim.MaxTime(done, c)
		i = j
	}
	return done
}

// writeStripe performs the RAID5 write of one stripe's segments.
func (a *Array) writeStripe(t sim.Time, segs []segment) sim.Time {
	stripe := segs[0].stripe
	pdisk := a.parityDisk(stripe)
	dps := uint64(a.DataDisksPerStripe())

	var covered uint64
	lo, hi := a.unit, uint64(0) // within-unit union range for parity
	for _, s := range segs {
		covered += s.n
		if s.inUnit < lo {
			lo = s.inUnit
		}
		if s.inUnit+s.n > hi {
			hi = s.inUnit + s.n
		}
	}
	full := covered == dps*a.unit
	parityOff := stripe*a.unit + lo
	parityLen := hi - lo
	if full {
		parityOff = stripe * a.unit
		parityLen = a.unit
	}

	writeTo := func(d int, ready sim.Time, off, n uint64) sim.Time {
		if d == a.failed {
			return ready // lost writes complete immediately in degraded mode
		}
		a.diskIOs++
		return a.disks[d].AccessAfter(t, ready, disk.Write, off, n)
	}

	if full {
		a.fullStripes++
		done := t
		for _, s := range segs {
			done = sim.MaxTime(done, writeTo(s.disk, t, s.off, s.n))
		}
		done = sim.MaxTime(done, writeTo(pdisk, t, parityOff, parityLen))
		return done
	}

	// read-modify-write: read old data ranges and old parity, then
	// write new data and parity after all reads complete.
	a.rmwStripes++
	readDone := t
	readFrom := func(d int, off, n uint64) {
		if d == a.failed {
			// reconstruct: read the range from all surviving disks
			for i, dd := range a.disks {
				if i == a.failed {
					continue
				}
				a.diskIOs++
				c := dd.Access(t, disk.Read, off, n)
				readDone = sim.MaxTime(readDone, c)
			}
			return
		}
		a.diskIOs++
		c := a.disks[d].Access(t, disk.Read, off, n)
		readDone = sim.MaxTime(readDone, c)
	}
	for _, s := range segs {
		readFrom(s.disk, s.off, s.n)
	}
	readFrom(pdisk, parityOff, parityLen)

	done := readDone
	for _, s := range segs {
		done = sim.MaxTime(done, writeTo(s.disk, readDone, s.off, s.n))
	}
	done = sim.MaxTime(done, writeTo(pdisk, readDone, parityOff, parityLen))
	return done
}

// Stats is a snapshot of array-level accounting.
type Stats struct {
	LogicalReads, LogicalWrites int64
	DiskIOs                     int64
	RMWStripes, FullStripes     int64
	DegradedReads               int64
	Disk                        []disk.Stats
}

// Stats returns a snapshot of the array's counters.
func (a *Array) Stats() Stats {
	s := Stats{
		LogicalReads: a.logicalReads, LogicalWrites: a.logicalWrites,
		DiskIOs: a.diskIOs, RMWStripes: a.rmwStripes, FullStripes: a.fullStripes,
		DegradedReads: a.degradedReads,
	}
	for _, d := range a.disks {
		s.Disk = append(s.Disk, d.Stats())
	}
	return s
}

// BusyUntil reports the latest busy horizon across spindles.
func (a *Array) BusyUntil() sim.Time {
	var m sim.Time
	for _, d := range a.disks {
		m = sim.MaxTime(m, d.BusyUntil())
	}
	return m
}

// Backlog reports the total queued work across spindles at time t.
func (a *Array) Backlog(t sim.Time) sim.Duration {
	var sum sim.Duration
	for _, d := range a.disks {
		if d.BusyUntil() > t {
			sum += d.BusyUntil().Sub(t)
		}
	}
	return sum
}

// Reset idles every spindle and clears accounting.
func (a *Array) Reset() {
	for _, d := range a.disks {
		d.Reset()
	}
	a.failed = -1
	a.logicalReads, a.logicalWrites, a.diskIOs = 0, 0, 0
	a.rmwStripes, a.fullStripes, a.degradedReads = 0, 0, 0
}
