package raid

import "testing"

func new1(t *testing.T) *Array {
	t.Helper()
	return New(RAID1, newDisks(4), 16)
}

func TestRAID1Capacity(t *testing.T) {
	a := new1(t)
	// 4 disks of 2^18 blocks mirrored in pairs: capacity = 2 × 2^18
	if a.DataBlocks() != 2<<18 {
		t.Fatalf("data blocks = %d, want %d", a.DataBlocks(), 2<<18)
	}
	if a.DataDisksPerStripe() != 2 {
		t.Fatalf("data disks = %d, want 2", a.DataDisksPerStripe())
	}
}

func TestRAID1OddDisksPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(RAID1, newDisks(3), 16)
}

func TestRAID1WriteMirrorsBothCopies(t *testing.T) {
	a := new1(t)
	a.Write(0, 0, 8)
	s := a.Stats()
	if s.DiskIOs != 2 {
		t.Fatalf("disk IOs = %d, want 2 (primary + mirror)", s.DiskIOs)
	}
	var reads int64
	for _, d := range s.Disk {
		reads += d.Reads
	}
	if reads != 0 {
		t.Fatal("RAID1 write must not read (no parity RMW)")
	}
}

func TestRAID1SmallWriteCheaperThanRAID5(t *testing.T) {
	r1 := New(RAID1, newDisks(4), 16)
	r5 := New(RAID5, newDisks(4), 16)
	w1, _ := r1.Write(0, 0, 1)
	d1 := w1.Sub(0)
	w5, _ := r5.Write(0, 0, 1)
	d5 := w5.Sub(0)
	if d1 >= d5 {
		t.Fatalf("RAID1 small write (%v) must beat RAID5's RMW (%v)", d1, d5)
	}
}

func TestRAID1ReadBalancesAcrossMirrors(t *testing.T) {
	a := new1(t)
	// load the primary of unit 0 with a long write... instead issue two
	// reads of the same block: the second should land on the mirror
	// because the primary is busy.
	a.Read(0, 0, 4)
	a.Read(0, 0, 4)
	s := a.Stats()
	busy := 0
	for _, d := range s.Disk {
		if d.Reads > 0 {
			busy++
		}
	}
	if busy < 2 {
		t.Fatalf("reads used %d spindles, want both copies in play", busy)
	}
}

func TestRAID1DegradedServesFromMirror(t *testing.T) {
	a := new1(t)
	a.Write(0, 0, 4)
	a.Fail(0) // primary of the first pair
	done, _ := a.Read(1000, 0, 4)
	if done <= 1000 {
		t.Fatal("degraded read must complete")
	}
	// mirror (disk 2) served it
	if a.Stats().Disk[2].Reads == 0 {
		t.Fatal("mirror did not serve the degraded read")
	}
	// writes keep going to the surviving copy
	a.Write(2000, 0, 4)
	if a.Stats().Disk[2].Writes < 2 {
		t.Fatal("degraded write skipped the surviving mirror")
	}
}

func TestRAID1ReadYourLayout(t *testing.T) {
	a := new1(t)
	// segments must map within the first half (primaries)
	for _, s := range a.split(0, 64) {
		if s.disk >= 2 {
			t.Fatalf("data unit mapped to mirror disk %d", s.disk)
		}
	}
}
