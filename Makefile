# POD reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test check bench microbench repro repro-fast smoke-serve smoke-metrics smoke-chaos smoke-bgdedup smoke-globalfp smoke-shardcrash smoke-flood smoke-streams smoke-cdc bench-delta fuzz clean

all: build vet test

# CI gate: vet, build, the full test suite under the race detector,
# then short serving-mode, metrics, and chaos smoke runs. The
# experiment-matrix tests already run at reduced scale (see
# internal/experiments testScale), which keeps the race run to a couple
# of minutes.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...
	$(MAKE) smoke-serve
	$(MAKE) smoke-metrics
	$(MAKE) smoke-chaos
	$(MAKE) smoke-bgdedup
	$(MAKE) smoke-globalfp
	$(MAKE) smoke-shardcrash
	$(MAKE) smoke-flood
	$(MAKE) smoke-streams
	$(MAKE) smoke-cdc
	$(MAKE) bench-delta

# Serving-mode smoke: a small sharded podload run. podload exits
# non-zero on any error or when zero requests complete, so the target
# fails if the serving layer ever wedges or drops work.
smoke-serve:
	$(GO) run ./cmd/podload -trace mixed -scale 0.01 -shards 4 -route-chunks 256 -rate 200

# Metrics smoke: the registry's own tests under the race detector, then
# an instrumented podload run. With -metrics-out podload exits non-zero
# when the snapshot has no histogram samples, so the target fails if
# the observability pipeline ever goes dark.
smoke-metrics:
	$(GO) vet ./internal/metrics/
	$(GO) test -race ./internal/metrics/
	$(GO) run ./cmd/podload -trace mixed -scale 0.01 -shards 8 -route-chunks 256 -rate 200 \
		-trace-sample 50 -metrics-out /tmp/pod-metrics-smoke.json -metrics-prom /tmp/pod-metrics-smoke.prom

# Chaos smoke: the acceptance scenario — latent sector errors, a
# whole-disk failure mid-run, and a transient-error storm — against a
# sharded POD server under the race detector. podload exits non-zero if
# the read-back integrity oracle finds a single acknowledged block lost
# or cross-referenced, so this target fails on any fault-path
# regression.
smoke-chaos:
	$(GO) run -race ./cmd/podload -trace mixed -scale 0.02 -shards 4 -rate 500 \
		-chaos full -chaos-seed 7 -metrics-out /tmp/pod-chaos-smoke.json

# Background-dedup smoke: a sharded POD server with the idle-aware
# out-of-line scanner under the race detector. -bgdedup-expect-reclaim
# makes podload exit non-zero unless the scanner actually reclaimed
# capacity, so this target fails if the scan/remap/reclaim path ever
# goes dead.
smoke-bgdedup:
	$(GO) run -race ./cmd/podload -trace mail -scale 0.02 -shards 2 -rate 500 \
		-bgdedup -bgdedup-expect-reclaim -metrics-out /tmp/pod-bgdedup-smoke.json

# Global-fingerprint-tier smoke: 8 shards with the cross-shard tier
# enabled under the race detector, latent sector faults plus a mid-run
# disk failure racing the hint/fold traffic, and the read-back oracle
# plus the post-drain cross-shard pin audit (podload runs
# Server.CheckConsistency whenever -globalfp is set, again after crash
# recovery). -globalfp-expect-remaps makes podload exit non-zero
# unless the tier actually recovered cross-shard duplicates, so this
# target fails if the advertisement/remap path ever goes dead.
smoke-globalfp:
	$(GO) run -race ./cmd/podload -trace mail -scale 0.02 -shards 8 -rate 500 \
		-globalfp -globalfp-expect-remaps -chaos globalfp -chaos-seed 11 \
		-metrics-out /tmp/pod-globalfp-smoke.json

# Shard-outage smoke: one shard crashed and rejoined mid-run with the
# global fingerprint tier live, under the race detector. The surviving
# shards must keep serving (refusals are typed shard-down errors, not
# lost acks), the epoch fence must hold, and podload exits non-zero
# unless the crash fired, the shard rejoined, the read-back oracle
# holds, and the post-rejoin cluster-wide consistency audit passes.
smoke-shardcrash:
	$(GO) run -race ./cmd/podload -trace mail -scale 0.02 -shards 4 -rate 500 \
		-chaos shardcrash -chaos-seed 13 -metrics-out /tmp/pod-shardcrash-smoke.json

# Flood smoke: 16 shards driven far past capacity under the race
# detector with the chaos read-back oracle enabled, so the batched
# cross-shard submission path is raced against injected faults on
# every CI run. The arrival rate is set well above service capacity
# (queue waits run ~100x service times), giving flood-level queue
# pressure while still defining the arrival horizon -chaos needs for
# fault placement. Small scale keeps the virtual-time window short.
smoke-flood:
	$(GO) run -race ./cmd/podload -trace mixed -scale 0.02 -shards 16 -clients 16 \
		-rate 20000 -chaos sector -chaos-seed 11 -metrics-out /tmp/pod-flood-smoke.json

# Stream-apportionment smoke: the adversarial multi-tenant sweeps under
# the race detector. TestStreamsDynamicBeatsStatic fails unless the
# locality-driven apportioner removes more writes in total than every
# static split (and than a fully shared cache on the scan mix), and the
# core property tests pin single-stream equivalence and the
# never-starved floor, so this target fails if the apportionment loop
# ever stops adapting. A serving-layer run then exercises the tagged
# path end to end (podload exits non-zero if no tagged write reaches an
# engine).
smoke-streams:
	$(GO) test -race -run 'TestStream' ./internal/experiments/ ./internal/core/ ./internal/icache/
	$(GO) test -race ./internal/locality/
	$(GO) run -race ./cmd/podload -streams -stream-profile adversarial -scale 0.1 -shards 2 -rate 2000

# CDC chunking smoke: the content-defined chunking axis under the race
# detector. The cdc package tests pin shift-invariance, the scalar
# cross-checks, and the alloc-free guards; TestChunkingShifted replays
# the shifted snapshot trace and fails unless gear and seqcdc remove
# writes where fixed4k removes exactly zero; the podsim run exercises
# the same axis through the CLI end to end.
smoke-cdc:
	$(GO) test -race ./internal/cdc/
	$(GO) test -race -run 'TestChunkingShifted|TestCDCSplitHotPathAllocFree|TestShiftedSnapshotShape' \
		./internal/experiments/ ./internal/chunk/ ./internal/workload/
	$(GO) run -race ./cmd/podsim -scheme POD -trace shifted -chunking gear -scale 0.05

# Bench-delta gate: regenerate the full-scale trajectory (now cheap
# enough to run in CI) and fail on regressions against the committed
# BENCH_replay.json — >10% on allocations (deterministic, the tight
# gate) and >15% on wall for entries over a second (wall is noisy,
# especially right after the race suite). Entries only in the
# reference (the podload flood sweep) are skipped, not failed.
bench-delta:
	$(GO) test -run '^$$' -bench 'BenchmarkGearChunk|BenchmarkSeqCDCChunk' -benchmem ./internal/cdc/
	$(GO) run ./cmd/podbench -scale 1 -bench-json /tmp/pod-bench-delta.json all chunking >/dev/null
	$(GO) run ./cmd/benchdelta -ref BENCH_replay.json -new /tmp/pod-bench-delta.json

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The benchmark harness regenerates every paper artifact at 0.1 scale.
bench:
	$(GO) test -bench=. -benchmem .

# Full-scale reproduction of every table and figure (a few minutes).
repro:
	$(GO) run ./cmd/podbench

# Subsampled reproduction for a quick look.
repro-fast:
	$(GO) run ./cmd/podbench -scale 0.1

# Short fuzz pass over the parsers and the journal recovery.
fuzz:
	$(GO) test -fuzz FuzzReadText -fuzztime 20s ./internal/trace/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 20s ./internal/trace/
	$(GO) test -fuzz FuzzLoad -fuzztime 20s ./internal/maptable/

clean:
	$(GO) clean ./...
