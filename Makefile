# POD reproduction — convenience targets.

GO ?= go

.PHONY: all build vet test check bench microbench repro repro-fast fuzz clean

all: build vet test

# CI gate: vet, build, then the full test suite under the race
# detector. The experiment-matrix tests already run at reduced scale
# (see internal/experiments testScale), which keeps the race run to a
# couple of minutes.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The benchmark harness regenerates every paper artifact at 0.1 scale.
bench:
	$(GO) test -bench=. -benchmem .

# Full-scale reproduction of every table and figure (a few minutes).
repro:
	$(GO) run ./cmd/podbench

# Subsampled reproduction for a quick look.
repro-fast:
	$(GO) run ./cmd/podbench -scale 0.1

# Short fuzz pass over the parsers and the journal recovery.
fuzz:
	$(GO) test -fuzz FuzzReadText -fuzztime 20s ./internal/trace/
	$(GO) test -fuzz FuzzReadBinary -fuzztime 20s ./internal/trace/
	$(GO) test -fuzz FuzzLoad -fuzztime 20s ./internal/maptable/

clean:
	$(GO) clean ./...
