module github.com/pod-dedup/pod

go 1.22
