// Package pod is the public interface to this reproduction of
// "POD: Performance Oriented I/O Deduplication for Primary Storage
// Systems in the Cloud" (Mao, Jiang, Wu, Tian — IPDPS 2014).
//
// It exposes the paper's storage engines — Native, Full-Dedupe, iDedup,
// Select-Dedupe, and POD (Select-Dedupe + adaptive iCache) — over a
// simulated 4-disk RAID5 primary storage system, together with the
// synthetic FIU-like trace generators and the experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	sys, err := pod.New(pod.Config{Scheme: pod.SchemePOD})
//	...
//	res, _ := sys.Do(&pod.Request{Op: pod.OpWrite, LBA: 100,
//		Content: []pod.ContentID{1, 2, 3}}) // 3 chunks at LBA 100
//	res, _ = sys.Do(&pod.Request{Time: res.Complete, Op: pod.OpRead,
//		LBA: 100, Chunks: 3})
//	fmt.Println(sys.Stats())
//
// Addresses and lengths are in 4 KiB chunks; times are microseconds of
// virtual time (requests must be submitted in non-decreasing time
// order). Content is identified by opaque content IDs — equal IDs mean
// byte-identical chunks. The same Request/Result pair is the submission
// surface of the sharded serving layer (internal/server), which
// re-exports these types.
package pod

import (
	"fmt"
	"strings"

	"github.com/pod-dedup/pod/internal/api"
	"github.com/pod-dedup/pod/internal/bgdedup"
	"github.com/pod-dedup/pod/internal/cdc"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
)

// Request is one I/O against a System: Time is the virtual arrival in
// microseconds, Op the direction, LBA the address in 4 KiB chunks.
// Writes carry one ContentID per chunk in Content (which also sets the
// length); reads set Chunks.
type Request = api.Request

// Result is one completed request: Start/Complete bracket the service
// in virtual microseconds, Service is the engine response time, and
// Sojourn additionally includes any queue wait (equal to Service on a
// System, which has no queue).
type Result = api.Result

// Op is a request direction.
type Op = api.Op

// Request directions.
const (
	OpRead  Op = api.OpRead
	OpWrite Op = api.OpWrite
)

// ContentID identifies a chunk's content; equal IDs mean byte-identical
// chunks.
type ContentID = api.ContentID

// StreamID identifies the tenant stream a request belongs to; the zero
// value is the default (untagged) stream. Stream tags let a system with
// Config.StreamAware divide the fingerprint-index cache between
// co-located tenants by estimated temporal locality.
type StreamID = api.StreamID

// Scheme selects a storage engine.
type Scheme string

// The five schemes of the paper's evaluation.
const (
	SchemeNative       Scheme = "Native"
	SchemeFullDedupe   Scheme = "Full-Dedupe"
	SchemeIDedup       Scheme = "iDedup"
	SchemeSelectDedupe Scheme = "Select-Dedupe"
	SchemePOD          Scheme = "POD"
	// SchemeIODedup is Koller & Rangaswami's I/O Deduplication
	// (FAST'10): content-aware caching and replica-aware reads, no
	// write elimination.
	SchemeIODedup Scheme = "I/O-Dedup"
	// SchemePostProcess is offline deduplication in the style of
	// El-Shimi et al. (ATC'12): writes land untouched; a background
	// scanner merges duplicates later.
	SchemePostProcess Scheme = "Post-Process"
)

// Schemes lists every available scheme.
func Schemes() []Scheme {
	return []Scheme{SchemeNative, SchemeFullDedupe, SchemeIDedup, SchemeSelectDedupe,
		SchemePOD, SchemeIODedup, SchemePostProcess}
}

// ParseScheme resolves a scheme name case-insensitively, ignoring
// hyphen/slash/underscore/space punctuation: "pod", "Select-Dedupe",
// "selectdedupe" and "i/o-dedup" all resolve. The command-line tools
// share this instead of each validating flags its own way.
func ParseScheme(s string) (Scheme, error) {
	norm := func(v string) string {
		v = strings.ToLower(v)
		for _, cut := range []string{"-", "/", "_", " "} {
			v = strings.ReplaceAll(v, cut, "")
		}
		return v
	}
	want := norm(s)
	if want == "" {
		return "", fmt.Errorf("pod: empty scheme name")
	}
	for _, sc := range Schemes() {
		if norm(string(sc)) == want {
			return sc, nil
		}
	}
	var names []string
	for _, sc := range Schemes() {
		names = append(names, string(sc))
	}
	return "", fmt.Errorf("pod: unknown scheme %q (have %s)", s, strings.Join(names, ", "))
}

// Config describes the simulated platform. The zero value of every
// field selects the paper's setup (§IV-A).
type Config struct {
	Scheme Scheme // default SchemePOD

	Disks        int    // spindles in the array (default 4)
	DiskBlocks   uint64 // capacity per spindle in 4 KiB blocks (default 2^19 = 2 GiB)
	StripeUnitKB int    // RAID5 stripe unit (default 64)
	// Layout selects the array layout: "raid5" (default), "raid0", or
	// "raid1" (mirrored pairs; requires an even disk count).
	Layout string

	MemoryMB int // storage-cache DRAM budget (default 32)

	// Select-Dedupe partial-redundancy threshold (default 3, §III-B)
	// and iDedup minimum duplicate-sequence length (default 8 chunks).
	Threshold       int
	IDedupThreshold int

	// NVRAMKB sizes the Map-table journal (default: sized to the
	// array; 0 keeps the default, -1 disables journaling).
	NVRAMKB int

	// Verify re-checks every write against the content model (slower;
	// intended for tests).
	Verify bool

	// Cleaner enables the background segment cleaner, which defragments
	// the log-structured store during idle periods (recommended for
	// long-running overwrite-heavy workloads).
	Cleaner bool

	// BGDedup enables the idle-aware background out-of-line
	// deduplication scanner, which reclaims the duplicate copies the
	// selective inline path intentionally wrote. Supported by the
	// Select-Dedupe and POD schemes only.
	BGDedup bool
	// BGDedupBlocksPerSec budgets the scanner's throughput in 4 KiB
	// blocks per simulated second (0 = default).
	BGDedupBlocksPerSec int64

	// StreamAware enables HPDedup-style per-stream apportionment of the
	// fingerprint-index cache: requests tagged with a StreamID get
	// per-stream index quotas, re-divided periodically by a temporal-
	// locality estimator (with a shared floor so no stream starves).
	// Supported by the Select-Dedupe and POD schemes; untagged requests
	// land on the default stream.
	StreamAware bool

	// Chunking selects the request chunker: "fixed4k" (default — the
	// paper's model, one chunk per 4 KiB slot keyed by the trace's
	// ContentID), "gear" (Gear rolling-hash content-defined chunking),
	// or "seqcdc" (sequence-based, hashless CDC). Under gear/seqcdc the
	// engine materializes each write's bytes deterministically from its
	// ContentIDs and re-chunks at content-defined boundaries, so
	// byte-shifted redundancy (snapshot edits) dedups even though every
	// trace ID is unique. Not supported by the Native scheme (it never
	// splits requests).
	Chunking string
}

// System is a storage system under one scheme.
type System struct {
	eng  engine.Engine
	last sim.Time
}

// New builds a system. It returns an error (never panics) for invalid
// configurations.
func New(cfg Config) (*System, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = SchemePOD
	}
	scheme, err := ParseScheme(string(cfg.Scheme))
	if err != nil {
		return nil, err
	}
	cfg.Scheme = scheme
	if cfg.Disks == 0 {
		cfg.Disks = 4
	}
	var level raid.Level
	switch cfg.Layout {
	case "", "raid5":
		level = raid.RAID5
		if cfg.Disks < 3 {
			return nil, fmt.Errorf("pod: RAID5 needs at least 3 disks, have %d", cfg.Disks)
		}
	case "raid0":
		level = raid.RAID0
		if cfg.Disks < 1 {
			return nil, fmt.Errorf("pod: RAID0 needs at least 1 disk")
		}
	case "raid1":
		level = raid.RAID1
		if cfg.Disks < 2 || cfg.Disks%2 != 0 {
			return nil, fmt.Errorf("pod: RAID1 needs an even disk count ≥ 2, have %d", cfg.Disks)
		}
	default:
		return nil, fmt.Errorf("pod: unknown layout %q", cfg.Layout)
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 1 << 19
	}
	if cfg.StripeUnitKB == 0 {
		cfg.StripeUnitKB = 64
	}
	if cfg.StripeUnitKB%4 != 0 {
		return nil, fmt.Errorf("pod: stripe unit %d KB is not a multiple of the 4 KB chunk", cfg.StripeUnitKB)
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 32
	}
	if cfg.MemoryMB < 1 {
		return nil, fmt.Errorf("pod: memory budget %d MB is too small", cfg.MemoryMB)
	}

	disks := make([]*disk.Disk, cfg.Disks)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(cfg.DiskBlocks))
	}
	array := raid.New(level, disks, uint64(cfg.StripeUnitKB/4))

	nvram := 0
	switch {
	case cfg.NVRAMKB > 0:
		nvram = cfg.NVRAMKB * 1024
	case cfg.NVRAMKB == 0:
		nvram = int(array.DataBlocks() * 24)
	}

	chunking := cdc.Params{}
	if cfg.Chunking != "" {
		algo, err := cdc.ParseAlgo(cfg.Chunking)
		if err != nil {
			return nil, fmt.Errorf("pod: %w", err)
		}
		if algo != cdc.Fixed4K && scheme == SchemeNative {
			return nil, fmt.Errorf("pod: scheme %s does not support content-defined chunking (it never splits requests)", scheme)
		}
		chunking = cdc.Params{Algo: algo}
	}

	ecfg := engine.Config{
		Array:           array,
		MemoryBytes:     int64(cfg.MemoryMB) << 20,
		Threshold:       cfg.Threshold,
		IDedupThreshold: cfg.IDedupThreshold,
		NVRAMBytes:      nvram,
		Verify:          cfg.Verify,
		Cleaner:         engine.CleanerParams{Enabled: cfg.Cleaner},
		Streams:         engine.StreamParams{Enabled: cfg.StreamAware},
		Chunking:        chunking,
	}
	if cfg.StreamAware {
		switch scheme {
		case SchemeSelectDedupe, SchemePOD:
		default:
			return nil, fmt.Errorf("pod: scheme %s does not support stream-aware apportionment (want %s or %s)",
				scheme, SchemeSelectDedupe, SchemePOD)
		}
	}
	eng := experiments.NewEngine(string(cfg.Scheme), ecfg)
	if cfg.BGDedup {
		if _, ok := bgdedup.Attach(eng, bgdedup.Params{BlocksPerSec: cfg.BGDedupBlocksPerSec}); !ok {
			return nil, fmt.Errorf("pod: scheme %s does not support background deduplication (want %s or %s)",
				cfg.Scheme, SchemeSelectDedupe, SchemePOD)
		}
	}
	return &System{eng: eng}, nil
}

// Scheme reports the engine in use.
func (s *System) Scheme() Scheme { return Scheme(s.eng.Name()) }

// CapacityBlocks reports the physical data capacity in 4 KiB blocks.
func (s *System) CapacityBlocks() uint64 { return s.eng.UsedBlocks() } // see UsedBlocks

func (s *System) checkTime(atMicros int64) error {
	if sim.Time(atMicros) < s.last {
		return fmt.Errorf("pod: request at t=%dµs arrives before the previous request (t=%dµs): submit in time order", atMicros, int64(s.last))
	}
	s.last = sim.Time(atMicros)
	return nil
}

// Do submits one request and returns its completion record. Requests
// must arrive in non-decreasing Time order; a System serves them
// synchronously (no queue), so Result.Sojourn equals Result.Service
// and Result.Shard is 0.
//
// A storage fault the stack could not absorb is reported in Result.Err
// (a *fault.Error carrying the transient/permanent classification), not
// as Do's error return — the request was accepted and serviced, it just
// failed; Do's own error covers malformed or mis-ordered requests. A
// System has no retry layer; callers wanting retries, deadlines, and
// breaker semantics use the sharded server.
func (s *System) Do(r *Request) (Result, error) {
	if err := r.Validate(); err != nil {
		return Result{}, fmt.Errorf("pod: %w", err)
	}
	if err := s.checkTime(r.Time); err != nil {
		return Result{}, err
	}
	treq := r.Trace()
	var rt sim.Duration
	var ferr error
	if r.Op == OpWrite {
		rt, ferr = s.eng.Write(&treq)
	} else {
		rt, ferr = s.eng.Read(&treq)
	}
	return Result{
		Start:    r.Time,
		Complete: r.Time + int64(rt),
		Service:  int64(rt),
		Sojourn:  int64(rt),
		Err:      ferr,
	}, nil
}

// ReadBack returns the content ID stored at lba (ok is false for
// never-written blocks) without simulating an I/O — the verification
// path.
func (s *System) ReadBack(lba uint64) (uint64, bool) { return s.eng.ReadContent(lba) }

// UsedBlocks reports the physical blocks currently occupied.
func (s *System) UsedBlocks() uint64 { return s.eng.UsedBlocks() }

// CrashAndRecover simulates a power failure followed by a restart: all
// DRAM state is lost and the Map table is rebuilt from its NVRAM
// journal. Every acknowledged write survives. It returns the number of
// journal records replayed, and an error for schemes without NVRAM
// journaling support.
func (s *System) CrashAndRecover() (int, error) {
	if r, ok := s.eng.(interface{ CrashAndRecover() (int, error) }); ok {
		return r.CrashAndRecover()
	}
	return 0, fmt.Errorf("pod: scheme %s does not support crash recovery", s.eng.Name())
}

// Summary is an exported snapshot of a system's statistics.
type Summary struct {
	Scheme               string
	Reads, Writes        int64
	MeanReadMicros       float64
	MeanWriteMicros      float64
	P95ReadMicros        float64
	P95WriteMicros       float64
	WritesRemovedPct     float64
	ChunksDedupedPct     float64
	ReadCacheHitPct      float64
	IndexDiskLookups     int64
	NVRAMPeakBytes       int64
	UsedBlocks           uint64
	Category1, Category2 int64
	Category3            int64
}

// Stats snapshots the system's accumulated metrics.
func (s *System) Stats() Summary {
	st := s.eng.Stats()
	return Summary{
		Scheme:           s.eng.Name(),
		Reads:            st.Reads,
		Writes:           st.Writes,
		MeanReadMicros:   st.ReadRT.Mean(),
		MeanWriteMicros:  st.WriteRT.Mean(),
		P95ReadMicros:    st.ReadRT.Percentile(95),
		P95WriteMicros:   st.WriteRT.Percentile(95),
		WritesRemovedPct: st.WriteRemovalPct(),
		ChunksDedupedPct: st.DedupRatioPct(),
		ReadCacheHitPct:  st.CacheHitPct(),
		IndexDiskLookups: st.IndexDiskIOs,
		NVRAMPeakBytes:   st.NVRAMPeakBytes,
		UsedBlocks:       s.eng.UsedBlocks(),
		Category1:        st.Cat1,
		Category2:        st.Cat2,
		Category3:        st.Cat3,
	}
}

// String renders the summary as a short human-readable report.
func (s Summary) String() string {
	return fmt.Sprintf(
		"%s: %d writes (%.1f%% removed, %.1f%% chunks deduped), %d reads (%.1f%% cache hits); "+
			"mean RT write %.2fms read %.2fms; %d blocks used",
		s.Scheme, s.Writes, s.WritesRemovedPct, s.ChunksDedupedPct,
		s.Reads, s.ReadCacheHitPct,
		s.MeanWriteMicros/1000, s.MeanReadMicros/1000, s.UsedBlocks)
}
