// Package pod is the public interface to this reproduction of
// "POD: Performance Oriented I/O Deduplication for Primary Storage
// Systems in the Cloud" (Mao, Jiang, Wu, Tian — IPDPS 2014).
//
// It exposes the paper's storage engines — Native, Full-Dedupe, iDedup,
// Select-Dedupe, and POD (Select-Dedupe + adaptive iCache) — over a
// simulated 4-disk RAID5 primary storage system, together with the
// synthetic FIU-like trace generators and the experiment harness that
// regenerates every table and figure of the paper's evaluation.
//
// Quick start:
//
//	sys, err := pod.New(pod.Config{Scheme: pod.SchemePOD})
//	...
//	rt, _ := sys.Write(0, 100, []uint64{1, 2, 3}) // 3 chunks at LBA 100
//	rt, _ = sys.Read(rt, 100, 3)
//	fmt.Println(sys.Stats())
//
// Addresses and lengths are in 4 KiB chunks; times are microseconds of
// virtual time (requests must be submitted in non-decreasing time
// order). Content is identified by opaque uint64 content IDs — equal
// IDs mean byte-identical chunks.
package pod

import (
	"fmt"

	"github.com/pod-dedup/pod/internal/chunk"
	"github.com/pod-dedup/pod/internal/disk"
	"github.com/pod-dedup/pod/internal/engine"
	"github.com/pod-dedup/pod/internal/experiments"
	"github.com/pod-dedup/pod/internal/raid"
	"github.com/pod-dedup/pod/internal/sim"
	"github.com/pod-dedup/pod/internal/trace"
)

// Scheme selects a storage engine.
type Scheme string

// The five schemes of the paper's evaluation.
const (
	SchemeNative       Scheme = "Native"
	SchemeFullDedupe   Scheme = "Full-Dedupe"
	SchemeIDedup       Scheme = "iDedup"
	SchemeSelectDedupe Scheme = "Select-Dedupe"
	SchemePOD          Scheme = "POD"
	// SchemeIODedup is Koller & Rangaswami's I/O Deduplication
	// (FAST'10): content-aware caching and replica-aware reads, no
	// write elimination.
	SchemeIODedup Scheme = "I/O-Dedup"
	// SchemePostProcess is offline deduplication in the style of
	// El-Shimi et al. (ATC'12): writes land untouched; a background
	// scanner merges duplicates later.
	SchemePostProcess Scheme = "Post-Process"
)

// Schemes lists every available scheme.
func Schemes() []Scheme {
	return []Scheme{SchemeNative, SchemeFullDedupe, SchemeIDedup, SchemeSelectDedupe,
		SchemePOD, SchemeIODedup, SchemePostProcess}
}

// Config describes the simulated platform. The zero value of every
// field selects the paper's setup (§IV-A).
type Config struct {
	Scheme Scheme // default SchemePOD

	Disks        int    // spindles in the array (default 4)
	DiskBlocks   uint64 // capacity per spindle in 4 KiB blocks (default 2^19 = 2 GiB)
	StripeUnitKB int    // RAID5 stripe unit (default 64)
	RAID0        bool   // shorthand for Layout: "raid0"
	// Layout selects the array layout: "raid5" (default), "raid0", or
	// "raid1" (mirrored pairs; requires an even disk count).
	Layout string

	MemoryMB int // storage-cache DRAM budget (default 32)

	// Select-Dedupe partial-redundancy threshold (default 3, §III-B)
	// and iDedup minimum duplicate-sequence length (default 8 chunks).
	Threshold       int
	IDedupThreshold int

	// NVRAMKB sizes the Map-table journal (default: sized to the
	// array; 0 keeps the default, -1 disables journaling).
	NVRAMKB int

	// Verify re-checks every write against the content model (slower;
	// intended for tests).
	Verify bool

	// Cleaner enables the background segment cleaner, which defragments
	// the log-structured store during idle periods (recommended for
	// long-running overwrite-heavy workloads).
	Cleaner bool
}

// System is a storage system under one scheme.
type System struct {
	eng  engine.Engine
	last sim.Time
}

// New builds a system. It returns an error (never panics) for invalid
// configurations.
func New(cfg Config) (*System, error) {
	if cfg.Scheme == "" {
		cfg.Scheme = SchemePOD
	}
	found := false
	for _, s := range Schemes() {
		if s == cfg.Scheme {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("pod: unknown scheme %q", cfg.Scheme)
	}
	if cfg.Disks == 0 {
		cfg.Disks = 4
	}
	if cfg.RAID0 && cfg.Layout == "" {
		cfg.Layout = "raid0"
	}
	var level raid.Level
	switch cfg.Layout {
	case "", "raid5":
		level = raid.RAID5
		if cfg.Disks < 3 {
			return nil, fmt.Errorf("pod: RAID5 needs at least 3 disks, have %d", cfg.Disks)
		}
	case "raid0":
		level = raid.RAID0
		if cfg.Disks < 1 {
			return nil, fmt.Errorf("pod: RAID0 needs at least 1 disk")
		}
	case "raid1":
		level = raid.RAID1
		if cfg.Disks < 2 || cfg.Disks%2 != 0 {
			return nil, fmt.Errorf("pod: RAID1 needs an even disk count ≥ 2, have %d", cfg.Disks)
		}
	default:
		return nil, fmt.Errorf("pod: unknown layout %q", cfg.Layout)
	}
	if cfg.DiskBlocks == 0 {
		cfg.DiskBlocks = 1 << 19
	}
	if cfg.StripeUnitKB == 0 {
		cfg.StripeUnitKB = 64
	}
	if cfg.StripeUnitKB%4 != 0 {
		return nil, fmt.Errorf("pod: stripe unit %d KB is not a multiple of the 4 KB chunk", cfg.StripeUnitKB)
	}
	if cfg.MemoryMB == 0 {
		cfg.MemoryMB = 32
	}
	if cfg.MemoryMB < 1 {
		return nil, fmt.Errorf("pod: memory budget %d MB is too small", cfg.MemoryMB)
	}

	disks := make([]*disk.Disk, cfg.Disks)
	for i := range disks {
		disks[i] = disk.New(disk.DefaultParams(cfg.DiskBlocks))
	}
	array := raid.New(level, disks, uint64(cfg.StripeUnitKB/4))

	nvram := 0
	switch {
	case cfg.NVRAMKB > 0:
		nvram = cfg.NVRAMKB * 1024
	case cfg.NVRAMKB == 0:
		nvram = int(array.DataBlocks() * 24)
	}

	ecfg := engine.Config{
		Array:           array,
		MemoryBytes:     int64(cfg.MemoryMB) << 20,
		Threshold:       cfg.Threshold,
		IDedupThreshold: cfg.IDedupThreshold,
		NVRAMBytes:      nvram,
		Verify:          cfg.Verify,
		Cleaner:         engine.CleanerParams{Enabled: cfg.Cleaner},
	}
	return &System{eng: experiments.NewEngine(string(cfg.Scheme), ecfg)}, nil
}

// Scheme reports the engine in use.
func (s *System) Scheme() Scheme { return Scheme(s.eng.Name()) }

// CapacityBlocks reports the physical data capacity in 4 KiB blocks.
func (s *System) CapacityBlocks() uint64 { return s.eng.UsedBlocks() } // see UsedBlocks

func (s *System) checkTime(atMicros int64) error {
	if sim.Time(atMicros) < s.last {
		return fmt.Errorf("pod: request at t=%dµs arrives before the previous request (t=%dµs): submit in time order", atMicros, int64(s.last))
	}
	s.last = sim.Time(atMicros)
	return nil
}

// Write submits a write of len(content) chunks at the given LBA and
// virtual time, returning the simulated response time in microseconds.
func (s *System) Write(atMicros int64, lba uint64, content []uint64) (int64, error) {
	if len(content) == 0 {
		return 0, fmt.Errorf("pod: empty write")
	}
	if err := s.checkTime(atMicros); err != nil {
		return 0, err
	}
	ids := make([]chunk.ContentID, len(content))
	for i, c := range content {
		ids[i] = chunk.ContentID(c)
	}
	req := trace.Request{Time: sim.Time(atMicros), Op: trace.Write, LBA: lba, N: len(ids), Content: ids}
	return int64(s.eng.Write(&req)), nil
}

// Read submits a read of n chunks at the given LBA and virtual time,
// returning the simulated response time in microseconds.
func (s *System) Read(atMicros int64, lba uint64, n int) (int64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pod: empty read")
	}
	if err := s.checkTime(atMicros); err != nil {
		return 0, err
	}
	req := trace.Request{Time: sim.Time(atMicros), Op: trace.Read, LBA: lba, N: n}
	return int64(s.eng.Read(&req)), nil
}

// ReadBack returns the content ID stored at lba (ok is false for
// never-written blocks) without simulating an I/O — the verification
// path.
func (s *System) ReadBack(lba uint64) (uint64, bool) { return s.eng.ReadContent(lba) }

// UsedBlocks reports the physical blocks currently occupied.
func (s *System) UsedBlocks() uint64 { return s.eng.UsedBlocks() }

// CrashAndRecover simulates a power failure followed by a restart: all
// DRAM state is lost and the Map table is rebuilt from its NVRAM
// journal. Every acknowledged write survives. It returns the number of
// journal records replayed, and an error for schemes without NVRAM
// journaling support.
func (s *System) CrashAndRecover() (int, error) {
	if r, ok := s.eng.(interface{ CrashAndRecover() (int, error) }); ok {
		return r.CrashAndRecover()
	}
	return 0, fmt.Errorf("pod: scheme %s does not support crash recovery", s.eng.Name())
}

// Summary is an exported snapshot of a system's statistics.
type Summary struct {
	Scheme               string
	Reads, Writes        int64
	MeanReadMicros       float64
	MeanWriteMicros      float64
	P95ReadMicros        float64
	P95WriteMicros       float64
	WritesRemovedPct     float64
	ChunksDedupedPct     float64
	ReadCacheHitPct      float64
	IndexDiskLookups     int64
	NVRAMPeakBytes       int64
	UsedBlocks           uint64
	Category1, Category2 int64
	Category3            int64
}

// Stats snapshots the system's accumulated metrics.
func (s *System) Stats() Summary {
	st := s.eng.Stats()
	return Summary{
		Scheme:           s.eng.Name(),
		Reads:            st.Reads,
		Writes:           st.Writes,
		MeanReadMicros:   st.ReadRT.Mean(),
		MeanWriteMicros:  st.WriteRT.Mean(),
		P95ReadMicros:    st.ReadRT.Percentile(95),
		P95WriteMicros:   st.WriteRT.Percentile(95),
		WritesRemovedPct: st.WriteRemovalPct(),
		ChunksDedupedPct: st.DedupRatioPct(),
		ReadCacheHitPct:  st.CacheHitPct(),
		IndexDiskLookups: st.IndexDiskIOs,
		NVRAMPeakBytes:   st.NVRAMPeakBytes,
		UsedBlocks:       s.eng.UsedBlocks(),
		Category1:        st.Cat1,
		Category2:        st.Cat2,
		Category3:        st.Cat3,
	}
}

// String renders the summary as a short human-readable report.
func (s Summary) String() string {
	return fmt.Sprintf(
		"%s: %d writes (%.1f%% removed, %.1f%% chunks deduped), %d reads (%.1f%% cache hits); "+
			"mean RT write %.2fms read %.2fms; %d blocks used",
		s.Scheme, s.Writes, s.WritesRemovedPct, s.ChunksDedupedPct,
		s.Reads, s.ReadCacheHitPct,
		s.MeanWriteMicros/1000, s.MeanReadMicros/1000, s.UsedBlocks)
}
