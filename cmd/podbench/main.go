// Command podbench regenerates the POD paper's evaluation artifacts.
//
// Usage:
//
//	podbench [-scale f] [-workers n] [experiment ...]
//
// Experiments: table1 table2 fig1 fig2 fig3 fig8 fig9 fig10 fig11
// overhead all (default: all). Scale 1.0 replays the paper's full
// request counts; smaller scales subsample proportionally.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"github.com/pod-dedup/pod/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "trace scale (1.0 = paper request counts)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel replays")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: podbench [-scale f] [-workers n] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: table1 table2 fig1 fig2 fig3 fig8 fig9 fig10 fig11 overhead raw schemes ablations all\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	wanted := flag.Args()
	if len(wanted) == 0 {
		wanted = []string{"all"}
	}
	env := experiments.NewEnv(*scale, *workers)

	run := func(name string) bool {
		start := time.Now()
		switch name {
		case "table1":
			fmt.Println(experiments.Table1())
		case "table2":
			t, _ := env.Table2()
			fmt.Println(t)
		case "fig1":
			t, _ := env.Fig1()
			fmt.Println(t)
		case "fig2":
			t, _ := env.Fig2()
			fmt.Println(t)
		case "fig3":
			t, _ := env.Fig3(nil)
			fmt.Println(t)
		case "fig8":
			t, _ := env.Fig8()
			fmt.Println(t)
		case "fig9":
			t, _ := env.Fig9Write()
			fmt.Println(t)
			t, _ = env.Fig9Read()
			fmt.Println(t)
		case "fig10":
			t, _ := env.Fig10()
			fmt.Println(t)
		case "fig11":
			t, _ := env.Fig11()
			fmt.Println(t)
		case "overhead":
			t, _, _ := env.Overhead()
			fmt.Println(t)
		case "raw":
			fmt.Println(env.Raw())
		case "schemes":
			fmt.Println(env.SchemesTable())
		case "ablations":
			fmt.Println(env.ThresholdSweep("homes", nil))
			fmt.Println(env.StripeUnitSweep("web-vm", nil))
			fmt.Println(env.DupSweep(nil))
			fmt.Println(env.LayoutSweep("web-vm"))
			fmt.Println(env.ChurnSweep())
			h, d := env.DegradedPoint("homes")
			fmt.Printf("Degraded-mode ablation (homes, POD): healthy read %.2fms, one disk failed %.2fms\n\n", h/1000, d/1000)
		default:
			return false
		}
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		return true
	}

	for _, name := range wanted {
		name = strings.ToLower(name)
		if name == "all" {
			for _, n := range []string{"table1", "table2", "fig1", "fig2", "fig3", "fig8", "fig9",
				"fig10", "fig11", "overhead", "raw", "schemes", "ablations"} {
				run(n)
			}
			continue
		}
		if !run(name) {
			fmt.Fprintf(os.Stderr, "podbench: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}
}
